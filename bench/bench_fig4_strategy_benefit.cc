// Experiment F4 (DESIGN.md): "Showing the benefit of using a strategy"
// (paper Figure 4). After a user infers a query by free labeling, the demo
// shows how many interactions she *would* have spent had JIM proposed
// informative tuples — rendered here exactly as the ASCII analogue of the
// paper's bar chart.
//
// The (scenario × mode × repetition) grid runs concurrently on engine
// clones via exec::BatchSessionRunner (--threads N / JIM_THREADS); seeds
// are fixed per job, so the charts are byte-identical at any thread count.

#include <iostream>

#include "bench/bench_util.h"
#include "core/jim.h"
#include "exec/batch_runner.h"
#include "ui/console_ui.h"
#include "util/rng.h"
#include "workload/setgame.h"
#include "workload/travel.h"

int main(int argc, char** argv) {
  using namespace jim;
  const size_t threads = bench::ParseThreadsFlag(argc, argv);

  struct Scenario {
    std::string name;
    std::shared_ptr<const core::TupleStore> store;
    core::JoinPredicate goal;
  };
  std::vector<Scenario> scenarios;
  {
    auto store = workload::Figure1StorePtr();
    scenarios.push_back(
        {"flight&hotel packages, goal Q2", store,
         core::JoinPredicate::Parse(store->schema(), workload::kQ2)
             .value()});
  }
  {
    util::Rng rng(77);
    auto store = workload::SetPairStore(/*sample_size=*/1500, rng);
    scenarios.push_back(
        {"tagged pictures (1500 card pairs), goal same Color+Shading",
         store, workload::SameColorAndShadingGoal(store->schema())});
  }

  constexpr size_t kRepetitions = 25;
  exec::ThreadPool pool(threads);
  const exec::BatchSessionRunner runner(threads > 1 ? &pool : nullptr);
  std::vector<exec::SessionSpec> specs;
  specs.reserve(scenarios.size() * 4 * kRepetitions);
  for (const Scenario& scenario : scenarios) {
    auto prototype =
        std::make_shared<const core::InferenceEngine>(scenario.store);
    for (int mode = 1; mode <= 4; ++mode) {
      for (size_t r = 0; r < kRepetitions; ++r) {
        // The same seed schedule bench::Repeat(base = 900 + mode) derives.
        const uint64_t seed = 900 + static_cast<uint64_t>(mode) + 1000003 * r;
        exec::SessionSpec spec(prototype, scenario.goal);
        spec.make_strategy = [seed] {
          return core::MakeStrategy("lookahead-entropy", seed).value();
        };
        spec.options.mode = static_cast<core::InteractionMode>(mode);
        spec.options.user_seed = seed * 3 + 1;
        specs.push_back(std::move(spec));
      }
    }
  }
  const std::vector<core::SessionResult> results = runner.Run(specs);

  size_t job = 0;
  for (const Scenario& scenario : scenarios) {
    std::cout << "== F4: " << scenario.name << " ==\n";
    std::vector<std::pair<std::string, size_t>> chart;
    for (int mode = 1; mode <= 4; ++mode) {
      bench::Series series;
      for (size_t r = 0; r < kRepetitions; ++r, ++job) {
        series.Add(static_cast<double>(results[job].interactions));
      }
      chart.emplace_back(
          std::string(core::InteractionModeToString(
              static_cast<core::InteractionMode>(mode))),
          static_cast<size_t>(series.Mean() + 0.5));
    }
    std::cout << ui::RenderSavingsChart(chart) << "\n";
  }
  std::cout << "(bars: mean interactions over " << kRepetitions
            << " simulated users; the demo shows this chart to the attendee "
               "after parts 1-3)\n";
  return 0;
}
