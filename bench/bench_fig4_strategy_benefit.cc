// Experiment F4 (DESIGN.md): "Showing the benefit of using a strategy"
// (paper Figure 4). After a user infers a query by free labeling, the demo
// shows how many interactions she *would* have spent had JIM proposed
// informative tuples — rendered here exactly as the ASCII analogue of the
// paper's bar chart.

#include <iostream>

#include "bench/bench_util.h"
#include "core/jim.h"
#include "ui/console_ui.h"
#include "util/rng.h"
#include "workload/setgame.h"
#include "workload/travel.h"

int main() {
  using namespace jim;

  struct Scenario {
    std::string name;
    std::shared_ptr<const rel::Relation> instance;
    core::JoinPredicate goal;
  };
  std::vector<Scenario> scenarios;
  {
    auto instance = workload::Figure1InstancePtr();
    scenarios.push_back(
        {"flight&hotel packages, goal Q2", instance,
         core::JoinPredicate::Parse(instance->schema(), workload::kQ2)
             .value()});
  }
  {
    util::Rng rng(77);
    auto instance = workload::SetPairInstance(/*sample_size=*/1500, rng);
    scenarios.push_back(
        {"tagged pictures (1500 card pairs), goal same Color+Shading",
         instance, workload::SameColorAndShadingGoal(instance->schema())});
  }

  constexpr size_t kRepetitions = 25;
  for (const Scenario& scenario : scenarios) {
    std::cout << "== F4: " << scenario.name << " ==\n";
    std::vector<std::pair<std::string, size_t>> chart;
    for (int mode = 1; mode <= 4; ++mode) {
      const bench::Series series =
          bench::Repeat(kRepetitions, 900 + mode, [&](uint64_t seed) {
            auto strategy =
                core::MakeStrategy("lookahead-entropy", seed).value();
            core::ExactOracle oracle(scenario.goal);
            core::SessionOptions options;
            options.mode = static_cast<core::InteractionMode>(mode);
            options.user_seed = seed * 3 + 1;
            return static_cast<double>(
                core::RunSession(scenario.instance, scenario.goal, *strategy,
                                 oracle, options)
                    .interactions);
          });
      chart.emplace_back(
          std::string(core::InteractionModeToString(
              static_cast<core::InteractionMode>(mode))),
          static_cast<size_t>(series.Mean() + 0.5));
    }
    std::cout << ui::RenderSavingsChart(chart) << "\n";
  }
  std::cout << "(bars: mean interactions over " << kRepetitions
            << " simulated users; the demo shows this chart to the attendee "
               "after parts 1-3)\n";
  return 0;
}
