#ifndef JIM_BENCH_BENCH_UTIL_H_
#define JIM_BENCH_BENCH_UTIL_H_

#include <cmath>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/string_util.h"

namespace jim::bench {

/// Mean and sample standard deviation of a series.
struct Series {
  std::vector<double> values;

  void Add(double v) { values.push_back(v); }
  double Mean() const {
    if (values.empty()) return 0;
    double sum = 0;
    for (double v : values) sum += v;
    return sum / static_cast<double>(values.size());
  }
  double StdDev() const {
    if (values.size() < 2) return 0;
    const double mean = Mean();
    double sq = 0;
    for (double v : values) sq += (v - mean) * (v - mean);
    return std::sqrt(sq / static_cast<double>(values.size() - 1));
  }
  double Min() const {
    double best = values.empty() ? 0 : values[0];
    for (double v : values) best = std::min(best, v);
    return best;
  }
  double Max() const {
    double worst = values.empty() ? 0 : values[0];
    for (double v : values) worst = std::max(worst, v);
    return worst;
  }
  /// "12.4 ± 1.3"
  std::string MeanStd() const {
    return util::StrFormat("%.1f ± %.1f", Mean(), StdDev());
  }
};

/// Runs `body(seed)` for `repetitions` seeds derived from `base_seed`,
/// collecting one value per run.
inline Series Repeat(size_t repetitions, uint64_t base_seed,
                     const std::function<double(uint64_t)>& body) {
  Series series;
  for (size_t r = 0; r < repetitions; ++r) {
    series.Add(body(base_seed + 1000003 * r));
  }
  return series;
}

}  // namespace jim::bench

#endif  // JIM_BENCH_BENCH_UTIL_H_
