#ifndef JIM_BENCH_BENCH_UTIL_H_
#define JIM_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <iostream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "exec/parallel.h"
#include "obs/metrics.h"
#include "util/check.h"
#include "util/json_writer.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace jim::bench {

/// Appends the shared `"meta"` provenance block every BENCH_*.json carries:
/// resolved worker threads, the machine's hardware threads, the CMake build
/// type and sanitizer list (baked in at compile time via
/// JIM_BENCH_BUILD_TYPE / JIM_BENCH_SANITIZE), and the runtime
/// metrics/audit toggles — enough to tell two snapshots of "the same" bench
/// apart before comparing their numbers. Call it between KeyValue entries
/// of the top-level JSON object.
inline void AppendMetaBlock(util::JsonWriter& json) {
#if defined(JIM_BENCH_BUILD_TYPE)
  constexpr const char* kBuildType = JIM_BENCH_BUILD_TYPE;
#else
  constexpr const char* kBuildType = "";
#endif
#if defined(JIM_BENCH_SANITIZE)
  constexpr const char* kSanitize = JIM_BENCH_SANITIZE;
#else
  constexpr const char* kSanitize = "";
#endif
  json.Key("meta").BeginObject();
  json.KeyValue("threads", exec::DefaultThreads());
  json.KeyValue("hardware_threads",
                static_cast<size_t>(std::thread::hardware_concurrency()));
  json.KeyValue("build_type", kBuildType);
  json.KeyValue("sanitize", kSanitize);
  json.KeyValue("metrics_enabled", obs::MetricsEnabled());
  json.KeyValue("audit_invariants", util::AuditInvariantsEnabled());
  json.EndObject();
}

/// Appends the process metrics registry as a `"metrics"` key — the
/// observability counters accumulated over the bench run (empty sub-objects
/// when metrics stayed disabled). Lets perf trajectories correlate ns/op
/// movements with work-count movements (e.g. "did propagation get faster,
/// or did it just prune less?").
inline void AppendMetricsSnapshot(util::JsonWriter& json) {
  json.Key("metrics");
  obs::MetricsRegistry::Instance().Snapshot().AppendTo(json);
}

/// Shared `--threads N` parsing for the parallel benches. Consumes the flag
/// (and its value) out of argc/argv so each bench can parse its remaining
/// flags afterwards, installs the count as the process-wide default
/// (exec::SetDefaultThreads — the shared lookahead pool is sized from it),
/// and returns the resolved parallelism. Without the flag this falls back
/// to JIM_THREADS, then to the hardware thread count (see
/// exec::DefaultThreads). Exits with a usage error on a malformed value.
///
/// Thread count is a latency knob only: every parallel path in JIM is
/// deterministic, so bench decision outputs are identical at any value.
inline size_t ParseThreadsFlag(int& argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) != "--threads") continue;
    if (i + 1 >= argc) {
      std::cerr << argv[0] << ": --threads requires a count\n";
      std::exit(2);
    }
    const auto parsed = util::ParseInt64(argv[i + 1]);
    if (!parsed.ok() || *parsed <= 0) {
      std::cerr << argv[0] << ": --threads wants a positive integer (got '"
                << argv[i + 1] << "')\n";
      std::exit(2);
    }
    exec::SetDefaultThreads(static_cast<size_t>(*parsed));
    for (int j = i + 2; j < argc; ++j) argv[j - 2] = argv[j];
    argc -= 2;
    break;
  }
  return exec::DefaultThreads();
}

/// Keeps `value` observable so the compiler cannot elide a benchmarked call.
/// clang rejects non-trivially-copyable operands under the "g" constraint,
/// so it gets the memory-operand form (the named parameter is an lvalue, so
/// "m" is always satisfiable).
template <typename T>
inline void DoNotOptimize(T&& value) {
#if defined(__clang__)
  asm volatile("" : : "m"(value) : "memory");
#else
  asm volatile("" : : "g"(value) : "memory");
#endif
}

/// One measured microbenchmark case.
struct BenchResult {
  std::string name;
  int64_t arg = -1;  // -1 when the benchmark takes no size parameter
  size_t iterations = 0;
  double ns_per_op = 0;
};

/// Runs `body` repeatedly until at least `min_seconds` of wall time has
/// accumulated (with geometric iteration growth), then reports the mean
/// latency per call. Templated on the callable so the body inlines into the
/// timed loop (a std::function indirection would bias nanosecond-scale
/// cases).
template <typename Body>
BenchResult RunBench(const std::string& name, int64_t arg, const Body& body,
                     double min_seconds = 0.05) {
  size_t iterations = 1;
  double elapsed = 0;
  size_t total_iterations = 0;
  util::Stopwatch total;
  for (;;) {
    util::Stopwatch watch;
    for (size_t i = 0; i < iterations; ++i) body();
    elapsed = watch.ElapsedSeconds();
    total_iterations = iterations;
    if (elapsed >= min_seconds || total.ElapsedSeconds() > 2.0) break;
    const double scale = elapsed > 0 ? (1.4 * min_seconds / elapsed) : 10.0;
    iterations = static_cast<size_t>(static_cast<double>(iterations) *
                                     std::min(scale, 10.0)) +
                 1;
  }
  BenchResult result;
  result.name = name;
  result.arg = arg;
  result.iterations = total_iterations;
  result.ns_per_op = elapsed * 1e9 /
                     static_cast<double>(std::max<size_t>(total_iterations, 1));
  return result;
}

/// Mean and sample standard deviation of a series.
struct Series {
  std::vector<double> values;

  void Add(double v) { values.push_back(v); }
  double Mean() const {
    if (values.empty()) return 0;
    double sum = 0;
    for (double v : values) sum += v;
    return sum / static_cast<double>(values.size());
  }
  double StdDev() const {
    if (values.size() < 2) return 0;
    const double mean = Mean();
    double sq = 0;
    for (double v : values) sq += (v - mean) * (v - mean);
    return std::sqrt(sq / static_cast<double>(values.size() - 1));
  }
  double Min() const {
    double best = values.empty() ? 0 : values[0];
    for (double v : values) best = std::min(best, v);
    return best;
  }
  double Max() const {
    double worst = values.empty() ? 0 : values[0];
    for (double v : values) worst = std::max(worst, v);
    return worst;
  }
  /// "12.4 ± 1.3"
  std::string MeanStd() const {
    return util::StrFormat("%.1f ± %.1f", Mean(), StdDev());
  }
};

/// Runs `body(seed)` for `repetitions` seeds derived from `base_seed`,
/// collecting one value per run.
inline Series Repeat(size_t repetitions, uint64_t base_seed,
                     const std::function<double(uint64_t)>& body) {
  Series series;
  for (size_t r = 0; r < repetitions; ++r) {
    series.Add(body(base_seed + 1000003 * r));
  }
  return series;
}

}  // namespace jim::bench

#endif  // JIM_BENCH_BENCH_UTIL_H_
