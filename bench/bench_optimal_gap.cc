// Experiment S4 (DESIGN.md): the optimal strategy. The paper: "there exists
// an algorithm that computes the optimal strategy ... but it requires
// exponential time, which unfortunately renders it unusable in practice."
// This bench quantifies both halves of that sentence on tiny instances:
//   - the gap: heuristic interactions vs the minimax optimum;
//   - the cost: per-decision latency of optimal vs the heuristics.

#include <iostream>

#include "bench/bench_util.h"
#include "core/jim.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"
#include "workload/synthetic.h"
#include "workload/travel.h"

int main() {
  using namespace jim;

  struct Scenario {
    std::string name;
    std::shared_ptr<const core::TupleStore> store;
    core::JoinPredicate goal;
  };
  std::vector<Scenario> scenarios;
  {
    auto store = workload::Figure1StorePtr();
    scenarios.push_back(
        {"travel/Q1", store,
         core::JoinPredicate::Parse(store->schema(), workload::kQ1)
             .value()});
    scenarios.push_back(
        {"travel/Q2", store,
         core::JoinPredicate::Parse(store->schema(), workload::kQ2)
             .value()});
  }
  // The minimax search is exponential in the class structure: ~16 tuple
  // classes is the practical ceiling (that is the paper's point — see the
  // solve-time column explode while the instances stay toy-sized).
  struct TinySpec {
    size_t attrs;
    size_t tuples;
  };
  for (const TinySpec& tiny : {TinySpec{4, 25}, TinySpec{4, 40},
                               TinySpec{5, 15}, TinySpec{5, 25}}) {
    util::Rng rng(11 * tiny.attrs + tiny.tuples);
    workload::SyntheticSpec spec;
    spec.num_attributes = tiny.attrs;
    spec.num_tuples = tiny.tuples;
    spec.domain_size = 3;
    spec.goal_constraints = 2;
    auto workload = workload::MakeSyntheticWorkload(spec, rng);
    scenarios.push_back({util::StrFormat("synthetic %zu attrs, %zu tuples",
                                         tiny.attrs, tiny.tuples),
                         workload.store, workload.goal});
  }

  std::cout << "== S4: heuristics vs the exponential optimal strategy ==\n\n";
  util::TablePrinter table({"scenario", "classes", "optimal worst-case",
                            "strategy", "interactions", "ms/decision"});
  table.SetAlignments({util::Align::kLeft, util::Align::kRight,
                       util::Align::kRight, util::Align::kLeft,
                       util::Align::kRight, util::Align::kRight});

  for (const Scenario& scenario : scenarios) {
    core::InferenceEngine probe(scenario.store);
    util::Stopwatch minimax_clock;
    const size_t optimal_worst =
        core::OptimalWorstCaseQuestions(probe, /*node_budget=*/4'000'000);
    const double minimax_seconds = minimax_clock.ElapsedSeconds();

    for (const std::string& name :
         {std::string("local-bottom-up"), std::string("lookahead-minmax"),
          std::string("optimal")}) {
      auto strategy = core::MakeStrategy(name, 3).value();
      util::Stopwatch session_clock;
      const auto result =
          core::RunSession(scenario.store, scenario.goal, *strategy);
      const double ms_per_decision =
          result.steps.empty()
              ? 0
              : session_clock.ElapsedSeconds() * 1e3 /
                    static_cast<double>(result.steps.size());
      table.AddRow({scenario.name, std::to_string(probe.num_classes()),
                    std::to_string(optimal_worst), name,
                    std::to_string(result.interactions),
                    util::StrFormat("%.3f", ms_per_decision)});
    }
    table.AddSeparator();
    std::cout << "  (" << scenario.name << ": full minimax solve took "
              << util::StrFormat("%.1f ms", minimax_seconds * 1e3) << ")\n";
  }
  std::cout << "\n" << table.ToString()
            << "\nExpected shape: heuristic interaction counts sit at or "
               "near the optimal worst case, at orders-of-magnitude lower "
               "per-decision cost; minimax solve time explodes with "
               "instance size.\n";
  return 0;
}
