// Experiment S3 (DESIGN.md): join inference on benchmark data — the TPC-H
// scenarios of the companion evaluation [3]. For each key/foreign-key goal
// join, JIM works over the (sampled) universal table of the involved
// relations and must identify the join from membership answers alone.

#include <cstring>
#include <iostream>

#include "bench/bench_util.h"
#include "core/jim.h"
#include "query/universal_table.h"
#include "util/rng.h"
#include "util/table_printer.h"
#include "workload/tpch.h"

namespace {

/// A reduced TPC-H spec for --quick: the same eight relations and
/// key/foreign-key shape, an order of magnitude fewer rows — the whole sweep
/// finishes in a few seconds, so it fits CI budgets.
jim::workload::TpchSpec QuickSpec() {
  jim::workload::TpchSpec spec;
  spec.num_regions = 3;
  spec.num_nations = 8;
  spec.num_suppliers = 6;
  spec.num_customers = 12;
  spec.num_parts = 10;
  spec.num_partsupp_per_part = 2;
  spec.num_orders = 25;
  spec.num_lineitems_per_order = 2;
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace jim;

  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      std::cerr << "bench_tpch: unknown argument '" << argv[i]
                << "' (usage: bench_tpch [--quick])\n";
      return 2;
    }
  }

  util::Rng rng(2026);
  const rel::Catalog catalog =
      workload::MakeTpchCatalog(quick ? QuickSpec() : workload::TpchSpec{}, rng);
  std::cout << "== S3: TPC-H join-inference scenarios"
            << (quick ? " (--quick)" : "") << " ==\n(catalog: ";
  for (const std::string& name : catalog.Names()) std::cout << name << " ";
  std::cout << ")\n\n";

  const std::vector<std::string> strategies = {"random", "local-bottom-up",
                                               "lookahead-entropy"};
  util::TablePrinter table({"scenario", "goal eqs", "candidates", "classes",
                            "random", "local-bu", "la-entropy", "identified"});
  table.SetAlignments({util::Align::kLeft, util::Align::kRight,
                       util::Align::kRight, util::Align::kRight,
                       util::Align::kRight, util::Align::kRight,
                       util::Align::kRight, util::Align::kLeft});

  for (const workload::TpchScenario& scenario : workload::TpchScenarios()) {
    query::UniversalTableOptions options;
    options.sample_cap = quick ? 2'000 : 20'000;
    options.seed = 606;
    auto table_or =
        query::UniversalTable::Build(catalog, scenario.relations, options);
    if (!table_or.ok()) {
      std::cerr << scenario.name << ": " << table_or.status().ToString()
                << "\n";
      continue;
    }
    const auto& universal = *table_or;
    auto goal = core::JoinPredicate::Parse(universal.schema(), scenario.goal);
    if (!goal.ok()) {
      std::cerr << scenario.name << ": " << goal.status().ToString() << "\n";
      continue;
    }

    core::InferenceEngine probe(universal.store());
    std::vector<std::string> row = {
        scenario.name, std::to_string(scenario.goal_constraints),
        std::to_string(universal.num_tuples()),
        std::to_string(probe.num_classes())};
    bool identified = true;
    for (const std::string& name : strategies) {
      const bench::Series series =
          bench::Repeat(name == "random" ? 5 : 1, 88, [&](uint64_t seed) {
            auto strategy = core::MakeStrategy(name, seed).value();
            const auto result =
                core::RunSession(universal.store(), *goal, *strategy);
            if (!result.identified_goal) identified = false;
            return static_cast<double>(result.interactions);
          });
      row.push_back(util::StrFormat("%.1f", series.Mean()));
    }
    row.push_back(identified ? "yes" : "NO");
    table.AddRow(std::move(row));
  }
  std::cout << table.ToString()
            << "\nExpected shape: interactions grow with goal complexity "
               "(and schema width), not with the number of candidate "
               "tuples; all goals identified exactly.\n";
  return 0;
}
