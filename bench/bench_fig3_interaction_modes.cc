// Experiment F3 (DESIGN.md): the four interaction types of paper Figure 3,
// run on three scenarios. For each mode we report the user's labeling
// effort (interactions, mean ± std over simulated-user seeds) and how much
// of it was wasted on uninformative tuples (only mode 1 can waste effort —
// nothing is grayed out there).
//
// The (scenario × mode × repetition) grid runs concurrently on engine
// clones via exec::BatchSessionRunner (--threads N / JIM_THREADS); all
// seeds are fixed per job, so the table is byte-identical at any thread
// count.

#include <iostream>

#include "bench/bench_util.h"
#include "core/jim.h"
#include "exec/batch_runner.h"
#include "util/rng.h"
#include "util/table_printer.h"
#include "workload/setgame.h"
#include "workload/synthetic.h"
#include "workload/travel.h"

namespace {

using namespace jim;

struct Scenario {
  std::string name;
  std::shared_ptr<const core::TupleStore> store;
  core::JoinPredicate goal;
};

}  // namespace

int main(int argc, char** argv) {
  const size_t threads = bench::ParseThreadsFlag(argc, argv);
  std::vector<Scenario> scenarios;

  {
    auto store = workload::Figure1StorePtr();
    scenarios.push_back(
        {"travel/Q2 (12 tuples)", store,
         core::JoinPredicate::Parse(store->schema(), workload::kQ2)
             .value()});
  }
  {
    util::Rng rng(31);
    auto store = workload::SetPairStore(/*sample_size=*/600, rng);
    scenarios.push_back({"set-cards sample (600 pairs)", store,
                         workload::SameColorAndShadingGoal(
                             store->schema())});
  }
  {
    util::Rng rng(32);
    workload::SyntheticSpec spec;
    spec.num_attributes = 7;
    spec.num_tuples = 400;
    spec.domain_size = 6;
    spec.goal_constraints = 2;
    auto workload = workload::MakeSyntheticWorkload(spec, rng);
    scenarios.push_back(
        {"synthetic (400 tuples, 7 attrs)", workload.store, workload.goal});
  }

  constexpr size_t kRepetitions = 15;
  std::cout << "== F3: labeling effort per interaction type (mean ± std over "
            << kRepetitions << " simulated users) ==\n\n";

  // One prototype engine per scenario; every (mode, rep) session clones it.
  exec::ThreadPool pool(threads);
  const exec::BatchSessionRunner runner(threads > 1 ? &pool : nullptr);
  std::vector<exec::SessionSpec> specs;
  specs.reserve(scenarios.size() * 4 * kRepetitions);
  for (const Scenario& scenario : scenarios) {
    auto prototype =
        std::make_shared<const core::InferenceEngine>(scenario.store);
    for (int mode = 1; mode <= 4; ++mode) {
      for (size_t rep = 0; rep < kRepetitions; ++rep) {
        exec::SessionSpec spec(prototype, scenario.goal);
        const uint64_t strategy_seed = 101 + rep;
        spec.make_strategy = [strategy_seed] {
          return core::MakeStrategy("lookahead-entropy", strategy_seed)
              .value();
        };
        spec.options.mode = static_cast<core::InteractionMode>(mode);
        spec.options.user_seed = 555 + 7 * rep;
        specs.push_back(std::move(spec));
      }
    }
  }
  const std::vector<core::SessionResult> results = runner.Run(specs);

  util::TablePrinter table({"scenario", "mode", "interactions", "wasted",
                            "identified"});
  table.SetAlignments({util::Align::kLeft, util::Align::kLeft,
                       util::Align::kRight, util::Align::kRight,
                       util::Align::kLeft});
  size_t job = 0;
  for (const Scenario& scenario : scenarios) {
    for (int mode = 1; mode <= 4; ++mode) {
      bench::Series interactions;
      bench::Series wasted;
      bool identified = true;
      for (size_t rep = 0; rep < kRepetitions; ++rep, ++job) {
        const core::SessionResult& result = results[job];
        interactions.Add(static_cast<double>(result.interactions));
        wasted.Add(static_cast<double>(result.wasted_interactions));
        identified = identified && result.identified_goal;
      }
      table.AddRow({scenario.name,
                    std::string(core::InteractionModeToString(
                        static_cast<core::InteractionMode>(mode))),
                    interactions.MeanStd(), wasted.MeanStd(),
                    identified ? "yes" : "NO"});
    }
    table.AddSeparator();
  }
  std::cout << table.ToString()
            << "\nExpected shape: mode 4 ≤ mode 3 ≤ mode 2 ≪ mode 1 "
               "(the strategy saves user effort; gray-out alone already "
               "prevents wasted labels).\n";
  return 0;
}
