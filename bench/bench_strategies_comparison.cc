// Experiment S1 (DESIGN.md): "Comparing different strategies" (paper §3).
// The demo's point: "for more complex instances and join queries a lookahead
// strategy performs better than a local one while for simpler instances and
// queries a local strategy is better" — in interactions; local strategies
// buy their occasional extra questions with far cheaper per-step computation.
//
// Complexity is swept on two axes:
//   - goal complexity: number of equality constraints in the planted query;
//   - instance complexity: smaller value domains create more accidental
//     inter-attribute equalities (more distinct tuple classes to separate).
//
// The strategies × repetitions grid of each point runs concurrently on
// engine clones via exec::BatchSessionRunner (--threads N / JIM_THREADS);
// every job's seeds are fixed per (strategy, repetition), so the table is
// byte-identical at any thread count.

#include <iostream>

#include "bench/bench_util.h"
#include "core/jim.h"
#include "exec/batch_runner.h"
#include "util/table_printer.h"
#include "workload/synthetic.h"

int main(int argc, char** argv) {
  using namespace jim;
  const size_t threads = bench::ParseThreadsFlag(argc, argv);

  const std::vector<std::string> strategies = {
      "random", "local-bottom-up", "local-top-down", "lookahead-minmax",
      "lookahead-entropy"};
  constexpr size_t kRepetitions = 11;

  exec::ThreadPool pool(threads);
  const exec::BatchSessionRunner runner(threads > 1 ? &pool : nullptr);

  std::cout << "== S1: interactions by strategy across workload complexity "
               "(mean over " << kRepetitions << " instances) ==\n\n";

  util::TablePrinter table({"attrs", "domain", "goal eqs", "classes", "random",
                            "local-bu", "local-td", "la-minmax", "la-entropy",
                            "winner"});
  table.SetAlignments({util::Align::kRight, util::Align::kRight,
                       util::Align::kRight, util::Align::kRight,
                       util::Align::kRight, util::Align::kRight,
                       util::Align::kRight, util::Align::kRight,
                       util::Align::kRight, util::Align::kLeft});

  struct GridPoint {
    size_t attrs;
    size_t domain;
    size_t goal_eqs;
  };
  const std::vector<GridPoint> grid = {
      // simple instances, simple goals
      {4, 16, 1},
      {5, 16, 1},
      {5, 8, 2},
      {6, 8, 2},
      // complex instances and/or goals
      {6, 4, 3},
      {7, 4, 3},
      {8, 3, 4},
      {8, 2, 4},
  };

  for (const GridPoint& point : grid) {
    // One instance (and one built prototype engine) per repetition seed,
    // shared by all five strategies' clones.
    const uint64_t base_seed = 1200 + point.attrs * 31 + point.domain;
    std::vector<uint64_t> seeds;
    std::vector<std::shared_ptr<const core::InferenceEngine>> prototypes;
    std::vector<core::JoinPredicate> goals;
    bench::Series classes;
    for (size_t r = 0; r < kRepetitions; ++r) {
      const uint64_t seed = base_seed + 1000003 * r;
      util::Rng rng(seed);
      workload::SyntheticSpec spec;
      spec.num_attributes = point.attrs;
      spec.num_tuples = 500;
      spec.domain_size = point.domain;
      spec.goal_constraints = point.goal_eqs;
      const auto workload = workload::MakeSyntheticWorkload(spec, rng);
      auto prototype =
          std::make_shared<core::InferenceEngine>(workload.store);
      classes.Add(static_cast<double>(prototype->num_classes()));
      seeds.push_back(seed);
      prototypes.push_back(std::move(prototype));
      goals.push_back(workload.goal);
    }

    // Job order is (strategy, repetition) — results are read back by index.
    std::vector<exec::SessionSpec> specs;
    specs.reserve(strategies.size() * kRepetitions);
    for (const std::string& name : strategies) {
      for (size_t r = 0; r < kRepetitions; ++r) {
        exec::SessionSpec spec(prototypes[r], goals[r]);
        const uint64_t strategy_seed = seeds[r] * 7 + 3;
        spec.make_strategy = [name, strategy_seed] {
          return core::MakeStrategy(name, strategy_seed).value();
        };
        specs.push_back(std::move(spec));
      }
    }
    const std::vector<core::SessionResult> results = runner.Run(specs);

    std::vector<double> means;
    for (size_t s = 0; s < strategies.size(); ++s) {
      bench::Series interactions;
      for (size_t r = 0; r < kRepetitions; ++r) {
        interactions.Add(
            static_cast<double>(results[s * kRepetitions + r].interactions));
      }
      means.push_back(interactions.Mean());
    }
    size_t winner = 0;
    for (size_t i = 1; i < means.size(); ++i) {
      if (means[i] < means[winner]) winner = i;
    }
    std::vector<std::string> row = {
        std::to_string(point.attrs), std::to_string(point.domain),
        std::to_string(point.goal_eqs),
        util::StrFormat("%.0f", classes.Mean())};
    for (double mean : means) row.push_back(util::StrFormat("%.1f", mean));
    row.push_back(strategies[winner]);
    table.AddRow(std::move(row));
  }
  std::cout << table.ToString()
            << "\nExpected shape: on the simple end (top rows) local "
               "strategies match or beat lookahead; as instances/goals grow "
               "complex (bottom rows) lookahead wins and random degrades "
               "fastest.\n";
  return 0;
}
