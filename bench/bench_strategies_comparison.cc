// Experiment S1 (DESIGN.md): "Comparing different strategies" (paper §3).
// The demo's point: "for more complex instances and join queries a lookahead
// strategy performs better than a local one while for simpler instances and
// queries a local strategy is better" — in interactions; local strategies
// buy their occasional extra questions with far cheaper per-step computation.
//
// Complexity is swept on two axes:
//   - goal complexity: number of equality constraints in the planted query;
//   - instance complexity: smaller value domains create more accidental
//     inter-attribute equalities (more distinct tuple classes to separate).

#include <iostream>

#include "bench/bench_util.h"
#include "core/jim.h"
#include "util/table_printer.h"
#include "workload/synthetic.h"

int main() {
  using namespace jim;

  const std::vector<std::string> strategies = {
      "random", "local-bottom-up", "local-top-down", "lookahead-minmax",
      "lookahead-entropy"};
  constexpr size_t kRepetitions = 11;

  std::cout << "== S1: interactions by strategy across workload complexity "
               "(mean over " << kRepetitions << " instances) ==\n\n";

  util::TablePrinter table({"attrs", "domain", "goal eqs", "classes", "random",
                            "local-bu", "local-td", "la-minmax", "la-entropy",
                            "winner"});
  table.SetAlignments({util::Align::kRight, util::Align::kRight,
                       util::Align::kRight, util::Align::kRight,
                       util::Align::kRight, util::Align::kRight,
                       util::Align::kRight, util::Align::kRight,
                       util::Align::kRight, util::Align::kLeft});

  struct GridPoint {
    size_t attrs;
    size_t domain;
    size_t goal_eqs;
  };
  const std::vector<GridPoint> grid = {
      // simple instances, simple goals
      {4, 16, 1},
      {5, 16, 1},
      {5, 8, 2},
      {6, 8, 2},
      // complex instances and/or goals
      {6, 4, 3},
      {7, 4, 3},
      {8, 3, 4},
      {8, 2, 4},
  };

  for (const GridPoint& point : grid) {
    std::vector<double> means;
    bench::Series classes;
    for (const std::string& name : strategies) {
      const bench::Series series = bench::Repeat(
          kRepetitions, 1200 + point.attrs * 31 + point.domain,
          [&](uint64_t seed) {
            util::Rng rng(seed);
            workload::SyntheticSpec spec;
            spec.num_attributes = point.attrs;
            spec.num_tuples = 500;
            spec.domain_size = point.domain;
            spec.goal_constraints = point.goal_eqs;
            const auto workload = workload::MakeSyntheticWorkload(spec, rng);
            if (name == strategies[0]) {
              core::InferenceEngine probe(workload.instance);
              classes.Add(static_cast<double>(probe.num_classes()));
            }
            auto strategy = core::MakeStrategy(name, seed * 7 + 3).value();
            const auto result =
                core::RunSession(workload.instance, workload.goal, *strategy);
            return static_cast<double>(result.interactions);
          });
      means.push_back(series.Mean());
    }
    size_t winner = 0;
    for (size_t i = 1; i < means.size(); ++i) {
      if (means[i] < means[winner]) winner = i;
    }
    std::vector<std::string> row = {
        std::to_string(point.attrs), std::to_string(point.domain),
        std::to_string(point.goal_eqs),
        util::StrFormat("%.0f", classes.Mean())};
    for (double mean : means) row.push_back(util::StrFormat("%.1f", mean));
    row.push_back(strategies[winner]);
    table.AddRow(std::move(row));
  }
  std::cout << table.ToString()
            << "\nExpected shape: on the simple end (top rows) local "
               "strategies match or beat lookahead; as instances/goals grow "
               "complex (bottom rows) lookahead wins and random degrades "
               "fastest.\n";
  return 0;
}
