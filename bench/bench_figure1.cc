// Experiment F1/F2 (DESIGN.md): the paper's own worked example, measured.
//
// Regenerates, for the Figure 1 instance:
//   - the selected sets of Q1/Q2 and the tuple-(12) pruning sets quoted in
//     the paper's narrative (printed as a checklist),
//   - the number of interactions each strategy needs to infer Q1 and Q2
//     (the trace of the interactive scenario of Figure 2).

#include <iostream>

#include "bench/bench_util.h"
#include "core/jim.h"
#include "util/table_printer.h"
#include "workload/travel.h"

int main() {
  using namespace jim;

  auto instance = workload::Figure1InstancePtr();
  auto store = workload::Figure1StorePtr();
  const auto q1 =
      core::JoinPredicate::Parse(instance->schema(), workload::kQ1).value();
  const auto q2 =
      core::JoinPredicate::Parse(instance->schema(), workload::kQ2).value();

  std::cout << "== F1: paper-narrative checklist on the Figure 1 instance ==\n";
  auto print_check = [](const std::string& claim, bool ok) {
    std::cout << "  [" << (ok ? "ok" : "FAIL") << "] " << claim << "\n";
  };
  print_check("Q2 ⊆ Q1", q2.ContainedIn(q1));
  print_check("Q1 selects {3,4,8,10}",
              q1.SelectedRows(*instance).ToVector() ==
                  std::vector<size_t>({2, 3, 7, 9}));
  print_check("Q2 selects {3,4}", q2.SelectedRows(*instance).ToVector() ==
                                      std::vector<size_t>({2, 3}));
  {
    core::InferenceEngine engine(store);
    (void)engine.SubmitTupleLabel(11, core::Label::kPositive);
    size_t grayed = 0;
    for (size_t t = 0; t < 12; ++t) {
      const auto status = engine.tuple_status(t);
      if (status == core::TupleStatus::kForcedPositive ||
          status == core::TupleStatus::kForcedNegative) {
        ++grayed;
      }
    }
    print_check("(12)+ grays out exactly 3 tuples {3,4,7}", grayed == 3);
  }
  {
    core::InferenceEngine engine(store);
    (void)engine.SubmitTupleLabel(11, core::Label::kNegative);
    size_t grayed = 0;
    for (size_t t = 0; t < 12; ++t) {
      const auto status = engine.tuple_status(t);
      if (status == core::TupleStatus::kForcedPositive ||
          status == core::TupleStatus::kForcedNegative) {
        ++grayed;
      }
    }
    print_check("(12)- grays out exactly 3 tuples {1,5,9}", grayed == 3);
  }

  std::cout << "\n== F2: interactions per strategy (interactive scenario, "
               "Figure 2) ==\n";
  util::TablePrinter table({"strategy", "Q1 interactions", "Q2 interactions",
                            "identified both"});
  table.SetAlignments({util::Align::kLeft, util::Align::kRight,
                       util::Align::kRight, util::Align::kLeft});
  for (const std::string& name : core::KnownStrategyNames()) {
    size_t interactions_q1 = 0;
    size_t interactions_q2 = 0;
    bool identified = true;
    {
      auto strategy = core::MakeStrategy(name, 17).value();
      const auto result = core::RunSession(store, q1, *strategy);
      interactions_q1 = result.interactions;
      identified = identified && result.identified_goal;
    }
    {
      auto strategy = core::MakeStrategy(name, 17).value();
      const auto result = core::RunSession(store, q2, *strategy);
      interactions_q2 = result.interactions;
      identified = identified && result.identified_goal;
    }
    table.AddRow({name, std::to_string(interactions_q1),
                  std::to_string(interactions_q2), identified ? "yes" : "NO"});
  }
  std::cout << table.ToString();

  std::cout << "\ntrace of lookahead-entropy inferring Q2:\n";
  auto strategy = core::MakeStrategy("lookahead-entropy").value();
  const auto result = core::RunSession(store, q2, *strategy);
  for (size_t i = 0; i < result.steps.size(); ++i) {
    const auto& step = result.steps[i];
    std::cout << "  step " << i + 1 << ": asked tuple (" << step.tuple_index + 1
              << "), answer " << core::LabelToString(step.label) << ", pruned "
              << step.pruned_tuples << " tuples\n";
  }
  std::cout << "  -> " << result.result->ToString() << "\n";
  return 0;
}
