// Experiment S5 (DESIGN.md): the crowdsourcing cost argument (paper §1).
// "Since our goal is to minimize the number of interactions ... minimizing
// the number of interactions entails lower financial costs." Prices the
// same join three ways across worker reliability levels, plus a voting
// sweep showing how redundancy buys correctness.

#include <iostream>

#include "bench/bench_util.h"
#include "core/jim.h"
#include "crowd/baselines.h"
#include "crowd/crowd_join.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "workload/setgame.h"

int main() {
  using namespace jim;

  const rel::Relation cards = workload::AllSetCards();
  util::Rng rng(3);
  auto pair_instance = workload::SetPairInstance(/*sample_size=*/0, rng);
  auto pair_store = core::MakeRelationStore(pair_instance);
  auto goal = core::JoinPredicate::Parse(pair_instance->schema(),
                                         "Left.Color=Right.Color")
                  .value();

  std::cout << "== S5: crowd cost of joining " << cards.num_rows()
            << " pictures on same-color (" << pair_instance->num_rows()
            << " pairs; $0.05/answer, 3 workers/question) ==\n\n";

  constexpr size_t kRepetitions = 7;
  util::TablePrinter table({"worker err", "method", "questions", "cost ($)",
                            "correct runs"});
  table.SetAlignments({util::Align::kRight, util::Align::kLeft,
                       util::Align::kRight, util::Align::kRight,
                       util::Align::kRight});

  for (double error : {0.0, 0.05, 0.1, 0.2}) {
    struct Method {
      std::string name;
      std::function<crowd::CrowdRunResult(const crowd::CrowdOptions&)> run;
    };
    const std::vector<Method> methods = {
        {"JIM (crowd-answered)",
         [&](const crowd::CrowdOptions& options) {
           auto strategy =
               core::MakeStrategy("lookahead-entropy", options.seed).value();
           return crowd::RunCrowdJim(pair_store, goal, *strategy, options);
         }},
        {"transitive [5]",
         [&](const crowd::CrowdOptions& options) {
           return crowd::RunTransitiveCrowdJoin(cards, goal, options);
         }},
        {"label everything",
         [&](const crowd::CrowdOptions& options) {
           return crowd::RunLabelEverything(pair_instance, goal, options);
         }},
    };
    for (const Method& method : methods) {
      bench::Series questions;
      bench::Series cost;
      size_t correct_runs = 0;
      for (size_t rep = 0; rep < kRepetitions; ++rep) {
        crowd::CrowdOptions options;
        options.worker_error_rate = error;
        options.seed = 71 + rep * 13;
        const auto result = method.run(options);
        questions.Add(static_cast<double>(result.questions));
        cost.Add(result.total_cost);
        if (result.correct) ++correct_runs;
      }
      table.AddRow({util::FormatDouble(error), method.name,
                    util::StrFormat("%.0f", questions.Mean()),
                    util::StrFormat("%.2f", cost.Mean()),
                    util::StrFormat("%zu/%zu", correct_runs, kRepetitions)});
    }
    table.AddSeparator();
  }
  std::cout << table.ToString();

  std::cout << "\n-- voting redundancy (worker error 0.2) --\n";
  util::TablePrinter voting({"workers/question", "majority err rate",
                             "JIM cost ($)", "JIM correct runs"});
  voting.SetAlignments({util::Align::kRight, util::Align::kRight,
                        util::Align::kRight, util::Align::kRight});
  for (size_t workers : {1u, 3u, 5u, 7u, 9u}) {
    bench::Series cost;
    size_t correct_runs = 0;
    for (size_t rep = 0; rep < kRepetitions; ++rep) {
      crowd::CrowdOptions options;
      options.worker_error_rate = 0.2;
      options.workers_per_question = workers;
      options.seed = 501 + rep * 11;
      auto strategy =
          core::MakeStrategy("lookahead-entropy", options.seed).value();
      const auto result =
          crowd::RunCrowdJim(pair_instance, goal, *strategy, options);
      cost.Add(result.total_cost);
      if (result.correct) ++correct_runs;
    }
    voting.AddRow({std::to_string(workers),
                   util::StrFormat("%.3f",
                                   crowd::MajorityErrorRate(workers, 0.2)),
                   util::StrFormat("%.2f", cost.Mean()),
                   util::StrFormat("%zu/%zu", correct_runs, kRepetitions)});
  }
  std::cout << voting.ToString()
            << "\nExpected shape: JIM costs cents where exhaustive labeling "
               "costs hundreds of dollars; extra votes per question trade "
               "pennies for reliability.\n";
  return 0;
}
