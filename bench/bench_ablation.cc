// Ablation bench (DESIGN.md, process step 5): quantifies the design choices
// of the lookahead machinery rather than a paper figure.
//   A1 — candidate cap: lookahead strategies score at most `max_candidates`
//        informative classes per step. How much interaction quality does the
//        cap cost, and how much decision latency does it buy?
//   A2 — entropy family: the generalized (Tsallis) α parameter of
//        lookahead-entropy. Does the choice of α matter?
//   A3 — hypothesis-space price: the selection+join extension runs the same
//        goals in a strictly larger space; how many extra questions?

#include <iostream>

#include "bench/bench_util.h"
#include "core/jim.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"
#include "workload/synthetic.h"
#include "workload/travel.h"

namespace {

using namespace jim;

workload::SyntheticWorkload MakeWorkload(uint64_t seed) {
  util::Rng rng(seed);
  workload::SyntheticSpec spec;
  spec.num_attributes = 7;
  spec.num_tuples = 1500;
  spec.domain_size = 4;
  spec.goal_constraints = 3;
  return workload::MakeSyntheticWorkload(spec, rng);
}

}  // namespace

int main() {
  constexpr size_t kRepetitions = 7;

  std::cout << "== A1: lookahead candidate cap (synthetic: 7 attrs, 1500 "
               "tuples, 3-eq goals; mean over "
            << kRepetitions << " instances) ==\n\n";
  util::TablePrinter cap_table(
      {"max_candidates", "interactions", "ms/decision"});
  cap_table.SetAlignments({util::Align::kRight, util::Align::kRight,
                           util::Align::kRight});
  for (size_t cap : {4u, 16u, 64u, 256u, 0u}) {
    bench::Series interactions;
    bench::Series millis;
    for (size_t rep = 0; rep < kRepetitions; ++rep) {
      const auto workload = MakeWorkload(500 + rep);
      core::LookaheadStrategy strategy(
          core::LookaheadStrategy::Objective::kEntropy, /*alpha=*/1.0, cap);
      util::Stopwatch clock;
      const auto result =
          core::RunSession(workload.store, workload.goal, strategy);
      interactions.Add(static_cast<double>(result.interactions));
      millis.Add(result.steps.empty()
                     ? 0
                     : clock.ElapsedSeconds() * 1e3 /
                           static_cast<double>(result.steps.size()));
    }
    cap_table.AddRow({cap == 0 ? "unlimited" : std::to_string(cap),
                      interactions.MeanStd(),
                      util::StrFormat("%.2f", millis.Mean())});
  }
  std::cout << cap_table.ToString()
            << "\nExpected: interactions degrade only mildly under small "
               "caps while per-decision latency drops sharply — the cap is "
               "what keeps lookahead interactive on big instances.\n";

  std::cout << "\n== A2: Tsallis α in lookahead-entropy (same workloads) ==\n\n";
  util::TablePrinter alpha_table({"alpha", "interactions"});
  alpha_table.SetAlignments({util::Align::kRight, util::Align::kRight});
  for (double alpha : {0.5, 1.0, 2.0, 3.0}) {
    bench::Series interactions;
    for (size_t rep = 0; rep < kRepetitions; ++rep) {
      const auto workload = MakeWorkload(500 + rep);
      core::LookaheadStrategy strategy(
          core::LookaheadStrategy::Objective::kEntropy, alpha, 256);
      const auto result =
          core::RunSession(workload.store, workload.goal, strategy);
      interactions.Add(static_cast<double>(result.interactions));
    }
    alpha_table.AddRow(
        {util::FormatDouble(alpha), interactions.MeanStd()});
  }
  std::cout << alpha_table.ToString()
            << "\nExpected: flat — the pruning-count signal dominates; the "
               "entropy family mostly reorders ties.\n";

  std::cout << "\n== A3: price of the selection+join hypothesis space "
               "(Figure 1 goals) ==\n\n";
  util::TablePrinter space_table(
      {"goal", "pure-join questions", "selection+join questions"});
  space_table.SetAlignments({util::Align::kLeft, util::Align::kRight,
                             util::Align::kRight});
  const auto instance = workload::Figure1InstancePtr();
  for (const char* goal_text : {workload::kQ1, workload::kQ2}) {
    const auto join_goal =
        core::JoinPredicate::Parse(instance->schema(), goal_text).value();
    core::LookaheadStrategy strategy(
        core::LookaheadStrategy::Objective::kMinMax);
    const auto pure = core::RunSession(instance, join_goal, strategy);
    const auto extended_goal =
        core::SelectionJoinQuery::Parse(instance->schema(), goal_text)
            .value();
    const auto extended = core::RunSelectionSession(instance, extended_goal);
    space_table.AddRow({goal_text, std::to_string(pure.interactions),
                        std::to_string(extended.interactions)});
  }
  // One goal only the extension can express.
  {
    const auto extended_goal = core::SelectionJoinQuery::Parse(
                                   instance->schema(),
                                   "To=City && Airline='AF'")
                                   .value();
    const auto extended = core::RunSelectionSession(instance, extended_goal);
    space_table.AddRow({"To=City && Airline='AF'", "(inexpressible)",
                        std::to_string(extended.interactions)});
  }
  std::cout << space_table.ToString()
            << "\nExpected: the richer space needs more questions on the "
               "same goals — expressiveness is paid for in labels.\n";
  return 0;
}
