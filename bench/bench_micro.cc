// Experiment M1 (DESIGN.md): engineering microbenchmarks.
// Latency of the primitives everything else is built from: partition
// algebra, tuple-partition extraction, engine construction, label
// propagation, and one full strategy decision.
//
// Self-contained harness (no external benchmark library): each case is
// calibrated to run for a minimum wall time, then reported as ns/op both as
// a human-readable table and as machine-readable BENCH_micro.json written
// via util::JsonWriter — the seed of the perf trajectory.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "core/jim.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "exec/thread_pool.h"
#include "lattice/enumeration.h"
#include "lattice/partition.h"
#include "storage/mapped_store.h"
#include "storage/store_writer.h"
#include "util/json_writer.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "workload/synthetic.h"
#include "workload/travel.h"

namespace {

using namespace jim;
using bench::BenchResult;
using bench::DoNotOptimize;
using bench::RunBench;

lat::Partition RandomPartition(size_t n, util::Rng& rng) {
  std::vector<int> labels(n);
  for (size_t i = 0; i < n; ++i) {
    labels[i] = static_cast<int>(rng.UniformInt(0, static_cast<int64_t>(n) / 2));
  }
  return lat::Partition::FromLabels(labels);
}

workload::SyntheticWorkload MakeSynthetic(size_t tuples, uint64_t seed) {
  util::Rng rng(seed);
  workload::SyntheticSpec spec;
  spec.num_tuples = tuples;
  spec.num_attributes = 6;
  spec.domain_size = 6;
  return workload::MakeSyntheticWorkload(spec, rng);
}

void RegisterAll(std::vector<BenchResult>& results) {
  // One size sweep per partition operation. `op` is a generic callable (not
  // std::function) so the benchmarked body still inlines into the timed
  // loop; Refines gets `b` coarsened so the refinement actually holds.
  const auto partition_sweep = [&results](const char* name, uint64_t seed,
                                          bool coarsen_b, const auto& op) {
    for (size_t n : {5, 10, 20, 40}) {
      util::Rng rng(seed);
      const lat::Partition a = RandomPartition(n, rng);
      const lat::Partition b = coarsen_b ? a.Join(RandomPartition(n, rng))
                                         : RandomPartition(n, rng);
      results.push_back(RunBench(name, static_cast<int64_t>(n),
                                 [&] { DoNotOptimize(op(a, b)); }));
    }
  };
  partition_sweep("PartitionMeet", 1, false,
                  [](const lat::Partition& a, const lat::Partition& b) {
                    return a.Meet(b);
                  });
  partition_sweep("PartitionJoin", 2, false,
                  [](const lat::Partition& a, const lat::Partition& b) {
                    return a.Join(b);
                  });
  partition_sweep("PartitionRefines", 3, true,
                  [](const lat::Partition& a, const lat::Partition& b) {
                    return a.Refines(b);
                  });
  for (size_t n : {5, 10, 20}) {
    util::Rng rng(4);
    rel::Tuple tuple;
    for (size_t i = 0; i < n; ++i) {
      // In-place construction: moving a temporary Value trips GCC 12's
      // variant/string -Wmaybe-uninitialized false positive under -Werror.
      tuple.emplace_back(rng.UniformInt(0, 4));
    }
    results.push_back(RunBench("TuplePartition", static_cast<int64_t>(n),
                               [&] { DoNotOptimize(core::TuplePartition(tuple)); }));
  }
  results.push_back(
      RunBench("BellNumber", -1, [] { DoNotOptimize(lat::BellNumber(20)); }));
  for (size_t tuples : {1000, 10000, 100000}) {
    const auto workload = MakeSynthetic(tuples, 5);
    // The historical cross-commit metric: full class construction over a
    // pre-encoded store on the serial path (parallelism is measured
    // explicitly below, at controlled thread counts).
    results.push_back(RunBench("EngineBuild", static_cast<int64_t>(tuples), [&] {
      core::InferenceEngine engine(workload.store, /*pool=*/nullptr);
      DoNotOptimize(engine.num_classes());
    }));
  }
  // The columnar ingest pipeline, measured in its two stages:
  //   IngestEncode      — dictionary-encoding a materialized relation into a
  //                       RelationTupleStore (arg = tuples);
  //   BuildClasses{10k,100k} — code-kernel Part(t) extraction + grouping at
  //                       controlled thread counts (arg = threads);
  //   BuildClassesLegacy{10k,100k} — the pre-columnar reference: Part(t) via
  //                       Value::Equals (TuplePartition) per row, classes
  //                       grouped in a Partition-keyed hash map.
  // WriteJson derives tuples/sec and the legacy→codes speedup from these.
  for (size_t tuples : {10000, 100000}) {
    const auto workload = MakeSynthetic(tuples, 9);
    const char* suffix = tuples == 10000 ? "10k" : "100k";
    // Pinned serial (explicit nullptr pool): the historical cross-commit
    // metric — the single-arg MakeRelationStore now auto-dispatches large
    // relations to the shared pool, and IngestEncodeParallel below measures
    // that at controlled thread counts.
    results.push_back(RunBench(std::string("IngestEncode"),
                               static_cast<int64_t>(tuples), [&] {
                                 DoNotOptimize(core::MakeRelationStore(
                                                   workload.instance,
                                                   /*pool=*/nullptr)
                                                   ->num_tuples());
                               }));
    for (size_t threads : {1, 4}) {
      exec::ThreadPool pool(threads);
      results.push_back(RunBench(std::string("BuildClasses") + suffix,
                                 static_cast<int64_t>(threads), [&] {
                                   core::InferenceEngine engine(
                                       workload.store,
                                       threads > 1 ? &pool : nullptr);
                                   DoNotOptimize(engine.num_classes());
                                 }));
      // The chunked-dictionary parallel ingest (arg = threads; 1 is the
      // serial reference — codes are bitwise-identical at any count).
      results.push_back(RunBench(std::string("IngestEncodeParallel") + suffix,
                                 static_cast<int64_t>(threads), [&] {
                                   DoNotOptimize(
                                       core::MakeRelationStore(
                                           workload.instance,
                                           threads > 1 ? &pool : nullptr)
                                           ->num_tuples());
                                 }));
    }
    results.push_back(RunBench(
        std::string("BuildClassesLegacy") + suffix,
        static_cast<int64_t>(tuples), [&] {
          std::unordered_map<lat::Partition, size_t, lat::PartitionHash> ids;
          for (size_t t = 0; t < workload.instance->num_rows(); ++t) {
            ids.emplace(core::TuplePartition(workload.instance->row(t)),
                        ids.size());
          }
          DoNotOptimize(ids.size());
        }));
  }
  // The persistent tier: cold-opening the 100k instance from a JIMC file
  // (mmap + full validation pass) vs re-encoding it in memory
  // (IngestEncode above, same seed), and class construction served
  // zero-copy from the mapping. WriteJson derives
  // mmap_open_tuples_per_sec, mmap_build_classes_tuples_per_sec, and the
  // cold-open vs in-memory-ingest comparison key from these.
  {
    const auto workload = MakeSynthetic(100000, 9);
    const std::string path = "bench_micro_tmp.jimc";
    JIM_CHECK_OK(storage::WriteStore(*workload.store, path));
    results.push_back(RunBench("MmapOpen", 100000, [&] {
      DoNotOptimize(storage::OpenStore(path).value()->num_tuples());
    }));
    const auto mapped = storage::OpenStore(path).value();
    results.push_back(RunBench("MmapBuildClasses", 100000, [&] {
      core::InferenceEngine engine(mapped, /*pool=*/nullptr);
      DoNotOptimize(engine.num_classes());
    }));
    std::remove(path.c_str());
  }
  for (size_t tuples : {1000, 10000}) {
    const auto workload = MakeSynthetic(tuples, 6);
    const core::InferenceEngine prototype(workload.instance);
    // The propagation target is chosen once, outside the timed body.
    const auto informative = prototype.InformativeClasses();
    JIM_CHECK(!informative.empty());
    const size_t target = informative[informative.size() / 2];
    // Each iteration needs a fresh engine, so the copy is unavoidably inside
    // the loop; EngineCopy measures it alone so it can be subtracted.
    const BenchResult copy =
        RunBench("EngineCopy", static_cast<int64_t>(tuples), [&] {
          core::InferenceEngine engine = prototype;
          DoNotOptimize(engine.num_classes());
        });
    const BenchResult gross =
        RunBench("LabelPropagation", static_cast<int64_t>(tuples), [&] {
          core::InferenceEngine engine = prototype;
          (void)engine.SubmitClassLabel(target, core::Label::kPositive);
          DoNotOptimize(engine.NumInformativeTuples());
        });
    // Copy-corrected propagation cost, so cross-commit comparison tracks
    // SubmitClassLabel itself rather than the engine copy above.
    BenchResult net;
    net.name = "LabelPropagationNet";
    net.arg = gross.arg;
    net.iterations = gross.iterations;
    net.ns_per_op = std::max(0.0, gross.ns_per_op - copy.ns_per_op);
    results.push_back(copy);
    results.push_back(gross);
    results.push_back(net);
  }
  // Both-label impact of one candidate class — the inner loop of every
  // lookahead strategy (per candidate it needs the impact of both answers).
  // Measures the production path (SimulateLabelBoth over the cached
  // knowledge partitions); the pre-kernel baseline for the same metric was
  // two naive SimulateLabel calls.
  for (size_t tuples : {1000, 10000}) {
    const auto workload = MakeSynthetic(tuples, 6);
    const core::InferenceEngine engine(workload.instance);
    const auto informative = engine.InformativeClasses();
    JIM_CHECK(!informative.empty());
    const size_t target = informative[informative.size() / 2];
    results.push_back(
        RunBench("EngineSimulateLabel", static_cast<int64_t>(tuples), [&] {
          const auto both = engine.SimulateLabelBoth(target);
          DoNotOptimize(both.positive.pruned_tuples +
                        both.negative.pruned_tuples);
        }));
  }
  const auto strategy_sweep = [&results](const char* name,
                                         const char* strategy_name,
                                         uint64_t seed) {
    for (size_t tuples : {1000, 10000}) {
      const auto workload = MakeSynthetic(tuples, seed);
      core::InferenceEngine engine(workload.instance);
      auto strategy = core::MakeStrategy(strategy_name).value();
      // Pin lookahead to the serial path: these are the historical
      // cross-commit metrics, and the default pool is sized from the
      // machine (hardware threads / JIM_THREADS) — the parallel variant is
      // measured explicitly below, at controlled thread counts.
      if (auto* lookahead =
              dynamic_cast<core::LookaheadStrategy*>(strategy.get())) {
        lookahead->set_thread_pool(nullptr);
      }
      results.push_back(
          RunBench(name, static_cast<int64_t>(tuples),
                   [&] { DoNotOptimize(strategy->PickClass(engine)); }));
    }
  };
  strategy_sweep("LookaheadPickClass", "lookahead-entropy", 7);
  strategy_sweep("LocalDecision", "local-bottom-up", 8);
  // Cutoff-pruned vs exhaustive lookahead decision on the serial path
  // (arg 1 = cutoff pruning on, the production default; arg 0 = the
  // exhaustive reference scan). Same pick either way — the cutoff only
  // skips candidates that provably cannot win — so the ratio is pure
  // work saved; WriteJson derives lookahead_cutoff_speedup_{10k,100k}.
  for (size_t tuples : {10000, 100000}) {
    const auto workload = MakeSynthetic(tuples, 7);
    const core::InferenceEngine engine(workload.instance);
    const char* suffix = tuples == 10000 ? "10k" : "100k";
    for (int cutoff : {0, 1}) {
      core::LookaheadStrategy strategy(
          core::LookaheadStrategy::Objective::kEntropy);
      strategy.set_thread_pool(nullptr);
      strategy.set_cutoff_enabled(cutoff == 1);
      results.push_back(
          RunBench(std::string("LookaheadPickClassCutoff") + suffix, cutoff,
                   [&] { DoNotOptimize(strategy.PickClass(engine)); }));
    }
  }
  // The same 10k-tuple lookahead decision on an explicit exec::ThreadPool at
  // 1/2/4 threads (arg = thread count; 1 = the serial reference path). The
  // picked class is bitwise-identical at every count — parallelism only
  // moves latency — and WriteJson derives lookahead_pick_class_speedup_4t
  // from the 1- and 4-thread entries.
  {
    const auto workload = MakeSynthetic(10000, 7);
    const core::InferenceEngine engine(workload.instance);
    for (size_t threads : {1, 2, 4}) {
      exec::ThreadPool pool(threads);
      core::LookaheadStrategy strategy(
          core::LookaheadStrategy::Objective::kEntropy);
      strategy.set_thread_pool(threads > 1 ? &pool : nullptr);
      results.push_back(RunBench("LookaheadPickClassParallel",
                                 static_cast<int64_t>(threads),
                                 [&] { DoNotOptimize(strategy.PickClass(engine)); }));
    }
  }
  // Full minimax solves on instances small enough for the exponential
  // strategy: exercises the memo-table key path hard.
  {
    auto instance = workload::Figure1InstancePtr();
    const core::InferenceEngine engine(instance);
    results.push_back(RunBench("OptimalSolve", -1, [&] {
      DoNotOptimize(core::OptimalWorstCaseQuestions(engine));
    }));
  }
  for (size_t tuples : {25, 40}) {
    util::Rng rng(static_cast<uint64_t>(44 + tuples));
    workload::SyntheticSpec spec;
    spec.num_tuples = tuples;
    spec.num_attributes = 4;
    spec.domain_size = 3;
    spec.goal_constraints = 2;
    const auto workload = workload::MakeSyntheticWorkload(spec, rng);
    const core::InferenceEngine engine(workload.instance);
    results.push_back(
        RunBench("OptimalSolve", static_cast<int64_t>(tuples), [&] {
          DoNotOptimize(core::OptimalWorstCaseQuestions(engine));
        }));
  }
  {
    auto instance = workload::Figure1InstancePtr();
    const auto goal =
        core::JoinPredicate::Parse(instance->schema(), workload::kQ2).value();
    results.push_back(RunBench("Figure1FullSession", -1, [&] {
      auto strategy = core::MakeStrategy("lookahead-entropy").value();
      DoNotOptimize(core::RunSession(instance, goal, *strategy).interactions);
    }));
  }
}

/// Work counts from the metrics registry (untimed; runs after the
/// calibrated sweeps so their ns/op stay comparable with metrics-off
/// history). The work-count complement of the latency rows above — latency
/// regressions split into "each simulation got slower" vs "we simulate
/// more".
struct WorkCounts {
  /// SimulateLabelBoth evaluations one serial lookahead-entropy PickClass
  /// costs on the 10k instance (production path, cutoff pruning on).
  uint64_t simulate_calls_per_pick = 0;
  /// Of the candidates that decision considered, the fraction whose
  /// simulation the cutoff skipped: skips / (skips + evaluations).
  double cutoff_skip_fraction = 0;
  /// Classes woken (watch-drained and exactly retested) per negative label
  /// over a full 10k-instance session — the pre-watch scan visited the whole
  /// worklist instead.
  double woken_classes_per_negative_label = 0;
};

WorkCounts MeasureWorkCounts() {
  obs::SetMetricsEnabled(true);
  WorkCounts counts;
  auto& registry = obs::MetricsRegistry::Instance();
  const auto workload = MakeSynthetic(10000, 7);
  {
    const core::InferenceEngine engine(workload.instance);
    core::LookaheadStrategy strategy(
        core::LookaheadStrategy::Objective::kEntropy);
    strategy.set_thread_pool(nullptr);
    const uint64_t sims_before =
        registry.CounterValue(obs::kCounterEngineSimulateLabelBoth);
    const uint64_t skips_before =
        registry.CounterValue(obs::kCounterEngineCutoffSkips);
    DoNotOptimize(strategy.PickClass(engine));
    const uint64_t sims =
        registry.CounterValue(obs::kCounterEngineSimulateLabelBoth) -
        sims_before;
    const uint64_t skips =
        registry.CounterValue(obs::kCounterEngineCutoffSkips) - skips_before;
    counts.simulate_calls_per_pick = sims;
    if (sims + skips > 0) {
      counts.cutoff_skip_fraction =
          static_cast<double>(skips) / static_cast<double>(sims + skips);
    }
  }
  {
    core::LookaheadStrategy strategy(
        core::LookaheadStrategy::Objective::kEntropy);
    strategy.set_thread_pool(nullptr);
    const uint64_t wakes_before =
        registry.CounterValue(obs::kCounterEngineWatchWakes);
    const uint64_t negatives_before =
        registry.CounterValue(obs::kCounterEngineLabelsNegative);
    DoNotOptimize(
        core::RunSession(workload.instance, workload.goal, strategy)
            .interactions);
    const uint64_t wakes =
        registry.CounterValue(obs::kCounterEngineWatchWakes) - wakes_before;
    const uint64_t negatives =
        registry.CounterValue(obs::kCounterEngineLabelsNegative) -
        negatives_before;
    if (negatives > 0) {
      counts.woken_classes_per_negative_label =
          static_cast<double>(wakes) / static_cast<double>(negatives);
    }
  }
  return counts;
}

bool WriteJson(const std::vector<BenchResult>& results,
               const WorkCounts& work, const std::string& path) {
  util::JsonWriter json;
  json.BeginObject();
  json.KeyValue("benchmark", "micro");
  bench::AppendMetaBlock(json);
  json.KeyValue("simulate_label_calls_per_pick", work.simulate_calls_per_pick);
  json.KeyValue("lookahead_cutoff_skip_fraction", work.cutoff_skip_fraction);
  json.KeyValue("propagate_woken_classes_per_label",
                work.woken_classes_per_negative_label);
  // Wall-clock speedup of the 10k-tuple lookahead decision at 4 threads vs
  // the serial path (values < 1 mean the box lacks the cores to win).
  double serial_ns = 0;
  double four_thread_ns = 0;
  for (const auto& r : results) {
    if (r.name != "LookaheadPickClassParallel") continue;
    if (r.arg == 1) serial_ns = r.ns_per_op;
    if (r.arg == 4) four_thread_ns = r.ns_per_op;
  }
  if (serial_ns > 0 && four_thread_ns > 0) {
    json.KeyValue("lookahead_pick_class_speedup_4t",
                  serial_ns / four_thread_ns);
  }
  // Ingest/BuildClasses throughput + the speedup of the code-kernel class
  // construction over the legacy Value-row path (same instance).
  const auto find_ns = [&results](const std::string& name,
                                  int64_t arg) -> double {
    for (const auto& r : results) {
      if (r.name == name && r.arg == arg) return r.ns_per_op;
    }
    return 0;
  };
  const std::vector<std::pair<std::string, double>> sizes = {
      {"10k", 10000.0}, {"100k", 100000.0}};
  for (const auto& size : sizes) {
    const double encode_ns = find_ns("IngestEncode",
                                     static_cast<int64_t>(size.second));
    if (encode_ns > 0) {
      json.KeyValue("ingest_encode_tuples_per_sec_" + size.first,
                    size.second * 1e9 / encode_ns);
    }
    const double build_1t = find_ns("BuildClasses" + size.first, 1);
    const double build_4t = find_ns("BuildClasses" + size.first, 4);
    const double legacy = find_ns("BuildClassesLegacy" + size.first,
                                  static_cast<int64_t>(size.second));
    if (build_1t > 0) {
      json.KeyValue("build_classes_tuples_per_sec_" + size.first + "_1t",
                    size.second * 1e9 / build_1t);
    }
    if (build_4t > 0) {
      json.KeyValue("build_classes_tuples_per_sec_" + size.first + "_4t",
                    size.second * 1e9 / build_4t);
    }
    if (legacy > 0 && build_1t > 0) {
      json.KeyValue("build_classes_speedup_" + size.first,
                    legacy / build_1t);
    }
    if (legacy > 0 && build_4t > 0) {
      json.KeyValue("build_classes_speedup_" + size.first + "_4t",
                    legacy / build_4t);
    }
    const double parallel_ingest_4t =
        find_ns("IngestEncodeParallel" + size.first, 4);
    if (parallel_ingest_4t > 0) {
      json.KeyValue("ingest_encode_tuples_per_sec_" + size.first + "_4t",
                    size.second * 1e9 / parallel_ingest_4t);
    }
  }
  // The storage tier: cold-open throughput of the mapped 100k instance,
  // class construction over the mapping, and how a cold open compares with
  // re-encoding the same instance in memory (values > 1: reopening the
  // file beats re-ingesting).
  const double mmap_open_ns = find_ns("MmapOpen", 100000);
  if (mmap_open_ns > 0) {
    json.KeyValue("mmap_open_tuples_per_sec", 100000.0 * 1e9 / mmap_open_ns);
  }
  const double mmap_build_ns = find_ns("MmapBuildClasses", 100000);
  if (mmap_build_ns > 0) {
    json.KeyValue("mmap_build_classes_tuples_per_sec",
                  100000.0 * 1e9 / mmap_build_ns);
  }
  const double ingest_100k_ns = find_ns("IngestEncode", 100000);
  if (mmap_open_ns > 0 && ingest_100k_ns > 0) {
    json.KeyValue("mmap_cold_open_vs_ingest_speedup",
                  ingest_100k_ns / mmap_open_ns);
  }
  // Exhaustive-scan vs cutoff-pruned lookahead decision (same pick, work
  // saved only; values > 1 mean the cutoff wins).
  for (const auto& size : sizes) {
    const double exhaustive_ns =
        find_ns("LookaheadPickClassCutoff" + size.first, 0);
    const double pruned_ns = find_ns("LookaheadPickClassCutoff" + size.first, 1);
    if (exhaustive_ns > 0 && pruned_ns > 0) {
      json.KeyValue("lookahead_cutoff_speedup_" + size.first,
                    exhaustive_ns / pruned_ns);
    }
  }
  json.Key("results");
  json.BeginArray();
  for (const auto& r : results) {
    json.BeginObject();
    json.KeyValue("name", r.name);
    if (r.arg >= 0) json.KeyValue("arg", r.arg);
    json.KeyValue("iterations", r.iterations);
    json.KeyValue("ns_per_op", r.ns_per_op);
    json.EndObject();
  }
  json.EndArray();
  bench::AppendMetricsSnapshot(json);
  json.EndObject();
  std::ofstream out(path);
  out << json.str() << "\n";
  out.flush();
  return out.good();
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_micro.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out") {
      if (i + 1 >= argc) {
        std::cerr << "bench_micro: --out requires a path\n";
        return 2;
      }
      json_path = argv[++i];
    } else {
      std::cerr << "bench_micro: unknown argument '" << arg
                << "' (usage: bench_micro [--out PATH])\n";
      return 2;
    }
  }

  std::vector<BenchResult> results;
  RegisterAll(results);
  const WorkCounts work = MeasureWorkCounts();

  jim::util::TablePrinter table({"benchmark", "arg", "iterations", "ns/op"});
  table.SetAlignments({jim::util::Align::kLeft, jim::util::Align::kRight,
                       jim::util::Align::kRight, jim::util::Align::kRight});
  for (const auto& r : results) {
    table.AddRow({r.name, r.arg >= 0 ? std::to_string(r.arg) : "-",
                  std::to_string(r.iterations),
                  jim::util::StrFormat("%.1f", r.ns_per_op)});
  }
  std::cout << table.ToString();

  if (!WriteJson(results, work, json_path)) {
    std::cerr << "bench_micro: failed to write " << json_path << "\n";
    return 1;
  }
  std::cout << "\nwrote " << json_path << "\n";
  return 0;
}
