// Experiment M1 (DESIGN.md): engineering microbenchmarks (google-benchmark).
// Latency of the primitives everything else is built from: partition
// algebra, tuple-partition extraction, engine construction, label
// propagation, and one full strategy decision.

#include <benchmark/benchmark.h>

#include "core/jim.h"
#include "lattice/enumeration.h"
#include "lattice/partition.h"
#include "util/rng.h"
#include "workload/synthetic.h"
#include "workload/travel.h"

namespace {

using namespace jim;

lat::Partition RandomPartition(size_t n, util::Rng& rng) {
  std::vector<int> labels(n);
  for (size_t i = 0; i < n; ++i) {
    labels[i] = static_cast<int>(rng.UniformInt(0, static_cast<int64_t>(n) / 2));
  }
  return lat::Partition::FromLabels(labels);
}

void BM_PartitionMeet(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  util::Rng rng(1);
  const lat::Partition a = RandomPartition(n, rng);
  const lat::Partition b = RandomPartition(n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Meet(b));
  }
}
BENCHMARK(BM_PartitionMeet)->Arg(5)->Arg(10)->Arg(20)->Arg(40);

void BM_PartitionJoin(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  util::Rng rng(2);
  const lat::Partition a = RandomPartition(n, rng);
  const lat::Partition b = RandomPartition(n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Join(b));
  }
}
BENCHMARK(BM_PartitionJoin)->Arg(5)->Arg(10)->Arg(20)->Arg(40);

void BM_PartitionRefines(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  util::Rng rng(3);
  const lat::Partition a = RandomPartition(n, rng);
  const lat::Partition b = a.Join(RandomPartition(n, rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Refines(b));
  }
}
BENCHMARK(BM_PartitionRefines)->Arg(5)->Arg(10)->Arg(20)->Arg(40);

void BM_TuplePartition(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  util::Rng rng(4);
  rel::Tuple tuple;
  for (size_t i = 0; i < n; ++i) {
    tuple.push_back(rel::Value(rng.UniformInt(0, 4)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::TuplePartition(tuple));
  }
}
BENCHMARK(BM_TuplePartition)->Arg(5)->Arg(10)->Arg(20);

void BM_BellNumber(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(lat::BellNumber(20));
  }
}
BENCHMARK(BM_BellNumber);

void BM_EngineBuild(benchmark::State& state) {
  const size_t tuples = static_cast<size_t>(state.range(0));
  util::Rng rng(5);
  workload::SyntheticSpec spec;
  spec.num_tuples = tuples;
  spec.num_attributes = 6;
  spec.domain_size = 6;
  const auto workload = workload::MakeSyntheticWorkload(spec, rng);
  for (auto _ : state) {
    core::InferenceEngine engine(workload.instance);
    benchmark::DoNotOptimize(engine.num_classes());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(tuples));
}
BENCHMARK(BM_EngineBuild)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_LabelPropagation(benchmark::State& state) {
  const size_t tuples = static_cast<size_t>(state.range(0));
  util::Rng rng(6);
  workload::SyntheticSpec spec;
  spec.num_tuples = tuples;
  spec.num_attributes = 6;
  spec.domain_size = 6;
  const auto workload = workload::MakeSyntheticWorkload(spec, rng);
  const core::InferenceEngine prototype(workload.instance);
  for (auto _ : state) {
    state.PauseTiming();
    core::InferenceEngine engine = prototype;
    const auto informative = engine.InformativeClasses();
    state.ResumeTiming();
    (void)engine.SubmitClassLabel(informative[informative.size() / 2],
                                  core::Label::kPositive);
    benchmark::DoNotOptimize(engine.NumInformativeTuples());
  }
}
BENCHMARK(BM_LabelPropagation)->Arg(1000)->Arg(10000);

void BM_LookaheadDecision(benchmark::State& state) {
  const size_t tuples = static_cast<size_t>(state.range(0));
  util::Rng rng(7);
  workload::SyntheticSpec spec;
  spec.num_tuples = tuples;
  spec.num_attributes = 6;
  spec.domain_size = 6;
  const auto workload = workload::MakeSyntheticWorkload(spec, rng);
  core::InferenceEngine engine(workload.instance);
  auto strategy = core::MakeStrategy("lookahead-entropy").value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(strategy->PickClass(engine));
  }
}
BENCHMARK(BM_LookaheadDecision)->Arg(1000)->Arg(10000);

void BM_LocalDecision(benchmark::State& state) {
  const size_t tuples = static_cast<size_t>(state.range(0));
  util::Rng rng(8);
  workload::SyntheticSpec spec;
  spec.num_tuples = tuples;
  spec.num_attributes = 6;
  spec.domain_size = 6;
  const auto workload = workload::MakeSyntheticWorkload(spec, rng);
  core::InferenceEngine engine(workload.instance);
  auto strategy = core::MakeStrategy("local-bottom-up").value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(strategy->PickClass(engine));
  }
}
BENCHMARK(BM_LocalDecision)->Arg(1000)->Arg(10000);

void BM_Figure1FullSession(benchmark::State& state) {
  auto instance = workload::Figure1InstancePtr();
  const auto goal =
      core::JoinPredicate::Parse(instance->schema(), workload::kQ2).value();
  for (auto _ : state) {
    auto strategy = core::MakeStrategy("lookahead-entropy").value();
    benchmark::DoNotOptimize(
        core::RunSession(instance, goal, *strategy).interactions);
  }
}
BENCHMARK(BM_Figure1FullSession);

}  // namespace

BENCHMARK_MAIN();
