// Experiment F5 (DESIGN.md): "Joining sets of pictures" (paper §3,
// Figure 5). Infers every feature-match join over the 81 Set cards and
// reports the number of yes/no questions about pairs of pictures — the
// crowd-task currency the paper cares about.

#include <iostream>

#include "bench/bench_util.h"
#include "core/jim.h"
#include "util/rng.h"
#include "util/table_printer.h"
#include "workload/setgame.h"

int main() {
  using namespace jim;

  util::Rng rng(5);
  auto store = workload::SetPairStore(/*sample_size=*/0, rng);
  std::cout << "== F5: inferring picture joins over " << store->num_tuples()
            << " candidate card pairs ==\n\n";

  const std::vector<std::string> strategies = {"random", "local-bottom-up",
                                               "lookahead-entropy"};
  util::TablePrinter table(
      {"goal", "constraints", "random", "local-bottom-up",
       "lookahead-entropy", "identified"});
  table.SetAlignments({util::Align::kLeft, util::Align::kRight,
                       util::Align::kRight, util::Align::kRight,
                       util::Align::kRight, util::Align::kLeft});

  for (const auto& goal : workload::AllFeatureMatchGoals(store->schema())) {
    std::vector<std::string> row = {
        goal.name, std::to_string(goal.predicate.NumConstraints())};
    bool identified = true;
    for (const std::string& name : strategies) {
      const bench::Series series =
          bench::Repeat(name == "random" ? 9 : 1, 41, [&](uint64_t seed) {
            auto strategy = core::MakeStrategy(name, seed).value();
            const auto result =
                core::RunSession(store, goal.predicate, *strategy);
            if (!result.identified_goal) identified = false;
            return static_cast<double>(result.interactions);
          });
      row.push_back(util::StrFormat("%.1f", series.Mean()));
    }
    row.push_back(identified ? "yes" : "NO");
    table.AddRow(std::move(row));
  }
  std::cout << table.ToString()
            << "\n(values: membership questions to identify the join, "
               "random averaged over 9 seeds)\n"
            << "Expected shape: a handful of questions out of 6561 pairs; "
               "lookahead ≤ local ≤ random.\n";
  return 0;
}
