// Experiment S2 (DESIGN.md): efficiency and scalability (paper §1 / [3]).
// Two sweeps:
//   (a) instance size: #interactions and time per interaction vs #tuples —
//       interactions should grow slowly (the engine works on tuple classes),
//       per-step time stays interactive;
//   (b) schema width: both grow with #attributes (the hypothesis lattice
//       deepens), the real driver of hardness.
//
// Usage: bench_scalability [--quick] [--threads N] [--out PATH]
//   --quick    CI-sized grids (the `bench` aggregate target runs this);
//   --threads  batch parallelism (default JIM_THREADS, then hardware);
//   --out      JSON destination (default BENCH_scalability.json).
//
// The repetitions × strategies grid of each cell runs concurrently on
// engine clones via exec::BatchSessionRunner. Seeds are fixed per
// (cell, repetition), so interaction counts are identical at any thread
// count; only the timing columns move.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>

#include "bench/bench_util.h"
#include "core/jim.h"
#include "exec/batch_runner.h"
#include "obs/metrics.h"
#include "query/universal_table.h"
#include "storage/mapped_store.h"
#include "storage/store_writer.h"
#include "util/json_writer.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"
#include "workload/synthetic.h"
#include "workload/travel.h"

namespace {

using namespace jim;

struct StrategyMeasurement {
  std::string strategy;
  double interactions = 0;
  double micros_per_step = 0;
};

struct CellMeasurement {
  size_t tuples = 0;
  size_t attributes = 0;
  double classes = 0;
  double build_millis = 0;
  std::vector<StrategyMeasurement> by_strategy;
};

/// One point of the S2c factorized-ingest sweep: candidate counts past the
/// historical 100k materialization cap.
struct IngestMeasurement {
  size_t flights = 0;
  size_t hotels = 0;
  size_t candidate_tuples = 0;
  size_t classes = 0;
  double ingest_millis = 0;       ///< UniversalTable::Build (encode + radix)
  double build_classes_millis = 0;///< engine class construction over codes
  size_t store_bytes = 0;         ///< factorized footprint
  size_t materialized_bytes = 0;  ///< what N Value-rows would have cost
};

/// One point of the S2d on-disk sweep: the same universal tables as S2c,
/// persisted to a JIMC file and served back through the mmap tier. The
/// interesting split is file bytes (page cache, shared, evictable) vs the
/// resident index structures a MappedTupleStore actually allocates.
struct OnDiskMeasurement {
  size_t flights = 0;
  size_t hotels = 0;
  size_t candidate_tuples = 0;
  size_t classes = 0;
  double write_millis = 0;        ///< StoreWriter serialization
  double open_millis = 0;         ///< mmap + full validation pass
  double build_classes_millis = 0;///< engine construction over the mapping
  size_t file_bytes = 0;
  size_t resident_bytes = 0;      ///< MappedTupleStore::ApproxBytes
};

/// One ingest-sweep cell measured through both tiers — the universal table
/// (catalog generation + Build, the expensive part) is constructed once and
/// shared by the S2c factorized measurements and the S2d on-disk ones.
struct IngestPoint {
  IngestMeasurement ingest;
  OnDiskMeasurement ondisk;
};

IngestPoint MeasurePoint(size_t flights, size_t hotels,
                         exec::ThreadPool* pool) {
  IngestPoint p;
  p.ingest.flights = p.ondisk.flights = flights;
  p.ingest.hotels = p.ondisk.hotels = hotels;
  util::Rng rng(9000 + flights + hotels);
  const rel::Catalog catalog = workload::LargeTravelCatalog(
      flights, hotels, /*num_cities=*/64, /*num_airlines=*/16, rng);

  query::UniversalTableOptions options;
  options.sample_cap = 0;  // no cap: the factorized path enumerates it all
  util::Stopwatch ingest_clock;
  const auto table =
      query::UniversalTable::Build(catalog, {"Flights", "Hotels"}, options)
          .value();
  p.ingest.ingest_millis = ingest_clock.ElapsedSeconds() * 1e3;
  p.ingest.candidate_tuples = p.ondisk.candidate_tuples = table.num_tuples();
  p.ingest.store_bytes = table.store()->ApproxBytes();
  // A materialized universal table holds one rel::Value per cell.
  p.ingest.materialized_bytes =
      table.num_tuples() * table.num_attributes() * sizeof(rel::Value);

  {
    util::Stopwatch build_clock;
    const core::InferenceEngine engine(table.store(), pool);
    p.ingest.build_classes_millis = build_clock.ElapsedSeconds() * 1e3;
    p.ingest.classes = engine.num_classes();
  }

  // S2d: persist that same store and serve it back through the mmap tier.
  const std::string path = "BENCH_scalability_tmp.jimc";
  util::Stopwatch write_clock;
  const util::Status written = storage::WriteStore(*table.store(), path);
  p.ondisk.write_millis = write_clock.ElapsedSeconds() * 1e3;
  JIM_CHECK_OK(written);

  util::Stopwatch open_clock;
  const auto mapped = storage::MappedTupleStore::Open(path).value();
  p.ondisk.open_millis = open_clock.ElapsedSeconds() * 1e3;
  p.ondisk.file_bytes = mapped->file_bytes();
  p.ondisk.resident_bytes = mapped->ApproxBytes();

  util::Stopwatch build_clock;
  const core::InferenceEngine engine(mapped, pool);
  p.ondisk.build_classes_millis = build_clock.ElapsedSeconds() * 1e3;
  p.ondisk.classes = engine.num_classes();
  std::remove(path.c_str());
  return p;
}

/// One point of the S2e cutoff sweep: the same lookahead-entropy session
/// with cutoff pruning on vs off. Seeds are shared, and cutoff pruning is
/// pick-preserving, so the interaction columns must agree; only the
/// per-step latency moves.
struct CutoffMeasurement {
  size_t tuples = 0;
  double interactions = 0;
  double exhaustive_us_per_step = 0;
  double pruned_us_per_step = 0;
  double speedup = 0;
};

CutoffMeasurement MeasureCutoffCell(const exec::BatchSessionRunner& runner,
                                    size_t num_tuples, size_t repetitions) {
  CutoffMeasurement cell;
  cell.tuples = num_tuples;

  std::vector<std::shared_ptr<const core::InferenceEngine>> prototypes;
  std::vector<core::JoinPredicate> goals;
  for (size_t rep = 0; rep < repetitions; ++rep) {
    util::Rng rng(4000 + rep * 17 + num_tuples);
    workload::SyntheticSpec spec;
    spec.num_attributes = 6;
    spec.num_tuples = num_tuples;
    spec.domain_size = 6;
    spec.goal_constraints = 2;
    const auto workload = workload::MakeSyntheticWorkload(spec, rng);
    prototypes.push_back(
        std::make_shared<const core::InferenceEngine>(workload.instance));
    goals.push_back(workload.goal);
  }

  // Interleave (cutoff off, cutoff on) per repetition so both modes see the
  // same instances under the same load.
  std::vector<exec::SessionSpec> specs;
  specs.reserve(2 * repetitions);
  for (const bool cutoff_on : {false, true}) {
    for (size_t rep = 0; rep < repetitions; ++rep) {
      exec::SessionSpec spec(prototypes[rep], goals[rep]);
      spec.make_strategy = [cutoff_on] {
        auto strategy = std::make_unique<core::LookaheadStrategy>(
            core::LookaheadStrategy::Objective::kEntropy);
        strategy->set_cutoff_enabled(cutoff_on);
        return std::unique_ptr<core::Strategy>(std::move(strategy));
      };
      specs.push_back(std::move(spec));
    }
  }
  const std::vector<core::SessionResult> results = runner.Run(specs);

  bench::Series interactions;
  bench::Series exhaustive_micros;
  bench::Series pruned_micros;
  for (size_t mode = 0; mode < 2; ++mode) {
    for (size_t rep = 0; rep < repetitions; ++rep) {
      const core::SessionResult& result = results[mode * repetitions + rep];
      const core::SessionResult& twin =
          results[(1 - mode) * repetitions + rep];
      // Pick-preserving contract: both modes ask the same questions.
      JIM_CHECK(result.interactions == twin.interactions);
      double total_micros = 0;
      for (const auto& step : result.steps) {
        total_micros += static_cast<double>(step.micros);
      }
      const double per_step =
          result.steps.empty()
              ? 0
              : total_micros / static_cast<double>(result.steps.size());
      (mode == 0 ? exhaustive_micros : pruned_micros).Add(per_step);
      if (mode == 0) {
        interactions.Add(static_cast<double>(result.interactions));
      }
    }
  }
  cell.interactions = interactions.Mean();
  cell.exhaustive_us_per_step = exhaustive_micros.Mean();
  cell.pruned_us_per_step = pruned_micros.Mean();
  cell.speedup = cell.pruned_us_per_step > 0
                     ? cell.exhaustive_us_per_step / cell.pruned_us_per_step
                     : 0;
  return cell;
}

CellMeasurement MeasureCell(const exec::BatchSessionRunner& runner,
                            const std::vector<std::string>& strategies,
                            size_t num_tuples, size_t num_attributes,
                            size_t repetitions) {
  CellMeasurement cell;
  cell.tuples = num_tuples;
  cell.attributes = num_attributes;

  // One instance and one *timed* prototype build per repetition; every
  // strategy's session clones the prototype instead of rebuilding classes.
  bench::Series build_millis;
  bench::Series classes;
  std::vector<std::shared_ptr<const core::InferenceEngine>> prototypes;
  std::vector<core::JoinPredicate> goals;
  for (size_t rep = 0; rep < repetitions; ++rep) {
    util::Rng rng(4000 + rep * 17 + num_tuples);
    workload::SyntheticSpec spec;
    spec.num_attributes = num_attributes;
    spec.num_tuples = num_tuples;
    spec.domain_size = 6;
    spec.goal_constraints = 2;
    const auto workload = workload::MakeSyntheticWorkload(spec, rng);

    util::Stopwatch build_clock;
    auto prototype =
        std::make_shared<const core::InferenceEngine>(workload.instance);
    build_millis.Add(build_clock.ElapsedSeconds() * 1e3);
    classes.Add(static_cast<double>(prototype->num_classes()));
    prototypes.push_back(std::move(prototype));
    goals.push_back(workload.goal);
  }
  cell.classes = classes.Mean();
  cell.build_millis = build_millis.Mean();

  std::vector<exec::SessionSpec> specs;
  specs.reserve(strategies.size() * repetitions);
  for (const std::string& name : strategies) {
    for (size_t rep = 0; rep < repetitions; ++rep) {
      exec::SessionSpec spec(prototypes[rep], goals[rep]);
      const uint64_t strategy_seed = 31 + rep;
      spec.make_strategy = [name, strategy_seed] {
        return core::MakeStrategy(name, strategy_seed).value();
      };
      specs.push_back(std::move(spec));
    }
  }
  const std::vector<core::SessionResult> results = runner.Run(specs);

  for (size_t s = 0; s < strategies.size(); ++s) {
    bench::Series interactions;
    bench::Series step_micros;
    for (size_t rep = 0; rep < repetitions; ++rep) {
      const core::SessionResult& result = results[s * repetitions + rep];
      interactions.Add(static_cast<double>(result.interactions));
      double total_micros = 0;
      for (const auto& step : result.steps) {
        total_micros += static_cast<double>(step.micros);
      }
      step_micros.Add(result.steps.empty()
                          ? 0
                          : total_micros /
                                static_cast<double>(result.steps.size()));
    }
    StrategyMeasurement m;
    m.strategy = strategies[s];
    m.interactions = interactions.Mean();
    m.micros_per_step = step_micros.Mean();
    cell.by_strategy.push_back(std::move(m));
  }
  return cell;
}

void AppendJsonCells(util::JsonWriter& json, const char* sweep,
                     const std::vector<CellMeasurement>& cells) {
  for (const CellMeasurement& cell : cells) {
    for (const StrategyMeasurement& m : cell.by_strategy) {
      json.BeginObject()
          .KeyValue("sweep", sweep)
          .KeyValue("tuples", cell.tuples)
          .KeyValue("attributes", cell.attributes)
          .KeyValue("classes", cell.classes)
          .KeyValue("build_ms", cell.build_millis)
          .KeyValue("strategy", m.strategy)
          .KeyValue("interactions", m.interactions)
          .KeyValue("us_per_step", m.micros_per_step)
          .EndObject();
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  // Metrics on for the whole run: cells here are ms-scale, so the per-event
  // relaxed atomic add is noise, and the embedded snapshot lets latency
  // movements be correlated with work counts (sessions run, classes pruned,
  // simulations per decision).
  obs::SetMetricsEnabled(true);
  const size_t threads = bench::ParseThreadsFlag(argc, argv);
  bool quick = false;
  std::string json_path = "BENCH_scalability.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--out") {
      if (i + 1 >= argc) {
        std::cerr << "bench_scalability: --out requires a path\n";
        return 2;
      }
      json_path = argv[++i];
    } else {
      std::cerr << "bench_scalability: unknown argument '" << arg
                << "' (usage: bench_scalability [--quick] [--threads N] "
                   "[--out PATH])\n";
      return 2;
    }
  }

  const std::vector<std::string> strategies = {"random", "local-bottom-up",
                                               "lookahead-entropy"};
  const std::vector<size_t> tuple_sweep =
      quick ? std::vector<size_t>{100, 300, 1000}
            : std::vector<size_t>{100, 300, 1000, 3000, 10000, 30000};
  const std::vector<size_t> attr_sweep = quick
                                             ? std::vector<size_t>{4, 6, 8}
                                             : std::vector<size_t>{4, 6, 8,
                                                                   10, 12};
  const size_t repetitions = quick ? 2 : 5;

  exec::ThreadPool pool(threads);
  const exec::BatchSessionRunner runner(threads > 1 ? &pool : nullptr);

  std::cout << "== S2a: scaling the instance (attrs=6, domain=6, goal=2 eqs; "
               "mean over " << repetitions << " runs) ==\n\n";
  util::TablePrinter size_table({"tuples", "classes", "strategy",
                                 "interactions", "us/step", "build ms"});
  size_table.SetAlignments({util::Align::kRight, util::Align::kRight,
                            util::Align::kLeft, util::Align::kRight,
                            util::Align::kRight, util::Align::kRight});
  std::vector<CellMeasurement> size_cells;
  for (size_t tuples : tuple_sweep) {
    const CellMeasurement cell = MeasureCell(runner, strategies, tuples,
                                             /*num_attributes=*/6,
                                             repetitions);
    for (const StrategyMeasurement& m : cell.by_strategy) {
      size_table.AddRow({std::to_string(tuples),
                         util::StrFormat("%.0f", cell.classes), m.strategy,
                         util::StrFormat("%.1f", m.interactions),
                         util::StrFormat("%.0f", m.micros_per_step),
                         util::StrFormat("%.1f", cell.build_millis)});
    }
    size_table.AddSeparator();
    size_cells.push_back(cell);
  }
  std::cout << size_table.ToString();

  std::cout << "\n== S2b: scaling the schema (tuples=1000, domain=6, goal=2 "
               "eqs; mean over " << repetitions << " runs) ==\n\n";
  util::TablePrinter width_table({"attrs", "classes", "strategy",
                                  "interactions", "us/step"});
  width_table.SetAlignments({util::Align::kRight, util::Align::kRight,
                             util::Align::kLeft, util::Align::kRight,
                             util::Align::kRight});
  std::vector<CellMeasurement> width_cells;
  for (size_t attrs : attr_sweep) {
    const CellMeasurement cell = MeasureCell(runner, strategies,
                                             /*num_tuples=*/1000, attrs,
                                             repetitions);
    for (const StrategyMeasurement& m : cell.by_strategy) {
      width_table.AddRow({std::to_string(attrs),
                          util::StrFormat("%.0f", cell.classes), m.strategy,
                          util::StrFormat("%.1f", m.interactions),
                          util::StrFormat("%.0f", m.micros_per_step)});
    }
    width_table.AddSeparator();
    width_cells.push_back(cell);
  }
  std::cout << width_table.ToString()
            << "\nExpected shape: interactions grow sublinearly in #tuples "
               "(class structure saturates) but steeply in #attributes; "
               "per-step latency stays well inside interactive bounds.\n";

  // S2c: factorized ingest past the historical 100k materialization cap.
  // Candidate tuples are mixed-radix row ids over the two source relations'
  // encoded columns; the store footprint column is what actually resides in
  // memory vs what N materialized Value rows would cost.
  const std::vector<std::pair<size_t, size_t>> ingest_sweep =
      quick ? std::vector<std::pair<size_t, size_t>>{{500, 400}, {800, 500}}
            : std::vector<std::pair<size_t, size_t>>{
                  {500, 400}, {800, 500}, {1500, 1000}, {3000, 1000}};
  std::cout << "\n== S2c: factorized universal-table ingest above the old "
               "100k sample cap (flights × hotels, no cap) ==\n\n";
  util::TablePrinter ingest_table({"candidates", "classes", "ingest ms",
                                   "build-classes ms", "store KiB",
                                   "materialized KiB"});
  ingest_table.SetAlignments(
      {util::Align::kRight, util::Align::kRight, util::Align::kRight,
       util::Align::kRight, util::Align::kRight, util::Align::kRight});
  // Each cell's universal table is built once and measured through both
  // tiers (S2c factorized, S2d on-disk below).
  std::vector<IngestMeasurement> ingest_cells;
  std::vector<OnDiskMeasurement> ondisk_cells;
  for (const auto& [flights, hotels] : ingest_sweep) {
    const IngestPoint point =
        MeasurePoint(flights, hotels, threads > 1 ? &pool : nullptr);
    const IngestMeasurement& m = point.ingest;
    ingest_table.AddRow(
        {std::to_string(m.candidate_tuples), std::to_string(m.classes),
         util::StrFormat("%.1f", m.ingest_millis),
         util::StrFormat("%.1f", m.build_classes_millis),
         std::to_string(m.store_bytes / 1024),
         std::to_string(m.materialized_bytes / 1024)});
    ingest_cells.push_back(point.ingest);
    ondisk_cells.push_back(point.ondisk);
  }
  std::cout << ingest_table.ToString()
            << "\nExpected shape: ingest time and the store footprint track "
               "the *source* sizes, not the candidate count — the cap is no "
               "longer a ceiling.\n";

  // S2d: the same instances through the persistent tier — write a JIMC
  // file, reopen it mmap'd, build classes over the mapping. File bytes live
  // in the (shared, evictable) page cache; the resident column is what the
  // process actually allocates per open store.
  std::cout << "\n== S2d: on-disk JIMC tier (write → cold open → "
               "build classes over the mapping) ==\n\n";
  util::TablePrinter ondisk_table({"candidates", "classes", "write ms",
                                   "open ms", "build-classes ms", "file KiB",
                                   "resident KiB"});
  ondisk_table.SetAlignments(
      {util::Align::kRight, util::Align::kRight, util::Align::kRight,
       util::Align::kRight, util::Align::kRight, util::Align::kRight,
       util::Align::kRight});
  for (const OnDiskMeasurement& m : ondisk_cells) {
    ondisk_table.AddRow(
        {std::to_string(m.candidate_tuples), std::to_string(m.classes),
         util::StrFormat("%.1f", m.write_millis),
         util::StrFormat("%.1f", m.open_millis),
         util::StrFormat("%.1f", m.build_classes_millis),
         std::to_string(m.file_bytes / 1024),
         std::to_string(m.resident_bytes / 1024)});
  }
  std::cout << ondisk_table.ToString()
            << "\nExpected shape: open time tracks file bytes (one "
               "sequential validation pass), resident bytes track only the "
               "dictionary index — sessions start in O(1) w.r.t. the "
               "candidate count.\n";

  // S2e: cutoff-pruned lookahead vs exhaustive scoring, full sessions.
  // Pruning is pick-preserving (strict-inequality skip rule), so the
  // interaction column is shared; only per-step latency moves.
  std::cout << "\n== S2e: cutoff-pruned lookahead vs exhaustive scoring "
               "(lookahead-entropy, attrs=6) ==\n\n";
  util::TablePrinter cutoff_table({"tuples", "interactions",
                                   "exhaustive us/step", "pruned us/step",
                                   "speedup"});
  cutoff_table.SetAlignments({util::Align::kRight, util::Align::kRight,
                              util::Align::kRight, util::Align::kRight,
                              util::Align::kRight});
  std::vector<CutoffMeasurement> cutoff_cells;
  for (size_t tuples : tuple_sweep) {
    const CutoffMeasurement cell =
        MeasureCutoffCell(runner, tuples, repetitions);
    cutoff_table.AddRow({std::to_string(cell.tuples),
                         util::StrFormat("%.1f", cell.interactions),
                         util::StrFormat("%.0f", cell.exhaustive_us_per_step),
                         util::StrFormat("%.0f", cell.pruned_us_per_step),
                         util::StrFormat("%.2fx", cell.speedup)});
    cutoff_cells.push_back(cell);
  }
  std::cout << cutoff_table.ToString()
            << "\nExpected shape: the speedup column grows with the class "
               "count — more candidates means more of the scan falls under "
               "the running best's upper bound.\n";

  util::JsonWriter json;
  json.BeginObject();
  json.KeyValue("benchmark", "scalability");
  bench::AppendMetaBlock(json);
  json.KeyValue("quick", quick);
  json.KeyValue("threads", threads);
  json.KeyValue("repetitions", repetitions);
  json.Key("results");
  json.BeginArray();
  AppendJsonCells(json, "instance_size", size_cells);
  AppendJsonCells(json, "schema_width", width_cells);
  for (const IngestMeasurement& m : ingest_cells) {
    json.BeginObject()
        .KeyValue("sweep", "ingest_scale")
        .KeyValue("flights", m.flights)
        .KeyValue("hotels", m.hotels)
        .KeyValue("candidate_tuples", m.candidate_tuples)
        .KeyValue("classes", m.classes)
        .KeyValue("ingest_ms", m.ingest_millis)
        .KeyValue("build_classes_ms", m.build_classes_millis)
        .KeyValue("store_bytes", m.store_bytes)
        .KeyValue("materialized_bytes", m.materialized_bytes)
        .EndObject();
  }
  for (const CutoffMeasurement& m : cutoff_cells) {
    json.BeginObject()
        .KeyValue("sweep", "cutoff_pruning")
        .KeyValue("tuples", m.tuples)
        .KeyValue("attributes", 6)
        .KeyValue("strategy", "lookahead-entropy")
        .KeyValue("interactions", m.interactions)
        .KeyValue("exhaustive_us_per_step", m.exhaustive_us_per_step)
        .KeyValue("pruned_us_per_step", m.pruned_us_per_step)
        .KeyValue("cutoff_speedup", m.speedup)
        .EndObject();
  }
  for (const OnDiskMeasurement& m : ondisk_cells) {
    json.BeginObject()
        .KeyValue("sweep", "ondisk_scale")
        .KeyValue("flights", m.flights)
        .KeyValue("hotels", m.hotels)
        .KeyValue("candidate_tuples", m.candidate_tuples)
        .KeyValue("classes", m.classes)
        .KeyValue("write_ms", m.write_millis)
        .KeyValue("open_ms", m.open_millis)
        .KeyValue("build_classes_ms", m.build_classes_millis)
        .KeyValue("file_bytes", m.file_bytes)
        .KeyValue("resident_bytes", m.resident_bytes)
        .EndObject();
  }
  json.EndArray();
  bench::AppendMetricsSnapshot(json);
  json.EndObject();
  std::ofstream out(json_path);
  out << json.str() << "\n";
  out.flush();
  if (!out.good()) {
    std::cerr << "bench_scalability: failed to write " << json_path << "\n";
    return 1;
  }
  std::cout << "\nwrote " << json_path << "\n";
  return 0;
}
