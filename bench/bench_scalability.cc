// Experiment S2 (DESIGN.md): efficiency and scalability (paper §1 / [3]).
// Two sweeps:
//   (a) instance size: #interactions and time per interaction vs #tuples —
//       interactions should grow slowly (the engine works on tuple classes),
//       per-step time stays interactive;
//   (b) schema width: both grow with #attributes (the hypothesis lattice
//       deepens), the real driver of hardness.

#include <iostream>

#include "bench/bench_util.h"
#include "core/jim.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"
#include "workload/synthetic.h"

namespace {

using namespace jim;

struct Measurement {
  double interactions = 0;
  double micros_per_step = 0;
  double build_millis = 0;
  double classes = 0;
};

Measurement Measure(const std::string& strategy_name, size_t num_tuples,
                    size_t num_attributes, size_t repetitions) {
  Measurement out;
  bench::Series interactions;
  bench::Series step_micros;
  bench::Series build_millis;
  bench::Series classes;
  for (size_t rep = 0; rep < repetitions; ++rep) {
    util::Rng rng(4000 + rep * 17 + num_tuples);
    workload::SyntheticSpec spec;
    spec.num_attributes = num_attributes;
    spec.num_tuples = num_tuples;
    spec.domain_size = 6;
    spec.goal_constraints = 2;
    const auto workload = workload::MakeSyntheticWorkload(spec, rng);

    util::Stopwatch build_clock;
    core::InferenceEngine probe(workload.instance);
    build_millis.Add(build_clock.ElapsedSeconds() * 1e3);
    classes.Add(static_cast<double>(probe.num_classes()));

    auto strategy = core::MakeStrategy(strategy_name, 31 + rep).value();
    const auto result =
        core::RunSession(workload.instance, workload.goal, *strategy);
    interactions.Add(static_cast<double>(result.interactions));
    double total_micros = 0;
    for (const auto& step : result.steps) {
      total_micros += static_cast<double>(step.micros);
    }
    step_micros.Add(result.steps.empty()
                        ? 0
                        : total_micros /
                              static_cast<double>(result.steps.size()));
  }
  out.interactions = interactions.Mean();
  out.micros_per_step = step_micros.Mean();
  out.build_millis = build_millis.Mean();
  out.classes = classes.Mean();
  return out;
}

}  // namespace

int main() {
  const std::vector<std::string> strategies = {"random", "local-bottom-up",
                                               "lookahead-entropy"};

  std::cout << "== S2a: scaling the instance (attrs=6, domain=6, goal=2 eqs; "
               "mean over 5 runs) ==\n\n";
  util::TablePrinter size_table({"tuples", "classes", "strategy",
                                 "interactions", "us/step", "build ms"});
  size_table.SetAlignments({util::Align::kRight, util::Align::kRight,
                            util::Align::kLeft, util::Align::kRight,
                            util::Align::kRight, util::Align::kRight});
  for (size_t tuples : {100u, 300u, 1000u, 3000u, 10000u, 30000u}) {
    for (const std::string& name : strategies) {
      const Measurement m = Measure(name, tuples, /*num_attributes=*/6,
                                    /*repetitions=*/5);
      size_table.AddRow({std::to_string(tuples),
                         util::StrFormat("%.0f", m.classes), name,
                         util::StrFormat("%.1f", m.interactions),
                         util::StrFormat("%.0f", m.micros_per_step),
                         util::StrFormat("%.1f", m.build_millis)});
    }
    size_table.AddSeparator();
  }
  std::cout << size_table.ToString();

  std::cout << "\n== S2b: scaling the schema (tuples=1000, domain=6, goal=2 "
               "eqs; mean over 5 runs) ==\n\n";
  util::TablePrinter width_table({"attrs", "classes", "strategy",
                                  "interactions", "us/step"});
  width_table.SetAlignments({util::Align::kRight, util::Align::kRight,
                             util::Align::kLeft, util::Align::kRight,
                             util::Align::kRight});
  for (size_t attrs : {4u, 6u, 8u, 10u, 12u}) {
    for (const std::string& name : strategies) {
      const Measurement m =
          Measure(name, /*num_tuples=*/1000, attrs, /*repetitions=*/5);
      width_table.AddRow({std::to_string(attrs),
                          util::StrFormat("%.0f", m.classes), name,
                          util::StrFormat("%.1f", m.interactions),
                          util::StrFormat("%.0f", m.micros_per_step)});
    }
    width_table.AddSeparator();
  }
  std::cout << width_table.ToString()
            << "\nExpected shape: interactions grow sublinearly in #tuples "
               "(class structure saturates) but steeply in #attributes; "
               "per-step latency stays well inside interactive bounds.\n";
  return 0;
}
