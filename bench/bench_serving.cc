// Serving-tier benchmark: an in-process daemon (TCP transport, real
// connection handling) under an open-loop session arrival process, run once
// per ServingMode. Arrivals fire on a seeded exponential schedule whether or
// not a worker is free, so queueing delay under saturation shows up in the
// latencies instead of being absorbed by the load generator (closed-loop
// coordinated omission). Client workers drive each session create →
// (suggest → oracle label)* → result → close over its own connection,
// timing every suggest and label round-trip client-side.
//
// Reported per mode: sessions/sec, labels/sec, and p50/p99 of the create /
// suggest / label round-trips, as a table and as BENCH_serving.json (meta
// block + metrics registry snapshot, same shape as the other BENCH_*.json
// trajectories).
//
// --quick drives the 12-tuple Figure 1 instance; the full run drives a
// LargeTravelInstance cross product where each lookahead decision does real
// work, separating the two modes' parallelism choices.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "core/join_predicate.h"
#include "core/tuple_store.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/session_manager.h"
#include "serve/transport.h"
#include "util/bitset.h"
#include "util/check.h"
#include "util/json_writer.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "workload/travel.h"

namespace {

using namespace jim;

struct BenchConfig {
  size_t sessions = 96;
  size_t workers = 8;
  /// Labels driven per session before the client stops early (sessions that
  /// converge sooner stop at done).
  size_t max_labels = 6;
  /// Mean of the exponential inter-arrival distribution.
  double mean_interarrival_seconds = 0.002;
  uint64_t seed = 2014;
  bool quick = false;
};

/// Latency samples (microseconds) for one verb across a whole mode run.
struct LatencySeries {
  std::vector<double> micros;

  void Merge(const LatencySeries& other) {
    micros.insert(micros.end(), other.micros.begin(), other.micros.end());
  }
  double Percentile(double p) {
    if (micros.empty()) return 0;
    std::sort(micros.begin(), micros.end());
    const double rank = p * static_cast<double>(micros.size() - 1);
    const size_t lo = static_cast<size_t>(rank);
    const size_t hi = std::min(lo + 1, micros.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return micros[lo] + (micros[hi] - micros[lo]) * frac;
  }
};

struct ModeResult {
  serve::ServingMode mode = serve::ServingMode::kManySessions;
  size_t sessions = 0;
  size_t labels = 0;
  double wall_seconds = 0;
  LatencySeries create_us;
  LatencySeries suggest_us;
  LatencySeries label_us;
};

/// The open-loop schedule: session i becomes due at offset_seconds[i] after
/// the run's epoch, regardless of how the previous sessions are doing.
std::vector<double> ArrivalOffsets(const BenchConfig& config) {
  util::Rng rng(config.seed);
  std::vector<double> offsets;
  offsets.reserve(config.sessions);
  double t = 0;
  for (size_t i = 0; i < config.sessions; ++i) {
    // Inverse-CDF exponential draw; 1-U keeps log's argument in (0,1].
    t += -config.mean_interarrival_seconds *
         std::log(1.0 - rng.UniformDouble());
    offsets.push_back(t);
  }
  return offsets;
}

/// Drives one full session over `client`, timing each round-trip. Returns
/// the number of labels submitted.
size_t DriveSession(serve::Client& client, const BenchConfig& config,
                    uint64_t seed, const util::DynamicBitset& selected,
                    ModeResult& out) {
  serve::Request create;
  create.verb = "create";
  create.strategy = "lookahead-entropy";
  create.seed = seed;
  util::Stopwatch watch;
  auto session = client.Create(create);
  out.create_us.micros.push_back(
      static_cast<double>(watch.ElapsedMicros()));
  JIM_CHECK_OK(session.status());
  size_t labels = 0;
  while (labels < config.max_labels) {
    watch.Reset();
    auto suggested = client.Suggest(*session);
    out.suggest_us.micros.push_back(
        static_cast<double>(watch.ElapsedMicros()));
    JIM_CHECK_OK(suggested.status());
    if (suggested->GetBool("done", false)) break;
    const auto class_id =
        static_cast<uint64_t>(suggested->GetInt("class", 0));
    const auto tuple =
        static_cast<size_t>(suggested->GetInt("tuple", 0));
    watch.Reset();
    auto labeled = client.Label(*session, class_id, selected.Test(tuple));
    out.label_us.micros.push_back(
        static_cast<double>(watch.ElapsedMicros()));
    JIM_CHECK_OK(labeled.status());
    ++labels;
    if (labeled->GetBool("done", false)) break;
  }
  const auto final_result = client.Result(*session);
  JIM_CHECK_OK(final_result.status());
  JIM_CHECK_OK(client.Close(*session));
  return labels;
}

ModeResult RunMode(serve::ServingMode mode, const BenchConfig& config,
                   std::shared_ptr<const core::TupleStore> store,
                   const util::DynamicBitset& selected) {
  serve::ServeOptions options;
  options.mode = mode;
  options.max_sessions = config.sessions;  // admission never throttles here
  options.default_instance = "bench";
  serve::SessionManager manager(std::move(options));
  manager.RegisterInstance("bench", store);

  auto transport = serve::ListenTcp(0);
  JIM_CHECK_OK(transport.status());
  serve::ServerOptions server_options;
  server_options.max_connections = config.workers + 2;
  serve::Server server(&manager, std::move(*transport), server_options);
  server.Start();
  const uint16_t port = serve::PortOfAddress(server.address()).value();

  const std::vector<double> offsets = ArrivalOffsets(config);

  std::mutex mutex;
  std::condition_variable ready;
  std::deque<size_t> due;  // session indices whose arrival time has passed
  bool arrivals_done = false;

  ModeResult result;
  result.mode = mode;

  util::Stopwatch wall;
  // The arrival clock: releases session i at offsets[i], busy or not.
  std::thread arrivals([&] {
    for (size_t i = 0; i < config.sessions; ++i) {
      const double wait = offsets[i] - wall.ElapsedSeconds();
      if (wait > 0) {
        std::this_thread::sleep_for(std::chrono::duration<double>(wait));
      }
      {
        std::lock_guard<std::mutex> lock(mutex);
        due.push_back(i);
      }
      ready.notify_one();
    }
    {
      std::lock_guard<std::mutex> lock(mutex);
      arrivals_done = true;
    }
    ready.notify_all();
  });

  std::vector<std::thread> workers;
  std::vector<ModeResult> worker_results(config.workers);
  std::vector<size_t> worker_labels(config.workers, 0);
  for (size_t w = 0; w < config.workers; ++w) {
    workers.emplace_back([&, w] {
      auto client = serve::Client::ConnectTcp(port);
      JIM_CHECK_OK(client.status());
      for (;;) {
        size_t index = 0;
        {
          std::unique_lock<std::mutex> lock(mutex);
          ready.wait(lock, [&] { return !due.empty() || arrivals_done; });
          if (due.empty()) return;
          index = due.front();
          due.pop_front();
        }
        worker_labels[w] +=
            DriveSession(*client, config, config.seed + 7919 * index,
                         selected, worker_results[w]);
      }
    });
  }

  arrivals.join();
  for (std::thread& worker : workers) worker.join();
  result.wall_seconds = wall.ElapsedSeconds();
  server.Shutdown();

  result.sessions = config.sessions;
  for (size_t w = 0; w < config.workers; ++w) {
    result.labels += worker_labels[w];
    result.create_us.Merge(worker_results[w].create_us);
    result.suggest_us.Merge(worker_results[w].suggest_us);
    result.label_us.Merge(worker_results[w].label_us);
  }
  JIM_CHECK(manager.GetStats().live == 0);
  return result;
}

void AppendModeJson(util::JsonWriter& json, ModeResult& r) {
  json.BeginObject();
  json.KeyValue("mode", std::string(serve::ServingModeName(r.mode)));
  json.KeyValue("sessions", r.sessions);
  json.KeyValue("labels", r.labels);
  json.KeyValue("wall_seconds", r.wall_seconds);
  if (r.wall_seconds > 0) {
    json.KeyValue("sessions_per_sec",
                  static_cast<double>(r.sessions) / r.wall_seconds);
    json.KeyValue("labels_per_sec",
                  static_cast<double>(r.labels) / r.wall_seconds);
  }
  json.KeyValue("create_p50_us", r.create_us.Percentile(0.50));
  json.KeyValue("create_p99_us", r.create_us.Percentile(0.99));
  json.KeyValue("suggest_p50_us", r.suggest_us.Percentile(0.50));
  json.KeyValue("suggest_p99_us", r.suggest_us.Percentile(0.99));
  json.KeyValue("label_p50_us", r.label_us.Percentile(0.50));
  json.KeyValue("label_p99_us", r.label_us.Percentile(0.99));
  json.EndObject();
}

bool WriteJson(std::vector<ModeResult>& results, const BenchConfig& config,
               const std::string& path) {
  util::JsonWriter json;
  json.BeginObject();
  json.KeyValue("benchmark", "serving");
  bench::AppendMetaBlock(json);
  json.KeyValue("quick", config.quick);
  json.KeyValue("sessions", config.sessions);
  json.KeyValue("workers", config.workers);
  json.KeyValue("max_labels_per_session", config.max_labels);
  json.KeyValue("mean_interarrival_us",
                config.mean_interarrival_seconds * 1e6);
  json.KeyValue("seed", config.seed);
  json.Key("modes");
  json.BeginArray();
  for (ModeResult& r : results) AppendModeJson(json, r);
  json.EndArray();
  bench::AppendMetricsSnapshot(json);
  json.EndObject();
  std::ofstream out(path);
  out << json.str() << "\n";
  out.flush();
  return out.good();
}

}  // namespace

int main(int argc, char** argv) {
  const size_t threads = bench::ParseThreadsFlag(argc, argv);
  (void)threads;  // sizes exec::SharedPool(), the kFewSessions fan-out
  BenchConfig config;
  std::string json_path = "BENCH_serving.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      config.quick = true;
    } else if (arg == "--out") {
      if (i + 1 >= argc) {
        std::cerr << "bench_serving: --out requires a path\n";
        return 2;
      }
      json_path = argv[++i];
    } else {
      std::cerr << "bench_serving: unknown argument '" << arg
                << "' (usage: bench_serving [--quick] [--threads N] "
                   "[--out PATH])\n";
      return 2;
    }
  }
  if (config.quick) {
    config.sessions = 48;
    config.workers = 4;
    config.max_labels = 4;
  }

  std::shared_ptr<const core::TupleStore> store;
  if (config.quick) {
    store = workload::Figure1StorePtr();
  } else {
    util::Rng rng(config.seed);
    store = core::MakeRelationStore(
        std::make_shared<rel::Relation>(workload::LargeTravelInstance(
            /*num_flights=*/120, /*num_hotels=*/40, /*num_cities=*/12,
            /*num_airlines=*/6, rng)));
  }
  const auto goal =
      core::JoinPredicate::Parse(store->schema(), workload::kQ2).value();
  const util::DynamicBitset selected = goal.SelectedRows(*store);

  std::vector<ModeResult> results;
  for (serve::ServingMode mode : {serve::ServingMode::kManySessions,
                                  serve::ServingMode::kFewSessions}) {
    results.push_back(RunMode(mode, config, store, selected));
  }

  jim::util::TablePrinter table({"mode", "sessions/s", "labels/s",
                                 "suggest p50 µs", "suggest p99 µs",
                                 "label p50 µs", "label p99 µs"});
  table.SetAlignments({jim::util::Align::kLeft, jim::util::Align::kRight,
                       jim::util::Align::kRight, jim::util::Align::kRight,
                       jim::util::Align::kRight, jim::util::Align::kRight,
                       jim::util::Align::kRight});
  for (ModeResult& r : results) {
    table.AddRow(
        {std::string(serve::ServingModeName(r.mode)),
         util::StrFormat("%.1f", static_cast<double>(r.sessions) /
                                     std::max(r.wall_seconds, 1e-9)),
         util::StrFormat("%.1f", static_cast<double>(r.labels) /
                                     std::max(r.wall_seconds, 1e-9)),
         util::StrFormat("%.1f", r.suggest_us.Percentile(0.50)),
         util::StrFormat("%.1f", r.suggest_us.Percentile(0.99)),
         util::StrFormat("%.1f", r.label_us.Percentile(0.50)),
         util::StrFormat("%.1f", r.label_us.Percentile(0.99))});
  }
  std::cout << table.ToString();

  if (!WriteJson(results, config, json_path)) {
    std::cerr << "bench_serving: failed to write " << json_path << "\n";
    return 1;
  }
  std::cout << "\nwrote " << json_path << "\n";
  return 0;
}
