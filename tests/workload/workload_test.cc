#include <set>

#include <gtest/gtest.h>

#include "core/jim.h"
#include "query/universal_table.h"
#include "util/rng.h"
#include "workload/setgame.h"
#include "workload/synthetic.h"
#include "workload/tpch.h"
#include "workload/travel.h"

namespace jim::workload {
namespace {

TEST(TravelTest, Figure1IsExact) {
  const rel::Relation instance = Figure1Instance();
  ASSERT_EQ(instance.num_rows(), 12u);
  ASSERT_EQ(instance.num_attributes(), 5u);
  EXPECT_EQ(instance.schema().Names(),
            (std::vector<std::string>{"From", "To", "Airline", "City",
                                      "Discount"}));
  // Every row of Figure 1, in order.
  const char* expected[][5] = {
      {"Paris", "Lille", "AF", "NYC", "AA"},
      {"Paris", "Lille", "AF", "Paris", "None"},
      {"Paris", "Lille", "AF", "Lille", "AF"},
      {"Lille", "NYC", "AA", "NYC", "AA"},
      {"Lille", "NYC", "AA", "Paris", "None"},
      {"Lille", "NYC", "AA", "Lille", "AF"},
      {"NYC", "Paris", "AA", "NYC", "AA"},
      {"NYC", "Paris", "AA", "Paris", "None"},
      {"NYC", "Paris", "AA", "Lille", "AF"},
      {"Paris", "NYC", "AF", "NYC", "AA"},
      {"Paris", "NYC", "AF", "Paris", "None"},
      {"Paris", "NYC", "AF", "Lille", "AF"},
  };
  for (size_t r = 0; r < 12; ++r) {
    for (size_t c = 0; c < 5; ++c) {
      EXPECT_EQ(instance.row(r)[c].AsString(), expected[r][c])
          << "row " << r + 1 << " column " << c;
    }
  }
}

TEST(TravelTest, CatalogProductIsFigure1) {
  const rel::Catalog catalog = TravelCatalog();
  EXPECT_EQ(catalog.Get("Flights").value()->num_rows(), 4u);
  EXPECT_EQ(catalog.Get("Hotels").value()->num_rows(), 3u);
}

TEST(TravelTest, LargeInstanceShape) {
  util::Rng rng(1);
  const rel::Relation instance = LargeTravelInstance(
      /*num_flights=*/20, /*num_hotels=*/10, /*num_cities=*/5,
      /*num_airlines=*/3, rng);
  EXPECT_EQ(instance.num_rows(), 200u);
  EXPECT_EQ(instance.num_attributes(), 5u);
  // From ≠ To by construction.
  for (const auto& row : instance.rows()) {
    EXPECT_FALSE(row[0].Equals(row[1]));
  }
}

TEST(SyntheticTest, RandomPartitionHasRequestedRank) {
  util::Rng rng(2);
  for (size_t n : {3u, 5u, 8u}) {
    for (size_t rank = 0; rank < n; ++rank) {
      const lat::Partition p = RandomPartitionWithRank(n, rank, rng);
      EXPECT_EQ(p.Rank(), rank) << "n=" << n;
    }
  }
}

TEST(SyntheticTest, WorkloadShapeAndGoalSatisfaction) {
  util::Rng rng(3);
  SyntheticSpec spec;
  spec.num_attributes = 6;
  spec.num_tuples = 500;
  spec.domain_size = 5;
  spec.goal_constraints = 2;
  spec.goal_satisfaction_rate = 0.3;
  const SyntheticWorkload workload = MakeSyntheticWorkload(spec, rng);
  EXPECT_EQ(workload.instance->num_rows(), 500u);
  EXPECT_EQ(workload.instance->num_attributes(), 6u);
  EXPECT_EQ(workload.goal.NumConstraints(), 2u);
  // At least roughly the requested fraction satisfies the goal.
  const size_t selected =
      workload.goal.SelectedRows(*workload.instance).Count();
  EXPECT_GT(selected, 100u);
  EXPECT_LT(selected, 350u);
}

TEST(SyntheticTest, PlantedGoalIsInferable) {
  util::Rng rng(4);
  SyntheticSpec spec;
  spec.num_attributes = 5;
  spec.num_tuples = 150;
  spec.domain_size = 4;
  spec.goal_constraints = 2;
  const SyntheticWorkload workload = MakeSyntheticWorkload(spec, rng);
  auto strategy = core::MakeStrategy("lookahead-entropy").value();
  const auto result =
      core::RunSession(workload.instance, workload.goal, *strategy);
  EXPECT_TRUE(result.identified_goal);
}

TEST(SyntheticTest, ExplicitGoalPartitionIsUsed) {
  util::Rng rng(5);
  SyntheticSpec spec;
  spec.num_attributes = 4;
  const lat::Partition goal = lat::Partition::FromLabels({0, 0, 1, 1});
  const SyntheticWorkload workload = MakeSyntheticWorkload(spec, goal, rng);
  EXPECT_EQ(workload.goal.partition(), goal);
}

TEST(TpchTest, CatalogShapeAndKeys) {
  util::Rng rng(6);
  const TpchSpec spec;
  const rel::Catalog catalog = MakeTpchCatalog(spec, rng);
  EXPECT_EQ(catalog.size(), 8u);
  const rel::Relation& nation = *catalog.Get("nation").value();
  EXPECT_EQ(nation.num_rows(), spec.num_nations);
  const rel::Relation& orders = *catalog.Get("orders").value();
  EXPECT_EQ(orders.num_rows(), spec.num_orders);
  const rel::Relation& lineitem = *catalog.Get("lineitem").value();
  EXPECT_EQ(lineitem.num_rows(),
            spec.num_orders * spec.num_lineitems_per_order);

  // Foreign keys reference existing keys: every o_custkey is a c_custkey.
  std::set<int64_t> custkeys;
  for (const auto& row : catalog.Get("customer").value()->rows()) {
    custkeys.insert(row[0].AsInt64());
  }
  for (const auto& row : orders.rows()) {
    EXPECT_TRUE(custkeys.count(row[1].AsInt64())) << "dangling o_custkey";
  }
  // Every n_regionkey is a real region.
  std::set<int64_t> regionkeys;
  for (const auto& row : catalog.Get("region").value()->rows()) {
    regionkeys.insert(row[0].AsInt64());
  }
  for (const auto& row : nation.rows()) {
    EXPECT_TRUE(regionkeys.count(row[2].AsInt64())) << "dangling n_regionkey";
  }
}

TEST(TpchTest, ScenariosParseAgainstTheirUniversalTables) {
  util::Rng rng(7);
  const rel::Catalog catalog = MakeTpchCatalog({}, rng);
  for (const TpchScenario& scenario : TpchScenarios()) {
    query::UniversalTableOptions options;
    options.sample_cap = 2000;
    const auto table =
        query::UniversalTable::Build(catalog, scenario.relations, options);
    ASSERT_TRUE(table.ok()) << scenario.name;
    const auto goal =
        core::JoinPredicate::Parse(table->schema(), scenario.goal);
    ASSERT_TRUE(goal.ok()) << scenario.name << ": "
                           << goal.status().ToString();
    EXPECT_EQ(goal->NumConstraints(), scenario.goal_constraints)
        << scenario.name;
  }
}

TEST(SetGameTest, DeckIsComplete) {
  const rel::Relation cards = AllSetCards();
  EXPECT_EQ(cards.num_rows(), 81u);
  // All combinations distinct.
  std::set<std::string> seen;
  for (const auto& row : cards.rows()) {
    std::string key;
    for (const auto& value : row) key += value.AsString() + "|";
    EXPECT_TRUE(seen.insert(key).second);
  }
}

TEST(SetGameTest, PairInstanceShapes) {
  util::Rng rng(8);
  EXPECT_EQ(SetPairInstance(0, rng)->num_rows(), 6561u);
  EXPECT_EQ(SetPairInstance(500, rng)->num_rows(), 500u);
  EXPECT_EQ(SetPairInstance(0, rng)->num_attributes(), 8u);
}

TEST(SetGameTest, SameColorAndShadingGoalSelectsCorrectPairs) {
  util::Rng rng(9);
  auto instance = SetPairInstance(0, rng);
  const auto goal = SameColorAndShadingGoal(instance->schema());
  // P(same color) = 27/81 per side match: #pairs = 81*81/9 = 729 per
  // feature; same color AND same shading: 81*81/9 = 729.
  EXPECT_EQ(goal.SelectedRows(*instance).Count(), 729u);
}

TEST(SetGameTest, AllFifteenGoals) {
  util::Rng rng(10);
  auto instance = SetPairInstance(0, rng);
  const auto goals = AllFeatureMatchGoals(instance->schema());
  ASSERT_EQ(goals.size(), 15u);
  // Sorted by constraint count: 4 singles, 6 doubles, 4 triples, 1 quad.
  EXPECT_EQ(goals.front().predicate.NumConstraints(), 1u);
  EXPECT_EQ(goals.back().predicate.NumConstraints(), 4u);
  // The all-features goal selects exactly the diagonal (81 identical pairs).
  EXPECT_EQ(goals.back().predicate.SelectedRows(*instance).Count(), 81u);
}

}  // namespace
}  // namespace jim::workload
