// Cross-module integration tests: catalog → universal table → interactive
// inference → SQL → evaluation, plus randomized end-to-end sweeps that chain
// every subsystem the way the examples do.

#include <gtest/gtest.h>

#include "core/jim.h"
#include "crowd/crowd_join.h"
#include "query/universal_table.h"
#include "relational/csv_io.h"
#include "util/rng.h"
#include "workload/setgame.h"
#include "workload/synthetic.h"
#include "workload/tpch.h"
#include "workload/travel.h"

namespace jim {
namespace {

TEST(EndToEnd, CsvRoundTripThenInference) {
  // Persist Figure 1 to CSV, reload, and infer — storage must be
  // transparent to the engine.
  const std::string path = ::testing::TempDir() + "/figure1.csv";
  ASSERT_TRUE(
      rel::SaveRelationToCsvFile(workload::Figure1Instance(), path).ok());
  auto reloaded = rel::LoadRelationFromCsvFile(path, "FlightHotel");
  ASSERT_TRUE(reloaded.ok());
  auto instance = std::make_shared<const rel::Relation>(*std::move(reloaded));

  const auto goal =
      core::JoinPredicate::Parse(instance->schema(), workload::kQ2).value();
  auto strategy = core::MakeStrategy("lookahead-entropy").value();
  const auto result = core::RunSession(instance, goal, *strategy);
  EXPECT_TRUE(result.identified_goal);
  std::remove(path.c_str());
}

TEST(EndToEnd, TpchUniversalTableInferenceToSql) {
  util::Rng rng(14);
  workload::TpchSpec spec;
  spec.num_customers = 15;
  spec.num_orders = 25;
  const rel::Catalog catalog = workload::MakeTpchCatalog(spec, rng);

  query::UniversalTableOptions options;
  options.sample_cap = 2000;
  const auto table =
      query::UniversalTable::Build(catalog, {"customer", "orders"}, options)
          .value();
  const auto goal =
      core::JoinPredicate::Parse(table.schema(),
                                 "customer.c_custkey = orders.o_custkey")
          .value();
  auto strategy = core::MakeStrategy("lookahead-entropy").value();
  const auto session = core::RunSession(table.store(), goal, *strategy);
  ASSERT_TRUE(session.identified_goal);

  const query::JoinQuery query = table.ToJoinQuery(*session.result);
  const auto sql = query.ToSql(catalog).value();
  EXPECT_NE(sql.find("customer.c_custkey = orders.o_custkey"),
            std::string::npos)
      << sql;
  // The inferred join, executed, equals the FK join: one row per order.
  EXPECT_EQ(query.Evaluate(catalog).value().num_rows(), spec.num_orders);
}

TEST(EndToEnd, RandomizedWorkloadsAcrossAllStrategies) {
  // The paper's core guarantee, stress-tested: for random instances and
  // random goals, every strategy identifies the goal up to
  // instance-equivalence, never asking more questions than there are
  // classes.
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    util::Rng rng(seed * 31);
    workload::SyntheticSpec spec;
    spec.num_attributes = 4 + seed % 4;
    spec.num_tuples = 60 + 40 * (seed % 3);
    spec.domain_size = 2 + seed % 5;
    spec.goal_constraints = seed % 3;
    const auto workload = workload::MakeSyntheticWorkload(spec, rng);
    core::InferenceEngine probe(workload.instance);
    for (const std::string& name :
         {std::string("random"), std::string("local-top-down"),
          std::string("lookahead-entropy")}) {
      auto strategy = core::MakeStrategy(name, seed).value();
      const auto result =
          core::RunSession(workload.instance, workload.goal, *strategy);
      ASSERT_TRUE(result.identified_goal)
          << name << " failed on seed " << seed;
      EXPECT_LE(result.interactions, probe.num_classes());
    }
  }
}

TEST(EndToEnd, InferenceResultIsCanonicalMaximal) {
  // JIM returns θ_P — the maximal consistent predicate. Every other
  // consistent predicate must be instance-equivalent and contained in it.
  util::Rng rng(77);
  workload::SyntheticSpec spec;
  spec.num_attributes = 4;
  spec.num_tuples = 50;
  spec.domain_size = 3;
  spec.goal_constraints = 1;
  const auto workload = workload::MakeSyntheticWorkload(spec, rng);
  auto strategy = core::MakeStrategy("lookahead-minmax").value();
  const auto result =
      core::RunSession(workload.instance, workload.goal, *strategy);
  ASSERT_TRUE(result.identified_goal);
  // The goal refines the returned θ_P (maximality).
  EXPECT_TRUE(
      workload.goal.partition().Refines(result.result->partition()));
}

TEST(EndToEnd, SetGameCrowdPipeline) {
  // Pictures + crowd + inference together: sampled pair instance, noisy
  // majority-voted workers, full identification check.
  util::Rng rng(55);
  auto instance = workload::SetPairInstance(/*sample_size=*/800, rng);
  const auto goal = workload::SameColorAndShadingGoal(instance->schema());
  auto strategy = core::MakeStrategy("lookahead-entropy").value();
  crowd::CrowdOptions options;
  options.worker_error_rate = 0.05;
  options.workers_per_question = 5;
  options.seed = 20;
  const auto result = crowd::RunCrowdJim(instance, goal, *strategy, options);
  EXPECT_GE(result.questions, 3u);
  EXPECT_LE(result.questions, 40u);
  // With 5-way voting at 5% error the run is overwhelmingly likely correct;
  // assert at least that accounting holds and the result exists.
  EXPECT_EQ(result.worker_answers, result.questions * 5);
}

TEST(EndToEnd, SelfJoinInferenceOverUniversalTable) {
  // Connecting flights: infer Flights.To = Flights.From over a self-join.
  const rel::Catalog catalog = workload::TravelCatalog();
  const auto table =
      query::UniversalTable::Build(catalog, {"Flights", "Flights"}).value();
  EXPECT_EQ(table.num_tuples(), 16u);
  const auto goal =
      core::JoinPredicate::Parse(table.schema(),
                                 "Flights_1.To = Flights_2.From")
          .value();
  auto strategy = core::MakeStrategy("lookahead-entropy").value();
  const auto session = core::RunSession(table.store(), goal, *strategy);
  ASSERT_TRUE(session.identified_goal);
  const auto query = table.ToJoinQuery(*session.result);
  EXPECT_EQ(query.Evaluate(catalog).value().num_rows(), 5u);
}

}  // namespace
}  // namespace jim
