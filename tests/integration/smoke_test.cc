// Build-system smoke test: exercises one path through every layer the
// examples link against (workload → relational → lattice → core inference →
// strategy → session), so a link regression in any library component fails
// this single fast test rather than only surfacing in the example binaries.

#include <gtest/gtest.h>

#include "core/jim.h"
#include "lattice/partition.h"
#include "util/json_writer.h"
#include "workload/travel.h"

namespace jim {
namespace {

TEST(SmokeTest, Figure1InferenceEndToEnd) {
  // The paper's Figure 1 instance: 12 tuples over the FlightHotel schema.
  auto instance = workload::Figure1InstancePtr();
  ASSERT_EQ(instance->num_rows(), 12u);

  const auto goal =
      core::JoinPredicate::Parse(instance->schema(), workload::kQ2).value();
  auto strategy = core::MakeStrategy("lookahead-entropy").value();
  const auto result = core::RunSession(instance, goal, *strategy);

  EXPECT_TRUE(result.identified_goal);
  EXPECT_GT(result.interactions, 0u);
  EXPECT_LE(result.interactions, instance->num_rows());
}

TEST(SmokeTest, BenchJsonWriterProducesBalancedOutput) {
  // The bench harness depends on JsonWriter producing well-formed output;
  // keep that contract pinned here too, next to the end-to-end path.
  util::JsonWriter json;
  json.BeginObject();
  json.KeyValue("benchmark", "smoke");
  json.Key("results");
  json.BeginArray();
  json.BeginObject();
  json.KeyValue("name", "noop");
  json.KeyValue("ns_per_op", 1.5);
  json.EndObject();
  json.EndArray();
  json.EndObject();
  EXPECT_EQ(json.str(),
            "{\"benchmark\":\"smoke\",\"results\":"
            "[{\"name\":\"noop\",\"ns_per_op\":1.5}]}");
}

}  // namespace
}  // namespace jim
