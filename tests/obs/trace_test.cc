#include "obs/trace.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/jim.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "workload/synthetic.h"
#include "workload/travel.h"

namespace jim::obs {
namespace {

workload::SyntheticWorkload MakeWorkload(uint64_t seed) {
  util::Rng rng(seed);
  workload::SyntheticSpec spec;
  spec.num_attributes = 5;
  spec.num_tuples = 80;
  spec.domain_size = 4;
  spec.goal_constraints = 2;
  return workload::MakeSyntheticWorkload(spec, rng);
}

core::SessionResult RunTraced(const workload::SyntheticWorkload& workload,
                              SessionTracer* tracer,
                              core::InteractionMode mode =
                                  core::InteractionMode::kMostInformative) {
  auto strategy = core::MakeStrategy("local-bottom-up", /*seed=*/3).value();
  core::ExactOracle oracle(workload.goal);
  core::SessionOptions options;
  options.mode = mode;
  options.tracer = tracer;
  core::InferenceEngine engine(workload.instance);
  return core::RunSessionOnEngine(engine, workload.goal, *strategy, oracle,
                                  options);
}

TEST(SessionTracerTest, StepsMirrorTheSessionResult) {
  const auto workload = MakeWorkload(31);
  SessionTracer tracer;
  const core::SessionResult result = RunTraced(workload, &tracer);

  EXPECT_TRUE(tracer.ended());
  EXPECT_EQ(tracer.interactions(), result.interactions);
  EXPECT_EQ(tracer.wasted_interactions(), result.wasted_interactions);
  EXPECT_EQ(tracer.identified_goal(), result.identified_goal);
  ASSERT_EQ(tracer.steps().size(), result.steps.size());
  for (size_t i = 0; i < result.steps.size(); ++i) {
    const TraceStep& traced = tracer.steps()[i];
    const core::SessionStep& step = result.steps[i];
    EXPECT_EQ(traced.step, i);
    EXPECT_EQ(traced.class_id, step.class_id);
    EXPECT_EQ(traced.tuple_index, step.tuple_index);
    EXPECT_EQ(traced.positive, step.label == core::Label::kPositive);
    EXPECT_TRUE(traced.accepted);
    EXPECT_EQ(traced.pruned_classes, step.pruned_classes);
    EXPECT_EQ(traced.pruned_tuples, step.pruned_tuples);
    // Propagation only ever shrinks the worklist.
    EXPECT_EQ(traced.worklist_before - traced.worklist_after,
              traced.pruned_classes);
  }
  EXPECT_EQ(tracer.meta().strategy, "local-bottom-up");
  EXPECT_EQ(tracer.meta().mode, "4-most-informative");
  EXPECT_EQ(tracer.meta().num_tuples, 80u);
  EXPECT_GT(tracer.meta().num_classes, 0u);
}

TEST(SessionTracerTest, TracingDoesNotPerturbTheSession) {
  const auto workload = MakeWorkload(57);
  SessionTracer tracer;
  const core::SessionResult traced = RunTraced(workload, &tracer);
  const core::SessionResult untraced = RunTraced(workload, nullptr);

  ASSERT_EQ(traced.steps.size(), untraced.steps.size());
  for (size_t i = 0; i < traced.steps.size(); ++i) {
    EXPECT_EQ(traced.steps[i].class_id, untraced.steps[i].class_id);
    EXPECT_EQ(traced.steps[i].tuple_index, untraced.steps[i].tuple_index);
    EXPECT_EQ(traced.steps[i].label, untraced.steps[i].label);
    EXPECT_EQ(traced.steps[i].pruned_tuples, untraced.steps[i].pruned_tuples);
  }
  EXPECT_EQ(traced.interactions, untraced.interactions);
  EXPECT_EQ(traced.identified_goal, untraced.identified_goal);
}

TEST(SessionTracerTest, JsonCarriesMetaStepsAndResult) {
  const auto workload = MakeWorkload(31);
  SessionTracer tracer;
  const core::SessionResult result = RunTraced(workload, &tracer);

  const std::string json = tracer.ToJson();
  EXPECT_NE(json.find("\"session\":{\"strategy\":\"local-bottom-up\""),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"mode\":\"4-most-informative\""), std::string::npos);
  EXPECT_NE(json.find("\"steps\":[{\"step\":0,"), std::string::npos);
  EXPECT_NE(json.find("\"result\":{\"identified_goal\":"), std::string::npos);
  EXPECT_NE(json.find(util::StrFormat("\"interactions\":%zu",
                                      result.interactions)),
            std::string::npos)
      << json;
}

TEST(SessionTracerTest, ClearMakesTheTracerReusable) {
  const auto workload = MakeWorkload(31);
  SessionTracer tracer;
  RunTraced(workload, &tracer);
  ASSERT_FALSE(tracer.steps().empty());

  tracer.Clear();
  EXPECT_TRUE(tracer.steps().empty());
  EXPECT_FALSE(tracer.ended());
  EXPECT_EQ(tracer.interactions(), 0u);
  EXPECT_TRUE(tracer.meta().strategy.empty());

  // A second session records from scratch.
  const core::SessionResult result = RunTraced(workload, &tracer);
  EXPECT_EQ(tracer.steps().size(), result.steps.size());
}

TEST(SessionTracerTest, SimulateCountsFollowTheMetricsToggle) {
  const bool was_enabled = MetricsEnabled();
  const auto workload = MakeWorkload(31);

  // Lookahead strategies spend SimulateLabelBoth calls per question; with
  // metrics on, the per-step counter delta shows up in the trace.
  const auto run_lookahead = [&workload](SessionTracer& tracer) {
    auto strategy = core::MakeStrategy("lookahead-entropy").value();
    if (auto* lookahead =
            dynamic_cast<core::LookaheadStrategy*>(strategy.get())) {
      lookahead->set_thread_pool(nullptr);
    }
    core::ExactOracle oracle(workload.goal);
    core::SessionOptions options;
    options.tracer = &tracer;
    core::InferenceEngine engine(workload.instance);
    return core::RunSessionOnEngine(engine, workload.goal, *strategy, oracle,
                                    options);
  };

  SetMetricsEnabled(true);
  SessionTracer with_metrics;
  run_lookahead(with_metrics);
  ASSERT_FALSE(with_metrics.steps().empty());
  EXPECT_GT(with_metrics.steps()[0].simulate_label_calls, 0u);

  SetMetricsEnabled(false);
  SessionTracer without_metrics;
  run_lookahead(without_metrics);
  ASSERT_EQ(without_metrics.steps().size(), with_metrics.steps().size());
  for (const TraceStep& step : without_metrics.steps()) {
    EXPECT_EQ(step.simulate_label_calls, 0u);
  }
  // The decisions themselves are unaffected by the toggle.
  for (size_t i = 0; i < with_metrics.steps().size(); ++i) {
    EXPECT_EQ(with_metrics.steps()[i].class_id,
              without_metrics.steps()[i].class_id);
  }

  SetMetricsEnabled(was_enabled);
}

}  // namespace
}  // namespace jim::obs
