#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/jim.h"
#include "exec/batch_runner.h"
#include "exec/thread_pool.h"
#include "obs/metric_names.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "workload/synthetic.h"

namespace jim::obs {
namespace {

/// Every test runs with metrics forced on and a zeroed registry, and
/// restores the ambient enabled state afterwards so test order (and the
/// parity suites running in the same binary) cannot observe leakage.
class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = MetricsEnabled();
    SetMetricsEnabled(true);
    MetricsRegistry::Instance().ResetForTesting();
  }
  void TearDown() override {
    MetricsRegistry::Instance().ResetForTesting();
    SetMetricsEnabled(was_enabled_);
  }

 private:
  bool was_enabled_ = false;
};

TEST_F(MetricsTest, CounterAccumulatesAcrossShards) {
  Counter& counter = MetricsRegistry::Instance().GetCounter("test.counter");
  EXPECT_EQ(counter.Value(), 0u);
  counter.Add(1);
  counter.Add(41);
  EXPECT_EQ(counter.Value(), 42u);

  // Increments from other threads land in (possibly) different shards but
  // sum into the same total.
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < 1000; ++i) counter.Add(1);
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.Value(), 42u + 4000u);

  counter.Reset();
  EXPECT_EQ(counter.Value(), 0u);
}

TEST_F(MetricsTest, RegistryReturnsStableReferences) {
  auto& registry = MetricsRegistry::Instance();
  Counter& a = registry.GetCounter("test.same");
  Counter& b = registry.GetCounter("test.same");
  EXPECT_EQ(&a, &b);
  // ResetForTesting zeroes in place — call-site-cached references (what the
  // JIM_COUNT macro holds in its function-local static) must stay valid.
  a.Add(7);
  registry.ResetForTesting();
  EXPECT_EQ(&registry.GetCounter("test.same"), &a);
  EXPECT_EQ(a.Value(), 0u);
}

TEST_F(MetricsTest, GaugeSetAndAdd) {
  Gauge& gauge = MetricsRegistry::Instance().GetGauge("test.gauge");
  gauge.Set(10);
  EXPECT_EQ(gauge.Value(), 10);
  gauge.Add(-3);
  EXPECT_EQ(gauge.Value(), 7);
  gauge.Reset();
  EXPECT_EQ(gauge.Value(), 0);
}

TEST_F(MetricsTest, HistogramBucketMath) {
  // Power-of-two buckets: bucket 0 holds exactly 0, bucket i holds
  // [2^(i-1), 2^i - 1].
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1), 1u);
  EXPECT_EQ(Histogram::BucketIndex(2), 2u);
  EXPECT_EQ(Histogram::BucketIndex(3), 2u);
  EXPECT_EQ(Histogram::BucketIndex(4), 3u);
  EXPECT_EQ(Histogram::BucketIndex(1023), 10u);
  EXPECT_EQ(Histogram::BucketIndex(1024), 11u);
  EXPECT_EQ(Histogram::BucketIndex(std::numeric_limits<uint64_t>::max()),
            Histogram::kNumBuckets - 1);

  EXPECT_EQ(Histogram::BucketUpperBound(0), 0u);
  EXPECT_EQ(Histogram::BucketUpperBound(1), 1u);
  EXPECT_EQ(Histogram::BucketUpperBound(3), 7u);
  EXPECT_EQ(Histogram::BucketUpperBound(Histogram::kNumBuckets - 1),
            std::numeric_limits<uint64_t>::max());

  // Every value lands inside its bucket's range.
  for (uint64_t v : {0ull, 1ull, 2ull, 100ull, 65536ull, 1ull << 40}) {
    const size_t bucket = Histogram::BucketIndex(v);
    EXPECT_LE(v, Histogram::BucketUpperBound(bucket)) << v;
    if (bucket > 0) {
      EXPECT_GT(v, Histogram::BucketUpperBound(bucket - 1)) << v;
    }
  }
}

TEST_F(MetricsTest, HistogramObserveAndSnapshot) {
  Histogram& hist = MetricsRegistry::Instance().GetHistogram("test.hist");
  hist.Observe(0);
  hist.Observe(1);
  hist.Observe(5);
  hist.Observe(5);
  const Histogram::Snapshot snap = hist.Snap();
  EXPECT_EQ(snap.count, 4u);
  EXPECT_EQ(snap.sum, 11u);
  EXPECT_EQ(snap.buckets[0], 1u);  // the 0
  EXPECT_EQ(snap.buckets[1], 1u);  // the 1
  EXPECT_EQ(snap.buckets[3], 2u);  // the 5s, in [4, 7]
}

TEST_F(MetricsTest, MacrosAreInertWhenDisabled) {
  SetMetricsEnabled(false);
  JIM_COUNT("test.disabled");
  JIM_COUNT_N("test.disabled", 10);
  JIM_OBSERVE("test.disabled_hist", 3);
  JIM_GAUGE_SET("test.disabled_gauge", 9);
  SetMetricsEnabled(true);
  auto& registry = MetricsRegistry::Instance();
  EXPECT_EQ(registry.CounterValue("test.disabled"), 0u);
  EXPECT_EQ(registry.GetHistogram("test.disabled_hist").Snap().count, 0u);
  EXPECT_EQ(registry.GetGauge("test.disabled_gauge").Value(), 0);

  JIM_COUNT_N("test.enabled", 3);
  EXPECT_EQ(registry.CounterValue("test.enabled"), 3u);
}

TEST_F(MetricsTest, SnapshotJsonShape) {
  auto& registry = MetricsRegistry::Instance();
  registry.GetCounter("test.z_counter").Add(2);
  registry.GetCounter("test.a_counter").Add(1);
  registry.GetGauge("test.gauge").Set(-4);
  registry.GetHistogram("test.hist").Observe(3);

  const std::string json = registry.Snapshot().ToJson();
  // Map-ordered: a_counter before z_counter regardless of creation order.
  EXPECT_NE(json.find("\"test.a_counter\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"test.z_counter\":2"), std::string::npos) << json;
  EXPECT_LT(json.find("\"test.a_counter\""), json.find("\"test.z_counter\""));
  EXPECT_NE(json.find("\"test.gauge\":-4"), std::string::npos) << json;
  EXPECT_NE(json.find("\"test.hist\":{\"count\":1,\"sum\":3,"
                      "\"buckets\":[[3,1]]}"),
            std::string::npos)
      << json;
}

TEST_F(MetricsTest, ConcurrentRegistryAccess) {
  // Hammers name interning and sharded increments from many threads at
  // once — the TSAN stage runs this to prove the registry is race-free.
  auto& registry = MetricsRegistry::Instance();
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&registry, t] {
      for (int i = 0; i < 500; ++i) {
        registry.GetCounter("test.shared").Add(1);
        registry
            .GetCounter(util::StrFormat("test.per_thread.%d", t % 4))
            .Add(1);
        registry.GetHistogram("test.shared_hist").Observe(
            static_cast<uint64_t>(i));
        if (i % 100 == 0) (void)registry.Snapshot();
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(registry.CounterValue("test.shared"), 4000u);
  uint64_t per_thread_total = 0;
  for (int t = 0; t < 4; ++t) {
    per_thread_total +=
        registry.CounterValue(util::StrFormat("test.per_thread.%d", t));
  }
  EXPECT_EQ(per_thread_total, 4000u);
  EXPECT_EQ(registry.GetHistogram("test.shared_hist").Snap().count, 4000u);
}

/// Deterministic projection of a snapshot: everything except the sums and
/// bucket spreads of wall-clock histograms (the `_micros` naming
/// convention) — those carry real elapsed time; their *counts* are still
/// work counts and must reproduce exactly.
std::string DeterministicProjection(const MetricsSnapshot& snap) {
  std::string out;
  for (const auto& [name, value] : snap.counters) {
    out += util::StrFormat("%s=%llu\n", name.c_str(),
                           static_cast<unsigned long long>(value));
  }
  for (const auto& [name, value] : snap.gauges) {
    out += util::StrFormat("%s=%lld\n", name.c_str(),
                           static_cast<long long>(value));
  }
  for (const auto& hist : snap.histograms) {
    out += util::StrFormat("%s.count=%llu\n", hist.name.c_str(),
                           static_cast<unsigned long long>(hist.count));
    if (util::EndsWith(hist.name, "_micros")) continue;
    out += util::StrFormat("%s.sum=%llu\n", hist.name.c_str(),
                           static_cast<unsigned long long>(hist.sum));
    for (const auto& [upper, count] : hist.buckets) {
      out += util::StrFormat("%s.le%llu=%llu\n", hist.name.c_str(),
                             static_cast<unsigned long long>(upper),
                             static_cast<unsigned long long>(count));
    }
  }
  return out;
}

TEST_F(MetricsTest, BatchRunnerSnapshotIsDeterministicAcrossRuns) {
  util::Rng rng(23);
  workload::SyntheticSpec spec;
  spec.num_attributes = 6;
  spec.num_tuples = 150;
  spec.domain_size = 4;
  spec.goal_constraints = 2;
  const auto workload = workload::MakeSyntheticWorkload(spec, rng);
  auto prototype =
      std::make_shared<const core::InferenceEngine>(workload.instance);

  const auto run_once = [&] {
    MetricsRegistry::Instance().ResetForTesting();
    std::vector<exec::SessionSpec> specs;
    for (const char* name : {"random", "local-bottom-up"}) {
      for (uint64_t seed : {1u, 2u, 3u}) {
        exec::SessionSpec session(prototype, workload.goal);
        session.make_strategy = [name, seed] {
          return core::MakeStrategy(name, seed).value();
        };
        specs.push_back(std::move(session));
      }
    }
    exec::ThreadPool pool(4);
    exec::BatchSessionRunner(&pool).Run(specs);
    return DeterministicProjection(MetricsRegistry::Instance().Snapshot());
  };

  const std::string first = run_once();
  // The engine-side counters moved — the projection is not vacuous.
  EXPECT_NE(first.find(std::string(kCounterExecBatchSessions) + "=6"),
            std::string::npos)
      << first;
  EXPECT_NE(first.find(kCounterEnginePropagateRuns), std::string::npos);
  for (int repeat = 0; repeat < 2; ++repeat) {
    EXPECT_EQ(run_once(), first) << "repeat " << repeat;
  }
}

}  // namespace
}  // namespace jim::obs
