#include "lattice/enumeration.h"

#include <set>

#include <gtest/gtest.h>

namespace jim::lat {
namespace {

TEST(BellNumberTest, KnownValues) {
  EXPECT_EQ(BellNumber(0), 1u);
  EXPECT_EQ(BellNumber(1), 1u);
  EXPECT_EQ(BellNumber(2), 2u);
  EXPECT_EQ(BellNumber(3), 5u);
  EXPECT_EQ(BellNumber(4), 15u);
  EXPECT_EQ(BellNumber(5), 52u);
  EXPECT_EQ(BellNumber(10), 115975u);
  EXPECT_EQ(BellNumber(20), 51724158235372ull);
  EXPECT_EQ(BellNumber(25), 4638590332229999353ull);
}

TEST(VisitAllPartitionsTest, CountMatchesBell) {
  for (size_t n = 0; n <= 8; ++n) {
    size_t count = 0;
    VisitAllPartitions(n, [&count](const Partition&) {
      ++count;
      return true;
    });
    EXPECT_EQ(count, BellNumber(n)) << "n=" << n;
  }
}

TEST(VisitAllPartitionsTest, AllDistinctAndValid) {
  std::set<std::string> seen;
  VisitAllPartitions(5, [&seen](const Partition& p) {
    EXPECT_EQ(p.num_elements(), 5u);
    EXPECT_TRUE(seen.insert(p.ToString()).second) << p.ToString();
    return true;
  });
  EXPECT_EQ(seen.size(), 52u);
}

TEST(VisitAllPartitionsTest, EarlyStop) {
  size_t count = 0;
  const bool completed = VisitAllPartitions(6, [&count](const Partition&) {
    return ++count < 10;
  });
  EXPECT_FALSE(completed);
  EXPECT_EQ(count, 10u);
}

TEST(AllPartitionsTest, MaterializesAll) {
  EXPECT_EQ(AllPartitions(4).size(), 15u);
  EXPECT_EQ(AllPartitions(0).size(), 1u);
}

TEST(RefinementsTest, CountFormula) {
  // Refinements of a partition with block sizes s_i number ∏ B(s_i).
  const Partition p = Partition::FromLabels({0, 0, 0, 1, 1, 2});
  EXPECT_EQ(CountRefinements(p), BellNumber(3) * BellNumber(2) * BellNumber(1));
  size_t visited = 0;
  VisitRefinements(p, [&](const Partition& q) {
    EXPECT_TRUE(q.Refines(p));
    ++visited;
    return true;
  });
  EXPECT_EQ(visited, CountRefinements(p));
}

TEST(RefinementsTest, TopYieldsWholeLattice) {
  // Refinements of ⊤ are all partitions.
  const auto refinements = AllRefinements(Partition::Top(5));
  EXPECT_EQ(refinements.size(), BellNumber(5));
}

TEST(RefinementsTest, BottomYieldsItself) {
  const auto refinements = AllRefinements(Partition::Singletons(5));
  ASSERT_EQ(refinements.size(), 1u);
  EXPECT_EQ(refinements[0], Partition::Singletons(5));
}

TEST(RefinementsTest, ExactlyTheRefinementsByBruteForce) {
  const Partition p = Partition::FromLabels({0, 1, 0, 1, 2});
  std::set<std::string> from_visit;
  VisitRefinements(p, [&](const Partition& q) {
    from_visit.insert(q.ToString());
    return true;
  });
  std::set<std::string> brute_force;
  VisitAllPartitions(5, [&](const Partition& q) {
    if (q.Refines(p)) brute_force.insert(q.ToString());
    return true;
  });
  EXPECT_EQ(from_visit, brute_force);
}

TEST(CoversTest, LowerCoversSplitOneBlock) {
  const Partition p = Partition::FromLabels({0, 0, 0, 1});
  const auto covers = LowerCovers(p);
  // The 3-element block splits in 2^(3-1)-1 = 3 ways; the singleton cannot.
  ASSERT_EQ(covers.size(), 3u);
  for (const Partition& q : covers) {
    EXPECT_TRUE(q.StrictlyRefines(p));
    EXPECT_EQ(q.Rank() + 1, p.Rank());
  }
}

TEST(CoversTest, UpperCoversMergeTwoBlocks) {
  const Partition p = Partition::FromLabels({0, 1, 2});
  const auto covers = UpperCovers(p);
  ASSERT_EQ(covers.size(), 3u);  // C(3,2)
  for (const Partition& q : covers) {
    EXPECT_TRUE(p.StrictlyRefines(q));
    EXPECT_EQ(p.Rank() + 1, q.Rank());
  }
}

TEST(CoversTest, CoversAreImmediate) {
  // No partition sits strictly between p and any of its covers.
  const Partition p = Partition::FromLabels({0, 0, 1, 2});
  for (const Partition& cover : UpperCovers(p)) {
    VisitAllPartitions(4, [&](const Partition& between) {
      if (p.StrictlyRefines(between) && between.StrictlyRefines(cover)) {
        ADD_FAILURE() << between.ToString() << " sits between "
                      << p.ToString() << " and " << cover.ToString();
      }
      return true;
    });
  }
}

}  // namespace
}  // namespace jim::lat
