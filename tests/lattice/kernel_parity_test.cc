// Randomized parity tests: the allocation-free scratch kernels must compute
// exactly what the naive allocating reference implementations compute, over
// seeded random partitions of varying sizes (including the degenerate ones:
// singletons, top, n = 1).

#include <vector>

#include <gtest/gtest.h>

#include "lattice/antichain.h"
#include "lattice/partition.h"
#include "util/rng.h"
#include "util/check.h"

namespace jim::lat {
namespace {

// Parity suites run with the invariant auditor on (see util/check.h): every
// JIM_AUDIT checkpoint inside the engine re-derives its CheckInvariants
// contract while the parity assertions run, so a divergence is caught at
// the mutation that introduced it, not at the final transcript diff.
const bool kAuditInvariantsOn = [] {
  ::jim::util::SetAuditInvariants(true);
  return true;
}();

Partition RandomPartition(size_t n, util::Rng& rng) {
  // Labels drawn from a domain about half the size of n create a healthy mix
  // of merged and singleton blocks; small domains force coarse partitions.
  const int64_t domain = std::max<int64_t>(1, static_cast<int64_t>(n) / 2);
  std::vector<int> labels(n);
  for (size_t i = 0; i < n; ++i) {
    labels[i] = static_cast<int>(rng.UniformInt(0, domain));
  }
  return Partition::FromLabels(labels);
}

TEST(KernelParityTest, MeetIntoMatchesMeet) {
  util::Rng rng(2024);
  PartitionScratch scratch;
  Partition out;  // deliberately reused across all trials
  for (size_t n : {1, 2, 3, 5, 8, 13, 21, 40}) {
    for (int trial = 0; trial < 200; ++trial) {
      const Partition a = RandomPartition(n, rng);
      const Partition b = RandomPartition(n, rng);
      const Partition reference = a.Meet(b);
      a.MeetInto(b, out, scratch);
      EXPECT_EQ(out, reference) << a.ToString() << " ∧ " << b.ToString();
      EXPECT_EQ(out.num_blocks(), reference.num_blocks());
      EXPECT_EQ(out.Fingerprint(), reference.Fingerprint());
    }
  }
}

TEST(KernelParityTest, MeetIntoSupportsAliasing) {
  util::Rng rng(77);
  PartitionScratch scratch;
  for (size_t n : {1, 4, 9, 17}) {
    for (int trial = 0; trial < 100; ++trial) {
      const Partition a = RandomPartition(n, rng);
      const Partition b = RandomPartition(n, rng);
      const Partition reference = a.Meet(b);
      // out aliases the left operand (the K_c ← K_c ∧ θ_P cache refresh).
      Partition left = a;
      left.MeetInto(b, left, scratch);
      EXPECT_EQ(left, reference);
      // out aliases the right operand.
      Partition right = b;
      a.MeetInto(right, right, scratch);
      EXPECT_EQ(right, reference);
    }
  }
}

TEST(KernelParityTest, RefinesWithMatchesRefines) {
  util::Rng rng(31337);
  PartitionScratch scratch;
  for (size_t n : {1, 2, 4, 7, 12, 25}) {
    for (int trial = 0; trial < 300; ++trial) {
      const Partition a = RandomPartition(n, rng);
      // Mix genuinely comparable pairs in: a.Join(x) is coarser than a, and
      // a.Meet(x) finer, so all three relations (≤, ≥, incomparable) occur.
      const Partition x = RandomPartition(n, rng);
      for (const Partition& b : {x, a.Join(x), a.Meet(x), a}) {
        EXPECT_EQ(a.RefinesWith(b, scratch), a.Refines(b))
            << a.ToString() << " vs " << b.ToString();
        EXPECT_EQ(b.RefinesWith(a, scratch), b.Refines(a));
      }
    }
  }
}

TEST(KernelParityTest, MeetEqualsLeftMatchesMaterializedMeet) {
  util::Rng rng(99);
  PartitionScratch scratch;
  for (size_t n : {1, 3, 6, 11, 20}) {
    for (int trial = 0; trial < 300; ++trial) {
      const Partition a = RandomPartition(n, rng);
      const Partition x = RandomPartition(n, rng);
      for (const Partition& b : {x, a.Join(x), a}) {
        EXPECT_EQ(a.MeetEqualsLeft(b, scratch), a.Meet(b) == a)
            << a.ToString() << " vs " << b.ToString();
      }
    }
  }
}

TEST(KernelParityTest, FingerprintIsContentDetermined) {
  util::Rng rng(5);
  for (size_t n : {1, 4, 10, 30}) {
    for (int trial = 0; trial < 100; ++trial) {
      const Partition a = RandomPartition(n, rng);
      // Rebuilding from the same labels (differently encoded) must land on
      // the identical fingerprint: it is a function of the canonical RGS.
      std::vector<int> shifted(a.labels());
      for (int& v : shifted) v += 1000;
      const Partition b = Partition::FromLabels(shifted);
      ASSERT_EQ(a, b);
      EXPECT_EQ(a.Fingerprint(), b.Fingerprint());
      EXPECT_EQ(a.Hash(), static_cast<size_t>(a.Fingerprint()));
      // A copy carries the fingerprint along.
      const Partition c = a;
      EXPECT_EQ(c.Fingerprint(), a.Fingerprint());
    }
  }
}

TEST(KernelParityTest, AntichainDominatedByScratchOverloadMatches) {
  util::Rng rng(1234);
  PartitionScratch scratch;
  const size_t n = 6;
  for (int trial = 0; trial < 100; ++trial) {
    Antichain chain;
    std::vector<Partition> inserted;
    for (int i = 0; i < 10; ++i) {
      const Partition p = RandomPartition(n, rng);
      chain.Insert(p);
      inserted.push_back(p);
    }
    for (int probe = 0; probe < 50; ++probe) {
      const Partition q = RandomPartition(n, rng);
      bool brute = false;
      for (const Partition& m : inserted) {
        if (q.Refines(m)) brute = true;
      }
      EXPECT_EQ(chain.DominatedBy(q), brute) << q.ToString();
      EXPECT_EQ(chain.DominatedBy(q, scratch), brute) << q.ToString();
    }
  }
}

}  // namespace
}  // namespace jim::lat
