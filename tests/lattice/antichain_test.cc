#include "lattice/antichain.h"

#include <gtest/gtest.h>

#include "lattice/enumeration.h"
#include "lattice/union_find.h"
#include "util/rng.h"

namespace jim::lat {
namespace {

TEST(UnionFindTest, BasicMerging) {
  UnionFind uf(5);
  EXPECT_EQ(uf.num_sets(), 5u);
  EXPECT_TRUE(uf.Union(0, 1));
  EXPECT_TRUE(uf.Union(1, 2));
  EXPECT_FALSE(uf.Union(0, 2));  // already connected
  EXPECT_TRUE(uf.Connected(0, 2));
  EXPECT_FALSE(uf.Connected(0, 3));
  EXPECT_EQ(uf.num_sets(), 3u);
}

TEST(UnionFindTest, FindIsStableWithinSet) {
  UnionFind uf(10);
  uf.Union(2, 7);
  uf.Union(7, 9);
  const size_t root = uf.Find(2);
  EXPECT_EQ(uf.Find(7), root);
  EXPECT_EQ(uf.Find(9), root);
}

TEST(AntichainTest, InsertKeepsMaximalElements) {
  Antichain chain;
  const Partition small = Partition::FromLabels({0, 1, 2, 3});
  const Partition big = Partition::FromLabels({0, 0, 1, 2});
  EXPECT_TRUE(chain.Insert(small));
  EXPECT_EQ(chain.size(), 1u);
  // Inserting a dominating element replaces the dominated one.
  EXPECT_TRUE(chain.Insert(big));
  EXPECT_EQ(chain.size(), 1u);
  EXPECT_TRUE(chain.Contains(big));
  EXPECT_FALSE(chain.Contains(small));
  // Re-inserting something dominated is a no-op.
  EXPECT_FALSE(chain.Insert(small));
  EXPECT_FALSE(chain.Insert(big));
  EXPECT_EQ(chain.size(), 1u);
}

TEST(AntichainTest, IncomparableMembersCoexist) {
  Antichain chain;
  const Partition a = Partition::FromLabels({0, 0, 1, 2});
  const Partition b = Partition::FromLabels({0, 1, 1, 2});
  EXPECT_TRUE(chain.Insert(a));
  EXPECT_TRUE(chain.Insert(b));
  EXPECT_EQ(chain.size(), 2u);
}

TEST(AntichainTest, DominatedBySemantics) {
  Antichain chain;
  chain.Insert(Partition::FromLabels({0, 0, 1, 2}));  // {01}
  EXPECT_TRUE(chain.DominatedBy(Partition::Singletons(4)));
  EXPECT_TRUE(chain.DominatedBy(Partition::FromLabels({0, 0, 1, 2})));
  EXPECT_FALSE(chain.DominatedBy(Partition::FromLabels({0, 1, 0, 2})));
  EXPECT_FALSE(chain.DominatedBy(Partition::Top(4)));
}

TEST(AntichainTest, RestrictToMeetsMembers) {
  Antichain chain;
  chain.Insert(Partition::FromLabels({0, 0, 0, 1}));  // {012}
  const Partition bound = Partition::FromLabels({0, 0, 1, 1});  // {01|23}
  chain.RestrictTo(bound);
  ASSERT_EQ(chain.size(), 1u);
  // {012} ∧ {01|23} = {01|2|3}
  EXPECT_TRUE(chain.Contains(Partition::FromLabels({0, 0, 1, 2})));
}

TEST(AntichainTest, RestrictToKeepsMembersAlreadyBelowBound) {
  // The fast path: a member m with m ≤ bound is its own meet and must be
  // kept verbatim (no re-insertion dominance scan can drop it).
  Antichain chain;
  const Partition below = Partition::FromLabels({0, 0, 1, 2});   // {01|2|3}
  const Partition clipped = Partition::FromLabels({0, 1, 2, 2});  // {0|1|23}
  chain.Insert(below);
  chain.Insert(clipped);
  ASSERT_EQ(chain.size(), 2u);
  const Partition bound = Partition::FromLabels({0, 0, 1, 2});  // {01|2|3}
  chain.RestrictTo(bound);
  // `below` ≤ bound stays untouched; `clipped` ∧ bound = ⊥ is dominated by
  // `below` and must be absorbed.
  ASSERT_EQ(chain.size(), 1u);
  EXPECT_TRUE(chain.Contains(below));
}

TEST(AntichainTest, RestrictToMixedKeptAndClippedMembers) {
  Antichain chain;
  const Partition kept = Partition::FromLabels({0, 0, 1, 2, 3});  // {01}
  const Partition other = Partition::FromLabels({0, 1, 2, 2, 2});  // {234}
  chain.Insert(kept);
  chain.Insert(other);
  const Partition bound = Partition::FromLabels({0, 0, 1, 1, 2});  // {01|23}
  chain.RestrictTo(bound);
  // kept ≤ bound survives as-is; other ∧ bound = {23} stays maximal.
  ASSERT_EQ(chain.size(), 2u);
  EXPECT_TRUE(chain.Contains(kept));
  EXPECT_TRUE(chain.Contains(Partition::FromLabels({0, 1, 2, 2, 3})));
}

TEST(AntichainPropertyTest, RestrictToMatchesNaiveReference) {
  // Property check across random chains and bounds: RestrictTo (with its
  // skip-the-scan fast path for members already below the bound) must agree
  // with the naive "meet everything, re-insert everything" reference.
  util::Rng rng(4242);
  const auto all = AllPartitions(5);
  for (int trial = 0; trial < 200; ++trial) {
    Antichain chain;
    for (int i = 0; i < 6; ++i) chain.Insert(rng.PickOne(all));
    const Partition& bound = rng.PickOne(all);

    Antichain reference;
    for (const Partition& m : chain.members()) {
      reference.Insert(m.Meet(bound));
    }
    chain.RestrictTo(bound);
    EXPECT_EQ(chain.ToString(), reference.ToString()) << bound.ToString();
  }
}

TEST(AntichainTest, ToStringIsCanonical) {
  Antichain a;
  Antichain b;
  const Partition p = Partition::FromLabels({0, 0, 1});
  const Partition q = Partition::FromLabels({0, 1, 0});
  a.Insert(p);
  a.Insert(q);
  b.Insert(q);
  b.Insert(p);
  EXPECT_EQ(a.ToString(), b.ToString());
}

TEST(AntichainPropertyTest, MembersArePairwiseIncomparable) {
  util::Rng rng(99);
  const auto all = AllPartitions(5);
  for (int trial = 0; trial < 30; ++trial) {
    Antichain chain;
    for (int i = 0; i < 20; ++i) {
      chain.Insert(rng.PickOne(all));
    }
    const auto& members = chain.members();
    for (size_t i = 0; i < members.size(); ++i) {
      for (size_t j = 0; j < members.size(); ++j) {
        if (i == j) continue;
        EXPECT_FALSE(members[i].Refines(members[j]))
            << members[i].ToString() << " refines " << members[j].ToString();
      }
    }
  }
}

TEST(AntichainPropertyTest, DominationMatchesBruteForce) {
  util::Rng rng(101);
  const auto all = AllPartitions(4);
  for (int trial = 0; trial < 20; ++trial) {
    Antichain chain;
    std::vector<Partition> inserted;
    for (int i = 0; i < 8; ++i) {
      const Partition& p = rng.PickOne(all);
      chain.Insert(p);
      inserted.push_back(p);
    }
    for (const Partition& q : all) {
      bool brute = false;
      for (const Partition& m : inserted) {
        if (q.Refines(m)) brute = true;
      }
      EXPECT_EQ(chain.DominatedBy(q), brute) << q.ToString();
    }
  }
}

}  // namespace
}  // namespace jim::lat
