#include "lattice/partition.h"

#include <gtest/gtest.h>

#include "lattice/enumeration.h"
#include "util/rng.h"

namespace jim::lat {
namespace {

TEST(PartitionTest, SingletonsAndTop) {
  const Partition bottom = Partition::Singletons(4);
  EXPECT_EQ(bottom.num_blocks(), 4u);
  EXPECT_EQ(bottom.Rank(), 0u);
  EXPECT_TRUE(bottom.IsSingletons());
  EXPECT_EQ(bottom.ToString(), "{0|1|2|3}");

  const Partition top = Partition::Top(4);
  EXPECT_EQ(top.num_blocks(), 1u);
  EXPECT_EQ(top.Rank(), 3u);
  EXPECT_EQ(top.ToString(), "{0,1,2,3}");
}

TEST(PartitionTest, EqualityOperators) {
  // Regression: StrictlyRefines is implemented via `*this != other`, and
  // C++17 does not synthesize operator!= from operator== — the seed shipped
  // without it and failed to compile.
  const Partition a = Partition::FromLabels({0, 0, 1});
  const Partition b = Partition::FromLabels({5, 5, 2});  // same block set
  const Partition c = Partition::FromLabels({0, 1, 1});
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a != b);
  EXPECT_TRUE(a != c);
  EXPECT_FALSE(a == c);
  // Equal partitions refine but never strictly refine each other.
  EXPECT_TRUE(a.Refines(b));
  EXPECT_FALSE(a.StrictlyRefines(b));
}

TEST(PartitionTest, EmptyPartition) {
  const Partition empty;
  EXPECT_EQ(empty.num_elements(), 0u);
  EXPECT_EQ(empty.num_blocks(), 0u);
  EXPECT_EQ(Partition::Singletons(0), empty);
}

TEST(PartitionTest, FromLabelsCanonicalizes) {
  // Same grouping under different raw labels must compare equal.
  const Partition a = Partition::FromLabels({5, 9, 5, 2});
  const Partition b = Partition::FromLabels({0, 1, 0, 2});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Hash(), b.Hash());
  EXPECT_TRUE(a.SameBlock(0, 2));
  EXPECT_FALSE(a.SameBlock(0, 1));
}

TEST(PartitionTest, FromPairsTakesTransitiveClosure) {
  const Partition p = Partition::FromPairs(5, {{0, 1}, {1, 2}}).value();
  EXPECT_TRUE(p.SameBlock(0, 2));
  EXPECT_EQ(p.num_blocks(), 3u);
  EXPECT_EQ(p.ToString(), "{0,1,2|3|4}");
}

TEST(PartitionTest, FromPairsRejectsOutOfRange) {
  EXPECT_FALSE(Partition::FromPairs(3, {{0, 3}}).ok());
}

TEST(PartitionTest, FromBlocksValidation) {
  EXPECT_EQ(Partition::FromBlocks(4, {{0, 2}, {1}, {3}}).value().ToString(),
            "{0,2|1|3}");
  EXPECT_FALSE(Partition::FromBlocks(4, {{0, 2}, {1}}).ok());      // missing 3
  EXPECT_FALSE(Partition::FromBlocks(4, {{0, 1}, {1, 2}, {3}}).ok());  // dup
  EXPECT_FALSE(Partition::FromBlocks(3, {{0, 1, 2}, {}}).ok());    // empty
  EXPECT_FALSE(Partition::FromBlocks(2, {{0, 5}}).ok());           // range
}

TEST(PartitionTest, RefinesBasics) {
  const Partition fine = Partition::FromLabels({0, 1, 2, 3});
  const Partition mid = Partition::FromLabels({0, 0, 1, 2});
  const Partition coarse = Partition::FromLabels({0, 0, 0, 1});
  EXPECT_TRUE(fine.Refines(mid));
  EXPECT_TRUE(mid.Refines(coarse));
  EXPECT_TRUE(fine.Refines(coarse));
  EXPECT_FALSE(coarse.Refines(mid));
  EXPECT_TRUE(mid.Refines(mid));
  EXPECT_TRUE(mid.StrictlyRefines(coarse));
  EXPECT_FALSE(mid.StrictlyRefines(mid));
}

TEST(PartitionTest, IncomparableElements) {
  const Partition a = Partition::FromLabels({0, 0, 1, 2});
  const Partition b = Partition::FromLabels({0, 1, 1, 2});
  EXPECT_FALSE(a.Refines(b));
  EXPECT_FALSE(b.Refines(a));
}

TEST(PartitionTest, MeetAndJoinExamples) {
  const Partition a = Partition::FromLabels({0, 0, 1, 1});  // {01|23}
  const Partition b = Partition::FromLabels({0, 1, 1, 0});  // {03|12}
  EXPECT_EQ(a.Meet(b), Partition::Singletons(4));
  EXPECT_EQ(a.Join(b), Partition::Top(4));
}

TEST(PartitionTest, BlocksAndPairs) {
  const Partition p = Partition::FromLabels({0, 1, 0, 2, 1});
  EXPECT_EQ(p.Blocks(),
            (std::vector<std::vector<size_t>>{{0, 2}, {1, 4}, {3}}));
  EXPECT_EQ(p.Pairs(), (std::vector<std::pair<size_t, size_t>>{{0, 2},
                                                               {1, 4}}));
  EXPECT_EQ(p.GeneratorPairs(),
            (std::vector<std::pair<size_t, size_t>>{{0, 2}, {1, 4}}));
}

TEST(PartitionTest, GeneratorPairsSpanBlocks) {
  const Partition p = Partition::FromLabels({0, 0, 0, 0});
  // 3 generators suffice for a 4-element block (spanning tree).
  EXPECT_EQ(p.GeneratorPairs().size(), 3u);
  EXPECT_EQ(Partition::FromPairs(4, p.GeneratorPairs()).value(), p);
}

// ---- Lattice laws, verified exhaustively over all partitions of 4 and 5 --

class LatticeLawsTest : public ::testing::TestWithParam<size_t> {};

TEST_P(LatticeLawsTest, MeetAndJoinLaws) {
  const auto all = AllPartitions(GetParam());
  for (const Partition& a : all) {
    // Idempotence.
    EXPECT_EQ(a.Meet(a), a);
    EXPECT_EQ(a.Join(a), a);
    for (const Partition& b : all) {
      const Partition meet = a.Meet(b);
      const Partition join = a.Join(b);
      // Commutativity.
      EXPECT_EQ(meet, b.Meet(a));
      EXPECT_EQ(join, b.Join(a));
      // Meet is the greatest lower bound; join the least upper bound.
      EXPECT_TRUE(meet.Refines(a));
      EXPECT_TRUE(meet.Refines(b));
      EXPECT_TRUE(a.Refines(join));
      EXPECT_TRUE(b.Refines(join));
      // Absorption.
      EXPECT_EQ(a.Meet(a.Join(b)), a);
      EXPECT_EQ(a.Join(a.Meet(b)), a);
      // Connection between order and operations.
      EXPECT_EQ(a.Refines(b), a.Meet(b) == a);
      EXPECT_EQ(a.Refines(b), a.Join(b) == b);
    }
  }
}

TEST_P(LatticeLawsTest, MeetJoinAssociativityOnSample) {
  const auto all = AllPartitions(GetParam());
  util::Rng rng(4);
  for (int trial = 0; trial < 200; ++trial) {
    const Partition& a = rng.PickOne(all);
    const Partition& b = rng.PickOne(all);
    const Partition& c = rng.PickOne(all);
    EXPECT_EQ(a.Meet(b.Meet(c)), a.Meet(b).Meet(c));
    EXPECT_EQ(a.Join(b.Join(c)), a.Join(b).Join(c));
  }
}

TEST_P(LatticeLawsTest, GlbProperty) {
  // Meet is the *greatest* lower bound: any common refinement refines it.
  const auto all = AllPartitions(GetParam());
  for (const Partition& a : all) {
    for (const Partition& b : all) {
      const Partition meet = a.Meet(b);
      for (const Partition& c : all) {
        if (c.Refines(a) && c.Refines(b)) {
          EXPECT_TRUE(c.Refines(meet));
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SmallUniverses, LatticeLawsTest,
                         ::testing::Values(3, 4, 5));

TEST(PartitionOrderTest, BottomAndTopAreExtremes) {
  for (size_t n : {1u, 3u, 6u}) {
    const Partition bottom = Partition::Singletons(n);
    const Partition top = Partition::Top(n);
    VisitAllPartitions(n, [&](const Partition& p) {
      EXPECT_TRUE(bottom.Refines(p));
      EXPECT_TRUE(p.Refines(top));
      return true;
    });
  }
}

}  // namespace
}  // namespace jim::lat
