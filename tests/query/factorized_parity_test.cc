// Byte-level parity of the factorized UniversalTable against the historical
// materializing builder: same candidate tuples, in the same order, with the
// same sampling draws and the same dedup semantics — over randomized
// catalogs with duplicates, NULLs, mixed types, and self-joins. The legacy
// builder is reimplemented here verbatim (fold of SampledCrossProduct, then
// DeduplicateRows) as an independent reference.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "query/universal_table.h"
#include "relational/catalog.h"
#include "relational/join.h"
#include "relational/operators.h"
#include "relational/relation.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "workload/tpch.h"
#include "workload/travel.h"
#include "util/check.h"

namespace jim::query {
namespace {

// Parity suites run with the invariant auditor on (see util/check.h): every
// JIM_AUDIT checkpoint inside the engine re-derives its CheckInvariants
// contract while the parity assertions run, so a divergence is caught at
// the mutation that introduced it, not at the final transcript diff.
const bool kAuditInvariantsOn = [] {
  ::jim::util::SetAuditInvariants(true);
  return true;
}();

/// The pre-factorization UniversalTable::Build, kept as the parity
/// reference: fold the product left to right through SampledCrossProduct
/// (sampling down to the cap after each step), then dedup rows.
rel::Relation LegacyUniversalRelation(
    const rel::Catalog& catalog, const std::vector<std::string>& names,
    const UniversalTableOptions& options) {
  std::vector<const rel::Relation*> resolved;
  std::vector<std::string> aliases;
  for (size_t i = 0; i < names.size(); ++i) {
    resolved.push_back(catalog.Get(names[i]).value());
    size_t total = 0;
    size_t occurrence = 0;
    for (size_t j = 0; j < names.size(); ++j) {
      if (names[j] == names[i]) {
        if (j < i) ++occurrence;
        ++total;
      }
    }
    aliases.push_back(total == 1
                          ? names[i]
                          : util::StrFormat("%s_%zu", names[i].c_str(),
                                            occurrence + 1));
  }

  util::Rng rng(options.seed);
  const size_t cap = options.sample_cap == 0
                         ? std::numeric_limits<size_t>::max()
                         : options.sample_cap;
  rel::Relation product = rel::RenameRelation(*resolved[0], aliases[0]);
  for (size_t i = 1; i < resolved.size(); ++i) {
    const rel::Relation next = rel::RenameRelation(*resolved[i], aliases[i]);
    product = rel::SampledCrossProduct(product, next, cap, rng,
                                       rel::JoinOptions::Named("universal"))
                  .value();
  }
  if (options.deduplicate) product.DeduplicateRows();
  product.set_name("universal");
  return product;
}

/// Rows compared at representation level (NULL == NULL, type-tagged): the
/// strongest equality both paths can guarantee and the one dedup uses.
void ExpectSameRows(const rel::Relation& expected, const rel::Relation& actual,
                    const std::string& context) {
  ASSERT_EQ(actual.num_rows(), expected.num_rows()) << context;
  ASSERT_EQ(actual.num_attributes(), expected.num_attributes()) << context;
  for (size_t r = 0; r < expected.num_rows(); ++r) {
    EXPECT_EQ(rel::TupleRepresentationKey(actual.row(r)),
              rel::TupleRepresentationKey(expected.row(r)))
        << context << " row " << r;
  }
}

void ExpectParity(const rel::Catalog& catalog,
                  const std::vector<std::string>& names,
                  const UniversalTableOptions& options,
                  const std::string& context) {
  const auto table = UniversalTable::Build(catalog, names, options);
  ASSERT_TRUE(table.ok()) << context;
  const rel::Relation legacy =
      LegacyUniversalRelation(catalog, names, options);
  const rel::Relation materialized = table->Materialize();

  EXPECT_EQ(materialized.schema(), legacy.schema()) << context;
  EXPECT_EQ(materialized.name(), legacy.name()) << context;
  ExpectSameRows(legacy, materialized, context);

  // The store's codes agree with the decoded rows: equal codes ⇔ strictly
  // equal values, NULLs sentinel-coded.
  const core::TupleStore& store = *table->store();
  std::vector<uint32_t> codes(store.num_attributes());
  for (size_t t = 0; t < store.num_tuples(); ++t) {
    store.TupleCodes(t, codes.data());
    const rel::Tuple& row = materialized.row(t);
    for (size_t a = 0; a < row.size(); ++a) {
      EXPECT_EQ(codes[a] == rel::kNullCode, row[a].is_null())
          << context << " t=" << t << " a=" << a;
      for (size_t b = a + 1; b < row.size(); ++b) {
        const bool codes_equal =
            codes[a] != rel::kNullCode && codes[a] == codes[b];
        EXPECT_EQ(codes_equal, row[a].Equals(row[b]))
            << context << " t=" << t << " (" << a << "," << b << ")";
      }
    }
  }
}

/// A random relation with duplicates, NULLs, and type-colliding payloads
/// (1 vs "1" vs 1.0) — the cases dedup and dictionary encoding must not
/// conflate.
rel::Relation RandomRelation(const std::string& name, size_t rows,
                             size_t columns, util::Rng& rng) {
  std::vector<std::string> column_names;
  for (size_t c = 0; c < columns; ++c) {
    column_names.push_back(util::StrFormat("%s_c%zu", name.c_str(), c));
  }
  rel::Relation relation{name, rel::Schema::FromNames(column_names)};
  using rel::Value;
  for (size_t r = 0; r < rows; ++r) {
    rel::Tuple row;
    for (size_t c = 0; c < columns; ++c) {
      const int64_t payload = rng.UniformInt(0, 3);
      switch (rng.UniformInt(0, 3)) {
        case 0:
          row.push_back(Value::Null());
          break;
        case 1:
          row.push_back(Value(payload));
          break;
        case 2:
          row.push_back(Value(static_cast<double>(payload)));
          break;
        default:
          row.push_back(Value(std::to_string(payload)));
          break;
      }
    }
    relation.AddRowUnchecked(std::move(row));
  }
  return relation;
}

TEST(FactorizedParityTest, RandomizedCatalogsDenseAndSampled) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    util::Rng rng(seed * 1000 + 7);
    rel::Catalog catalog;
    ASSERT_TRUE(
        catalog.Add(RandomRelation("A", 3 + seed % 5, 2, rng)).ok());
    ASSERT_TRUE(
        catalog.Add(RandomRelation("B", 2 + seed % 4, 1 + seed % 2, rng))
            .ok());
    ASSERT_TRUE(catalog.Add(RandomRelation("C", 4, 2, rng)).ok());

    for (const bool deduplicate : {true, false}) {
      for (const size_t cap : {size_t{0}, size_t{10}, size_t{25}}) {
        UniversalTableOptions options;
        options.sample_cap = cap;
        options.seed = seed * 31 + 5;
        options.deduplicate = deduplicate;
        const std::string context = util::StrFormat(
            "seed=%zu cap=%zu dedup=%d", size_t{seed}, cap,
            deduplicate ? 1 : 0);
        ExpectParity(catalog, {"A", "B"}, options, context + " A×B");
        ExpectParity(catalog, {"A", "B", "C"}, options, context + " A×B×C");
        ExpectParity(catalog, {"B", "B"}, options, context + " B×B");
        ExpectParity(catalog, {"A"}, options, context + " A");
      }
    }
  }
}

TEST(FactorizedParityTest, TravelAndSelfJoin) {
  const rel::Catalog catalog = workload::TravelCatalog();
  ExpectParity(catalog, {"Flights", "Hotels"}, {}, "travel");
  ExpectParity(catalog, {"Flights", "Flights"}, {}, "self-join");
  ExpectParity(catalog, {"Hotels"}, {}, "single");
}

TEST(FactorizedParityTest, TpchSampledScenarios) {
  util::Rng rng(2026);
  workload::TpchSpec spec;
  spec.num_customers = 20;
  spec.num_orders = 30;
  const rel::Catalog catalog = workload::MakeTpchCatalog(spec, rng);
  for (const workload::TpchScenario& scenario :
       workload::TpchScenarios()) {
    UniversalTableOptions options;
    options.sample_cap = 500;
    options.seed = 606;
    ExpectParity(catalog, scenario.relations, options, scenario.name);
  }
}

TEST(FactorizedParityTest, SeparatorEmbeddingStringsDedupExactly) {
  // Representation keys are length-prefixed, so payloads that embed key
  // syntax (separators, digit runs) can never make two different candidate
  // tuples collide — the per-source dedup of the dense path must agree
  // with the legacy whole-tuple dedup on these adversarial strings.
  using rel::Value;
  rel::Relation left{"L", rel::Schema::FromNames({"a"})};
  left.AddRowUnchecked({Value(std::string("x\x1f") + "3y")});
  left.AddRowUnchecked({Value("x")});
  left.AddRowUnchecked({Value("x")});  // genuine duplicate
  rel::Relation right{"R", rel::Schema::FromNames({"b"})};
  right.AddRowUnchecked({Value("y")});
  right.AddRowUnchecked({Value(std::string("\x1f") + "3yy")});
  right.AddRowUnchecked({Value("1:x")});
  rel::Catalog catalog;
  ASSERT_TRUE(catalog.Add(std::move(left)).ok());
  ASSERT_TRUE(catalog.Add(std::move(right)).ok());
  ExpectParity(catalog, {"L", "R"}, {}, "separator-embedding");
}

TEST(FactorizedParityTest, NanDoublesNeverCompareEqualEvenInSelfJoins) {
  // NaN ≠ NaN under Value::Equals. In a self-join, the diagonal candidate
  // pairs a NaN cell with *itself* through two occurrences — the codes must
  // still differ (each occurrence re-mints NaN codes; ExpectParity's
  // codes_equal ⇔ Equals sweep is the assertion that catches sharing).
  using rel::Value;
  const double nan = std::nan("");
  rel::Relation relation{"N", rel::Schema::FromNames({"a", "b"})};
  relation.AddRowUnchecked({Value(nan), Value(1.5)});
  relation.AddRowUnchecked({Value(nan), Value(nan)});
  relation.AddRowUnchecked({Value(1.5), Value(1.5)});
  rel::Catalog catalog;
  ASSERT_TRUE(catalog.Add(std::move(relation)).ok());
  ExpectParity(catalog, {"N", "N"}, {}, "nan-self-join");
  ExpectParity(catalog, {"N"}, {}, "nan-single");
}

TEST(FactorizedParityTest, EmptyRelationYieldsEmptyProduct) {
  rel::Catalog catalog;
  ASSERT_TRUE(
      catalog.Add(rel::Relation{"E", rel::Schema::FromNames({"x"})}).ok());
  util::Rng rng(3);
  ASSERT_TRUE(catalog.Add(RandomRelation("F", 4, 2, rng)).ok());
  ExpectParity(catalog, {"E", "F"}, {}, "empty-left");
  ExpectParity(catalog, {"F", "E"}, {}, "empty-right");
}

}  // namespace
}  // namespace jim::query
