#include "query/join_query.h"

#include <gtest/gtest.h>

#include "core/jim.h"
#include "query/universal_table.h"
#include "relational/join.h"
#include "util/rng.h"
#include "workload/tpch.h"
#include "workload/travel.h"

namespace jim::query {
namespace {

TEST(JoinQueryTest, SqlRendering) {
  const rel::Catalog catalog = workload::TravelCatalog();
  JoinQuery query({"Flights", "Hotels"});
  // Flights.To = Hotels.City
  query.AddEquality(QualifiedColumn{0, 1}, QualifiedColumn{1, 0});
  EXPECT_EQ(query.ToSql(catalog).value(),
            "SELECT * FROM Flights, Hotels WHERE Flights.To = Hotels.City;");
}

TEST(JoinQueryTest, SqlWithoutConditionsIsCrossProduct) {
  const rel::Catalog catalog = workload::TravelCatalog();
  JoinQuery query({"Flights", "Hotels"});
  EXPECT_EQ(query.ToSql(catalog).value(),
            "SELECT * FROM Flights, Hotels;");
}

TEST(JoinQueryTest, SelfJoinGetsAliases) {
  const rel::Catalog catalog = workload::TravelCatalog();
  JoinQuery query({"Flights", "Flights"});
  // Flights_1.To = Flights_2.From (connecting flights)
  query.AddEquality(QualifiedColumn{0, 1}, QualifiedColumn{1, 0});
  EXPECT_EQ(query.ToSql(catalog).value(),
            "SELECT * FROM Flights AS Flights_1, Flights AS Flights_2 WHERE "
            "Flights_1.To = Flights_2.From;");
}

TEST(JoinQueryTest, EvaluateMatchesManualJoin) {
  const rel::Catalog catalog = workload::TravelCatalog();
  JoinQuery query({"Flights", "Hotels"});
  query.AddEquality(QualifiedColumn{0, 1}, QualifiedColumn{1, 0});
  const auto result = query.Evaluate(catalog).value();
  // Manual: hash join on To = City.
  const auto manual =
      rel::HashJoin(*catalog.Get("Flights").value(),
                    *catalog.Get("Hotels").value(), {{1, 0}})
          .value();
  EXPECT_EQ(result.num_rows(), manual.num_rows());
  EXPECT_EQ(result.num_rows(), 4u);  // Q1 selects 4 of the 12 pairs
}

TEST(JoinQueryTest, EvaluateSelfJoin) {
  const rel::Catalog catalog = workload::TravelCatalog();
  JoinQuery query({"Flights", "Flights"});
  query.AddEquality(QualifiedColumn{0, 1}, QualifiedColumn{1, 0});
  const auto result = query.Evaluate(catalog).value();
  // Connecting flights in Figure 1's flight set:
  // P->L + L->N, L->N + N->P, N->P + P->L, N->P + P->N, P->N + N->P.
  EXPECT_EQ(result.num_rows(), 5u);
}

TEST(JoinQueryTest, EvaluateWithIntraRelationEquality) {
  const rel::Catalog catalog = workload::TravelCatalog();
  JoinQuery query({"Hotels"});
  // City = Discount never holds in the Figure 1 hotels.
  query.AddEquality(QualifiedColumn{0, 0}, QualifiedColumn{0, 1});
  EXPECT_EQ(query.Evaluate(catalog).value().num_rows(), 0u);
}

TEST(JoinQueryTest, ErrorsOnUnknownRelationOrColumn) {
  const rel::Catalog catalog = workload::TravelCatalog();
  JoinQuery unknown({"Nope"});
  EXPECT_FALSE(unknown.ToSql(catalog).ok());
  EXPECT_FALSE(unknown.Evaluate(catalog).ok());
  JoinQuery bad_column({"Flights", "Hotels"});
  bad_column.AddEquality(QualifiedColumn{0, 9}, QualifiedColumn{1, 0});
  EXPECT_FALSE(bad_column.ToSql(catalog).ok());
}

TEST(UniversalTableTest, TravelFullProduct) {
  const rel::Catalog catalog = workload::TravelCatalog();
  const auto table =
      UniversalTable::Build(catalog, {"Flights", "Hotels"}).value();
  EXPECT_EQ(table.num_tuples(), 12u);
  EXPECT_FALSE(table.is_sampled());
  EXPECT_EQ(table.full_product_size(), 12u);
  EXPECT_EQ(table.num_attributes(), 5u);
  // Provenance: first 3 attributes from Flights (occurrence 0).
  EXPECT_EQ(table.provenance(0).relation_name, "Flights");
  EXPECT_EQ(table.provenance(0).column_index, 0u);
  EXPECT_EQ(table.provenance(4).relation_name, "Hotels");
  EXPECT_EQ(table.provenance(4).column_index, 1u);
  // Schema is qualified.
  EXPECT_EQ(table.schema().Names()[0], "Flights.From");
  // The factorized table decodes to exactly the Figure 1 instance.
  EXPECT_EQ(table.Materialize().num_rows(), 12u);
}

TEST(UniversalTableTest, SamplingKicksInAboveCap) {
  util::Rng rng(1);
  workload::TpchSpec spec;
  const rel::Catalog catalog = workload::MakeTpchCatalog(spec, rng);
  UniversalTableOptions options;
  options.sample_cap = 500;
  const auto table =
      UniversalTable::Build(catalog, {"customer", "orders"}, options).value();
  EXPECT_TRUE(table.is_sampled());
  EXPECT_LE(table.num_tuples(), 500u);
  EXPECT_EQ(table.full_product_size(), 50u * 100u);
}

TEST(UniversalTableTest, RoundTripPredicateToQuery) {
  const rel::Catalog catalog = workload::TravelCatalog();
  const auto table =
      UniversalTable::Build(catalog, {"Flights", "Hotels"}).value();
  const auto predicate =
      core::JoinPredicate::Parse(
          table.schema(),
          "Flights.To = Hotels.City && Flights.Airline = Hotels.Discount")
          .value();
  const JoinQuery query = table.ToJoinQuery(predicate);
  EXPECT_EQ(query.relations(),
            (std::vector<std::string>{"Flights", "Hotels"}));
  ASSERT_EQ(query.equalities().size(), 2u);
  const auto sql = query.ToSql(catalog).value();
  EXPECT_NE(sql.find("Flights.To = Hotels.City"), std::string::npos);
  EXPECT_NE(sql.find("Flights.Airline = Hotels.Discount"), std::string::npos);
  // Evaluating the query equals filtering the universal table by the
  // predicate — both on codes and on the decoded rows.
  const auto evaluated = query.Evaluate(catalog).value();
  EXPECT_EQ(evaluated.num_rows(),
            predicate.SelectedRows(*table.store()).Count());
  EXPECT_EQ(evaluated.num_rows(),
            predicate.SelectedRows(table.Materialize()).Count());
}

TEST(UniversalTableTest, EndToEndInferenceOnSources) {
  // The full pipeline: catalog -> universal table -> inference -> SQL.
  const rel::Catalog catalog = workload::TravelCatalog();
  const auto table =
      UniversalTable::Build(catalog, {"Flights", "Hotels"}).value();
  const auto goal = core::JoinPredicate::Parse(table.schema(),
                                               "Flights.To = Hotels.City")
                        .value();
  auto strategy = core::MakeStrategy("lookahead-entropy").value();
  const auto session = core::RunSession(table.store(), goal, *strategy);
  ASSERT_TRUE(session.identified_goal);
  const JoinQuery query = table.ToJoinQuery(*session.result);
  EXPECT_EQ(query.Evaluate(catalog).value().num_rows(), 4u);
}

TEST(UniversalTableTest, BuildErrors) {
  const rel::Catalog catalog = workload::TravelCatalog();
  EXPECT_FALSE(UniversalTable::Build(catalog, {}).ok());
  EXPECT_FALSE(UniversalTable::Build(catalog, {"Missing"}).ok());
}

}  // namespace
}  // namespace jim::query
