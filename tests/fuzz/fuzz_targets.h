#ifndef JIM_TESTS_FUZZ_FUZZ_TARGETS_H_
#define JIM_TESTS_FUZZ_FUZZ_TARGETS_H_

#include <cstddef>
#include <cstdint>
#include <string>

// The two fuzz targets behind both drivers (the deterministic
// fuzz_jimc_main and the optional libFuzzer entry point). Each target's
// contract is "any byte string in, no undefined behavior out": every
// rejection must be a *typed* util::Status, every acceptance must yield an
// object whose read paths are safe to exercise end to end. The targets
// JIM_CHECK those contracts themselves, so a sanitizer report or a check
// failure is a finding and a clean return is a pass.
namespace jim::fuzz {

/// Writes `size` bytes to `scratch_path` and feeds the file to
/// storage::MappedTupleStore::Open. Rejections must carry a known
/// StatusCode and a non-empty message; accepted stores get every cell read
/// through code()/TupleCodes()/DecodeValue() with the NULL sentinel
/// cross-checked. Returns 1 if the image was accepted, 0 if rejected.
int FuzzJimcImage(const uint8_t* data, size_t size,
                  const std::string& scratch_path);

/// Feeds `size` bytes as a --goal predicate string to
/// core::JoinPredicate::Parse over a fixed five-attribute schema.
/// Rejections must be kInvalidArgument with a message; accepted predicates
/// must hold a canonical partition and survive a ToSqlWhere → Parse round
/// trip. Returns 1 if parsed, 0 if rejected.
int FuzzGoalParse(const uint8_t* data, size_t size);

}  // namespace jim::fuzz

#endif  // JIM_TESTS_FUZZ_FUZZ_TARGETS_H_
