// Deterministic fuzz driver for the JIMC reader and the --goal parser.
//
// No fuzzing runtime, no wall clock, no address-dependent state: the whole
// run is a pure function of (--seed, --iterations), so any finding
// reproduces from the two numbers in the failure output. Each iteration
// mutates one of a few WriteStore-produced seed images (byte flips,
// truncations, extensions, header scribbles, cross-image splices, window
// zeroing — the 18-case corruption matrix of jimc_format_test generalized
// to arbitrary damage) and one goal string, then drives the fuzz targets,
// which JIM_CHECK the "typed Status or safe object" contract. ci.sh runs
// this under ASAN+UBSAN for thousands of iterations; a ctest smoke entry
// keeps it from bit-rotting in plain builds.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/tuple_store.h"
#include "fuzz/fuzz_targets.h"
#include "relational/relation.h"
#include "storage/format.h"
#include "storage/store_writer.h"
#include "util/check.h"
#include "util/rng.h"

namespace jim::fuzz {
namespace {

using Image = std::vector<uint8_t>;

uint32_t LoadU32(const Image& image, size_t offset) {
  uint32_t value = 0;
  std::memcpy(&value, image.data() + offset, sizeof(value));
  return value;
}

void StoreU64(Image& image, size_t offset, uint64_t value) {
  std::memcpy(image.data() + offset, &value, sizeof(value));
}

/// Two seed relations with different shapes: the mixed-type relation the
/// format tests use (NULLs, NaN, strings with separators) and a wider
/// integer relation, so splices between the two images cross section
/// layouts, not just values.
// GCC 12 falsely flags the moved-from std::variant<..., std::string> inside
// rel::Value as maybe-uninitialized when this function inlines into
// SeedImage (gcc bug 105562 family); the values are all initialized above.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif
std::shared_ptr<const rel::Relation> SeedRelation(int variant) {
  using rel::Value;
  if (variant == 0) {
    rel::Schema schema;
    schema.AddAttribute({"i", rel::ValueType::kInt64, ""});
    schema.AddAttribute({"d", rel::ValueType::kDouble, ""});
    schema.AddAttribute({"s", rel::ValueType::kString, "Q"});
    rel::Relation relation{"fuzz_mixed", schema};
    relation.AddRowUnchecked({Value(int64_t{7}), Value(1.5), Value("x")});
    relation.AddRowUnchecked(
        {Value(int64_t{7}), Value(std::nan("")), Value("a,b\tc")});
    relation.AddRowUnchecked({Value::Null(), Value(2.5), Value("")});
    return std::make_shared<const rel::Relation>(std::move(relation));
  }
  rel::Schema schema;
  for (int a = 0; a < 6; ++a) {
    schema.AddAttribute(
        {"c" + std::to_string(a), rel::ValueType::kInt64, ""});
  }
  rel::Relation relation{"fuzz_wide", schema};
  for (int64_t t = 0; t < 8; ++t) {
    rel::Tuple row;
    for (int64_t a = 0; a < 6; ++a) {
      row.push_back(rel::Value(int64_t{(t * a) % 5}));
    }
    relation.AddRowUnchecked(std::move(row));
  }
  return std::make_shared<const rel::Relation>(std::move(relation));
}
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

Image SeedImage(int variant, const std::string& scratch_path) {
  const auto store = core::MakeRelationStore(SeedRelation(variant));
  const util::Status written = storage::WriteStore(*store, scratch_path);
  JIM_CHECK(written.ok()) << written.ToString();
  std::ifstream in(scratch_path, std::ios::binary | std::ios::ate);
  JIM_CHECK(in.good()) << "cannot reopen seed image " << scratch_path;
  const std::streamsize size = in.tellg();
  in.seekg(0);
  Image image(static_cast<size_t>(size));
  JIM_CHECK(
      in.read(reinterpret_cast<char*>(image.data()), size).good());
  return image;
}

/// Re-fixes the self-describing fields a structural mutation breaks first —
/// the header's file_bytes and every in-bounds section checksum — so a
/// fraction of mutants penetrates past the outer validation layers into the
/// dictionary/code parsing instead of dying at the first checksum.
void FixChecksums(Image& image) {
  if (image.size() < storage::kHeaderBytes) return;
  StoreU64(image, 32, image.size());
  const uint32_t num_sections = LoadU32(image, 20);
  const size_t table_capacity =
      (image.size() - storage::kHeaderBytes) / storage::kSectionEntryBytes;
  const size_t entries =
      std::min<size_t>(num_sections, table_capacity);
  for (size_t s = 0; s < entries; ++s) {
    const size_t entry = storage::kHeaderBytes +
                         s * storage::kSectionEntryBytes;
    uint64_t offset = 0, length = 0;
    std::memcpy(&offset, image.data() + entry + 8, sizeof(offset));
    std::memcpy(&length, image.data() + entry + 16, sizeof(length));
    if (offset > image.size() || length > image.size() - offset) continue;
    StoreU64(image, entry + 24,
             storage::Fnv1a64(image.data() + offset,
                              static_cast<size_t>(length)));
  }
}

void MutateImage(util::Rng& rng, const std::vector<Image>& seeds,
                 Image& image) {
  const int64_t rounds = rng.UniformInt(1, 4);
  for (int64_t round = 0; round < rounds; ++round) {
    switch (rng.UniformInt(0, 6)) {
      case 0: {  // byte scribbles
        const int64_t writes = rng.UniformInt(1, 8);
        for (int64_t w = 0; w < writes && !image.empty(); ++w) {
          image[static_cast<size_t>(rng.UniformInt(
              0, static_cast<int64_t>(image.size()) - 1))] =
              static_cast<uint8_t>(rng.UniformInt(0, 255));
        }
        break;
      }
      case 1: {  // single bit flip
        if (image.empty()) break;
        const size_t at = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(image.size()) - 1));
        image[at] ^= static_cast<uint8_t>(1u << rng.UniformInt(0, 7));
        break;
      }
      case 2:  // truncation (empty file included)
        image.resize(static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(image.size()))));
        break;
      case 3: {  // extension with junk
        const int64_t extra = rng.UniformInt(1, 64);
        for (int64_t b = 0; b < extra; ++b) {
          image.push_back(static_cast<uint8_t>(rng.UniformInt(0, 255)));
        }
        break;
      }
      case 4: {  // header/section-table field scribble (8-byte aligned)
        if (image.size() < 8) break;
        const size_t limit = std::min(
            image.size() - 8,
            storage::kHeaderBytes + 4 * storage::kSectionEntryBytes);
        uint64_t value = rng.Next();
        // Small values hit the interesting boundary cases (0, 1, off-by-one
        // counts) far more often than uniform u64 noise would.
        if (rng.Bernoulli(0.5)) value = static_cast<uint64_t>(
            rng.UniformInt(0, 4096));
        StoreU64(image,
                 static_cast<size_t>(rng.UniformInt(
                     0, static_cast<int64_t>(limit / 8))) * 8,
                 value);
        break;
      }
      case 5: {  // splice a window from some seed image
        const Image& donor = seeds[static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(seeds.size()) - 1))];
        if (donor.empty() || image.empty()) break;
        const size_t from = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(donor.size()) - 1));
        const size_t to = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(image.size()) - 1));
        const size_t len = static_cast<size_t>(rng.UniformInt(
            1, static_cast<int64_t>(
                   std::min(donor.size() - from, size_t{512}))));
        if (to + len > image.size()) image.resize(to + len);
        std::memcpy(image.data() + to, donor.data() + from, len);
        break;
      }
      case 6: {  // zero a window
        if (image.empty()) break;
        const size_t at = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(image.size()) - 1));
        const size_t len = static_cast<size_t>(rng.UniformInt(
            1,
            static_cast<int64_t>(std::min(image.size() - at, size_t{64}))));
        std::memset(image.data() + at, 0, len);
        break;
      }
    }
  }
  // Half the mutants get their checksums re-fixed so the damage reaches the
  // section parsers; the other half exercises the checksum layer itself.
  if (rng.Bernoulli(0.5)) FixChecksums(image);
}

std::string MutateGoal(util::Rng& rng) {
  static const std::vector<std::string> kSeeds = {
      "From=To && Hotels.City=Airline",
      "To \xE2\x89\x88 City \xE2\x88\xA7 Airline \xE2\x89\x88 Discount",
      "From = To AND To = City and Airline=Discount",
      "  From=From  ",
      "",
  };
  static const std::vector<std::string> kTokens = {
      "&&",        "AND",      "and",     "\xE2\x88\xA7", "=",
      "\xE2\x89\x88", "From",  "To",      "City",         "Hotels.City",
      "Airline",   "Discount", "bogus",   " ",            "\t",
      "==",        "&",        "Hotels.", ".",            "\xE2\x88",
  };
  std::string text = rng.PickOne(kSeeds);
  const int64_t rounds = rng.UniformInt(0, 5);
  for (int64_t round = 0; round < rounds; ++round) {
    switch (rng.UniformInt(0, 3)) {
      case 0:  // append a token
        text += rng.PickOne(kTokens);
        break;
      case 1: {  // insert a token mid-string (UTF-8 splitting included)
        const size_t at = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(text.size())));
        text.insert(at, rng.PickOne(kTokens));
        break;
      }
      case 2: {  // delete a window
        if (text.empty()) break;
        const size_t at = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(text.size()) - 1));
        text.erase(at, static_cast<size_t>(rng.UniformInt(1, 8)));
        break;
      }
      case 3: {  // scribble a raw byte (invalid UTF-8 included)
        if (text.empty()) break;
        text[static_cast<size_t>(rng.UniformInt(
            0, static_cast<int64_t>(text.size()) - 1))] =
            static_cast<char>(rng.UniformInt(1, 255));
        break;
      }
    }
  }
  return text;
}

int Run(uint64_t seed, int64_t iterations) {
  const char* tmpdir = std::getenv("TMPDIR");
  const std::string scratch =
      std::string(tmpdir != nullptr && *tmpdir != '\0' ? tmpdir : "/tmp") +
      "/fuzz_jimc_seed" + std::to_string(seed) + ".jimc";

  std::vector<Image> seeds;
  seeds.push_back(SeedImage(0, scratch));
  seeds.push_back(SeedImage(1, scratch));

  util::Rng rng(seed);
  int64_t images_accepted = 0, images_rejected = 0;
  int64_t goals_parsed = 0, goals_rejected = 0;
  for (int64_t i = 0; i < iterations; ++i) {
    Image image = seeds[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(seeds.size()) - 1))];
    MutateImage(rng, seeds, image);
    if (FuzzJimcImage(image.data(), image.size(), scratch) == 1) {
      ++images_accepted;
    } else {
      ++images_rejected;
    }
    const std::string goal = MutateGoal(rng);
    if (FuzzGoalParse(reinterpret_cast<const uint8_t*>(goal.data()),
                      goal.size()) == 1) {
      ++goals_parsed;
    } else {
      ++goals_rejected;
    }
  }
  std::remove(scratch.c_str());

  // Deterministic summary: identical numbers for identical (seed,
  // iterations) — diffable across hosts and sanitizer builds.
  std::printf("fuzz_jimc_main: seed=%llu iterations=%lld\n",
              static_cast<unsigned long long>(seed),
              static_cast<long long>(iterations));
  std::printf("  jimc images: %lld accepted, %lld rejected as typed errors\n",
              static_cast<long long>(images_accepted),
              static_cast<long long>(images_rejected));
  std::printf("  goal strings: %lld parsed, %lld rejected as typed errors\n",
              static_cast<long long>(goals_parsed),
              static_cast<long long>(goals_rejected));
  // Both targets must have exercised both outcomes, or the mutators have
  // degenerated (a fuzzer that only ever rejects is testing one branch).
  JIM_CHECK_GT(images_rejected, 0);
  JIM_CHECK_GT(goals_parsed, 0);
  JIM_CHECK_GT(goals_rejected, 0);
  if (iterations >= 100) JIM_CHECK_GT(images_accepted, 0);
  std::printf("OK\n");
  return 0;
}

}  // namespace
}  // namespace jim::fuzz

int main(int argc, char** argv) {
  uint64_t seed = 1;
  int64_t iterations = 5000;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--seed=", 0) == 0) {
      seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg.rfind("--iterations=", 0) == 0) {
      iterations = std::strtoll(arg.c_str() + 13, nullptr, 10);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--seed=N] [--iterations=N]\n", argv[0]);
      return 2;
    }
  }
  return jim::fuzz::Run(seed, iterations);
}
