// libFuzzer entry point over the same targets as fuzz_jimc_main: the first
// input byte routes between the JIMC reader and the goal parser, the rest is
// the payload. Built only under -DJIM_BUILD_LIBFUZZER=ON (needs a compiler
// with -fsanitize=fuzzer, i.e. clang); the deterministic driver is the
// default path on GCC-only boxes.

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <string>

#include "fuzz/fuzz_targets.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size == 0) return 0;
  if ((data[0] & 1) != 0) {
    jim::fuzz::FuzzGoalParse(data + 1, size - 1);
  } else {
    const char* tmpdir = std::getenv("TMPDIR");
    static const std::string scratch =
        std::string(tmpdir != nullptr && *tmpdir != '\0' ? tmpdir : "/tmp") +
        "/fuzz_jimc_libfuzzer.jimc";
    jim::fuzz::FuzzJimcImage(data + 1, size - 1, scratch);
  }
  return 0;
}
