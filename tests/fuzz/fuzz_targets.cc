#include "fuzz/fuzz_targets.h"

#include <fstream>
#include <vector>

#include "core/join_predicate.h"
#include "relational/dictionary.h"
#include "relational/schema.h"
#include "storage/mapped_store.h"
#include "util/check.h"
#include "util/status.h"

namespace jim::fuzz {

namespace {

/// The schema every goal-parse iteration runs against: the paper's running
/// example plus a qualified attribute, so bare and qualified spellings both
/// have something to resolve to.
const rel::Schema& GoalSchema() {
  static const rel::Schema* schema = [] {
    auto* s = new rel::Schema();
    s->AddAttribute({"From", rel::ValueType::kString, ""});
    s->AddAttribute({"To", rel::ValueType::kString, ""});
    s->AddAttribute({"City", rel::ValueType::kString, "Hotels"});
    s->AddAttribute({"Airline", rel::ValueType::kString, ""});
    s->AddAttribute({"Discount", rel::ValueType::kString, ""});
    return s;
  }();
  return *schema;
}

}  // namespace

int FuzzJimcImage(const uint8_t* data, size_t size,
                  const std::string& scratch_path) {
  {
    std::ofstream out(scratch_path, std::ios::binary | std::ios::trunc);
    JIM_CHECK(out.good()) << "cannot stage fuzz image at " << scratch_path;
    out.write(reinterpret_cast<const char*>(data),
              static_cast<std::streamsize>(size));
    JIM_CHECK(out.good()) << "short write staging fuzz image";
  }
  auto opened = storage::MappedTupleStore::Open(scratch_path);
  if (!opened.ok()) {
    const util::Status& status = opened.status();
    // A rejection must be one of Open's documented error codes — an
    // unknown code would mean some validation branch leaks an untyped or
    // mis-typed failure.
    const util::StatusCode code = status.code();
    JIM_CHECK(code == util::StatusCode::kInvalidArgument ||
              code == util::StatusCode::kNotFound ||
              code == util::StatusCode::kInternal ||
              code == util::StatusCode::kUnimplemented)
        << "unexpected rejection code: " << status.ToString();
    JIM_CHECK(!status.message().empty())
        << "rejection without a diagnostic message";
    return 0;
  }

  // Accepted: Open promised every later access is safe, so take it at its
  // word and read everything. The sanitizers (and the mapping bounds) are
  // the referee; `mix` defeats dead-read elimination.
  const auto& store = **opened;
  JIM_CHECK_EQ(store.num_attributes(), store.schema().num_attributes());
  uint64_t mix = store.name().size();
  const size_t columns = store.num_attributes();
  std::vector<uint32_t> row(columns);
  for (size_t t = 0; t < store.num_tuples(); ++t) {
    store.TupleCodes(t, row.data());
    for (size_t a = 0; a < columns; ++a) {
      JIM_CHECK_EQ(row[a], store.code(t, a))
          << "TupleCodes vs code() drift at (" << t << ", " << a << ")";
      const rel::Value value = store.DecodeValue(t, a);
      JIM_CHECK_EQ(value.is_null(), row[a] == rel::kNullCode)
          << "NULL sentinel drift at (" << t << ", " << a << ")";
      mix = mix * 1099511628211ull + row[a];
      if (!value.is_null()) mix += value.ToString().size();
    }
  }
  store.CheckInvariants();
  // Volatile sink: the cell scan above must not be dead-read-eliminated.
  volatile uint64_t sink = mix;
  (void)sink;
  return 1;
}

int FuzzGoalParse(const uint8_t* data, size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  auto parsed = core::JoinPredicate::Parse(GoalSchema(), text);
  if (!parsed.ok()) {
    // Every rejection — malformed syntax and unknown attribute names alike —
    // is kInvalidArgument: the input text is bad, nothing is "missing"
    // (kNotFound stays reserved for absent files/relations). Anything else
    // leaks.
    const util::StatusCode code = parsed.status().code();
    JIM_CHECK(code == util::StatusCode::kInvalidArgument)
        << "unexpected goal rejection code: " << parsed.status().ToString();
    JIM_CHECK(!parsed.status().message().empty())
        << "goal rejection without a diagnostic message";
    return 0;
  }
  const core::JoinPredicate& predicate = *parsed;
  // Whatever Parse accepts must be a canonical partition over the schema.
  predicate.partition().CheckInvariants();
  JIM_CHECK_EQ(predicate.num_attributes(),
               GoalSchema().num_attributes());
  (void)predicate.ToString();
  // Non-empty predicates must round-trip through their SQL rendering (the
  // empty predicate renders as "TRUE", which Parse deliberately rejects).
  if (!predicate.IsEmptyPredicate()) {
    auto reparsed =
        core::JoinPredicate::Parse(GoalSchema(), predicate.ToSqlWhere());
    JIM_CHECK(reparsed.ok())
        << "ToSqlWhere of an accepted goal does not re-parse: "
        << predicate.ToSqlWhere();
    JIM_CHECK(*reparsed == predicate)
        << "goal round trip changed the predicate: " << predicate.ToString()
        << " vs " << reparsed->ToString();
  }
  return 1;
}

}  // namespace jim::fuzz
