#include "util/logging.h"

#include <gtest/gtest.h>

#include <regex>
#include <string>

namespace jim::util {
namespace {

TEST(ParseLogLevelTest, AcceptsNamesLettersAndDigits) {
  EXPECT_EQ(ParseLogLevel("debug"), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevel("INFO"), LogLevel::kInfo);
  EXPECT_EQ(ParseLogLevel("Warning"), LogLevel::kWarning);
  EXPECT_EQ(ParseLogLevel("warn"), LogLevel::kWarning);
  EXPECT_EQ(ParseLogLevel("error"), LogLevel::kError);
  EXPECT_EQ(ParseLogLevel("fatal"), LogLevel::kFatal);
  EXPECT_EQ(ParseLogLevel("d"), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevel("E"), LogLevel::kError);
  EXPECT_EQ(ParseLogLevel("0"), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevel("4"), LogLevel::kFatal);
  EXPECT_EQ(ParseLogLevel("  info  "), LogLevel::kInfo);
}

TEST(ParseLogLevelTest, RejectsEverythingElse) {
  EXPECT_FALSE(ParseLogLevel("").has_value());
  EXPECT_FALSE(ParseLogLevel("verbose").has_value());
  EXPECT_FALSE(ParseLogLevel("5").has_value());
  EXPECT_FALSE(ParseLogLevel("-1").has_value());
  EXPECT_FALSE(ParseLogLevel("info extra").has_value());
}

TEST(LogPrefixTest, CarriesLevelTimestampThreadIdAndCallSite) {
  // "[I +12.345ms T0 logging_test.cc:42] " — pinned by regex so the
  // timestamp and thread id can be anything, but the shape cannot drift.
  const std::string prefix = internal_logging::FormatLogPrefix(
      LogLevel::kInfo, "tests/util/logging_test.cc", 42);
  EXPECT_TRUE(std::regex_match(
      prefix,
      std::regex(R"(\[I \+\d+\.\d{3}ms T\d+ logging_test\.cc:42\] )")))
      << "got: '" << prefix << "'";

  const std::string warning = internal_logging::FormatLogPrefix(
      LogLevel::kWarning, "x.cc", 7);
  EXPECT_EQ(warning[1], 'W');
}

TEST(LogPrefixTest, MonotonicClockNeverGoesBackwards) {
  const int64_t first = internal_logging::MonotonicLogMicros();
  const int64_t second = internal_logging::MonotonicLogMicros();
  EXPECT_GE(first, 0);
  EXPECT_GE(second, first);
}

TEST(LogPrefixTest, ThreadIdIsStablePerThread) {
  const int id = internal_logging::LogThreadId();
  EXPECT_GE(id, 0);
  EXPECT_EQ(internal_logging::LogThreadId(), id);
}

TEST(LogLevelTest, SetOverridesAndSticks) {
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(before);
  EXPECT_EQ(GetLogLevel(), before);
}

}  // namespace
}  // namespace jim::util
