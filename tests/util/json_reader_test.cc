// util::ParseJson is the daemon's request parser: every byte a client can
// send flows through it, so it must accept exactly JSON and fail typed on
// everything else — no crash, no silent coercion.

#include "util/json_reader.h"

#include <string>

#include "gtest/gtest.h"
#include "util/json_writer.h"

namespace jim::util {
namespace {

TEST(JsonReaderTest, ParsesScalars) {
  EXPECT_TRUE(ParseJson("null")->is_null());
  EXPECT_TRUE(ParseJson("true")->AsBool());
  EXPECT_FALSE(ParseJson("false")->AsBool());
  EXPECT_EQ(ParseJson("42")->AsInt64(), 42);
  EXPECT_EQ(ParseJson("-7")->AsInt64(), -7);
  EXPECT_DOUBLE_EQ(ParseJson("2.5")->AsDouble(), 2.5);
  EXPECT_DOUBLE_EQ(ParseJson("1e3")->AsDouble(), 1000.0);
  EXPECT_EQ(ParseJson("\"hi\"")->AsString(), "hi");
}

TEST(JsonReaderTest, IntegerAndDoubleViewsAgree) {
  JsonValue v = ParseJson("42").value();
  EXPECT_TRUE(v.is_int());
  EXPECT_DOUBLE_EQ(v.AsDouble(), 42.0);
  JsonValue d = ParseJson("42.5").value();
  EXPECT_FALSE(d.is_int());
}

TEST(JsonReaderTest, ParsesNestedContainers) {
  auto parsed = ParseJson(
      R"({"a":[1,2,{"b":"c"}],"d":{"e":null},"f":true})");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const JsonValue& root = *parsed;
  ASSERT_TRUE(root.is_object());
  const JsonValue* a = root.Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->AsArray().size(), 3u);
  EXPECT_EQ(a->AsArray()[0].AsInt64(), 1);
  EXPECT_EQ(a->AsArray()[2].Find("b")->AsString(), "c");
  EXPECT_TRUE(root.Find("d")->Find("e")->is_null());
  EXPECT_TRUE(root.GetBool("f", false));
  EXPECT_EQ(root.Find("missing"), nullptr);
}

TEST(JsonReaderTest, StringEscapes) {
  EXPECT_EQ(ParseJson(R"("a\"b\\c\/d\n\t\r\b\f")")->AsString(),
            "a\"b\\c/d\n\t\r\b\f");
  // \uXXXX including a surrogate pair (𝄞 = U+1D11E).
  EXPECT_EQ(ParseJson(R"("\u0041\u00e9\u20ac")")->AsString(),
            "A\xC3\xA9\xE2\x82\xAC");
  EXPECT_EQ(ParseJson(R"("\ud834\udd1e")")->AsString(),
            "\xF0\x9D\x84\x9E");
}

TEST(JsonReaderTest, GetHelpersFallBack) {
  JsonValue v = ParseJson(R"({"s":"x","n":3,"b":true})").value();
  EXPECT_EQ(v.GetString("s", "d"), "x");
  EXPECT_EQ(v.GetString("missing", "d"), "d");
  EXPECT_EQ(v.GetInt("n", 9), 3);
  EXPECT_EQ(v.GetInt("missing", 9), 9);
  EXPECT_TRUE(v.GetBool("b", false));
  // Wrong kind falls back rather than aborting.
  EXPECT_EQ(v.GetInt("s", 9), 9);
}

TEST(JsonReaderTest, RejectsMalformedInput) {
  for (const char* bad :
       {"", "   ", "{", "[1,", "tru", "01", "1.", "+1", "\"unterminated",
        "\"bad\\q\"", "{\"a\"}", "{\"a\":1,}", "[1 2]", "nullx", "1 2",
        "{\"a\":}", "\"\\ud834\"", "\"\x01\""}) {
    auto parsed = ParseJson(bad);
    EXPECT_FALSE(parsed.ok()) << "accepted: " << bad;
    if (!parsed.ok()) {
      EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument) << bad;
    }
  }
}

TEST(JsonReaderTest, RejectsPathologicalNesting) {
  std::string deep(1000, '[');
  deep += std::string(1000, ']');
  auto parsed = ParseJson(deep);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
}

TEST(JsonReaderTest, RoundTripsJsonWriterOutput) {
  JsonWriter writer;
  writer.BeginObject();
  writer.KeyValue("ok", true);
  writer.KeyValue("n", int64_t{-12});
  writer.KeyValue("s", "a \"quoted\" value\nline two");
  writer.Key("list");
  writer.BeginArray();
  writer.Value(int64_t{1});
  writer.Value("two");
  writer.EndArray();
  writer.EndObject();
  auto parsed = ParseJson(writer.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_TRUE(parsed->GetBool("ok", false));
  EXPECT_EQ(parsed->GetInt("n", 0), -12);
  EXPECT_EQ(parsed->GetString("s", ""), "a \"quoted\" value\nline two");
  EXPECT_EQ(parsed->Find("list")->AsArray()[1].AsString(), "two");
}

}  // namespace
}  // namespace jim::util
