#include "util/csv.h"

#include <cstdio>

#include <gtest/gtest.h>

namespace jim::util {
namespace {

TEST(ParseCsvLineTest, PlainFields) {
  EXPECT_EQ(ParseCsvLine("a,b,c").value(),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(ParseCsvLine("a").value(), (std::vector<std::string>{"a"}));
  EXPECT_EQ(ParseCsvLine("").value(), (std::vector<std::string>{""}));
  EXPECT_EQ(ParseCsvLine("a,,c").value(),
            (std::vector<std::string>{"a", "", "c"}));
}

TEST(ParseCsvLineTest, QuotedFields) {
  EXPECT_EQ(ParseCsvLine(R"("a,b",c)").value(),
            (std::vector<std::string>{"a,b", "c"}));
  EXPECT_EQ(ParseCsvLine(R"("he said ""hi""",x)").value(),
            (std::vector<std::string>{"he said \"hi\"", "x"}));
  EXPECT_EQ(ParseCsvLine(R"("")").value(), (std::vector<std::string>{""}));
}

TEST(ParseCsvLineTest, Errors) {
  EXPECT_FALSE(ParseCsvLine(R"("unterminated)").ok());
  EXPECT_FALSE(ParseCsvLine(R"(ab"cd)").ok());
}

TEST(ParseCsvTest, MultipleRecords) {
  const auto records = ParseCsv("a,b\nc,d\ne,f\n").value();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0], (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(records[2], (std::vector<std::string>{"e", "f"}));
}

TEST(ParseCsvTest, CrLfAndNoTrailingNewline) {
  const auto records = ParseCsv("a,b\r\nc,d").value();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[1], (std::vector<std::string>{"c", "d"}));
}

TEST(ParseCsvTest, QuotedNewlineInsideField) {
  const auto records = ParseCsv("a,\"line1\nline2\"\nb,c\n").value();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0][1], "line1\nline2");
}

TEST(ParseCsvTest, SkipsUtf8Bom) {
  const auto records = ParseCsv("\xEF\xBB\xBFx,y\n").value();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0][0], "x");
}

TEST(FormatCsvLineTest, QuotesOnlyWhenNeeded) {
  EXPECT_EQ(FormatCsvLine({"a", "b"}), "a,b");
  EXPECT_EQ(FormatCsvLine({"a,b", "c"}), "\"a,b\",c");
  EXPECT_EQ(FormatCsvLine({"say \"hi\""}), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(FormatCsvLine({"multi\nline"}), "\"multi\nline\"");
}

TEST(FormatCsvLineTest, RoundTripsThroughParse) {
  const std::vector<std::string> fields = {"plain", "with,comma",
                                           "with \"quotes\"", "", "new\nline"};
  EXPECT_EQ(ParseCsvLine(FormatCsvLine(fields)).value(), fields);
}

TEST(FileIoTest, WriteThenRead) {
  const std::string path = ::testing::TempDir() + "/jim_csv_test.txt";
  ASSERT_TRUE(WriteStringToFile(path, "hello\nworld").ok());
  EXPECT_EQ(ReadFileToString(path).value(), "hello\nworld");
  std::remove(path.c_str());
}

TEST(FileIoTest, MissingFileIsNotFound) {
  const auto result = ReadFileToString("/nonexistent/path/file.csv");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace jim::util
