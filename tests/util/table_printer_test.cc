#include "util/table_printer.h"

#include <gtest/gtest.h>

#include "util/json_writer.h"

namespace jim::util {
namespace {

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"name", "n"});
  table.AddRow({"a", "1"});
  table.AddRow({"long-name", "22"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("| name      | n  |"), std::string::npos);
  EXPECT_NE(out.find("| long-name | 22 |"), std::string::npos);
  // Frame: header rule + top + bottom.
  EXPECT_NE(out.find("+-----------+----+"), std::string::npos);
}

TEST(TablePrinterTest, RightAlignment) {
  TablePrinter table({"v"});
  table.SetAlignments({Align::kRight});
  table.AddRow({"1"});
  table.AddRow({"100"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("|   1 |"), std::string::npos);
  EXPECT_NE(out.find("| 100 |"), std::string::npos);
}

TEST(TablePrinterTest, SeparatorInsertsRule) {
  TablePrinter table({"x"});
  table.AddRow({"a"});
  table.AddSeparator();
  table.AddRow({"b"});
  const std::string out = table.ToString();
  // 5 rules: top, under-header, separator, bottom... = count '+---+' lines.
  size_t rules = 0;
  for (size_t pos = out.find("+---+"); pos != std::string::npos;
       pos = out.find("+---+", pos + 1)) {
    ++rules;
  }
  EXPECT_EQ(rules, 4u);
}

TEST(BarChartTest, ScalesBars) {
  const std::string chart =
      BarChart({{"big", 10.0}, {"half", 5.0}, {"zero", 0.0}}, 10);
  EXPECT_NE(chart.find("big  |########## 10"), std::string::npos);
  EXPECT_NE(chart.find("half |##### 5"), std::string::npos);
  EXPECT_NE(chart.find("zero | 0"), std::string::npos);
}

TEST(JsonWriterTest, ObjectsArraysAndEscaping) {
  JsonWriter json;
  json.BeginObject()
      .KeyValue("name", "va\"lue")
      .KeyValue("count", 42)
      .KeyValue("ratio", 0.5)
      .KeyValue("flag", true)
      .Key("items")
      .BeginArray()
      .Value(1)
      .Value(2)
      .EndArray()
      .EndObject();
  EXPECT_EQ(json.str(),
            R"({"name":"va\"lue","count":42,"ratio":0.5,"flag":true,"items":[1,2]})");
}

TEST(JsonWriterTest, NestedStructures) {
  JsonWriter json;
  json.BeginArray();
  for (int i = 0; i < 2; ++i) {
    json.BeginObject().KeyValue("i", i).EndObject();
  }
  json.EndArray();
  EXPECT_EQ(json.str(), R"([{"i":0},{"i":1}])");
}

TEST(JsonWriterTest, EscapesControlCharacters) {
  JsonWriter json;
  json.BeginObject().KeyValue("s", "a\tb\nc").EndObject();
  EXPECT_EQ(json.str(), R"({"s":"a\tb\nc"})");
}

}  // namespace
}  // namespace jim::util
