#include "util/json_writer.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <string>

namespace jim::util {
namespace {

TEST(JsonWriterTest, FlatObject) {
  JsonWriter json;
  json.BeginObject()
      .KeyValue("name", "jim")
      .KeyValue("tuples", 42)
      .KeyValue("done", true)
      .EndObject();
  EXPECT_EQ(json.str(), R"({"name":"jim","tuples":42,"done":true})");
}

TEST(JsonWriterTest, NestedObjectsAndArrays) {
  JsonWriter json;
  json.BeginObject();
  json.Key("meta").BeginObject().KeyValue("threads", 4).EndObject();
  json.Key("results").BeginArray();
  json.BeginObject().KeyValue("arg", 1).EndObject();
  json.BeginObject().KeyValue("arg", 2).EndObject();
  json.EndArray();
  json.Key("buckets").BeginArray();
  json.BeginArray().Value(1).Value(3).EndArray();
  json.BeginArray().Value(7).Value(1).EndArray();
  json.EndArray();
  json.EndObject();
  EXPECT_EQ(json.str(),
            R"({"meta":{"threads":4},"results":[{"arg":1},{"arg":2}],)"
            R"("buckets":[[1,3],[7,1]]})");
}

TEST(JsonWriterTest, EmptyContainers) {
  JsonWriter json;
  json.BeginObject();
  json.Key("empty_object").BeginObject().EndObject();
  json.Key("empty_array").BeginArray().EndArray();
  json.EndObject();
  EXPECT_EQ(json.str(), R"({"empty_object":{},"empty_array":[]})");
}

TEST(JsonWriterTest, EscapesQuotesBackslashesAndWhitespaceControls) {
  JsonWriter json;
  json.BeginObject().KeyValue("k\"ey", "a\\b\n\r\tc").EndObject();
  EXPECT_EQ(json.str(), "{\"k\\\"ey\":\"a\\\\b\\n\\r\\tc\"}");
}

TEST(JsonWriterTest, EscapesOtherControlCharsAsUnicode) {
  // Control characters without a short escape get the \u00XX form.
  JsonWriter json;
  json.Value(std::string_view("\x01\x1f", 2));
  EXPECT_EQ(json.str(), "\"\\u0001\\u001f\"");
}

TEST(JsonWriterTest, PassesUtf8Through) {
  // Multi-byte UTF-8 is valid JSON string content as-is: every byte of a
  // multi-byte sequence is >= 0x80, so the control-char escape never fires.
  JsonWriter json;
  json.Value("héllo — 世界");
  EXPECT_EQ(json.str(), "\"héllo — 世界\"");
}

TEST(JsonWriterTest, NumberFormats) {
  JsonWriter json;
  json.BeginArray()
      .Value(int64_t{-9007199254740993})
      .Value(size_t{1234567890})
      .Value(0.5)
      .Value(false)
      .EndArray();
  EXPECT_EQ(json.str(), "[-9007199254740993,1234567890,0.5,false]");
}

TEST(JsonWriterTest, DoubleRoundTripsThroughTenSignificantDigits) {
  // %.10g keeps ten significant digits — enough that parsing the emitted
  // text recovers the value to bench-comparison precision.
  const double values[] = {3.141592653589793, 1e-9, 12345678.9, 0.1};
  for (const double v : values) {
    JsonWriter json;
    json.Value(v);
    const double parsed = std::strtod(json.str().c_str(), nullptr);
    EXPECT_NEAR(parsed, v, std::abs(v) * 1e-9) << json.str();
  }
}

TEST(JsonWriterTest, TopLevelScalarAndChaining) {
  JsonWriter json;
  json.Value("just a string");
  EXPECT_EQ(json.str(), R"("just a string")");

  JsonWriter chained;
  chained.BeginArray().Value(1).Value("two").Value(3.0).EndArray();
  EXPECT_EQ(chained.str(), R"([1,"two",3])");
}

}  // namespace
}  // namespace jim::util
