#include "util/rng.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

namespace jim::util {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  size_t differences = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() != b.Next()) ++differences;
  }
  EXPECT_GT(differences, 60u);
}

TEST(RngTest, UniformIntStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.UniformInt(-5, 17);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 17);
  }
}

TEST(RngTest, UniformIntSingletonRange) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.UniformInt(4, 4), 4);
  }
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(rng.UniformInt(0, 9));
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(13);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / 20000, 0.3, 0.02);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(23);
  std::vector<int> items = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = items;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, items);
}

TEST(RngTest, SampleIndicesDistinctAndSorted) {
  Rng rng(29);
  for (int trial = 0; trial < 50; ++trial) {
    const auto sample = rng.SampleIndices(100, 10);
    ASSERT_EQ(sample.size(), 10u);
    EXPECT_TRUE(std::is_sorted(sample.begin(), sample.end()));
    const std::set<size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 10u);
    for (size_t index : sample) EXPECT_LT(index, 100u);
  }
}

TEST(RngTest, SampleIndicesWholePopulation) {
  Rng rng(31);
  const auto sample = rng.SampleIndices(5, 10);
  EXPECT_EQ(sample, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(RngTest, ZipfInRangeAndSkewed) {
  Rng rng(37);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) {
    const int64_t v = rng.Zipf(10, 0.9);
    ASSERT_GE(v, 0);
    ASSERT_LT(v, 10);
    ++counts[static_cast<size_t>(v)];
  }
  // Strong skew: the smallest value should dominate the largest.
  EXPECT_GT(counts[0], counts[9] * 2);
}

TEST(RngTest, PickOneAlwaysReturnsMember) {
  Rng rng(41);
  const std::vector<std::string> items = {"a", "b", "c"};
  for (int i = 0; i < 100; ++i) {
    const std::string& pick = rng.PickOne(items);
    EXPECT_TRUE(pick == "a" || pick == "b" || pick == "c");
  }
}

}  // namespace
}  // namespace jim::util
