#include "util/status.h"

#include <gtest/gtest.h>

namespace jim::util {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status status = InvalidArgumentError("bad things");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad things");
  EXPECT_EQ(status.ToString(), "INVALID_ARGUMENT: bad things");
}

TEST(StatusTest, FactoryFunctionsSetCodes) {
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(AlreadyExistsError("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(FailedPreconditionError("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(OutOfRangeError("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(UnimplementedError("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
  EXPECT_EQ(ResourceExhaustedError("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(UnavailableError("x").code(), StatusCode::kUnavailable);
}

TEST(StatusTest, StatusCodeToStringCoversEveryCode) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInvalidArgument),
            "INVALID_ARGUMENT");
  EXPECT_EQ(StatusCodeToString(StatusCode::kNotFound), "NOT_FOUND");
  EXPECT_EQ(StatusCodeToString(StatusCode::kAlreadyExists),
            "ALREADY_EXISTS");
  EXPECT_EQ(StatusCodeToString(StatusCode::kFailedPrecondition),
            "FAILED_PRECONDITION");
  EXPECT_EQ(StatusCodeToString(StatusCode::kOutOfRange), "OUT_OF_RANGE");
  EXPECT_EQ(StatusCodeToString(StatusCode::kUnimplemented), "UNIMPLEMENTED");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInternal), "INTERNAL");
  EXPECT_EQ(StatusCodeToString(StatusCode::kResourceExhausted),
            "RESOURCE_EXHAUSTED");
  EXPECT_EQ(StatusCodeToString(StatusCode::kUnavailable), "UNAVAILABLE");
}

TEST(StatusTest, ToStringFormatsCodeColonMessage) {
  // The "<CODE>: <message>" shape is what fuzz targets, corruption tests,
  // and the CLI print — pin it for every code, including edge messages.
  EXPECT_EQ(NotFoundError("").ToString(), "NOT_FOUND: ");
  EXPECT_EQ(InternalError("a: b: c").ToString(), "INTERNAL: a: b: c");
  const std::string weird = "newline\nand\ttab";
  EXPECT_EQ(InvalidArgumentError(weird).ToString(),
            "INVALID_ARGUMENT: " + weird);
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(OkStatus(), Status());
  EXPECT_EQ(NotFoundError("a"), NotFoundError("a"));
  EXPECT_FALSE(NotFoundError("a") == NotFoundError("b"));
  EXPECT_FALSE(NotFoundError("a") == InternalError("a"));
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> result = NotFoundError("missing");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(result.value_or(-1), -1);
}

TEST(StatusOrTest, ValueOrPrefersValue) {
  StatusOr<std::string> result = std::string("hello");
  EXPECT_EQ(result.value_or("fallback"), "hello");
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::unique_ptr<int>> result = std::make_unique<int>(7);
  ASSERT_TRUE(result.ok());
  std::unique_ptr<int> owned = std::move(result).value();
  EXPECT_EQ(*owned, 7);
}

StatusOr<int> Half(int x) {
  if (x % 2 != 0) return InvalidArgumentError("odd");
  return x / 2;
}

Status UseHalf(int x, int* out) {
  ASSIGN_OR_RETURN(int half, Half(x));
  *out = half;
  return OkStatus();
}

TEST(StatusMacrosTest, AssignOrReturnPropagates) {
  int out = 0;
  EXPECT_TRUE(UseHalf(10, &out).ok());
  EXPECT_EQ(out, 5);
  EXPECT_EQ(UseHalf(7, &out).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(out, 5);  // untouched on error
}

Status FailThrough() {
  RETURN_IF_ERROR(OkStatus());
  RETURN_IF_ERROR(InternalError("boom"));
  return OkStatus();
}

TEST(StatusMacrosTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(FailThrough().code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace jim::util
