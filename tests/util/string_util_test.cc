#include "util/string_util.h"

#include <gtest/gtest.h>

namespace jim::util {
namespace {

TEST(SplitTest, BasicAndEdgeCases) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
  EXPECT_EQ(Split("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(JoinTest, RoundTripsWithSplit) {
  const std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(Join(parts, ", "), "x, y, z");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
  EXPECT_EQ(Split(Join(parts, "|"), '|'), parts);
}

TEST(StripWhitespaceTest, AllSides) {
  EXPECT_EQ(StripWhitespace("  hi  "), "hi");
  EXPECT_EQ(StripWhitespace("\t\nhi"), "hi");
  EXPECT_EQ(StripWhitespace("hi"), "hi");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace("a b"), "a b");
}

TEST(CaseTest, ToLowerUpper) {
  EXPECT_EQ(ToLower("MiXeD 123"), "mixed 123");
  EXPECT_EQ(ToUpper("MiXeD 123"), "MIXED 123");
}

TEST(AffixTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("lookahead-minmax", "lookahead"));
  EXPECT_FALSE(StartsWith("local", "lookahead"));
  EXPECT_TRUE(EndsWith("test.csv", ".csv"));
  EXPECT_FALSE(EndsWith("csv", "test.csv"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_TRUE(EndsWith("x", ""));
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(StrFormat("%.2f", 3.14159), "3.14");
  EXPECT_EQ(StrFormat("empty"), "empty");
  // Long outputs are not truncated.
  const std::string long_out = StrFormat("%0512d", 7);
  EXPECT_EQ(long_out.size(), 512u);
}

TEST(ParseInt64Test, ValidAndInvalid) {
  EXPECT_EQ(ParseInt64("42").value(), 42);
  EXPECT_EQ(ParseInt64("-17").value(), -17);
  EXPECT_EQ(ParseInt64("  8 ").value(), 8);
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64("4x").ok());
  EXPECT_FALSE(ParseInt64("4.5").ok());
  EXPECT_FALSE(ParseInt64("99999999999999999999999").ok());
}

TEST(ParseDoubleTest, ValidAndInvalid) {
  EXPECT_DOUBLE_EQ(ParseDouble("3.5").value(), 3.5);
  EXPECT_DOUBLE_EQ(ParseDouble("-2e3").value(), -2000.0);
  EXPECT_DOUBLE_EQ(ParseDouble("7").value(), 7.0);
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("1.2.3").ok());
  EXPECT_FALSE(ParseDouble("abc").ok());
}

TEST(FormatDoubleTest, Compact) {
  EXPECT_EQ(FormatDouble(3.0), "3");
  EXPECT_EQ(FormatDouble(0.5), "0.5");
  EXPECT_EQ(FormatDouble(1234560), "1.23456e+06");
}

TEST(ThousandsTest, GroupsDigits) {
  EXPECT_EQ(WithThousandsSeparators(0), "0");
  EXPECT_EQ(WithThousandsSeparators(999), "999");
  EXPECT_EQ(WithThousandsSeparators(1000), "1,000");
  EXPECT_EQ(WithThousandsSeparators(1234567), "1,234,567");
  EXPECT_EQ(WithThousandsSeparators(-1234567), "-1,234,567");
}

}  // namespace
}  // namespace jim::util
