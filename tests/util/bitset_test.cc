#include "util/bitset.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace jim::util {
namespace {

TEST(DynamicBitsetTest, StartsAllClear) {
  DynamicBitset bits(130);
  EXPECT_EQ(bits.size(), 130u);
  EXPECT_EQ(bits.Count(), 0u);
  EXPECT_TRUE(bits.None());
  EXPECT_FALSE(bits.Any());
}

TEST(DynamicBitsetTest, SetTestReset) {
  DynamicBitset bits(100);
  bits.Set(0);
  bits.Set(63);
  bits.Set(64);
  bits.Set(99);
  EXPECT_TRUE(bits.Test(0));
  EXPECT_TRUE(bits.Test(63));
  EXPECT_TRUE(bits.Test(64));
  EXPECT_TRUE(bits.Test(99));
  EXPECT_FALSE(bits.Test(1));
  EXPECT_EQ(bits.Count(), 4u);
  bits.Reset(63);
  EXPECT_FALSE(bits.Test(63));
  EXPECT_EQ(bits.Count(), 3u);
}

TEST(DynamicBitsetTest, SetAllRespectsSize) {
  DynamicBitset bits(70);
  bits.SetAll();
  EXPECT_EQ(bits.Count(), 70u);
  bits.ResetAll();
  EXPECT_EQ(bits.Count(), 0u);
}

TEST(DynamicBitsetTest, FindFirstAndNext) {
  DynamicBitset bits(200);
  EXPECT_EQ(bits.FindFirst(), 200u);
  bits.Set(5);
  bits.Set(64);
  bits.Set(199);
  EXPECT_EQ(bits.FindFirst(), 5u);
  EXPECT_EQ(bits.FindNext(6), 64u);
  EXPECT_EQ(bits.FindNext(65), 199u);
  EXPECT_EQ(bits.FindNext(200), 200u);
}

TEST(DynamicBitsetTest, IterationViaToVector) {
  DynamicBitset bits(128);
  bits.Set(1);
  bits.Set(64);
  bits.Set(127);
  EXPECT_EQ(bits.ToVector(), (std::vector<size_t>{1, 64, 127}));
}

TEST(DynamicBitsetTest, BooleanAlgebra) {
  DynamicBitset a(80);
  DynamicBitset b(80);
  a.Set(1);
  a.Set(40);
  b.Set(40);
  b.Set(70);
  EXPECT_EQ((a & b).ToVector(), (std::vector<size_t>{40}));
  EXPECT_EQ((a | b).ToVector(), (std::vector<size_t>{1, 40, 70}));
  EXPECT_EQ((a ^ b).ToVector(), (std::vector<size_t>{1, 70}));
}

TEST(DynamicBitsetTest, SubsetAndIntersects) {
  DynamicBitset small(90);
  DynamicBitset big(90);
  small.Set(3);
  small.Set(77);
  big.Set(3);
  big.Set(77);
  big.Set(50);
  EXPECT_TRUE(small.IsSubsetOf(big));
  EXPECT_FALSE(big.IsSubsetOf(small));
  EXPECT_TRUE(small.Intersects(big));
  DynamicBitset disjoint(90);
  disjoint.Set(10);
  EXPECT_FALSE(small.Intersects(disjoint));
  EXPECT_TRUE(DynamicBitset(90).IsSubsetOf(small));  // empty ⊆ anything
}

TEST(DynamicBitsetTest, EqualityAndHash) {
  DynamicBitset a(65);
  DynamicBitset b(65);
  EXPECT_EQ(a, b);
  a.Set(64);
  EXPECT_FALSE(a == b);
  b.Set(64);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Hash(), b.Hash());
}

TEST(DynamicBitsetTest, ToStringRendersPositions) {
  DynamicBitset bits(5);
  bits.Set(1);
  bits.Set(4);
  EXPECT_EQ(bits.ToString(), "01001");
}

TEST(DynamicBitsetTest, RandomizedAgainstReference) {
  Rng rng(55);
  const size_t n = 300;
  DynamicBitset bits(n);
  std::vector<bool> reference(n, false);
  for (int op = 0; op < 2000; ++op) {
    const size_t pos = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(n) - 1));
    const bool value = rng.Bernoulli(0.5);
    bits.Set(pos, value);
    reference[pos] = value;
  }
  size_t expected_count = 0;
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(bits.Test(i), reference[i]) << "position " << i;
    if (reference[i]) ++expected_count;
  }
  EXPECT_EQ(bits.Count(), expected_count);
}

}  // namespace
}  // namespace jim::util
