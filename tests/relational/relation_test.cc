#include "relational/relation.h"

#include <gtest/gtest.h>

#include "relational/catalog.h"
#include "relational/csv_io.h"
#include "relational/schema.h"

namespace jim::rel {
namespace {

Schema TestSchema() {
  Schema schema;
  schema.AddAttribute({"id", ValueType::kInt64, ""});
  schema.AddAttribute({"name", ValueType::kString, ""});
  schema.AddAttribute({"score", ValueType::kDouble, ""});
  return schema;
}

TEST(SchemaTest, IndexOfBareAndQualified) {
  Schema schema;
  schema.AddAttribute({"City", ValueType::kString, "Hotels"});
  schema.AddAttribute({"City", ValueType::kString, "Flights"});
  schema.AddAttribute({"Airline", ValueType::kString, "Flights"});
  EXPECT_EQ(schema.IndexOf("Hotels.City").value(), 0u);
  EXPECT_EQ(schema.IndexOf("Flights.City").value(), 1u);
  EXPECT_EQ(schema.IndexOf("Airline").value(), 2u);
  // Bare "City" is ambiguous.
  EXPECT_EQ(schema.IndexOf("City").status().code(),
            util::StatusCode::kInvalidArgument);
  EXPECT_EQ(schema.IndexOf("Nope").status().code(),
            util::StatusCode::kNotFound);
}

TEST(SchemaTest, ConcatAppliesQualifiers) {
  const Schema left = Schema::FromNames({"a", "b"});
  const Schema right = Schema::FromNames({"b", "c"});
  const Schema combined = Schema::Concat(left, "L", right, "R");
  EXPECT_EQ(combined.num_attributes(), 4u);
  EXPECT_EQ(combined.Names(),
            (std::vector<std::string>{"L.a", "L.b", "R.b", "R.c"}));
}

TEST(RelationTest, AddRowValidatesArityAndTypes) {
  Relation relation{"t", TestSchema()};
  EXPECT_TRUE(
      relation.AddRow({Value(int64_t{1}), Value("x"), Value(0.5)}).ok());
  // Wrong arity.
  EXPECT_FALSE(relation.AddRow({Value(int64_t{1}), Value("x")}).ok());
  // Wrong type in column 0.
  EXPECT_FALSE(relation.AddRow({Value("1"), Value("x"), Value(0.5)}).ok());
  // NULLs allowed anywhere.
  EXPECT_TRUE(relation.AddRow({Value(), Value(), Value()}).ok());
  EXPECT_EQ(relation.num_rows(), 2u);
}

TEST(RelationTest, SortAndDeduplicate) {
  Relation relation{"t", Schema::FromNames({"x"})};
  ASSERT_TRUE(relation.AddRow({Value("b")}).ok());
  ASSERT_TRUE(relation.AddRow({Value("a")}).ok());
  ASSERT_TRUE(relation.AddRow({Value("b")}).ok());
  relation.DeduplicateRows();
  EXPECT_EQ(relation.num_rows(), 2u);
  relation.SortRows();
  EXPECT_EQ(relation.row(0)[0].AsString(), "a");
  EXPECT_EQ(relation.row(1)[0].AsString(), "b");
}

TEST(RelationTest, DeduplicateTreatsNullRowsAsEqual) {
  Relation relation{"t", Schema::FromNames({"x"})};
  ASSERT_TRUE(relation.AddRow({Value()}).ok());
  ASSERT_TRUE(relation.AddRow({Value()}).ok());
  relation.DeduplicateRows();
  EXPECT_EQ(relation.num_rows(), 1u);
}

TEST(TupleHelpersTest, HashEqualsCompare) {
  const Tuple a = {Value(int64_t{1}), Value("x")};
  const Tuple b = {Value(int64_t{1}), Value("x")};
  const Tuple c = {Value(int64_t{1}), Value("y")};
  EXPECT_TRUE(TupleEquals(a, b));
  EXPECT_FALSE(TupleEquals(a, c));
  EXPECT_EQ(TupleHash(a), TupleHash(b));
  EXPECT_LT(TupleCompare(a, c), 0);
  EXPECT_EQ(TupleCompare(a, b), 0);
  EXPECT_FALSE(TupleEquals({Value()}, {Value()}));  // NULL ≠ NULL
}

TEST(CatalogTest, AddGetDrop) {
  Catalog catalog;
  EXPECT_TRUE(catalog.Add(Relation{"t", TestSchema()}).ok());
  EXPECT_EQ(catalog.Add(Relation{"t", TestSchema()}).code(),
            util::StatusCode::kAlreadyExists);
  EXPECT_FALSE(catalog.Add(Relation{"", TestSchema()}).ok());
  EXPECT_TRUE(catalog.Get("t").ok());
  EXPECT_EQ(catalog.Get("nope").status().code(), util::StatusCode::kNotFound);
  EXPECT_EQ(catalog.Names(), (std::vector<std::string>{"t"}));
  EXPECT_TRUE(catalog.Drop("t").ok());
  EXPECT_FALSE(catalog.Drop("t").ok());
  EXPECT_EQ(catalog.size(), 0u);
}

TEST(CsvIoTest, TypeInference) {
  const auto relation =
      RelationFromCsv("t", "id,score,name\n1,0.5,a\n2,1,b\n3,,c\n").value();
  EXPECT_EQ(relation.schema().attribute(0).type, ValueType::kInt64);
  EXPECT_EQ(relation.schema().attribute(1).type, ValueType::kDouble);
  EXPECT_EQ(relation.schema().attribute(2).type, ValueType::kString);
  EXPECT_EQ(relation.num_rows(), 3u);
  EXPECT_TRUE(relation.row(2)[1].is_null());  // empty field -> NULL
}

TEST(CsvIoTest, IntColumnWithDoubleBecomesDouble) {
  const auto relation = RelationFromCsv("t", "x\n1\n2.5\n").value();
  EXPECT_EQ(relation.schema().attribute(0).type, ValueType::kDouble);
}

TEST(CsvIoTest, RoundTrip) {
  const auto original =
      RelationFromCsv("t", "a,b\nhello,1\n\"x,y\",2\n,3\n").value();
  const std::string csv = RelationToCsv(original);
  const auto reloaded = RelationFromCsv("t", csv).value();
  ASSERT_EQ(reloaded.num_rows(), original.num_rows());
  for (size_t r = 0; r < original.num_rows(); ++r) {
    for (size_t c = 0; c < original.num_attributes(); ++c) {
      EXPECT_EQ(original.row(r)[c].ToString(), reloaded.row(r)[c].ToString());
    }
  }
}

TEST(CsvIoTest, Errors) {
  EXPECT_FALSE(RelationFromCsv("t", "").ok());
  EXPECT_FALSE(RelationFromCsv("t", "a,b\n1\n").ok());  // ragged row
  EXPECT_FALSE(RelationFromCsv("t", "a,\n1,2\n").ok()); // empty header name
}

TEST(CsvIoTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/jim_relation.csv";
  const auto original = RelationFromCsv("orig", "k,v\n1,x\n2,y\n").value();
  ASSERT_TRUE(SaveRelationToCsvFile(original, path).ok());
  const auto loaded = LoadRelationFromCsvFile(path).value();
  EXPECT_EQ(loaded.name(), "jim_relation");  // basename default
  EXPECT_EQ(loaded.num_rows(), 2u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace jim::rel
