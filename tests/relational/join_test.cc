#include "relational/join.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "relational/operators.h"
#include "util/rng.h"

namespace jim::rel {
namespace {

Relation MakeLeft() {
  Relation r{"L", Schema::FromNames({"k", "a"})};
  const char* rows[][2] = {{"1", "x"}, {"2", "y"}, {"2", "z"}, {"3", "w"}};
  for (const auto& row : rows) {
    EXPECT_TRUE(r.AddRow({Value(row[0]), Value(row[1])}).ok());
  }
  return r;
}

Relation MakeRight() {
  Relation r{"R", Schema::FromNames({"k", "b"})};
  const char* rows[][2] = {{"2", "p"}, {"2", "q"}, {"3", "r"}, {"4", "s"}};
  for (const auto& row : rows) {
    EXPECT_TRUE(r.AddRow({Value(row[0]), Value(row[1])}).ok());
  }
  return r;
}

/// Canonical multiset of rows for order-insensitive comparison.
std::vector<std::string> Canonical(const Relation& relation) {
  std::vector<std::string> rows;
  for (const Tuple& row : relation.rows()) {
    std::string key;
    for (const Value& value : row) {
      key += value.ToString();
      key.push_back('\x1f');
    }
    rows.push_back(std::move(key));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

TEST(JoinTest, NestedLoopBasic) {
  const auto result =
      NestedLoopJoin(MakeLeft(), MakeRight(), {{0, 0}}).value();
  // k=2: 2×2 pairs; k=3: 1×1. Total 5.
  EXPECT_EQ(result.num_rows(), 5u);
  EXPECT_EQ(result.num_attributes(), 4u);
}

TEST(JoinTest, AllAlgorithmsAgreeOnExample) {
  const Relation left = MakeLeft();
  const Relation right = MakeRight();
  const auto nl = NestedLoopJoin(left, right, {{0, 0}}).value();
  const auto hash = HashJoin(left, right, {{0, 0}}).value();
  const auto merge = SortMergeJoin(left, right, {{0, 0}}).value();
  EXPECT_EQ(Canonical(nl), Canonical(hash));
  EXPECT_EQ(Canonical(nl), Canonical(merge));
}

TEST(JoinTest, NullKeysNeverMatch) {
  Relation left{"L", Schema::FromNames({"k"})};
  ASSERT_TRUE(left.AddRow({Value()}).ok());
  ASSERT_TRUE(left.AddRow({Value("a")}).ok());
  Relation right{"R", Schema::FromNames({"k"})};
  ASSERT_TRUE(right.AddRow({Value()}).ok());
  ASSERT_TRUE(right.AddRow({Value("a")}).ok());
  for (const auto& result :
       {NestedLoopJoin(left, right, {{0, 0}}).value(),
        HashJoin(left, right, {{0, 0}}).value(),
        SortMergeJoin(left, right, {{0, 0}}).value()}) {
    EXPECT_EQ(result.num_rows(), 1u);  // only "a"–"a"
  }
}

TEST(JoinTest, CompositeKeys) {
  Relation left{"L", Schema::FromNames({"x", "y"})};
  ASSERT_TRUE(left.AddRow({Value("1"), Value("a")}).ok());
  ASSERT_TRUE(left.AddRow({Value("1"), Value("b")}).ok());
  Relation right{"R", Schema::FromNames({"x", "y"})};
  ASSERT_TRUE(right.AddRow({Value("1"), Value("a")}).ok());
  ASSERT_TRUE(right.AddRow({Value("1"), Value("c")}).ok());
  const JoinKeys keys = {{0, 0}, {1, 1}};
  EXPECT_EQ(HashJoin(left, right, keys).value().num_rows(), 1u);
  EXPECT_EQ(SortMergeJoin(left, right, keys).value().num_rows(), 1u);
}

TEST(JoinTest, KeyValidation) {
  EXPECT_FALSE(HashJoin(MakeLeft(), MakeRight(), {{7, 0}}).ok());
  EXPECT_FALSE(SortMergeJoin(MakeLeft(), MakeRight(), {{0, 7}}).ok());
}

TEST(JoinTest, QualifiersInOutputSchema) {
  JoinOptions options;
  options.left_qualifier = "L";
  options.right_qualifier = "R";
  const auto result =
      HashJoin(MakeLeft(), MakeRight(), {{0, 0}}, options).value();
  EXPECT_EQ(result.schema().Names(),
            (std::vector<std::string>{"L.k", "L.a", "R.k", "R.b"}));
}

TEST(CrossProductTest, SizesAndOrder) {
  const auto product = CrossProduct(MakeLeft(), MakeRight()).value();
  EXPECT_EQ(product.num_rows(), 16u);
  // Left-major order: first 4 rows share the first left row.
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(product.row(i)[0].AsString(), "1");
  }
}

TEST(CrossProductTest, SampledRespectsCapAndMembership) {
  util::Rng rng(3);
  const Relation left = MakeLeft();
  const Relation right = MakeRight();
  const auto sample = SampledCrossProduct(left, right, 5, rng).value();
  EXPECT_EQ(sample.num_rows(), 5u);
  // Every sampled row must be a genuine product row.
  const auto full = Canonical(CrossProduct(left, right).value());
  for (const std::string& row : Canonical(sample)) {
    EXPECT_TRUE(std::binary_search(full.begin(), full.end(), row));
  }
  // No duplicates (sampling without replacement).
  auto rows = Canonical(sample);
  EXPECT_EQ(std::unique(rows.begin(), rows.end()), rows.end());
}

TEST(CrossProductTest, SampleLargerThanProductReturnsAll) {
  util::Rng rng(4);
  const auto sample =
      SampledCrossProduct(MakeLeft(), MakeRight(), 1000, rng).value();
  EXPECT_EQ(sample.num_rows(), 16u);
}

// Property test: the three join algorithms agree on random inputs,
// swept over domain sizes (join selectivities) and key counts.
class JoinAlgorithmsAgree
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(JoinAlgorithmsAgree, OnRandomInputs) {
  const auto [domain, num_keys] = GetParam();
  util::Rng rng(1000 + static_cast<uint64_t>(domain) * 31 +
                static_cast<uint64_t>(num_keys));
  for (int trial = 0; trial < 8; ++trial) {
    auto make_random = [&](const char* name, size_t rows) {
      Relation r{name, Schema::FromNames({"k1", "k2", "v"})};
      for (size_t i = 0; i < rows; ++i) {
        // ~10% NULL keys exercise SQL semantics.
        auto field = [&]() {
          return rng.Bernoulli(0.1)
                     ? Value()
                     : Value(std::to_string(rng.UniformInt(0, domain - 1)));
        };
        EXPECT_TRUE(
            r.AddRow({field(), field(), Value(std::to_string(i))}).ok());
      }
      return r;
    };
    const Relation left = make_random("L", 30);
    const Relation right = make_random("R", 25);
    JoinKeys keys;
    for (int k = 0; k < num_keys; ++k) {
      keys.emplace_back(static_cast<size_t>(k), static_cast<size_t>(k));
    }
    const auto nl = NestedLoopJoin(left, right, keys).value();
    const auto hash = HashJoin(left, right, keys).value();
    const auto merge = SortMergeJoin(left, right, keys).value();
    EXPECT_EQ(Canonical(nl), Canonical(hash));
    EXPECT_EQ(Canonical(nl), Canonical(merge));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Selectivities, JoinAlgorithmsAgree,
    ::testing::Combine(::testing::Values(2, 5, 20),   // domain size
                       ::testing::Values(1, 2)));      // composite key width

TEST(OperatorsTest, SelectFilters) {
  const Relation left = MakeLeft();
  const Relation selected = Select(left, [](const Tuple& row) {
    return row[0].AsString() == "2";
  });
  EXPECT_EQ(selected.num_rows(), 2u);
}

TEST(OperatorsTest, ProjectReordersAndDuplicates) {
  const auto projected = Project(MakeLeft(), {1, 0, 1}).value();
  EXPECT_EQ(projected.schema().Names(),
            (std::vector<std::string>{"a", "k", "a"}));
  EXPECT_EQ(projected.row(0)[0].AsString(), "x");
  EXPECT_EQ(projected.row(0)[1].AsString(), "1");
  EXPECT_FALSE(Project(MakeLeft(), {5}).ok());
}

TEST(OperatorsTest, ProjectByName) {
  const auto projected = ProjectByName(MakeLeft(), {"a"}).value();
  EXPECT_EQ(projected.num_attributes(), 1u);
  EXPECT_FALSE(ProjectByName(MakeLeft(), {"nope"}).ok());
}

TEST(OperatorsTest, RenameRequalifies) {
  const Relation renamed = RenameRelation(MakeLeft(), "Q");
  EXPECT_EQ(renamed.name(), "Q");
  EXPECT_EQ(renamed.schema().Names(),
            (std::vector<std::string>{"Q.k", "Q.a"}));
  EXPECT_EQ(renamed.num_rows(), 4u);
}

TEST(OperatorsTest, CountIf) {
  EXPECT_EQ(CountIf(MakeLeft(),
                    [](const Tuple& row) { return row[0].AsString() > "1"; }),
            3u);
}

}  // namespace
}  // namespace jim::rel
