#include "relational/value.h"

#include <gtest/gtest.h>

namespace jim::rel {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_EQ(Value().type(), ValueType::kNull);
  EXPECT_TRUE(Value().is_null());
  EXPECT_EQ(Value(int64_t{42}).AsInt64(), 42);
  EXPECT_DOUBLE_EQ(Value(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value("hi").AsString(), "hi");
  EXPECT_EQ(Value(std::string("hi")).type(), ValueType::kString);
}

TEST(ValueTest, StrictEquality) {
  EXPECT_TRUE(Value(int64_t{1}).Equals(Value(int64_t{1})));
  EXPECT_FALSE(Value(int64_t{1}).Equals(Value(int64_t{2})));
  EXPECT_TRUE(Value("a").Equals(Value("a")));
  EXPECT_FALSE(Value("a").Equals(Value("b")));
  // Cross-type: never equal, even numerically.
  EXPECT_FALSE(Value(int64_t{1}).Equals(Value(1.0)));
  EXPECT_FALSE(Value("1").Equals(Value(int64_t{1})));
}

TEST(ValueTest, NullNeverEqualsAnything) {
  // SQL semantics: NULL = NULL is not true; a join never matches on NULLs.
  EXPECT_FALSE(Value().Equals(Value()));
  EXPECT_FALSE(Value().Equals(Value(int64_t{0})));
  EXPECT_FALSE(Value(int64_t{0}).Equals(Value()));
}

TEST(ValueTest, CompareTotalOrder) {
  // Nulls first, then by type id, then payload.
  EXPECT_LT(Value().Compare(Value(int64_t{0})), 0);
  EXPECT_LT(Value(int64_t{5}).Compare(Value(int64_t{9})), 0);
  EXPECT_GT(Value(int64_t{9}).Compare(Value(int64_t{5})), 0);
  EXPECT_EQ(Value(int64_t{5}).Compare(Value(int64_t{5})), 0);
  EXPECT_EQ(Value().Compare(Value()), 0);  // for ordering only
  EXPECT_LT(Value(int64_t{999}).Compare(Value(0.5)), 0);  // int type < double
  EXPECT_LT(Value(99.9).Compare(Value("a")), 0);          // double < string
  EXPECT_LT(Value("abc").Compare(Value("abd")), 0);
}

TEST(ValueTest, HashConsistentWithEquals) {
  EXPECT_EQ(Value(int64_t{7}).Hash(), Value(int64_t{7}).Hash());
  EXPECT_EQ(Value("x").Hash(), Value("x").Hash());
  EXPECT_NE(Value(int64_t{7}).Hash(), Value(7.0).Hash());
}

TEST(ValueTest, ToStringForms) {
  EXPECT_EQ(Value().ToString(), "NULL");
  EXPECT_EQ(Value(int64_t{-3}).ToString(), "-3");
  EXPECT_EQ(Value(2.5).ToString(), "2.5");
  EXPECT_EQ(Value("Paris").ToString(), "Paris");
}

TEST(ValueTest, SqlLiterals) {
  EXPECT_EQ(Value().ToSqlLiteral(), "NULL");
  EXPECT_EQ(Value(int64_t{3}).ToSqlLiteral(), "3");
  EXPECT_EQ(Value("Paris").ToSqlLiteral(), "'Paris'");
  EXPECT_EQ(Value("O'Hare").ToSqlLiteral(), "'O''Hare'");
}

TEST(ParseValueAsTest, TypedParsing) {
  EXPECT_EQ(ParseValueAs("42", ValueType::kInt64).AsInt64(), 42);
  EXPECT_DOUBLE_EQ(ParseValueAs("2.5", ValueType::kDouble).AsDouble(), 2.5);
  EXPECT_EQ(ParseValueAs("hi", ValueType::kString).AsString(), "hi");
  EXPECT_TRUE(ParseValueAs("", ValueType::kInt64).is_null());
  EXPECT_TRUE(ParseValueAs("", ValueType::kString).is_null());
}

}  // namespace
}  // namespace jim::rel
