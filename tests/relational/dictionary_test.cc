#include "relational/dictionary.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "exec/thread_pool.h"
#include "relational/catalog.h"
#include "relational/relation.h"
#include "relational/schema.h"

namespace jim::rel {
namespace {

TEST(DictionaryTest, CodesAreDenseAndFirstCome) {
  Dictionary dict;
  EXPECT_EQ(dict.GetOrAdd(Value("Paris")), 0u);
  EXPECT_EQ(dict.GetOrAdd(Value("Lille")), 1u);
  EXPECT_EQ(dict.GetOrAdd(Value("Paris")), 0u);  // stable on re-insert
  EXPECT_EQ(dict.GetOrAdd(Value(int64_t{42})), 2u);
  EXPECT_EQ(dict.size(), 3u);
  EXPECT_EQ(dict.value(0).AsString(), "Paris");
  EXPECT_EQ(dict.value(2).AsInt64(), 42);
}

TEST(DictionaryTest, EqualityIsTypeStrict) {
  // 1 (int), 1.0 (double) and "1" (string) are three distinct values under
  // Value::Equals, so they must get three distinct codes.
  Dictionary dict;
  const uint32_t as_int = dict.GetOrAdd(Value(int64_t{1}));
  const uint32_t as_double = dict.GetOrAdd(Value(1.0));
  const uint32_t as_string = dict.GetOrAdd(Value("1"));
  EXPECT_NE(as_int, as_double);
  EXPECT_NE(as_int, as_string);
  EXPECT_NE(as_double, as_string);
  EXPECT_EQ(dict.size(), 3u);
}

TEST(DictionaryTest, EveryNanOccurrenceMintsAFreshCode) {
  // NaN ≠ NaN under Value::Equals, so occurrences must never share a code
  // (and must not pile up in one hash bucket — they bypass the map).
  Dictionary dict;
  const double nan = std::nan("");
  const uint32_t first = dict.GetOrAdd(Value(nan));
  const uint32_t second = dict.GetOrAdd(Value(nan));
  EXPECT_NE(first, second);
  EXPECT_EQ(dict.size(), 2u);
  // Regular values interleaved with NaNs still dedupe normally.
  const uint32_t x = dict.GetOrAdd(Value(1.5));
  dict.GetOrAdd(Value(nan));
  EXPECT_EQ(dict.GetOrAdd(Value(1.5)), x);
}

TEST(DictionaryTest, FindDoesNotInsert) {
  Dictionary dict;
  EXPECT_FALSE(dict.Find(Value("x")).has_value());
  EXPECT_EQ(dict.size(), 0u);
  dict.GetOrAdd(Value("x"));
  ASSERT_TRUE(dict.Find(Value("x")).has_value());
  EXPECT_EQ(*dict.Find(Value("x")), 0u);
  EXPECT_FALSE(dict.Find(Value::Null()).has_value());
}

Relation TwoColumnRelation() {
  Relation relation{"r", Schema::FromNames({"a", "b"})};
  relation.AddRowUnchecked({Value("x"), Value("y")});
  relation.AddRowUnchecked({Value("y"), Value::Null()});
  relation.AddRowUnchecked({Value("x"), Value("x")});
  return relation;
}

TEST(EncodeColumnTest, NullGetsTheSentinelAndNoDictionaryEntry) {
  const Relation relation = TwoColumnRelation();
  const EncodedColumn column = EncodeColumn(relation, 1);
  ASSERT_EQ(column.num_rows(), 3u);
  EXPECT_EQ(column.codes[1], kNullCode);
  EXPECT_EQ(column.num_distinct(), 2u);  // "y" and "x"; no NULL entry
  EXPECT_TRUE(column.Decode(1).is_null());
  EXPECT_EQ(column.Decode(0).AsString(), "y");
}

TEST(EncodeColumnTest, EqualValuesShareACodeWithinAColumn) {
  const Relation relation = TwoColumnRelation();
  const EncodedColumn column = EncodeColumn(relation, 0);
  EXPECT_EQ(column.codes[0], column.codes[2]);  // "x" twice
  EXPECT_NE(column.codes[0], column.codes[1]);
}

TEST(EncodedRelationTest, RoundTripsEveryCell) {
  const Relation relation = TwoColumnRelation();
  const EncodedRelation encoded = EncodedRelation::FromRelation(relation);
  ASSERT_EQ(encoded.num_rows(), relation.num_rows());
  ASSERT_EQ(encoded.num_columns(), relation.num_attributes());
  for (size_t r = 0; r < relation.num_rows(); ++r) {
    for (size_t c = 0; c < relation.num_attributes(); ++c) {
      const Value& original = relation.row(r)[c];
      const Value decoded = encoded.column(c).Decode(r);
      if (original.is_null()) {
        EXPECT_TRUE(decoded.is_null());
        EXPECT_EQ(encoded.code(r, c), kNullCode);
      } else {
        EXPECT_TRUE(original.Equals(decoded)) << "row " << r << " col " << c;
      }
    }
  }
  EXPECT_GT(encoded.ApproxBytes(), 0u);
}

TEST(EncodedRelationTest, ColumnDictionariesAreIndependent) {
  // "x" appears in both columns; its *local* code may differ per column —
  // cross-column comparability is the shared-dictionary layer's job.
  const Relation relation = TwoColumnRelation();
  const EncodedRelation encoded = EncodedRelation::FromRelation(relation);
  EXPECT_EQ(encoded.column(0).dictionary.value(encoded.code(2, 0)).AsString(),
            "x");
  EXPECT_EQ(encoded.column(1).dictionary.value(encoded.code(2, 1)).AsString(),
            "x");
}

/// A column big enough to cross the parallel-ingest threshold, mixing
/// duplicates, NULLs, NaNs (fresh code per occurrence), and type collisions
/// — everything whose code assignment depends on scan order.
Relation WideMixedRelation(size_t rows) {
  Relation relation{"wide", Schema::FromNames({"a"})};
  for (size_t r = 0; r < rows; ++r) {
    switch (r % 7) {
      case 0:
        relation.AddRowUnchecked({Value(static_cast<int64_t>(r % 31))});
        break;
      case 1:
        relation.AddRowUnchecked({Value("s" + std::to_string(r % 13))});
        break;
      case 2:
        relation.AddRowUnchecked({Value::Null()});
        break;
      case 3:
        relation.AddRowUnchecked({Value(std::nan(""))});
        break;
      case 4:
        relation.AddRowUnchecked({Value(static_cast<double>(r % 11))});
        break;
      case 5:
        relation.AddRowUnchecked({Value(std::to_string(r % 31))});
        break;
      default:
        relation.AddRowUnchecked({Value(int64_t{-7})});
        break;
    }
  }
  return relation;
}

TEST(ParallelEncodeTest, CodesBitwiseIdenticalToSerialAtAnyThreadCount) {
  const Relation relation = WideMixedRelation(6000);
  const EncodedColumn serial = EncodeColumn(relation, 0);
  for (const size_t threads : {2u, 3u, 8u}) {
    exec::ThreadPool pool(threads);
    const EncodedColumn parallel = EncodeColumn(relation, 0, &pool);
    ASSERT_EQ(parallel.codes, serial.codes) << threads << " threads";
    ASSERT_EQ(parallel.dictionary.size(), serial.dictionary.size());
    for (uint32_t code = 0; code < serial.dictionary.size(); ++code) {
      // Same value behind every code, NaN payloads included (compare the
      // rendering: NaN never Equals itself).
      EXPECT_EQ(parallel.dictionary.value(code).ToString(),
                serial.dictionary.value(code).ToString())
          << "code " << code << " at " << threads << " threads";
      EXPECT_EQ(parallel.dictionary.value(code).type(),
                serial.dictionary.value(code).type());
    }
  }
}

TEST(ParallelEncodeTest, NullPoolAndSmallColumnsTakeTheSerialPath) {
  const Relation relation = WideMixedRelation(100);  // below the threshold
  const EncodedColumn serial = EncodeColumn(relation, 0);
  exec::ThreadPool pool(4);
  const EncodedColumn small = EncodeColumn(relation, 0, &pool);
  EXPECT_EQ(small.codes, serial.codes);
  const EncodedColumn no_pool = EncodeColumn(relation, 0, nullptr);
  EXPECT_EQ(no_pool.codes, serial.codes);
}

TEST(ParallelEncodeTest, ConcurrentCatalogEncodesOnTheSharedPoolAreSafe) {
  // Catalog::GetEncoded dispatches large relations to the process-wide
  // SharedPool; several threads hitting the first (uncached) encode at once
  // must be race-free and agree bitwise with the serial encode. This is the
  // scenario the TSAN stage exists for.
  Relation big = WideMixedRelation(6000);
  big.set_name("big");
  const EncodedColumn serial = EncodeColumn(big, 0);
  Catalog catalog;
  ASSERT_TRUE(catalog.Add(std::move(big)).ok());
  std::vector<std::shared_ptr<const EncodedRelation>> results(4);
  std::vector<std::thread> threads;
  threads.reserve(results.size());
  for (size_t i = 0; i < results.size(); ++i) {
    threads.emplace_back([&catalog, &results, i] {
      results[i] = catalog.GetEncoded("big").value();
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (const auto& encoded : results) {
    ASSERT_NE(encoded, nullptr);
    ASSERT_EQ(encoded->column(0).codes, serial.codes);
  }
}

TEST(ParallelEncodeTest, MergeChunkDictionariesKeepsFirstOccurrenceOrder) {
  std::vector<Dictionary> chunks(2);
  chunks[0].GetOrAdd(Value("b"));
  chunks[0].GetOrAdd(Value("a"));
  chunks[1].GetOrAdd(Value("a"));
  chunks[1].GetOrAdd(Value("c"));
  Dictionary target;
  const auto remaps = MergeChunkDictionaries(chunks, target);
  ASSERT_EQ(target.size(), 3u);
  EXPECT_EQ(target.value(0).AsString(), "b");
  EXPECT_EQ(target.value(1).AsString(), "a");
  EXPECT_EQ(target.value(2).AsString(), "c");
  EXPECT_EQ(remaps[0], (std::vector<uint32_t>{0, 1}));
  EXPECT_EQ(remaps[1], (std::vector<uint32_t>{1, 2}));
}

}  // namespace
}  // namespace jim::rel
