#include <sstream>

#include <gtest/gtest.h>

#include "core/jim.h"
#include "ui/console_ui.h"
#include "ui/demo_runner.h"
#include "workload/travel.h"

namespace jim::ui {
namespace {

TEST(RenderInstanceTest, ShowsMarkersAndGraysOut) {
  core::InferenceEngine engine(workload::Figure1InstancePtr());
  ASSERT_TRUE(engine.SubmitTupleLabel(2, core::Label::kPositive).ok());
  RenderOptions options;
  options.color = false;
  const std::string out = RenderInstance(engine, options);
  // Explicit label on row 3; its class-mate row 4 is grayed "(+)".
  EXPECT_NE(out.find("| 3  | +  "), std::string::npos) << out;
  EXPECT_NE(out.find("| 4  | (+)"), std::string::npos) << out;
  // Informative rows show '?'.
  EXPECT_NE(out.find("| 1  | ?  "), std::string::npos) << out;
}

TEST(RenderInstanceTest, ColorModeEmitsAnsi) {
  core::InferenceEngine engine(workload::Figure1InstancePtr());
  ASSERT_TRUE(engine.SubmitTupleLabel(2, core::Label::kPositive).ok());
  RenderOptions options;
  options.color = true;
  const std::string out = RenderInstance(engine, options);
  EXPECT_NE(out.find("\x1b[32m"), std::string::npos);  // green label
  EXPECT_NE(out.find("\x1b[90m"), std::string::npos);  // gray rows
}

TEST(RenderInstanceTest, RespectsMaxRows) {
  core::InferenceEngine engine(workload::Figure1InstancePtr());
  RenderOptions options;
  options.max_rows = 3;
  const std::string out = RenderInstance(engine, options);
  EXPECT_NE(out.find("(9 more tuples)"), std::string::npos);
}

TEST(RenderTupleTest, NameValuePairs) {
  const auto instance = workload::Figure1InstancePtr();
  EXPECT_EQ(RenderTuple(*instance, 2),
            "From=Paris, To=Lille, Airline=AF, City=Lille, Discount=AF");
}

TEST(RenderProgressTest, CountsAddUp) {
  core::InferenceEngine engine(workload::Figure1InstancePtr());
  ASSERT_TRUE(engine.SubmitTupleLabel(11, core::Label::kPositive).ok());
  const std::string out = RenderProgress(engine);
  EXPECT_NE(out.find("1 of 12 tuples labeled"), std::string::npos) << out;
  EXPECT_NE(out.find("3 grayed out"), std::string::npos) << out;
  EXPECT_NE(out.find("interactions so far: 1"), std::string::npos) << out;
}

TEST(SavingsChartTest, ReportsSavings) {
  const std::string out = RenderSavingsChart(
      {{"1-label-all", 10}, {"4-most-informative", 4}});
  EXPECT_NE(out.find("saves 60%"), std::string::npos) << out;
  EXPECT_NE(out.find("1-label-all"), std::string::npos);
}

TEST(SavingsChartTest, EmptyAndTiedInputs) {
  EXPECT_EQ(RenderSavingsChart({}), "");
  const std::string tied = RenderSavingsChart({{"a", 5}, {"b", 5}});
  EXPECT_EQ(tied.find("saves"), std::string::npos);
}

TEST(ConsoleDemoTest, Mode4ScriptedSessionInfersQ2) {
  // Answers for Q2 against the lookahead question order (-,+,-,-), plus a
  // 'p' progress request in the middle to exercise the command parser.
  std::istringstream in("-\n+\np\n-\n-\n");
  std::ostringstream out;
  DemoOptions options;
  options.strategy = "lookahead-entropy";
  options.render.color = false;
  const auto result = RunConsoleDemo(workload::Figure1InstancePtr(),
                                     std::move(options), in, out);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->ToSqlWhere(), "To = City AND Airline = Discount");
  EXPECT_NE(out.str().find("inferred join query"), std::string::npos);
}

TEST(ConsoleDemoTest, Mode2FreeLabelingByRow) {
  // Label rows 3+, 7-, 8- (the paper's identifying set for Q2).
  std::istringstream in("3 +\n7 -\n8 -\n");
  std::ostringstream out;
  DemoOptions options;
  options.mode = core::InteractionMode::kGrayOut;
  options.render.color = false;
  const auto result = RunConsoleDemo(workload::Figure1InstancePtr(),
                                     std::move(options), in, out);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->ToSqlWhere(), "To = City AND Airline = Discount");
}

TEST(ConsoleDemoTest, AutoOracleRunsUnattended) {
  for (int mode = 1; mode <= 4; ++mode) {
    std::istringstream in("");
    std::ostringstream out;
    const auto instance = workload::Figure1InstancePtr();
    DemoOptions options;
    options.mode = static_cast<core::InteractionMode>(mode);
    options.render.color = false;
    options.auto_oracle = std::make_unique<core::ExactOracle>(
        core::JoinPredicate::Parse(instance->schema(), workload::kQ2)
            .value());
    const auto result =
        RunConsoleDemo(instance, std::move(options), in, out);
    ASSERT_TRUE(result.ok()) << "mode " << mode << ": "
                             << result.status().ToString();
    EXPECT_TRUE(core::InstanceEquivalent(
        *instance, *result,
        core::JoinPredicate::Parse(instance->schema(), workload::kQ2)
            .value()))
        << "mode " << mode;
  }
}

TEST(ConsoleDemoTest, QuitAndEofAreHandled) {
  {
    std::istringstream in("q\n");
    std::ostringstream out;
    DemoOptions options;
    options.render.color = false;
    const auto result = RunConsoleDemo(workload::Figure1InstancePtr(),
                                       std::move(options), in, out);
    EXPECT_FALSE(result.ok());
  }
  {
    std::istringstream in("");
    std::ostringstream out;
    DemoOptions options;
    options.render.color = false;
    const auto result = RunConsoleDemo(workload::Figure1InstancePtr(),
                                       std::move(options), in, out);
    EXPECT_FALSE(result.ok());
  }
}

TEST(ConsoleDemoTest, GarbageInputIsReprompted) {
  // Garbage, an out-of-range row, then the real labels (mode 2).
  std::istringstream in("wat\n99 +\n3 +\n7 -\n8 -\n");
  std::ostringstream out;
  DemoOptions options;
  options.mode = core::InteractionMode::kGrayOut;
  options.render.color = false;
  const auto result = RunConsoleDemo(workload::Figure1InstancePtr(),
                                     std::move(options), in, out);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_NE(out.str().find("could not parse"), std::string::npos);
  EXPECT_NE(out.str().find("row number out of range"), std::string::npos);
}

TEST(ConsoleDemoTest, UnknownStrategyErrors) {
  std::istringstream in("");
  std::ostringstream out;
  DemoOptions options;
  options.strategy = "definitely-not-a-strategy";
  const auto result = RunConsoleDemo(workload::Figure1InstancePtr(),
                                     std::move(options), in, out);
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace jim::ui
