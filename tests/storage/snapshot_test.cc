// Catalog snapshots: SaveCatalog/LoadCatalog round trips every relation
// through its encoded columnar form, and universal tables built over the
// reloaded catalog drive sessions byte-identical to the original's.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>

#include "core/jim.h"
#include "query/universal_table.h"
#include "relational/catalog.h"
#include "storage/snapshot.h"
#include "util/rng.h"
#include "workload/travel.h"

namespace jim::storage {
namespace {

std::string TestDir(const std::string& name) {
  return ::testing::TempDir() + "snapshot_" + name;
}

TEST(SnapshotTest, CatalogRoundTripPreservesRelations) {
  util::Rng rng(4);
  const rel::Catalog catalog =
      workload::LargeTravelCatalog(/*num_flights=*/20, /*num_hotels=*/11,
                                   /*num_cities=*/5, /*num_airlines=*/3, rng);
  const std::string dir = TestDir("round_trip");
  ASSERT_TRUE(SaveCatalog(catalog, dir).ok());
  const auto reloaded = LoadCatalog(dir);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status();

  ASSERT_EQ(reloaded->Names(), catalog.Names());
  for (const std::string& name : catalog.Names()) {
    const auto original = catalog.GetShared(name).value();
    const auto loaded = reloaded->GetShared(name).value();
    ASSERT_TRUE(original->schema() == loaded->schema()) << name;
    ASSERT_EQ(original->num_rows(), loaded->num_rows()) << name;
    for (size_t r = 0; r < original->num_rows(); ++r) {
      EXPECT_EQ(rel::TupleRepresentationKey(original->row(r)),
                rel::TupleRepresentationKey(loaded->row(r)))
          << name << " row " << r;
    }
  }
}

TEST(SnapshotTest, UniversalTablesOverReloadedCatalogMatch) {
  util::Rng rng(9);
  const rel::Catalog catalog =
      workload::LargeTravelCatalog(/*num_flights=*/14, /*num_hotels=*/8,
                                   /*num_cities=*/4, /*num_airlines=*/2, rng);
  const std::string dir = TestDir("universal");
  ASSERT_TRUE(SaveCatalog(catalog, dir).ok());
  const auto reloaded = LoadCatalog(dir);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status();

  const auto original_table =
      query::UniversalTable::Build(catalog, {"Flights", "Hotels"}).value();
  const auto reloaded_table =
      query::UniversalTable::Build(*reloaded, {"Flights", "Hotels"}).value();
  ASSERT_EQ(original_table.num_tuples(), reloaded_table.num_tuples());
  ASSERT_TRUE(original_table.schema() == reloaded_table.schema());
  const auto& original_store = *original_table.store();
  const auto& reloaded_store = *reloaded_table.store();
  for (size_t t = 0; t < original_store.num_tuples(); ++t) {
    for (size_t a = 0; a < original_store.num_attributes(); ++a) {
      // Codes are rebuilt from scratch on both sides of the snapshot; the
      // loaded relations must encode identically, not just equivalently.
      EXPECT_EQ(original_store.code(t, a), reloaded_store.code(t, a))
          << t << "," << a;
    }
  }
}

TEST(SnapshotTest, MaterializeStoreDecodesEveryTuple) {
  const auto store = workload::Figure1StorePtr();
  const rel::Relation relation = MaterializeStore(*store);
  EXPECT_EQ(relation.name(), store->name());
  ASSERT_EQ(relation.num_rows(), store->num_tuples());
  for (size_t t = 0; t < relation.num_rows(); ++t) {
    const rel::Tuple decoded = store->DecodeTuple(t);
    EXPECT_EQ(rel::TupleRepresentationKey(relation.row(t)),
              rel::TupleRepresentationKey(decoded));
  }
}

TEST(SnapshotTest, ManifestFileFieldsMayNotEscapeTheSnapshotDirectory) {
  const std::string dir = TestDir("traversal");
  std::filesystem::create_directories(dir);
  std::ofstream manifest(dir + "/" + kCatalogManifest);
  manifest << "evil\t../../outside.jimc\n";
  manifest.close();
  const auto reloaded = LoadCatalog(dir);
  ASSERT_FALSE(reloaded.ok());
  EXPECT_EQ(reloaded.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(SnapshotTest, LoadFromMissingDirectoryIsNotFound) {
  const auto reloaded = LoadCatalog(TestDir("never_saved"));
  ASSERT_FALSE(reloaded.ok());
  EXPECT_EQ(reloaded.status().code(), util::StatusCode::kNotFound);
}

TEST(SnapshotTest, ResaveSwapsGenerationsWithoutMixingOrLeaking) {
  const std::string dir = TestDir("resave");
  const auto count_jimc = [&dir] {
    size_t count = 0;
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
      if (entry.path().extension() == ".jimc") ++count;
    }
    return count;
  };
  rel::Catalog v1;
  rel::Relation first{"R", rel::Schema::FromNames({"x"})};
  first.AddRowUnchecked({rel::Value("one")});
  ASSERT_TRUE(v1.Add(std::move(first)).ok());
  ASSERT_TRUE(SaveCatalog(v1, dir).ok());
  EXPECT_EQ(count_jimc(), 1u);

  // A staging orphan from a "crashed" earlier save must be collected too.
  { std::ofstream orphan(dir + "/R.g9.jimc.tmp"); orphan << "junk"; }

  rel::Catalog v2;
  rel::Relation second{"R", rel::Schema::FromNames({"x"})};
  second.AddRowUnchecked({rel::Value("two")});
  ASSERT_TRUE(v2.Add(std::move(second)).ok());
  ASSERT_TRUE(SaveCatalog(v2, dir).ok());
  EXPECT_FALSE(std::filesystem::exists(dir + "/R.g9.jimc.tmp"));
  // The re-save wrote a fresh generation (never overwriting the files the
  // old manifest referenced) and collected the superseded one.
  EXPECT_EQ(count_jimc(), 1u);
  const auto reloaded = LoadCatalog(dir);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status();
  EXPECT_EQ(reloaded->GetShared("R").value()->row(0)[0].AsString(), "two");
}

TEST(SnapshotTest, NamesWithManifestFramingBytesRoundTrip) {
  // Tabs and newlines are the manifest's own delimiters; names carrying
  // them must be escaped on save and restored exactly on load.
  rel::Catalog catalog;
  rel::Relation odd{"a\tb\nc\\d", rel::Schema::FromNames({"x"})};
  odd.AddRowUnchecked({rel::Value("v")});
  ASSERT_TRUE(catalog.Add(std::move(odd)).ok());
  const std::string dir = TestDir("framing");
  ASSERT_TRUE(SaveCatalog(catalog, dir).ok());
  const auto reloaded = LoadCatalog(dir);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status();
  const auto relation = reloaded->GetShared("a\tb\nc\\d");
  ASSERT_TRUE(relation.ok()) << relation.status();
  EXPECT_EQ((*relation)->row(0)[0].AsString(), "v");
}

TEST(SnapshotTest, CaseInsensitiveFileCollisionsStayDistinct) {
  // "Flights" and "flights" must land in distinct files even where the
  // filesystem folds case (macOS/Windows), or one silently overwrites the
  // other.
  rel::Catalog catalog;
  rel::Relation upper{"Flights", rel::Schema::FromNames({"x"})};
  upper.AddRowUnchecked({rel::Value("upper")});
  rel::Relation lower{"flights", rel::Schema::FromNames({"x"})};
  lower.AddRowUnchecked({rel::Value("lower")});
  ASSERT_TRUE(catalog.Add(std::move(upper)).ok());
  ASSERT_TRUE(catalog.Add(std::move(lower)).ok());
  const std::string dir = TestDir("case_fold");
  ASSERT_TRUE(SaveCatalog(catalog, dir).ok());
  const auto reloaded = LoadCatalog(dir);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status();
  EXPECT_EQ(reloaded->GetShared("Flights").value()->row(0)[0].AsString(),
            "upper");
  EXPECT_EQ(reloaded->GetShared("flights").value()->row(0)[0].AsString(),
            "lower");
}

TEST(SnapshotTest, CollidingSanitizedNamesStayDistinct) {
  rel::Catalog catalog;
  rel::Relation a{"data set", rel::Schema::FromNames({"x"})};
  a.AddRowUnchecked({rel::Value("alpha")});
  rel::Relation b{"data/set", rel::Schema::FromNames({"x"})};
  b.AddRowUnchecked({rel::Value("beta")});
  ASSERT_TRUE(catalog.Add(std::move(a)).ok());
  ASSERT_TRUE(catalog.Add(std::move(b)).ok());
  const std::string dir = TestDir("collide");
  ASSERT_TRUE(SaveCatalog(catalog, dir).ok());
  const auto reloaded = LoadCatalog(dir);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status();
  EXPECT_EQ(reloaded->GetShared("data set")
                .value()
                ->row(0)[0]
                .AsString(),
            "alpha");
  EXPECT_EQ(reloaded->GetShared("data/set")
                .value()
                ->row(0)[0]
                .AsString(),
            "beta");
}

}  // namespace
}  // namespace jim::storage
