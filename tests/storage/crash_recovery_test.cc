// Exhaustive crash-point enumeration over the storage tier's write paths.
//
// The protocol, per path (WriteStore, SaveCatalog): run the old version
// cleanly through a FaultInjectionEnv to learn its deterministic operation
// schedule, then re-run the new version once per schedule index with a
// simulated power cut armed there. Each cut's durable state is replayed
// into a real directory (strict fsync-barrier semantics, the
// metadata-flushed extreme, and torn-tail variants of both) and recovery
// runs on it for real, proving:
//   - the committed name always reopens as the complete old XOR the
//     complete new version — never a mix, never a torn image;
//   - surviving staging files (`*.tmp`) are ignored by recovery, fail
//     typed (never UB) when opened directly, and are garbage-collected;
//   - every truncated-prefix image of a JIMC file is a typed error.
// The ci CRASH stage runs this suite under ASan, so "typed error, not UB"
// is machine-checked.

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "core/join_predicate.h"
#include "core/tuple_store.h"
#include "relational/catalog.h"
#include "relational/relation.h"
#include "storage/env.h"
#include "storage/fault_env.h"
#include "storage/mapped_store.h"
#include "storage/metrics_env.h"
#include "storage/snapshot.h"
#include "storage/store_writer.h"
#include "util/status.h"

namespace jim::storage {
namespace {

using rel::Value;

/// A scratch directory guaranteed empty (TempDir persists across runs, and
/// replay must not inherit last run's leftovers).
std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "crash_recovery_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

/// Two-column relation whose (0,0) cell carries a version marker; `rows`
/// also differs between versions so a mixed image cannot masquerade as
/// either.
std::shared_ptr<const rel::Relation> MarkerRelation(
    const std::string& marker, size_t rows) {
  rel::Relation relation{"R", rel::Schema::FromNames({"m", "x"})};
  for (size_t r = 0; r < rows; ++r) {
    relation.AddRowUnchecked({Value(marker),
                              Value("x" + std::to_string(r % 3))});
  }
  return std::make_shared<const rel::Relation>(std::move(relation));
}

struct ReplayScenario {
  FaultInjectionEnv::ReplayMode mode;
  uint64_t torn_seed;
  const char* tag;
};

std::vector<ReplayScenario> Scenarios(uint64_t crash_point) {
  return {
      {FaultInjectionEnv::ReplayMode::kStrict, 0, "strict"},
      {FaultInjectionEnv::ReplayMode::kStrict, crash_point * 2 + 1,
       "strict_torn"},
      {FaultInjectionEnv::ReplayMode::kMetadataFlushed, 0, "flushed"},
      {FaultInjectionEnv::ReplayMode::kMetadataFlushed,
       crash_point * 2 + 2, "flushed_torn"},
  };
}

TEST(CrashRecoveryTest, EveryWriteStoreCrashPointRecoversOldXorNew) {
  const auto v1 = core::MakeRelationStore(MarkerRelation("one", 3));
  const auto v2 = core::MakeRelationStore(MarkerRelation("two", 5));
  const std::string path = "vroot/data.jimc";

  // Learn both deterministic operation schedules from one clean probe run.
  uint64_t n_first = 0;
  uint64_t n_second = 0;
  {
    FaultInjectionEnv probe;
    StoreWriterOptions options;
    options.env = &probe;
    ASSERT_TRUE(WriteStore(*v1, path, options).ok());
    n_first = probe.op_count();
    ASSERT_TRUE(WriteStore(*v2, path, options).ok());
    n_second = probe.op_count() - n_first;
  }
  // create + appends + fsync + close + rename + syncdir at minimum.
  ASSERT_GE(n_second, 6u);

  size_t recovered_old = 0;
  size_t recovered_new = 0;
  for (uint64_t k = 0; k < n_second; ++k) {
    FaultInjectionEnv env;
    env.set_torn_write_bytes(5);  // crashes mid-append land a torn prefix
    StoreWriterOptions options;
    options.env = &env;
    ASSERT_TRUE(WriteStore(*v1, path, options).ok());
    ASSERT_EQ(env.op_count(), n_first) << "schedule must be deterministic";
    env.CrashAtOp(n_first + k);
    const util::Status crashed = WriteStore(*v2, path, options);
    ASSERT_FALSE(crashed.ok()) << "crash point " << k << " did not fire";
    ASSERT_EQ(crashed.code(), util::StatusCode::kInternal)
        << "power loss must not be classified transient: " << crashed;

    for (const ReplayScenario& scenario : Scenarios(k)) {
      const std::string dir = FreshDir(
          "ws_" + std::to_string(k) + "_" + scenario.tag);
      ASSERT_TRUE(env.ReplayDurableInto("vroot", dir, scenario.mode,
                                        scenario.torn_seed)
                      .ok());
      // The committed name: always reopens, always one complete version.
      const auto opened = MappedTupleStore::Open(dir + "/data.jimc");
      ASSERT_TRUE(opened.ok())
          << "crash point " << k << " (" << scenario.tag
          << "): committed file lost or corrupt: " << opened.status();
      (*opened)->CheckInvariants();
      const std::string marker = (*opened)->DecodeValue(0, 0).AsString();
      const size_t rows = (*opened)->num_tuples();
      const bool is_old = marker == "one" && rows == 3;
      const bool is_new = marker == "two" && rows == 5;
      EXPECT_TRUE(is_old || is_new)
          << "crash point " << k << " (" << scenario.tag
          << "): mixed image: marker=" << marker << " rows=" << rows;
      recovered_old += is_old ? 1 : 0;
      recovered_new += is_new ? 1 : 0;
      // A surviving staging image must fail typed — never UB, never served
      // as data (a fully-written tmp that only missed its rename is the one
      // valid-content case, and it is still not the committed name).
      if (std::filesystem::exists(dir + "/data.jimc.tmp")) {
        const auto tmp = MappedTupleStore::Open(dir + "/data.jimc.tmp");
        if (!tmp.ok()) {
          EXPECT_EQ(tmp.status().code(),
                    util::StatusCode::kInvalidArgument)
              << tmp.status();
          EXPECT_FALSE(tmp.status().message().empty());
        }
      }
    }
  }
  // Both outcomes must be reachable across the sweep, or the enumeration
  // (or the durability model) is vacuous.
  EXPECT_GT(recovered_old, 0u);
  EXPECT_GT(recovered_new, 0u);
}

TEST(CrashRecoveryTest, EverySaveCatalogCrashPointRecoversOldXorNew) {
  // The two versions disagree on relation *sets*, not just contents, so a
  // mixed snapshot cannot pass for either.
  rel::Catalog v1;
  {
    rel::Relation r{"R", rel::Schema::FromNames({"x"})};
    r.AddRowUnchecked({Value("one")});
    rel::Relation s{"S", rel::Schema::FromNames({"x"})};
    s.AddRowUnchecked({Value("s1")});
    ASSERT_TRUE(v1.Add(std::move(r)).ok());
    ASSERT_TRUE(v1.Add(std::move(s)).ok());
  }
  rel::Catalog v2;
  {
    rel::Relation r{"R", rel::Schema::FromNames({"x"})};
    r.AddRowUnchecked({Value("two")});
    rel::Relation t{"T", rel::Schema::FromNames({"x"})};
    t.AddRowUnchecked({Value("t2")});
    ASSERT_TRUE(v2.Add(std::move(r)).ok());
    ASSERT_TRUE(v2.Add(std::move(t)).ok());
  }
  const std::string snap = "vroot/snap";

  uint64_t n_first = 0;
  uint64_t n_second = 0;
  {
    FaultInjectionEnv probe;
    SnapshotOptions options;
    options.env = &probe;
    ASSERT_TRUE(SaveCatalog(v1, snap, options).ok());
    n_first = probe.op_count();
    ASSERT_TRUE(SaveCatalog(v2, snap, options).ok());
    n_second = probe.op_count() - n_first;
  }
  ASSERT_GE(n_second, 12u);

  size_t recovered_old = 0;
  size_t recovered_new = 0;
  for (uint64_t k = 0; k < n_second; ++k) {
    FaultInjectionEnv env;
    env.set_torn_write_bytes(7);
    SnapshotOptions options;
    options.env = &env;
    ASSERT_TRUE(SaveCatalog(v1, snap, options).ok());
    ASSERT_EQ(env.op_count(), n_first) << "schedule must be deterministic";
    env.CrashAtOp(n_first + k);
    // The re-save usually fails; a cut during best-effort GC is invisible
    // to the caller (the new snapshot is already durable by then) — the
    // recovery invariant below is the contract either way.
    (void)SaveCatalog(v2, snap, options);

    for (const ReplayScenario& scenario : Scenarios(k)) {
      const std::string dir = FreshDir(
          "sc_" + std::to_string(k) + "_" + scenario.tag);
      ASSERT_TRUE(env.ReplayDurableInto(snap, dir, scenario.mode,
                                        scenario.torn_seed)
                      .ok());
      const auto loaded = LoadCatalog(dir);
      ASSERT_TRUE(loaded.ok())
          << "crash point " << k << " (" << scenario.tag
          << "): snapshot unloadable: " << loaded.status();
      const auto names = loaded->Names();
      const bool is_old = names == v1.Names();
      const bool is_new = names == v2.Names();
      ASSERT_TRUE(is_old || is_new)
          << "crash point " << k << " (" << scenario.tag
          << "): mixed relation set";
      const std::string marker =
          loaded->GetShared("R").value()->row(0)[0].AsString();
      EXPECT_EQ(marker, is_old ? "one" : "two")
          << "crash point " << k << " (" << scenario.tag
          << "): relation set and contents disagree — mixed snapshot";
      recovered_old += is_old ? 1 : 0;
      recovered_new += is_new ? 1 : 0;
      // LoadCatalog swept every staging leftover the cut stranded.
      const auto remaining = DefaultEnv()->ListDirectory(dir);
      ASSERT_TRUE(remaining.ok());
      for (const std::string& file : *remaining) {
        EXPECT_FALSE(file.size() > 4 &&
                     file.compare(file.size() - 4, 4, ".tmp") == 0)
            << "crash point " << k << " (" << scenario.tag
            << "): stale staging file survived the load: " << file;
      }
    }
  }
  EXPECT_GT(recovered_old, 0u);
  EXPECT_GT(recovered_new, 0u);
}

TEST(CrashRecoveryTest, EveryTruncatedPrefixImageFailsTyped) {
  const auto store = core::MakeRelationStore(MarkerRelation("one", 4));
  const std::string dir = FreshDir("prefix");
  const std::string path = dir + "/full.jimc";
  ASSERT_TRUE(WriteStore(*store, path).ok());
  Env& env = *DefaultEnv();
  const auto bytes = env.ReadFileToString(path);
  ASSERT_TRUE(bytes.ok());

  const std::string prefix_path = dir + "/prefix.jimc";
  for (size_t length = 0; length < bytes->size(); ++length) {
    ASSERT_TRUE(
        WriteFileAtomically(env, prefix_path, bytes->substr(0, length))
            .ok());
    const auto opened = MappedTupleStore::Open(prefix_path);
    ASSERT_FALSE(opened.ok()) << "prefix of " << length << " bytes opened";
    EXPECT_EQ(opened.status().code(), util::StatusCode::kInvalidArgument)
        << "prefix " << length << ": " << opened.status();
    EXPECT_FALSE(opened.status().message().empty());
  }
  // The full image still round-trips (the loop above did not luck into
  // rejecting everything for a trivial reason).
  ASSERT_TRUE(WriteFileAtomically(env, prefix_path, *bytes).ok());
  EXPECT_TRUE(MappedTupleStore::Open(prefix_path).ok());
}

TEST(CrashRecoveryTest, MmapRefusalDegradesToHeapReaderWithFullParity) {
  const auto original = core::MakeRelationStore(MarkerRelation("one", 6));
  const std::string dir = FreshDir("degrade");
  const std::string path = dir + "/store.jimc";
  ASSERT_TRUE(WriteStore(*original, path).ok());

  const auto mapped = MappedTupleStore::Open(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status();
  EXPECT_TRUE((*mapped)->zero_copy());

  FaultInjectionEnv refusing;
  refusing.set_refuse_mmap(true);
  const auto heap = MappedTupleStore::Open(path, &refusing);
  ASSERT_TRUE(heap.ok())
      << "mmap refusal must degrade, not fail: " << heap.status();
  EXPECT_FALSE((*heap)->zero_copy());

  // Full parity: identity, every cell's code and value, invariants, and the
  // engine's read path (predicate evaluation over codes).
  ASSERT_TRUE((*heap)->schema() == (*mapped)->schema());
  EXPECT_EQ((*heap)->name(), (*mapped)->name());
  ASSERT_EQ((*heap)->num_tuples(), (*mapped)->num_tuples());
  for (size_t t = 0; t < (*mapped)->num_tuples(); ++t) {
    for (size_t a = 0; a < (*mapped)->num_attributes(); ++a) {
      EXPECT_EQ((*heap)->code(t, a), (*mapped)->code(t, a))
          << "(" << t << "," << a << ")";
      EXPECT_EQ((*heap)->DecodeValue(t, a).ToString(),
                (*mapped)->DecodeValue(t, a).ToString())
          << "(" << t << "," << a << ")";
    }
  }
  (*heap)->CheckInvariants();
  const auto predicate =
      core::JoinPredicate::Parse((*mapped)->schema(), "m = x");
  ASSERT_TRUE(predicate.ok()) << predicate.status();
  EXPECT_TRUE(predicate->SelectedRows(**heap) ==
              predicate->SelectedRows(**mapped));
}

TEST(CrashRecoveryTest, PlantedStaleTmpIsIgnoredByLoadThenCollected) {
  rel::Catalog catalog;
  rel::Relation r{"R", rel::Schema::FromNames({"x"})};
  r.AddRowUnchecked({Value("live")});
  ASSERT_TRUE(catalog.Add(std::move(r)).ok());
  const std::string dir = FreshDir("stale_tmp");
  ASSERT_TRUE(SaveCatalog(catalog, dir).ok());

  Env& env = *DefaultEnv();
  const auto plant = [&env, &dir](const std::string& name) {
    auto file = env.NewWritableFile(dir + "/" + name);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append("crashed-save junk").ok());
    ASSERT_TRUE((*file)->Close().ok());
  };
  plant("R.g9.jimc.tmp");        // stranded relation staging file
  plant("catalog.jimm.tmp");     // stranded manifest staging file
  plant("unrelated.txt.tmp");    // NOT a recognized artifact — must stay

  const auto loaded = LoadCatalog(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->GetShared("R").value()->row(0)[0].AsString(), "live");
  // Recognized staging orphans were ignored by the load and then swept;
  // the GC never touches files it cannot attribute to a crashed save.
  EXPECT_FALSE(std::filesystem::exists(dir + "/R.g9.jimc.tmp"));
  EXPECT_FALSE(std::filesystem::exists(dir + "/catalog.jimm.tmp"));
  EXPECT_TRUE(std::filesystem::exists(dir + "/unrelated.txt.tmp"));
}

TEST(CrashRecoveryTest, TransientFaultsRetryToSuccessInWriteStore) {
  const auto store = core::MakeRelationStore(MarkerRelation("one", 3));
  FaultInjectionEnv fault;
  // A MetricsEnv between the writer and the fault schedule turns "did the
  // write retry" into an exact count, independent of the injectable clock.
  MetricsEnv env(&fault);
  StoreWriterOptions options;
  options.env = &env;
  // Fault the first append of the store image (create=0, append=1).
  fault.FailAtOp(1, util::UnavailableError("injected EAGAIN"));
  const util::Status written = WriteStore(*store, "vroot/r.jimc", options);
  ASSERT_TRUE(written.ok()) << written;
  EXPECT_EQ(fault.sleeps_recorded(), 1u);
  EXPECT_EQ(env.counts().sleeps, 1u);     // exactly one backoff retry
  EXPECT_GE(env.counts().failures, 1u);   // the faulted append was counted
  const auto reopened = OpenStore("vroot/r.jimc", &env);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ((*reopened)->DecodeValue(0, 0).AsString(), "one");
}

TEST(CrashRecoveryTest, TransientFaultsRetryToSuccessInSaveCatalog) {
  rel::Catalog catalog;
  rel::Relation r{"R", rel::Schema::FromNames({"x"})};
  r.AddRowUnchecked({Value("one")});
  ASSERT_TRUE(catalog.Add(std::move(r)).ok());
  FaultInjectionEnv env;
  SnapshotOptions options;
  options.env = &env;
  // Fault the creation of the first relation's staging file (mkdir=0,
  // generation listing=1, create=2).
  env.FailAtOp(2, util::UnavailableError("injected EMFILE"));
  ASSERT_TRUE(SaveCatalog(catalog, "vroot/snap", options).ok());
  EXPECT_EQ(env.sleeps_recorded(), 1u);
  const auto loaded = LoadCatalog("vroot/snap", options);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->GetShared("R").value()->row(0)[0].AsString(), "one");
}

TEST(CrashRecoveryTest, NonTransientWriteErrorsSurfaceTypedWithoutRetry) {
  const auto store = core::MakeRelationStore(MarkerRelation("one", 3));
  FaultInjectionEnv env;
  StoreWriterOptions options;
  options.env = &env;
  env.FailAtOp(1, util::ResourceExhaustedError(
                      "cannot write: no space left on device (errno 28)"));
  const util::Status written = WriteStore(*store, "vroot/full.jimc", options);
  ASSERT_FALSE(written.ok());
  EXPECT_EQ(written.code(), util::StatusCode::kResourceExhausted);
  EXPECT_NE(written.message().find("errno"), std::string::npos);
  EXPECT_EQ(env.sleeps_recorded(), 0u);
  // The failed write cleaned its staging file out of the namespace.
  EXPECT_FALSE(env.FileSize("vroot/full.jimc.tmp").ok());
  EXPECT_FALSE(env.FileSize("vroot/full.jimc").ok());
}

}  // namespace
}  // namespace jim::storage
