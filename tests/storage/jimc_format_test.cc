// The JIMC on-disk format: write → map round trips preserve everything the
// TupleStore contract promises, and every validation branch of
// MappedTupleStore::Open turns corruption into a typed error (the ASAN stage
// runs this suite, so "no UB on corrupt input" is machine-checked too).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/tuple_store.h"
#include "relational/dictionary.h"
#include "relational/relation.h"
#include "storage/format.h"
#include "storage/mapped_store.h"
#include "storage/store_writer.h"
#include "util/status.h"

namespace jim::storage {
namespace {

using rel::Value;

std::string TestPath(const std::string& name) {
  return ::testing::TempDir() + "jimc_format_" + name + ".jimc";
}

/// A relation hitting every value shape: all three types, NULLs, NaN,
/// duplicate values across columns, empty and separator-embedding strings.
std::shared_ptr<const rel::Relation> MixedRelation() {
  rel::Schema schema;
  schema.AddAttribute({"i", rel::ValueType::kInt64, ""});
  schema.AddAttribute({"d", rel::ValueType::kDouble, ""});
  schema.AddAttribute({"s", rel::ValueType::kString, "Q"});
  schema.AddAttribute({"t", rel::ValueType::kString, ""});
  rel::Relation relation{"mixed", schema};
  relation.AddRowUnchecked(
      {Value(int64_t{7}), Value(1.5), Value("x"), Value("x")});
  relation.AddRowUnchecked({Value(int64_t{7}), Value(std::nan("")),
                            Value(""), Value("a,b\tc")});
  relation.AddRowUnchecked({Value::Null(), Value(std::nan("")),
                            Value("x"), Value::Null()});
  relation.AddRowUnchecked({Value(int64_t{-3}), Value(1.5),
                            Value("a,b\tc"), Value("x")});
  return std::make_shared<const rel::Relation>(std::move(relation));
}

TEST(JimcFormatTest, RoundTripPreservesContract) {
  const auto relation = MixedRelation();
  const auto original = core::MakeRelationStore(relation);
  const std::string path = TestPath("round_trip");
  ASSERT_TRUE(WriteStore(*original, path).ok());

  const auto opened = MappedTupleStore::Open(path);
  ASSERT_TRUE(opened.ok()) << opened.status();
  const auto& mapped = **opened;
  EXPECT_EQ(mapped.name(), "mixed");
  EXPECT_TRUE(mapped.schema() == original->schema());
  ASSERT_EQ(mapped.num_tuples(), original->num_tuples());
  ASSERT_EQ(mapped.num_attributes(), original->num_attributes());

  const size_t n = original->num_tuples();
  const size_t columns = original->num_attributes();
  for (size_t t = 0; t < n; ++t) {
    for (size_t a = 0; a < columns; ++a) {
      const Value original_value = original->DecodeValue(t, a);
      const Value mapped_value = mapped.DecodeValue(t, a);
      EXPECT_EQ(original_value.is_null(), mapped_value.is_null());
      EXPECT_EQ(original_value.type(), mapped_value.type());
      if (!original_value.is_null()) {
        // NaN never Equals; compare renderings instead (bit pattern holds).
        EXPECT_EQ(original_value.ToString(), mapped_value.ToString())
            << "cell (" << t << ", " << a << ")";
      }
      EXPECT_EQ(mapped.code(t, a) == rel::kNullCode,
                original->code(t, a) == rel::kNullCode);
    }
  }
  // Codes are renumbered, but the equality *pattern* — all the engine reads
  // — must match cell for cell.
  std::vector<uint32_t> original_row(columns), mapped_row(columns);
  for (size_t t = 0; t < n; ++t) {
    mapped.TupleCodes(t, mapped_row.data());
    for (size_t a = 0; a < columns; ++a) {
      EXPECT_EQ(mapped_row[a], mapped.code(t, a));
    }
    for (size_t u = 0; u < n; ++u) {
      for (size_t a = 0; a < columns; ++a) {
        for (size_t b = 0; b < columns; ++b) {
          EXPECT_EQ(original->code(t, a) == original->code(u, b),
                    mapped.code(t, a) == mapped.code(u, b))
              << "(" << t << "," << a << ") vs (" << u << "," << b << ")";
        }
      }
    }
  }
  EXPECT_GT(mapped.file_bytes(), kHeaderBytes);
  EXPECT_GT(mapped.shared_dictionary_size(), 0u);
}

TEST(JimcFormatTest, SliceWritesJustThoseTuples) {
  const auto relation = MixedRelation();
  const auto original = core::MakeRelationStore(relation);
  const std::string path = TestPath("slice");
  StoreWriterOptions options;
  options.first_tuple = 1;
  options.num_tuples = 2;
  options.name = "slice";
  ASSERT_TRUE(WriteStore(*original, path, options).ok());
  const auto opened = MappedTupleStore::Open(path);
  ASSERT_TRUE(opened.ok()) << opened.status();
  EXPECT_EQ((*opened)->name(), "slice");
  ASSERT_EQ((*opened)->num_tuples(), 2u);
  for (size_t t = 0; t < 2; ++t) {
    for (size_t a = 0; a < original->num_attributes(); ++a) {
      const Value expect = original->DecodeValue(t + 1, a);
      const Value got = (*opened)->DecodeValue(t, a);
      EXPECT_EQ(expect.is_null(), got.is_null());
      if (!expect.is_null()) {
        EXPECT_EQ(expect.ToString(), got.ToString());
      }
    }
  }
}

TEST(JimcFormatTest, SliceBeyondEndIsOutOfRange) {
  const auto original = core::MakeRelationStore(MixedRelation());
  StoreWriterOptions options;
  options.first_tuple = 99;
  const util::Status status =
      WriteStore(*original, TestPath("oob"), options);
  EXPECT_EQ(status.code(), util::StatusCode::kOutOfRange);
}

TEST(JimcFormatTest, EmptySliceRoundTrips) {
  const auto original = core::MakeRelationStore(MixedRelation());
  const std::string path = TestPath("empty");
  StoreWriterOptions options;
  options.num_tuples = 0;
  ASSERT_TRUE(WriteStore(*original, path, options).ok());
  const auto opened = MappedTupleStore::Open(path);
  ASSERT_TRUE(opened.ok()) << opened.status();
  EXPECT_EQ((*opened)->num_tuples(), 0u);
  EXPECT_TRUE((*opened)->schema() == original->schema());
}

// ---------------------------------------------------------------------------
// Corruption matrix. FileImage reads a valid file, mutates bytes, patches
// checksums where the mutation is *below* the checksum (so the deeper
// validation branch is the one that fires), and expects a typed error.
// ---------------------------------------------------------------------------

class FileImage {
 public:
  explicit FileImage(const std::string& path) : path_(path) {
    std::ifstream in(path, std::ios::binary);
    bytes_.assign(std::istreambuf_iterator<char>(in),
                  std::istreambuf_iterator<char>());
  }

  size_t size() const { return bytes_.size(); }

  uint32_t ReadU32(size_t offset) const {
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<uint8_t>(bytes_[offset + i]))
           << (8 * i);
    }
    return v;
  }
  uint64_t ReadU64(size_t offset) const {
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<uint8_t>(bytes_[offset + i]))
           << (8 * i);
    }
    return v;
  }
  void WriteU32(size_t offset, uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      bytes_[offset + i] = static_cast<char>((v >> (8 * i)) & 0xFF);
    }
  }
  void WriteU64(size_t offset, uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      bytes_[offset + i] = static_cast<char>((v >> (8 * i)) & 0xFF);
    }
  }
  void WriteByte(size_t offset, uint8_t v) {
    bytes_[offset] = static_cast<char>(v);
  }

  /// Byte offset of section-table entry `i`.
  size_t EntryOffset(size_t i) const {
    return kHeaderBytes + i * kSectionEntryBytes;
  }

  /// Index of the table entry matching (id, column); -1 if absent.
  int FindSection(SectionId id, uint32_t column) const {
    const size_t sections = ReadU32(20);
    for (size_t i = 0; i < sections; ++i) {
      const size_t entry = EntryOffset(i);
      if (ReadU32(entry) == static_cast<uint32_t>(id) &&
          ReadU32(entry + 4) == column) {
        return static_cast<int>(i);
      }
    }
    return -1;
  }

  size_t SectionPayloadOffset(int i) const {
    return static_cast<size_t>(ReadU64(EntryOffset(static_cast<size_t>(i)) + 8));
  }
  size_t SectionLength(int i) const {
    return static_cast<size_t>(
        ReadU64(EntryOffset(static_cast<size_t>(i)) + 16));
  }

  /// Recomputes entry i's checksum from its (possibly mutated) payload.
  void FixChecksum(int i) {
    const size_t entry = EntryOffset(static_cast<size_t>(i));
    const uint64_t checksum =
        Fnv1a64(bytes_.data() + SectionPayloadOffset(i), SectionLength(i));
    WriteU64(entry + 24, checksum);
  }

  void Truncate(size_t new_size) { bytes_.resize(new_size); }

  void Save() const {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(bytes_.data(), static_cast<std::streamsize>(bytes_.size()));
  }

 private:
  std::string path_;
  std::vector<char> bytes_;
};

/// Writes a fresh valid file, applies `mutate`, and asserts Open fails with
/// kInvalidArgument and a message containing `expect_substring`.
void ExpectCorruption(const std::string& tag,
                      const std::function<void(FileImage&)>& mutate,
                      const std::string& expect_substring) {
  const std::string path = TestPath("corrupt_" + tag);
  const auto original = core::MakeRelationStore(MixedRelation());
  ASSERT_TRUE(WriteStore(*original, path).ok());
  FileImage image(path);
  mutate(image);
  image.Save();
  const auto opened = MappedTupleStore::Open(path);
  ASSERT_FALSE(opened.ok()) << tag << ": corruption went undetected";
  EXPECT_EQ(opened.status().code(), util::StatusCode::kInvalidArgument)
      << tag << ": " << opened.status();
  EXPECT_NE(opened.status().message().find(expect_substring),
            std::string::npos)
      << tag << ": got '" << opened.status().message() << "', expected it to "
      << "mention '" << expect_substring << "'";
}

TEST(JimcCorruptionTest, MissingFileIsNotFound) {
  const auto opened = MappedTupleStore::Open(TestPath("never_written"));
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), util::StatusCode::kNotFound);
}

TEST(JimcCorruptionTest, EmptyAndTinyFiles) {
  ExpectCorruption("tiny", [](FileImage& f) { f.Truncate(17); },
                   "smaller than");
}

TEST(JimcCorruptionTest, BadMagic) {
  ExpectCorruption("magic", [](FileImage& f) { f.WriteU32(0, 0xDEADBEEF); },
                   "bad magic");
}

TEST(JimcCorruptionTest, UnsupportedVersion) {
  ExpectCorruption("version", [](FileImage& f) { f.WriteU32(4, 99); },
                   "unsupported format version");
}

TEST(JimcCorruptionTest, TruncatedFile) {
  ExpectCorruption("truncated",
                   [](FileImage& f) { f.Truncate(f.size() - 1); },
                   "truncated or over-long");
}

TEST(JimcCorruptionTest, ZeroAttributes) {
  ExpectCorruption("zero_attrs", [](FileImage& f) { f.WriteU32(16, 0); },
                   "zero attributes");
}

TEST(JimcCorruptionTest, SectionCountMismatch) {
  ExpectCorruption("section_count", [](FileImage& f) { f.WriteU32(20, 3); },
                   "sections");
}

TEST(JimcCorruptionTest, AbsurdTupleCount) {
  ExpectCorruption("tuple_count",
                   [](FileImage& f) { f.WriteU64(8, ~uint64_t{0} / 2); },
                   "cannot fit");
}

TEST(JimcCorruptionTest, DictionarySizeBeyondWhatPagesCouldDefine) {
  // The header is unchecksummed; a crafted shared_dict_size must be
  // rejected *before* the offset-table allocation it would size.
  ExpectCorruption("dict_size",
                   [](FileImage& f) {
                     f.WriteU64(24, f.size());  // passes the ≤ size_ check
                   },
                   "could define");
}

TEST(JimcCorruptionTest, SectionOutOfBounds) {
  ExpectCorruption("section_bounds",
                   [](FileImage& f) {
                     const int i = f.FindSection(SectionId::kName, kNoColumn);
                     ASSERT_GE(i, 0);
                     f.WriteU64(f.EntryOffset(static_cast<size_t>(i)) + 8,
                                f.size() + 8);
                   },
                   "falls outside");
}

TEST(JimcCorruptionTest, ChecksumMismatch) {
  ExpectCorruption("checksum",
                   [](FileImage& f) {
                     const int i = f.FindSection(SectionId::kCodes, 0);
                     ASSERT_GE(i, 0);
                     const size_t payload = f.SectionPayloadOffset(i);
                     f.WriteByte(payload, 0xAB);
                   },
                   "checksum mismatch");
}

TEST(JimcCorruptionTest, DuplicateSection) {
  // Retagging the name section as a second schema section trips the
  // duplicate check (section-table bytes are not under any checksum).
  ExpectCorruption("duplicate",
                   [](FileImage& f) {
                     const int i = f.FindSection(SectionId::kName, kNoColumn);
                     ASSERT_GE(i, 0);
                     f.WriteU32(f.EntryOffset(static_cast<size_t>(i)),
                                static_cast<uint32_t>(SectionId::kSchema));
                   },
                   "duplicate schema section");
}

TEST(JimcCorruptionTest, UnknownSectionId) {
  ExpectCorruption("unknown_id",
                   [](FileImage& f) {
                     const int i = f.FindSection(SectionId::kName, kNoColumn);
                     ASSERT_GE(i, 0);
                     f.WriteU32(f.EntryOffset(static_cast<size_t>(i)), 77);
                   },
                   "unknown section id");
}

TEST(JimcCorruptionTest, ColumnIndexOutOfRange) {
  ExpectCorruption("column_range",
                   [](FileImage& f) {
                     const int i = f.FindSection(SectionId::kCodes, 1);
                     ASSERT_GE(i, 0);
                     f.WriteU32(f.EntryOffset(static_cast<size_t>(i)) + 4,
                                1000);
                   },
                   "names column");
}

TEST(JimcCorruptionTest, SchemaAttributeCountMismatch) {
  ExpectCorruption("schema_count",
                   [](FileImage& f) {
                     const int i =
                         f.FindSection(SectionId::kSchema, kNoColumn);
                     ASSERT_GE(i, 0);
                     f.WriteU32(f.SectionPayloadOffset(i), 2);
                     f.FixChecksum(i);
                   },
                   "header claims");
}

TEST(JimcCorruptionTest, DictionaryRemapOutOfRange) {
  ExpectCorruption("remap_range",
                   [](FileImage& f) {
                     const int i = f.FindSection(SectionId::kDictionary, 0);
                     ASSERT_GE(i, 0);
                     // First entry's shared code sits right after the count.
                     f.WriteU32(f.SectionPayloadOffset(i) + 4, 0xFFFFFF);
                     f.FixChecksum(i);
                   },
                   "shared code");
}

TEST(JimcCorruptionTest, DictionaryTrailingBytes) {
  ExpectCorruption("trailing",
                   [](FileImage& f) {
                     const int i = f.FindSection(SectionId::kDictionary, 0);
                     ASSERT_GE(i, 0);
                     const uint32_t entries =
                         f.ReadU32(f.SectionPayloadOffset(i));
                     ASSERT_GT(entries, 0u);
                     f.WriteU32(f.SectionPayloadOffset(i), entries - 1);
                     f.FixChecksum(i);
                   },
                   "trailing bytes");
}

TEST(JimcCorruptionTest, UnknownValueTag) {
  ExpectCorruption("value_tag",
                   [](FileImage& f) {
                     const int i = f.FindSection(SectionId::kDictionary, 0);
                     ASSERT_GE(i, 0);
                     // count u32, shared u32, then the first record's tag.
                     f.WriteByte(f.SectionPayloadOffset(i) + 8, 42);
                     f.FixChecksum(i);
                   },
                   "unknown value tag");
}

TEST(JimcCorruptionTest, StringLengthRunsPastSection) {
  ExpectCorruption(
      "string_length",
      [](FileImage& f) {
        // Column 2 ("s") is a string column; its first record is
        // count u32 | shared u32 | tag u8 | length u32 | bytes.
        const int i = f.FindSection(SectionId::kDictionary, 2);
        ASSERT_GE(i, 0);
        f.WriteU32(f.SectionPayloadOffset(i) + 9, 0x00FFFFFF);
        f.FixChecksum(i);
      },
      "truncated");
}

TEST(JimcCorruptionTest, CodeArrayWrongLength) {
  ExpectCorruption("codes_length",
                   [](FileImage& f) {
                     const int i = f.FindSection(SectionId::kCodes, 0);
                     ASSERT_GE(i, 0);
                     const size_t entry =
                         f.EntryOffset(static_cast<size_t>(i));
                     f.WriteU64(entry + 16, f.SectionLength(i) - 4);
                     f.FixChecksum(i);
                   },
                   "expected");
}

TEST(JimcCorruptionTest, CodeArrayMisaligned) {
  ExpectCorruption("codes_misaligned",
                   [](FileImage& f) {
                     const int i = f.FindSection(SectionId::kCodes, 0);
                     ASSERT_GE(i, 0);
                     const size_t entry =
                         f.EntryOffset(static_cast<size_t>(i));
                     f.WriteU64(entry + 8, f.SectionPayloadOffset(i) + 2);
                     f.FixChecksum(i);
                   },
                   "misaligned");
}

TEST(JimcCorruptionTest, CodeOutOfDictionaryRange) {
  ExpectCorruption("code_range",
                   [](FileImage& f) {
                     const int i = f.FindSection(SectionId::kCodes, 0);
                     ASSERT_GE(i, 0);
                     f.WriteU32(f.SectionPayloadOffset(i), 0x7FFFFFFF);
                     f.FixChecksum(i);
                   },
                   "outside the shared dictionary");
}

TEST(JimcCorruptionTest, SharedCodeNeverDefined) {
  ExpectCorruption(
      "undefined_code",
      [](FileImage& f) {
        // Remap a column-0 dictionary entry onto shared code 0; whichever
        // code it used to define is now orphaned. MixedRelation has more
        // than one distinct value in column 0, so an orphan must exist.
        const int i = f.FindSection(SectionId::kDictionary, 0);
        ASSERT_GE(i, 0);
        const size_t payload = f.SectionPayloadOffset(i);
        const uint32_t entries = f.ReadU32(payload);
        ASSERT_GE(entries, 2u);
        // Entry 0 is {shared u32, tag u8 = int64, value u64}: 13 bytes.
        const uint32_t first = f.ReadU32(payload + 4);
        f.WriteU32(payload + 4 + 13, first);
        f.FixChecksum(i);
      },
      "never defined");
}

}  // namespace
}  // namespace jim::storage
