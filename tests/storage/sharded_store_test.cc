// ShardedTupleStore: prefix-sum routing, cross-shard code unification, and
// the TupleStore contract (code equality ⇔ strict Value equality) over
// compositions of mapped and in-memory shards.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "core/tuple_store.h"
#include "exec/thread_pool.h"
#include "relational/dictionary.h"
#include "relational/relation.h"
#include "storage/mapped_store.h"
#include "storage/sharded_store.h"
#include "storage/store_writer.h"

namespace jim::storage {
namespace {

using rel::Value;

std::string TestPath(const std::string& name) {
  return ::testing::TempDir() + "sharded_" + name + ".jimc";
}

std::shared_ptr<const rel::Relation> MakeRelation(
    const std::string& name, std::vector<rel::Tuple> rows) {
  rel::Relation relation{name, rel::Schema::FromNames({"a", "b"})};
  for (auto& row : rows) relation.AddRowUnchecked(std::move(row));
  return std::make_shared<const rel::Relation>(std::move(relation));
}

/// Splits `store` into `shards` contiguous mapped slices via the writer.
std::vector<std::shared_ptr<const core::TupleStore>> MappedSlices(
    const core::TupleStore& store, size_t shards, const std::string& tag) {
  std::vector<std::shared_ptr<const core::TupleStore>> slices;
  const size_t n = store.num_tuples();
  for (size_t s = 0; s < shards; ++s) {
    StoreWriterOptions options;
    options.first_tuple = n * s / shards;
    options.num_tuples = n * (s + 1) / shards - options.first_tuple;
    const std::string path = TestPath(tag + "_" + std::to_string(s));
    EXPECT_TRUE(WriteStore(store, path, options).ok());
    auto opened = OpenStore(path);
    EXPECT_TRUE(opened.ok()) << opened.status();
    slices.push_back(*std::move(opened));
  }
  return slices;
}

void ExpectSameContract(const core::TupleStore& expected,
                        const core::TupleStore& actual) {
  ASSERT_EQ(expected.num_tuples(), actual.num_tuples());
  ASSERT_TRUE(expected.schema() == actual.schema());
  const size_t n = expected.num_tuples();
  const size_t columns = expected.num_attributes();
  for (size_t t = 0; t < n; ++t) {
    for (size_t a = 0; a < columns; ++a) {
      const Value expect = expected.DecodeValue(t, a);
      const Value got = actual.DecodeValue(t, a);
      EXPECT_EQ(expect.is_null(), got.is_null()) << t << "," << a;
      if (!expect.is_null()) {
        EXPECT_EQ(expect.ToString(), got.ToString()) << t << "," << a;
      }
      EXPECT_EQ(expected.code(t, a) == rel::kNullCode,
                actual.code(t, a) == rel::kNullCode);
      for (size_t u = 0; u < n; ++u) {
        for (size_t b = 0; b < columns; ++b) {
          EXPECT_EQ(expected.code(t, a) == expected.code(u, b),
                    actual.code(t, a) == actual.code(u, b))
              << "(" << t << "," << a << ") vs (" << u << "," << b << ")";
        }
      }
    }
  }
}

TEST(ShardedTupleStoreTest, ComposesMappedSlicesBackIntoTheOriginal) {
  const auto relation = MakeRelation(
      "r", {{Value(int64_t{1}), Value("x")},
            {Value(int64_t{2}), Value("y")},
            {Value::Null(), Value("x")},
            {Value(int64_t{1}), Value::Null()},
            {Value(int64_t{3}), Value("z")},
            {Value(int64_t{2}), Value("2")}});
  const auto original = core::MakeRelationStore(relation);
  for (size_t shards : {1u, 2u, 3u, 4u}) {
    auto slices =
        MappedSlices(*original, shards, "compose" + std::to_string(shards));
    const auto sharded =
        ShardedTupleStore::Create("r", std::move(slices));
    ASSERT_TRUE(sharded.ok()) << sharded.status();
    EXPECT_EQ((*sharded)->num_shards(), shards);
    ExpectSameContract(*original, **sharded);
  }
}

TEST(ShardedTupleStoreTest, RoutingAndOffsets) {
  const auto relation = MakeRelation("r", {{Value(int64_t{1}), Value("a")},
                                           {Value(int64_t{2}), Value("b")},
                                           {Value(int64_t{3}), Value("c")}});
  const auto original = core::MakeRelationStore(relation);
  // Slice boundaries 0|1..2 plus an empty middle shard: routing must skip
  // zero-tuple shards without ever asking them for a tuple.
  StoreWriterOptions first;
  first.num_tuples = 1;
  StoreWriterOptions empty;
  empty.first_tuple = 1;
  empty.num_tuples = 0;
  StoreWriterOptions rest;
  rest.first_tuple = 1;
  ASSERT_TRUE(WriteStore(*original, TestPath("route_0"), first).ok());
  ASSERT_TRUE(WriteStore(*original, TestPath("route_1"), empty).ok());
  ASSERT_TRUE(WriteStore(*original, TestPath("route_2"), rest).ok());
  std::vector<std::shared_ptr<const core::TupleStore>> slices;
  for (int s = 0; s < 3; ++s) {
    auto opened = OpenStore(TestPath("route_" + std::to_string(s)));
    ASSERT_TRUE(opened.ok()) << opened.status();
    slices.push_back(*std::move(opened));
  }
  const auto sharded = ShardedTupleStore::Create("r", std::move(slices));
  ASSERT_TRUE(sharded.ok()) << sharded.status();
  EXPECT_EQ((*sharded)->offsets(), (std::vector<size_t>{0, 1, 1, 3}));
  EXPECT_EQ((*sharded)->Locate(0), (std::pair<size_t, size_t>{0, 0}));
  EXPECT_EQ((*sharded)->Locate(1), (std::pair<size_t, size_t>{2, 0}));
  EXPECT_EQ((*sharded)->Locate(2), (std::pair<size_t, size_t>{2, 1}));
  ExpectSameContract(*original, **sharded);
}

TEST(ShardedTupleStoreTest, CrossShardEqualityMatchesValueEquality) {
  // "x" and 7 recur across shards (and across columns); codes must unify.
  // The string "7" must NOT unify with the integer 7.
  const auto left = core::MakeRelationStore(
      MakeRelation("l", {{Value(int64_t{7}), Value("x")}}));
  const auto right = core::MakeRelationStore(
      MakeRelation("r", {{Value("x"), Value("7")},
                         {Value(int64_t{7}), Value(int64_t{7})}}));
  const auto sharded = ShardedTupleStore::Create("lr", {left, right});
  ASSERT_TRUE(sharded.ok()) << sharded.status();
  const auto& store = **sharded;
  EXPECT_EQ(store.num_tuples(), 3u);
  EXPECT_EQ(store.code(0, 0), store.code(2, 0));  // 7 across shards
  EXPECT_EQ(store.code(0, 0), store.code(2, 1));  // 7 across shard+column
  EXPECT_EQ(store.code(0, 1), store.code(1, 0));  // "x" across shards
  EXPECT_NE(store.code(1, 1), store.code(2, 0));  // "7" vs 7
  EXPECT_EQ(store.composite_dictionary_size(), 3u);  // {7, "x", "7"}
}

TEST(ShardedTupleStoreTest, NaNStaysUnequalAcrossShards) {
  const auto a = core::MakeRelationStore(MakeRelation(
      "a", {{Value(std::nan("")), Value(1.5)}}));
  const auto b = core::MakeRelationStore(MakeRelation(
      "b", {{Value(std::nan("")), Value(1.5)}}));
  const auto sharded = ShardedTupleStore::Create("ab", {a, b});
  ASSERT_TRUE(sharded.ok()) << sharded.status();
  const auto& store = **sharded;
  EXPECT_NE(store.code(0, 0), store.code(1, 0));  // NaN ≠ NaN across shards
  EXPECT_EQ(store.code(0, 1), store.code(1, 1));  // 1.5 == 1.5
}

TEST(ShardedTupleStoreTest, ParallelScanIsBitwiseIdentical) {
  std::vector<rel::Tuple> rows;
  for (int64_t i = 0; i < 400; ++i) {
    rows.push_back({Value(i % 17), Value("s" + std::to_string(i % 23))});
  }
  const auto original = core::MakeRelationStore(MakeRelation("r", rows));
  auto serial_slices = MappedSlices(*original, 4, "par_serial");
  auto parallel_slices = MappedSlices(*original, 4, "par_pool");
  const auto serial =
      ShardedTupleStore::Create("r", std::move(serial_slices), nullptr);
  ASSERT_TRUE(serial.ok());
  exec::ThreadPool pool(4);
  const auto parallel =
      ShardedTupleStore::Create("r", std::move(parallel_slices), &pool);
  ASSERT_TRUE(parallel.ok());
  ASSERT_EQ((*serial)->num_tuples(), (*parallel)->num_tuples());
  for (size_t t = 0; t < (*serial)->num_tuples(); ++t) {
    for (size_t a = 0; a < (*serial)->num_attributes(); ++a) {
      EXPECT_EQ((*serial)->code(t, a), (*parallel)->code(t, a));
    }
  }
  EXPECT_EQ((*serial)->composite_dictionary_size(),
            (*parallel)->composite_dictionary_size());
}

TEST(ShardedTupleStoreTest, RejectsEmptyAndMismatchedShards) {
  EXPECT_EQ(ShardedTupleStore::Create("none", {}).status().code(),
            util::StatusCode::kInvalidArgument);
  const auto two_columns = core::MakeRelationStore(
      MakeRelation("two", {{Value(int64_t{1}), Value("x")}}));
  rel::Relation other{"other", rel::Schema::FromNames({"a"})};
  other.AddRowUnchecked({Value(int64_t{1})});
  const auto one_column = core::MakeRelationStore(
      std::make_shared<const rel::Relation>(std::move(other)));
  const auto mismatched =
      ShardedTupleStore::Create("bad", {two_columns, one_column});
  ASSERT_FALSE(mismatched.ok());
  EXPECT_EQ(mismatched.status().code(), util::StatusCode::kInvalidArgument);
  const auto with_null = ShardedTupleStore::Create(
      "bad", {two_columns, nullptr});
  ASSERT_FALSE(with_null.ok());
  EXPECT_EQ(with_null.status().code(), util::StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace jim::storage
