// Randomized round-trip parity: an engine over a MappedTupleStore (and over
// a 4-shard ShardedTupleStore reassembled from slice files) must be
// indistinguishable from the in-memory store it was written from — identical
// class tables, byte-identical session transcripts across interaction modes
// and strategies, identical lookahead picks — at 1, 2, and 8 threads. This
// is the acceptance gate of the storage subsystem: persistence may never
// change an inference outcome, only where the bytes live.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/jim.h"
#include "exec/batch_runner.h"
#include "exec/thread_pool.h"
#include "query/universal_table.h"
#include "relational/catalog.h"
#include "storage/mapped_store.h"
#include "storage/sharded_store.h"
#include "storage/store_writer.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "workload/synthetic.h"
#include "workload/travel.h"
#include "util/check.h"

namespace jim::storage {
namespace {

// Parity suites run with the invariant auditor on (see util/check.h): every
// JIM_AUDIT checkpoint inside the engine re-derives its CheckInvariants
// contract while the parity assertions run, so a divergence is caught at
// the mutation that introduced it, not at the final transcript diff.
const bool kAuditInvariantsOn = [] {
  ::jim::util::SetAuditInvariants(true);
  return true;
}();

using core::ExactOracle;
using core::InferenceEngine;
using core::JoinPredicate;
using core::MakeStrategy;
using core::RunSession;
using core::SessionOptions;
using core::SessionResult;
using core::SessionResultToJson;

std::string TestPath(const std::string& name) {
  return ::testing::TempDir() + "mapped_parity_" + name + ".jimc";
}

/// The three lives of one instance: in memory, one mapped file, and four
/// mapped slice files behind a ShardedTupleStore.
struct StoreTriple {
  std::shared_ptr<const core::TupleStore> original;
  std::shared_ptr<const core::TupleStore> mapped;
  std::shared_ptr<const core::TupleStore> sharded;
};

StoreTriple MakeTriple(std::shared_ptr<const core::TupleStore> original,
                       const std::string& tag) {
  StoreTriple triple;
  triple.original = std::move(original);
  const std::string path = TestPath(tag);
  EXPECT_TRUE(WriteStore(*triple.original, path).ok());
  auto mapped = OpenStore(path);
  EXPECT_TRUE(mapped.ok()) << mapped.status();
  triple.mapped = *std::move(mapped);

  const size_t n = triple.original->num_tuples();
  std::vector<std::shared_ptr<const core::TupleStore>> shards;
  for (size_t s = 0; s < 4; ++s) {
    StoreWriterOptions options;
    options.first_tuple = n * s / 4;
    options.num_tuples = n * (s + 1) / 4 - options.first_tuple;
    const std::string shard_path =
        TestPath(tag + "_shard" + std::to_string(s));
    EXPECT_TRUE(WriteStore(*triple.original, shard_path, options).ok());
    auto opened = OpenStore(shard_path);
    EXPECT_TRUE(opened.ok()) << opened.status();
    shards.push_back(*std::move(opened));
  }
  auto sharded = ShardedTupleStore::Create(triple.original->name(),
                                           std::move(shards));
  EXPECT_TRUE(sharded.ok()) << sharded.status();
  triple.sharded = *std::move(sharded);
  return triple;
}

/// Class tables must agree *bitwise*: same partitions in the same order,
/// same member lists, same per-tuple class, same informative worklist.
void ExpectSameClasses(const InferenceEngine& expected,
                       const InferenceEngine& actual,
                       const std::string& context) {
  ASSERT_EQ(expected.num_classes(), actual.num_classes()) << context;
  for (size_t c = 0; c < expected.num_classes(); ++c) {
    EXPECT_EQ(expected.tuple_class(c).partition,
              actual.tuple_class(c).partition)
        << context << " class " << c;
    EXPECT_EQ(expected.tuple_class(c).tuple_indices,
              actual.tuple_class(c).tuple_indices)
        << context << " class " << c;
    EXPECT_EQ(expected.ClassKnowledge(c), actual.ClassKnowledge(c))
        << context << " class " << c;
  }
  for (size_t t = 0; t < expected.num_tuples(); ++t) {
    EXPECT_EQ(expected.class_of_tuple(t), actual.class_of_tuple(t))
        << context << " tuple " << t;
  }
  EXPECT_EQ(expected.InformativeClasses(), actual.InformativeClasses())
      << context;
}

std::string TranscriptJson(SessionResult result) {
  for (core::SessionStep& step : result.steps) step.micros = 0;
  result.total_seconds = 0;
  return SessionResultToJson(result);
}

TEST(MappedParityTest, ClassTablesIdenticalAtAnyThreadCount) {
  for (const uint64_t seed : {11u, 47u}) {
    util::Rng rng(seed);
    workload::SyntheticSpec spec;
    spec.num_attributes = 5 + seed % 2;
    spec.num_tuples = 300;
    spec.domain_size = 3;
    spec.goal_constraints = 2;
    const auto workload = workload::MakeSyntheticWorkload(spec, rng);
    const StoreTriple triple =
        MakeTriple(workload.store, "classes_" + std::to_string(seed));

    const InferenceEngine reference(triple.original, /*pool=*/nullptr);
    for (const size_t threads : {1u, 2u, 8u}) {
      exec::ThreadPool pool(threads);
      exec::ThreadPool* pool_ptr = threads > 1 ? &pool : nullptr;
      const InferenceEngine mapped(triple.mapped, pool_ptr);
      const InferenceEngine sharded(triple.sharded, pool_ptr);
      const std::string context = util::StrFormat(
          "seed=%zu threads=%zu", size_t{seed}, threads);
      ExpectSameClasses(reference, mapped, context + " mapped");
      ExpectSameClasses(reference, sharded, context + " sharded");
    }
  }
}

TEST(MappedParityTest, UniversalTableSurvivesTheRoundTrip) {
  // Both universal-table shapes: dense (factorized mixed-radix ids) and
  // sampled (explicit row-id draws) — the writer path from the factorized
  // table is what production save uses.
  util::Rng rng(7);
  const rel::Catalog catalog =
      workload::LargeTravelCatalog(/*num_flights=*/16, /*num_hotels=*/9,
                                   /*num_cities=*/4, /*num_airlines=*/3, rng);
  for (const size_t cap : {size_t{0}, size_t{100}}) {
    query::UniversalTableOptions options;
    options.sample_cap = cap;
    options.seed = 23;
    const auto table =
        query::UniversalTable::Build(catalog, {"Flights", "Hotels"}, options)
            .value();
    ASSERT_EQ(table.is_sampled(), cap != 0);
    const StoreTriple triple =
        MakeTriple(table.store(), "universal_" + std::to_string(cap));
    const auto goal =
        JoinPredicate::Parse(table.schema(), "Flights.To = Hotels.City")
            .value();
    const InferenceEngine reference(triple.original, nullptr);
    const InferenceEngine mapped(triple.mapped, nullptr);
    const InferenceEngine sharded(triple.sharded, nullptr);
    ExpectSameClasses(reference, mapped, "universal mapped");
    ExpectSameClasses(reference, sharded, "universal sharded");

    for (const auto* store :
         {&triple.original, &triple.mapped, &triple.sharded}) {
      auto strategy = MakeStrategy("lookahead-entropy", 3).value();
      ExactOracle oracle(goal);
      const SessionResult result =
          RunSession(*store, goal, *strategy, oracle, SessionOptions{});
      EXPECT_TRUE(result.identified_goal);
    }
  }
}

TEST(MappedParityTest, TranscriptsIdenticalAcrossModesStrategiesThreads) {
  util::Rng rng(301);
  workload::SyntheticSpec spec;
  spec.num_attributes = 5;
  spec.num_tuples = 160;
  spec.domain_size = 3;
  spec.goal_constraints = 2;
  const auto workload = workload::MakeSyntheticWorkload(spec, rng);
  const StoreTriple triple = MakeTriple(workload.store, "transcripts");

  for (const std::string& strategy_name :
       {std::string("random"), std::string("local-bottom-up"),
        std::string("lookahead-entropy")}) {
    for (int mode = 1; mode <= 4; ++mode) {
      SessionOptions session_options;
      session_options.mode = static_cast<core::InteractionMode>(mode);
      session_options.user_seed = 11 + static_cast<uint64_t>(mode);

      const auto run = [&](const std::shared_ptr<const core::TupleStore>&
                               store) {
        auto strategy = MakeStrategy(strategy_name, 5).value();
        ExactOracle oracle(workload.goal);
        return TranscriptJson(RunSession(store, workload.goal, *strategy,
                                         oracle, session_options));
      };
      const std::string reference = run(triple.original);
      EXPECT_EQ(reference, run(triple.mapped))
          << strategy_name << " mode " << mode << " (mapped)";
      EXPECT_EQ(reference, run(triple.sharded))
          << strategy_name << " mode " << mode << " (sharded)";
    }
  }
}

TEST(MappedParityTest, LookaheadPicksIdenticalAtAnyThreadCount) {
  util::Rng rng(88);
  workload::SyntheticSpec spec;
  spec.num_attributes = 6;
  spec.num_tuples = 250;
  spec.domain_size = 4;
  spec.goal_constraints = 2;
  const auto workload = workload::MakeSyntheticWorkload(spec, rng);
  const StoreTriple triple = MakeTriple(workload.store, "lookahead");

  const InferenceEngine reference(triple.original, nullptr);
  core::LookaheadStrategy serial_strategy(
      core::LookaheadStrategy::Objective::kEntropy);
  serial_strategy.set_thread_pool(nullptr);
  const size_t expected_pick = serial_strategy.PickClass(reference);

  for (const size_t threads : {1u, 2u, 8u}) {
    exec::ThreadPool pool(threads);
    for (const auto* store : {&triple.mapped, &triple.sharded}) {
      const InferenceEngine engine(*store, threads > 1 ? &pool : nullptr);
      core::LookaheadStrategy strategy(
          core::LookaheadStrategy::Objective::kEntropy);
      strategy.set_thread_pool(threads > 1 ? &pool : nullptr);
      EXPECT_EQ(strategy.PickClass(engine), expected_pick)
          << "threads=" << threads;
    }
  }
}

TEST(MappedParityTest, BatchSessionsRunOverOneSharedMapping) {
  // Many concurrent sessions, one read-only mapping: every session clones a
  // prototype engine built over the same MappedTupleStore, and the batch
  // output equals the serial in-memory reference job for job.
  util::Rng rng(19);
  workload::SyntheticSpec spec;
  spec.num_attributes = 5;
  spec.num_tuples = 200;
  spec.domain_size = 4;
  spec.goal_constraints = 2;
  const auto workload = workload::MakeSyntheticWorkload(spec, rng);
  const StoreTriple triple = MakeTriple(workload.store, "batch");

  const auto make_specs =
      [&](const std::shared_ptr<const InferenceEngine>& prototype) {
        std::vector<exec::SessionSpec> specs;
        for (const std::string& name :
             {std::string("random"), std::string("local-bottom-up"),
              std::string("lookahead-entropy")}) {
          for (uint64_t rep = 0; rep < 2; ++rep) {
            exec::SessionSpec spec(prototype, workload.goal);
            const uint64_t seed = 100 + rep;
            spec.make_strategy = [name, seed] {
              auto strategy = MakeStrategy(name, seed).value();
              // Pin lookahead scoring serial: the runner's pool drives the
              // fan-out, and nested pools are the two-pool pattern anyway.
              if (auto* lookahead = dynamic_cast<core::LookaheadStrategy*>(
                      strategy.get())) {
                lookahead->set_thread_pool(nullptr);
              }
              return strategy;
            };
            specs.push_back(std::move(spec));
          }
        }
        return specs;
      };

  const auto reference_prototype =
      std::make_shared<const InferenceEngine>(triple.original, nullptr);
  const exec::BatchSessionRunner serial_runner(nullptr);
  const auto reference_results =
      serial_runner.Run(make_specs(reference_prototype));

  exec::ThreadPool pool(4);
  const auto mapped_prototype =
      std::make_shared<const InferenceEngine>(triple.mapped, nullptr);
  const exec::BatchSessionRunner parallel_runner(&pool);
  const auto mapped_results = parallel_runner.Run(make_specs(mapped_prototype));

  ASSERT_EQ(reference_results.size(), mapped_results.size());
  for (size_t i = 0; i < reference_results.size(); ++i) {
    EXPECT_EQ(TranscriptJson(reference_results[i]),
              TranscriptJson(mapped_results[i]))
        << "job " << i;
  }
}

}  // namespace
}  // namespace jim::storage
