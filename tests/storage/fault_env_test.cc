// FaultInjectionEnv: the crash-simulation instrument itself. These tests pin
// the durability model (fsync watermarks, directory-entry barriers), the
// fault kinds (one-shot errors, power cuts, torn writes, short reads, mmap
// refusal), and the PosixEnv errno→Status taxonomy that retry and fallback
// decisions key on.

#include "storage/fault_env.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>

#include "storage/env.h"
#include "storage/metrics_env.h"
#include "util/status.h"

namespace jim::storage {
namespace {

std::string TestDir(const std::string& name) {
  return ::testing::TempDir() + "fault_env_" + name;
}

util::Status WriteThrough(Env& env, const std::string& path,
                          const std::string& contents, bool sync) {
  auto file = env.NewWritableFile(path);
  if (!file.ok()) return file.status();
  RETURN_IF_ERROR((*file)->Append(contents));
  if (sync) RETURN_IF_ERROR((*file)->Sync());
  return (*file)->Close();
}

TEST(FaultEnvTest, OperationsAreCountedAndLabeled) {
  FaultInjectionEnv env;
  ASSERT_TRUE(WriteThrough(env, "v/a.txt", "hello", /*sync=*/true).ok());
  // create, append, fsync, close — one countable operation each.
  ASSERT_EQ(env.op_count(), 4u);
  EXPECT_NE(env.schedule()[0].find("create"), std::string::npos);
  EXPECT_NE(env.schedule()[1].find("append"), std::string::npos);
  EXPECT_NE(env.schedule()[2].find("fsync"), std::string::npos);
  EXPECT_NE(env.schedule()[3].find("close"), std::string::npos);
}

TEST(FaultEnvTest, ModelFilesAreVirtualAndReadable) {
  FaultInjectionEnv env;
  ASSERT_TRUE(WriteThrough(env, "v/a.txt", "hello", /*sync=*/false).ok());
  const auto read = env.ReadFileToString("v/a.txt");
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ(*read, "hello");
  const auto size = env.FileSize("v/a.txt");
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 5u);
  const auto listed = env.ListDirectory("v");
  ASSERT_TRUE(listed.ok());
  ASSERT_EQ(listed->size(), 1u);
  EXPECT_EQ((*listed)[0], "a.txt");
  // Nothing real was written anywhere.
  const auto missing = DefaultEnv()->FileSize("v/a.txt");
  EXPECT_FALSE(missing.ok());
}

TEST(FaultEnvTest, FailAtOpIsOneShotAndRetryRecovers) {
  FaultInjectionEnv fault;
  // MetricsEnv in front of the fault schedule: the retry count is asserted
  // twice below — once from the injectable clock, once from the metrics
  // tally — so the two observability paths cross-check each other.
  MetricsEnv env(&fault);
  // Fault the append (op #1 of the atomic write: create=0, append=1).
  fault.FailAtOp(1, util::UnavailableError("injected EINTR"));
  RetryPolicy policy;
  const util::Status status = RetryWithBackoff(env, policy, [&] {
    return WriteFileAtomically(env, "v/b.txt", "payload");
  });
  ASSERT_TRUE(status.ok()) << status;
  // Exactly one backoff sleep, recorded through the injectable clock.
  EXPECT_EQ(fault.sleeps_recorded(), 1u);
  EXPECT_GT(fault.micros_slept(), 0u);
  // ... and mirrored by the decorator: one retry, one counted failure.
  EXPECT_EQ(env.counts().sleeps, 1u);
  EXPECT_EQ(env.counts().micros_slept, fault.micros_slept());
  EXPECT_GE(env.counts().failures, 1u);
  const auto read = env.ReadFileToString("v/b.txt");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "payload");
}

TEST(FaultEnvTest, RetryGivesUpAfterMaxAttempts) {
  FaultInjectionEnv env;
  // Each failed-at-create attempt burns exactly one operation, so three
  // armed faults at consecutive indices starve all three attempts.
  env.FailAtOp(0, util::UnavailableError("still busy"));
  env.FailAtOp(1, util::UnavailableError("still busy"));
  env.FailAtOp(2, util::UnavailableError("still busy"));
  RetryPolicy policy;
  const util::Status status = RetryWithBackoff(env, policy, [&] {
    return WriteFileAtomically(env, "v/c.txt", "payload");
  });
  EXPECT_EQ(status.code(), util::StatusCode::kUnavailable);
  EXPECT_EQ(env.sleeps_recorded(), 2u);  // max_attempts - 1 backoffs
}

TEST(FaultEnvTest, NonTransientErrorsAreNotRetried) {
  FaultInjectionEnv env;
  env.FailAtOp(0, util::ResourceExhaustedError("disk full (ENOSPC)"));
  RetryPolicy policy;
  const util::Status status = RetryWithBackoff(env, policy, [&] {
    return WriteFileAtomically(env, "v/d.txt", "payload");
  });
  EXPECT_EQ(status.code(), util::StatusCode::kResourceExhausted);
  EXPECT_EQ(env.sleeps_recorded(), 0u);
}

TEST(FaultEnvTest, CrashFreezesEverythingAfterTheCutPoint) {
  FaultInjectionEnv env;
  ASSERT_TRUE(WriteThrough(env, "v/pre.txt", "pre", /*sync=*/true).ok());
  env.CrashAtOp(env.op_count());
  const util::Status status = WriteThrough(env, "v/post.txt", "post",
                                           /*sync=*/true);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), util::StatusCode::kInternal);
  EXPECT_NE(status.message().find("simulated power loss"),
            std::string::npos);
  EXPECT_TRUE(env.dead());
  // Every later operation fails too — the process is gone.
  EXPECT_FALSE(env.ReadFileToString("v/pre.txt").ok());
  EXPECT_FALSE(env.RemoveFile("v/pre.txt").ok());
}

TEST(FaultEnvTest, DurabilityRequiresBothFsyncBarriers) {
  // Appended but never-synced data, and synced data whose directory entry
  // was never synced, both vanish in a strict power cut; the volatile view
  // (kMetadataFlushed) keeps the entries but still only synced *data*.
  FaultInjectionEnv env;
  ASSERT_TRUE(WriteThrough(env, "v/unsynced.txt", "gone", /*sync=*/false)
                  .ok());
  ASSERT_TRUE(WriteThrough(env, "v/synced.txt", "kept", /*sync=*/true).ok());
  // Only now is the *namespace* durable — for both entries.
  ASSERT_TRUE(env.SyncDirectory("v").ok());
  ASSERT_TRUE(WriteThrough(env, "v/late.txt", "lost-entry", /*sync=*/true)
                  .ok());  // entry never SyncDirectory'd

  const std::string strict = TestDir("strict");
  ASSERT_TRUE(env.ReplayDurableInto("v", strict,
                                    FaultInjectionEnv::ReplayMode::kStrict)
                  .ok());
  Env& real = *DefaultEnv();
  const auto kept = real.ReadFileToString(strict + "/synced.txt");
  ASSERT_TRUE(kept.ok()) << kept.status();
  EXPECT_EQ(*kept, "kept");
  const auto unsynced = real.ReadFileToString(strict + "/unsynced.txt");
  ASSERT_TRUE(unsynced.ok()) << unsynced.status();
  EXPECT_EQ(*unsynced, "");  // entry durable, data was never fsync'd
  EXPECT_FALSE(real.ReadFileToString(strict + "/late.txt").ok());

  const std::string flushed = TestDir("flushed");
  ASSERT_TRUE(
      env.ReplayDurableInto("v", flushed,
                            FaultInjectionEnv::ReplayMode::kMetadataFlushed)
          .ok());
  const auto late = real.ReadFileToString(flushed + "/late.txt");
  ASSERT_TRUE(late.ok()) << late.status();
  EXPECT_EQ(*late, "lost-entry");
}

TEST(FaultEnvTest, RenameIsDurableOnlyAfterDirectorySync) {
  FaultInjectionEnv env;
  ASSERT_TRUE(WriteThrough(env, "v/f.tmp", "data", /*sync=*/true).ok());
  ASSERT_TRUE(env.SyncDirectory("v").ok());
  ASSERT_TRUE(env.RenameReplacing("v/f.tmp", "v/f.txt").ok());

  // Before the barrier: the old name survives a strict cut.
  const std::string before = TestDir("rename_before");
  ASSERT_TRUE(env.ReplayDurableInto("v", before,
                                    FaultInjectionEnv::ReplayMode::kStrict)
                  .ok());
  Env& real = *DefaultEnv();
  EXPECT_TRUE(real.ReadFileToString(before + "/f.tmp").ok());
  EXPECT_FALSE(real.ReadFileToString(before + "/f.txt").ok());

  ASSERT_TRUE(env.SyncDirectory("v").ok());
  const std::string after = TestDir("rename_after");
  ASSERT_TRUE(env.ReplayDurableInto("v", after,
                                    FaultInjectionEnv::ReplayMode::kStrict)
                  .ok());
  EXPECT_FALSE(real.ReadFileToString(after + "/f.tmp").ok());
  const auto renamed = real.ReadFileToString(after + "/f.txt");
  ASSERT_TRUE(renamed.ok());
  EXPECT_EQ(*renamed, "data");
}

TEST(FaultEnvTest, TornWritesLandAPrefixAtTheFailurePoint) {
  FaultInjectionEnv env;
  env.set_torn_write_bytes(3);
  env.FailAtOp(1, util::InternalError("EIO mid-write"));
  auto file = env.NewWritableFile("v/torn.txt");
  ASSERT_TRUE(file.ok());
  EXPECT_FALSE((*file)->Append("abcdefgh").ok());
  const auto read = env.ReadFileToString("v/torn.txt");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "abc");  // the first torn_write_bytes landed anyway
}

TEST(FaultEnvTest, TornReplayTailsAreSeedDeterministic) {
  const auto replay = [](uint64_t seed, const std::string& dir) {
    FaultInjectionEnv env;
    auto file = env.NewWritableFile("v/t.bin");
    EXPECT_TRUE(file.ok());
    EXPECT_TRUE((*file)->Append("synced-part").ok());
    EXPECT_TRUE((*file)->Sync().ok());
    EXPECT_TRUE((*file)->Append("unsynced-tail-of-many-bytes").ok());
    EXPECT_TRUE((*file)->Close().ok());
    EXPECT_TRUE(env.SyncDirectory("v").ok());
    EXPECT_TRUE(
        env.ReplayDurableInto("v", dir,
                              FaultInjectionEnv::ReplayMode::kStrict, seed)
            .ok());
    auto content = DefaultEnv()->ReadFileToString(dir + "/t.bin");
    EXPECT_TRUE(content.ok());
    return content.ok() ? *content : std::string();
  };
  const std::string a = replay(77, TestDir("torn_a"));
  const std::string b = replay(77, TestDir("torn_b"));
  EXPECT_EQ(a, b);  // same seed, same torn image — reproducible failures
  EXPECT_EQ(a.compare(0, 11, "synced-part"), 0);
}

TEST(FaultEnvTest, ShortReadsTruncateWholeFileReads) {
  const std::string path = TestDir("short") + ".txt";
  ASSERT_TRUE(WriteThrough(*DefaultEnv(), path, "0123456789",
                           /*sync=*/false)
                  .ok());
  FaultInjectionEnv env;
  env.ShortReadAtOp(0, 4);
  const auto read = env.ReadFileToString(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "0123");
  // One-shot: the next read sees everything.
  const auto full = env.ReadFileToString(path);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(*full, "0123456789");
}

TEST(FaultEnvTest, MmapRefusalIsTransientTyped) {
  FaultInjectionEnv env;
  env.set_refuse_mmap(true);
  const auto mapped = env.MapReadOnly("anything");
  ASSERT_FALSE(mapped.ok());
  EXPECT_EQ(mapped.status().code(), util::StatusCode::kUnavailable);
}

// --- PosixEnv: the errno→Status taxonomy every decision keys on ----------

TEST(PosixEnvTest, MissingFilesAreNotFoundWithErrnoDetail) {
  Env& env = *DefaultEnv();
  const std::string missing = TestDir("never_written") + "/nope.txt";
  for (const util::Status& status :
       {env.ReadFileToString(missing).status(),
        env.MapReadOnly(missing).status(), env.FileSize(missing).status(),
        env.RemoveFile(missing)}) {
    EXPECT_EQ(status.code(), util::StatusCode::kNotFound) << status;
    EXPECT_NE(status.message().find("errno"), std::string::npos) << status;
  }
}

TEST(PosixEnvTest, EmptyFilesCannotBeMapped) {
  Env& env = *DefaultEnv();
  const std::string path = TestDir("empty") + ".bin";
  ASSERT_TRUE(WriteThrough(env, path, "", /*sync=*/false).ok());
  const auto mapped = env.MapReadOnly(path);
  ASSERT_FALSE(mapped.ok());
  EXPECT_EQ(mapped.status().code(), util::StatusCode::kInvalidArgument);
  EXPECT_NE(mapped.status().message().find("empty file"), std::string::npos);
}

TEST(PosixEnvTest, AtomicWriteLeavesNoTmpBehind) {
  Env& env = *DefaultEnv();
  const std::string dir = TestDir("atomic");
  ASSERT_TRUE(env.CreateDirectories(dir).ok());
  const std::string path = dir + "/out.txt";
  ASSERT_TRUE(WriteFileAtomically(env, path, "contents").ok());
  const auto read = env.ReadFileToString(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "contents");
  EXPECT_FALSE(env.FileSize(path + ".tmp").ok());
  // A failing write cleans its staging file up too (asserted against the
  // fault env's namespace — its writes are virtual by design).
  FaultInjectionEnv faulty;
  faulty.FailAtOp(1, util::InternalError("EIO"));
  EXPECT_FALSE(WriteFileAtomically(faulty, "v/fail.txt", "x").ok());
  EXPECT_FALSE(faulty.FileSize("v/fail.txt.tmp").ok());
  EXPECT_FALSE(faulty.FileSize("v/fail.txt").ok());
}

TEST(PosixEnvTest, ParentDirectoryCoversTheShapes) {
  EXPECT_EQ(ParentDirectory("a/b/c.txt"), "a/b");
  EXPECT_EQ(ParentDirectory("/c.txt"), "/");
  EXPECT_EQ(ParentDirectory("c.txt"), ".");
}

}  // namespace
}  // namespace jim::storage
