// MetricsEnv: the observability decorator of the storage seam. These tests
// pin the dual-sink contract — the always-on local tally that fault suites
// assert retry counts against, and the obs-registry mirror that only moves
// while metrics are enabled — and that forwarding is otherwise transparent.

#include "storage/metrics_env.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>

#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "storage/env.h"
#include "storage/fault_env.h"
#include "util/status.h"

namespace jim::storage {
namespace {

util::Status WriteThrough(Env& env, const std::string& path,
                          const std::string& contents, bool sync) {
  auto file = env.NewWritableFile(path);
  if (!file.ok()) return file.status();
  RETURN_IF_ERROR((*file)->Append(contents));
  if (sync) RETURN_IF_ERROR((*file)->Sync());
  return (*file)->Close();
}

TEST(MetricsEnvTest, CountsTheWritePath) {
  FaultInjectionEnv fault;  // virtual filesystem — nothing touches disk
  MetricsEnv env(&fault);
  ASSERT_TRUE(WriteThrough(env, "v/a.txt", "hello", /*sync=*/true).ok());

  const MetricsEnv::Counts counts = env.counts();
  EXPECT_EQ(counts.creates, 1u);
  EXPECT_EQ(counts.appends, 1u);
  EXPECT_EQ(counts.append_bytes, 5u);
  EXPECT_EQ(counts.fsyncs, 1u);
  EXPECT_EQ(counts.closes, 1u);
  EXPECT_EQ(counts.failures, 0u);
  EXPECT_EQ(counts.ops(), 4u);

  env.ResetCounts();
  EXPECT_EQ(env.counts().ops(), 0u);
}

TEST(MetricsEnvTest, CountsTheReadPath) {
  FaultInjectionEnv fault;
  MetricsEnv env(&fault);
  ASSERT_TRUE(WriteThrough(env, "v/a.txt", "payload", /*sync=*/false).ok());

  ASSERT_TRUE(env.ReadFileToString("v/a.txt").ok());
  ASSERT_TRUE(env.FileSize("v/a.txt").ok());
  ASSERT_TRUE(env.ListDirectory("v").ok());

  const MetricsEnv::Counts counts = env.counts();
  EXPECT_EQ(counts.reads, 1u);
  EXPECT_EQ(counts.read_bytes, 7u);
  EXPECT_EQ(counts.stats, 1u);
  EXPECT_EQ(counts.lists, 1u);
  EXPECT_EQ(counts.failures, 0u);
}

TEST(MetricsEnvTest, FailuresAreCountedAndForwardedVerbatim) {
  FaultInjectionEnv fault;
  MetricsEnv env(&fault);
  // Op #0 is the create below.
  fault.FailAtOp(0, util::UnavailableError("injected"));
  const auto file = env.NewWritableFile("v/x.txt");
  ASSERT_FALSE(file.ok());
  EXPECT_EQ(file.status().code(), util::StatusCode::kUnavailable);

  const auto missing = env.ReadFileToString("v/never_written.txt");
  EXPECT_FALSE(missing.ok());

  const MetricsEnv::Counts counts = env.counts();
  EXPECT_EQ(counts.creates, 1u);  // attempted ops count even when they fail
  EXPECT_EQ(counts.reads, 1u);
  EXPECT_EQ(counts.read_bytes, 0u);  // no bytes on a failed read
  EXPECT_EQ(counts.failures, 2u);
}

TEST(MetricsEnvTest, RetriesBecomeSleepCounts) {
  // The composition the fault suites rely on: MetricsEnv(&fault_env) sees
  // each attempted operation plus the backoff sleeps between attempts, so
  // "how many retries did recovery take" is a number, not an inference.
  FaultInjectionEnv fault;
  MetricsEnv env(&fault);
  // Fault the append of the first attempt (create=0, append=1).
  fault.FailAtOp(1, util::UnavailableError("injected EINTR"));

  RetryPolicy policy;
  const util::Status status = RetryWithBackoff(env, policy, [&] {
    return WriteFileAtomically(env, "v/b.txt", "payload");
  });
  ASSERT_TRUE(status.ok()) << status;

  const MetricsEnv::Counts counts = env.counts();
  EXPECT_EQ(counts.sleeps, 1u);  // one transient fault → one retry
  EXPECT_GT(counts.micros_slept, 0u);
  EXPECT_GE(counts.failures, 1u);  // at least the faulted append
  EXPECT_EQ(counts.sleeps, fault.sleeps_recorded());
  EXPECT_EQ(counts.micros_slept, fault.micros_slept());
  EXPECT_EQ(env.ReadFileToString("v/b.txt").value(), "payload");
}

TEST(MetricsEnvTest, MirrorsIntoTheRegistryOnlyWhenEnabled) {
  const bool was_enabled = obs::MetricsEnabled();
  auto& registry = obs::MetricsRegistry::Instance();

  obs::SetMetricsEnabled(false);
  registry.ResetForTesting();
  {
    FaultInjectionEnv fault;
    MetricsEnv env(&fault);
    ASSERT_TRUE(WriteThrough(env, "v/off.txt", "abc", /*sync=*/true).ok());
  }
  EXPECT_EQ(registry.CounterValue(obs::kCounterStorageCreates), 0u);
  EXPECT_EQ(registry.CounterValue(obs::kCounterStorageAppendBytes), 0u);

  obs::SetMetricsEnabled(true);
  {
    FaultInjectionEnv fault;
    MetricsEnv env(&fault);
    ASSERT_TRUE(WriteThrough(env, "v/on.txt", "abc", /*sync=*/true).ok());
  }
  EXPECT_EQ(registry.CounterValue(obs::kCounterStorageCreates), 1u);
  EXPECT_EQ(registry.CounterValue(obs::kCounterStorageAppendBytes), 3u);
  EXPECT_EQ(registry.CounterValue(obs::kCounterStorageFsyncs), 1u);

  registry.ResetForTesting();
  obs::SetMetricsEnabled(was_enabled);
}

TEST(MetricsEnvTest, WrapsDefaultEnvForRealIo) {
  // nullptr base → DefaultEnv(): a real round-trip through the posix
  // backend, counted.
  MetricsEnv env;
  const std::string path = ::testing::TempDir() + "metrics_env_real.txt";
  ASSERT_TRUE(WriteThrough(env, path, "real", /*sync=*/false).ok());
  EXPECT_EQ(env.ReadFileToString(path).value(), "real");
  ASSERT_TRUE(env.RemoveFile(path).ok());

  const MetricsEnv::Counts counts = env.counts();
  EXPECT_EQ(counts.creates, 1u);
  EXPECT_EQ(counts.reads, 1u);
  EXPECT_EQ(counts.read_bytes, 4u);
  EXPECT_EQ(counts.removes, 1u);
}

}  // namespace
}  // namespace jim::storage
