// Trusted-reopen mode of MappedTupleStore::Open: the warm-restart path a
// serving daemon uses for files it already validated in a previous life.
// Trusted mode skips the per-section checksum pass and the per-cell
// code-range scan but keeps every structural check, so:
//   - on an intact file it is read-for-read identical to a full open;
//   - a scribbled checksum is rejected by the default full open and
//     accepted by trusted (the bytes it guards are untouched);
//   - an out-of-range code (checksum recomputed to hide it) is rejected
//     typed by the full open, while under trusted it opens and the
//     DecodeValue JIM_CHECK backstop catches the access — corrupt data
//     still cannot decode silently;
//   - structural damage (magic, truncation) fails typed in BOTH modes.

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/tuple_store.h"
#include "gtest/gtest.h"
#include "storage/env.h"
#include "storage/format.h"
#include "storage/mapped_store.h"
#include "storage/store_writer.h"
#include "util/status.h"
#include "workload/travel.h"

namespace jim::storage {
namespace {

std::string TestPath(const std::string& name) {
  return ::testing::TempDir() + "trusted_reopen_" + name + ".jimc";
}

std::string WriteFigure1(const std::string& tag) {
  const std::string path = TestPath(tag);
  EXPECT_TRUE(WriteStore(*workload::Figure1StorePtr(), path).ok());
  return path;
}

std::string ReadAll(const std::string& path) {
  auto contents = DefaultEnv()->ReadFileToString(path);
  EXPECT_TRUE(contents.ok()) << contents.status();
  return contents.ok() ? *contents : std::string();
}

void WriteAll(const std::string& path, const std::string& bytes) {
  ASSERT_TRUE(WriteFileAtomically(*DefaultEnv(), path, bytes).ok());
}

struct Section {
  uint32_t id = 0;
  uint32_t column = 0;
  uint64_t offset = 0;
  uint64_t length = 0;
  size_t entry_offset = 0;  ///< of this entry in the section table
};

/// Minimal section-table walk (the test's own view of the format, so it
/// can corrupt surgically).
std::vector<Section> ReadSections(const std::string& bytes) {
  uint32_t num_sections = 0;
  std::memcpy(&num_sections, bytes.data() + 20, sizeof(num_sections));
  std::vector<Section> sections(num_sections);
  for (uint32_t s = 0; s < num_sections; ++s) {
    const size_t at = kHeaderBytes + s * kSectionEntryBytes;
    std::memcpy(&sections[s].id, bytes.data() + at, 4);
    std::memcpy(&sections[s].column, bytes.data() + at + 4, 4);
    std::memcpy(&sections[s].offset, bytes.data() + at + 8, 8);
    std::memcpy(&sections[s].length, bytes.data() + at + 16, 8);
    sections[s].entry_offset = at;
  }
  return sections;
}

OpenOptions Trusted() {
  OpenOptions options;
  options.trusted = true;
  return options;
}

TEST(TrustedReopenTest, IntactFileReadsIdentically) {
  const std::string path = WriteFigure1("parity");
  auto full = MappedTupleStore::Open(path);
  auto trusted = MappedTupleStore::Open(path, Trusted());
  ASSERT_TRUE(full.ok()) << full.status();
  ASSERT_TRUE(trusted.ok()) << trusted.status();

  EXPECT_EQ((*full)->name(), (*trusted)->name());
  ASSERT_EQ((*full)->num_tuples(), (*trusted)->num_tuples());
  ASSERT_EQ((*full)->num_attributes(), (*trusted)->num_attributes());
  EXPECT_EQ((*full)->shared_dictionary_size(),
            (*trusted)->shared_dictionary_size());
  for (size_t t = 0; t < (*full)->num_tuples(); ++t) {
    for (size_t a = 0; a < (*full)->num_attributes(); ++a) {
      EXPECT_EQ((*full)->code(t, a), (*trusted)->code(t, a));
      EXPECT_EQ((*full)->DecodeValue(t, a).ToString(),
                (*trusted)->DecodeValue(t, a).ToString());
    }
  }
  (*trusted)->CheckInvariants();
}

TEST(TrustedReopenTest, ScribbledChecksumOnlyFailsTheFullOpen) {
  const std::string path = WriteFigure1("checksum");
  std::string bytes = ReadAll(path);
  // Flip a bit of the first section's *stored checksum* — data untouched.
  bytes[kHeaderBytes + 24] ^= 0x01;
  WriteAll(path, bytes);

  auto full = MappedTupleStore::Open(path);
  ASSERT_FALSE(full.ok());
  EXPECT_EQ(full.status().code(), util::StatusCode::kInvalidArgument);
  EXPECT_NE(full.status().message().find("checksum mismatch"),
            std::string::npos)
      << full.status();

  auto trusted = MappedTupleStore::Open(path, Trusted());
  ASSERT_TRUE(trusted.ok()) << trusted.status();
  EXPECT_GT((*trusted)->num_tuples(), 0u);
  (*trusted)->CheckInvariants();
}

TEST(TrustedReopenTest, OutOfRangeCodeRejectedFullCheckedTrusted) {
  const std::string path = WriteFigure1("badcode");
  std::string bytes = ReadAll(path);
  const auto sections = ReadSections(bytes);
  const Section* codes = nullptr;
  for (const Section& section : sections) {
    if (section.id == static_cast<uint32_t>(SectionId::kCodes)) {
      codes = &section;
      break;
    }
  }
  ASSERT_NE(codes, nullptr);
  // Patch the first code of the first code array out of range, then
  // recompute the section checksum so only the range scan can see it.
  const uint32_t evil = 0x7FFFFFFFu;
  std::memcpy(bytes.data() + codes->offset, &evil, sizeof(evil));
  const uint64_t checksum = Fnv1a64(
      reinterpret_cast<const uint8_t*>(bytes.data()) + codes->offset,
      static_cast<size_t>(codes->length));
  std::memcpy(bytes.data() + codes->entry_offset + 24, &checksum,
              sizeof(checksum));
  WriteAll(path, bytes);

  // Full validation still rejects, typed, naming the range violation.
  auto full = MappedTupleStore::Open(path);
  ASSERT_FALSE(full.ok());
  EXPECT_EQ(full.status().code(), util::StatusCode::kInvalidArgument);
  EXPECT_NE(full.status().message().find("outside the shared dictionary"),
            std::string::npos)
      << full.status();

  // Trusted opens — and the decode backstop catches the poisoned cell.
  auto trusted = MappedTupleStore::Open(path, Trusted());
  ASSERT_TRUE(trusted.ok()) << trusted.status();
  const auto& store = **trusted;
  EXPECT_EQ(store.code(0, 0), evil);
  EXPECT_DEATH(store.DecodeValue(0, 0), "");
  // Unpoisoned cells still decode.
  EXPECT_FALSE(store.DecodeValue(1, 0).ToString().empty());
}

TEST(TrustedReopenTest, StructuralDamageFailsBothModes) {
  {
    const std::string path = WriteFigure1("magic");
    std::string bytes = ReadAll(path);
    bytes[0] ^= 0xFF;
    WriteAll(path, bytes);
    EXPECT_FALSE(MappedTupleStore::Open(path).ok());
    auto trusted = MappedTupleStore::Open(path, Trusted());
    ASSERT_FALSE(trusted.ok());
    EXPECT_EQ(trusted.status().code(), util::StatusCode::kInvalidArgument);
  }
  {
    const std::string path = WriteFigure1("truncated");
    std::string bytes = ReadAll(path);
    bytes.resize(bytes.size() / 2);
    WriteAll(path, bytes);
    EXPECT_FALSE(MappedTupleStore::Open(path).ok());
    auto trusted = MappedTupleStore::Open(path, Trusted());
    ASSERT_FALSE(trusted.ok());
    EXPECT_EQ(trusted.status().code(), util::StatusCode::kInvalidArgument);
  }
}

TEST(TrustedReopenTest, OpenStoreOverloadHonorsOptions) {
  const std::string path = WriteFigure1("factory");
  std::string bytes = ReadAll(path);
  bytes[kHeaderBytes + 24] ^= 0x01;  // scribble a stored checksum
  WriteAll(path, bytes);
  EXPECT_FALSE(OpenStore(path).ok());
  auto trusted = OpenStore(path, Trusted());
  ASSERT_TRUE(trusted.ok()) << trusted.status();
  EXPECT_GT((*trusted)->num_tuples(), 0u);
}

}  // namespace
}  // namespace jim::storage
