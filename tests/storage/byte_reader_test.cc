// Boundary behavior of the JIMC byte-level primitives: ByteReader reads
// that end exactly at the buffer edge succeed, one byte past is a typed
// truncation error naming the reading context, zero-length payloads and
// max-u32 values round-trip, and the Append* writers are little-endian
// regardless of host arithmetic.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>

#include "relational/value.h"
#include "storage/format.h"
#include "util/status.h"

namespace jim::storage {
namespace {

ByteReader ReaderOver(const std::string& bytes, const char* context) {
  return ByteReader(reinterpret_cast<const uint8_t*>(bytes.data()),
                    bytes.size(), context);
}

TEST(ByteReaderTest, ReadsEndingExactlyAtTheBufferEdgeSucceed) {
  std::string bytes;
  AppendU8(bytes, 0x7F);
  AppendU32(bytes, 0xDEADBEEFu);
  AppendU64(bytes, 0x0123456789ABCDEFull);
  ByteReader reader = ReaderOver(bytes, "edge");
  EXPECT_EQ(reader.ReadU8().value(), 0x7F);
  EXPECT_EQ(reader.ReadU32().value(), 0xDEADBEEFu);
  EXPECT_EQ(reader.ReadU64().value(), 0x0123456789ABCDEFull);
  EXPECT_EQ(reader.remaining(), 0u);
  EXPECT_EQ(reader.position(), bytes.size());
  // The cursor sits exactly at the end: any further read is truncation, and
  // the error names the context and stays typed.
  const auto past_end = reader.ReadU8();
  ASSERT_FALSE(past_end.ok());
  EXPECT_EQ(past_end.status().code(), util::StatusCode::kInvalidArgument);
  EXPECT_NE(past_end.status().message().find("edge"), std::string::npos)
      << past_end.status().ToString();
}

TEST(ByteReaderTest, EachWidthTruncatesOneByteShort) {
  std::string bytes;
  AppendU64(bytes, ~uint64_t{0});
  // For each width, a buffer one byte short must fail without advancing
  // into garbage.
  {
    ByteReader reader(reinterpret_cast<const uint8_t*>(bytes.data()), 3,
                      "u32 short");
    EXPECT_FALSE(reader.ReadU32().ok());
  }
  {
    ByteReader reader(reinterpret_cast<const uint8_t*>(bytes.data()), 7,
                      "u64 short");
    EXPECT_FALSE(reader.ReadU64().ok());
  }
  {
    ByteReader reader(reinterpret_cast<const uint8_t*>(bytes.data()), 7,
                      "double short");
    EXPECT_FALSE(reader.ReadDouble().ok());
  }
  {
    ByteReader reader(reinterpret_cast<const uint8_t*>(bytes.data()), 0,
                      "u8 empty");
    EXPECT_FALSE(reader.ReadU8().ok());
  }
}

TEST(ByteReaderTest, ZeroLengthSectionsAndStringsAreValid) {
  std::string bytes;
  AppendLengthPrefixed(bytes, "");
  ByteReader reader = ReaderOver(bytes, "empty string");
  const auto empty = reader.ReadLengthPrefixed();
  ASSERT_TRUE(empty.ok()) << empty.status();
  EXPECT_EQ(*empty, "");
  EXPECT_EQ(reader.remaining(), 0u);

  // A zero-byte reader is fine until the first read.
  ByteReader nothing(nullptr, 0, "zero-length section");
  EXPECT_EQ(nothing.remaining(), 0u);
  const auto read = nothing.ReadU32();
  ASSERT_FALSE(read.ok());
  EXPECT_NE(read.status().message().find("zero-length section"),
            std::string::npos);
}

TEST(ByteReaderTest, LengthPrefixLongerThanTheBufferIsTyped) {
  std::string bytes;
  AppendU32(bytes, std::numeric_limits<uint32_t>::max());  // length 2^32-1
  bytes += "abc";
  ByteReader reader = ReaderOver(bytes, "liar prefix");
  const auto read = reader.ReadLengthPrefixed();
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(ByteReaderTest, MaxU32ValuesRoundTrip) {
  std::string bytes;
  AppendU32(bytes, std::numeric_limits<uint32_t>::max());
  AppendU32(bytes, 0);
  AppendU64(bytes, std::numeric_limits<uint64_t>::max());
  ByteReader reader = ReaderOver(bytes, "extremes");
  EXPECT_EQ(reader.ReadU32().value(), std::numeric_limits<uint32_t>::max());
  EXPECT_EQ(reader.ReadU32().value(), 0u);
  EXPECT_EQ(reader.ReadU64().value(), std::numeric_limits<uint64_t>::max());
}

TEST(ByteReaderTest, AppendersAreLittleEndianByteForByte) {
  std::string bytes;
  AppendU32(bytes, 0x0A0B0C0Du);
  ASSERT_EQ(bytes.size(), 4u);
  EXPECT_EQ(static_cast<uint8_t>(bytes[0]), 0x0D);
  EXPECT_EQ(static_cast<uint8_t>(bytes[1]), 0x0C);
  EXPECT_EQ(static_cast<uint8_t>(bytes[2]), 0x0B);
  EXPECT_EQ(static_cast<uint8_t>(bytes[3]), 0x0A);
  bytes.clear();
  AppendU64(bytes, 0x1122334455667788ull);
  ASSERT_EQ(bytes.size(), 8u);
  EXPECT_EQ(static_cast<uint8_t>(bytes[0]), 0x88);
  EXPECT_EQ(static_cast<uint8_t>(bytes[7]), 0x11);
}

TEST(ByteReaderTest, ValueRecordsRoundTripIncludingNaNBits) {
  std::string bytes;
  AppendValueRecord(bytes, rel::Value(int64_t{-42}));
  AppendValueRecord(bytes, rel::Value(std::nan("")));
  AppendValueRecord(bytes, rel::Value(std::string("x\0y", 3)));
  ByteReader reader = ReaderOver(bytes, "records");
  const auto integer = reader.ReadValueRecord();
  ASSERT_TRUE(integer.ok());
  EXPECT_EQ(integer->AsInt64(), -42);
  const auto nan = reader.ReadValueRecord();
  ASSERT_TRUE(nan.ok());
  EXPECT_TRUE(std::isnan(nan->AsDouble()));
  const auto text = reader.ReadValueRecord();
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(text->AsString(), std::string("x\0y", 3));
  EXPECT_EQ(reader.remaining(), 0u);
  // A record with an unknown tag must be rejected, not guessed at.
  std::string bad;
  AppendU8(bad, 0x77);
  ByteReader bad_reader = ReaderOver(bad, "bad tag");
  EXPECT_FALSE(bad_reader.ReadValueRecord().ok());
}

}  // namespace
}  // namespace jim::storage
