// The wire contract of the serving protocol: request parsing (typed errors
// for malformed lines, presence flags for optional members), error-line
// round-trips (a daemon-side Status survives the wire as the same code),
// and RequestToLine/ParseRequest inversion.

#include "serve/protocol.h"

#include <string>

#include "gtest/gtest.h"
#include "util/json_reader.h"
#include "util/status.h"

namespace jim::serve {
namespace {

TEST(ProtocolTest, ParsesFullCreateRequest) {
  auto parsed = ParseRequest(
      R"({"verb":"create","instance":"f.jimc","strategy":"random",)"
      R"("goal":"To=City","seed":9,"max_steps":50})");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->verb, "create");
  EXPECT_EQ(parsed->instance, "f.jimc");
  EXPECT_EQ(parsed->strategy, "random");
  EXPECT_EQ(parsed->goal, "To=City");
  EXPECT_EQ(parsed->seed, 9u);
  EXPECT_EQ(parsed->max_steps, 50u);
  EXPECT_FALSE(parsed->has_class_id);
  EXPECT_FALSE(parsed->has_answer);
}

TEST(ProtocolTest, DefaultsApplyWhenMembersAbsent) {
  auto parsed = ParseRequest(R"({"verb":"create"})");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->strategy, "lookahead-entropy");
  EXPECT_EQ(parsed->seed, 1u);
  EXPECT_EQ(parsed->max_steps, 0u);
  EXPECT_TRUE(parsed->instance.empty());
  EXPECT_TRUE(parsed->goal.empty());
}

TEST(ProtocolTest, LabelMembersCarryPresenceFlags) {
  auto parsed = ParseRequest(
      R"({"verb":"label","session":"s1","class":3,"answer":false})");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_TRUE(parsed->has_class_id);
  EXPECT_EQ(parsed->class_id, 3u);
  EXPECT_TRUE(parsed->has_answer);
  EXPECT_FALSE(parsed->answer);
}

TEST(ProtocolTest, RejectsMalformedLines) {
  for (const char* bad :
       {"", "not json", "[1,2]", "42", R"({"session":"s1"})",
        R"({"verb":7})", R"({"verb":"label","class":"three"})",
        R"({"verb":"label","answer":"yes"})",
        R"({"verb":"create","seed":-1})"}) {
    auto parsed = ParseRequest(bad);
    EXPECT_FALSE(parsed.ok()) << "accepted: " << bad;
    if (!parsed.ok()) {
      EXPECT_EQ(parsed.status().code(), util::StatusCode::kInvalidArgument)
          << bad;
    }
  }
}

TEST(ProtocolTest, RequestToLineRoundTrips) {
  Request request;
  request.verb = "create";
  request.instance = "path/with \"quotes\".jimc";
  request.strategy = "lookahead-minmax";
  request.goal = "To=City && Airline=Discount";
  request.seed = 123;
  request.max_steps = 7;
  auto parsed = ParseRequest(RequestToLine(request));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->verb, request.verb);
  EXPECT_EQ(parsed->instance, request.instance);
  EXPECT_EQ(parsed->strategy, request.strategy);
  EXPECT_EQ(parsed->goal, request.goal);
  EXPECT_EQ(parsed->seed, request.seed);
  EXPECT_EQ(parsed->max_steps, request.max_steps);
}

TEST(ProtocolTest, ErrorLineRoundTripsStatusCodes) {
  for (const util::Status& status :
       {util::ResourceExhaustedError("session limit reached"),
        util::NotFoundError("no session 's9'"),
        util::InvalidArgumentError("bad goal"),
        util::FailedPreconditionError("session is done"),
        util::InternalError("replay diverged")}) {
    const std::string line = ErrorLine(status);
    auto parsed = util::ParseJson(line);
    ASSERT_TRUE(parsed.ok()) << line;
    EXPECT_FALSE(parsed->GetBool("ok", true)) << line;
    const util::Status decoded = StatusFromErrorName(
        parsed->GetString("error", ""), parsed->GetString("message", ""));
    EXPECT_EQ(decoded.code(), status.code()) << line;
    EXPECT_EQ(decoded.message(), status.message()) << line;
  }
}

TEST(ProtocolTest, ErrorNameFallsBackToInternal) {
  EXPECT_EQ(StatusFromErrorName("NO_SUCH_CODE", "m").code(),
            util::StatusCode::kInternal);
}

}  // namespace
}  // namespace jim::serve
