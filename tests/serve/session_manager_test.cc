// SessionManager contract tests: session lifecycle against the paper's
// Figure 1 oracle, admission control (live-session cap, per-session step
// cap, typed RESOURCE_EXHAUSTED), contradiction rejection, serving-mode
// transcript parity, suggest idempotence (polling never advances a
// strategy's RNG), and checkpoint/recovery determinism — a recovered
// manager's future picks equal the uninterrupted manager's, including for
// RNG-bearing strategies.

#include "serve/session_manager.h"

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "core/jim.h"
#include "gtest/gtest.h"
#include "util/bitset.h"
#include "util/string_util.h"
#include "workload/travel.h"

namespace jim::serve {
namespace {

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "session_manager_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

/// A manager over the registered Figure 1 instance.
std::unique_ptr<SessionManager> MakeManager(ServeOptions options = {}) {
  options.default_instance = "figure1";
  auto manager = std::make_unique<SessionManager>(std::move(options));
  manager->RegisterInstance("figure1", workload::Figure1StorePtr());
  return manager;
}

/// Answers `class_id` the way an exact user with `goal` would: by whether
/// the class's representative tuple is selected.
bool OracleAnswer(const core::TupleStore& store,
                  const core::JoinPredicate& goal, size_t tuple_index) {
  return goal.SelectedRows(store).Test(tuple_index);
}

/// Drives the session to completion with an exact oracle; returns the
/// number of labels submitted.
size_t DriveToDone(SessionManager& manager, const std::string& session_id,
                   const core::JoinPredicate& goal,
                   const core::TupleStore& store) {
  size_t labels = 0;
  for (;;) {
    auto suggested = manager.Suggest(session_id);
    EXPECT_TRUE(suggested.ok()) << suggested.status();
    if (!suggested.ok() || suggested->done) return labels;
    auto labeled = manager.Label(
        session_id, suggested->class_id,
        OracleAnswer(store, goal, suggested->tuple_index));
    EXPECT_TRUE(labeled.ok()) << labeled.status();
    if (!labeled.ok()) return labels;
    ++labels;
    EXPECT_LT(labels, 1000u) << "session did not converge";
    if (labels >= 1000u) return labels;
  }
}

TEST(SessionManagerTest, LifecycleIdentifiesTheFigure1Goal) {
  auto manager = MakeManager();
  auto store = workload::Figure1StorePtr();
  const auto goal =
      core::JoinPredicate::Parse(store->schema(), workload::kQ2).value();

  auto created = manager->Create("", "lookahead-entropy", workload::kQ2,
                                 /*seed=*/1, /*max_steps=*/0);
  ASSERT_TRUE(created.ok()) << created.status();
  EXPECT_EQ(created->session_id, "s1");
  EXPECT_EQ(created->num_tuples, store->num_tuples());
  EXPECT_FALSE(created->done);

  const size_t labels =
      DriveToDone(*manager, created->session_id, goal, *store);
  EXPECT_GT(labels, 0u);

  auto status = manager->Status(created->session_id);
  ASSERT_TRUE(status.ok()) << status.status();
  EXPECT_TRUE(status->done);
  EXPECT_EQ(status->steps, labels);
  EXPECT_EQ(status->strategy, "lookahead-entropy");
  EXPECT_EQ(status->instance, "figure1");

  auto result = manager->Result(created->session_id);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->done);
  EXPECT_TRUE(result->has_goal);
  EXPECT_TRUE(result->identified_goal);

  // Done sessions reject further labels with a typed error.
  auto late = manager->Label(created->session_id, 0, true);
  ASSERT_FALSE(late.ok());
  EXPECT_EQ(late.status().code(), util::StatusCode::kFailedPrecondition);

  EXPECT_TRUE(manager->Close(created->session_id).ok());
  EXPECT_EQ(manager->GetStats().live, 0u);
  EXPECT_EQ(manager->GetStats().evicted, 1u);
}

TEST(SessionManagerTest, UnknownSessionIsNotFound) {
  auto manager = MakeManager();
  EXPECT_EQ(manager->Suggest("s99").status().code(),
            util::StatusCode::kNotFound);
  EXPECT_EQ(manager->Label("s99", 0, true).status().code(),
            util::StatusCode::kNotFound);
  EXPECT_EQ(manager->Status("s99").status().code(),
            util::StatusCode::kNotFound);
  EXPECT_EQ(manager->Result("s99").status().code(),
            util::StatusCode::kNotFound);
  EXPECT_EQ(manager->Close("s99").code(), util::StatusCode::kNotFound);
}

TEST(SessionManagerTest, AdmissionCapRejectsTyped) {
  ServeOptions options;
  options.max_sessions = 2;
  auto manager = MakeManager(std::move(options));
  auto first = manager->Create("", "random", "", 1, 0);
  auto second = manager->Create("", "random", "", 2, 0);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  auto third = manager->Create("", "random", "", 3, 0);
  ASSERT_FALSE(third.ok());
  EXPECT_EQ(third.status().code(), util::StatusCode::kResourceExhausted);
  EXPECT_EQ(manager->GetStats().rejected, 1u);
  // Closing frees the slot.
  ASSERT_TRUE(manager->Close(first->session_id).ok());
  EXPECT_TRUE(manager->Create("", "random", "", 3, 0).ok());
}

TEST(SessionManagerTest, StepCapRejectsTyped) {
  auto manager = MakeManager();
  auto created = manager->Create("", "local-bottom-up", "", 1,
                                 /*max_steps=*/1);
  ASSERT_TRUE(created.ok()) << created.status();
  auto first = manager->Suggest(created->session_id);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(
      manager->Label(created->session_id, first->class_id, false).ok());
  auto second = manager->Suggest(created->session_id);
  ASSERT_TRUE(second.ok());
  ASSERT_FALSE(second->done);
  auto capped = manager->Label(created->session_id, second->class_id, false);
  ASSERT_FALSE(capped.ok());
  EXPECT_EQ(capped.status().code(), util::StatusCode::kResourceExhausted);
  EXPECT_EQ(manager->GetStats().rejected, 1u);
  // The rejected label did not touch the session.
  EXPECT_EQ(manager->Status(created->session_id)->steps, 1u);
}

TEST(SessionManagerTest, ContradictionLeavesSessionUntouched) {
  auto manager = MakeManager();
  auto created = manager->Create("", "local-bottom-up", "", 1, 0);
  ASSERT_TRUE(created.ok());
  auto suggested = manager->Suggest(created->session_id);
  ASSERT_TRUE(suggested.ok());
  ASSERT_TRUE(
      manager->Label(created->session_id, suggested->class_id, true).ok());
  // Relabeling the same class negatively contradicts the accepted positive.
  auto contradiction =
      manager->Label(created->session_id, suggested->class_id, false);
  ASSERT_FALSE(contradiction.ok());
  EXPECT_EQ(contradiction.status().code(),
            util::StatusCode::kFailedPrecondition);
  EXPECT_EQ(manager->Status(created->session_id)->steps, 1u);
}

TEST(SessionManagerTest, ClassOutOfRangeIsInvalidArgument) {
  auto manager = MakeManager();
  auto created = manager->Create("", "random", "", 1, 0);
  ASSERT_TRUE(created.ok());
  auto labeled =
      manager->Label(created->session_id, created->num_classes + 5, true);
  ASSERT_FALSE(labeled.ok());
  EXPECT_EQ(labeled.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(SessionManagerTest, UnknownInstanceAndStrategyFailTyped) {
  ServeOptions options;  // no default instance
  SessionManager manager(std::move(options));
  EXPECT_EQ(manager.Create("", "random", "", 1, 0).status().code(),
            util::StatusCode::kInvalidArgument);
  auto missing = manager.Create("/does/not/exist.jimc", "random", "", 1, 0);
  EXPECT_FALSE(missing.ok());

  auto with_instance = MakeManager();
  EXPECT_FALSE(with_instance->Create("", "no-such-strategy", "", 1, 0).ok());
  EXPECT_FALSE(with_instance->Create("", "random", "NoSuchAttr=X", 1, 0).ok());
}

TEST(SessionManagerTest, SuggestIsIdempotentUntilTheNextLabel) {
  // Random strategy: if polling advanced the RNG, repeated suggests would
  // (with overwhelming probability) disagree somewhere along the session.
  auto manager = MakeManager();
  auto created = manager->Create("", "random", "", /*seed=*/99, 0);
  ASSERT_TRUE(created.ok());
  for (int step = 0; step < 3; ++step) {
    auto first = manager->Suggest(created->session_id);
    ASSERT_TRUE(first.ok());
    if (first->done) break;
    for (int repeat = 0; repeat < 4; ++repeat) {
      auto again = manager->Suggest(created->session_id);
      ASSERT_TRUE(again.ok());
      EXPECT_EQ(again->class_id, first->class_id);
      EXPECT_EQ(again->step, first->step);
    }
    ASSERT_TRUE(
        manager->Label(created->session_id, first->class_id, false).ok());
  }
}

TEST(SessionManagerTest, ServingModesProduceIdenticalPicks) {
  // kManySessions (serial lookahead) and kFewSessions (pool fan-out) must
  // pick identically — mode is a performance knob, not a policy change.
  std::vector<size_t> picks_by_mode[2];
  const ServingMode modes[2] = {ServingMode::kManySessions,
                                ServingMode::kFewSessions};
  for (int m = 0; m < 2; ++m) {
    ServeOptions options;
    options.mode = modes[m];
    auto manager = MakeManager(std::move(options));
    auto created =
        manager->Create("", "lookahead-minmax", workload::kQ2, 1, 0);
    ASSERT_TRUE(created.ok()) << created.status();
    auto store = workload::Figure1StorePtr();
    const auto goal =
        core::JoinPredicate::Parse(store->schema(), workload::kQ2).value();
    for (;;) {
      auto suggested = manager->Suggest(created->session_id);
      ASSERT_TRUE(suggested.ok());
      if (suggested->done) break;
      picks_by_mode[m].push_back(suggested->class_id);
      ASSERT_TRUE(manager
                      ->Label(created->session_id, suggested->class_id,
                              OracleAnswer(*store, goal,
                                           suggested->tuple_index))
                      .ok());
    }
  }
  EXPECT_EQ(picks_by_mode[0], picks_by_mode[1]);
  EXPECT_FALSE(picks_by_mode[0].empty());
}

TEST(SessionManagerTest, ParseServingModeNames) {
  EXPECT_EQ(ParseServingMode("many").value(), ServingMode::kManySessions);
  EXPECT_EQ(ParseServingMode("few-sessions").value(),
            ServingMode::kFewSessions);
  EXPECT_FALSE(ParseServingMode("medium").ok());
  EXPECT_EQ(ServingModeName(ServingMode::kFewSessions), "few");
}

TEST(SessionManagerTest, RecoveryContinuesEverySessionIdentically) {
  // The determinism gate: for every strategy (RNG-bearing ones included),
  // drive k labels, recover into a fresh manager from the checkpoint dir,
  // and require the recovered manager's entire remaining pick/answer
  // sequence to equal the uninterrupted manager's.
  const std::vector<std::string> strategies = {
      "random", "local-bottom-up", "lookahead-entropy", "lookahead-minmax"};
  const std::string dir = FreshDir("recovery");
  ServeOptions options;
  options.checkpoint_dir = dir;
  auto manager = MakeManager(options);
  auto store = workload::Figure1StorePtr();
  const auto goal =
      core::JoinPredicate::Parse(store->schema(), workload::kQ2).value();

  std::vector<std::string> ids;
  for (size_t i = 0; i < strategies.size(); ++i) {
    auto created = manager->Create("", strategies[i], workload::kQ2,
                                   /*seed=*/10 + i, 0);
    ASSERT_TRUE(created.ok()) << created.status();
    ids.push_back(created->session_id);
    // Stagger progress: i labels for session i (session 0 recovers from an
    // empty transcript). An extra un-labeled suggest on even sessions pins
    // that a pending pick is recomputed identically after recovery.
    for (size_t k = 0; k < i; ++k) {
      auto suggested = manager->Suggest(ids[i]);
      ASSERT_TRUE(suggested.ok());
      ASSERT_FALSE(suggested->done);
      ASSERT_TRUE(manager
                      ->Label(ids[i], suggested->class_id,
                              OracleAnswer(*store, goal,
                                           suggested->tuple_index))
                      .ok());
    }
    if (i % 2 == 0) {
      ASSERT_TRUE(manager->Suggest(ids[i]).ok());
    }
  }

  auto recovered = MakeManager(options);
  ASSERT_TRUE(recovered->RecoverSessions().ok());
  EXPECT_EQ(recovered->GetStats().recovered, strategies.size());
  EXPECT_EQ(recovered->GetStats().live, strategies.size());

  for (size_t i = 0; i < ids.size(); ++i) {
    for (size_t step = 0; step < 1000; ++step) {
      auto original = manager->Suggest(ids[i]);
      auto replica = recovered->Suggest(ids[i]);
      ASSERT_TRUE(original.ok()) << original.status();
      ASSERT_TRUE(replica.ok()) << replica.status();
      ASSERT_EQ(original->done, replica->done) << ids[i];
      if (original->done) break;
      ASSERT_EQ(original->class_id, replica->class_id)
          << ids[i] << " step " << step;
      ASSERT_EQ(original->tuple_index, replica->tuple_index);
      const bool answer = OracleAnswer(*store, goal, original->tuple_index);
      auto labeled_a = manager->Label(ids[i], original->class_id, answer);
      auto labeled_b = recovered->Label(ids[i], replica->class_id, answer);
      ASSERT_TRUE(labeled_a.ok());
      ASSERT_TRUE(labeled_b.ok());
      ASSERT_EQ(labeled_a->pruned_classes, labeled_b->pruned_classes);
      ASSERT_EQ(labeled_a->done, labeled_b->done);
    }
    EXPECT_TRUE(manager->Result(ids[i])->identified_goal) << ids[i];
    EXPECT_TRUE(recovered->Result(ids[i])->identified_goal) << ids[i];
  }

  // New sessions in the recovered manager never collide with recovered ids.
  auto fresh = recovered->Create("", "random", "", 1, 0);
  ASSERT_TRUE(fresh.ok());
  for (const std::string& id : ids) {
    EXPECT_NE(fresh->session_id, id);
  }
}

TEST(SessionManagerTest, CloseRemovesTheCheckpoint) {
  const std::string dir = FreshDir("close");
  ServeOptions options;
  options.checkpoint_dir = dir;
  auto manager = MakeManager(options);
  auto created = manager->Create("", "random", "", 1, 0);
  ASSERT_TRUE(created.ok());
  const std::string path =
      dir + "/" + CheckpointFileName(created->session_id);
  EXPECT_TRUE(std::filesystem::exists(path));
  ASSERT_TRUE(manager->Close(created->session_id).ok());
  EXPECT_FALSE(std::filesystem::exists(path));

  auto recovered = MakeManager(options);
  ASSERT_TRUE(recovered->RecoverSessions().ok());
  EXPECT_EQ(recovered->GetStats().live, 0u);
}

TEST(SessionManagerTest, RecoveryFailsLoudOnCorruptCheckpoint) {
  const std::string dir = FreshDir("corrupt");
  ServeOptions options;
  options.checkpoint_dir = dir;
  {
    auto manager = MakeManager(options);
    ASSERT_TRUE(manager->Create("", "random", "", 1, 0).ok());
  }
  // Flip a byte in the checkpoint body; the checksum must catch it and
  // recovery must surface a typed error, not silently drop the session.
  const std::string path = dir + "/" + CheckpointFileName("s1");
  std::string bytes;
  {
    auto contents = storage::DefaultEnv()->ReadFileToString(path);
    ASSERT_TRUE(contents.ok());
    bytes = *contents;
  }
  ASSERT_GT(bytes.size(), 10u);
  bytes[9] ^= 0x40;
  ASSERT_TRUE(
      storage::WriteFileAtomically(*storage::DefaultEnv(), path, bytes).ok());
  auto recovered = MakeManager(options);
  const util::Status status = recovered->RecoverSessions();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), util::StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace jim::serve
