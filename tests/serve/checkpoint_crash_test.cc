// Crash-point enumeration over the serving checkpoint path, in the style of
// tests/storage/crash_recovery_test.cc: learn the deterministic operation
// schedule of a clean create + N-label session, then re-run once per
// schedule index with a simulated power cut armed there. Each cut's durable
// state is replayed into a real directory (strict and metadata-flushed
// semantics, torn-tail variants of both) and a fresh SessionManager
// recovers from it for real, proving:
//   - the recovered transcript is always a prefix of the oracle-driven
//     session, and per checkpoint write the old XOR the new image survives
//     (at most the in-flight label is lost, never a torn/mixed transcript);
//   - the recovered session's entire remaining pick sequence is
//     byte-identical to an uninterrupted reference session's at the same
//     transcript prefix (RNG-bearing strategy included);
//   - leftover *.tmp staging files are garbage-collected by recovery.

#include <algorithm>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "core/jim.h"
#include "gtest/gtest.h"
#include "serve/checkpoint.h"
#include "serve/session_manager.h"
#include "storage/fault_env.h"
#include "util/string_util.h"
#include "workload/travel.h"

namespace jim::serve {
namespace {

constexpr char kCheckpointVroot[] = "vroot/serve_ckpt";
constexpr size_t kLabels = 3;

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "serve_crash_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::unique_ptr<SessionManager> MakeManager(ServeOptions options) {
  options.default_instance = "figure1";
  auto manager = std::make_unique<SessionManager>(std::move(options));
  manager->RegisterInstance("figure1", workload::Figure1StorePtr());
  return manager;
}

bool OracleAnswer(const core::TupleStore& store,
                  const core::JoinPredicate& goal, size_t tuple_index) {
  return goal.SelectedRows(store).Test(tuple_index);
}

/// Drives create + up to kLabels oracle labels against `manager`, stopping
/// at the first error (the armed crash). Returns the number of labels the
/// manager *acknowledged* (persisted-then-committed).
size_t DriveSession(SessionManager& manager, const core::TupleStore& store,
                    const core::JoinPredicate& goal, bool* created_acked) {
  auto created = manager.Create("", "random", workload::kQ2, /*seed=*/5, 0);
  *created_acked = created.ok();
  if (!created.ok()) return 0;
  size_t acked = 0;
  for (size_t i = 0; i < kLabels; ++i) {
    auto suggested = manager.Suggest(created->session_id);
    if (!suggested.ok() || suggested->done) break;
    auto labeled = manager.Label(
        created->session_id, suggested->class_id,
        OracleAnswer(store, goal, suggested->tuple_index));
    if (!labeled.ok()) break;
    ++acked;
  }
  return acked;
}

struct ReplayScenario {
  storage::FaultInjectionEnv::ReplayMode mode;
  uint64_t torn_seed;
  const char* tag;
};

std::vector<ReplayScenario> Scenarios(uint64_t crash_point) {
  return {
      {storage::FaultInjectionEnv::ReplayMode::kStrict, 0, "strict"},
      {storage::FaultInjectionEnv::ReplayMode::kStrict, crash_point * 2 + 1,
       "strict_torn"},
      {storage::FaultInjectionEnv::ReplayMode::kMetadataFlushed, 0,
       "flushed"},
      {storage::FaultInjectionEnv::ReplayMode::kMetadataFlushed,
       crash_point * 2 + 2, "flushed_torn"},
  };
}

TEST(ServeCheckpointCrashTest, EveryCrashPointRecoversAReplayablePrefix) {
  auto store = workload::Figure1StorePtr();
  const auto goal =
      core::JoinPredicate::Parse(store->schema(), workload::kQ2).value();

  // The uninterrupted reference: the full oracle-driven pick/answer
  // sequence every durable prefix must agree with.
  std::vector<size_t> reference_picks;
  std::vector<bool> reference_answers;
  {
    auto manager = MakeManager(ServeOptions{});
    auto created =
        manager->Create("", "random", workload::kQ2, /*seed=*/5, 0);
    ASSERT_TRUE(created.ok());
    for (;;) {
      auto suggested = manager->Suggest(created->session_id);
      ASSERT_TRUE(suggested.ok());
      if (suggested->done) break;
      const bool answer = OracleAnswer(*store, goal, suggested->tuple_index);
      reference_picks.push_back(suggested->class_id);
      reference_answers.push_back(answer);
      ASSERT_TRUE(
          manager->Label(created->session_id, suggested->class_id, answer)
              .ok());
    }
    ASSERT_GT(reference_picks.size(), kLabels)
        << "session too short to leave work for after the crash";
  }

  // Learn the deterministic checkpoint-op schedule of the clean run.
  uint64_t clean_ops = 0;
  {
    storage::FaultInjectionEnv probe;
    ServeOptions options;
    options.env = &probe;
    options.checkpoint_dir = kCheckpointVroot;
    auto manager = MakeManager(std::move(options));
    bool created_acked = false;
    ASSERT_EQ(DriveSession(*manager, *store, goal, &created_acked), kLabels);
    ASSERT_TRUE(created_acked);
    clean_ops = probe.op_count();
  }
  // create-dir + (1 create + kLabels labels) × atomic-write sequence.
  ASSERT_GE(clean_ops, (kLabels + 1) * 4);

  size_t recovered_empty = 0;
  size_t recovered_behind = 0;
  size_t recovered_at_ack = 0;
  for (uint64_t k = 0; k < clean_ops; ++k) {
    storage::FaultInjectionEnv env;
    env.set_torn_write_bytes(5);
    ServeOptions options;
    options.env = &env;
    options.checkpoint_dir = kCheckpointVroot;
    auto manager = MakeManager(std::move(options));
    env.CrashAtOp(k);
    bool created_acked = false;
    const size_t acked = DriveSession(*manager, *store, goal, &created_acked);
    ASSERT_TRUE(env.dead()) << "crash point " << k << " did not fire";
    ASSERT_LE(acked, kLabels);

    for (const ReplayScenario& scenario : Scenarios(k)) {
      const std::string dir =
          FreshDir(util::StrFormat("k%llu_%s",
                                   static_cast<unsigned long long>(k),
                                   scenario.tag));
      ASSERT_TRUE(env.ReplayDurableInto(kCheckpointVroot, dir, scenario.mode,
                                        scenario.torn_seed)
                      .ok());

      ServeOptions recover_options;
      recover_options.checkpoint_dir = dir;
      auto recovered = MakeManager(std::move(recover_options));
      const util::Status status = recovered->RecoverSessions();
      ASSERT_TRUE(status.ok())
          << "crash point " << k << " (" << scenario.tag
          << "): recovery failed: " << status;
      // Recovery garbage-collects staging leftovers.
      for (const auto& entry : std::filesystem::directory_iterator(dir)) {
        EXPECT_FALSE(util::EndsWith(entry.path().string(), ".tmp"))
            << "crash point " << k << " left " << entry.path();
      }

      const auto stats = recovered->GetStats();
      ASSERT_LE(stats.live, 1u);
      if (stats.live == 0) {
        // The create itself never became durable — only reachable while
        // crashing inside the create's own persist.
        EXPECT_EQ(acked, 0u)
            << "crash point " << k << " (" << scenario.tag
            << "): acknowledged labels lost with the whole session";
        ++recovered_empty;
        continue;
      }

      // Old XOR new per checkpoint write: every acknowledged label is
      // durable; the in-flight one may or may not be.
      auto session_status = recovered->Status("s1");
      ASSERT_TRUE(session_status.ok()) << session_status.status();
      const size_t steps = session_status->steps;
      ASSERT_GE(steps, acked)
          << "crash point " << k << " (" << scenario.tag
          << "): acknowledged label lost";
      ASSERT_LE(steps, std::min(acked + 1, kLabels))
          << "crash point " << k << " (" << scenario.tag
          << "): unacknowledged labels invented";
      if (steps == acked) {
        ++recovered_at_ack;
      } else {
        ++recovered_behind;  // ack lost in flight, label still durable
      }

      // Byte-identical remaining transcript: the recovered session must
      // continue exactly like the reference from pick index `steps` on.
      for (size_t i = steps; i < reference_picks.size(); ++i) {
        auto suggested = recovered->Suggest("s1");
        ASSERT_TRUE(suggested.ok()) << suggested.status();
        ASSERT_FALSE(suggested->done)
            << "crash point " << k << " (" << scenario.tag
            << "): done early at step " << i;
        ASSERT_EQ(suggested->class_id, reference_picks[i])
            << "crash point " << k << " (" << scenario.tag
            << "): pick diverged at step " << i;
        ASSERT_TRUE(recovered
                        ->Label("s1", suggested->class_id,
                                reference_answers[i])
                        .ok());
      }
      auto result = recovered->Result("s1");
      ASSERT_TRUE(result.ok());
      EXPECT_TRUE(result->done);
      EXPECT_TRUE(result->identified_goal)
          << "crash point " << k << " (" << scenario.tag << ")";
    }
  }
  // All three recovery outcomes must be reachable across the sweep, or the
  // enumeration is vacuous.
  EXPECT_GT(recovered_empty, 0u);
  EXPECT_GT(recovered_at_ack, 0u);
  EXPECT_GT(recovered_behind, 0u);
}

}  // namespace
}  // namespace jim::serve
