// End-to-end serving test: 64 concurrent sessions over localhost TCP, a
// daemon kill + restart mid-stream, and the byte-identical-transcript
// guarantee. Protocol:
//   1. For each of 64 session configs (strategies cycling through
//      lookahead-entropy / lookahead-minmax / local-bottom-up / random,
//      distinct seeds, goal Q2), capture the full oracle-driven response
//      transcript from an uninterrupted reference daemon.
//   2. Daemon A (checkpointing on): 64 client threads create their
//      sessions and drive i%3 steps each, asserting every response line
//      equals the reference's, then daemon A is shut down and destroyed.
//   3. Daemon B recovers every session from the checkpoint directory; the
//      clients drive their sessions to completion and every remaining
//      response line — suggest, label, result — must be byte-identical to
//      the reference transcript from the step where the kill landed.
// Both serving modes run the same protocol. Responses carry no session id,
// which is what makes transcripts diffable across daemons with different
// id mints.

#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/jim.h"
#include "gtest/gtest.h"
#include "serve/client.h"
#include "serve/server.h"
#include "serve/session_manager.h"
#include "serve/transport.h"
#include "util/bitset.h"
#include "util/json_reader.h"
#include "util/string_util.h"
#include "workload/travel.h"

namespace jim::serve {
namespace {

constexpr size_t kSessions = 64;
const char* const kStrategies[] = {"lookahead-entropy", "lookahead-minmax",
                                   "local-bottom-up", "random"};

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "serve_e2e_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

std::unique_ptr<SessionManager> MakeManager(ServeOptions options) {
  options.default_instance = "figure1";
  options.max_sessions = 128;
  auto manager = std::make_unique<SessionManager>(std::move(options));
  manager->RegisterInstance("figure1", workload::Figure1StorePtr());
  return manager;
}

Request CreateRequestFor(size_t i) {
  Request request;
  request.verb = "create";
  request.strategy = kStrategies[i % 4];
  request.goal = workload::kQ2;
  request.seed = 100 + i;
  return request;
}

/// The oracle: answers by whether the suggested representative tuple is
/// selected by the goal predicate.
class Oracle {
 public:
  Oracle() {
    store_ = workload::Figure1StorePtr();
    const auto goal =
        core::JoinPredicate::Parse(store_->schema(), workload::kQ2).value();
    selected_ = goal.SelectedRows(*store_);
  }
  bool Answer(const std::string& suggest_line) const {
    auto parsed = util::ParseJson(suggest_line);
    EXPECT_TRUE(parsed.ok()) << suggest_line;
    const int64_t tuple = parsed->GetInt("tuple", -1);
    EXPECT_GE(tuple, 0) << suggest_line;
    return selected_.Test(static_cast<size_t>(tuple));
  }
  static bool Done(const std::string& suggest_line) {
    auto parsed = util::ParseJson(suggest_line);
    EXPECT_TRUE(parsed.ok()) << suggest_line;
    EXPECT_TRUE(parsed->GetBool("ok", false)) << suggest_line;
    return parsed->GetBool("done", false);
  }

 private:
  std::shared_ptr<const core::TupleStore> store_;
  util::DynamicBitset selected_;
};

/// Captures the uninterrupted response transcript of session config `i`:
/// suggest,label,suggest,label,...,suggest(done),result — raw lines,
/// straight from the server's request handler.
std::vector<std::string> ReferenceTranscript(Server& server,
                                             const Oracle& oracle, size_t i) {
  bool shutdown_requested = false;
  const std::string create_response =
      server.HandleLine(RequestToLine(CreateRequestFor(i)),
                        &shutdown_requested);
  auto created = util::ParseJson(create_response);
  EXPECT_TRUE(created.ok() && created->GetBool("ok", false))
      << create_response;
  const std::string session = created->GetString("session", "");
  EXPECT_FALSE(session.empty());

  std::vector<std::string> lines;
  for (size_t step = 0; step < 1000; ++step) {
    const std::string suggest_response =
        server.HandleLine(SuggestLine(session), &shutdown_requested);
    lines.push_back(suggest_response);
    if (Oracle::Done(suggest_response)) break;
    lines.push_back(server.HandleLine(
        LabelLine(session, static_cast<uint64_t>(util::ParseJson(
                               suggest_response)
                               ->GetInt("class", -1)),
                  oracle.Answer(suggest_response)),
        &shutdown_requested));
  }
  lines.push_back(server.HandleLine(ResultLine(session),
                                    &shutdown_requested));
  return lines;
}

void RunModeE2E(ServingMode mode) {
  const Oracle oracle;
  const std::string tag =
      std::string(ServingModeName(mode));

  // Phase 0: reference transcripts from an uninterrupted daemon.
  std::vector<std::vector<std::string>> reference(kSessions);
  {
    ServeOptions options;
    options.mode = mode;
    auto manager = MakeManager(std::move(options));
    Server server(manager.get(), ListenTcp(0).value());
    for (size_t i = 0; i < kSessions; ++i) {
      reference[i] = ReferenceTranscript(server, oracle, i);
      ASSERT_GE(reference[i].size(), 4u) << "session " << i << " too short";
      // Every transcript ends with a done-suggest and an
      // identified_goal result.
      const std::string& result_line = reference[i].back();
      auto result = util::ParseJson(result_line);
      ASSERT_TRUE(result.ok());
      EXPECT_TRUE(result->GetBool("identified_goal", false)) << result_line;
    }
  }

  const std::string checkpoint_dir = FreshDir(tag);
  std::vector<std::string> session_ids(kSessions);

  // Phase 1: daemon A — concurrent clients drive i%3 steps each, then the
  // daemon dies with every session mid-stream.
  {
    ServeOptions options;
    options.mode = mode;
    options.checkpoint_dir = checkpoint_dir;
    auto manager = MakeManager(std::move(options));
    ServerOptions server_options;
    server_options.max_connections = 16;  // exercise connection queueing
    Server server(manager.get(), ListenTcp(0).value(), server_options);
    server.Start();
    const uint16_t port = PortOfAddress(server.address()).value();

    std::vector<std::thread> clients;
    for (size_t i = 0; i < kSessions; ++i) {
      clients.emplace_back([&, i] {
        auto client = Client::ConnectTcp(port);
        ASSERT_TRUE(client.ok()) << client.status();
        auto session = client->Create(CreateRequestFor(i));
        ASSERT_TRUE(session.ok()) << session.status();
        session_ids[i] = *session;
        for (size_t step = 0; step < i % 3; ++step) {
          auto suggest_response = client->CallRaw(SuggestLine(*session));
          ASSERT_TRUE(suggest_response.ok());
          ASSERT_EQ(*suggest_response, reference[i][2 * step])
              << tag << " session " << i << " step " << step;
          if (Oracle::Done(*suggest_response)) break;
          auto label_response = client->CallRaw(
              LabelLine(*session,
                        static_cast<uint64_t>(
                            util::ParseJson(*suggest_response)
                                ->GetInt("class", -1)),
                        oracle.Answer(*suggest_response)));
          ASSERT_TRUE(label_response.ok());
          ASSERT_EQ(*label_response, reference[i][2 * step + 1])
              << tag << " session " << i << " step " << step;
        }
      });
    }
    for (std::thread& client : clients) client.join();
    EXPECT_EQ(manager->GetStats().live, kSessions);
    server.Shutdown();
  }

  // Phase 2: daemon B recovers everything and the clients finish their
  // sessions; every remaining line must equal the reference's.
  {
    ServeOptions options;
    options.mode = mode;
    options.checkpoint_dir = checkpoint_dir;
    auto manager = MakeManager(std::move(options));
    ASSERT_TRUE(manager->RecoverSessions().ok());
    EXPECT_EQ(manager->GetStats().recovered, kSessions);
    Server server(manager.get(), ListenTcp(0).value());
    server.Start();
    const uint16_t port = PortOfAddress(server.address()).value();

    std::vector<std::thread> clients;
    for (size_t i = 0; i < kSessions; ++i) {
      clients.emplace_back([&, i] {
        auto client = Client::ConnectTcp(port);
        ASSERT_TRUE(client.ok()) << client.status();
        const std::string& session = session_ids[i];
        size_t line = 2 * (i % 3);  // where the kill landed
        for (; line + 1 < reference[i].size(); line += 2) {
          auto suggest_response = client->CallRaw(SuggestLine(session));
          ASSERT_TRUE(suggest_response.ok());
          ASSERT_EQ(*suggest_response, reference[i][line])
              << tag << " session " << i << " post-restart line " << line;
          if (Oracle::Done(*suggest_response)) break;
          auto label_response = client->CallRaw(
              LabelLine(session,
                        static_cast<uint64_t>(
                            util::ParseJson(*suggest_response)
                                ->GetInt("class", -1)),
                        oracle.Answer(*suggest_response)));
          ASSERT_TRUE(label_response.ok());
          ASSERT_EQ(*label_response, reference[i][line + 1])
              << tag << " session " << i << " post-restart line "
              << line + 1;
        }
        auto result_response = client->CallRaw(ResultLine(session));
        ASSERT_TRUE(result_response.ok());
        ASSERT_EQ(*result_response, reference[i].back())
            << tag << " session " << i;
        ASSERT_TRUE(client->Close(session).ok());
      });
    }
    for (std::thread& client : clients) client.join();
    EXPECT_EQ(manager->GetStats().live, 0u);
    server.Shutdown();
  }
}

TEST(ServerE2ETest, ManySessionsModeSurvivesDaemonRestart) {
  RunModeE2E(ServingMode::kManySessions);
}

TEST(ServerE2ETest, FewSessionsModeSurvivesDaemonRestart) {
  RunModeE2E(ServingMode::kFewSessions);
}

TEST(ServerE2ETest, ShutdownVerbStopsTheDaemon) {
  auto manager = MakeManager(ServeOptions{});
  Server server(manager.get(), ListenTcp(0).value());
  server.Start();
  const uint16_t port = PortOfAddress(server.address()).value();
  auto client = Client::ConnectTcp(port);
  ASSERT_TRUE(client.ok()) << client.status();
  auto response = client->Call(R"({"verb":"shutdown"})");
  ASSERT_TRUE(response.ok()) << response.status();
  server.Wait();  // returns because the verb tore the daemon down
  EXPECT_FALSE(Client::ConnectTcp(port).ok());
}

TEST(ServerE2ETest, MalformedAndUnknownRequestsFailTyped) {
  auto manager = MakeManager(ServeOptions{});
  Server server(manager.get(), ListenTcp(0).value());
  server.Start();
  const uint16_t port = PortOfAddress(server.address()).value();
  auto client = Client::ConnectTcp(port);
  ASSERT_TRUE(client.ok()) << client.status();

  auto bad_json = client->Call("this is not json");
  EXPECT_EQ(bad_json.status().code(), util::StatusCode::kInvalidArgument);
  auto bad_verb = client->Call(R"({"verb":"frobnicate"})");
  EXPECT_EQ(bad_verb.status().code(), util::StatusCode::kInvalidArgument);
  auto no_session = client->Call(R"({"verb":"suggest"})");
  EXPECT_EQ(no_session.status().code(), util::StatusCode::kInvalidArgument);
  auto unknown_session = client->Call(SuggestLine("s404"));
  EXPECT_EQ(unknown_session.status().code(), util::StatusCode::kNotFound);
  // The connection survives every error.
  EXPECT_TRUE(client->Call(R"({"verb":"ping"})").ok());
  server.Shutdown();
}

TEST(ServerE2ETest, AdmissionRejectionCrossesTheWire) {
  ServeOptions options;
  options.max_sessions = 1;
  options.default_instance = "figure1";
  SessionManager manager(std::move(options));
  manager.RegisterInstance("figure1", workload::Figure1StorePtr());
  Server server(&manager, ListenTcp(0).value());
  server.Start();
  const uint16_t port = PortOfAddress(server.address()).value();
  auto client = Client::ConnectTcp(port);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->Create(CreateRequestFor(0)).ok());
  auto rejected = client->Create(CreateRequestFor(1));
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(),
            util::StatusCode::kResourceExhausted);
  server.Shutdown();
}

}  // namespace
}  // namespace jim::serve
