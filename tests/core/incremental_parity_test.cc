// Randomized parity tests for the incremental classification engine: the
// cached/incremental paths (knowledge cache + worklist propagation,
// SimulateLabelBoth, StateKey memo keys) must agree exactly with the naive
// references (fresh-state Classify, two SimulateLabel calls, CanonicalKey)
// over seeded random sessions.

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/inference_state.h"
#include "core/strategies.h"
#include "util/rng.h"
#include "workload/synthetic.h"
#include "util/check.h"

namespace jim::core {
namespace {

// Parity suites run with the invariant auditor on (see util/check.h): every
// JIM_AUDIT checkpoint inside the engine re-derives its CheckInvariants
// contract while the parity assertions run, so a divergence is caught at
// the mutation that introduced it, not at the final transcript diff.
const bool kAuditInvariantsOn = [] {
  ::jim::util::SetAuditInvariants(true);
  return true;
}();

workload::SyntheticWorkload MakeWorkload(uint64_t seed, size_t tuples,
                                         size_t attributes) {
  util::Rng rng(seed);
  workload::SyntheticSpec spec;
  spec.num_tuples = tuples;
  spec.num_attributes = attributes;
  spec.domain_size = 3;  // small domain: rich accidental-equality structure
  spec.goal_constraints = 2;
  return workload::MakeSyntheticWorkload(spec, rng);
}

/// Replays the engine's label history into a fresh InferenceState and
/// classifies every class from scratch — the naive reference the incremental
/// engine must match.
void ExpectStatusesMatchFreshState(const InferenceEngine& engine) {
  InferenceState fresh(engine.store().num_attributes());
  for (const LabeledExample& example : engine.history()) {
    const size_t cls = engine.class_of_tuple(example.tuple_index);
    ASSERT_TRUE(
        fresh.ApplyLabel(engine.tuple_class(cls).partition, example.label)
            .ok());
  }
  size_t informative_count = 0;
  for (size_t c = 0; c < engine.num_classes(); ++c) {
    const ClassStatus status = engine.class_status(c);
    if (status == ClassStatus::kLabeledPositive ||
        status == ClassStatus::kLabeledNegative) {
      continue;  // explicit labels are engine bookkeeping, not classification
    }
    const TupleClassification expected =
        fresh.Classify(engine.tuple_class(c).partition);
    switch (expected) {
      case TupleClassification::kInformative:
        EXPECT_EQ(status, ClassStatus::kInformative) << "class " << c;
        ++informative_count;
        break;
      case TupleClassification::kForcedPositive:
        EXPECT_EQ(status, ClassStatus::kForcedPositive) << "class " << c;
        break;
      case TupleClassification::kForcedNegative:
        EXPECT_EQ(status, ClassStatus::kForcedNegative) << "class " << c;
        break;
    }
    // The cached knowledge of informative classes must be the true
    // K_c = θ_P ∧ Part(c) under the current state.
    if (expected == TupleClassification::kInformative) {
      EXPECT_EQ(engine.ClassKnowledge(c),
                fresh.theta_p().Meet(engine.tuple_class(c).partition))
          << "stale knowledge cache for class " << c;
    }
  }
  EXPECT_EQ(engine.InformativeClasses().size(), informative_count);
  // The worklist mirrors the statuses exactly, ascending.
  std::vector<size_t> expected_worklist;
  for (size_t c = 0; c < engine.num_classes(); ++c) {
    if (engine.class_status(c) == ClassStatus::kInformative) {
      expected_worklist.push_back(c);
    }
  }
  EXPECT_EQ(engine.InformativeClasses(), expected_worklist);
}

TEST(IncrementalParityTest, CachedClassificationMatchesFreshStateReplay) {
  util::Rng rng(11);
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    const auto workload = MakeWorkload(seed, 120, 5);
    InferenceEngine engine(workload.instance);
    ExpectStatusesMatchFreshState(engine);
    while (!engine.IsDone()) {
      const std::vector<size_t>& informative = engine.InformativeClasses();
      const size_t cls = rng.PickOne(informative);
      const Label label =
          rng.UniformInt(0, 1) == 0 ? Label::kPositive : Label::kNegative;
      ASSERT_TRUE(engine.SubmitClassLabel(cls, label).ok());
      ExpectStatusesMatchFreshState(engine);
    }
  }
}

TEST(IncrementalParityTest, SimulateLabelBothMatchesTwoSimulateLabelCalls) {
  util::Rng rng(23);
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    const auto workload = MakeWorkload(seed, 150, 6);
    InferenceEngine engine(workload.instance);
    while (!engine.IsDone()) {
      // Compare every informative candidate at every step of the session.
      const std::vector<size_t> informative = engine.InformativeClasses();
      for (size_t cls : informative) {
        const auto both = engine.SimulateLabelBoth(cls);
        const auto plus = engine.SimulateLabel(cls, Label::kPositive);
        const auto minus = engine.SimulateLabel(cls, Label::kNegative);
        EXPECT_EQ(both.positive.pruned_classes, plus.pruned_classes);
        EXPECT_EQ(both.positive.pruned_tuples, plus.pruned_tuples);
        EXPECT_EQ(both.negative.pruned_classes, minus.pruned_classes);
        EXPECT_EQ(both.negative.pruned_tuples, minus.pruned_tuples);
      }
      const size_t cls = rng.PickOne(informative);
      const Label label =
          rng.UniformInt(0, 1) == 0 ? Label::kPositive : Label::kNegative;
      ASSERT_TRUE(engine.SubmitClassLabel(cls, label).ok());
    }
  }
}

TEST(IncrementalParityTest, SimulatedImpactMatchesActualSubmission) {
  // SimulateLabelBoth's prediction must equal the real pruning when the
  // label is then submitted — across whole random sessions.
  util::Rng rng(37);
  for (uint64_t seed = 10; seed <= 13; ++seed) {
    const auto workload = MakeWorkload(seed, 100, 5);
    InferenceEngine engine(workload.instance);
    while (!engine.IsDone()) {
      const std::vector<size_t> informative = engine.InformativeClasses();
      const size_t before = engine.NumInformativeTuples();
      const size_t cls = rng.PickOne(informative);
      const Label label =
          rng.UniformInt(0, 1) == 0 ? Label::kPositive : Label::kNegative;
      const auto both = engine.SimulateLabelBoth(cls);
      const auto predicted =
          label == Label::kPositive ? both.positive : both.negative;
      ASSERT_TRUE(engine.SubmitClassLabel(cls, label).ok());
      EXPECT_EQ(before - engine.NumInformativeTuples(),
                predicted.pruned_tuples);
      EXPECT_EQ(informative.size() - engine.InformativeClasses().size(),
                predicted.pruned_classes);
    }
  }
}

TEST(IncrementalParityTest, StateKeyMatchesCanonicalKey) {
  // Two states agree on StateKey iff they agree on the string CanonicalKey —
  // across the states reached by random sessions on a fixed instance.
  const auto workload = MakeWorkload(3, 80, 5);
  util::Rng rng(51);
  std::vector<InferenceState> states;
  std::vector<std::string> canonical;
  for (int session = 0; session < 6; ++session) {
    InferenceEngine engine(workload.instance);
    states.push_back(engine.state());
    canonical.push_back(engine.state().CanonicalKey());
    while (!engine.IsDone()) {
      const size_t cls = rng.PickOne(engine.InformativeClasses());
      const Label label =
          rng.UniformInt(0, 1) == 0 ? Label::kPositive : Label::kNegative;
      ASSERT_TRUE(engine.SubmitClassLabel(cls, label).ok());
      states.push_back(engine.state());
      canonical.push_back(engine.state().CanonicalKey());
    }
  }
  std::vector<InferenceState::StateKey> keys;
  keys.reserve(states.size());
  for (const InferenceState& state : states) {
    keys.push_back(state.MakeStateKey());
  }
  for (size_t i = 0; i < states.size(); ++i) {
    for (size_t j = 0; j < states.size(); ++j) {
      EXPECT_EQ(keys[i] == keys[j], canonical[i] == canonical[j])
          << "states " << i << " / " << j;
      if (keys[i] == keys[j]) {
        EXPECT_EQ(InferenceState::StateKeyHash{}(keys[i]),
                  InferenceState::StateKeyHash{}(keys[j]));
      }
    }
  }
}

TEST(IncrementalParityTest, LookaheadPickUnchangedByFastPath) {
  // Score parity (tested above) already forces identical picks for every
  // aggregate; this cross-checks the end result once: the strategy's pick
  // equals the argmax of naively-scored candidates (ties toward the smaller
  // class id, matching the documented determinism).
  const auto workload = MakeWorkload(7, 150, 6);
  InferenceEngine engine(workload.instance);
  auto strategy = MakeStrategy("lookahead-minmax").value();
  int steps = 0;
  while (!engine.IsDone() && steps < 8) {
    const size_t pick = strategy->PickClass(engine);
    const std::vector<size_t>& candidates = engine.InformativeClasses();
    size_t best = candidates.front();
    size_t best_score = 0;
    bool first = true;
    for (size_t cls : candidates) {
      const auto plus = engine.SimulateLabel(cls, Label::kPositive);
      const auto minus = engine.SimulateLabel(cls, Label::kNegative);
      const size_t score = std::min(plus.pruned_tuples, minus.pruned_tuples);
      if (first || score > best_score) {
        best = cls;
        best_score = score;
        first = false;
      }
    }
    EXPECT_EQ(pick, best) << "step " << steps;
    ASSERT_TRUE(engine.SubmitClassLabel(pick, Label::kNegative).ok());
    ++steps;
  }
}

}  // namespace
}  // namespace jim::core
