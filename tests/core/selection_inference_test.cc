// Tests for the selection+join extension (queries mixing attribute
// equalities with constant selections) — the product-lattice generalization
// of the paper's query class.

#include "core/selection_inference.h"

#include <gtest/gtest.h>

#include "core/session.h"
#include "util/rng.h"
#include "workload/synthetic.h"
#include "workload/travel.h"

namespace jim::core {
namespace {

rel::Schema TravelSchema() {
  return rel::Schema::FromNames({"From", "To", "Airline", "City", "Discount"});
}

TEST(SelectionQueryParseTest, MixedConjuncts) {
  const auto q = SelectionJoinQuery::Parse(
                     TravelSchema(), "To=City && Airline='AF'")
                     .value();
  EXPECT_EQ(q.NumJoinConstraints(), 1u);
  EXPECT_EQ(q.NumSelectionConstraints(), 1u);
  EXPECT_TRUE(q.partition().SameBlock(1, 3));
  EXPECT_TRUE(q.constants().at(2).Equals(rel::Value("AF")));
}

TEST(SelectionQueryParseTest, NumericConstants) {
  const auto schema = rel::Schema::FromNames({"a", "b"});
  const auto q1 = SelectionJoinQuery::Parse(schema, "a=42").value();
  EXPECT_TRUE(q1.constants().at(0).Equals(rel::Value(int64_t{42})));
  const auto q2 = SelectionJoinQuery::Parse(schema, "b=2.5").value();
  EXPECT_TRUE(q2.constants().at(1).Equals(rel::Value(2.5)));
}

TEST(SelectionQueryParseTest, Errors) {
  EXPECT_FALSE(SelectionJoinQuery::Parse(TravelSchema(), "Nope='x'").ok());
  EXPECT_FALSE(SelectionJoinQuery::Parse(TravelSchema(), "To=Nowhere").ok());
  EXPECT_FALSE(SelectionJoinQuery::Parse(TravelSchema(), "To City").ok());
}

TEST(SelectionQueryTest, SelectsRespectsBothKinds) {
  const auto q = SelectionJoinQuery::Parse(
                     TravelSchema(), "To=City && Airline='AF'")
                     .value();
  const auto instance = workload::Figure1Instance();
  // Q1 selects rows {3,4,8,10} (1-based); of those, Airline='AF' holds for
  // 3 and 10 only.
  std::vector<size_t> selected;
  for (size_t t = 0; t < instance.num_rows(); ++t) {
    if (q.Selects(instance.row(t))) selected.push_back(t + 1);
  }
  EXPECT_EQ(selected, (std::vector<size_t>{3, 10}));
}

TEST(SelectionQueryTest, ToStringShowsLiterals) {
  const auto q = SelectionJoinQuery::Parse(
                     TravelSchema(), "To=City && Airline='AF'")
                     .value();
  EXPECT_EQ(q.ToString(),
            "To\xE2\x89\x88"
            "City \xE2\x88\xA7 Airline='AF'");
}

TEST(SelectionStateTest, PositiveNarrowsConstants) {
  SelectionInferenceState state(5);
  const auto instance = workload::Figure1Instance();
  // Tuple (3): Paris Lille AF Lille AF.
  ASSERT_TRUE(state.ApplyLabel(instance.row(2), Label::kPositive).ok());
  ASSERT_TRUE(state.constants_p().has_value());
  EXPECT_EQ(state.constants_p()->size(), 5u);  // every attribute pinned
  // Tuple (4): Lille NYC AA NYC AA — shares no constant with (3) except none.
  ASSERT_TRUE(state.ApplyLabel(instance.row(3), Label::kPositive).ok());
  EXPECT_TRUE(state.constants_p()->empty());
  // The partition knowledge is the meet, as in the pure-join case.
  EXPECT_EQ(state.theta_p().ToString(), "{0|1,3|2,4}");
}

TEST(SelectionStateTest, ForcedClassificationsAndContradictions) {
  SelectionInferenceState state(5);
  const auto instance = workload::Figure1Instance();
  ASSERT_TRUE(state.ApplyLabel(instance.row(2), Label::kPositive).ok());
  // After one positive, the identical row is forced positive...
  EXPECT_EQ(state.Classify(instance.row(2)),
            TupleClassification::kForcedPositive);
  // ...but unlike the pure-join case, tuple (4) is NOT forced positive:
  // the hypothesis could include City='Lille'.
  EXPECT_EQ(state.Classify(instance.row(3)),
            TupleClassification::kInformative);
  // Contradiction is rejected.
  EXPECT_EQ(state.ApplyLabel(instance.row(2), Label::kNegative).code(),
            util::StatusCode::kFailedPrecondition);
}

TEST(SelectionStateTest, NegativePrunesExactMatchesOnly) {
  SelectionInferenceState state(3);
  using rel::Value;
  const rel::Tuple s = {Value("a"), Value("b"), Value("c")};
  ASSERT_TRUE(state.ApplyLabel(s, Label::kNegative).ok());
  EXPECT_EQ(state.Classify(s), TupleClassification::kForcedNegative);
  // A different tuple remains informative (its exact-match query is live).
  EXPECT_EQ(state.Classify({Value("a"), Value("b"), Value("x")}),
            TupleClassification::kInformative);
}

TEST(SelectionStateTest, IsConsistentMatchesDefinition) {
  SelectionInferenceState state(3);
  using rel::Value;
  const rel::Tuple pos = {Value("a"), Value("a"), Value("b")};
  const rel::Tuple neg = {Value("a"), Value("a"), Value("c")};
  ASSERT_TRUE(state.ApplyLabel(pos, Label::kPositive).ok());
  ASSERT_TRUE(state.ApplyLabel(neg, Label::kNegative).ok());
  // {0,1} join alone selects both pos and neg -> inconsistent.
  EXPECT_FALSE(
      state.IsConsistent(lat::Partition::FromLabels({0, 0, 1}), {}));
  // {0,1} join plus C2='b' separates them -> consistent.
  EXPECT_TRUE(state.IsConsistent(lat::Partition::FromLabels({0, 0, 1}),
                                 {{2, Value("b")}}));
  // Constants not shared by the positive are inconsistent.
  EXPECT_FALSE(state.IsConsistent(lat::Partition::Singletons(3),
                                  {{2, Value("zzz")}}));
}

TEST(SelectionSessionTest, InfersJoinPlusConstantOnFigure1) {
  const auto instance = workload::Figure1InstancePtr();
  const auto goal = SelectionJoinQuery::Parse(
                        instance->schema(), "To=City && Airline='AF'")
                        .value();
  const auto result = RunSelectionSession(instance, goal);
  EXPECT_TRUE(result.identified_goal);
  ASSERT_TRUE(result.result.has_value());
  // The result is instance-equivalent; check it selects exactly {3, 10}.
  std::vector<size_t> selected;
  for (size_t t = 0; t < instance->num_rows(); ++t) {
    if (result.result->Selects(instance->row(t))) selected.push_back(t + 1);
  }
  EXPECT_EQ(selected, (std::vector<size_t>{3, 10}));
  EXPECT_LE(result.interactions, instance->num_rows());
}

TEST(SelectionSessionTest, PureJoinGoalsStillWork) {
  const auto instance = workload::Figure1InstancePtr();
  for (const char* goal_text : {workload::kQ1, workload::kQ2}) {
    const auto goal =
        SelectionJoinQuery::Parse(instance->schema(), goal_text).value();
    const auto result = RunSelectionSession(instance, goal);
    EXPECT_TRUE(result.identified_goal) << goal_text;
  }
}

TEST(SelectionSessionTest, RandomizedWorkloads) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    util::Rng rng(seed * 7);
    workload::SyntheticSpec spec;
    spec.num_attributes = 4;
    spec.num_tuples = 40;
    spec.domain_size = 3;
    spec.goal_constraints = 1;
    const auto workload = workload::MakeSyntheticWorkload(spec, rng);
    // Pure-join goal via the extended engine.
    const SelectionJoinQuery goal(workload.instance->schema(),
                                  workload.goal.partition(), {});
    const auto result = RunSelectionSession(workload.instance, goal, seed);
    EXPECT_TRUE(result.identified_goal) << "seed " << seed;
  }
}

TEST(SelectionSessionTest, GoalSelectingNothing) {
  // A constant never present: the inference must converge on "empty result"
  // and report identification.
  const auto instance = workload::Figure1InstancePtr();
  const auto goal = SelectionJoinQuery::Parse(instance->schema(),
                                              "Airline='Lufthansa'")
                        .value();
  const auto result = RunSelectionSession(instance, goal);
  EXPECT_TRUE(result.identified_goal);
}

TEST(SelectionSessionTest, RicherSpaceCostsMoreQuestions) {
  // The price of the bigger hypothesis space, quantified: the same
  // pure-join goal needs at least as many questions under selection+join
  // inference as under pure-join inference.
  const auto instance = workload::Figure1InstancePtr();
  const auto join_goal =
      JoinPredicate::Parse(instance->schema(), workload::kQ2).value();
  auto strategy = MakeStrategy("lookahead-minmax").value();
  const auto pure = RunSession(instance, join_goal, *strategy);

  const auto extended_goal =
      SelectionJoinQuery::Parse(instance->schema(), workload::kQ2).value();
  const auto extended = RunSelectionSession(instance, extended_goal);
  EXPECT_GE(extended.interactions, pure.interactions);
}

}  // namespace
}  // namespace jim::core
