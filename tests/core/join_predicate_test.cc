#include "core/join_predicate.h"

#include <gtest/gtest.h>

#include "lattice/enumeration.h"
#include "util/rng.h"
#include "workload/travel.h"

namespace jim::core {
namespace {

rel::Schema TravelSchema() {
  return rel::Schema::FromNames({"From", "To", "Airline", "City", "Discount"});
}

TEST(ParseTest, SingleEquality) {
  const auto p = JoinPredicate::Parse(TravelSchema(), "To=City").value();
  EXPECT_EQ(p.NumConstraints(), 1u);
  EXPECT_TRUE(p.partition().SameBlock(1, 3));
}

TEST(ParseTest, ConjunctionsInAllSpellings) {
  const auto expected =
      JoinPredicate::Parse(TravelSchema(), "To=City && Airline=Discount")
          .value();
  // Note: "\x88" must end its literal — a following [0-9a-fA-F] character
  // would be swallowed into the hex escape.
  for (const char* text :
       {"To=City AND Airline=Discount", "To=City and Airline=Discount",
        "To=City & Airline=Discount", "To = City &&  Airline = Discount",
        "To\xE2\x89\x88" "City \xE2\x88\xA7 Airline=Discount"}) {
    const auto parsed = JoinPredicate::Parse(TravelSchema(), text);
    ASSERT_TRUE(parsed.ok()) << text;
    EXPECT_EQ(parsed->partition(), expected.partition()) << text;
  }
}

TEST(ParseTest, EmptyIsEmptyPredicate) {
  const auto p = JoinPredicate::Parse(TravelSchema(), "").value();
  EXPECT_TRUE(p.IsEmptyPredicate());
  EXPECT_EQ(p.ToString(), "(empty predicate)");
  EXPECT_EQ(p.ToSqlWhere(), "TRUE");
}

TEST(ParseTest, TransitiveChains) {
  const auto p =
      JoinPredicate::Parse(TravelSchema(), "From=To && To=City").value();
  EXPECT_TRUE(p.partition().SameBlock(0, 3));  // From ~ City by transitivity
  EXPECT_EQ(p.NumConstraints(), 2u);
}

TEST(ParseTest, Errors) {
  EXPECT_FALSE(JoinPredicate::Parse(TravelSchema(), "To=Nowhere").ok());
  EXPECT_FALSE(JoinPredicate::Parse(TravelSchema(), "To City").ok());
  EXPECT_FALSE(JoinPredicate::Parse(TravelSchema(), "To=City=From").ok());
}

TEST(SelectsTest, ChecksEqualities) {
  const auto p = JoinPredicate::Parse(TravelSchema(), "To=City").value();
  using rel::Value;
  EXPECT_TRUE(p.Selects({Value("a"), Value("b"), Value("c"), Value("b"),
                         Value("e")}));
  EXPECT_FALSE(p.Selects({Value("a"), Value("b"), Value("c"), Value("x"),
                          Value("e")}));
}

TEST(SelectsTest, NullsNeverSatisfyEqualities) {
  const auto p = JoinPredicate::Parse(TravelSchema(), "To=City").value();
  using rel::Value;
  EXPECT_FALSE(
      p.Selects({Value("a"), Value(), Value("c"), Value(), Value("e")}));
}

TEST(SelectsTest, EmptyPredicateSelectsEverything) {
  const JoinPredicate p{TravelSchema()};
  using rel::Value;
  EXPECT_TRUE(p.Selects({Value(), Value(), Value(), Value(), Value()}));
}

TEST(ContainmentTest, MoreConstraintsMeansContained) {
  const auto q1 = JoinPredicate::Parse(TravelSchema(), "To=City").value();
  const auto q2 =
      JoinPredicate::Parse(TravelSchema(), "To=City && Airline=Discount")
          .value();
  const JoinPredicate empty{TravelSchema()};
  EXPECT_TRUE(q2.ContainedIn(q1));
  EXPECT_TRUE(q1.ContainedIn(empty));
  EXPECT_TRUE(q2.ContainedIn(empty));
  EXPECT_FALSE(empty.ContainedIn(q1));
  EXPECT_TRUE(q1.ContainedIn(q1));
}

TEST(TuplePartitionTest, GroupsEqualValues) {
  using rel::Value;
  const auto part = TuplePartition(
      {Value("x"), Value("y"), Value("x"), Value("z"), Value("y")});
  EXPECT_EQ(part.ToString(), "{0,2|1,4|3}");
}

TEST(TuplePartitionTest, NullsAreSingletons) {
  using rel::Value;
  const auto part = TuplePartition({Value(), Value(), Value("x")});
  EXPECT_EQ(part, lat::Partition::Singletons(3));
}

TEST(TuplePartitionTest, MixedTypesNeverGroup) {
  using rel::Value;
  const auto part =
      TuplePartition({Value(int64_t{1}), Value(1.0), Value("1")});
  EXPECT_EQ(part, lat::Partition::Singletons(3));
}

TEST(TuplePartitionTest, AllEqualIsTop) {
  using rel::Value;
  const auto part = TuplePartition({Value("a"), Value("a"), Value("a")});
  EXPECT_EQ(part, lat::Partition::Top(3));
}

// The defining property:  θ selects t  ⇔  θ ≤ Part(t).
TEST(TuplePartitionTest, SelectionCharacterization) {
  util::Rng rng(6);
  for (int trial = 0; trial < 50; ++trial) {
    rel::Tuple tuple;
    for (int a = 0; a < 5; ++a) {
      // In-place construction: moving a temporary Value trips GCC 12's
      // variant/string -Wmaybe-uninitialized false positive under -Werror.
      tuple.emplace_back(rng.UniformInt(0, 2));
    }
    const lat::Partition part = TuplePartition(tuple);
    lat::VisitAllPartitions(5, [&](const lat::Partition& theta) {
      const JoinPredicate predicate{TravelSchema(), theta};
      EXPECT_EQ(predicate.Selects(tuple), theta.Refines(part))
          << theta.ToString();
      return true;
    });
  }
}

TEST(InstanceEquivalenceTest, OnFigure1) {
  const auto instance = workload::Figure1Instance();
  const auto q1 = JoinPredicate::Parse(instance.schema(), workload::kQ1).value();
  const auto q2 = JoinPredicate::Parse(instance.schema(), workload::kQ2).value();
  EXPECT_FALSE(InstanceEquivalent(instance, q1, q2));
  EXPECT_TRUE(InstanceEquivalent(instance, q1, q1));
  // From≈To selects nothing in Figure 1, like From≈To∧Airline≈Discount.
  const auto none1 =
      JoinPredicate::Parse(instance.schema(), "From=To").value();
  const auto none2 =
      JoinPredicate::Parse(instance.schema(), "From=To && Airline=Discount")
          .value();
  EXPECT_TRUE(InstanceEquivalent(instance, none1, none2));
}

TEST(RenderingTest, ToStringAndSql) {
  const auto q2 =
      JoinPredicate::Parse(TravelSchema(), "To=City && Airline=Discount")
          .value();
  EXPECT_EQ(q2.ToString(),
            "To\xE2\x89\x88"
            "City \xE2\x88\xA7 Airline\xE2\x89\x88"
            "Discount");
  EXPECT_EQ(q2.ToSqlWhere(), "To = City AND Airline = Discount");
}

}  // namespace
}  // namespace jim::core
