// The invariant auditor subsystem (util/check.h): every CheckInvariants
// audit passes on healthy structures across all storage backends and every
// engine mutation path, the JIM_AUDIT gate toggles as documented, and a
// violated contract actually dies with a diagnostic — an auditor that
// cannot fail wouldn't be auditing anything.

#include <cmath>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/engine.h"
#include "core/tuple_store.h"
#include "gtest/gtest.h"
#include "lattice/antichain.h"
#include "lattice/partition.h"
#include "relational/dictionary.h"
#include "relational/relation.h"
#include "storage/mapped_store.h"
#include "storage/sharded_store.h"
#include "storage/store_writer.h"
#include "util/check.h"
#include "util/rng.h"
#include "workload/synthetic.h"

namespace jim::core {
namespace {

using rel::Value;

std::shared_ptr<const rel::Relation> MixedRelation() {
  rel::Schema schema;
  schema.AddAttribute({"i", rel::ValueType::kInt64, ""});
  schema.AddAttribute({"d", rel::ValueType::kDouble, ""});
  schema.AddAttribute({"s", rel::ValueType::kString, "Q"});
  rel::Relation relation{"mixed", schema};
  relation.AddRowUnchecked({Value(int64_t{7}), Value(1.5), Value("x")});
  relation.AddRowUnchecked(
      {Value(int64_t{7}), Value(std::nan("")), Value("a,b\tc")});
  relation.AddRowUnchecked({Value::Null(), Value(std::nan("")), Value("")});
  relation.AddRowUnchecked({Value(int64_t{-3}), Value(1.5), Value("x")});
  return std::make_shared<const rel::Relation>(std::move(relation));
}

TEST(InvariantAuditTest, AuditGateTogglesAndSticks) {
  util::SetAuditInvariants(true);
  EXPECT_TRUE(util::AuditInvariantsEnabled());
  util::SetAuditInvariants(false);
  EXPECT_FALSE(util::AuditInvariantsEnabled());
  int audited = 0;
  JIM_AUDIT(++audited);
  EXPECT_EQ(audited, 0);  // gate off: the expression must not run
  util::SetAuditInvariants(true);
  JIM_AUDIT(++audited);
  EXPECT_EQ(audited, 1);
}

TEST(InvariantAuditTest, LatticeStructuresPassOnHealthyInputs) {
  lat::Partition::Top(5).CheckInvariants();
  lat::Partition::Singletons(5).CheckInvariants();
  lat::Partition::FromPairs(5, {{0, 2}, {1, 4}}).value().CheckInvariants();

  lat::Antichain antichain;
  antichain.Insert(lat::Partition::FromPairs(4, {{0, 1}}).value());
  antichain.Insert(lat::Partition::FromPairs(4, {{2, 3}}).value());
  antichain.Insert(lat::Partition::FromPairs(4, {{0, 2}, {1, 3}}).value());
  antichain.CheckInvariants();
}

TEST(InvariantAuditTest, DictionaryWithNaNsAndDuplicatesPasses) {
  rel::Dictionary dictionary;
  const uint32_t a = dictionary.GetOrAdd(Value(int64_t{1}));
  EXPECT_EQ(dictionary.GetOrAdd(Value(int64_t{1})), a);
  const uint32_t nan1 = dictionary.GetOrAdd(Value(std::nan("")));
  const uint32_t nan2 = dictionary.GetOrAdd(Value(std::nan("")));
  EXPECT_NE(nan1, nan2);  // NaN ≠ NaN mints fresh codes
  dictionary.GetOrAdd(Value("x"));
  dictionary.GetOrAdd(Value(1.5));
  dictionary.CheckInvariants();
}

TEST(InvariantAuditTest, EveryStoreBackendPassesTheContractAudit) {
  const auto relation = MixedRelation();
  const auto in_memory = MakeRelationStore(relation);
  CheckStoreInvariants(*in_memory);

  const std::string path =
      ::testing::TempDir() + "invariant_audit_backends.jimc";
  ASSERT_TRUE(storage::WriteStore(*in_memory, path).ok());
  const auto mapped = storage::MappedTupleStore::Open(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status();
  (*mapped)->CheckInvariants();
  CheckStoreInvariants(**mapped);

  storage::StoreWriterOptions first_half, second_half;
  first_half.num_tuples = 2;
  second_half.first_tuple = 2;
  const std::string path_a =
      ::testing::TempDir() + "invariant_audit_shard_a.jimc";
  const std::string path_b =
      ::testing::TempDir() + "invariant_audit_shard_b.jimc";
  ASSERT_TRUE(storage::WriteStore(*in_memory, path_a, first_half).ok());
  ASSERT_TRUE(storage::WriteStore(*in_memory, path_b, second_half).ok());
  const auto shard_a = storage::MappedTupleStore::Open(path_a);
  const auto shard_b = storage::MappedTupleStore::Open(path_b);
  ASSERT_TRUE(shard_a.ok() && shard_b.ok());
  const auto sharded =
      storage::ShardedTupleStore::Create("mixed", {*shard_a, *shard_b});
  ASSERT_TRUE(sharded.ok()) << sharded.status();
  (*sharded)->CheckInvariants();
  CheckStoreInvariants(**sharded);
}

TEST(InvariantAuditTest, EngineAuditHoldsThroughASessionOnEveryPath) {
  util::Rng rng(41);
  workload::SyntheticSpec spec;
  spec.num_attributes = 5;
  spec.num_tuples = 120;
  spec.domain_size = 3;
  spec.goal_constraints = 2;
  const auto workload = workload::MakeSyntheticWorkload(spec, rng);

  util::SetAuditInvariants(true);
  InferenceEngine engine(workload.instance);  // ctor runs JIM_AUDIT itself
  engine.CheckInvariants();

  // Drive a session: every accepted label re-audits inside Submit*, and the
  // explicit audits here pin the state between mutations. Alternate tuple
  // and class labels to cover both paths, plus a rejected duplicate label
  // (the audit must hold on rejection too).
  int labeled = 0;
  while (!engine.InformativeClasses().empty() && labeled < 8) {
    const size_t cls = engine.InformativeClasses().front();
    const Label label =
        labeled % 2 == 0 ? Label::kPositive : Label::kNegative;
    const Label opposite =
        labeled % 2 == 0 ? Label::kNegative : Label::kPositive;
    const util::Status accepted = engine.SubmitClassLabel(cls, label);
    ASSERT_TRUE(accepted.ok()) << accepted.ToString();
    engine.CheckInvariants();
    EXPECT_FALSE(engine.SubmitClassLabel(cls, opposite).ok());
    engine.CheckInvariants();
    ++labeled;
  }
  EXPECT_GT(labeled, 0);

  // A copy-on-write clone and its original must both audit clean after the
  // clone diverges.
  InferenceEngine clone(engine);
  if (!clone.InformativeClasses().empty()) {
    const size_t cls = clone.InformativeClasses().front();
    ASSERT_TRUE(clone.SubmitClassLabel(cls, Label::kNegative).ok());
  }
  clone.CheckInvariants();
  engine.CheckInvariants();
  util::SetAuditInvariants(false);
}

TEST(InvariantAuditDeathTest, CheckMacrosDieWithTheStreamedDiagnostic) {
  EXPECT_DEATH(JIM_CHECK(1 + 1 == 3) << "arithmetic drift", "arithmetic");
  EXPECT_DEATH(JIM_CHECK_EQ(2, 3) << "equality", "2 vs 3");
  JIM_CHECK(true) << "never evaluated";  // the passing side stays silent
}

TEST(InvariantAuditDeathTest, ViolatedStoreContractIsFatal) {
  // A backend that lies: TupleCodes reports a different code than code().
  // The contract audit must catch it and say which cell.
  class LyingStore final : public TupleStore {
   public:
    explicit LyingStore(std::shared_ptr<const TupleStore> base)
        : base_(std::move(base)) {}
    const std::string& name() const override { return base_->name(); }
    const rel::Schema& schema() const override { return base_->schema(); }
    size_t num_tuples() const override { return base_->num_tuples(); }
    uint32_t code(size_t t, size_t a) const override {
      return base_->code(t, a);
    }
    void TupleCodes(size_t t, uint32_t* out) const override {
      base_->TupleCodes(t, out);
      if (t == 1) out[0] ^= 1;
    }
    rel::Value DecodeValue(size_t t, size_t a) const override {
      return base_->DecodeValue(t, a);
    }
    size_t ApproxBytes() const override { return base_->ApproxBytes(); }

   private:
    std::shared_ptr<const TupleStore> base_;
  };
  const LyingStore lying(MakeRelationStore(MixedRelation()));
  EXPECT_DEATH(CheckStoreInvariants(lying), "TupleCodes disagrees");
}

}  // namespace
}  // namespace jim::core
