#include "core/engine.h"

#include <gtest/gtest.h>

#include "core/oracle.h"
#include "util/rng.h"
#include "workload/synthetic.h"
#include "workload/travel.h"

namespace jim::core {
namespace {

std::shared_ptr<const rel::Relation> SmallInstance() {
  return workload::Figure1InstancePtr();
}

TEST(EngineTest, BuildsClassesByValuePartition) {
  InferenceEngine engine(SmallInstance());
  EXPECT_EQ(engine.num_tuples(), 12u);
  // Figure 1 has 6 distinct value partitions:
  // ⊥:{1,5,9}, {F,C}:{2,6,11}, {T,C}{A,D}:{3,4}, {T,C}:{8,10},
  // {F,C}{A,D}:{7}, {A,D}:{12}.
  EXPECT_EQ(engine.num_classes(), 6u);
  // Tuples 3 and 4 (rows 2,3) share a class.
  EXPECT_EQ(engine.class_of_tuple(2), engine.class_of_tuple(3));
  EXPECT_NE(engine.class_of_tuple(2), engine.class_of_tuple(0));
  // Class sizes sum to the tuple count.
  size_t total = 0;
  for (size_t c = 0; c < engine.num_classes(); ++c) {
    total += engine.tuple_class(c).size();
  }
  EXPECT_EQ(total, 12u);
}

TEST(EngineTest, InitiallyAllInformativeOnFigure1) {
  InferenceEngine engine(SmallInstance());
  EXPECT_EQ(engine.InformativeClasses().size(), 6u);
  EXPECT_EQ(engine.NumInformativeTuples(), 12u);
  EXPECT_FALSE(engine.IsDone());
}

TEST(EngineTest, AllEqualTupleIsForcedPositiveFromTheStart) {
  rel::Relation relation{"t", rel::Schema::FromNames({"a", "b"})};
  using rel::Value;
  ASSERT_TRUE(relation.AddRow({Value("x"), Value("x")}).ok());
  ASSERT_TRUE(relation.AddRow({Value("x"), Value("y")}).ok());
  InferenceEngine engine(
      std::make_shared<const rel::Relation>(std::move(relation)));
  // Tuple 0 satisfies every predicate over 2 attributes -> never informative.
  EXPECT_EQ(engine.tuple_status(0), TupleStatus::kForcedPositive);
  EXPECT_EQ(engine.tuple_status(1), TupleStatus::kInformative);
}

TEST(EngineTest, SimulateLabelMatchesActualSubmission) {
  util::Rng rng(808);
  workload::SyntheticSpec spec;
  spec.num_attributes = 5;
  spec.num_tuples = 120;
  spec.domain_size = 4;
  const auto workload = workload::MakeSyntheticWorkload(spec, rng);

  for (int step = 0; step < 30; ++step) {
    InferenceEngine engine(workload.instance);
    // Play a random prefix of labels.
    ExactOracle oracle(workload.goal);
    for (int pre = 0; pre < step % 4; ++pre) {
      const auto informative = engine.InformativeClasses();
      if (informative.empty()) break;
      const size_t cls = informative[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(informative.size()) - 1))];
      const size_t tuple = engine.tuple_class(cls).tuple_indices[0];
      ASSERT_TRUE(
          engine.SubmitClassLabel(cls, oracle.LabelFor(
                                           workload.instance->row(tuple)))
              .ok());
    }
    const auto informative = engine.InformativeClasses();
    if (informative.empty()) continue;
    const size_t cls = informative[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(informative.size()) - 1))];
    for (const Label label : {Label::kPositive, Label::kNegative}) {
      const auto predicted = engine.SimulateLabel(cls, label);
      InferenceEngine copy = engine;
      const size_t informative_before = copy.NumInformativeTuples();
      ASSERT_TRUE(copy.SubmitClassLabel(cls, label).ok());
      const size_t informative_after = copy.NumInformativeTuples();
      EXPECT_EQ(predicted.pruned_tuples,
                informative_before - informative_after);
    }
  }
}

TEST(EngineTest, PrunedClassesNeverComeBack) {
  // Monotonicity: once a class leaves the informative pool it stays out.
  util::Rng rng(909);
  workload::SyntheticSpec spec;
  spec.num_attributes = 6;
  spec.num_tuples = 150;
  spec.domain_size = 3;
  const auto workload = workload::MakeSyntheticWorkload(spec, rng);
  InferenceEngine engine(workload.instance);
  ExactOracle oracle(workload.goal);

  std::vector<bool> was_uninformative(engine.num_classes(), false);
  while (!engine.IsDone()) {
    for (size_t c = 0; c < engine.num_classes(); ++c) {
      const bool informative =
          engine.class_status(c) == ClassStatus::kInformative;
      if (was_uninformative[c]) {
        ASSERT_FALSE(informative) << "class " << c << " was resurrected";
      }
      if (!informative) was_uninformative[c] = true;
    }
    const auto informative = engine.InformativeClasses();
    const size_t cls = informative[0];
    const size_t tuple = engine.tuple_class(cls).tuple_indices[0];
    ASSERT_TRUE(engine
                    .SubmitClassLabel(
                        cls, oracle.LabelFor(workload.instance->row(tuple)))
                    .ok());
  }
}

TEST(EngineTest, StatsAreConserved) {
  InferenceEngine engine(SmallInstance());
  ASSERT_TRUE(engine.SubmitTupleLabel(2, Label::kPositive).ok());
  ASSERT_TRUE(engine.SubmitTupleLabel(6, Label::kNegative).ok());
  const auto stats = engine.GetStats();
  EXPECT_EQ(stats.num_tuples, 12u);
  EXPECT_EQ(stats.num_classes, 6u);
  EXPECT_EQ(stats.interactions, 2u);
  EXPECT_EQ(stats.wasted_interactions, 0u);
  EXPECT_EQ(stats.informative_tuples + stats.forced_positive_tuples +
                stats.forced_negative_tuples +
                stats.explicitly_labeled_tuples,
            12u);
}

TEST(EngineTest, WastedInteractionCounting) {
  InferenceEngine engine(SmallInstance());
  ASSERT_TRUE(engine.SubmitTupleLabel(2, Label::kPositive).ok());
  // Tuple 3 (row index) shares the class -> consistent but uninformative.
  ASSERT_TRUE(engine.SubmitTupleLabel(3, Label::kPositive).ok());
  EXPECT_EQ(engine.GetStats().wasted_interactions, 1u);
  EXPECT_EQ(engine.GetStats().interactions, 2u);
}

TEST(EngineTest, OutOfRangeInputsRejected) {
  InferenceEngine engine(SmallInstance());
  EXPECT_EQ(engine.SubmitTupleLabel(99, Label::kPositive).code(),
            util::StatusCode::kOutOfRange);
  EXPECT_EQ(engine.SubmitClassLabel(99, Label::kPositive).code(),
            util::StatusCode::kOutOfRange);
}

TEST(EngineTest, HistoryRecordsSubmissions) {
  InferenceEngine engine(SmallInstance());
  ASSERT_TRUE(engine.SubmitTupleLabel(11, Label::kNegative).ok());
  ASSERT_TRUE(engine.SubmitTupleLabel(2, Label::kPositive).ok());
  ASSERT_EQ(engine.history().size(), 2u);
  EXPECT_EQ(engine.history()[0].tuple_index, 11u);
  EXPECT_EQ(engine.history()[0].label, Label::kNegative);
  EXPECT_EQ(engine.history()[1].tuple_index, 2u);
}

TEST(EngineTest, ResultIsThetaP) {
  InferenceEngine engine(SmallInstance());
  ASSERT_TRUE(engine.SubmitTupleLabel(2, Label::kPositive).ok());
  EXPECT_EQ(engine.Result().partition(), engine.state().theta_p());
}

TEST(EngineTest, CertainAnswersAreMonotoneAndFinal) {
  const auto instance = SmallInstance();
  const auto goal =
      JoinPredicate::Parse(instance->schema(), workload::kQ2).value();
  InferenceEngine engine(instance);
  ExactOracle oracle(goal);
  util::DynamicBitset previous_in(engine.num_tuples());
  util::DynamicBitset previous_out(engine.num_tuples());
  while (!engine.IsDone()) {
    const auto certain_in = engine.CertainResultTuples();
    const auto certain_out = engine.CertainNonResultTuples();
    // Monotone growth, never overlapping.
    EXPECT_TRUE(previous_in.IsSubsetOf(certain_in));
    EXPECT_TRUE(previous_out.IsSubsetOf(certain_out));
    EXPECT_FALSE(certain_in.Intersects(certain_out));
    // Certain answers are sound w.r.t. the goal (honest oracle).
    for (size_t t : certain_in.ToVector()) {
      EXPECT_TRUE(goal.Selects(instance->row(t)));
    }
    for (size_t t : certain_out.ToVector()) {
      EXPECT_FALSE(goal.Selects(instance->row(t)));
    }
    previous_in = certain_in;
    previous_out = certain_out;
    const size_t cls = engine.InformativeClasses()[0];
    const size_t tuple = engine.tuple_class(cls).tuple_indices[0];
    ASSERT_TRUE(
        engine.SubmitClassLabel(cls, oracle.LabelFor(instance->row(tuple)))
            .ok());
  }
  // At termination the certain sets partition the instance and the positive
  // side equals the goal's selected set.
  const auto final_in = engine.CertainResultTuples();
  const auto final_out = engine.CertainNonResultTuples();
  EXPECT_EQ(final_in.Count() + final_out.Count(), engine.num_tuples());
  EXPECT_EQ(final_in, goal.SelectedRows(*instance));
}

TEST(EngineTest, CopyIsIndependent) {
  InferenceEngine engine(SmallInstance());
  InferenceEngine copy = engine;
  ASSERT_TRUE(copy.SubmitTupleLabel(2, Label::kPositive).ok());
  EXPECT_EQ(engine.GetStats().interactions, 0u);
  EXPECT_EQ(copy.GetStats().interactions, 1u);
  EXPECT_EQ(engine.tuple_status(3), TupleStatus::kInformative);
}

}  // namespace
}  // namespace jim::core
