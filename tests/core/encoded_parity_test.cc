// Parity of the encoded (code-kernel) pipeline against the legacy
// Value-row path:
//   - Part(t) and the class table from integer codes equal the reference
//     TuplePartition grouping over decoded Value rows, at any thread count;
//   - full session transcripts over a factorized universal table are
//     byte-identical to sessions over the materialized Value-row instance,
//     across interaction modes 1–4 and every strategy.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/jim.h"
#include "exec/thread_pool.h"
#include "query/universal_table.h"
#include "relational/catalog.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "workload/synthetic.h"
#include "workload/travel.h"
#include "util/check.h"

namespace jim::core {
namespace {

// Parity suites run with the invariant auditor on (see util/check.h): every
// JIM_AUDIT checkpoint inside the engine re-derives its CheckInvariants
// contract while the parity assertions run, so a divergence is caught at
// the mutation that introduced it, not at the final transcript diff.
const bool kAuditInvariantsOn = [] {
  ::jim::util::SetAuditInvariants(true);
  return true;
}();

/// Reference class construction: the pre-columnar engine's algorithm —
/// Part(t) via TuplePartition over Value rows, classes keyed by partition in
/// first-occurrence order.
struct ReferenceClasses {
  std::vector<lat::Partition> partitions;
  std::vector<size_t> class_of_tuple;
};

ReferenceClasses BuildReferenceClasses(const rel::Relation& relation) {
  ReferenceClasses reference;
  std::unordered_map<lat::Partition, size_t, lat::PartitionHash> ids;
  for (size_t t = 0; t < relation.num_rows(); ++t) {
    lat::Partition part = TuplePartition(relation.row(t));
    auto [it, inserted] = ids.emplace(part, reference.partitions.size());
    if (inserted) reference.partitions.push_back(std::move(part));
    reference.class_of_tuple.push_back(it->second);
  }
  return reference;
}

void ExpectClassesMatchReference(const InferenceEngine& engine,
                                 const rel::Relation& relation,
                                 const std::string& context) {
  const ReferenceClasses reference = BuildReferenceClasses(relation);
  ASSERT_EQ(engine.num_classes(), reference.partitions.size()) << context;
  for (size_t c = 0; c < engine.num_classes(); ++c) {
    EXPECT_EQ(engine.tuple_class(c).partition, reference.partitions[c])
        << context << " class " << c;
  }
  for (size_t t = 0; t < relation.num_rows(); ++t) {
    EXPECT_EQ(engine.class_of_tuple(t), reference.class_of_tuple[t])
        << context << " tuple " << t;
  }
}

TEST(EncodedParityTest, ClassesMatchValueRowReferenceAtAnyThreadCount) {
  for (uint64_t seed : {3u, 19u, 271u}) {
    util::Rng rng(seed);
    workload::SyntheticSpec spec;
    spec.num_attributes = 5 + seed % 3;
    spec.num_tuples = 400;
    spec.domain_size = 3;
    spec.goal_constraints = 2;
    const auto workload = workload::MakeSyntheticWorkload(spec, rng);

    const InferenceEngine serial(workload.store, /*pool=*/nullptr);
    ExpectClassesMatchReference(serial, *workload.instance,
                                util::StrFormat("seed=%zu serial",
                                                size_t{seed}));
    for (size_t threads : {2u, 8u}) {
      exec::ThreadPool pool(threads);
      const InferenceEngine parallel(workload.store, &pool);
      ExpectClassesMatchReference(
          parallel, *workload.instance,
          util::StrFormat("seed=%zu threads=%zu", size_t{seed},
                          size_t{threads}));
      // Bitwise-identical knowledge too, not just equal partitions.
      ASSERT_EQ(parallel.num_classes(), serial.num_classes());
      for (size_t c = 0; c < serial.num_classes(); ++c) {
        EXPECT_EQ(parallel.ClassKnowledge(c), serial.ClassKnowledge(c));
        EXPECT_EQ(parallel.tuple_class(c).tuple_indices,
                  serial.tuple_class(c).tuple_indices);
      }
      EXPECT_EQ(parallel.InformativeClasses(), serial.InformativeClasses());
    }
  }
}

TEST(EncodedParityTest, NullsAndTypeCollisionsPartitionLikeValues) {
  using rel::Value;
  rel::Relation relation{"nulls",
                         rel::Schema::FromNames({"a", "b", "c", "d"})};
  relation.AddRowUnchecked(
      {Value::Null(), Value::Null(), Value("x"), Value("x")});
  relation.AddRowUnchecked(
      {Value(int64_t{1}), Value("1"), Value(1.0), Value(int64_t{1})});
  relation.AddRowUnchecked(
      {Value::Null(), Value("x"), Value("x"), Value::Null()});
  auto shared = std::make_shared<const rel::Relation>(std::move(relation));
  const InferenceEngine engine(MakeRelationStore(shared), nullptr);
  ExpectClassesMatchReference(engine, *shared, "nulls-and-types");
}

/// Session transcript with the timing column zeroed (wall-clock is the one
/// legitimately non-deterministic field), rendered through the production
/// JSON serializer so the comparison is byte-level.
std::string TranscriptJson(SessionResult result) {
  for (SessionStep& step : result.steps) step.micros = 0;
  result.total_seconds = 0;
  return SessionResultToJson(result);
}

TEST(EncodedParityTest, TranscriptsIdenticalAcrossModesAndStrategies) {
  // A two-relation catalog whose factorized universal table and its
  // materialized twin must drive byte-identical sessions.
  util::Rng rng(99);
  const rel::Catalog catalog =
      workload::LargeTravelCatalog(/*num_flights=*/18, /*num_hotels=*/7,
                                   /*num_cities=*/4, /*num_airlines=*/3, rng);
  query::UniversalTableOptions options;
  options.sample_cap = 90;  // below 18×7=126: exercises the sampled path
  options.seed = 17;
  const auto table =
      query::UniversalTable::Build(catalog, {"Flights", "Hotels"}, options)
          .value();
  ASSERT_TRUE(table.is_sampled());
  const auto materialized =
      std::make_shared<const rel::Relation>(table.Materialize());
  const auto goal =
      JoinPredicate::Parse(table.schema(), "Flights.To = Hotels.City")
          .value();

  for (const std::string& strategy_name : KnownStrategyNames()) {
    if (strategy_name == "optimal") continue;  // exponential; covered below
    for (int mode = 1; mode <= 4; ++mode) {
      SessionOptions session_options;
      session_options.mode = static_cast<InteractionMode>(mode);
      session_options.user_seed = 7 + static_cast<uint64_t>(mode);

      auto strategy_encoded = MakeStrategy(strategy_name, 5).value();
      ExactOracle oracle_encoded(goal);
      const SessionResult encoded =
          RunSession(table.store(), goal, *strategy_encoded, oracle_encoded,
                     session_options);

      auto strategy_legacy = MakeStrategy(strategy_name, 5).value();
      ExactOracle oracle_legacy(goal);
      const SessionResult legacy =
          RunSession(materialized, goal, *strategy_legacy, oracle_legacy,
                     session_options);

      EXPECT_EQ(TranscriptJson(encoded), TranscriptJson(legacy))
          << strategy_name << " mode " << mode;
      EXPECT_TRUE(encoded.identified_goal)
          << strategy_name << " mode " << mode;
    }
  }
}

TEST(EncodedParityTest, OptimalStrategyTranscriptParityOnFigure1) {
  const rel::Catalog catalog = workload::TravelCatalog();
  const auto table =
      query::UniversalTable::Build(catalog, {"Flights", "Hotels"}).value();
  const auto materialized =
      std::make_shared<const rel::Relation>(table.Materialize());
  const auto goal =
      JoinPredicate::Parse(table.schema(),
                           "Flights.To = Hotels.City && "
                           "Flights.Airline = Hotels.Discount")
          .value();
  for (int mode = 1; mode <= 4; ++mode) {
    SessionOptions session_options;
    session_options.mode = static_cast<InteractionMode>(mode);

    auto strategy_encoded = MakeStrategy("optimal").value();
    ExactOracle oracle_encoded(goal);
    const SessionResult encoded = RunSession(
        table.store(), goal, *strategy_encoded, oracle_encoded,
        session_options);

    auto strategy_legacy = MakeStrategy("optimal").value();
    ExactOracle oracle_legacy(goal);
    const SessionResult legacy = RunSession(
        materialized, goal, *strategy_legacy, oracle_legacy, session_options);

    EXPECT_EQ(TranscriptJson(encoded), TranscriptJson(legacy))
        << "mode " << mode;
  }
}

TEST(EncodedParityTest, NoisyOracleTranscriptParity) {
  // Noise consumes the oracle RNG per asked tuple; identical questions ⇒
  // identical noise stream ⇒ identical transcripts.
  util::Rng rng(41);
  const rel::Catalog catalog = workload::LargeTravelCatalog(10, 6, 3, 2, rng);
  const auto table =
      query::UniversalTable::Build(catalog, {"Flights", "Hotels"}).value();
  const auto materialized =
      std::make_shared<const rel::Relation>(table.Materialize());
  const auto goal =
      JoinPredicate::Parse(table.schema(), "Flights.To = Hotels.City")
          .value();

  auto strategy_encoded = MakeStrategy("lookahead-entropy").value();
  NoisyOracle oracle_encoded(goal, 0.2, 11);
  const SessionResult encoded =
      RunSession(table.store(), goal, *strategy_encoded, oracle_encoded, {});

  auto strategy_legacy = MakeStrategy("lookahead-entropy").value();
  NoisyOracle oracle_legacy(goal, 0.2, 11);
  const SessionResult legacy =
      RunSession(materialized, goal, *strategy_legacy, oracle_legacy, {});

  EXPECT_EQ(TranscriptJson(encoded), TranscriptJson(legacy));
}

}  // namespace
}  // namespace jim::core
