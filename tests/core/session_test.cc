#include "core/session.h"

#include <gtest/gtest.h>

#include "util/rng.h"
#include "workload/setgame.h"
#include "workload/synthetic.h"
#include "workload/travel.h"

namespace jim::core {
namespace {

struct Fixture {
  Fixture()
      : instance(workload::Figure1InstancePtr()),
        goal(JoinPredicate::Parse(instance->schema(), workload::kQ2)
                 .value()) {}
  std::shared_ptr<const rel::Relation> instance;
  JoinPredicate goal;
};

// All four interaction modes identify the goal with an honest user.
class ModeTest : public ::testing::TestWithParam<int> {};

TEST_P(ModeTest, IdentifiesGoal) {
  const Fixture fixture;
  for (uint64_t user_seed : {1u, 9u, 77u}) {
    auto strategy = MakeStrategy("lookahead-entropy", 3).value();
    ExactOracle oracle(fixture.goal);
    SessionOptions options;
    options.mode = static_cast<InteractionMode>(GetParam());
    options.user_seed = user_seed;
    const SessionResult result = RunSession(fixture.instance, fixture.goal,
                                            *strategy, oracle, options);
    EXPECT_TRUE(result.identified_goal) << "user_seed=" << user_seed;
    EXPECT_EQ(result.interactions, result.steps.size());
    EXPECT_GE(result.interactions, 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(AllModes, ModeTest, ::testing::Values(1, 2, 3, 4));

TEST(SessionTest, ParseInteractionModeIsStrict) {
  EXPECT_EQ(ParseInteractionMode("1").value(), InteractionMode::kLabelAll);
  EXPECT_EQ(ParseInteractionMode("4").value(),
            InteractionMode::kMostInformative);
  EXPECT_FALSE(ParseInteractionMode("0").ok());
  EXPECT_FALSE(ParseInteractionMode("5").ok());
  EXPECT_FALSE(ParseInteractionMode("2x").ok());  // no partial parses
  EXPECT_FALSE(ParseInteractionMode("abc").ok());
  EXPECT_FALSE(ParseInteractionMode("").ok());
  EXPECT_FALSE(ParseInteractionMode("99999999999999999999").ok());
}

TEST(SessionTest, Mode1CanWasteEffortOthersCannot) {
  const Fixture fixture;
  for (int mode = 2; mode <= 4; ++mode) {
    auto strategy = MakeStrategy("lookahead-entropy", 5).value();
    ExactOracle oracle(fixture.goal);
    SessionOptions options;
    options.mode = static_cast<InteractionMode>(mode);
    const auto result = RunSession(fixture.instance, fixture.goal, *strategy,
                                   oracle, options);
    EXPECT_EQ(result.wasted_interactions, 0u) << "mode " << mode;
  }
  // Mode 1 wastes effort for most seeds; find one quickly.
  bool wasted_somewhere = false;
  for (uint64_t seed = 1; seed < 20; ++seed) {
    auto strategy = MakeStrategy("lookahead-entropy", 5).value();
    ExactOracle oracle(fixture.goal);
    SessionOptions options;
    options.mode = InteractionMode::kLabelAll;
    options.user_seed = seed;
    const auto result = RunSession(fixture.instance, fixture.goal, *strategy,
                                   oracle, options);
    if (result.wasted_interactions > 0) {
      wasted_somewhere = true;
      break;
    }
  }
  EXPECT_TRUE(wasted_somewhere);
}

TEST(SessionTest, StepsRecordPruning) {
  const Fixture fixture;
  auto strategy = MakeStrategy("lookahead-entropy").value();
  const auto result = RunSession(fixture.instance, fixture.goal, *strategy);
  size_t total_pruned = 0;
  for (const auto& step : result.steps) {
    total_pruned += step.pruned_tuples;
  }
  // Every tuple ends up labeled or pruned.
  EXPECT_EQ(total_pruned, fixture.instance->num_rows());
}

TEST(SessionTest, TopKModeRespectsK) {
  const Fixture fixture;
  // k=1 must behave exactly like mode 4 with the same strategy.
  auto strategy_a = MakeStrategy("lookahead-minmax").value();
  ExactOracle oracle(fixture.goal);
  SessionOptions options;
  options.mode = InteractionMode::kTopK;
  options.top_k = 1;
  const auto topk = RunSession(fixture.instance, fixture.goal, *strategy_a,
                               oracle, options);
  auto strategy_b = MakeStrategy("lookahead-minmax").value();
  options.mode = InteractionMode::kMostInformative;
  const auto most = RunSession(fixture.instance, fixture.goal, *strategy_b,
                               oracle, options);
  ASSERT_EQ(topk.steps.size(), most.steps.size());
  for (size_t i = 0; i < topk.steps.size(); ++i) {
    EXPECT_EQ(topk.steps[i].class_id, most.steps[i].class_id);
  }
}

TEST(SessionTest, NoisyOracleSessionTerminates) {
  const Fixture fixture;
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    auto strategy = MakeStrategy("lookahead-entropy", seed).value();
    NoisyOracle oracle(fixture.goal, /*error_rate=*/0.3, seed);
    SessionOptions options;
    const auto result = RunSession(fixture.instance, fixture.goal, *strategy,
                                   oracle, options);
    // Termination and a well-formed result are guaranteed; identification
    // is not (the oracle lies).
    EXPECT_TRUE(result.result.has_value());
    EXPECT_GE(result.interactions, 1u);
  }
}

TEST(SessionTest, EmptyGoalAndFullGoalAreInferable) {
  const Fixture fixture;
  for (const char* goal_text : {"", "From=To && To=Airline && City=Discount"}) {
    const auto goal =
        JoinPredicate::Parse(fixture.instance->schema(), goal_text).value();
    auto strategy = MakeStrategy("lookahead-entropy").value();
    const auto result = RunSession(fixture.instance, goal, *strategy);
    EXPECT_TRUE(result.identified_goal) << "goal '" << goal_text << "'";
  }
}

TEST(SessionTest, JsonExportIsWellFormed) {
  const Fixture fixture;
  auto strategy = MakeStrategy("lookahead-entropy").value();
  const auto result = RunSession(fixture.instance, fixture.goal, *strategy);
  const std::string json = SessionResultToJson(result);
  // Spot-check structure (a full JSON parser is out of scope).
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"interactions\":" +
                      std::to_string(result.interactions)),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"identified_goal\":true"), std::string::npos);
  EXPECT_NE(json.find("\"steps\":["), std::string::npos);
  // One step object per interaction.
  size_t count = 0;
  for (size_t pos = json.find("\"tuple\":"); pos != std::string::npos;
       pos = json.find("\"tuple\":", pos + 1)) {
    ++count;
  }
  EXPECT_EQ(count, result.interactions);
}

TEST(SessionTest, LargerInstanceFewQuestions) {
  // The headline scalability property on a mid-size instance: the question
  // count is tiny relative to the instance.
  util::Rng rng(2);
  auto instance = workload::SetPairInstance(/*sample_size=*/0, rng);
  const auto goal = workload::SameColorAndShadingGoal(instance->schema());
  auto strategy = MakeStrategy("lookahead-entropy").value();
  const auto result = RunSession(instance, goal, *strategy);
  EXPECT_TRUE(result.identified_goal);
  EXPECT_LE(result.interactions, 20u);
  EXPECT_EQ(instance->num_rows(), 6561u);
}

}  // namespace
}  // namespace jim::core
