// Paper-faithfulness tests: every concrete claim the paper makes about the
// Figure 1 instance must hold in this implementation, byte for byte.
//
// The claims (paper §2, "Motivating example" and "Interactive scenario"):
//  (a) Q1 = To≈City and Q2 = To≈City ∧ Airline≈Discount; Q2 ⊆ Q1.
//  (b) Tuple (3) is selected by both Q1 and Q2.
//  (c) After labeling (3) +, tuple (4) is uninformative.
//  (d) Tuple (8) distinguishes Q1 from Q2: Q1 selects it, Q2 does not.
//  (e) With (3)+, (7)−, (8)−, the unique consistent predicate is Q2.
//  (f) From the empty state, labeling (12) + prunes exactly {(3),(4),(7)};
//      labeling (12) − prunes exactly {(1),(5),(9)}.
//  (g) Positive examples alone cannot distinguish Q2 from Q1.

#include <set>

#include <gtest/gtest.h>

#include "core/jim.h"
#include "workload/travel.h"

namespace jim::core {
namespace {

using workload::Figure1Instance;
using workload::Figure1InstancePtr;

/// Paper tuples are numbered (1)..(12); rows are 0-based.
size_t Row(int paper_number) { return static_cast<size_t>(paper_number - 1); }

class Figure1Test : public ::testing::Test {
 protected:
  Figure1Test()
      : relation_(Figure1InstancePtr()),
        q1_(JoinPredicate::Parse(relation_->schema(), workload::kQ1).value()),
        q2_(JoinPredicate::Parse(relation_->schema(), workload::kQ2).value()) {}

  std::shared_ptr<const rel::Relation> relation_;
  JoinPredicate q1_;
  JoinPredicate q2_;
};

TEST_F(Figure1Test, InstanceMatchesThePaper) {
  ASSERT_EQ(relation_->num_rows(), 12u);
  ASSERT_EQ(relation_->num_attributes(), 5u);
  // Spot-check the rows quoted in the paper's narrative.
  EXPECT_EQ(relation_->row(Row(3))[0].AsString(), "Paris");
  EXPECT_EQ(relation_->row(Row(3))[1].AsString(), "Lille");
  EXPECT_EQ(relation_->row(Row(3))[2].AsString(), "AF");
  EXPECT_EQ(relation_->row(Row(3))[3].AsString(), "Lille");
  EXPECT_EQ(relation_->row(Row(3))[4].AsString(), "AF");
  EXPECT_EQ(relation_->row(Row(8))[0].AsString(), "NYC");
  EXPECT_EQ(relation_->row(Row(8))[3].AsString(), "Paris");
}

TEST_F(Figure1Test, ClaimA_Q2ContainedInQ1) {
  EXPECT_TRUE(q2_.ContainedIn(q1_));
  EXPECT_FALSE(q1_.ContainedIn(q2_));
}

TEST_F(Figure1Test, ClaimB_BothQueriesSelectTuple3) {
  EXPECT_TRUE(q1_.Selects(relation_->row(Row(3))));
  EXPECT_TRUE(q2_.Selects(relation_->row(Row(3))));
  // And tuple 4, per "if the user labels next the tuple (4) with +, both
  // queries remain consistent".
  EXPECT_TRUE(q1_.Selects(relation_->row(Row(4))));
  EXPECT_TRUE(q2_.Selects(relation_->row(Row(4))));
}

TEST_F(Figure1Test, SelectedSetsOfQ1AndQ2) {
  const auto selected_q1 = q1_.SelectedRows(*relation_).ToVector();
  const auto selected_q2 = q2_.SelectedRows(*relation_).ToVector();
  EXPECT_EQ(selected_q1,
            (std::vector<size_t>{Row(3), Row(4), Row(8), Row(10)}));
  EXPECT_EQ(selected_q2, (std::vector<size_t>{Row(3), Row(4)}));
}

TEST_F(Figure1Test, ClaimC_Tuple4UninformativeAfterTuple3Positive) {
  InferenceEngine engine(relation_);
  EXPECT_EQ(engine.tuple_status(Row(4)), TupleStatus::kInformative);
  ASSERT_TRUE(engine.SubmitTupleLabel(Row(3), Label::kPositive).ok());
  // (3) shows as explicitly labeled; (4) is grayed out as uninformative.
  EXPECT_EQ(engine.tuple_status(Row(3)), TupleStatus::kLabeledPositive);
  EXPECT_EQ(engine.tuple_status(Row(4)), TupleStatus::kForcedPositive);
}

TEST_F(Figure1Test, ClaimD_Tuple8DistinguishesQ1FromQ2) {
  EXPECT_TRUE(q1_.Selects(relation_->row(Row(8))));
  EXPECT_FALSE(q2_.Selects(relation_->row(Row(8))));
}

TEST_F(Figure1Test, ClaimE_ThreeLabelsIdentifyQ2) {
  InferenceEngine engine(relation_);
  ASSERT_TRUE(engine.SubmitTupleLabel(Row(3), Label::kPositive).ok());
  ASSERT_TRUE(engine.SubmitTupleLabel(Row(7), Label::kNegative).ok());
  ASSERT_TRUE(engine.SubmitTupleLabel(Row(8), Label::kNegative).ok());

  // "there is only one consistent join predicate (i.e., the above Q2)"
  EXPECT_TRUE(engine.IsDone());
  EXPECT_EQ(engine.Result().partition(), q2_.partition());
  EXPECT_EQ(engine.state().CountConsistent(), 1u);
}

/// Tuples grayed out (forced either way) but not explicitly labeled.
std::set<size_t> GrayedOutTuples(const InferenceEngine& engine) {
  std::set<size_t> grayed;
  for (size_t t = 0; t < engine.num_tuples(); ++t) {
    const TupleStatus status = engine.tuple_status(t);
    if (status == TupleStatus::kForcedPositive ||
        status == TupleStatus::kForcedNegative) {
      grayed.insert(t);
    }
  }
  return grayed;
}

TEST_F(Figure1Test, ClaimF_PruningAfterTuple12Positive) {
  InferenceEngine engine(relation_);
  ASSERT_TRUE(engine.SubmitTupleLabel(Row(12), Label::kPositive).ok());
  // "we are able to prune the tuples that become uninformative: (3),(4),(7)"
  EXPECT_EQ(GrayedOutTuples(engine),
            (std::set<size_t>{Row(3), Row(4), Row(7)}));
}

TEST_F(Figure1Test, ClaimF_PruningAfterTuple12Negative) {
  InferenceEngine engine(relation_);
  ASSERT_TRUE(engine.SubmitTupleLabel(Row(12), Label::kNegative).ok());
  // "...if the user labels tuple (12) as a negative example, we are able to
  // prune the uninformative tuples: (1),(5),(9)"
  EXPECT_EQ(GrayedOutTuples(engine),
            (std::set<size_t>{Row(1), Row(5), Row(9)}));
}

TEST_F(Figure1Test, ClaimG_PositiveExamplesAloneCannotSeparateQ2FromQ1) {
  // Label every tuple Q2 selects as positive; Q1 must remain consistent.
  InferenceEngine engine(relation_);
  for (size_t t : q2_.SelectedRows(*relation_).ToVector()) {
    ASSERT_TRUE(engine.SubmitTupleLabel(t, Label::kPositive).ok());
  }
  EXPECT_TRUE(engine.state().IsConsistent(q1_.partition()));
  EXPECT_TRUE(engine.state().IsConsistent(q2_.partition()));
  EXPECT_FALSE(engine.IsDone());
}

TEST_F(Figure1Test, EndToEndSessionInfersQ2WithEveryStrategy) {
  for (const std::string& name : KnownStrategyNames()) {
    auto strategy = MakeStrategy(name, /*seed=*/42);
    ASSERT_TRUE(strategy.ok()) << name;
    SessionResult result = RunSession(relation_, q2_, **strategy);
    EXPECT_TRUE(result.identified_goal) << name;
    EXPECT_TRUE(
        InstanceEquivalent(*relation_, *result.result, q2_)) << name;
    EXPECT_GE(result.interactions, 1u) << name;
    EXPECT_LE(result.interactions, 12u) << name;
  }
}

TEST_F(Figure1Test, ContradictoryLabelIsRejected) {
  InferenceEngine engine(relation_);
  ASSERT_TRUE(engine.SubmitTupleLabel(Row(3), Label::kPositive).ok());
  // Tuple (4) is now forced positive; a negative label must be rejected.
  const util::Status status =
      engine.SubmitTupleLabel(Row(4), Label::kNegative);
  EXPECT_EQ(status.code(), util::StatusCode::kFailedPrecondition);
  // And the engine state is unchanged — (4) remains grayed out positive.
  EXPECT_EQ(engine.tuple_status(Row(4)), TupleStatus::kForcedPositive);
}

}  // namespace
}  // namespace jim::core
