// Failure injection and adversarial inputs: dishonest users, degenerate
// instances, and hostile label orders. The engine must reject contradictions
// with clean errors (never corrupt state), and terminate on everything else.

#include <gtest/gtest.h>

#include "core/jim.h"
#include "util/rng.h"
#include "workload/synthetic.h"
#include "workload/travel.h"

namespace jim::core {
namespace {

TEST(AdversarialTest, RandomDishonestLabelsNeverCorruptState) {
  // A user labeling at random will eventually contradict herself; every
  // contradiction must surface as kFailedPrecondition and leave the engine
  // in a state that still accepts consistent labels.
  util::Rng rng(13);
  for (int trial = 0; trial < 20; ++trial) {
    InferenceEngine engine(workload::Figure1InstancePtr());
    size_t rejected = 0;
    for (int step = 0; step < 40; ++step) {
      const size_t tuple = static_cast<size_t>(rng.UniformInt(0, 11));
      const Label label =
          rng.Bernoulli(0.5) ? Label::kPositive : Label::kNegative;
      const std::string key_before = engine.state().CanonicalKey();
      const util::Status status = engine.SubmitTupleLabel(tuple, label);
      if (!status.ok()) {
        ++rejected;
        EXPECT_EQ(status.code(), util::StatusCode::kFailedPrecondition);
        EXPECT_EQ(engine.state().CanonicalKey(), key_before)
            << "state changed on a rejected label";
      }
      // The invariant of the honest core: θ_P is always consistent.
      EXPECT_TRUE(engine.state().IsConsistent(engine.state().theta_p()));
    }
    // Random labeling of 40 tuples over 12 rows virtually always trips at
    // least one contradiction.
    EXPECT_GT(rejected + 1, 1u);  // tautological guard; keep loop hot
  }
}

TEST(AdversarialTest, AdversarialAnswersStillTerminate) {
  // An adversary answering to maximize remaining ambiguity (the minimax
  // opponent) cannot prevent termination within #classes questions.
  const auto instance = workload::Figure1InstancePtr();
  InferenceEngine engine(instance);
  auto strategy = MakeStrategy("lookahead-minmax").value();
  size_t questions = 0;
  while (!engine.IsDone()) {
    const size_t cls = strategy->PickClass(engine);
    // Adversary: choose the answer that leaves MORE informative tuples.
    const auto plus = engine.SimulateLabel(cls, Label::kPositive);
    const auto minus = engine.SimulateLabel(cls, Label::kNegative);
    const Label worst = plus.pruned_tuples <= minus.pruned_tuples
                            ? Label::kPositive
                            : Label::kNegative;
    ASSERT_TRUE(engine.SubmitClassLabel(cls, worst).ok());
    ASSERT_LE(++questions, engine.num_classes());
  }
  EXPECT_TRUE(engine.IsDone());
}

TEST(AdversarialTest, AllNegativeAnswers) {
  // A user who wants nothing: every answer negative. The engine must
  // conclude "no consistent predicate selects anything you were shown".
  const auto instance = workload::Figure1InstancePtr();
  InferenceEngine engine(instance);
  auto strategy = MakeStrategy("local-top-down").value();
  while (!engine.IsDone()) {
    ASSERT_TRUE(
        engine.SubmitClassLabel(strategy->PickClass(engine), Label::kNegative)
            .ok());
  }
  // Result selects nothing on the instance.
  EXPECT_EQ(engine.Result().SelectedRows(*instance).Count(), 0u);
}

TEST(AdversarialTest, AllPositiveAnswers) {
  const auto instance = workload::Figure1InstancePtr();
  InferenceEngine engine(instance);
  auto strategy = MakeStrategy("local-bottom-up").value();
  while (!engine.IsDone()) {
    ASSERT_TRUE(
        engine.SubmitClassLabel(strategy->PickClass(engine), Label::kPositive)
            .ok());
  }
  // Everything positive ⇒ the empty predicate (selects all) is the answer.
  EXPECT_TRUE(engine.Result().IsEmptyPredicate());
  EXPECT_EQ(engine.Result().SelectedRows(*instance).Count(), 12u);
}

TEST(DegenerateInstanceTest, SingleTuple) {
  rel::Relation relation{"t", rel::Schema::FromNames({"a", "b", "c"})};
  using rel::Value;
  ASSERT_TRUE(relation.AddRow({Value("x"), Value("x"), Value("y")}).ok());
  InferenceEngine engine(
      std::make_shared<const rel::Relation>(std::move(relation)));
  EXPECT_FALSE(engine.IsDone());
  ASSERT_TRUE(engine.SubmitTupleLabel(0, Label::kPositive).ok());
  EXPECT_TRUE(engine.IsDone());
  EXPECT_EQ(engine.Result().partition().ToString(), "{0,1|2}");
}

TEST(DegenerateInstanceTest, EmptyInstanceIsImmediatelyDone) {
  rel::Relation relation{"t", rel::Schema::FromNames({"a", "b"})};
  InferenceEngine engine(
      std::make_shared<const rel::Relation>(std::move(relation)));
  EXPECT_TRUE(engine.IsDone());
  EXPECT_EQ(engine.num_classes(), 0u);
  EXPECT_EQ(engine.Result().partition(), lat::Partition::Top(2));
}

TEST(DegenerateInstanceTest, AllTuplesIdentical) {
  rel::Relation relation{"t", rel::Schema::FromNames({"a", "b"})};
  using rel::Value;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(relation.AddRow({Value("u"), Value("v")}).ok());
  }
  InferenceEngine engine(
      std::make_shared<const rel::Relation>(std::move(relation)));
  EXPECT_EQ(engine.num_classes(), 1u);
  ASSERT_TRUE(engine.SubmitTupleLabel(0, Label::kNegative).ok());
  EXPECT_TRUE(engine.IsDone());
  // All other tuples grayed negative.
  for (size_t t = 1; t < 5; ++t) {
    EXPECT_EQ(engine.tuple_status(t), TupleStatus::kForcedNegative);
  }
}

TEST(DegenerateInstanceTest, SingleAttribute) {
  // With one attribute the only predicates are ⊥ = ⊤ = "select all";
  // any tuple is forced positive from the start.
  rel::Relation relation{"t", rel::Schema::FromNames({"a"})};
  using rel::Value;
  ASSERT_TRUE(relation.AddRow({Value("x")}).ok());
  ASSERT_TRUE(relation.AddRow({Value("y")}).ok());
  InferenceEngine engine(
      std::make_shared<const rel::Relation>(std::move(relation)));
  EXPECT_TRUE(engine.IsDone());
  EXPECT_EQ(engine.tuple_status(0), TupleStatus::kForcedPositive);
}

TEST(DegenerateInstanceTest, NullHeavyInstance) {
  // NULLs never satisfy equalities; an all-NULL instance can only support
  // negative knowledge about non-trivial predicates.
  rel::Relation relation{"t", rel::Schema::FromNames({"a", "b", "c"})};
  using rel::Value;
  ASSERT_TRUE(relation.AddRow({Value(), Value(), Value()}).ok());
  ASSERT_TRUE(relation.AddRow({Value("x"), Value(), Value()}).ok());
  auto instance = std::make_shared<const rel::Relation>(std::move(relation));
  InferenceEngine engine(instance);
  // Both rows have Part(t) = ⊥, so one class.
  EXPECT_EQ(engine.num_classes(), 1u);
  ASSERT_TRUE(engine.SubmitTupleLabel(0, Label::kNegative).ok());
  EXPECT_TRUE(engine.IsDone());
  EXPECT_EQ(engine.Result().SelectedRows(*instance).Count(), 0u);
}

TEST(AdversarialTest, SelectionStateRejectsContradictionsToo) {
  SelectionInferenceState state(3);
  using rel::Value;
  const rel::Tuple t = {Value("a"), Value("a"), Value("b")};
  ASSERT_TRUE(state.ApplyLabel(t, Label::kPositive).ok());
  EXPECT_EQ(state.ApplyLabel(t, Label::kNegative).code(),
            util::StatusCode::kFailedPrecondition);
  // And vice versa from a negative start.
  SelectionInferenceState other(3);
  ASSERT_TRUE(other.ApplyLabel(t, Label::kNegative).ok());
  EXPECT_EQ(other.ApplyLabel(t, Label::kPositive).code(),
            util::StatusCode::kFailedPrecondition);
}

TEST(AdversarialTest, HostileLabelOrderMatchesAnyOrderResult) {
  // Labels are commutative knowledge: any permutation of the same honest
  // label set must yield the same final state.
  util::Rng rng(555);
  const auto instance = workload::Figure1InstancePtr();
  const auto goal =
      JoinPredicate::Parse(instance->schema(), workload::kQ2).value();
  // Label every class per the goal, in 10 random orders.
  std::string reference_key;
  for (int trial = 0; trial < 10; ++trial) {
    InferenceEngine engine(instance);
    std::vector<size_t> order(engine.num_classes());
    for (size_t c = 0; c < order.size(); ++c) order[c] = c;
    rng.Shuffle(order);
    for (size_t cls : order) {
      const size_t tuple = engine.tuple_class(cls).tuple_indices[0];
      const Label label = goal.Selects(instance->row(tuple))
                              ? Label::kPositive
                              : Label::kNegative;
      ASSERT_TRUE(engine.SubmitClassLabel(cls, label).ok());
    }
    const std::string key = engine.state().CanonicalKey();
    if (trial == 0) {
      reference_key = key;
    } else {
      EXPECT_EQ(key, reference_key) << "order-dependent final state";
    }
  }
}

}  // namespace
}  // namespace jim::core
