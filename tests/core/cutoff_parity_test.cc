// Cutoff-pruned lookahead and the speculative trail, pinned against their
// exhaustive references:
//   - PickClass with cutoff pruning returns the exact class the exhaustive
//     argmax returns, serially and at 1/2/8 threads;
//   - full session transcripts are byte-identical either way;
//   - bound soundness: every skipped candidate's true score is ≤ the bound
//     it was skipped under (the cutoff never discards a potential winner);
//   - SpeculativeSession apply/undo round-trips restore the state and the
//     live list exactly, and the trail-based minimax agrees with a naive
//     state-copying reference solver.

#include <algorithm>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/jim.h"
#include "exec/thread_pool.h"
#include "gtest/gtest.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/rng.h"
#include "workload/synthetic.h"
#include "workload/travel.h"

namespace jim::core {
namespace {

// Like the other parity suites, run with the invariant auditor on: every
// JIM_AUDIT checkpoint (engine construction and labeling) re-derives the
// watch/worklist/pair-cover contracts while these assertions run.
const bool kAuditInvariantsOn = [] {
  ::jim::util::SetAuditInvariants(true);
  return true;
}();

workload::SyntheticWorkload MakeWorkload(uint64_t seed, size_t tuples = 300,
                                         size_t attrs = 6) {
  util::Rng rng(seed);
  workload::SyntheticSpec spec;
  spec.num_attributes = attrs;
  spec.num_tuples = tuples;
  spec.domain_size = 4;
  spec.goal_constraints = 2;
  return workload::MakeSyntheticWorkload(spec, rng);
}

std::vector<LookaheadStrategy::Objective> AllObjectives() {
  return {LookaheadStrategy::Objective::kMinMax,
          LookaheadStrategy::Objective::kExpected,
          LookaheadStrategy::Objective::kEntropy};
}

TEST(CutoffParityTest, PickMatchesExhaustiveAcrossThreadCounts) {
  for (uint64_t seed : {3u, 14u, 159u}) {
    const auto workload = MakeWorkload(seed);
    const InferenceEngine engine(workload.instance);
    ASSERT_FALSE(engine.InformativeClasses().empty());

    for (auto objective : AllObjectives()) {
      LookaheadStrategy exhaustive(objective);
      exhaustive.set_thread_pool(nullptr);
      exhaustive.set_cutoff_enabled(false);
      const size_t reference = exhaustive.PickClass(engine);

      LookaheadStrategy serial(objective);
      serial.set_thread_pool(nullptr);
      EXPECT_EQ(serial.PickClass(engine), reference) << "seed=" << seed;

      for (size_t threads : {1u, 2u, 8u}) {
        exec::ThreadPool pool(threads);
        LookaheadStrategy pruned(objective);
        pruned.set_thread_pool(&pool);
        ASSERT_TRUE(pruned.cutoff_enabled());
        EXPECT_EQ(pruned.PickClass(engine), reference)
            << "seed=" << seed << " threads=" << threads;
      }
    }
  }
}

TEST(CutoffParityTest, TranscriptsMatchExhaustiveAcrossThreadCounts) {
  for (uint64_t seed : {11u, 97u}) {
    const auto workload = MakeWorkload(seed);

    LookaheadStrategy exhaustive(LookaheadStrategy::Objective::kEntropy);
    exhaustive.set_thread_pool(nullptr);
    exhaustive.set_cutoff_enabled(false);
    const SessionResult reference =
        RunSession(workload.instance, workload.goal, exhaustive);
    ASSERT_TRUE(reference.identified_goal);

    auto transcript = [](const SessionResult& result) {
      std::vector<std::tuple<size_t, size_t, Label, size_t>> t;
      for (const SessionStep& step : result.steps) {
        t.emplace_back(step.class_id, step.tuple_index, step.label,
                       step.pruned_tuples);
      }
      return t;
    };

    for (size_t threads : {1u, 2u, 8u}) {
      exec::ThreadPool pool(threads);
      LookaheadStrategy pruned(LookaheadStrategy::Objective::kEntropy);
      pruned.set_thread_pool(&pool);
      const SessionResult result =
          RunSession(workload.instance, workload.goal, pruned);
      EXPECT_EQ(transcript(result), transcript(reference))
          << "seed=" << seed << " threads=" << threads;
    }
  }
}

TEST(CutoffParityTest, SkippedBoundsAreSoundAndSkipsHappen) {
  // Drive whole sessions serially with the cutoff on; at every decision,
  // recompute each skipped candidate's true score exhaustively and check it
  // against the bound it was skipped under. Winners can then never be lost:
  // a skip needs true ≤ bound < some computed score ≤ max.
  size_t total_skips = 0;
  size_t total_evaluated = 0;
  for (uint64_t seed : {5u, 23u}) {
    for (auto objective : AllObjectives()) {
      const auto workload = MakeWorkload(seed);
      InferenceEngine engine(workload.instance);
      ExactOracle oracle(workload.goal);
      LookaheadStrategy pruned(objective);
      pruned.set_thread_pool(nullptr);

      while (!engine.IsDone()) {
        const size_t pick = pruned.PickClass(engine);
        total_evaluated += pruned.last_evaluated();
        for (const LookaheadStrategy::CutoffSkip& skip :
             pruned.last_skips()) {
          ++total_skips;
          const auto both = engine.SimulateLabelBoth(skip.class_id);
          const double truth = pruned.ObjectiveValue(
              both.positive.pruned_tuples, both.negative.pruned_tuples);
          EXPECT_LE(truth, skip.bound)
              << "unsound bound for class " << skip.class_id << " (seed "
              << seed << ")";
          EXPECT_NE(skip.class_id, pick)
              << "the picked class cannot have been skipped";
        }
        const size_t tuple = engine.tuple_class(pick).tuple_indices.front();
        const Label answer =
            oracle.LabelFor(engine.store().DecodeTuple(tuple));
        ASSERT_TRUE(engine.SubmitClassLabel(pick, answer).ok());
      }
    }
  }
  EXPECT_GT(total_evaluated, 0u);
  // The optimization must actually fire on these workloads, not just stay
  // sound vacuously.
  EXPECT_GT(total_skips, 0u) << "cutoff never skipped a candidate";
}

TEST(CutoffParityTest, CutoffDisablesItselfForNonMonotoneObjectives) {
  const auto workload = MakeWorkload(7);
  const InferenceEngine engine(workload.instance);
  // Tsallis α ≤ 0 is not monotone in the pruning counts; the cutoff must
  // fall back to the exhaustive path (and record no skips).
  LookaheadStrategy negative_alpha(LookaheadStrategy::Objective::kEntropy,
                                   /*alpha=*/-0.5);
  negative_alpha.set_thread_pool(nullptr);
  LookaheadStrategy reference(LookaheadStrategy::Objective::kEntropy,
                              /*alpha=*/-0.5);
  reference.set_thread_pool(nullptr);
  reference.set_cutoff_enabled(false);
  EXPECT_EQ(negative_alpha.PickClass(engine), reference.PickClass(engine));
  EXPECT_TRUE(negative_alpha.last_skips().empty());
}

TEST(CutoffParityTest, TrailUndoRestoresStateAndLiveList) {
  const auto workload = MakeWorkload(31, /*tuples=*/120, /*attrs=*/5);
  const InferenceEngine engine(workload.instance);
  SpeculativeSession session(engine);
  session.CheckInvariants();

  const std::string key0 = session.state().CanonicalKey();
  const std::vector<size_t> live0 = session.LiveClasses();
  ASSERT_EQ(live0, engine.InformativeClasses());

  // Depth-3 apply/undo walk over a few branches: after every unwind the
  // state key and the live list must be bit-for-bit the originals.
  const std::vector<Label> labels = {Label::kPositive, Label::kNegative};
  size_t branches = 0;
  for (size_t i = 0; i < std::min<size_t>(live0.size(), 3); ++i) {
    for (Label first : labels) {
      session.Apply(live0[i], first);
      session.CheckInvariants();
      const std::string key1 = session.state().CanonicalKey();
      const std::vector<size_t> live1 = session.LiveClasses();
      EXPECT_LT(live1.size(), live0.size());
      if (!live1.empty()) {
        for (Label second : labels) {
          session.Apply(live1.front(), second);
          session.CheckInvariants();
          if (session.num_live() > 0) {
            session.Apply(session.FirstLive(), Label::kNegative);
            session.Undo();
          }
          session.Undo();
          EXPECT_EQ(session.state().CanonicalKey(), key1);
          EXPECT_EQ(session.LiveClasses(), live1);
          ++branches;
        }
      }
      session.Undo();
      session.CheckInvariants();
      EXPECT_EQ(session.state().CanonicalKey(), key0);
      EXPECT_EQ(session.LiveClasses(), live0);
      EXPECT_EQ(session.depth(), 0u);
    }
  }
  EXPECT_GT(branches, 0u);
}

TEST(CutoffParityTest, SpeculativeSimulateMatchesEngineAtDepthZero) {
  const auto workload = MakeWorkload(42, /*tuples=*/200);
  const InferenceEngine engine(workload.instance);
  SpeculativeSession session(engine);
  for (size_t c : engine.InformativeClasses()) {
    const auto expected = engine.SimulateLabelBoth(c);
    const auto actual = session.SimulateBoth(c);
    EXPECT_EQ(actual.positive.pruned_classes, expected.positive.pruned_classes);
    EXPECT_EQ(actual.positive.pruned_tuples, expected.positive.pruned_tuples);
    EXPECT_EQ(actual.negative.pruned_classes, expected.negative.pruned_classes);
    EXPECT_EQ(actual.negative.pruned_tuples, expected.negative.pruned_tuples);
  }
}

/// The pre-trail minimax, verbatim: full-engine rescan per node, an
/// InferenceState copy per answer branch. Kept here as the oracle the
/// trail-based solver must agree with.
class NaiveMinimaxReference {
 public:
  explicit NaiveMinimaxReference(const InferenceEngine& engine)
      : engine_(engine) {}

  size_t Solve(const InferenceState& state) {
    const std::string key = state.CanonicalKey();
    auto it = memo_.find(key);
    if (it != memo_.end()) return it->second;
    std::vector<size_t> live;
    for (size_t c = 0; c < engine_.num_classes(); ++c) {
      if (engine_.class_status(c) != ClassStatus::kInformative) continue;
      if (state.Classify(engine_.tuple_class(c).partition) ==
          TupleClassification::kInformative) {
        live.push_back(c);
      }
    }
    size_t best = live.empty() ? 0 : SIZE_MAX;
    for (size_t c : live) {
      size_t worst = 0;
      for (Label label : {Label::kPositive, Label::kNegative}) {
        InferenceState next = state;
        JIM_CHECK_OK(
            next.ApplyLabel(engine_.tuple_class(c).partition, label));
        worst = std::max(worst, Solve(next));
      }
      best = std::min(best, 1 + worst);
      if (best == 1) break;
    }
    memo_.emplace(key, best);
    return best;
  }

 private:
  const InferenceEngine& engine_;
  std::unordered_map<std::string, size_t> memo_;
};

TEST(CutoffParityTest, TrailMinimaxMatchesNaiveReference) {
  // Small instances keep the naive reference tractable.
  {
    auto instance = workload::Figure1InstancePtr();
    const InferenceEngine engine(instance);
    NaiveMinimaxReference naive(engine);
    EXPECT_EQ(OptimalWorstCaseQuestions(engine),
              naive.Solve(engine.state()));
  }
  for (uint64_t seed : {1u, 9u}) {
    util::Rng rng(seed);
    workload::SyntheticSpec spec;
    spec.num_attributes = 4;
    spec.num_tuples = 25;
    spec.domain_size = 3;
    spec.goal_constraints = 1;
    const auto workload = workload::MakeSyntheticWorkload(spec, rng);
    const InferenceEngine engine(workload.instance);
    NaiveMinimaxReference naive(engine);
    EXPECT_EQ(OptimalWorstCaseQuestions(engine), naive.Solve(engine.state()))
        << "seed=" << seed;
  }
}

TEST(CutoffParityTest, OptimalStrategyScoresUnchangedOnFigure1) {
  // End-to-end: the rewritten solver drives OptimalStrategy::Score; its
  // per-candidate worst cases must match state-copy recomputation.
  auto instance = workload::Figure1InstancePtr();
  const InferenceEngine engine(instance);
  OptimalStrategy strategy;
  const std::vector<size_t>& candidates = engine.InformativeClasses();
  const std::vector<double> scores = strategy.Score(engine, candidates);
  ASSERT_EQ(scores.size(), candidates.size());
  NaiveMinimaxReference naive(engine);
  for (size_t i = 0; i < candidates.size(); ++i) {
    size_t worst = 0;
    for (Label label : {Label::kPositive, Label::kNegative}) {
      InferenceState next = engine.state();
      ASSERT_TRUE(
          next.ApplyLabel(engine.tuple_class(candidates[i]).partition, label)
              .ok());
      worst = std::max(worst, naive.Solve(next));
    }
    EXPECT_EQ(scores[i], -static_cast<double>(worst)) << "candidate " << i;
  }
}

}  // namespace
}  // namespace jim::core
