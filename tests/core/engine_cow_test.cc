// Copy-on-write semantics of InferenceEngine clones: the class table is
// shared outright, the knowledge cache K_c is shared until the clone's
// first positive label, and no mutation of a clone is ever visible through
// its siblings or the prototype.

#include <memory>

#include "core/engine.h"
#include "core/jim.h"
#include "gtest/gtest.h"
#include "util/rng.h"
#include "workload/synthetic.h"

namespace jim::core {
namespace {

workload::SyntheticWorkload MakeWorkload(uint64_t seed) {
  util::Rng rng(seed);
  workload::SyntheticSpec spec;
  spec.num_attributes = 6;
  spec.num_tuples = 150;
  spec.domain_size = 4;
  spec.goal_constraints = 2;
  return workload::MakeSyntheticWorkload(spec, rng);
}

/// First still-informative class of an engine.
size_t AnyInformative(const InferenceEngine& engine) {
  const auto& informative = engine.InformativeClasses();
  EXPECT_FALSE(informative.empty());
  return informative.front();
}

TEST(EngineCowTest, CloneSharesClassTableAndKnowledge) {
  const auto workload = MakeWorkload(1);
  const InferenceEngine prototype(workload.instance);
  const InferenceEngine clone = prototype;

  // Shared storage is observable through accessor addresses: same objects,
  // not equal copies.
  const size_t c = AnyInformative(prototype);
  EXPECT_EQ(&clone.tuple_class(c), &prototype.tuple_class(c));
  EXPECT_EQ(&clone.ClassKnowledge(c), &prototype.ClassKnowledge(c));
}

TEST(EngineCowTest, PositiveLabelDetachesKnowledge) {
  const auto workload = MakeWorkload(2);
  const InferenceEngine prototype(workload.instance);
  InferenceEngine clone = prototype;

  const size_t labeled = AnyInformative(clone);
  // Remember a class that stays informative in the clone so its (refreshed)
  // K_c can be compared across the engines afterwards.
  ASSERT_TRUE(clone.SubmitClassLabel(labeled, Label::kPositive).ok());

  // The class table is immutable and stays shared...
  EXPECT_EQ(&clone.tuple_class(labeled), &prototype.tuple_class(labeled));
  // ...but the knowledge cache detached: the clone refreshed its own copy.
  EXPECT_NE(&clone.ClassKnowledge(labeled), &prototype.ClassKnowledge(labeled));

  // The prototype saw nothing: same informative pool, no history, and its
  // K_c is still the construction-time value Part(c) (θ_P = ⊤).
  EXPECT_EQ(prototype.history().size(), 0u);
  EXPECT_EQ(prototype.class_status(labeled), ClassStatus::kInformative);
  EXPECT_EQ(prototype.ClassKnowledge(labeled),
            prototype.tuple_class(labeled).partition);
}

TEST(EngineCowTest, NegativeLabelsNeverCopyTheKnowledge) {
  const auto workload = MakeWorkload(3);
  const InferenceEngine prototype(workload.instance);
  InferenceEngine clone = prototype;

  // Negative labels grow the forbidden antichain but never touch K_c, so
  // the clone keeps sharing the cache through any number of them.
  for (int i = 0; i < 3 && !clone.IsDone(); ++i) {
    const size_t c = AnyInformative(clone);
    ASSERT_TRUE(clone.SubmitClassLabel(c, Label::kNegative).ok());
    EXPECT_EQ(&clone.ClassKnowledge(0), &prototype.ClassKnowledge(0))
        << "after negative label " << i;
  }
}

TEST(EngineCowTest, CloneBehavesExactlyLikeAFreshEngine) {
  const auto workload = MakeWorkload(4);
  const InferenceEngine prototype(workload.instance);

  InferenceEngine clone = prototype;
  InferenceEngine fresh(workload.instance);

  // Drive both with the same labels; every observable must stay equal.
  util::Rng rng(99);
  while (!fresh.IsDone()) {
    ASSERT_FALSE(clone.IsDone());
    const auto& informative = fresh.InformativeClasses();
    const size_t c = informative[static_cast<size_t>(rng.UniformInt(
        0, static_cast<int64_t>(informative.size()) - 1))];
    const Label label = rng.Bernoulli(0.5) ? Label::kPositive
                                           : Label::kNegative;
    ASSERT_EQ(fresh.SubmitClassLabel(c, label).ok(),
              clone.SubmitClassLabel(c, label).ok());
    ASSERT_EQ(fresh.InformativeClasses(), clone.InformativeClasses());
    ASSERT_EQ(fresh.GetStats().informative_tuples,
              clone.GetStats().informative_tuples);
  }
  EXPECT_TRUE(clone.IsDone());
  EXPECT_EQ(fresh.Result().ToString(), clone.Result().ToString());
  EXPECT_EQ(prototype.history().size(), 0u);  // never touched
}

TEST(EngineCowTest, CloneSharesSessionArraysUntilFirstLabel) {
  const auto workload = MakeWorkload(6);
  const InferenceEngine prototype(workload.instance);
  InferenceEngine clone = prototype;

  // The flat session arrays (worklist, statuses, explicit labels) are shared
  // by address, like the class table — EngineCopy is pointer bumps only.
  EXPECT_EQ(&clone.InformativeClasses(), &prototype.InformativeClasses());

  // Any label — even a negative one, which never touches the knowledge
  // cache — detaches the session arrays.
  const size_t c = AnyInformative(clone);
  ASSERT_TRUE(clone.SubmitClassLabel(c, Label::kNegative).ok());
  EXPECT_NE(&clone.InformativeClasses(), &prototype.InformativeClasses());

  // The prototype's view is untouched.
  EXPECT_EQ(prototype.class_status(c), ClassStatus::kInformative);
  EXPECT_EQ(prototype.history().size(), 0u);
  EXPECT_EQ(prototype.GetStats().explicitly_labeled_tuples, 0u);
  // A second label on the (now sole-owner) clone does not re-copy.
  if (!clone.IsDone()) {
    const std::vector<size_t>* before = &clone.InformativeClasses();
    ASSERT_TRUE(
        clone.SubmitClassLabel(AnyInformative(clone), Label::kNegative).ok());
    EXPECT_EQ(&clone.InformativeClasses(), before);
  }
}

TEST(EngineCowTest, WastedLabelOnCloneLeavesPrototypeUntouched) {
  const auto workload = MakeWorkload(7);
  const InferenceEngine prototype(workload.instance);
  InferenceEngine clone = prototype;

  const size_t c = AnyInformative(clone);
  ASSERT_TRUE(clone.SubmitClassLabel(c, Label::kPositive).ok());
  // Re-labeling the same class consistently is a wasted interaction — it
  // mutates only the explicit-label array, which must already be detached.
  const size_t tuple = clone.tuple_class(c).tuple_indices.front();
  ASSERT_TRUE(clone.SubmitTupleLabel(tuple, Label::kPositive).ok());
  EXPECT_EQ(clone.GetStats().wasted_interactions, 1u);
  EXPECT_EQ(prototype.tuple_status(tuple), TupleStatus::kInformative);
  EXPECT_EQ(prototype.GetStats().wasted_interactions, 0u);
}

TEST(EngineCowTest, SiblingClonesAreIndependent) {
  const auto workload = MakeWorkload(5);
  const InferenceEngine prototype(workload.instance);
  InferenceEngine a = prototype;
  InferenceEngine b = prototype;

  const size_t c = AnyInformative(prototype);
  ASSERT_TRUE(a.SubmitClassLabel(c, Label::kPositive).ok());
  ASSERT_TRUE(b.SubmitClassLabel(c, Label::kNegative).ok());

  EXPECT_EQ(a.class_status(c), ClassStatus::kLabeledPositive);
  EXPECT_EQ(b.class_status(c), ClassStatus::kLabeledNegative);
  EXPECT_EQ(prototype.class_status(c), ClassStatus::kInformative);

  // SimulateLabelBoth on the untouched prototype still agrees with the
  // naive reference (the caches of a/b diverged, the prototype's did not).
  const auto both = prototype.SimulateLabelBoth(c);
  const auto pos = prototype.SimulateLabel(c, Label::kPositive);
  const auto neg = prototype.SimulateLabel(c, Label::kNegative);
  EXPECT_EQ(both.positive.pruned_tuples, pos.pruned_tuples);
  EXPECT_EQ(both.negative.pruned_tuples, neg.pruned_tuples);
}

}  // namespace
}  // namespace jim::core
