#include "core/oracle.h"

#include <gtest/gtest.h>

#include "core/session.h"
#include "util/rng.h"
#include "workload/travel.h"

namespace jim::core {
namespace {

TEST(ExactOracleTest, MatchesGoalExactly) {
  const auto instance = workload::Figure1InstancePtr();
  const auto goal =
      JoinPredicate::Parse(instance->schema(), workload::kQ1).value();
  ExactOracle oracle(goal);
  for (size_t t = 0; t < instance->num_rows(); ++t) {
    const Label expected = goal.Selects(instance->row(t))
                               ? Label::kPositive
                               : Label::kNegative;
    EXPECT_EQ(oracle.LabelFor(instance->row(t)), expected) << "tuple " << t;
  }
}

TEST(NoisyOracleTest, ZeroNoiseEqualsExact) {
  const auto instance = workload::Figure1InstancePtr();
  const auto goal =
      JoinPredicate::Parse(instance->schema(), workload::kQ2).value();
  ExactOracle exact(goal);
  NoisyOracle noisy(goal, 0.0, /*seed=*/1);
  for (size_t t = 0; t < instance->num_rows(); ++t) {
    EXPECT_EQ(noisy.LabelFor(instance->row(t)),
              exact.LabelFor(instance->row(t)));
  }
}

TEST(NoisyOracleTest, FlipRateMatchesErrorRate) {
  const auto instance = workload::Figure1InstancePtr();
  const auto goal =
      JoinPredicate::Parse(instance->schema(), workload::kQ2).value();
  ExactOracle exact(goal);
  NoisyOracle noisy(goal, 0.25, /*seed=*/99);
  size_t flips = 0;
  const size_t trials = 20000;
  for (size_t i = 0; i < trials; ++i) {
    const rel::Tuple& tuple = instance->row(i % instance->num_rows());
    if (noisy.LabelFor(tuple) != exact.LabelFor(tuple)) ++flips;
  }
  EXPECT_NEAR(static_cast<double>(flips) / static_cast<double>(trials), 0.25,
              0.02);
}

TEST(NoisyOracleTest, DeterministicPerSeed) {
  const auto instance = workload::Figure1InstancePtr();
  const auto goal =
      JoinPredicate::Parse(instance->schema(), workload::kQ2).value();
  NoisyOracle a(goal, 0.4, 7);
  NoisyOracle b(goal, 0.4, 7);
  for (int i = 0; i < 200; ++i) {
    const rel::Tuple& tuple = instance->row(static_cast<size_t>(i) % 12);
    EXPECT_EQ(a.LabelFor(tuple), b.LabelFor(tuple));
  }
}

TEST(LabelHelpersTest, NegateAndToString) {
  EXPECT_EQ(Negate(Label::kPositive), Label::kNegative);
  EXPECT_EQ(Negate(Label::kNegative), Label::kPositive);
  EXPECT_EQ(LabelToString(Label::kPositive), "+");
  EXPECT_EQ(LabelToString(Label::kNegative), "-");
}

}  // namespace
}  // namespace jim::core
