#include "core/inference_state.h"

#include <gtest/gtest.h>

#include "core/join_predicate.h"
#include "lattice/enumeration.h"
#include "util/rng.h"

namespace jim::core {
namespace {

using lat::Partition;

TEST(InferenceStateTest, InitialStateAcceptsEverything) {
  const InferenceState state(4);
  EXPECT_EQ(state.theta_p(), Partition::Top(4));
  EXPECT_TRUE(state.negatives().empty());
  EXPECT_FALSE(state.has_positive_example());
  lat::VisitAllPartitions(4, [&](const Partition& theta) {
    EXPECT_TRUE(state.IsConsistent(theta));
    return true;
  });
  EXPECT_EQ(state.CountConsistent(), lat::BellNumber(4));
}

TEST(InferenceStateTest, PositiveLabelShrinksThetaP) {
  InferenceState state(4);
  const Partition part = Partition::FromLabels({0, 0, 1, 2});
  ASSERT_TRUE(state.ApplyLabel(part, Label::kPositive).ok());
  EXPECT_EQ(state.theta_p(), part);
  EXPECT_TRUE(state.has_positive_example());
  // A second positive meets in.
  const Partition part2 = Partition::FromLabels({0, 0, 1, 1});
  ASSERT_TRUE(state.ApplyLabel(part2, Label::kPositive).ok());
  EXPECT_EQ(state.theta_p(), part.Meet(part2));
}

TEST(InferenceStateTest, NegativeLabelForbidsDownSet) {
  InferenceState state(4);
  const Partition part = Partition::FromLabels({0, 0, 1, 2});  // {01}
  ASSERT_TRUE(state.ApplyLabel(part, Label::kNegative).ok());
  EXPECT_FALSE(state.IsConsistent(Partition::Singletons(4)));
  EXPECT_FALSE(state.IsConsistent(part));
  EXPECT_TRUE(state.IsConsistent(Partition::FromLabels({0, 1, 0, 2})));
  EXPECT_TRUE(state.IsConsistent(Partition::Top(4)));
}

TEST(InferenceStateTest, ClassifyForcedPositive) {
  InferenceState state(3);
  ASSERT_TRUE(
      state.ApplyLabel(Partition::FromLabels({0, 0, 1}), Label::kPositive)
          .ok());
  // Any tuple whose partition coarsens θ_P is forced positive.
  EXPECT_EQ(state.Classify(Partition::FromLabels({0, 0, 1})),
            TupleClassification::kForcedPositive);
  EXPECT_EQ(state.Classify(Partition::Top(3)),
            TupleClassification::kForcedPositive);
  EXPECT_EQ(state.Classify(Partition::Singletons(3)),
            TupleClassification::kInformative);
}

TEST(InferenceStateTest, ClassifyForcedNegative) {
  InferenceState state(3);
  ASSERT_TRUE(
      state.ApplyLabel(Partition::FromLabels({0, 0, 1}), Label::kNegative)
          .ok());
  // Tuples with no equalities can only be selected by predicates ≤ {01},
  // all of which are now forbidden.
  EXPECT_EQ(state.Classify(Partition::Singletons(3)),
            TupleClassification::kForcedNegative);
  EXPECT_EQ(state.Classify(Partition::FromLabels({0, 0, 1})),
            TupleClassification::kForcedNegative);
  EXPECT_EQ(state.Classify(Partition::FromLabels({0, 1, 0})),
            TupleClassification::kInformative);
}

TEST(InferenceStateTest, ContradictionsAreRejectedAndStatePreserved) {
  InferenceState state(3);
  const Partition part = Partition::FromLabels({0, 0, 1});
  ASSERT_TRUE(state.ApplyLabel(part, Label::kPositive).ok());
  const std::string key_before = state.CanonicalKey();
  // part is now forced positive; a negative label must fail cleanly.
  const auto status = state.ApplyLabel(part, Label::kNegative);
  EXPECT_EQ(status.code(), util::StatusCode::kFailedPrecondition);
  EXPECT_EQ(state.CanonicalKey(), key_before);
}

TEST(InferenceStateTest, RedundantLabelsAreNoOps) {
  InferenceState state(3);
  const Partition part = Partition::FromLabels({0, 0, 1});
  ASSERT_TRUE(state.ApplyLabel(part, Label::kPositive).ok());
  const std::string key = state.CanonicalKey();
  ASSERT_TRUE(state.ApplyLabel(part, Label::kPositive).ok());
  EXPECT_EQ(state.CanonicalKey(), key);
  ASSERT_TRUE(state.ApplyLabel(Partition::Top(3), Label::kPositive).ok());
  EXPECT_EQ(state.CanonicalKey(), key);
}

TEST(InferenceStateTest, CanonicalKeyDistinguishesStates) {
  InferenceState a(3);
  InferenceState b(3);
  EXPECT_EQ(a.CanonicalKey(), b.CanonicalKey());
  ASSERT_TRUE(a.ApplyLabel(Partition::FromLabels({0, 0, 1}), Label::kNegative)
                  .ok());
  EXPECT_NE(a.CanonicalKey(), b.CanonicalKey());
  ASSERT_TRUE(b.ApplyLabel(Partition::FromLabels({0, 0, 1}), Label::kNegative)
                  .ok());
  EXPECT_EQ(a.CanonicalKey(), b.CanonicalKey());
}

// ------------------------------------------------------------------------
// The central property test: Classify and IsConsistent agree with a brute
// force over the entire hypothesis lattice, across random label histories.
// ------------------------------------------------------------------------

class BruteForceAgreement : public ::testing::TestWithParam<size_t> {};

TEST_P(BruteForceAgreement, ClassifyMatchesEnumeration) {
  const size_t n = GetParam();
  util::Rng rng(7000 + n);
  const auto all = lat::AllPartitions(n);

  for (int trial = 0; trial < 20; ++trial) {
    // A random goal guarantees an honest (consistent) label sequence.
    const Partition& goal = rng.PickOne(all);
    InferenceState state(n);
    std::vector<std::pair<Partition, Label>> labels;

    for (int step = 0; step < 6; ++step) {
      // Random tuple partition.
      const Partition& part = rng.PickOne(all);
      const Label label = goal.Refines(part) ? Label::kPositive
                                             : Label::kNegative;

      // Brute-force the consistent set from the raw label list.
      labels.emplace_back(part, label);
      auto consistent_brute = [&](const Partition& theta) {
        for (const auto& [p, l] : labels) {
          const bool selects = theta.Refines(p);
          if (l == Label::kPositive && !selects) return false;
          if (l == Label::kNegative && selects) return false;
        }
        return true;
      };

      ASSERT_TRUE(state.ApplyLabel(part, label).ok());

      // (1) IsConsistent agrees pointwise.
      uint64_t consistent_count = 0;
      for (const Partition& theta : all) {
        const bool brute = consistent_brute(theta);
        EXPECT_EQ(state.IsConsistent(theta), brute)
            << "theta=" << theta.ToString() << " after " << labels.size()
            << " labels";
        if (brute) ++consistent_count;
      }
      // (2) CountConsistent agrees in aggregate.
      EXPECT_EQ(state.CountConsistent(), consistent_count);

      // (3) Classify agrees with the quantifier definition.
      for (const Partition& tuple_part : all) {
        bool some_select = false;
        bool some_reject = false;
        for (const Partition& theta : all) {
          if (!consistent_brute(theta)) continue;
          if (theta.Refines(tuple_part)) {
            some_select = true;
          } else {
            some_reject = true;
          }
        }
        TupleClassification expected;
        if (some_select && some_reject) {
          expected = TupleClassification::kInformative;
        } else if (some_select) {
          expected = TupleClassification::kForcedPositive;
        } else {
          expected = TupleClassification::kForcedNegative;
        }
        EXPECT_EQ(state.Classify(tuple_part), expected)
            << "tuple partition " << tuple_part.ToString();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SmallSchemas, BruteForceAgreement,
                         ::testing::Values(3, 4));

TEST(InferenceStateTest, HonestGoalStaysConsistentForever) {
  util::Rng rng(4242);
  const size_t n = 5;
  const auto all = lat::AllPartitions(n);
  for (int trial = 0; trial < 40; ++trial) {
    const Partition& goal = rng.PickOne(all);
    InferenceState state(n);
    for (int step = 0; step < 12; ++step) {
      const Partition& part = rng.PickOne(all);
      const Label label =
          goal.Refines(part) ? Label::kPositive : Label::kNegative;
      ASSERT_TRUE(state.ApplyLabel(part, label).ok());
      ASSERT_TRUE(state.IsConsistent(goal))
          << "honest labeling made the goal inconsistent";
      // θ_P is always the maximal consistent predicate.
      ASSERT_TRUE(state.IsConsistent(state.theta_p()));
      ASSERT_TRUE(goal.Refines(state.theta_p()));
    }
  }
}

}  // namespace
}  // namespace jim::core
