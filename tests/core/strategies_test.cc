#include "core/strategies.h"

#include <gtest/gtest.h>

#include "core/session.h"
#include "lattice/enumeration.h"
#include "util/rng.h"
#include "workload/synthetic.h"
#include "workload/travel.h"

namespace jim::core {
namespace {

TEST(StrategyFactoryTest, KnownNamesConstruct) {
  for (const std::string& name : KnownStrategyNames()) {
    const auto strategy = MakeStrategy(name);
    ASSERT_TRUE(strategy.ok()) << name;
    EXPECT_EQ((*strategy)->name(), name);
  }
  EXPECT_FALSE(MakeStrategy("no-such-strategy").ok());
}

// The headline property, swept over every strategy: a full session against
// an honest oracle always terminates and identifies the goal up to
// instance-equivalence, on randomized workloads.
class StrategyIdentifiesGoal
    : public ::testing::TestWithParam<std::string> {};

TEST_P(StrategyIdentifiesGoal, OnRandomWorkloads) {
  const std::string name = GetParam();
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    util::Rng rng(seed);
    workload::SyntheticSpec spec;
    spec.num_attributes = 5 + seed % 3;
    spec.num_tuples = 80;
    spec.domain_size = 3 + seed % 4;
    spec.goal_constraints = seed % 4;
    const auto workload = workload::MakeSyntheticWorkload(spec, rng);

    // The optimal strategy is exponential; keep its instances tiny.
    if (name == "optimal" && spec.num_attributes > 5) continue;

    auto strategy = MakeStrategy(name, seed * 13 + 1).value();
    const SessionResult result =
        RunSession(workload.instance, workload.goal, *strategy);
    EXPECT_TRUE(result.identified_goal)
        << name << " seed=" << seed << " goal=" << workload.goal.ToString();
    // Never more questions than tuple classes.
    InferenceEngine probe(workload.instance);
    EXPECT_LE(result.interactions, probe.num_classes());
  }
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, StrategyIdentifiesGoal,
                         ::testing::ValuesIn(KnownStrategyNames()));

TEST(LocalStrategyTest, DeterministicAndDirectional) {
  const auto instance = workload::Figure1InstancePtr();
  InferenceEngine engine(instance);
  LocalStrategy bottom_up(LocalStrategy::Direction::kBottomUp);
  LocalStrategy top_down(LocalStrategy::Direction::kTopDown);
  const size_t bu1 = bottom_up.PickClass(engine);
  const size_t bu2 = bottom_up.PickClass(engine);
  EXPECT_EQ(bu1, bu2);  // fully deterministic

  // bottom-up picks a minimal-rank knowledge class; top-down a maximal one.
  const auto rank_of = [&](size_t cls) {
    return engine.state().Knowledge(engine.tuple_class(cls).partition).Rank();
  };
  const size_t td = top_down.PickClass(engine);
  EXPECT_LE(rank_of(bu1), rank_of(td));
  // On Figure 1: ⊥-classes have rank 0; {T,C}{A,D} has rank 2.
  EXPECT_EQ(rank_of(bu1), 0u);
  EXPECT_EQ(rank_of(td), 2u);
}

TEST(RandomStrategyTest, SameSeedSameSequence) {
  const auto instance = workload::Figure1InstancePtr();
  const auto goal =
      JoinPredicate::Parse(instance->schema(), workload::kQ2).value();
  RandomStrategy a(99);
  RandomStrategy b(99);
  const auto result_a = RunSession(instance, goal, a);
  const auto result_b = RunSession(instance, goal, b);
  ASSERT_EQ(result_a.steps.size(), result_b.steps.size());
  for (size_t i = 0; i < result_a.steps.size(); ++i) {
    EXPECT_EQ(result_a.steps[i].class_id, result_b.steps[i].class_id);
  }
}

TEST(RandomStrategyTest, PickIsTupleWeighted) {
  // On Figure 1, classes have sizes {3,3,2,2,1,1}; over many picks the
  // 3-tuple classes must be chosen roughly 3x as often as 1-tuple ones.
  const auto instance = workload::Figure1InstancePtr();
  InferenceEngine engine(instance);
  RandomStrategy strategy(7);
  std::vector<size_t> counts(engine.num_classes(), 0);
  for (int i = 0; i < 6000; ++i) {
    ++counts[strategy.PickClass(engine)];
  }
  for (size_t c = 0; c < engine.num_classes(); ++c) {
    const double expected =
        6000.0 * static_cast<double>(engine.tuple_class(c).size()) / 12.0;
    EXPECT_NEAR(static_cast<double>(counts[c]), expected, expected * 0.35)
        << "class " << c;
  }
}

TEST(LookaheadStrategyTest, PicksTheBiggestGuaranteedPrune) {
  const auto instance = workload::Figure1InstancePtr();
  InferenceEngine engine(instance);
  LookaheadStrategy minmax(LookaheadStrategy::Objective::kMinMax);
  const size_t pick = minmax.PickClass(engine);
  // Verify it maximizes min(n+, n-) over all informative classes.
  const auto informative = engine.InformativeClasses();
  auto score = [&](size_t cls) {
    const auto plus = engine.SimulateLabel(cls, Label::kPositive);
    const auto minus = engine.SimulateLabel(cls, Label::kNegative);
    return std::min(plus.pruned_tuples, minus.pruned_tuples);
  };
  const size_t best = score(pick);
  for (size_t cls : informative) {
    EXPECT_LE(score(cls), best) << "class " << cls << " beats the pick";
  }
}

TEST(LookaheadStrategyTest, EntropyAlphaOneEqualsShannonLimit) {
  // α→1 (Tsallis) must converge to the Shannon branch: the two strategies
  // should rank Figure 1's classes identically.
  const auto instance = workload::Figure1InstancePtr();
  InferenceEngine engine(instance);
  LookaheadStrategy shannon(LookaheadStrategy::Objective::kEntropy, 1.0);
  LookaheadStrategy near_one(LookaheadStrategy::Objective::kEntropy,
                             1.0 + 1e-7);
  const auto candidates = engine.InformativeClasses();
  const auto s1 = shannon.Score(engine, candidates);
  const auto s2 = near_one.Score(engine, candidates);
  for (size_t i = 0; i < candidates.size(); ++i) {
    EXPECT_NEAR(s1[i], s2[i], 1e-3) << "candidate " << i;
  }
}

TEST(LookaheadStrategyTest, CandidateCapStillPicksScoredCandidate) {
  util::Rng rng(21);
  workload::SyntheticSpec spec;
  spec.num_attributes = 6;
  spec.num_tuples = 400;
  spec.domain_size = 3;
  const auto workload = workload::MakeSyntheticWorkload(spec, rng);
  InferenceEngine engine(workload.instance);
  LookaheadStrategy capped(LookaheadStrategy::Objective::kExpected,
                           /*alpha=*/1.0, /*max_candidates=*/8);
  // Must not crash and must return an informative class.
  const size_t pick = capped.PickClass(engine);
  EXPECT_EQ(engine.class_status(pick), ClassStatus::kInformative);
}

TEST(TopKTest, OrderedPrefixAndBounds) {
  const auto instance = workload::Figure1InstancePtr();
  InferenceEngine engine(instance);
  LookaheadStrategy strategy(LookaheadStrategy::Objective::kMinMax);
  const auto top3 = strategy.TopK(engine, 3);
  ASSERT_EQ(top3.size(), 3u);
  const auto top10 = strategy.TopK(engine, 10);
  EXPECT_EQ(top10.size(), 6u);  // only 6 classes exist
  // TopK(k) is a prefix of TopK(k') for k < k' (stable sort).
  for (size_t i = 0; i < top3.size(); ++i) {
    EXPECT_EQ(top3[i], top10[i]);
  }
  // The best class equals PickClass (same scores, same tie-breaking).
  LookaheadStrategy fresh(LookaheadStrategy::Objective::kMinMax);
  EXPECT_EQ(top10[0], fresh.PickClass(engine));
}

TEST(OptimalStrategyTest, WorstCaseOnFigure1) {
  const auto instance = workload::Figure1InstancePtr();
  InferenceEngine engine(instance);
  const size_t worst = OptimalWorstCaseQuestions(engine);
  // 6 classes: identification always possible within 6 questions; and at
  // least 2 are needed to separate the hypotheses of Figure 1.
  EXPECT_GE(worst, 2u);
  EXPECT_LE(worst, 6u);

  // The minimax guarantee: for EVERY goal, a session driven by the optimal
  // strategy uses at most `worst` interactions.
  lat::VisitAllPartitions(5, [&](const lat::Partition& goal_partition) {
    const JoinPredicate goal(instance->schema(), goal_partition);
    OptimalStrategy strategy;
    const auto result = RunSession(instance, goal, strategy);
    EXPECT_LE(result.interactions, worst)
        << "goal " << goal_partition.ToString();
    EXPECT_TRUE(result.identified_goal);
    return true;
  });
}

TEST(OptimalStrategyTest, NoHeuristicBeatsOptimalWorstCase) {
  const auto instance = workload::Figure1InstancePtr();
  InferenceEngine probe(instance);
  const size_t optimal_worst = OptimalWorstCaseQuestions(probe);
  for (const std::string& name :
       {std::string("local-bottom-up"), std::string("local-top-down"),
        std::string("lookahead-minmax"), std::string("lookahead-entropy")}) {
    // Worst case of the heuristic over all goals.
    size_t heuristic_worst = 0;
    lat::VisitAllPartitions(5, [&](const lat::Partition& goal_partition) {
      const JoinPredicate goal(instance->schema(), goal_partition);
      auto strategy = MakeStrategy(name, 5).value();
      const auto result = RunSession(instance, goal, *strategy);
      heuristic_worst = std::max(heuristic_worst, result.interactions);
      return true;
    });
    EXPECT_GE(heuristic_worst, optimal_worst) << name;
  }
}

}  // namespace
}  // namespace jim::core
