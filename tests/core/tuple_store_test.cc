#include "core/tuple_store.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>

#include "core/join_predicate.h"
#include "exec/thread_pool.h"
#include "relational/relation.h"
#include "relational/schema.h"
#include "util/rng.h"
#include "workload/travel.h"

namespace jim::core {
namespace {

std::shared_ptr<const rel::Relation> MixedRelation() {
  using rel::Value;
  rel::Relation relation{"mixed", rel::Schema::FromNames({"a", "b", "c"})};
  relation.AddRowUnchecked({Value("x"), Value("x"), Value("y")});
  relation.AddRowUnchecked({Value::Null(), Value::Null(), Value("x")});
  relation.AddRowUnchecked(
      {Value(int64_t{1}), Value("1"), Value(int64_t{1})});
  return std::make_shared<const rel::Relation>(std::move(relation));
}

TEST(RelationTupleStoreTest, CodesCompareAcrossAttributes) {
  RelationTupleStore store(MixedRelation());
  // Row 0: a == b ("x"), both != c ("y").
  EXPECT_EQ(store.code(0, 0), store.code(0, 1));
  EXPECT_NE(store.code(0, 0), store.code(0, 2));
  // "x" in row 0 col 0 equals "x" in row 1 col 2 — across rows and columns.
  EXPECT_EQ(store.code(0, 0), store.code(1, 2));
  // Type-strict: 1 (int) != "1" (string).
  EXPECT_EQ(store.code(2, 0), store.code(2, 2));
  EXPECT_NE(store.code(2, 0), store.code(2, 1));
}

TEST(RelationTupleStoreTest, NullsGetTheSentinel) {
  RelationTupleStore store(MixedRelation());
  EXPECT_EQ(store.code(1, 0), rel::kNullCode);
  EXPECT_EQ(store.code(1, 1), rel::kNullCode);
  EXPECT_NE(store.code(1, 2), rel::kNullCode);
  EXPECT_TRUE(store.DecodeValue(1, 0).is_null());
}

TEST(RelationTupleStoreTest, BulkCodesMatchScalarCodes) {
  RelationTupleStore store(MixedRelation());
  std::vector<uint32_t> codes(store.num_attributes());
  for (size_t t = 0; t < store.num_tuples(); ++t) {
    store.TupleCodes(t, codes.data());
    for (size_t a = 0; a < store.num_attributes(); ++a) {
      EXPECT_EQ(codes[a], store.code(t, a)) << "t=" << t << " a=" << a;
    }
  }
}

TEST(RelationTupleStoreTest, DecodeTupleEqualsTheRow) {
  auto relation = MixedRelation();
  RelationTupleStore store(relation);
  for (size_t t = 0; t < store.num_tuples(); ++t) {
    const rel::Tuple decoded = store.DecodeTuple(t);
    ASSERT_EQ(decoded.size(), relation->row(t).size());
    for (size_t a = 0; a < decoded.size(); ++a) {
      EXPECT_EQ(rel::TupleRepresentationKey({decoded[a]}),
                rel::TupleRepresentationKey({relation->row(t)[a]}));
    }
  }
  EXPECT_EQ(store.schema().Names(), relation->schema().Names());
  EXPECT_EQ(store.name(), relation->name());
}

TEST(RelationTupleStoreTest, SelectsCodesMatchesValueSelects) {
  auto instance = workload::Figure1InstancePtr();
  RelationTupleStore store(instance);
  const auto q2 =
      JoinPredicate::Parse(instance->schema(), workload::kQ2).value();
  std::vector<uint32_t> codes(store.num_attributes());
  for (size_t t = 0; t < store.num_tuples(); ++t) {
    store.TupleCodes(t, codes.data());
    EXPECT_EQ(q2.SelectsCodes(codes.data()), q2.Selects(instance->row(t)))
        << "tuple " << t;
  }
  EXPECT_EQ(q2.SelectedRows(store), q2.SelectedRows(*instance));
  EXPECT_TRUE(InstanceEquivalent(store, q2, q2));
}

TEST(RelationTupleStoreTest, ApproxBytesTracksTheCodeMatrix) {
  auto relation = MixedRelation();
  RelationTupleStore store(relation);
  EXPECT_GE(store.ApproxBytes(),
            store.num_tuples() * store.num_attributes() * sizeof(uint32_t));
}

TEST(RelationTupleStoreTest, ParallelIngestIsBitwiseIdenticalToSerial) {
  // A relation wide and tall enough to cross the parallel-ingest threshold,
  // with cross-column duplicates, NULLs, and NaNs — the shared dictionary's
  // cell-major first-occurrence order must survive chunked encoding exactly.
  using rel::Value;
  rel::Relation relation{"big", rel::Schema::FromNames({"a", "b", "c"})};
  util::Rng rng(12);
  for (size_t r = 0; r < 3000; ++r) {
    rel::Tuple row;
    for (size_t c = 0; c < 3; ++c) {
      switch (rng.UniformInt(0, 4)) {
        case 0:
          row.emplace_back(rng.UniformInt(0, 40));
          break;
        case 1:
          row.emplace_back("v" + std::to_string(rng.UniformInt(0, 25)));
          break;
        case 2:
          row.push_back(Value::Null());
          break;
        case 3:
          row.emplace_back(std::nan(""));
          break;
        default:
          row.emplace_back(static_cast<double>(rng.UniformInt(0, 9)));
          break;
      }
    }
    relation.AddRowUnchecked(std::move(row));
  }
  const auto shared =
      std::make_shared<const rel::Relation>(std::move(relation));
  const RelationTupleStore serial(shared, /*pool=*/nullptr);
  for (const size_t threads : {2u, 8u}) {
    exec::ThreadPool pool(threads);
    const RelationTupleStore parallel(shared, &pool);
    ASSERT_EQ(parallel.num_distinct_values(), serial.num_distinct_values())
        << threads << " threads";
    for (size_t t = 0; t < serial.num_tuples(); ++t) {
      for (size_t a = 0; a < serial.num_attributes(); ++a) {
        ASSERT_EQ(parallel.code(t, a), serial.code(t, a))
            << "cell (" << t << ", " << a << ") at " << threads
            << " threads";
      }
    }
  }
}

}  // namespace
}  // namespace jim::core
