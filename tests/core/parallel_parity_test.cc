// Determinism guarantee of the parallel execution subsystem: lookahead
// decisions and full session transcripts are identical at 1, 2, and 8
// threads. This is the contract that lets --threads be a pure latency knob
// everywhere (benches, demo, batch runs).

#include <memory>
#include <vector>

#include "core/jim.h"
#include "exec/thread_pool.h"
#include "gtest/gtest.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/rng.h"
#include "workload/synthetic.h"
#include "workload/travel.h"
#include "util/check.h"

namespace jim::core {
namespace {

// Parity suites run with the invariant auditor on (see util/check.h): every
// JIM_AUDIT checkpoint inside the engine re-derives its CheckInvariants
// contract while the parity assertions run, so a divergence is caught at
// the mutation that introduced it, not at the final transcript diff.
const bool kAuditInvariantsOn = [] {
  ::jim::util::SetAuditInvariants(true);
  return true;
}();

workload::SyntheticWorkload MakeWorkload(uint64_t seed, size_t tuples = 300,
                                         size_t attrs = 6) {
  util::Rng rng(seed);
  workload::SyntheticSpec spec;
  spec.num_attributes = attrs;
  spec.num_tuples = tuples;
  spec.domain_size = 4;
  spec.goal_constraints = 2;
  return workload::MakeSyntheticWorkload(spec, rng);
}

TEST(ParallelParityTest, ScoreIsBitwiseIdenticalAcrossThreadCounts) {
  for (uint64_t seed : {3u, 14u, 159u}) {
    const auto workload = MakeWorkload(seed);
    const InferenceEngine engine(workload.instance);
    const std::vector<size_t>& candidates = engine.InformativeClasses();
    ASSERT_FALSE(candidates.empty());

    for (auto objective : {LookaheadStrategy::Objective::kMinMax,
                           LookaheadStrategy::Objective::kExpected,
                           LookaheadStrategy::Objective::kEntropy}) {
      LookaheadStrategy serial(objective);
      serial.set_thread_pool(nullptr);
      const std::vector<double> reference =
          serial.Score(engine, candidates);

      for (size_t threads : {1u, 2u, 8u}) {
        exec::ThreadPool pool(threads);
        LookaheadStrategy parallel(objective);
        parallel.set_thread_pool(&pool);
        const std::vector<double> scores =
            parallel.Score(engine, candidates);
        ASSERT_EQ(scores.size(), reference.size());
        for (size_t i = 0; i < scores.size(); ++i) {
          // Bitwise equality, not approximate: the parallel path runs the
          // same arithmetic per candidate, just elsewhere.
          EXPECT_EQ(scores[i], reference[i])
              << "seed=" << seed << " threads=" << threads << " i=" << i;
        }
      }
    }
  }
}

TEST(ParallelParityTest, PickClassIsIdenticalAcrossThreadCounts) {
  for (uint64_t seed : {7u, 21u, 77u}) {
    const auto workload = MakeWorkload(seed);
    const InferenceEngine engine(workload.instance);

    LookaheadStrategy serial(LookaheadStrategy::Objective::kEntropy);
    serial.set_thread_pool(nullptr);
    const size_t reference = serial.PickClass(engine);

    for (size_t threads : {1u, 2u, 8u}) {
      exec::ThreadPool pool(threads);
      LookaheadStrategy parallel(LookaheadStrategy::Objective::kEntropy);
      parallel.set_thread_pool(&pool);
      EXPECT_EQ(parallel.PickClass(engine), reference)
          << "seed=" << seed << " threads=" << threads;
    }
  }
}

TEST(ParallelParityTest, CutoffPrunedPickMatchesExhaustiveArgmax) {
  // PickClass defaults to cutoff pruning (skip candidates whose upper bound
  // cannot beat the running best); the pick must be the one an exhaustive
  // Score argmax produces, at every thread count. Deeper cutoff coverage
  // (bound soundness, transcripts) lives in cutoff_parity_test.cc.
  for (uint64_t seed : {7u, 21u, 77u}) {
    const auto workload = MakeWorkload(seed);
    const InferenceEngine engine(workload.instance);

    LookaheadStrategy exhaustive(LookaheadStrategy::Objective::kEntropy);
    exhaustive.set_thread_pool(nullptr);
    exhaustive.set_cutoff_enabled(false);
    const size_t reference = exhaustive.PickClass(engine);

    for (size_t threads : {1u, 2u, 8u}) {
      exec::ThreadPool pool(threads);
      LookaheadStrategy pruned(LookaheadStrategy::Objective::kEntropy);
      pruned.set_thread_pool(&pool);
      ASSERT_TRUE(pruned.cutoff_enabled());
      EXPECT_EQ(pruned.PickClass(engine), reference)
          << "seed=" << seed << " threads=" << threads;
    }
  }
}

TEST(ParallelParityTest, SampledCandidateCapMatchesSerialPath) {
  // max_candidates smaller than the pool exercises the strided subsample in
  // both paths; the -inf slots and the sampled scores must line up exactly.
  const auto workload = MakeWorkload(42, /*tuples=*/500);
  const InferenceEngine engine(workload.instance);
  const std::vector<size_t>& candidates = engine.InformativeClasses();
  ASSERT_GT(candidates.size(), 8u);

  LookaheadStrategy serial(LookaheadStrategy::Objective::kEntropy,
                           /*alpha=*/1.0, /*max_candidates=*/7);
  serial.set_thread_pool(nullptr);
  const std::vector<double> reference = serial.Score(engine, candidates);

  exec::ThreadPool pool(8);
  LookaheadStrategy parallel(LookaheadStrategy::Objective::kEntropy,
                             /*alpha=*/1.0, /*max_candidates=*/7);
  parallel.set_thread_pool(&pool);
  const std::vector<double> scores = parallel.Score(engine, candidates);
  EXPECT_EQ(scores, reference);
}

/// The full transcript of a mode-4 session: every asked class, shown tuple,
/// answer, and pruning count.
std::vector<std::tuple<size_t, size_t, Label, size_t>> Transcript(
    const SessionResult& result) {
  std::vector<std::tuple<size_t, size_t, Label, size_t>> transcript;
  for (const SessionStep& step : result.steps) {
    transcript.emplace_back(step.class_id, step.tuple_index, step.label,
                            step.pruned_tuples);
  }
  return transcript;
}

TEST(ParallelParityTest, FullSessionTranscriptsIdenticalAcrossThreadCounts) {
  for (uint64_t seed : {11u, 97u}) {
    const auto workload = MakeWorkload(seed);

    LookaheadStrategy serial(LookaheadStrategy::Objective::kEntropy);
    serial.set_thread_pool(nullptr);
    const SessionResult reference =
        RunSession(workload.instance, workload.goal, serial);
    ASSERT_TRUE(reference.identified_goal);

    for (size_t threads : {1u, 2u, 8u}) {
      exec::ThreadPool pool(threads);
      LookaheadStrategy parallel(LookaheadStrategy::Objective::kEntropy);
      parallel.set_thread_pool(&pool);
      const SessionResult result =
          RunSession(workload.instance, workload.goal, parallel);
      EXPECT_EQ(result.interactions, reference.interactions);
      EXPECT_EQ(result.identified_goal, reference.identified_goal);
      EXPECT_EQ(Transcript(result), Transcript(reference))
          << "seed=" << seed << " threads=" << threads;
    }
  }
}

TEST(ParallelParityTest, MetricsAndTracingNeverPerturbTranscripts) {
  // The observability determinism contract: with the metrics registry hot
  // and a tracer attached, every transcript is byte-for-byte the one a
  // metrics-off run produces, at every thread count. Metrics observe the
  // session; they must never steer it.
  const bool metrics_were_enabled = obs::MetricsEnabled();
  const auto workload = MakeWorkload(11);

  obs::SetMetricsEnabled(false);
  LookaheadStrategy serial(LookaheadStrategy::Objective::kEntropy);
  serial.set_thread_pool(nullptr);
  const SessionResult reference =
      RunSession(workload.instance, workload.goal, serial);
  ASSERT_TRUE(reference.identified_goal);

  obs::SetMetricsEnabled(true);
  for (size_t threads : {1u, 2u, 8u}) {
    exec::ThreadPool pool(threads);
    LookaheadStrategy parallel(LookaheadStrategy::Objective::kEntropy);
    parallel.set_thread_pool(&pool);
    obs::SessionTracer tracer;
    ExactOracle oracle(workload.goal);
    SessionOptions options;
    options.tracer = &tracer;
    InferenceEngine engine(workload.instance);
    const SessionResult result = RunSessionOnEngine(
        engine, workload.goal, parallel, oracle, options);
    EXPECT_EQ(Transcript(result), Transcript(reference))
        << "threads=" << threads;
    EXPECT_EQ(tracer.steps().size(), reference.steps.size());
  }
  obs::SetMetricsEnabled(metrics_were_enabled);
}

TEST(ParallelParityTest, Figure1SessionTranscriptParity) {
  // The paper's own instance, end to end.
  auto instance = workload::Figure1InstancePtr();
  const auto goal =
      JoinPredicate::Parse(instance->schema(), workload::kQ2).value();

  LookaheadStrategy serial(LookaheadStrategy::Objective::kMinMax);
  serial.set_thread_pool(nullptr);
  const SessionResult reference = RunSession(instance, goal, serial);

  for (size_t threads : {2u, 8u}) {
    exec::ThreadPool pool(threads);
    LookaheadStrategy parallel(LookaheadStrategy::Objective::kMinMax);
    parallel.set_thread_pool(&pool);
    const SessionResult result = RunSession(instance, goal, parallel);
    EXPECT_EQ(Transcript(result), Transcript(reference));
  }
}

}  // namespace
}  // namespace jim::core
