#include "exec/batch_runner.h"

#include <memory>
#include <string>
#include <vector>

#include "core/jim.h"
#include "exec/thread_pool.h"
#include "gtest/gtest.h"
#include "util/rng.h"
#include "workload/synthetic.h"
#include "workload/travel.h"

namespace jim::exec {
namespace {

using core::InferenceEngine;
using core::SessionResult;

workload::SyntheticWorkload MakeWorkload(uint64_t seed) {
  util::Rng rng(seed);
  workload::SyntheticSpec spec;
  spec.num_attributes = 6;
  spec.num_tuples = 200;
  spec.domain_size = 4;
  spec.goal_constraints = 2;
  return workload::MakeSyntheticWorkload(spec, rng);
}

/// The (strategy × seed) grid the benches sweep, against one prototype.
std::vector<SessionSpec> MakeSpecs(
    const std::shared_ptr<const InferenceEngine>& prototype,
    const core::JoinPredicate& goal) {
  const std::vector<std::string> strategies = {
      "random", "local-bottom-up", "lookahead-entropy"};
  std::vector<SessionSpec> specs;
  for (const std::string& name : strategies) {
    for (uint64_t seed : {1u, 2u, 3u}) {
      SessionSpec spec(prototype, goal);
      spec.make_strategy = [name, seed] {
        return core::MakeStrategy(name, seed).value();
      };
      specs.push_back(std::move(spec));
    }
  }
  return specs;
}

void ExpectSameSessions(const std::vector<SessionResult>& a,
                        const std::vector<SessionResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].interactions, b[i].interactions) << "job " << i;
    EXPECT_EQ(a[i].wasted_interactions, b[i].wasted_interactions)
        << "job " << i;
    EXPECT_EQ(a[i].identified_goal, b[i].identified_goal) << "job " << i;
    ASSERT_EQ(a[i].steps.size(), b[i].steps.size()) << "job " << i;
    for (size_t s = 0; s < a[i].steps.size(); ++s) {
      EXPECT_EQ(a[i].steps[s].class_id, b[i].steps[s].class_id);
      EXPECT_EQ(a[i].steps[s].tuple_index, b[i].steps[s].tuple_index);
      EXPECT_EQ(a[i].steps[s].label, b[i].steps[s].label);
      EXPECT_EQ(a[i].steps[s].pruned_tuples, b[i].steps[s].pruned_tuples);
    }
  }
}

TEST(BatchSessionRunnerTest, MatchesDirectRunSessionJobByJob) {
  const auto workload = MakeWorkload(91);
  auto prototype = std::make_shared<const InferenceEngine>(workload.instance);
  const std::vector<SessionSpec> specs = MakeSpecs(prototype, workload.goal);

  ThreadPool pool(4);
  const BatchSessionRunner runner(&pool);
  const std::vector<SessionResult> batch = runner.Run(specs);

  // Reference: the exact sessions the specs describe, run one by one on a
  // fresh engine each (no clones, no pool).
  std::vector<SessionResult> direct;
  for (const SessionSpec& spec : specs) {
    auto strategy = spec.make_strategy();
    direct.push_back(
        core::RunSession(workload.instance, spec.goal, *strategy));
  }
  ExpectSameSessions(batch, direct);
}

TEST(BatchSessionRunnerTest, IdenticalAtAnyThreadCount) {
  const auto workload = MakeWorkload(17);
  auto prototype = std::make_shared<const InferenceEngine>(workload.instance);
  const std::vector<SessionSpec> specs = MakeSpecs(prototype, workload.goal);

  const std::vector<SessionResult> serial =
      BatchSessionRunner(nullptr).Run(specs);
  for (size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    const std::vector<SessionResult> parallel =
        BatchSessionRunner(&pool).Run(specs);
    ExpectSameSessions(parallel, serial);
  }
}

TEST(BatchSessionRunnerTest, PrototypeStaysPristine) {
  const auto workload = MakeWorkload(5);
  auto prototype = std::make_shared<const InferenceEngine>(workload.instance);
  const size_t informative_before = prototype->InformativeClasses().size();

  ThreadPool pool(4);
  BatchSessionRunner(&pool).Run(MakeSpecs(prototype, workload.goal));

  EXPECT_FALSE(prototype->IsDone());
  EXPECT_EQ(prototype->InformativeClasses().size(), informative_before);
  EXPECT_EQ(prototype->history().size(), 0u);
}

TEST(BatchSessionRunnerTest, CustomOracleFactoryIsUsed) {
  auto instance = workload::Figure1InstancePtr();
  const auto goal =
      core::JoinPredicate::Parse(instance->schema(), workload::kQ2).value();
  auto prototype = std::make_shared<const InferenceEngine>(instance);

  // A noisy oracle with a fixed seed is still deterministic; just check the
  // factory is honored by comparing against the direct run with the same
  // noise stream.
  const auto make_oracle = [goal] {
    return std::make_unique<core::NoisyOracle>(goal, 0.3, /*seed=*/7);
  };
  SessionSpec spec(prototype, goal);
  spec.make_strategy = [] {
    return core::MakeStrategy("local-bottom-up").value();
  };
  spec.make_oracle = make_oracle;

  ThreadPool pool(2);
  const std::vector<SessionResult> batch =
      BatchSessionRunner(&pool).Run({spec});

  auto strategy = core::MakeStrategy("local-bottom-up").value();
  auto oracle = make_oracle();
  const SessionResult direct = core::RunSession(
      instance, goal, *strategy, *oracle, core::SessionOptions{});
  ExpectSameSessions(batch, {direct});
}

TEST(BatchSessionRunnerTest, EmptyBatch) {
  ThreadPool pool(2);
  EXPECT_TRUE(BatchSessionRunner(&pool).Run({}).empty());
}

}  // namespace
}  // namespace jim::exec
