#include "exec/thread_pool.h"

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace jim::exec {
namespace {

TEST(ThreadPoolTest, ThreadsCountsTheCallingThread) {
  EXPECT_EQ(ThreadPool(1).threads(), 1u);
  EXPECT_EQ(ThreadPool(4).threads(), 4u);
}

TEST(ThreadPoolTest, ParallelForVisitsEveryIndexExactlyOnce) {
  for (size_t threads : {1u, 2u, 3u, 8u}) {
    ThreadPool pool(threads);
    for (size_t n : {0u, 1u, 2u, 7u, 100u}) {
      std::vector<std::atomic<int>> visits(n);
      pool.ParallelFor(n, [&visits](size_t i, size_t) { ++visits[i]; });
      for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(visits[i].load(), 1) << "threads=" << threads << " i=" << i;
      }
    }
  }
}

TEST(ThreadPoolTest, ChunkAssignmentIsDeterministic) {
  // The index → chunk map depends only on (n, threads): contiguous ranges,
  // ascending, chunk count = min(threads, n). Run it twice and against the
  // closed form.
  ThreadPool pool(3);
  const size_t n = 10;
  for (int round = 0; round < 2; ++round) {
    std::vector<size_t> chunk_of(n);
    pool.ParallelFor(n, [&chunk_of](size_t i, size_t chunk) {
      chunk_of[i] = chunk;
    });
    // Chunk j owns exactly the contiguous range [j*n/chunks, (j+1)*n/chunks).
    for (size_t j = 0; j < 3; ++j) {
      for (size_t i = j * n / 3; i < (j + 1) * n / 3; ++i) {
        EXPECT_EQ(chunk_of[i], j) << "i=" << i;
      }
    }
  }
}

TEST(ThreadPoolTest, ResultsLandByIndexRegardlessOfThreadCount) {
  std::vector<long> reference;
  for (size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    std::vector<long> out(1000);
    pool.ParallelFor(out.size(), [&out](size_t i, size_t) {
      out[i] = static_cast<long>(i * i + 1);
    });
    if (reference.empty()) {
      reference = out;
    } else {
      EXPECT_EQ(out, reference) << "threads=" << threads;
    }
  }
  EXPECT_EQ(std::accumulate(reference.begin(), reference.end(), 0L),
            332833500L + 1000L);
}

TEST(ThreadPoolTest, ExceptionsPropagateToTheCaller) {
  for (size_t threads : {1u, 4u}) {
    ThreadPool pool(threads);
    EXPECT_THROW(
        pool.ParallelFor(100,
                         [](size_t i, size_t) {
                           if (i == 37) throw std::runtime_error("boom 37");
                         }),
        std::runtime_error);
    // The pool survives a throwing loop and keeps working.
    std::atomic<int> count{0};
    pool.ParallelFor(10, [&count](size_t, size_t) { ++count; });
    EXPECT_EQ(count.load(), 10);
  }
}

TEST(ThreadPoolTest, FirstFailingChunkWinsDeterministically) {
  // Two chunks throw; the rethrown exception is the lowest chunk's, not a
  // scheduling accident.
  ThreadPool pool(4);
  try {
    pool.ParallelFor(4, [](size_t i, size_t chunk) {
      (void)i;
      if (chunk == 1 || chunk == 3) {
        throw std::runtime_error("chunk " + std::to_string(chunk));
      }
    });
    FAIL() << "expected a throw";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "chunk 1");
  }
}

TEST(ThreadPoolTest, ReuseAcrossManyRounds) {
  ThreadPool pool(4);
  std::atomic<long> total{0};
  for (int round = 0; round < 200; ++round) {
    pool.ParallelFor(17, [&total](size_t i, size_t) {
      total += static_cast<long>(i);
    });
  }
  EXPECT_EQ(total.load(), 200L * (16 * 17 / 2));
}

TEST(ThreadPoolTest, SubmitRunsTasks) {
  ThreadPool pool(3);
  std::atomic<int> ran{0};
  std::atomic<int> remaining{50};
  std::mutex mutex;
  std::condition_variable done;
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&] {
      ++ran;
      std::lock_guard<std::mutex> lock(mutex);
      if (--remaining == 0) done.notify_one();
    });
  }
  std::unique_lock<std::mutex> lock(mutex);
  done.wait(lock, [&remaining] { return remaining.load() == 0; });
  EXPECT_EQ(ran.load(), 50);
}

TEST(ThreadPoolTest, ConcurrentParallelForsFromManyThreads) {
  // Independent ParallelFor calls may share one pool; each tracks its own
  // completion. Drive the shared pool from several caller threads at once.
  ThreadPool shared(4);
  std::vector<std::thread> callers;
  std::vector<long> sums(6, 0);
  for (size_t t = 0; t < sums.size(); ++t) {
    callers.emplace_back([&shared, &sums, t] {
      long local = 0;
      std::mutex m;
      shared.ParallelFor(100, [&](size_t i, size_t) {
        std::lock_guard<std::mutex> lock(m);
        local += static_cast<long>(i + t);
      });
      sums[t] = local;
    });
  }
  for (std::thread& caller : callers) caller.join();
  for (size_t t = 0; t < sums.size(); ++t) {
    EXPECT_EQ(sums[t], 4950L + 100L * static_cast<long>(t));
  }
}

TEST(ThreadPoolTest, DrainWaitsForSubmittedTasks) {
  // Drain must observe both queued tasks and ones already running (the
  // serve daemon's Wait() relies on this to let in-flight connection
  // handlers finish after the accept thread stops submitting).
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  std::atomic<bool> release{false};
  for (int i = 0; i < 16; ++i) {
    pool.Submit([&] {
      while (!release.load()) std::this_thread::yield();
      ++completed;
    });
  }
  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    release = true;
  });
  pool.Drain();
  EXPECT_EQ(completed.load(), 16);
  releaser.join();
}

TEST(ThreadPoolTest, DrainOnIdlePoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.Drain();
  pool.Submit([] {});
  pool.Drain();
  pool.Drain();
}

}  // namespace
}  // namespace jim::exec
