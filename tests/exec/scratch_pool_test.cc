#include "exec/scratch_pool.h"

#include <vector>

#include "gtest/gtest.h"
#include "lattice/partition.h"

namespace jim::exec {
namespace {

TEST(ScratchPoolTest, GrowsAndNeverShrinks) {
  ScratchPool pool;
  EXPECT_EQ(pool.size(), 0u);
  pool.EnsureSlots(3);
  EXPECT_EQ(pool.size(), 3u);
  pool.EnsureSlots(1);
  EXPECT_EQ(pool.size(), 3u);
  pool.EnsureSlots(5);
  EXPECT_EQ(pool.size(), 5u);
}

TEST(ScratchPoolTest, SlotAddressesAreStableAcrossGrowth) {
  ScratchPool pool;
  pool.EnsureSlots(2);
  EvalScratch* first = &pool.Slot(0);
  EvalScratch* second = &pool.Slot(1);
  pool.EnsureSlots(64);
  EXPECT_EQ(&pool.Slot(0), first);
  EXPECT_EQ(&pool.Slot(1), second);
}

TEST(ScratchPoolTest, SlotsAreDistinct) {
  ScratchPool pool;
  pool.EnsureSlots(4);
  for (size_t i = 0; i < 4; ++i) {
    for (size_t j = i + 1; j < 4; ++j) {
      EXPECT_NE(&pool.Slot(i), &pool.Slot(j));
    }
  }
}

TEST(ScratchPoolTest, SlotsSurviveReuseAcrossEpochs) {
  // A slot's PartitionScratch is epoch-stamped: the same slot can serve any
  // number of kernel rounds, and results stay exact. Meet the same pair
  // through one slot many times, interleaved with unrelated kernel work
  // that dirties the scratch tables.
  ScratchPool pool;
  pool.EnsureSlots(2);

  const lat::Partition a =
      lat::Partition::FromLabels({0, 0, 1, 2, 1, 3, 0, 2});
  const lat::Partition b =
      lat::Partition::FromLabels({0, 1, 1, 2, 2, 3, 3, 0});
  const lat::Partition expected = a.Meet(b);

  for (int round = 0; round < 100; ++round) {
    EvalScratch& slot = pool.Slot(round % 2);
    // Dirty the scratch with a different-size problem first.
    const lat::Partition noise =
        lat::Partition::FromLabels({0, 1, 0, 1, 2, 2, 0, 1, 2, 0, 1, 2});
    lat::Partition noise_out;
    noise.MeetInto(noise, noise_out, slot.scratch);

    a.MeetInto(b, slot.meet_tmp, slot.scratch);
    EXPECT_EQ(slot.meet_tmp, expected) << "round " << round;
    EXPECT_TRUE(expected.RefinesWith(a, slot.scratch));
    EXPECT_TRUE(expected.RefinesWith(b, slot.scratch));
  }
}

}  // namespace
}  // namespace jim::exec
