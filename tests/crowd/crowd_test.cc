#include <gtest/gtest.h>

#include "core/jim.h"
#include "crowd/baselines.h"
#include "crowd/crowd_join.h"
#include "util/rng.h"
#include "workload/setgame.h"
#include "workload/travel.h"

namespace jim::crowd {
namespace {

TEST(MajorityErrorRateTest, KnownValues) {
  EXPECT_DOUBLE_EQ(MajorityErrorRate(1, 0.1), 0.1);
  // 3 workers at p=0.1: p^3 + 3 p^2 (1-p) = 0.001 + 0.027 = 0.028.
  EXPECT_NEAR(MajorityErrorRate(3, 0.1), 0.028, 1e-12);
  EXPECT_DOUBLE_EQ(MajorityErrorRate(3, 0.0), 0.0);
  EXPECT_NEAR(MajorityErrorRate(3, 0.5), 0.5, 1e-12);
  // More workers help: strictly decreasing for p < 0.5.
  EXPECT_LT(MajorityErrorRate(5, 0.2), MajorityErrorRate(3, 0.2));
  EXPECT_LT(MajorityErrorRate(7, 0.2), MajorityErrorRate(5, 0.2));
}

TEST(CrowdJimTest, PerfectWorkersIdentifyGoal) {
  auto instance = workload::Figure1InstancePtr();
  const auto goal =
      core::JoinPredicate::Parse(instance->schema(), workload::kQ2).value();
  auto strategy = core::MakeStrategy("lookahead-entropy").value();
  CrowdOptions options;
  options.worker_error_rate = 0.0;
  const CrowdRunResult result =
      RunCrowdJim(instance, goal, *strategy, options);
  EXPECT_TRUE(result.correct);
  EXPECT_EQ(result.majority_errors, 0u);
  EXPECT_EQ(result.worker_answers, result.questions * 3);
  EXPECT_DOUBLE_EQ(result.total_cost,
                   static_cast<double>(result.worker_answers) * 0.05);
}

TEST(CrowdJimTest, CostIsFractionOfLabelEverything) {
  auto instance = workload::Figure1InstancePtr();
  const auto goal =
      core::JoinPredicate::Parse(instance->schema(), workload::kQ1).value();
  auto strategy = core::MakeStrategy("lookahead-entropy").value();
  CrowdOptions options;
  options.worker_error_rate = 0.0;
  const auto jim_run = RunCrowdJim(instance, goal, *strategy, options);
  const auto naive = RunLabelEverything(instance, goal, options);
  EXPECT_EQ(naive.questions, instance->num_rows());
  EXPECT_LT(jim_run.questions, naive.questions);
  EXPECT_LT(jim_run.total_cost, naive.total_cost);
  EXPECT_TRUE(naive.correct);
}

TEST(CrowdJimTest, NoisySessionsStillTerminate) {
  auto instance = workload::Figure1InstancePtr();
  const auto goal =
      core::JoinPredicate::Parse(instance->schema(), workload::kQ2).value();
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    auto strategy = core::MakeStrategy("lookahead-entropy", seed).value();
    CrowdOptions options;
    options.worker_error_rate = 0.35;
    options.seed = seed;
    const auto result = RunCrowdJim(instance, goal, *strategy, options);
    EXPECT_GE(result.questions, 1u);
    EXPECT_LE(result.questions, 12u);
  }
}

TEST(TransitiveBaselineTest, PerfectWorkersRecoverClustering) {
  const rel::Relation cards = workload::AllSetCards();
  util::Rng rng(1);
  auto pair_instance = workload::SetPairInstance(0, rng);
  const auto goal = core::JoinPredicate::Parse(pair_instance->schema(),
                                               "Left.Color=Right.Color")
                        .value();
  CrowdOptions options;
  options.worker_error_rate = 0.0;
  const auto result = RunTransitiveCrowdJoin(cards, goal, options);
  EXPECT_TRUE(result.correct);
  // Transitivity must save a lot: far fewer questions than all pairs.
  const size_t all_pairs = 81 * 80 / 2;
  EXPECT_LT(result.questions, all_pairs / 2);
  // But it still needs at least n - #clusters positive merges plus
  // inter-cluster negatives: 81 - 3 = 78 merges minimum.
  EXPECT_GE(result.questions, 78u);
}

TEST(TransitiveBaselineTest, BeatsAllPairsInQuestions) {
  const rel::Relation cards = workload::AllSetCards();
  util::Rng rng(2);
  auto pair_instance = workload::SetPairInstance(0, rng);
  const auto goal = core::JoinPredicate::Parse(pair_instance->schema(),
                                               "Left.Number=Right.Number")
                        .value();
  CrowdOptions options;
  options.worker_error_rate = 0.0;
  const auto transitive = RunTransitiveCrowdJoin(cards, goal, options);
  const auto naive = RunAllPairsCrowdJoin(cards, goal, options);
  EXPECT_EQ(naive.questions, 81u * 80u / 2u);
  EXPECT_LT(transitive.questions, naive.questions);
  EXPECT_TRUE(naive.correct);
  EXPECT_TRUE(transitive.correct);
}

TEST(TransitiveBaselineTest, AccountingIsConsistent) {
  const rel::Relation cards = workload::AllSetCards();
  util::Rng rng(3);
  auto pair_instance = workload::SetPairInstance(0, rng);
  const auto goal = core::JoinPredicate::Parse(pair_instance->schema(),
                                               "Left.Shading=Right.Shading")
                        .value();
  CrowdOptions options;
  options.workers_per_question = 5;
  options.price_per_answer = 0.02;
  options.worker_error_rate = 0.05;
  const auto result = RunTransitiveCrowdJoin(cards, goal, options);
  EXPECT_EQ(result.worker_answers, result.questions * 5);
  EXPECT_NEAR(result.total_cost,
              static_cast<double>(result.worker_answers) * 0.02, 1e-9);
}

TEST(CrowdComparisonTest, JimBeatsBothBaselinesOnQuestions) {
  // The paper's pitch, as a testable inequality (perfect workers).
  const rel::Relation cards = workload::AllSetCards();
  util::Rng rng(4);
  auto pair_instance = workload::SetPairInstance(0, rng);
  const auto goal = core::JoinPredicate::Parse(pair_instance->schema(),
                                               "Left.Color=Right.Color")
                        .value();
  CrowdOptions options;
  options.worker_error_rate = 0.0;
  auto strategy = core::MakeStrategy("lookahead-entropy").value();
  const auto jim_run = RunCrowdJim(pair_instance, goal, *strategy, options);
  const auto transitive = RunTransitiveCrowdJoin(cards, goal, options);
  const auto naive = RunLabelEverything(pair_instance, goal, options);
  EXPECT_TRUE(jim_run.correct);
  EXPECT_LT(jim_run.questions, transitive.questions);
  EXPECT_LT(transitive.questions, naive.questions);
}

}  // namespace
}  // namespace jim::crowd
