#!/usr/bin/env python3
"""Determinism and hygiene lint for the JIM library sources.

The repo's core guarantee — identical inputs give bitwise-identical
inference at any thread count — dies quietly the first time library code
iterates a hash container, keys an ordered container on pointers, or mixes
an address into anything observable. This lint keeps those patterns out of
the library tree:

  unordered-iteration   Range-for / .begin() iteration over a
                        std::unordered_{map,set,multimap,multiset} variable
                        in src/{core,lattice,query,exec,storage}. Lookups
                        are fine; *iteration order* is the nondeterminism.
  pointer-key           std::map/std::set keyed on a pointer type anywhere
                        in src/ — ordered by address, i.e. by allocator
                        mood.
  nondet-call           rand()/srand()/time()/std::random_device/
                        wall-clock now() in library code (benches and the
                        CLI may time things; the library may not).
  address-hash          reinterpret_cast of a pointer to an integer in
                        src/ — the first step of every address-as-hash
                        scheme (and of address-keyed logic in general).
  wallclock             Any <chrono> include, std::chrono mention, concrete
                        clock type, or C clock read in src/{core,lattice,
                        query,serve}. Tighter than nondet-call: inference
                        and serving code may not even *plumb* time (a
                        session transcript must replay bitwise identically
                        on a daemon restarted years later). Wall-clock
                        reads belong in src/obs/ and util/stopwatch.h only
                        — observability wraps the engine, never the other
                        way around.
  include-guard         Header guard not of the canonical
                        JIM_<PATH>_H_ form, missing, or with a stale
                        trailing #endif comment.
  raw-io                Direct filesystem/socket syscalls or stream I/O
                        (::open/::read/::write/::rename/::socket/::send/
                        ::recv/std::ofstream/std::ifstream/std::rename/
                        std::remove/std::filesystem mutation) in
                        src/storage/ outside env.cc, or in src/serve/. All
                        storage I/O must route through the storage::Env
                        seam so fault injection and crash replay see every
                        operation; all serving I/O must route through the
                        serve::Transport seam (checkpoints through Env),
                        so src/serve/transport.cc carries the only
                        allowlisted socket calls.

Findings are suppressed only through the checked-in allowlist
(tools/lint_determinism_allowlist.txt), one entry per line:

  <rule> <path> <substring that must appear in the flagged line>

Every entry must carry a trailing "# why" justification and must still
match at least one finding — stale entries fail the lint, so the allowlist
can only shrink or stay justified. Exit status: 0 clean, 1 findings or
stale entries, 2 usage error.
"""

import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC_ROOT = os.path.join(REPO_ROOT, "src")
ALLOWLIST_PATH = os.path.join(
    REPO_ROOT, "tools", "lint_determinism_allowlist.txt")

# unordered-iteration is scoped to the subsystems whose behavior feeds
# inference results; rel/ and util/ expose no iteration-order-dependent
# results and host the audit helpers that legitimately walk hash maps.
ITERATION_SCOPE = ("core", "lattice", "query", "exec", "storage")

UNORDERED_DECL_RE = re.compile(r"\bunordered_(?:map|set|multimap|multiset)\s*<")
RANGE_FOR_RE = re.compile(r"\bfor\s*\(.*?:\s*(.+)\)\s*\{?\s*$")
# Only begin(): every iterator walk needs it, while a bare end() is the
# idiomatic `find(...) != end()` lookup, which is order-independent.
BEGIN_RE = re.compile(r"\b([A-Za-z_]\w*)\s*\.\s*c?begin\s*\(")
POINTER_KEY_RE = re.compile(
    r"\b(?:std\s*::\s*)?(?:map|set|multimap|multiset)\s*<\s*"
    r"(?:const\s+)?[\w:]+(?:\s*<[^<>]*>)?\s*\*")
NONDET_RES = [
    (re.compile(r"(?<![\w:.])s?rand\s*\("), "rand()/srand()"),
    (re.compile(r"(?<![\w:.])time\s*\(\s*(?:NULL|nullptr|0)?\s*\)"),
     "time()"),
    (re.compile(r"\brandom_device\b"), "std::random_device"),
    # Any ::now() — clock aliases (using Clock = steady_clock) would dodge a
    # list of concrete clock names.
    (re.compile(r"::\s*now\s*\("), "clock now()"),
]
ADDRESS_HASH_RE = re.compile(
    r"reinterpret_cast\s*<\s*(?:std\s*::\s*)?u?int(?:ptr_t|64_t)\s*>")
# wallclock: inference and serving code must stay time-free so sessions
# replay bitwise identically (serve/ checkpoints promise byte-identical
# transcripts across daemon restarts). Timing wrappers live outside these
# directories (src/obs/, util/stopwatch.h), so even *mentioning* chrono
# here is a finding.
WALLCLOCK_SCOPE = ("core", "lattice", "query", "serve")
WALLCLOCK_RES = [
    (re.compile(r"#\s*include\s*<chrono>"), "<chrono> include"),
    (re.compile(r"\bstd\s*::\s*chrono\b"), "std::chrono use"),
    (re.compile(r"\b(?:steady_clock|system_clock|high_resolution_clock)\b"),
     "concrete clock type"),
    (re.compile(r"\b(?:clock_gettime|gettimeofday|clock)\s*\("),
     "C clock read"),
]
# raw-io: storage code bypassing the Env seam, or serving code bypassing
# the Transport seam. Matched in src/storage/ and src/serve/, with env.cc
# exempt (it IS the Env seam's posix backend); transport.cc (the Transport
# seam's socket backend) is fenced through the allowlist instead, so every
# one of its syscalls carries a checked-in justification. The socket verbs
# are matched case-sensitively behind `::` so Server::Shutdown and
# Connection::ShutdownNow stay invisible to the rule.
RAW_IO_SCOPE = ("src/storage/", "src/serve/")
RAW_IO_RES = [
    (re.compile(r"::\s*(?:open|creat|read|write|pread|pwrite|close|fsync|"
                r"fdatasync|mmap|munmap|rename|unlink|mkdir|opendir|"
                r"readdir|ftruncate|fopen|fstat|stat|lstat)\s*\("),
     "direct filesystem syscall"),
    (re.compile(r"::\s*(?:socket|bind|listen|accept|connect|send|recv|"
                r"setsockopt|getsockname|shutdown)\s*\("),
     "direct socket syscall"),
    (re.compile(r"\bstd\s*::\s*(?:o|i)?fstream\b"), "std stream I/O"),
    (re.compile(r"\bstd\s*::\s*(?:rename|remove|fopen|tmpfile)\s*\("),
     "std C file mutation"),
    (re.compile(r"\bstd\s*::\s*filesystem\s*::\s*"
                r"(?:rename|remove|remove_all|create_director|resize_file|"
                r"copy|permissions)"),
     "std::filesystem mutation"),
]
RAW_IO_EXEMPT = ("src/storage/env.cc",)
LINE_COMMENT_RE = re.compile(r"//.*$")


def strip_strings_and_comments(line):
    """Drops string/char literals and // comments so regexes see only code."""
    line = re.sub(r'"(?:[^"\\]|\\.)*"', '""', line)
    line = re.sub(r"'(?:[^'\\]|\\.)*'", "''", line)
    return LINE_COMMENT_RE.sub("", line)


def unordered_names(lines):
    """Names declared (or aliased) with an unordered container type.

    Angle brackets are matched properly, so nested value types don't derail
    the identifier extraction.
    """
    names = set()
    text = "\n".join(lines)
    for match in UNORDERED_DECL_RE.finditer(text):
        depth, i = 1, match.end()
        while i < len(text) and depth > 0:
            if text[i] == "<":
                depth += 1
            elif text[i] == ">":
                depth -= 1
            i += 1
        if depth != 0:
            continue
        tail = text[i:i + 200]
        ident = re.match(r"\s*&?\s*([A-Za-z_]\w*)\s*[;={(,)]", tail)
        if ident:
            names.add(ident.group(1))
    return names


def base_identifier(expr):
    """`store.seen_codes_` → seen_codes_; `seen` → seen; else None."""
    expr = expr.strip().rstrip("{").strip()
    match = re.search(r"([A-Za-z_]\w*)\s*$", expr)
    return match.group(1) if match else None


def guard_token(rel_path):
    # src/util/check.h -> JIM_UTIL_CHECK_H_
    trimmed = rel_path[len("src/"):] if rel_path.startswith("src/") else rel_path
    return "JIM_" + re.sub(r"[/.]", "_", trimmed).upper() + "_"


def lint_file(rel_path, findings):
    path = os.path.join(REPO_ROOT, rel_path)
    with open(path, encoding="utf-8") as handle:
        raw_lines = handle.read().splitlines()
    code_lines = [strip_strings_and_comments(line) for line in raw_lines]

    in_iteration_scope = any(
        rel_path.startswith(f"src/{d}/") for d in ITERATION_SCOPE)
    in_wallclock_scope = any(
        rel_path.startswith(f"src/{d}/") for d in WALLCLOCK_SCOPE)
    if in_iteration_scope:
        unordered = unordered_names(code_lines)
        for number, line in enumerate(code_lines, 1):
            match = RANGE_FOR_RE.search(line)
            if match:
                base = base_identifier(match.group(1))
                if base in unordered:
                    findings.append((
                        "unordered-iteration", rel_path, number,
                        raw_lines[number - 1],
                        f"range-for over unordered container '{base}' — "
                        "iteration order is implementation noise"))
            for begin in BEGIN_RE.finditer(line):
                if begin.group(1) in unordered:
                    findings.append((
                        "unordered-iteration", rel_path, number,
                        raw_lines[number - 1],
                        f"iterator walk of unordered container "
                        f"'{begin.group(1)}'"))

    for number, line in enumerate(code_lines, 1):
        if POINTER_KEY_RE.search(line):
            findings.append((
                "pointer-key", rel_path, number, raw_lines[number - 1],
                "ordered container keyed on a pointer — ordered by "
                "allocation address"))
        for regex, what in NONDET_RES:
            if regex.search(line):
                findings.append((
                    "nondet-call", rel_path, number, raw_lines[number - 1],
                    f"{what} in library code"))
        if ADDRESS_HASH_RE.search(line):
            findings.append((
                "address-hash", rel_path, number, raw_lines[number - 1],
                "pointer reinterpreted as integer — address-dependent "
                "behavior"))
        if in_wallclock_scope:
            for regex, what in WALLCLOCK_RES:
                if regex.search(line):
                    findings.append((
                        "wallclock", rel_path, number, raw_lines[number - 1],
                        f"{what} in inference code — wall-clock plumbing "
                        "belongs in src/obs/ or util/stopwatch.h"))
        if (any(rel_path.startswith(scope) for scope in RAW_IO_SCOPE)
                and rel_path not in RAW_IO_EXEMPT):
            seam = ("serve::Transport (files: storage::Env)"
                    if rel_path.startswith("src/serve/")
                    else "storage::Env")
            for regex, what in RAW_IO_RES:
                if regex.search(line):
                    findings.append((
                        "raw-io", rel_path, number, raw_lines[number - 1],
                        f"{what} bypasses the {seam} seam — route it "
                        "through the seam so tests can intercept it"))

    if rel_path.endswith(".h"):
        token = guard_token(rel_path)
        ifndef = next((i for i, l in enumerate(code_lines)
                       if l.strip().startswith("#ifndef")), None)
        ok = (
            ifndef is not None
            and code_lines[ifndef].split() == ["#ifndef", token]
            and ifndef + 1 < len(code_lines)
            and code_lines[ifndef + 1].split() == ["#define", token])
        if ok:
            last = next((l for l in reversed(raw_lines)
                         if l.strip().startswith("#endif")), "")
            if last.strip() != f"#endif  // {token}":
                findings.append((
                    "include-guard", rel_path, len(raw_lines), last,
                    f"trailing #endif comment is not '// {token}'"))
        else:
            findings.append((
                "include-guard", rel_path,
                (ifndef + 1) if ifndef is not None else 1,
                raw_lines[ifndef] if ifndef is not None else "",
                f"header guard is not the canonical {token}"))


def load_allowlist():
    entries = []
    if not os.path.exists(ALLOWLIST_PATH):
        return entries
    with open(ALLOWLIST_PATH, encoding="utf-8") as handle:
        for number, raw in enumerate(handle, 1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            if "#" not in line:
                print(f"lint_determinism: allowlist line {number} has no "
                      "'# why' justification", file=sys.stderr)
                sys.exit(2)
            body, _ = line.split("#", 1)
            parts = body.strip().split(None, 2)
            if len(parts) != 3:
                print(f"lint_determinism: allowlist line {number} is not "
                      "'<rule> <path> <line substring>  # why'",
                      file=sys.stderr)
                sys.exit(2)
            entries.append({"rule": parts[0], "path": parts[1],
                            "substring": parts[2], "line": number,
                            "used": False})
    return entries


def main():
    findings = []
    for dirpath, _, filenames in os.walk(SRC_ROOT):
        for filename in sorted(filenames):
            if not filename.endswith((".h", ".cc")):
                continue
            rel_path = os.path.relpath(
                os.path.join(dirpath, filename), REPO_ROOT)
            lint_file(rel_path, findings)

    allowlist = load_allowlist()
    reported = []
    for rule, rel_path, number, line, message in sorted(findings):
        suppressed = False
        for entry in allowlist:
            if (entry["rule"] == rule and entry["path"] == rel_path
                    and entry["substring"] in line):
                entry["used"] = True
                suppressed = True
        if not suppressed:
            reported.append(
                f"{rel_path}:{number}: [{rule}] {message}\n    {line.strip()}")

    failed = False
    for report in reported:
        print(report)
        failed = True
    for entry in allowlist:
        if not entry["used"]:
            print(f"lint_determinism: stale allowlist entry at line "
                  f"{entry['line']} ({entry['rule']} {entry['path']}) — "
                  "matches nothing, remove it")
            failed = True
    if failed:
        print(f"lint_determinism: FAILED "
              f"({len(reported)} finding(s))", file=sys.stderr)
        return 1
    print(f"lint_determinism: OK ({len(findings)} finding(s) total, "
          f"{len(allowlist)} allowlisted)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
