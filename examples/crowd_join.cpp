// Crowdsourced joins (paper §1): "minimizing the number of interactions
// entails lower financial costs". This example prices the same join task
// three ways:
//   - JIM with crowd answers (majority vote per membership question),
//   - the transitivity-exploiting crowd join of Wang et al. [5],
//   - naively asking the crowd about everything.
//
// Usage:
//   ./crowd_join [--error=0.1] [--workers=3] [--price=0.05]

#include <iostream>
#include <string>

#include "core/jim.h"
#include "crowd/baselines.h"
#include "crowd/crowd_join.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "workload/setgame.h"

int main(int argc, char** argv) {
  using namespace jim;

  crowd::CrowdOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--error=", 0) == 0) {
      options.worker_error_rate = std::stod(arg.substr(8));
    } else if (arg.rfind("--workers=", 0) == 0) {
      options.workers_per_question =
          static_cast<size_t>(std::stoul(arg.substr(10)));
    } else if (arg.rfind("--price=", 0) == 0) {
      options.price_per_answer = std::stod(arg.substr(8));
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return 2;
    }
  }

  // Task: join the 81 Set cards on "same color" (an entity-resolution-style
  // equivalence, so the transitive baseline applies too).
  const rel::Relation cards = workload::AllSetCards();
  util::Rng rng(7);
  auto pair_instance = workload::SetPairInstance(/*sample_size=*/0, rng);
  auto pair_store = core::MakeRelationStore(pair_instance);
  auto goal =
      core::JoinPredicate::Parse(pair_instance->schema(),
                                 "Left.Color=Right.Color")
          .value();

  std::cout << "task: crowdsource the join of " << cards.num_rows()
            << " tagged pictures on \"same color\" ("
            << pair_instance->num_rows() << " candidate pairs)\n"
            << "workers/question: " << options.workers_per_question
            << ", worker error rate: " << options.worker_error_rate
            << " (majority-vote error: "
            << util::FormatDouble(crowd::MajorityErrorRate(
                   options.workers_per_question, options.worker_error_rate))
            << "), price/answer: $" << options.price_per_answer << "\n\n";

  util::TablePrinter table(
      {"method", "questions", "answers", "cost ($)", "majority errs",
       "correct"});
  table.SetAlignments({util::Align::kLeft, util::Align::kRight,
                       util::Align::kRight, util::Align::kRight,
                       util::Align::kRight, util::Align::kLeft});

  auto add_row = [&table](const std::string& name,
                          const crowd::CrowdRunResult& r) {
    table.AddRow({name, std::to_string(r.questions),
                  std::to_string(r.worker_answers),
                  util::StrFormat("%.2f", r.total_cost),
                  std::to_string(r.majority_errors),
                  r.correct ? "yes" : "NO"});
  };

  {
    auto strategy = core::MakeStrategy("lookahead-entropy").value();
    add_row("JIM (crowd-answered)",
            crowd::RunCrowdJim(pair_store, goal, *strategy, options));
  }
  add_row("transitive crowd join [5]",
          crowd::RunTransitiveCrowdJoin(cards, goal, options));
  add_row("label everything",
          crowd::RunLabelEverything(pair_instance, goal, options));

  std::cout << table.ToString()
            << "\nJIM asks about *predicates* (n-ary joins), the transitive "
               "baseline only about same-entity pairs;\nJIM's advantage "
               "grows with instance size because its question count depends "
               "on the schema, not the data volume.\n";
  return 0;
}
