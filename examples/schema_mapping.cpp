// Schema-mapping inference (paper §1): JIM's join queries "can be eventually
// seen as simple GAV mappings". This example starts from *separate* source
// relations with no known integrity constraints, builds the universal table
// of candidate tuples, infers the join predicate interactively, and
// translates it back into a cross-relation SQL query / GAV mapping.
//
// Two scenarios:
//   (a) travel:  Flights ⋈ Hotels  (the paper's motivating data)
//   (b) tpch:    customer ⋈ orders ⋈ lineitem on the key/foreign-key chain
//
// Usage:  ./schema_mapping [travel|tpch]

#include <iostream>
#include <string>

#include "core/jim.h"
#include "query/universal_table.h"
#include "util/rng.h"
#include "workload/tpch.h"
#include "workload/travel.h"

namespace {

void RunScenario(const jim::rel::Catalog& catalog,
                 const std::vector<std::string>& relations,
                 const std::string& goal_text) {
  using namespace jim;

  // Build the space of candidate tuples: the (possibly sampled) cross
  // product of the involved relations — JIM assumes no constraint knowledge.
  query::UniversalTableOptions options;
  options.sample_cap = 20'000;
  auto table_or = query::UniversalTable::Build(catalog, relations, options);
  if (!table_or.ok()) {
    std::cerr << table_or.status().ToString() << "\n";
    std::exit(1);
  }
  const query::UniversalTable& table = *table_or;
  std::cout << "universal table over {";
  for (size_t i = 0; i < relations.size(); ++i) {
    std::cout << (i ? ", " : "") << relations[i];
  }
  std::cout << "}: " << table.num_tuples() << " candidate tuples"
            << (table.is_sampled()
                    ? " (sampled from " +
                          std::to_string(table.full_product_size()) + ")"
                    : "")
            << "\n";

  auto goal = core::JoinPredicate::Parse(table.schema(), goal_text).value();
  std::cout << "user's intended mapping: " << goal.ToString() << "\n";

  // Interactive inference with a simulated user, over the factorized store
  // (candidate tuples stay row ids; only asked tuples are decoded).
  auto strategy = core::MakeStrategy("lookahead-entropy").value();
  const core::SessionResult session =
      core::RunSession(table.store(), goal, *strategy);

  std::cout << "membership questions asked: " << session.interactions << "\n"
            << "inferred predicate: " << session.result->ToString() << "\n";

  // Back-translate to a multi-relation join query (GAV mapping).
  const query::JoinQuery query = table.ToJoinQuery(*session.result);
  auto sql = query.ToSql(catalog);
  std::cout << "as SQL over the sources: "
            << (sql.ok() ? *sql : sql.status().ToString()) << "\n";

  // Execute it with the relational engine to show it is a real query.
  auto result = query.Evaluate(catalog);
  if (result.ok()) {
    std::cout << "evaluating it joins " << result->num_rows()
              << " result tuples\n\n";
  } else {
    std::cout << "evaluation failed: " << result.status().ToString() << "\n\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace jim;
  const std::string scenario = argc > 1 ? argv[1] : "travel";

  if (scenario == "travel") {
    RunScenario(workload::TravelCatalog(), {"Flights", "Hotels"},
                "Flights.To = Hotels.City && "
                "Flights.Airline = Hotels.Discount");
  } else if (scenario == "tpch") {
    util::Rng rng(42);
    workload::TpchSpec spec;
    spec.num_customers = 12;
    spec.num_orders = 18;
    spec.num_lineitems_per_order = 2;
    const rel::Catalog catalog = workload::MakeTpchCatalog(spec, rng);
    RunScenario(catalog, {"customer", "orders"},
                "customer.c_custkey = orders.o_custkey");
    RunScenario(catalog, {"orders", "lineitem"},
                "orders.o_orderkey = lineitem.l_orderkey");
  } else {
    std::cerr << "unknown scenario '" << scenario
              << "' (expected travel|tpch)\n";
    return 2;
  }
  return 0;
}
