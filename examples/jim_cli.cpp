// jim_cli — drive JIM against your own data.
//
// Subcommands:
//   infer <file.csv> [--strategy=NAME] [--mode=1..4] [--goal=PRED] [--auto]
//       Interactive join inference over a CSV instance (header row =
//       attribute names; column types inferred). With --auto a simulated
//       user labels according to --goal (required then). With --selection
//       the goal may contain constant selections (e.g. "Airline='AF'").
//   classes <file.csv>
//       Show the tuple equivalence classes JIM reasons over.
//   eval <file.csv> --query=PRED
//       Evaluate an equi-join predicate on the instance.
//   strategies
//       List the available question-selection strategies.
//   serve [--load-instance=FILE.jimc] [--port=N | --stdio]
//         [--checkpoint-dir=DIR] [--max-sessions=N] [--max-steps=N]
//         [--serve-mode=many|few] [--trusted-reopen] [--max-connections=N]
//       Run the inference daemon (newline-delimited JSON verbs: create,
//       suggest, label, status, result, close, stats, ping, shutdown).
//       --port listens on localhost TCP (0 = ephemeral; the bound address
//       is printed as "serving on 127.0.0.1:PORT"); --stdio serves one
//       session over stdin/stdout instead. With --checkpoint-dir every
//       live session is recovered on restart. See src/serve/README.md.
//   call --port=N '<json-line>' ['<json-line>' ...]
//       Send request lines to a running daemon and print the raw
//       response lines.
//
// Persistent instances (infer/classes/eval):
//   --save-instance=FILE.jimc   after loading, persist the encoded instance
//       as an mmap-ready JIMC columnar file (confirmation goes to stderr so
//       saved-vs-loaded session transcripts stay diffable);
//   --load-instance=FILE.jimc   serve the instance zero-copy from a JIMC
//       file instead of parsing a CSV — sessions are byte-identical to the
//       in-memory instance the file was written from.
//
// Observability (any subcommand):
//   --metrics-out=FILE   enable the process-wide metrics registry, route
//       storage I/O through a counting storage::MetricsEnv, and write the
//       final snapshot (engine/exec/storage counters, gauges, histograms)
//       to FILE as JSON. Metrics never change behavior: the stdout
//       transcript is byte-identical with and without this flag.
//   --trace[=FILE]       (infer) record one structured event per label
//       (question, answer, pruning, worklist, simulate-call cost) and
//       write the session trace JSON to FILE, or to stderr when no file
//       is given — stdout stays diff-clean either way.
//
// Examples:
//   jim_cli infer flights.csv
//   jim_cli infer flights.csv --auto --goal="To=City && Airline=Discount"
//   jim_cli eval flights.csv --query="To=City"
//   jim_cli infer flights.csv --save-instance=flights.jimc
//   jim_cli infer --load-instance=flights.jimc --auto --goal="To=City"

#include <iostream>
#include <map>
#include <string>

#include "core/jim.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "relational/csv_io.h"
#include "serve/client.h"
#include "serve/server.h"
#include "serve/session_manager.h"
#include "serve/transport.h"
#include "storage/env.h"
#include "storage/mapped_store.h"
#include "storage/metrics_env.h"
#include "storage/snapshot.h"
#include "storage/store_writer.h"
#include "ui/console_ui.h"
#include "ui/demo_runner.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "workload/travel.h"

namespace {

using namespace jim;

int Fail(const std::string& message) {
  std::cerr << "jim_cli: " << message << "\n";
  return 2;
}

struct Flags {
  std::map<std::string, std::string> named;
  std::vector<std::string> positional;

  bool Has(const std::string& name) const { return named.count(name) > 0; }
  std::string Get(const std::string& name,
                  const std::string& fallback = "") const {
    auto it = named.find(name);
    return it == named.end() ? fallback : it->second;
  }
};

// The Env all CLI storage I/O goes through. With --metrics-out the ops and
// bytes are counted into the "storage.*" registry metrics; otherwise the
// nullptr falls through to DefaultEnv inside the storage entry points.
storage::Env* CliEnv() {
  if (!obs::MetricsEnabled()) return nullptr;
  static storage::MetricsEnv env;  // wraps DefaultEnv
  return &env;
}

util::Status WriteTextFile(const std::string& path,
                           const std::string& contents) {
  storage::Env* env = CliEnv();
  if (env == nullptr) env = storage::DefaultEnv();
  return storage::WriteFileAtomically(*env, path, contents + "\n");
}

Flags ParseFlags(int argc, char** argv, int first) {
  Flags flags;
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    if (util::StartsWith(arg, "--")) {
      const size_t eq = arg.find('=');
      if (eq == std::string::npos) {
        flags.named[arg.substr(2)] = "true";
      } else {
        flags.named[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    } else {
      flags.positional.push_back(arg);
    }
  }
  return flags;
}

// Resolves the instance behind the TupleStore seam: a CSV parse + encode, or
// a zero-copy reopen of a JIMC file (--load-instance). --save-instance then
// persists whichever store was loaded; its note goes to stderr so a saved
// session's stdout transcript diffs clean against the reloaded one.
util::StatusOr<std::shared_ptr<const core::TupleStore>> LoadStore(
    const Flags& flags) {
  std::shared_ptr<const core::TupleStore> store;
  if (flags.Has("load-instance")) {
    if (!flags.positional.empty()) {
      // Accepting both would silently serve whichever one we picked —
      // e.g. a stale snapshot instead of the CSV actually named.
      return util::InvalidArgumentError(
          "got both a CSV argument ('" + flags.positional[0] +
          "') and --load-instance; pass exactly one instance source");
    }
    auto opened = storage::OpenStore(flags.Get("load-instance"), CliEnv());
    if (!opened.ok()) return opened.status();
    store = *std::move(opened);
  } else {
    if (flags.positional.empty()) {
      return util::InvalidArgumentError(
          "expected a CSV file argument (or --load-instance=FILE.jimc)");
    }
    auto relation = rel::LoadRelationFromCsvFile(flags.positional[0]);
    if (!relation.ok()) return relation.status();
    store = core::MakeRelationStore(
        std::make_shared<const rel::Relation>(*std::move(relation)));
  }
  if (flags.Has("save-instance")) {
    const std::string path = flags.Get("save-instance");
    storage::StoreWriterOptions write_options;
    write_options.env = CliEnv();
    const util::Status saved = storage::WriteStore(*store, path, write_options);
    if (!saved.ok()) return saved;
    std::cerr << "jim_cli: saved instance to " << path << "\n";
  }
  return store;
}

// No-argument default: auto-infer Q2 on the bundled Figure 1 instance, so
// the binary demonstrates itself (and CI can run it) without needing a CSV.
int CmdDemo() {
  std::cout << "jim_cli: no command given — running the built-in Figure 1 "
               "demo (auto mode).\n"
               "usage: jim_cli {infer|classes|eval|strategies} ...  "
               "(see the header of examples/jim_cli.cpp)\n\n";
  auto store = workload::Figure1StorePtr();
  auto goal =
      core::JoinPredicate::Parse(store->schema(), workload::kQ2).value();
  ui::DemoOptions options;
  options.strategy = "lookahead-entropy";
  options.auto_oracle = std::make_unique<core::ExactOracle>(goal);
  auto result =
      ui::RunConsoleDemo(store, std::move(options), std::cin, std::cout);
  if (!result.ok()) return Fail(result.status().ToString());
  const bool identified = core::InstanceEquivalent(*store, *result, goal);
  std::cout << "identified the goal: " << (identified ? "yes" : "NO") << "\n";
  return identified ? 0 : 1;
}

int CmdStrategies() {
  std::cout << "available strategies:\n";
  for (const std::string& name : core::KnownStrategyNames()) {
    std::cout << "  " << name << "\n";
  }
  return 0;
}

int CmdClasses(const Flags& flags) {
  auto store = LoadStore(flags);
  if (!store.ok()) return Fail(store.status().ToString());
  core::InferenceEngine engine(*store);
  std::cout << "instance: " << (*store)->num_tuples() << " tuples, "
            << (*store)->num_attributes() << " attributes, "
            << engine.num_classes() << " tuple classes\n\n";
  util::TablePrinter table({"class", "value partition", "tuples", "example"});
  table.SetAlignments({util::Align::kRight, util::Align::kLeft,
                       util::Align::kRight, util::Align::kLeft});
  for (size_t c = 0; c < engine.num_classes(); ++c) {
    const auto& cls = engine.tuple_class(c);
    table.AddRow({std::to_string(c), cls.partition.ToString(),
                  std::to_string(cls.size()),
                  ui::RenderTuple(**store, cls.tuple_indices[0])});
  }
  std::cout << table.ToString()
            << "\n(tuples in one class are interchangeable: labeling one "
               "determines all of them)\n";
  return 0;
}

int CmdEval(const Flags& flags) {
  auto store = LoadStore(flags);
  if (!store.ok()) return Fail(store.status().ToString());
  if (!flags.Has("query")) return Fail("eval needs --query=\"a=b && ...\"");
  auto predicate =
      core::JoinPredicate::Parse((*store)->schema(), flags.Get("query"));
  if (!predicate.ok()) return Fail(predicate.status().ToString());
  const auto selected = predicate->SelectedRows(**store);
  std::cout << "predicate: " << predicate->ToString() << "\n"
            << "selects " << selected.Count() << " of "
            << (*store)->num_tuples() << " tuples:\n";
  for (size_t t : selected.ToVector()) {
    std::cout << "  (" << t + 1 << ") " << ui::RenderTuple(**store, t)
              << "\n";
  }
  return 0;
}

int CmdInfer(const Flags& flags) {
  auto store = LoadStore(flags);
  if (!store.ok()) return Fail(store.status().ToString());

  // The selection+join extension runs its own loop over Value rows. A
  // CSV-loaded store already holds its relation; only a mapped instance
  // needs materializing.
  if (flags.Has("selection")) {
    if (!flags.Has("goal")) {
      return Fail("--selection currently requires --goal (auto mode)");
    }
    auto goal = core::SelectionJoinQuery::Parse((*store)->schema(),
                                                flags.Get("goal"));
    if (!goal.ok()) return Fail(goal.status().ToString());
    const auto* relation_store =
        dynamic_cast<const core::RelationTupleStore*>(store->get());
    const auto instance =
        relation_store != nullptr
            ? relation_store->relation()
            : std::make_shared<const rel::Relation>(
                  storage::MaterializeStore(**store));
    const auto result = core::RunSelectionSession(instance, *goal);
    std::cout << "questions: " << result.interactions << "\n"
              << "inferred:  "
              << (result.result.has_value() ? result.result->ToString()
                                            : "(empty result set)")
              << "\n"
              << "identified goal: "
              << (result.identified_goal ? "yes" : "NO") << "\n";
    return result.identified_goal ? 0 : 1;
  }

  ui::DemoOptions options;
  options.strategy = flags.Get("strategy", "lookahead-entropy");
  const auto mode_or = core::ParseInteractionMode(flags.Get("mode", "4"));
  if (!mode_or.ok()) return Fail("--mode: " + mode_or.status().message());
  options.mode = *mode_or;

  std::optional<core::JoinPredicate> goal;
  if (flags.Has("goal")) {
    auto parsed =
        core::JoinPredicate::Parse((*store)->schema(), flags.Get("goal"));
    if (!parsed.ok()) return Fail(parsed.status().ToString());
    goal = *std::move(parsed);
  }
  if (flags.Has("auto")) {
    if (!goal.has_value()) return Fail("--auto requires --goal");
    options.auto_oracle = std::make_unique<core::ExactOracle>(*goal);
  }

  obs::SessionTracer tracer;
  const bool tracing = flags.Has("trace");
  if (tracing) options.tracer = &tracer;

  auto result =
      ui::RunConsoleDemo(*store, std::move(options), std::cin, std::cout);
  if (tracing) {
    // Emitted even for an aborted session — a partial trace is exactly what
    // post-mortems want. "true" is the bare-flag value; it means stderr.
    const std::string trace_out = flags.Get("trace");
    if (trace_out.empty() || trace_out == "true") {
      std::cerr << tracer.ToJson() << "\n";
    } else {
      const util::Status written = WriteTextFile(trace_out, tracer.ToJson());
      if (!written.ok()) return Fail(written.ToString());
      std::cerr << "jim_cli: wrote session trace to " << trace_out << "\n";
    }
  }
  if (!result.ok()) return Fail(result.status().ToString());
  if (goal.has_value()) {
    std::cout << "identified the goal: "
              << (core::InstanceEquivalent(**store, *result, *goal)
                      ? "yes"
                      : "NO")
              << "\n";
  }
  return 0;
}

// The inference daemon: a SessionManager (optionally checkpointed and
// recovering) behind a Server over localhost TCP or stdio.
int CmdServe(const Flags& flags) {
  serve::ServeOptions serve_options;
  serve_options.env = CliEnv();
  serve_options.checkpoint_dir = flags.Get("checkpoint-dir");
  serve_options.trusted_reopen = flags.Has("trusted-reopen");
  if (flags.Has("max-sessions")) {
    auto parsed = util::ParseInt64(flags.Get("max-sessions"));
    if (!parsed.ok() || *parsed < 1) return Fail("--max-sessions: bad value");
    serve_options.max_sessions = static_cast<size_t>(*parsed);
  }
  if (flags.Has("max-steps")) {
    auto parsed = util::ParseInt64(flags.Get("max-steps"));
    if (!parsed.ok() || *parsed < 1) return Fail("--max-steps: bad value");
    serve_options.default_max_steps = static_cast<uint64_t>(*parsed);
  }
  if (flags.Has("serve-mode")) {
    auto mode = serve::ParseServingMode(flags.Get("serve-mode"));
    if (!mode.ok()) return Fail(mode.status().ToString());
    serve_options.mode = *mode;
  }
  if (flags.Has("load-instance")) {
    serve_options.default_instance = flags.Get("load-instance");
  }

  serve::SessionManager manager(std::move(serve_options));
  if (flags.Has("load-instance")) {
    // Open eagerly so a bad path fails at startup, and register under the
    // path so `create` requests (and recovered checkpoints) name it.
    const std::string path = flags.Get("load-instance");
    auto store = storage::OpenStore(path, CliEnv());
    if (!store.ok()) return Fail(store.status().ToString());
    manager.RegisterInstance(path, *std::move(store));
  }
  const util::Status recovered = manager.RecoverSessions();
  if (!recovered.ok()) return Fail(recovered.ToString());

  const bool stdio = flags.Has("stdio");
  util::StatusOr<std::unique_ptr<serve::Transport>> transport =
      util::UnimplementedError("no transport");
  if (stdio) {
    transport = serve::StdioTransport();
  } else {
    int64_t port = 0;
    if (flags.Has("port")) {
      auto parsed = util::ParseInt64(flags.Get("port"));
      if (!parsed.ok() || *parsed < 0 || *parsed > 65535) {
        return Fail("--port: bad value");
      }
      port = *parsed;
    }
    transport = serve::ListenTcp(static_cast<uint16_t>(port));
  }
  if (!transport.ok()) return Fail(transport.status().ToString());

  serve::ServerOptions server_options;
  if (flags.Has("max-connections")) {
    auto parsed = util::ParseInt64(flags.Get("max-connections"));
    if (!parsed.ok() || *parsed < 1) {
      return Fail("--max-connections: bad value");
    }
    server_options.max_connections = static_cast<size_t>(*parsed);
  }
  serve::Server server(&manager, std::move(*transport), server_options);
  server.Start();
  if (stdio) {
    // Stdout is the protocol stream; the address note goes to stderr.
    std::cerr << "jim_cli: serving on " << server.address() << "\n";
  } else {
    std::cout << "serving on " << server.address() << std::endl;
  }
  server.Wait();
  return 0;
}

int CmdCall(const Flags& flags) {
  if (!flags.Has("port")) return Fail("call needs --port=N");
  auto port = util::ParseInt64(flags.Get("port"));
  if (!port.ok() || *port < 1 || *port > 65535) {
    return Fail("--port: bad value");
  }
  auto client = serve::Client::ConnectTcp(static_cast<uint16_t>(*port));
  if (!client.ok()) return Fail(client.status().ToString());
  for (const std::string& line : flags.positional) {
    auto response = client->CallRaw(line);
    if (!response.ok()) return Fail(response.status().ToString());
    std::cout << *response << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return CmdDemo();
  const std::string command = argv[1];
  const Flags flags = ParseFlags(argc, argv, 2);
  // Metrics switch on before any work so engine construction, session
  // strategy pools, and storage I/O are all visible in the snapshot.
  if (flags.Has("metrics-out")) obs::SetMetricsEnabled(true);

  int rc;
  if (command == "strategies") {
    rc = CmdStrategies();
  } else if (command == "classes") {
    rc = CmdClasses(flags);
  } else if (command == "eval") {
    rc = CmdEval(flags);
  } else if (command == "infer") {
    rc = CmdInfer(flags);
  } else if (command == "serve") {
    rc = CmdServe(flags);
  } else if (command == "call") {
    rc = CmdCall(flags);
  } else {
    return Fail("unknown command '" + command + "'");
  }

  if (flags.Has("metrics-out")) {
    const std::string path = flags.Get("metrics-out");
    const util::Status written = WriteTextFile(
        path, obs::MetricsRegistry::Instance().Snapshot().ToJson());
    if (!written.ok()) return Fail(written.ToString());
    std::cerr << "jim_cli: wrote metrics snapshot to " << path << "\n";
  }
  return rc;
}
