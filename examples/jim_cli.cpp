// jim_cli — drive JIM against your own data.
//
// Subcommands:
//   infer <file.csv> [--strategy=NAME] [--mode=1..4] [--goal=PRED] [--auto]
//       Interactive join inference over a CSV instance (header row =
//       attribute names; column types inferred). With --auto a simulated
//       user labels according to --goal (required then). With --selection
//       the goal may contain constant selections (e.g. "Airline='AF'").
//   classes <file.csv>
//       Show the tuple equivalence classes JIM reasons over.
//   eval <file.csv> --query=PRED
//       Evaluate an equi-join predicate on the instance.
//   strategies
//       List the available question-selection strategies.
//
// Examples:
//   jim_cli infer flights.csv
//   jim_cli infer flights.csv --auto --goal="To=City && Airline=Discount"
//   jim_cli eval flights.csv --query="To=City"

#include <iostream>
#include <map>
#include <string>

#include "core/jim.h"
#include "relational/csv_io.h"
#include "ui/console_ui.h"
#include "ui/demo_runner.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "workload/travel.h"

namespace {

using namespace jim;

int Fail(const std::string& message) {
  std::cerr << "jim_cli: " << message << "\n";
  return 2;
}

struct Flags {
  std::map<std::string, std::string> named;
  std::vector<std::string> positional;

  bool Has(const std::string& name) const { return named.count(name) > 0; }
  std::string Get(const std::string& name,
                  const std::string& fallback = "") const {
    auto it = named.find(name);
    return it == named.end() ? fallback : it->second;
  }
};

Flags ParseFlags(int argc, char** argv, int first) {
  Flags flags;
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    if (util::StartsWith(arg, "--")) {
      const size_t eq = arg.find('=');
      if (eq == std::string::npos) {
        flags.named[arg.substr(2)] = "true";
      } else {
        flags.named[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    } else {
      flags.positional.push_back(arg);
    }
  }
  return flags;
}

util::StatusOr<std::shared_ptr<const rel::Relation>> LoadInstance(
    const Flags& flags) {
  if (flags.positional.empty()) {
    return util::InvalidArgumentError("expected a CSV file argument");
  }
  auto relation = rel::LoadRelationFromCsvFile(flags.positional[0]);
  if (!relation.ok()) return relation.status();
  return std::make_shared<const rel::Relation>(*std::move(relation));
}

// No-argument default: auto-infer Q2 on the bundled Figure 1 instance, so
// the binary demonstrates itself (and CI can run it) without needing a CSV.
int CmdDemo() {
  std::cout << "jim_cli: no command given — running the built-in Figure 1 "
               "demo (auto mode).\n"
               "usage: jim_cli {infer|classes|eval|strategies} ...  "
               "(see the header of examples/jim_cli.cpp)\n\n";
  auto store = workload::Figure1StorePtr();
  auto goal =
      core::JoinPredicate::Parse(store->schema(), workload::kQ2).value();
  ui::DemoOptions options;
  options.strategy = "lookahead-entropy";
  options.auto_oracle = std::make_unique<core::ExactOracle>(goal);
  auto result =
      ui::RunConsoleDemo(store, std::move(options), std::cin, std::cout);
  if (!result.ok()) return Fail(result.status().ToString());
  const bool identified = core::InstanceEquivalent(*store, *result, goal);
  std::cout << "identified the goal: " << (identified ? "yes" : "NO") << "\n";
  return identified ? 0 : 1;
}

int CmdStrategies() {
  std::cout << "available strategies:\n";
  for (const std::string& name : core::KnownStrategyNames()) {
    std::cout << "  " << name << "\n";
  }
  return 0;
}

int CmdClasses(const Flags& flags) {
  auto instance = LoadInstance(flags);
  if (!instance.ok()) return Fail(instance.status().ToString());
  core::InferenceEngine engine(core::MakeRelationStore(*instance));
  std::cout << "instance: " << (*instance)->num_rows() << " tuples, "
            << (*instance)->num_attributes() << " attributes, "
            << engine.num_classes() << " tuple classes\n\n";
  util::TablePrinter table({"class", "value partition", "tuples", "example"});
  table.SetAlignments({util::Align::kRight, util::Align::kLeft,
                       util::Align::kRight, util::Align::kLeft});
  for (size_t c = 0; c < engine.num_classes(); ++c) {
    const auto& cls = engine.tuple_class(c);
    table.AddRow({std::to_string(c), cls.partition.ToString(),
                  std::to_string(cls.size()),
                  ui::RenderTuple(**instance, cls.tuple_indices[0])});
  }
  std::cout << table.ToString()
            << "\n(tuples in one class are interchangeable: labeling one "
               "determines all of them)\n";
  return 0;
}

int CmdEval(const Flags& flags) {
  auto instance = LoadInstance(flags);
  if (!instance.ok()) return Fail(instance.status().ToString());
  if (!flags.Has("query")) return Fail("eval needs --query=\"a=b && ...\"");
  auto predicate =
      core::JoinPredicate::Parse((*instance)->schema(), flags.Get("query"));
  if (!predicate.ok()) return Fail(predicate.status().ToString());
  const auto selected = predicate->SelectedRows(**instance);
  std::cout << "predicate: " << predicate->ToString() << "\n"
            << "selects " << selected.Count() << " of "
            << (*instance)->num_rows() << " tuples:\n";
  for (size_t t : selected.ToVector()) {
    std::cout << "  (" << t + 1 << ") " << ui::RenderTuple(**instance, t)
              << "\n";
  }
  return 0;
}

int CmdInfer(const Flags& flags) {
  auto instance = LoadInstance(flags);
  if (!instance.ok()) return Fail(instance.status().ToString());

  // The selection+join extension runs its own loop.
  if (flags.Has("selection")) {
    if (!flags.Has("goal")) {
      return Fail("--selection currently requires --goal (auto mode)");
    }
    auto goal = core::SelectionJoinQuery::Parse((*instance)->schema(),
                                                flags.Get("goal"));
    if (!goal.ok()) return Fail(goal.status().ToString());
    const auto result = core::RunSelectionSession(*instance, *goal);
    std::cout << "questions: " << result.interactions << "\n"
              << "inferred:  "
              << (result.result.has_value() ? result.result->ToString()
                                            : "(empty result set)")
              << "\n"
              << "identified goal: "
              << (result.identified_goal ? "yes" : "NO") << "\n";
    return result.identified_goal ? 0 : 1;
  }

  ui::DemoOptions options;
  options.strategy = flags.Get("strategy", "lookahead-entropy");
  const auto mode_or = core::ParseInteractionMode(flags.Get("mode", "4"));
  if (!mode_or.ok()) return Fail("--mode: " + mode_or.status().message());
  options.mode = *mode_or;

  std::optional<core::JoinPredicate> goal;
  if (flags.Has("goal")) {
    auto parsed =
        core::JoinPredicate::Parse((*instance)->schema(), flags.Get("goal"));
    if (!parsed.ok()) return Fail(parsed.status().ToString());
    goal = *std::move(parsed);
  }
  if (flags.Has("auto")) {
    if (!goal.has_value()) return Fail("--auto requires --goal");
    options.auto_oracle = std::make_unique<core::ExactOracle>(*goal);
  }

  auto result =
      ui::RunConsoleDemo(*instance, std::move(options), std::cin, std::cout);
  if (!result.ok()) return Fail(result.status().ToString());
  if (goal.has_value()) {
    std::cout << "identified the goal: "
              << (core::InstanceEquivalent(**instance, *result, *goal)
                      ? "yes"
                      : "NO")
              << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return CmdDemo();
  const std::string command = argv[1];
  const Flags flags = ParseFlags(argc, argv, 2);
  if (command == "strategies") return CmdStrategies();
  if (command == "classes") return CmdClasses(flags);
  if (command == "eval") return CmdEval(flags);
  if (command == "infer") return CmdInfer(flags);
  return Fail("unknown command '" + command + "'");
}
