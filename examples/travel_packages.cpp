// The full demonstration scenario on the travel-agency example: all four
// interaction types of the paper's Figure 3, with either a human at the
// console or a simulated user (--auto).
//
// Usage:
//   ./travel_packages                         # interactive, mode 4
//   ./travel_packages --mode=2                # gray-out mode, you label rows
//   ./travel_packages --auto                  # simulated user infers Q2
//   ./travel_packages --auto --goal="To=City" --strategy=local-bottom-up
//   ./travel_packages --auto --compare        # Figure 4: all modes compared
//
// In interactive modes answer with "+", "-", "<row> +", "t" (table),
// "p" (progress), "q" (quit).

#include <poll.h>
#include <unistd.h>

#include <cctype>
#include <cstring>
#include <iostream>
#include <memory>
#include <streambuf>
#include <string>

#include "core/jim.h"
#include "ui/console_ui.h"
#include "ui/demo_runner.h"
#include "workload/travel.h"

namespace {

struct Args {
  int mode = 4;
  std::string strategy = "lookahead-entropy";
  std::string goal = jim::workload::kQ2;
  bool auto_user = false;
  bool compare = false;
};

Args ParseArgs(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--mode=", 0) == 0) {
      const auto mode = jim::core::ParseInteractionMode(arg.substr(7));
      if (!mode.ok()) {
        std::cerr << "--mode: " << mode.status().message() << "\n";
        std::exit(2);
      }
      args.mode = static_cast<int>(*mode);
    } else if (arg.rfind("--strategy=", 0) == 0) {
      args.strategy = arg.substr(11);
    } else if (arg.rfind("--goal=", 0) == 0) {
      args.goal = arg.substr(7);
    } else if (arg == "--auto") {
      args.auto_user = true;
    } else if (arg == "--compare") {
      args.compare = true;
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      std::exit(2);
    }
  }
  return args;
}

// Pass-through streambuf that counts consumed characters, so the caller can
// tell "stdin was empty from the start" (the poll race below) apart from
// "scripted input was truncated mid-session" (a broken script that must
// stay an error).
class CountingStreambuf : public std::streambuf {
 public:
  explicit CountingStreambuf(std::streambuf* source) : source_(source) {}
  size_t consumed() const { return consumed_; }

 protected:
  int_type underflow() override { return source_->sgetc(); }
  int_type uflow() override {
    const int_type c = source_->sbumpc();
    // Whitespace carries no answers, so `echo | travel_packages` counts the
    // same as `< /dev/null` for the empty-input fallback decision.
    if (c != traits_type::eof() &&
        std::isspace(static_cast<unsigned char>(c)) == 0) {
      ++consumed_;
    }
    return c;
  }

 private:
  std::streambuf* source_;
  size_t consumed_ = 0;
};

// True iff stdin is a non-terminal stream that is already at EOF (e.g.
// `< /dev/null` in CI). Uses poll() so an open-but-empty pipe — a harness
// that will send answers after seeing the first prompt — is never blocked
// on and stays interactive.
bool StdinEmptyNonTty() {
  if (isatty(STDIN_FILENO)) return false;
  struct pollfd pfd = {STDIN_FILENO, POLLIN, 0};
  if (poll(&pfd, 1, 0) <= 0) return false;  // no data yet: stay interactive
  return std::cin.peek() == std::char_traits<char>::eof();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace jim;
  Args args = ParseArgs(argc, argv);
  if (!args.auto_user && !args.compare && StdinEmptyNonTty()) {
    // No console attached and nothing piped in (CI, `< /dev/null`): fall
    // back to the simulated user so the default scenario still runs
    // end-to-end. Piped answers still drive the interactive loop.
    std::cout << "(stdin is not a terminal and is empty — switching to "
                 "--auto)\n";
    args.auto_user = true;
  }

  auto instance = workload::Figure1StorePtr();
  auto goal_or = core::JoinPredicate::Parse(instance->schema(), args.goal);
  if (!goal_or.ok()) {
    std::cerr << "bad --goal: " << goal_or.status().ToString() << "\n";
    return 2;
  }
  const core::JoinPredicate goal = *std::move(goal_or);

  if (args.compare) {
    // Figure 4 in miniature: run the same inference under all four
    // interaction types and chart the interaction counts.
    std::vector<std::pair<std::string, size_t>> chart;
    for (int mode = 1; mode <= 4; ++mode) {
      auto strategy = core::MakeStrategy(args.strategy, /*seed=*/13).value();
      core::ExactOracle oracle(goal);
      core::SessionOptions options;
      options.mode = static_cast<core::InteractionMode>(mode);
      options.user_seed = 29;
      const core::SessionResult result =
          core::RunSession(instance, goal, *strategy, oracle, options);
      chart.emplace_back(
          std::string(core::InteractionModeToString(options.mode)),
          result.interactions);
    }
    std::cout << "Interactions to infer \"" << goal.ToString()
              << "\" under each interaction type (paper Figure 4):\n\n"
              << ui::RenderSavingsChart(chart);
    return 0;
  }

  CountingStreambuf counting_buf(std::cin.rdbuf());
  std::istream counted_in(&counting_buf);
  auto run_demo = [&](bool auto_user) {
    ui::DemoOptions options;
    options.mode = static_cast<core::InteractionMode>(args.mode);
    options.strategy = args.strategy;
    if (auto_user) {
      options.auto_oracle = std::make_unique<core::ExactOracle>(goal);
    }
    return ui::RunConsoleDemo(instance, std::move(options), counted_in,
                              std::cout);
  };
  auto result = run_demo(args.auto_user);
  if (!result.ok() && !args.auto_user && !isatty(STDIN_FILENO) &&
      result.status().message() == ui::kInputEndedMessage &&
      counting_buf.consumed() == 0) {
    // (On a terminal, EOF is a deliberate Ctrl-D abort and stays an error.)
    // stdin hit EOF without a single answer character consumed: an empty (or
    // whitespace-only) pipe whose writer closed after the StdinEmptyNonTty
    // poll. Fall back to the simulated user deterministically instead of
    // failing on a scheduling race. Truncated scripted input (some answers
    // consumed, then EOF) and a deliberate "q" quit still fail so broken
    // scripts stay detectable.
    std::cout << "(stdin was empty — rerunning with the simulated user)\n";
    result = run_demo(true);
  }
  if (!result.ok()) {
    std::cerr << result.status().ToString() << "\n";
    return 1;
  }
  const bool reached = core::InstanceEquivalent(*instance, *result, goal);
  std::cout << "goal reached: " << (reached ? "yes" : "no") << "\n";
  // Nonzero on a missed goal so the example_smoke_* CTest entry catches
  // inference regressions, not just crashes (mirrors jim_cli's demo).
  return reached ? 0 : 1;
}
