// The full demonstration scenario on the travel-agency example: all four
// interaction types of the paper's Figure 3, with either a human at the
// console or a simulated user (--auto).
//
// Usage:
//   ./travel_packages                         # interactive, mode 4
//   ./travel_packages --mode=2                # gray-out mode, you label rows
//   ./travel_packages --auto                  # simulated user infers Q2
//   ./travel_packages --auto --goal="To=City" --strategy=local-bottom-up
//   ./travel_packages --auto --compare        # Figure 4: all modes compared
//
// In interactive modes answer with "+", "-", "<row> +", "t" (table),
// "p" (progress), "q" (quit).

#include <cstring>
#include <iostream>
#include <memory>
#include <string>

#include "core/jim.h"
#include "ui/console_ui.h"
#include "ui/demo_runner.h"
#include "workload/travel.h"

namespace {

struct Args {
  int mode = 4;
  std::string strategy = "lookahead-entropy";
  std::string goal = jim::workload::kQ2;
  bool auto_user = false;
  bool compare = false;
};

Args ParseArgs(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--mode=", 0) == 0) {
      args.mode = std::stoi(arg.substr(7));
    } else if (arg.rfind("--strategy=", 0) == 0) {
      args.strategy = arg.substr(11);
    } else if (arg.rfind("--goal=", 0) == 0) {
      args.goal = arg.substr(7);
    } else if (arg == "--auto") {
      args.auto_user = true;
    } else if (arg == "--compare") {
      args.compare = true;
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      std::exit(2);
    }
  }
  return args;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace jim;
  const Args args = ParseArgs(argc, argv);

  auto instance = workload::Figure1InstancePtr();
  auto goal_or = core::JoinPredicate::Parse(instance->schema(), args.goal);
  if (!goal_or.ok()) {
    std::cerr << "bad --goal: " << goal_or.status().ToString() << "\n";
    return 2;
  }
  const core::JoinPredicate goal = *std::move(goal_or);

  if (args.compare) {
    // Figure 4 in miniature: run the same inference under all four
    // interaction types and chart the interaction counts.
    std::vector<std::pair<std::string, size_t>> chart;
    for (int mode = 1; mode <= 4; ++mode) {
      auto strategy = core::MakeStrategy(args.strategy, /*seed=*/13).value();
      core::ExactOracle oracle(goal);
      core::SessionOptions options;
      options.mode = static_cast<core::InteractionMode>(mode);
      options.user_seed = 29;
      const core::SessionResult result =
          core::RunSession(instance, goal, *strategy, oracle, options);
      chart.emplace_back(
          std::string(core::InteractionModeToString(options.mode)),
          result.interactions);
    }
    std::cout << "Interactions to infer \"" << goal.ToString()
              << "\" under each interaction type (paper Figure 4):\n\n"
              << ui::RenderSavingsChart(chart);
    return 0;
  }

  ui::DemoOptions options;
  options.mode = static_cast<core::InteractionMode>(args.mode);
  options.strategy = args.strategy;
  if (args.auto_user) {
    options.auto_oracle = std::make_unique<core::ExactOracle>(goal);
  }
  auto result = ui::RunConsoleDemo(instance, std::move(options), std::cin,
                                   std::cout);
  if (!result.ok()) {
    std::cerr << result.status().ToString() << "\n";
    return 1;
  }
  std::cout << "goal reached: "
            << (core::InstanceEquivalent(*instance, *result, goal) ? "yes"
                                                                   : "no")
            << "\n";
  return 0;
}
