// "Joining sets of pictures" (paper §3, Figure 5): JIM infers joins between
// tagged pictures — the 81 cards of the game Set — from yes/no answers about
// pairs of cards.
//
// Usage:
//   ./setgame_pictures                 # infer "same color and same shading"
//   ./setgame_pictures --all-goals     # all 15 feature-match joins
//   ./setgame_pictures --pairs=2000    # run on a sampled pair instance

#include <iostream>
#include <string>

#include "core/jim.h"
#include "ui/console_ui.h"
#include "util/rng.h"
#include "util/table_printer.h"
#include "workload/setgame.h"

int main(int argc, char** argv) {
  using namespace jim;

  size_t pairs = 0;  // 0 = the full 81×81 instance
  bool all_goals = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--pairs=", 0) == 0) {
      pairs = static_cast<size_t>(std::stoul(arg.substr(8)));
    } else if (arg == "--all-goals") {
      all_goals = true;
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return 2;
    }
  }

  util::Rng rng(2014);
  auto store = workload::SetPairStore(pairs, rng);
  std::cout << "candidate pairs of pictures: " << store->num_tuples()
            << " (over " << store->num_attributes()
            << " tag attributes)\n\n";

  if (!all_goals) {
    // The demo's example: "select the pairs of pictures having the same
    // color and the same shading".
    const core::JoinPredicate goal =
        workload::SameColorAndShadingGoal(store->schema());
    core::ExactOracle user(goal);
    core::InferenceEngine engine(store);
    auto strategy = core::MakeStrategy("lookahead-entropy").value();

    size_t round = 0;
    while (!engine.IsDone()) {
      const size_t cls = strategy->PickClass(engine);
      const size_t tuple = engine.tuple_class(cls).tuple_indices[0];
      const core::Label answer = user.LabelFor(store->DecodeTuple(tuple));
      std::cout << "Q" << ++round << ": do these two cards join?\n      "
                << ui::RenderTuple(*store, tuple) << "\n      user: "
                << core::LabelToString(answer) << "\n";
      (void)engine.SubmitClassLabel(cls, answer);
    }
    std::cout << "\ninferred: " << engine.Result().ToString() << "\n"
              << "questions asked: " << round << " out of "
              << store->num_tuples() << " candidate pairs ("
              << 100.0 * static_cast<double>(round) /
                     static_cast<double>(store->num_tuples())
              << "%)\n";
    return 0;
  }

  // All 15 "same features" goals.
  util::TablePrinter table({"goal", "constraints", "questions", "identified"});
  table.SetAlignments({util::Align::kLeft, util::Align::kRight,
                       util::Align::kRight, util::Align::kLeft});
  for (const auto& goal : workload::AllFeatureMatchGoals(store->schema())) {
    auto strategy = core::MakeStrategy("lookahead-entropy").value();
    const core::SessionResult result =
        core::RunSession(store, goal.predicate, *strategy);
    table.AddRow({goal.name, std::to_string(goal.predicate.NumConstraints()),
                  std::to_string(result.interactions),
                  result.identified_goal ? "yes" : "NO"});
  }
  std::cout << table.ToString();
  return 0;
}
