// Quickstart: infer the paper's Q2 on the Figure 1 flight&hotel instance.
//
// Demonstrates the core public API end to end:
//   1. build an instance (the exact table from the paper),
//   2. create an InferenceEngine and a Strategy,
//   3. answer the membership questions JIM asks (here: an ExactOracle
//      standing in for the user, as in the authors' own experiments),
//   4. read off the inferred join predicate.
//
// Run:  ./quickstart

#include <cstdio>
#include <iostream>

#include "core/jim.h"
#include "ui/console_ui.h"
#include "workload/travel.h"

int main() {
  using namespace jim;

  // (1) The instance: 12 denormalized flight&hotel tuples (paper Figure 1).
  std::shared_ptr<const rel::Relation> instance =
      workload::Figure1InstancePtr();
  std::cout << "The instance (paper Figure 1):\n"
            << instance->ToString() << "\n";

  // The user has Q2 in mind: packages where the hotel is in the flight's
  // destination city AND the hotel's discount matches the airline.
  core::JoinPredicate goal =
      core::JoinPredicate::Parse(instance->schema(), workload::kQ2).value();
  std::cout << "Goal the (simulated) user has in mind: " << goal.ToString()
            << "\n\n";

  // (2) Engine + strategy. The engine consumes the instance through the
  // TupleStore seam: the wrap dictionary-encodes every cell once, and class
  // construction runs on integer codes.
  core::InferenceEngine engine(core::MakeRelationStore(instance));
  auto strategy = core::MakeStrategy("lookahead-entropy").value();

  // (3) The interactive loop of the paper's Figure 2.
  core::ExactOracle user(goal);
  size_t round = 0;
  while (!engine.IsDone()) {
    const size_t cls = strategy->PickClass(engine);
    const size_t tuple = engine.tuple_class(cls).tuple_indices[0];
    const core::Label answer = user.LabelFor(instance->row(tuple));

    std::cout << "Q" << ++round << ": is tuple (" << tuple + 1 << ") ["
              << ui::RenderTuple(*instance, tuple)
              << "] part of the join result?  user: "
              << core::LabelToString(answer) << "\n";
    const util::Status status = engine.SubmitClassLabel(cls, answer);
    if (!status.ok()) {
      std::cerr << "label rejected: " << status.ToString() << "\n";
      return 1;
    }
    std::cout << "    " << ui::RenderProgress(engine) << "\n";
  }

  // (4) The result.
  const core::JoinPredicate inferred = engine.Result();
  std::cout << "\nJIM inferred: " << inferred.ToString() << "\n"
            << "As SQL:       SELECT * FROM FlightHotel WHERE "
            << inferred.ToSqlWhere() << ";\n"
            << "Identified the goal (up to instance-equivalence): "
            << (core::InstanceEquivalent(*instance, inferred, goal) ? "yes"
                                                                    : "no")
            << "\n"
            << "Interactions used: " << round << " of "
            << instance->num_rows() << " tuples\n";
  return 0;
}
