#!/usr/bin/env bash
# Tier-1 verify (must match ROADMAP.md): configure, build, run the full
# GoogleTest suite. Exits non-zero on the first failure.
set -euxo pipefail
cd "$(dirname "$0")"

cmake -B build -S .
cmake --build build -j
cd build && ctest --output-on-failure -j"$(nproc)"
