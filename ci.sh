#!/usr/bin/env bash
# Tier-1 verify (must match ROADMAP.md): configure, build, run the full
# GoogleTest suite. Exits non-zero on the first failure.
#
# A second stage rebuilds the parallel execution subsystem under
# ThreadSanitizer (-DJIM_SANITIZE=thread) and runs the exec unit tests plus
# the determinism/COW parity suites under it — the suites that actually
# exercise cross-thread interleavings. Set JIM_SKIP_TSAN=1 to skip the
# stage (e.g. on a toolchain without libtsan).
#
# A third stage rebuilds under AddressSanitizer (-DJIM_SANITIZE=address) and
# runs the columnar storage/ingest suites — dictionary encoding, the
# TupleStore implementations, the factorized universal table, the
# encoded-vs-legacy parity tests, and the persistent-storage suites (JIMC
# write/map round trips, the corruption matrix, sharded composition) — the
# code that does the pointer-heavy code matrix, row-id, and mmap-parsing
# work. Set JIM_SKIP_ASAN=1 to skip.
set -euxo pipefail
cd "$(dirname "$0")"

cmake -B build -S .
cmake --build build -j
(cd build && ctest --output-on-failure -j"$(nproc)")

# Persistent-storage round-trip smoke: save an instance from CSV, reopen it
# from the JIMC file, and demand byte-identical session transcripts (the
# save/load notes go to stderr, so stdout must diff clean).
smokedir="$(mktemp -d)"
trap 'rm -rf "$smokedir"' EXIT
cat > "$smokedir/flights.csv" <<'EOF'
From,To,Airline,City,Discount
Paris,Lille,AF,Lille,AF
Paris,Lyon,AF,Lyon,AF
Lyon,Paris,WF,Paris,WF
Lille,Nice,WF,Nice,AF
Nice,Paris,AF,Nice,WF
EOF
./build/jim_cli infer "$smokedir/flights.csv" --auto \
  --goal="To=City && Airline=Discount" \
  --save-instance="$smokedir/flights.jimc" > "$smokedir/saved.txt"
./build/jim_cli infer --load-instance="$smokedir/flights.jimc" --auto \
  --goal="To=City && Airline=Discount" > "$smokedir/loaded.txt"
diff "$smokedir/saved.txt" "$smokedir/loaded.txt"

if [[ "${JIM_SKIP_TSAN:-0}" != "1" ]]; then
  cmake -B build-tsan -S . \
    -DJIM_SANITIZE=thread -DJIM_BUILD_BENCHES=OFF -DJIM_BUILD_EXAMPLES=OFF
  cmake --build build-tsan -j --target \
    exec_thread_pool_test exec_scratch_pool_test exec_batch_runner_test \
    core_parallel_parity_test core_engine_cow_test core_encoded_parity_test \
    relational_dictionary_test core_tuple_store_test \
    storage_sharded_store_test query_query_test
  (cd build-tsan && \
    TSAN_OPTIONS="suppressions=$(pwd)/../tsan.supp ${TSAN_OPTIONS:-}" \
    ctest --output-on-failure -j"$(nproc)" \
    -R 'ThreadPool|ScratchPool|BatchSessionRunner|ParallelParity|EngineCow|EncodedParity|ParallelEncode|ParallelIngest|ParallelScan|UniversalTable|Catalog')
fi

if [[ "${JIM_SKIP_ASAN:-0}" != "1" ]]; then
  cmake -B build-asan -S . \
    -DJIM_SANITIZE=address -DJIM_BUILD_BENCHES=OFF -DJIM_BUILD_EXAMPLES=OFF
  cmake --build build-asan -j --target \
    relational_dictionary_test core_tuple_store_test \
    query_factorized_parity_test core_encoded_parity_test query_query_test \
    core_engine_cow_test storage_jimc_format_test storage_sharded_store_test \
    storage_mapped_parity_test storage_snapshot_test
  (cd build-asan && ctest --output-on-failure -j"$(nproc)" \
    -R 'Dictionary|EncodeColumn|EncodedRelation|TupleStore|FactorizedParity|EncodedParity|UniversalTable|EngineCow|Jimc|MappedParity|Snapshot|ParallelEncode')
fi
