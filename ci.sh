#!/usr/bin/env bash
# Tier-1 verify (must match ROADMAP.md): configure, build, run the full
# GoogleTest suite. Exits non-zero on the first failure.
#
# After tier-1, the correctness-tooling stages:
#   - determinism lint   tools/lint_determinism.py over src/ (hash-order
#                        iteration, pointer keys, wall clocks, guard drift)
#   - round-trip smoke   jim_cli save → load must transcript-diff clean
#   - OBS stage          observability determinism: parity suites re-run
#                        with JIM_METRICS=1, CLI transcripts diffed with
#                        metrics + tracing on vs off, and the emitted
#                        snapshot checked for engine/exec/storage metrics
#   - TSAN stage         parallel exec + parity suites plus the concurrent
#                        metrics-registry test under -DJIM_SANITIZE=thread,
#                        plus a guard that every tsan.supp suppression still
#                        matches a symbol the instrumented binaries
#                        actually reference
#   - ASAN stage         columnar storage/ingest suites plus the cutoff
#                        parity + trail-undo suite under address
#   - UBSAN stage        integer-kernel + storage suites AND the
#                        deterministic fuzz driver (5000 mutated JIMC
#                        images / goal strings) under address+undefined
#                        with every finding fatal (-fno-sanitize-recover)
#   - CRASH stage        fault-injection + crash-recovery suites under
#                        address sanitizer: every syscall index during
#                        WriteStore/SaveCatalog crashed and replayed,
#                        old-XOR-new proven on each reopened image
#   - SERVE stage        the serving daemon under address sanitizer:
#                        protocol/session-manager suites, the checkpoint
#                        crash-point enumeration, the 64-session TCP e2e
#                        with kill+restart transcript diffing, plus the
#                        trusted-reopen and JSON-reader suites, and a
#                        jim_cli serve --stdio smoke against the round-trip
#                        instance
#   - audit stage        -DJIM_AUDIT_INVARIANTS=ON build running the parity
#                        suites with every engine mutation re-deriving its
#                        CheckInvariants contract
#   - clang-tidy stage   advisory, opt-in via JIM_RUN_CLANG_TIDY=1
#
# Sanitizer stages probe the toolchain first (compile-and-link of a trivial
# program under the flag) and auto-skip with a loud warning when the
# runtime is missing — JIM_SKIP_TSAN/ASAN/UBSAN/CRASH/AUDIT=1 still
# force-skip.
set -euxo pipefail
cd "$(dirname "$0")"

CXX_BIN="${CXX:-c++}"

# True iff the toolchain can build AND link under the given -fsanitize flag
# (catches both an unsupported flag and a missing libtsan/libasan/libubsan).
sanitizer_available() {
  local flag="$1" probe
  probe="$(mktemp /tmp/jim_san_probe.XXXXXX)"
  if echo 'int main(){return 0;}' | \
      "$CXX_BIN" -fsanitize="$flag" -x c++ - -o "$probe" >/dev/null 2>&1; then
    rm -f "$probe"
    return 0
  fi
  rm -f "$probe"
  return 1
}

warn_skip() {
  echo "WARNING: $1 — skipping the $2 stage" >&2
}

# --- tier-1: full build + full suite -------------------------------------
cmake -B build -S .
cmake --build build -j
(cd build && ctest --output-on-failure -j"$(nproc)")

# --- determinism lint ----------------------------------------------------
python3 tools/lint_determinism.py

# --- persistent-storage round-trip smoke ---------------------------------
# Save an instance from CSV, reopen it from the JIMC file, and demand
# byte-identical session transcripts (the save/load notes go to stderr, so
# stdout must diff clean).
smokedir="$(mktemp -d)"
trap 'rm -rf "$smokedir"' EXIT
cat > "$smokedir/flights.csv" <<'EOF'
From,To,Airline,City,Discount
Paris,Lille,AF,Lille,AF
Paris,Lyon,AF,Lyon,AF
Lyon,Paris,WF,Paris,WF
Lille,Nice,WF,Nice,AF
Nice,Paris,AF,Nice,WF
EOF
./build/jim_cli infer "$smokedir/flights.csv" --auto \
  --goal="To=City && Airline=Discount" \
  --save-instance="$smokedir/flights.jimc" > "$smokedir/saved.txt"
./build/jim_cli infer --load-instance="$smokedir/flights.jimc" --auto \
  --goal="To=City && Airline=Discount" > "$smokedir/loaded.txt"
diff "$smokedir/saved.txt" "$smokedir/loaded.txt"

# --- OBS stage (observability determinism) -------------------------------
# The contract src/obs/ ships under: metrics and tracing observe a session,
# they never steer it. Three proofs, all against the tier-1 build:
#   1. the parity suites pass again with the metrics registry hot
#      (JIM_METRICS=1) — transcripts still bitwise-identical at 1/2/8
#      threads;
#   2. a jim_cli run with --metrics-out and --trace produces stdout
#      byte-identical to the plain run (all observability output goes to
#      stderr or the snapshot file);
#   3. the emitted snapshot actually contains engine, exec, and storage
#      metrics for a --load-instance session — instrumentation that
#      silently stops recording is a failure, not a quiet degrade.
if [[ "${JIM_SKIP_OBS:-0}" == "1" ]]; then
  warn_skip "JIM_SKIP_OBS=1" "OBS"
else
  (cd build && JIM_METRICS=1 ctest --output-on-failure -j"$(nproc)" \
    -R 'ParallelParity|CutoffParity|EncodedParity|IncrementalParity|MappedParity|KernelParity|FactorizedParity')
  ./build/jim_cli infer --load-instance="$smokedir/flights.jimc" --auto \
    --goal="To=City && Airline=Discount" \
    --metrics-out="$smokedir/metrics.json" --trace \
    > "$smokedir/observed.txt" 2> "$smokedir/observed.err"
  diff "$smokedir/loaded.txt" "$smokedir/observed.txt"
  # The family prefixes, plus the two counters the cutoff/watch rework
  # added: a lookahead session must record skipped candidates and woken
  # classes, or the pruning instrumentation went silent.
  for prefix in '"engine.' '"exec.' '"storage.' \
      '"engine.cutoff_skips' '"engine.watch_wakes'; do
    if ! grep -qF "$prefix" "$smokedir/metrics.json"; then
      echo "ERROR: metrics snapshot is missing ${prefix}* metrics —" \
        "instrumentation went silent" >&2
      exit 1
    fi
  done
  grep -qF '"steps"' "$smokedir/observed.err"
fi

# --- TSAN stage ----------------------------------------------------------
if [[ "${JIM_SKIP_TSAN:-0}" == "1" ]]; then
  warn_skip "JIM_SKIP_TSAN=1" "TSAN"
elif ! sanitizer_available thread; then
  warn_skip "toolchain cannot link -fsanitize=thread (libtsan missing?)" \
    "TSAN"
else
  cmake -B build-tsan -S . -DJIM_SANITIZE=thread -DJIM_WERROR=ON \
    -DJIM_BUILD_BENCHES=OFF -DJIM_BUILD_EXAMPLES=OFF
  cmake --build build-tsan -j --target \
    exec_thread_pool_test exec_scratch_pool_test exec_batch_runner_test \
    core_parallel_parity_test core_cutoff_parity_test core_engine_cow_test \
    core_encoded_parity_test relational_dictionary_test \
    core_tuple_store_test storage_sharded_store_test query_query_test \
    obs_metrics_test
  # Stale-suppression guard: every race: pattern in tsan.supp must still
  # match a symbol some instrumented test binary references (nm -C), or the
  # suppression is dead weight hiding future real races — remove it.
  nm -C build-tsan/exec_thread_pool_test build-tsan/exec_batch_runner_test \
    > "$smokedir/tsan_symbols.txt" 2>/dev/null
  grep -v '^\s*#' tsan.supp | grep -oE '^race:.*' | sed 's/^race://' | \
  while IFS= read -r pattern; do
    if ! grep -qF "$pattern" "$smokedir/tsan_symbols.txt"; then
      echo "ERROR: tsan.supp suppression '$pattern' matches no symbol in" \
        "the instrumented binaries — stale suppression, remove it" >&2
      exit 1
    fi
  done
  (cd build-tsan && \
    TSAN_OPTIONS="suppressions=$(pwd)/../tsan.supp ${TSAN_OPTIONS:-}" \
    ctest --output-on-failure -j"$(nproc)" \
    -R 'ThreadPool|ScratchPool|BatchSessionRunner|ParallelParity|CutoffParity|EngineCow|EncodedParity|ParallelEncode|ParallelIngest|ParallelScan|UniversalTable|Catalog|MetricsTest')
fi

# --- ASAN stage ----------------------------------------------------------
if [[ "${JIM_SKIP_ASAN:-0}" == "1" ]]; then
  warn_skip "JIM_SKIP_ASAN=1" "ASAN"
elif ! sanitizer_available address; then
  warn_skip "toolchain cannot link -fsanitize=address (libasan missing?)" \
    "ASAN"
else
  cmake -B build-asan -S . -DJIM_SANITIZE=address -DJIM_WERROR=ON \
    -DJIM_BUILD_BENCHES=OFF -DJIM_BUILD_EXAMPLES=OFF
  cmake --build build-asan -j --target \
    relational_dictionary_test core_tuple_store_test \
    query_factorized_parity_test core_encoded_parity_test query_query_test \
    core_engine_cow_test core_cutoff_parity_test storage_jimc_format_test \
    storage_sharded_store_test storage_mapped_parity_test \
    storage_snapshot_test
  (cd build-asan && ctest --output-on-failure -j"$(nproc)" \
    -R 'Dictionary|EncodeColumn|EncodedRelation|TupleStore|FactorizedParity|EncodedParity|CutoffParity|UniversalTable|EngineCow|Jimc|MappedParity|Snapshot|ParallelEncode')
fi

# --- UBSAN stage (address+undefined, findings fatal) ---------------------
if [[ "${JIM_SKIP_UBSAN:-0}" == "1" ]]; then
  warn_skip "JIM_SKIP_UBSAN=1" "UBSAN"
elif ! sanitizer_available address,undefined; then
  warn_skip \
    "toolchain cannot link -fsanitize=address,undefined (libubsan missing?)" \
    "UBSAN"
else
  cmake -B build-ubsan -S . -DJIM_SANITIZE="address;undefined" \
    -DJIM_WERROR=ON -DJIM_BUILD_BENCHES=OFF -DJIM_BUILD_EXAMPLES=OFF
  cmake --build build-ubsan -j --target \
    lattice_partition_test lattice_antichain_test lattice_kernel_parity_test \
    lattice_enumeration_test core_tuple_store_test core_invariant_audit_test \
    relational_dictionary_test storage_jimc_format_test \
    storage_byte_reader_test storage_mapped_parity_test \
    storage_sharded_store_test storage_snapshot_test fuzz_jimc_main
  (cd build-ubsan && ctest --output-on-failure -j"$(nproc)" \
    -R 'Partition|Antichain|KernelParity|Enumeration|TupleStore|Dictionary|Jimc|ByteReader|MappedParity|Sharded|Snapshot|InvariantAudit|fuzz_jimc_smoke')
  # The deterministic fuzz driver, long run: 5000 mutated JIMC images and
  # goal strings, every outcome a typed Status, under ASAN+UBSAN with
  # findings fatal. Reproduce any failure with the printed seed.
  ./build-ubsan/fuzz_jimc_main --seed=1 --iterations=5000
fi

# --- CRASH stage (fault injection + crash recovery under ASAN) -----------
# Reuses the ASAN tree: the crash-point enumeration (every syscall index
# during WriteStore and SaveCatalog) and the torn-write replays are exactly
# where a latent out-of-bounds read in recovery code would hide.
if [[ "${JIM_SKIP_CRASH:-0}" == "1" ]]; then
  warn_skip "JIM_SKIP_CRASH=1" "CRASH"
elif ! sanitizer_available address; then
  warn_skip "toolchain cannot link -fsanitize=address (libasan missing?)" \
    "CRASH"
else
  cmake -B build-asan -S . -DJIM_SANITIZE=address -DJIM_WERROR=ON \
    -DJIM_BUILD_BENCHES=OFF -DJIM_BUILD_EXAMPLES=OFF
  cmake --build build-asan -j --target \
    storage_fault_env_test storage_crash_recovery_test
  (cd build-asan && ctest --output-on-failure -j"$(nproc)" \
    -R 'FaultEnv|PosixEnv|CrashRecovery')
fi

# --- SERVE stage (serving daemon under ASAN + stdio smoke) ---------------
# Reuses the ASAN tree: connection handlers, checkpoint recovery, and the
# session replay path juggle raw buffers across threads — exactly where a
# lifetime bug would hide. The e2e suite in here is the PR's acceptance
# driver: 64 concurrent TCP sessions, daemon killed and restarted
# mid-stream, every remaining response line diffed byte-for-byte.
if [[ "${JIM_SKIP_SERVE:-0}" == "1" ]]; then
  warn_skip "JIM_SKIP_SERVE=1" "SERVE"
elif ! sanitizer_available address; then
  warn_skip "toolchain cannot link -fsanitize=address (libasan missing?)" \
    "SERVE"
else
  cmake -B build-asan -S . -DJIM_SANITIZE=address -DJIM_WERROR=ON \
    -DJIM_BUILD_BENCHES=OFF -DJIM_BUILD_EXAMPLES=OFF
  cmake --build build-asan -j --target \
    serve_protocol_test serve_session_manager_test \
    serve_checkpoint_crash_test serve_server_e2e_test \
    util_json_reader_test storage_trusted_reopen_test
  (cd build-asan && ctest --output-on-failure -j"$(nproc)" \
    -R 'Protocol|SessionManager|Serve|JsonReader|TrustedReopen')
  # stdio smoke against the tier-1 build: one piped daemon run must answer
  # ping/stats and exit cleanly on the shutdown verb.
  printf '%s\n' '{"verb":"ping"}' '{"verb":"stats"}' '{"verb":"shutdown"}' | \
    ./build/jim_cli serve --stdio \
      --load-instance="$smokedir/flights.jimc" \
      > "$smokedir/serve_stdio.txt" 2> "$smokedir/serve_stdio.err"
  grep -qF '"verb":"ping"' "$smokedir/serve_stdio.txt"
  grep -qF '"live":0' "$smokedir/serve_stdio.txt"
  grep -qF '"verb":"shutdown"' "$smokedir/serve_stdio.txt"
fi

# --- invariant-audit stage -----------------------------------------------
if [[ "${JIM_SKIP_AUDIT:-0}" == "1" ]]; then
  warn_skip "JIM_SKIP_AUDIT=1" "audit"
else
  cmake -B build-audit -S . -DJIM_AUDIT_INVARIANTS=ON -DJIM_WERROR=ON \
    -DJIM_BUILD_BENCHES=OFF -DJIM_BUILD_EXAMPLES=OFF
  cmake --build build-audit -j --target \
    core_invariant_audit_test core_parallel_parity_test \
    core_cutoff_parity_test core_encoded_parity_test \
    core_incremental_parity_test lattice_kernel_parity_test \
    query_factorized_parity_test storage_mapped_parity_test \
    core_engine_cow_test
  (cd build-audit && JIM_AUDIT_INVARIANTS=1 \
    ctest --output-on-failure -j"$(nproc)" \
    -R 'Parity|InvariantAudit|EngineCow')
fi

# --- clang-tidy stage (advisory, opt-in) ---------------------------------
if [[ "${JIM_RUN_CLANG_TIDY:-0}" == "1" ]]; then
  if ! command -v clang-tidy >/dev/null 2>&1; then
    warn_skip "clang-tidy not installed" "clang-tidy"
  else
    # Advisory: report, don't gate — the curated .clang-tidy check set is
    # the contract, and new findings land as review feedback, not breakage.
    git ls-files 'src/*.cc' | \
      xargs clang-tidy -p build --quiet || \
      echo "WARNING: clang-tidy reported findings (advisory stage)" >&2
  fi
fi

echo "ci.sh: all stages passed"
