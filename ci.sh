#!/usr/bin/env bash
# Tier-1 verify (must match ROADMAP.md): configure, build, run the full
# GoogleTest suite. Exits non-zero on the first failure.
#
# A second stage rebuilds the parallel execution subsystem under
# ThreadSanitizer (-DJIM_SANITIZE=thread) and runs the exec unit tests plus
# the determinism/COW parity suites under it — the suites that actually
# exercise cross-thread interleavings. Set JIM_SKIP_TSAN=1 to skip the
# stage (e.g. on a toolchain without libtsan).
set -euxo pipefail
cd "$(dirname "$0")"

cmake -B build -S .
cmake --build build -j
(cd build && ctest --output-on-failure -j"$(nproc)")

if [[ "${JIM_SKIP_TSAN:-0}" != "1" ]]; then
  cmake -B build-tsan -S . \
    -DJIM_SANITIZE=thread -DJIM_BUILD_BENCHES=OFF -DJIM_BUILD_EXAMPLES=OFF
  cmake --build build-tsan -j --target \
    exec_thread_pool_test exec_scratch_pool_test exec_batch_runner_test \
    core_parallel_parity_test core_engine_cow_test
  (cd build-tsan && ctest --output-on-failure -j"$(nproc)" \
    -R 'ThreadPool|ScratchPool|BatchSessionRunner|ParallelParity|EngineCow')
fi
