#include "query/universal_table.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "util/hash.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace jim::query {

namespace {

/// One source occurrence of the factorized table: the shared relation, its
/// dictionary-encoded columns, the translation of those column-local codes
/// into the table's shared dictionary, and the mixed-radix geometry.
/// Per column: local dictionary code → shared dictionary code.
using CodeTranslation = std::vector<std::vector<uint32_t>>;

struct Occurrence {
  std::shared_ptr<const rel::Relation> relation;
  std::shared_ptr<const rel::EncodedRelation> encoded;
  /// First attribute of this occurrence in the universal schema.
  size_t attr_offset = 0;
  /// Shared across occurrences of one relation when safe (see the NaN
  /// caveat in Build); never null after Build.
  std::shared_ptr<const CodeTranslation> shared_codes;
  /// Dense mode only: source rows surviving candidate dedup, ascending
  /// (null = every row), shared across occurrences of one relation. See
  /// RepresentationKeptRows.
  std::shared_ptr<const std::vector<uint32_t>> kept_rows;
  /// Dense mode: digit cardinality and row-major mixed-radix stride.
  size_t size = 0;
  size_t stride = 1;
};

/// The TupleStore behind a UniversalTable. Two shapes:
///  - dense (the product fit the cap): a candidate tuple IS its mixed-radix
///    id over the occurrences' kept rows — nothing per-tuple is stored;
///  - sampled: an explicit num_tuples × k matrix of source-row draws.
class FactorizedTupleStore final : public core::TupleStore {
 public:
  FactorizedTupleStore(rel::Schema schema, std::vector<Occurrence> occurrences,
                       size_t num_tuples, bool dense,
                       std::vector<uint32_t> row_ids)
      : schema_(std::move(schema)),
        occurrences_(std::move(occurrences)),
        num_tuples_(num_tuples),
        dense_(dense),
        row_ids_(std::move(row_ids)) {
    attr_source_.reserve(schema_.num_attributes());
    for (size_t i = 0; i < occurrences_.size(); ++i) {
      const size_t columns = occurrences_[i].relation->num_attributes();
      for (size_t c = 0; c < columns; ++c) attr_source_.emplace_back(i, c);
    }
    JIM_CHECK_EQ(attr_source_.size(), schema_.num_attributes());
  }

  const std::string& name() const override { return name_; }
  const rel::Schema& schema() const override { return schema_; }
  size_t num_tuples() const override { return num_tuples_; }

  /// Source row (into the occurrence's relation) backing tuple `t`.
  size_t SourceRow(size_t t, size_t occurrence) const {
    if (!dense_) return row_ids_[t * occurrences_.size() + occurrence];
    const Occurrence& source = occurrences_[occurrence];
    const size_t digit = (t / source.stride) % source.size;
    return source.kept_rows == nullptr ? digit : (*source.kept_rows)[digit];
  }

  uint32_t code(size_t t, size_t a) const override {
    const auto& [occurrence, column] = attr_source_[a];
    const Occurrence& source = occurrences_[occurrence];
    const uint32_t local =
        source.encoded->code(SourceRow(t, occurrence), column);
    return local == rel::kNullCode ? rel::kNullCode
                                   : (*source.shared_codes)[column][local];
  }

  void TupleCodes(size_t t, uint32_t* out) const override {
    // One radix decomposition per occurrence, then a straight column walk —
    // this is the ingest inner loop of the engine's class construction.
    for (size_t i = 0; i < occurrences_.size(); ++i) {
      const Occurrence& source = occurrences_[i];
      const size_t row = SourceRow(t, i);
      uint32_t* cell = out + source.attr_offset;
      const CodeTranslation& translation = *source.shared_codes;
      const size_t columns = translation.size();
      for (size_t c = 0; c < columns; ++c) {
        const uint32_t local = source.encoded->code(row, c);
        cell[c] = local == rel::kNullCode ? rel::kNullCode
                                          : translation[c][local];
      }
    }
  }

  rel::Value DecodeValue(size_t t, size_t a) const override {
    const auto& [occurrence, column] = attr_source_[a];
    return occurrences_[occurrence]
        .relation->row(SourceRow(t, occurrence))[column];
  }

  size_t ApproxBytes() const override {
    // Only structures the store actually retains, each resident object
    // counted once (self-join occurrences alias the encoded mirror and the
    // translation); the shared dictionary used to mint the translations is
    // a Build() local and is not resident here.
    size_t bytes = row_ids_.capacity() * sizeof(uint32_t);
    std::set<const void*> counted;
    for (const Occurrence& source : occurrences_) {
      if (source.kept_rows != nullptr &&
          counted.insert(source.kept_rows.get()).second) {
        bytes += source.kept_rows->capacity() * sizeof(uint32_t);
      }
      if (counted.insert(source.encoded.get()).second) {
        bytes += source.encoded->ApproxBytes();
      }
      if (counted.insert(source.shared_codes.get()).second) {
        for (const auto& translation : *source.shared_codes) {
          bytes += translation.capacity() * sizeof(uint32_t);
        }
      }
    }
    return bytes;
  }

 private:
  std::string name_ = "universal";
  rel::Schema schema_;
  std::vector<Occurrence> occurrences_;
  size_t num_tuples_ = 0;
  bool dense_ = true;
  std::vector<uint32_t> row_ids_;
  /// Attribute → (occurrence, source column).
  std::vector<std::pair<size_t, size_t>> attr_source_;
};

/// Dense representation id per row: equal ids ⇔ equal representation keys
/// (the dedup equality of Relation::DeduplicateRows — NULLs compare equal).
std::vector<uint32_t> RepresentationIds(const rel::Relation& relation) {
  std::unordered_map<std::string, uint32_t> ids;
  std::vector<uint32_t> rep;
  rep.reserve(relation.num_rows());
  for (size_t r = 0; r < relation.num_rows(); ++r) {
    auto [it, inserted] = ids.emplace(
        rel::TupleRepresentationKey(relation.row(r)),
        static_cast<uint32_t>(ids.size()));
    rep.push_back(it->second);
  }
  return rep;
}

/// Rows surviving a first-occurrence representation-level dedup, ascending.
/// Empty when no row is dropped (the caller's "identity" encoding). The
/// product of per-source kept rows equals the dedup of the full product:
/// candidates with one representation form a product set S₀×…×S_{k−1}, whose
/// row-major-first element is the componentwise first (min S₀, …, min S_{k−1}).
std::vector<uint32_t> RepresentationKeptRows(const rel::Relation& relation) {
  const std::vector<uint32_t> rep = RepresentationIds(relation);
  std::vector<uint32_t> kept;
  kept.reserve(relation.num_rows());
  std::vector<bool> seen;
  for (size_t r = 0; r < rep.size(); ++r) {
    if (rep[r] >= seen.size()) seen.resize(rep[r] + 1, false);
    if (!seen[rep[r]]) {
      seen[rep[r]] = true;
      kept.push_back(static_cast<uint32_t>(r));
    }
  }
  if (kept.size() == relation.num_rows()) kept.clear();
  return kept;
}

struct RepTupleHash {
  size_t operator()(const std::vector<uint32_t>& rep) const {
    size_t seed = rep.size();
    for (uint32_t id : rep) util::HashCombine(seed, id);
    return seed;
  }
};

}  // namespace

util::StatusOr<UniversalTable> UniversalTable::Build(
    const rel::Catalog& catalog,
    const std::vector<std::string>& relation_names,
    const UniversalTableOptions& options) {
  if (relation_names.empty()) {
    return util::InvalidArgumentError(
        "universal table needs at least one relation");
  }
  const size_t k = relation_names.size();

  // Resolve relations (shared, plus their catalog-cached encodings) and
  // compute occurrence aliases.
  std::vector<Occurrence> occurrences(k);
  std::vector<std::string> aliases;
  for (size_t i = 0; i < k; ++i) {
    ASSIGN_OR_RETURN(occurrences[i].relation,
                     catalog.GetShared(relation_names[i]));
    ASSIGN_OR_RETURN(occurrences[i].encoded,
                     catalog.GetEncoded(relation_names[i]));
    size_t total = 0;
    size_t occurrence = 0;
    for (size_t j = 0; j < k; ++j) {
      if (relation_names[j] == relation_names[i]) {
        if (j < i) ++occurrence;
        ++total;
      }
    }
    aliases.push_back(total == 1 ? relation_names[i]
                                 : util::StrFormat("%s_%zu",
                                                   relation_names[i].c_str(),
                                                   occurrence + 1));
  }

  UniversalTable table;
  table.relation_names_ = relation_names;

  // Provenance and schema in occurrence-major order, every attribute
  // qualified by its occurrence alias — exactly the schema the historical
  // RenameRelation/Schema::Concat chain produced.
  rel::Schema schema;
  size_t attr_offset = 0;
  for (size_t i = 0; i < k; ++i) {
    const rel::Relation& relation = *occurrences[i].relation;
    occurrences[i].attr_offset = attr_offset;
    for (size_t c = 0; c < relation.num_attributes(); ++c) {
      table.provenance_.push_back(Provenance{i, relation_names[i], c});
      rel::Attribute attribute = relation.schema().attribute(c);
      attribute.qualifier = aliases[i];
      schema.AddAttribute(std::move(attribute));
    }
    attr_offset += relation.num_attributes();
  }

  // Full product size (with overflow guard).
  size_t full_size = 1;
  for (const Occurrence& source : occurrences) {
    const size_t rows = source.relation->num_rows();
    if (rows != 0 && full_size > std::numeric_limits<size_t>::max() / rows) {
      full_size = std::numeric_limits<size_t>::max();
      break;
    }
    full_size *= rows;
  }
  table.full_product_size_ = full_size;

  // Translate each occurrence's column-local dictionary codes into one
  // shared dictionary, so codes compare across every attribute of the
  // universal schema (Part(t) extraction needs exactly this).
  rel::Dictionary shared;
  std::map<const rel::EncodedRelation*,
           std::pair<std::shared_ptr<const CodeTranslation>, bool>>
      translation_cache;
  for (Occurrence& source : occurrences) {
    // Occurrences of one relation (self-joins) share the encoded mirror, so
    // translate each distinct relation only once — UNLESS it holds NaNs:
    // every NaN occurrence mints a fresh shared code (NaN ≠ NaN, like NULL),
    // so a self-join over a NaN-bearing relation must re-translate per
    // occurrence or the diagonal candidates would see equal codes where
    // Value::Equals says unequal.
    auto it = translation_cache.find(source.encoded.get());
    if (it != translation_cache.end() && !it->second.second) {
      source.shared_codes = it->second.first;
      continue;
    }
    CodeTranslation codes;
    bool has_nan = false;
    for (size_t c = 0; c < source.encoded->num_columns(); ++c) {
      const rel::Dictionary& local = source.encoded->column(c).dictionary;
      std::vector<uint32_t> translation(local.size());
      for (uint32_t code = 0; code < local.size(); ++code) {
        const rel::Value& value = local.value(code);
        has_nan = has_nan || (value.type() == rel::ValueType::kDouble &&
                              std::isnan(value.AsDouble()));
        translation[code] = shared.GetOrAdd(value);
      }
      codes.push_back(std::move(translation));
    }
    source.shared_codes =
        std::make_shared<const CodeTranslation>(std::move(codes));
    if (it == translation_cache.end()) {
      translation_cache.emplace(source.encoded.get(),
                                std::make_pair(source.shared_codes, has_nan));
    }
  }

  // Replay the historical left-to-right fold on *sizes* only to learn
  // whether any step samples (the fold samples down to the cap after each
  // step; see SampledCrossProduct).
  const size_t cap = options.sample_cap == 0
                         ? std::numeric_limits<size_t>::max()
                         : options.sample_cap;
  bool sampled = false;
  size_t fold_rows = occurrences[0].relation->num_rows();
  for (size_t i = 1; i < k; ++i) {
    const size_t next = occurrences[i].relation->num_rows();
    if (next != 0 &&
        fold_rows > std::numeric_limits<size_t>::max() / next) {
      return util::InvalidArgumentError(
          "cross product too large to enumerate; set a sample_cap");
    }
    const size_t total = fold_rows * next;
    if (total <= cap) {
      fold_rows = total;
    } else {
      sampled = true;
      fold_rows = cap;
    }
  }
  table.is_sampled_ = sampled;

  size_t num_tuples = 0;
  std::vector<uint32_t> row_ids;
  if (!sampled) {
    // Dense: candidate tuples are mixed-radix ids; dedup factorizes into a
    // per-source first-occurrence filter (see RepresentationKeptRows).
    num_tuples = 1;
    std::map<const rel::Relation*,
             std::shared_ptr<const std::vector<uint32_t>>>
        kept_cache;
    for (Occurrence& source : occurrences) {
      if (options.deduplicate) {
        // One representation-key pass per distinct relation; occurrences of
        // one relation (self-joins) share the resulting kept list.
        auto [cached, inserted] = kept_cache.try_emplace(source.relation.get());
        if (inserted) {
          std::vector<uint32_t> kept =
              RepresentationKeptRows(*source.relation);
          if (!kept.empty()) {
            cached->second = std::make_shared<const std::vector<uint32_t>>(
                std::move(kept));
          }
        }
        source.kept_rows = cached->second;
      }
      source.size = source.kept_rows == nullptr ? source.relation->num_rows()
                                                : source.kept_rows->size();
      num_tuples *= source.size;
    }
    size_t stride = 1;
    for (size_t i = k; i-- > 0;) {
      occurrences[i].stride = stride;
      stride *= occurrences[i].size;
    }
  } else {
    // Sampled: materialize the fold as row-id draws, consuming the RNG in
    // exactly the historical sequence (one SampleIndices per oversized
    // step), then dedup the drawn candidates by representation.
    util::Rng rng(options.seed);
    size_t width = 1;
    size_t rows = occurrences[0].relation->num_rows();
    row_ids.reserve(rows);
    for (size_t r = 0; r < rows; ++r) {
      row_ids.push_back(static_cast<uint32_t>(r));
    }
    for (size_t i = 1; i < k; ++i) {
      const size_t next = occurrences[i].relation->num_rows();
      const size_t total = rows * next;
      std::vector<uint32_t> folded;
      if (total <= cap) {
        folded.reserve(total * (width + 1));
        for (size_t p = 0; p < rows; ++p) {
          for (size_t r = 0; r < next; ++r) {
            folded.insert(folded.end(), row_ids.begin() + p * width,
                          row_ids.begin() + (p + 1) * width);
            folded.push_back(static_cast<uint32_t>(r));
          }
        }
        rows = total;
      } else {
        const std::vector<size_t> picks = rng.SampleIndices(total, cap);
        folded.reserve(picks.size() * (width + 1));
        for (size_t flat : picks) {
          const size_t p = flat / next;
          const size_t r = flat % next;
          folded.insert(folded.end(), row_ids.begin() + p * width,
                        row_ids.begin() + (p + 1) * width);
          folded.push_back(static_cast<uint32_t>(r));
        }
        rows = cap;
      }
      row_ids = std::move(folded);
      ++width;
    }
    JIM_CHECK_EQ(width, k);

    if (options.deduplicate) {
      // One representation-id pass per distinct relation; occurrences
      // borrow the cached vector (no copies).
      std::vector<const std::vector<uint32_t>*> rep(k);
      std::map<const rel::Relation*, std::vector<uint32_t>> rep_cache;
      for (size_t i = 0; i < k; ++i) {
        auto [cached, inserted] =
            rep_cache.try_emplace(occurrences[i].relation.get());
        if (inserted) {
          cached->second = RepresentationIds(*occurrences[i].relation);
        }
        rep[i] = &cached->second;
      }
      std::unordered_set<std::vector<uint32_t>, RepTupleHash> seen;
      seen.reserve(rows);
      std::vector<uint32_t> compacted;
      compacted.reserve(row_ids.size());
      std::vector<uint32_t> key(k);
      for (size_t t = 0; t < rows; ++t) {
        for (size_t i = 0; i < k; ++i) {
          key[i] = (*rep[i])[row_ids[t * k + i]];
        }
        if (seen.insert(key).second) {
          compacted.insert(compacted.end(), row_ids.begin() + t * k,
                           row_ids.begin() + (t + 1) * k);
        }
      }
      row_ids = std::move(compacted);
      rows = row_ids.size() / k;
    }
    num_tuples = rows;
  }

  table.store_ = std::make_shared<const FactorizedTupleStore>(
      std::move(schema), std::move(occurrences), num_tuples, !sampled,
      std::move(row_ids));
  JIM_CHECK_EQ(table.store_->num_attributes(), table.provenance_.size());
  return table;
}

rel::Relation UniversalTable::Materialize() const {
  rel::Relation relation{"universal", store_->schema()};
  relation.Reserve(store_->num_tuples());
  for (size_t t = 0; t < store_->num_tuples(); ++t) {
    relation.AddRowUnchecked(store_->DecodeTuple(t));
  }
  return relation;
}

JoinQuery UniversalTable::ToJoinQuery(
    const core::JoinPredicate& predicate) const {
  JIM_CHECK_EQ(predicate.num_attributes(), provenance_.size());
  JoinQuery query(relation_names_);
  for (const auto& [i, j] : predicate.partition().GeneratorPairs()) {
    const Provenance& a = provenance_[i];
    const Provenance& b = provenance_[j];
    query.AddEquality(
        QualifiedColumn{a.relation_occurrence, a.column_index},
        QualifiedColumn{b.relation_occurrence, b.column_index});
  }
  return query;
}

}  // namespace jim::query
