#include "query/universal_table.h"

#include <algorithm>
#include <limits>

#include "relational/join.h"
#include "relational/operators.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace jim::query {

util::StatusOr<UniversalTable> UniversalTable::Build(
    const rel::Catalog& catalog,
    const std::vector<std::string>& relation_names,
    const UniversalTableOptions& options) {
  if (relation_names.empty()) {
    return util::InvalidArgumentError(
        "universal table needs at least one relation");
  }

  // Resolve relations and compute occurrence aliases.
  std::vector<const rel::Relation*> resolved;
  std::vector<std::string> aliases;
  for (size_t i = 0; i < relation_names.size(); ++i) {
    ASSIGN_OR_RETURN(const rel::Relation* relation,
                     catalog.Get(relation_names[i]));
    resolved.push_back(relation);
    size_t total = 0;
    size_t occurrence = 0;
    for (size_t j = 0; j < relation_names.size(); ++j) {
      if (relation_names[j] == relation_names[i]) {
        if (j < i) ++occurrence;
        ++total;
      }
    }
    aliases.push_back(total == 1 ? relation_names[i]
                                 : util::StrFormat("%s_%zu",
                                                   relation_names[i].c_str(),
                                                   occurrence + 1));
  }

  UniversalTable table;
  table.relation_names_ = relation_names;

  // Provenance, in schema order.
  for (size_t i = 0; i < resolved.size(); ++i) {
    for (size_t c = 0; c < resolved[i]->num_attributes(); ++c) {
      table.provenance_.push_back(
          Provenance{i, relation_names[i], c});
    }
  }

  // Full product size (with overflow guard).
  size_t full_size = 1;
  for (const rel::Relation* relation : resolved) {
    if (relation->num_rows() != 0 &&
        full_size > std::numeric_limits<size_t>::max() / relation->num_rows()) {
      full_size = std::numeric_limits<size_t>::max();
      break;
    }
    full_size *= relation->num_rows();
  }
  table.full_product_size_ = full_size;

  util::Rng rng(options.seed);
  const size_t cap = options.sample_cap == 0
                         ? std::numeric_limits<size_t>::max()
                         : options.sample_cap;

  // Fold the product left to right. To honor the cap without materializing
  // the full product, sample down after each step: a uniform sample of
  // (sample of A×B) × C is not exactly a uniform sample of A×B×C, but every
  // row is a genuine candidate tuple, which is all inference needs (the
  // sample only determines which membership questions *can* be asked).
  rel::Relation product =
      rel::RenameRelation(*resolved[0], aliases[0]);
  for (size_t i = 1; i < resolved.size(); ++i) {
    const rel::Relation next = rel::RenameRelation(*resolved[i], aliases[i]);
    ASSIGN_OR_RETURN(
        product,
        rel::SampledCrossProduct(product, next, cap, rng,
                                 rel::JoinOptions::Named("universal")));
  }
  table.is_sampled_ = product.num_rows() < full_size;

  if (options.deduplicate) {
    product.DeduplicateRows();
  }
  product.set_name("universal");
  table.relation_ =
      std::make_shared<const rel::Relation>(std::move(product));

  JIM_CHECK_EQ(table.relation_->num_attributes(), table.provenance_.size());
  return table;
}

JoinQuery UniversalTable::ToJoinQuery(
    const core::JoinPredicate& predicate) const {
  JIM_CHECK_EQ(predicate.num_attributes(), provenance_.size());
  JoinQuery query(relation_names_);
  for (const auto& [i, j] : predicate.partition().GeneratorPairs()) {
    const Provenance& a = provenance_[i];
    const Provenance& b = provenance_[j];
    query.AddEquality(
        QualifiedColumn{a.relation_occurrence, a.column_index},
        QualifiedColumn{b.relation_occurrence, b.column_index});
  }
  return query;
}

}  // namespace jim::query
