#ifndef JIM_QUERY_UNIVERSAL_TABLE_H_
#define JIM_QUERY_UNIVERSAL_TABLE_H_

#include <memory>
#include <string>
#include <vector>

#include "core/join_predicate.h"
#include "query/join_query.h"
#include "relational/catalog.h"
#include "relational/relation.h"
#include "util/rng.h"
#include "util/status.h"

namespace jim::query {

/// Options for building a universal table.
struct UniversalTableOptions {
  /// Cap on the materialized candidate-tuple count. When the full cross
  /// product of the involved relations exceeds this, a uniform sample is
  /// drawn instead (the inference is then exact w.r.t. the sample — see
  /// DESIGN.md). 0 means no cap.
  size_t sample_cap = 100'000;
  /// Seed for the sampling RNG.
  uint64_t seed = 99;
  /// Deduplicate identical candidate tuples after the product.
  bool deduplicate = true;
};

/// The denormalized instance JIM works on when the user brings several
/// relations with no known integrity constraints: the (possibly sampled)
/// cross product of the involved relations, with per-attribute provenance so
/// an inferred predicate can be translated back into a multi-relation
/// JoinQuery / GAV mapping.
///
/// This implements the paper's "handles a varying number of involved
/// relations": any subset of the catalog can participate, including the same
/// relation twice (self-joins).
class UniversalTable {
 public:
  /// Where a universal-table attribute came from.
  struct Provenance {
    /// Index into the `relation_names` list passed to Build.
    size_t relation_occurrence = 0;
    std::string relation_name;
    size_t column_index = 0;
  };

  /// Builds the table over `relation_names` (resolved in `catalog`; a name
  /// may repeat for self-joins). Attribute qualifiers in the result schema
  /// are the occurrence aliases ("Flights", or "Flights_1"/"Flights_2").
  static util::StatusOr<UniversalTable> Build(
      const rel::Catalog& catalog,
      const std::vector<std::string>& relation_names,
      const UniversalTableOptions& options = {});

  /// The denormalized candidate-tuple instance.
  const std::shared_ptr<const rel::Relation>& relation() const {
    return relation_;
  }

  /// Provenance of attribute `i` of relation()->schema().
  const Provenance& provenance(size_t i) const { return provenance_[i]; }
  size_t num_attributes() const { return provenance_.size(); }

  /// Whether the instance is a sample (true when the full product exceeded
  /// the cap).
  bool is_sampled() const { return is_sampled_; }
  /// Size of the un-sampled cross product.
  size_t full_product_size() const { return full_product_size_; }

  /// Translates a predicate inferred over this table back into a
  /// multi-relation join query: each equality between attributes of
  /// different occurrences becomes a join condition; equalities within one
  /// occurrence become intra-relation selections (also representable).
  JoinQuery ToJoinQuery(const core::JoinPredicate& predicate) const;

 private:
  UniversalTable() = default;

  std::shared_ptr<const rel::Relation> relation_;
  std::vector<Provenance> provenance_;
  std::vector<std::string> relation_names_;
  bool is_sampled_ = false;
  size_t full_product_size_ = 0;
};

}  // namespace jim::query

#endif  // JIM_QUERY_UNIVERSAL_TABLE_H_
