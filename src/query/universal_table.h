#ifndef JIM_QUERY_UNIVERSAL_TABLE_H_
#define JIM_QUERY_UNIVERSAL_TABLE_H_

#include <memory>
#include <string>
#include <vector>

#include "core/join_predicate.h"
#include "core/tuple_store.h"
#include "query/join_query.h"
#include "relational/catalog.h"
#include "relational/relation.h"
#include "util/rng.h"
#include "util/status.h"

namespace jim::query {

/// Options for building a universal table.
struct UniversalTableOptions {
  /// Cap on the candidate-tuple count. When the full cross product of the
  /// involved relations exceeds this, a uniform sample of row-id draws is
  /// taken instead (the inference is then exact w.r.t. the sample — see
  /// DESIGN.md). 0 means no cap.
  size_t sample_cap = 100'000;
  /// Seed for the sampling RNG.
  uint64_t seed = 99;
  /// Deduplicate identical candidate tuples after the product
  /// (representation-level equality, see rel::TupleRepresentationKey).
  bool deduplicate = true;
};

/// The denormalized instance JIM works on when the user brings several
/// relations with no known integrity constraints: the (possibly sampled)
/// cross product of the involved relations, with per-attribute provenance so
/// an inferred predicate can be translated back into a multi-relation
/// JoinQuery / GAV mapping.
///
/// The table is *factorized*: candidate tuples are never materialized as
/// Value rows. Within the cap, a candidate tuple is just a mixed-radix row
/// id over the source relations' dictionary-encoded columns (peak memory
/// O(Σ|Rᵢ|·nᵢ) — independent of the candidate-tuple count); above the cap,
/// the sample is a matrix of row-id draws (O(N·k) ints for k relations).
/// Either way the engine consumes it through the core::TupleStore seam as
/// integer codes, and Values are decoded on demand for display/provenance.
/// Candidate-tuple order, sampling draws, and dedup semantics are exactly
/// those of the historical materializing builder (the parity suite pins
/// this), so session transcripts are byte-identical to the legacy path.
///
/// This implements the paper's "handles a varying number of involved
/// relations": any subset of the catalog can participate, including the same
/// relation twice (self-joins).
class UniversalTable {
 public:
  /// Where a universal-table attribute came from.
  struct Provenance {
    /// Index into the `relation_names` list passed to Build.
    size_t relation_occurrence = 0;
    std::string relation_name;
    size_t column_index = 0;
  };

  /// Builds the table over `relation_names` (resolved in `catalog`; a name
  /// may repeat for self-joins). Attribute qualifiers in the result schema
  /// are the occurrence aliases ("Flights", or "Flights_1"/"Flights_2").
  static util::StatusOr<UniversalTable> Build(
      const rel::Catalog& catalog,
      const std::vector<std::string>& relation_names,
      const UniversalTableOptions& options = {});

  /// The candidate-tuple instance as the engine consumes it.
  const std::shared_ptr<const core::TupleStore>& store() const {
    return store_;
  }

  const rel::Schema& schema() const { return store_->schema(); }
  size_t num_tuples() const { return store_->num_tuples(); }

  /// Provenance of attribute `i` of schema().
  const Provenance& provenance(size_t i) const { return provenance_[i]; }
  size_t num_attributes() const { return provenance_.size(); }

  /// Whether the instance is a sample (true when the full product exceeded
  /// the cap).
  bool is_sampled() const { return is_sampled_; }
  /// Size of the un-sampled cross product.
  size_t full_product_size() const { return full_product_size_; }

  /// Decodes every candidate tuple into a materialized Relation — the O(N·n)
  /// representation the factorized store exists to avoid. For tests,
  /// display, and export only; identical (rows, order, schema) to what the
  /// historical materializing builder produced.
  rel::Relation Materialize() const;

  /// Translates a predicate inferred over this table back into a
  /// multi-relation join query: each equality between attributes of
  /// different occurrences becomes a join condition; equalities within one
  /// occurrence become intra-relation selections (also representable).
  JoinQuery ToJoinQuery(const core::JoinPredicate& predicate) const;

 private:
  UniversalTable() = default;

  std::shared_ptr<const core::TupleStore> store_;
  std::vector<Provenance> provenance_;
  std::vector<std::string> relation_names_;
  bool is_sampled_ = false;
  size_t full_product_size_ = 0;
};

}  // namespace jim::query

#endif  // JIM_QUERY_UNIVERSAL_TABLE_H_
