#include "query/join_query.h"

#include <algorithm>
#include <map>

#include "relational/join.h"
#include "relational/operators.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace jim::query {

std::string JoinQuery::AliasFor(size_t relation_index) const {
  const std::string& name = relations_[relation_index];
  size_t occurrence = 0;
  size_t total = 0;
  for (size_t i = 0; i < relations_.size(); ++i) {
    if (relations_[i] == name) {
      if (i < relation_index) ++occurrence;
      ++total;
    }
  }
  if (total == 1) return name;
  return util::StrFormat("%s_%zu", name.c_str(), occurrence + 1);
}

util::StatusOr<std::string> JoinQuery::ToSql(
    const rel::Catalog& catalog) const {
  if (relations_.empty()) {
    return util::FailedPreconditionError("query references no relations");
  }
  std::vector<std::string> from_parts;
  std::vector<const rel::Relation*> resolved;
  for (size_t i = 0; i < relations_.size(); ++i) {
    ASSIGN_OR_RETURN(const rel::Relation* relation,
                     catalog.Get(relations_[i]));
    resolved.push_back(relation);
    const std::string alias = AliasFor(i);
    from_parts.push_back(alias == relations_[i]
                             ? relations_[i]
                             : relations_[i] + " AS " + alias);
  }

  std::string sql = "SELECT * FROM " + util::Join(from_parts, ", ");
  if (equalities_.empty()) {
    return sql + ";";
  }
  std::vector<std::string> conditions;
  for (const auto& [a, b] : equalities_) {
    if (a.relation_index >= resolved.size() ||
        b.relation_index >= resolved.size()) {
      return util::OutOfRangeError("equality references unknown relation");
    }
    const rel::Relation* ra = resolved[a.relation_index];
    const rel::Relation* rb = resolved[b.relation_index];
    if (a.column_index >= ra->num_attributes() ||
        b.column_index >= rb->num_attributes()) {
      return util::OutOfRangeError("equality references unknown column");
    }
    conditions.push_back(AliasFor(a.relation_index) + "." +
                         ra->schema().attribute(a.column_index).name + " = " +
                         AliasFor(b.relation_index) + "." +
                         rb->schema().attribute(b.column_index).name);
  }
  return sql + " WHERE " + util::Join(conditions, " AND ") + ";";
}

util::StatusOr<rel::Relation> JoinQuery::Evaluate(
    const rel::Catalog& catalog) const {
  if (relations_.empty()) {
    return util::FailedPreconditionError("query references no relations");
  }

  // Resolve and alias-qualify each occurrence.
  std::vector<rel::Relation> inputs;
  std::vector<size_t> column_offset(relations_.size(), 0);
  for (size_t i = 0; i < relations_.size(); ++i) {
    ASSIGN_OR_RETURN(const rel::Relation* relation,
                     catalog.Get(relations_[i]));
    inputs.push_back(rel::RenameRelation(*relation, AliasFor(i)));
  }

  // Left-deep pipeline: join inputs[0..k] then fold in inputs[k+1] using the
  // equalities that connect it to the already-joined prefix as hash-join
  // keys; equalities within the suffix wait for their turn; equalities
  // entirely inside one relation become filters.
  size_t offset = 0;
  for (size_t i = 0; i < relations_.size(); ++i) {
    column_offset[i] = offset;
    offset += inputs[i].num_attributes();
  }

  auto flat = [&](const QualifiedColumn& column) {
    return column_offset[column.relation_index] + column.column_index;
  };

  rel::Relation joined = inputs[0];
  size_t joined_width = inputs[0].num_attributes();
  std::vector<bool> merged(relations_.size(), false);
  merged[0] = true;

  std::vector<ColumnEquality> pending = equalities_;
  for (size_t next = 1; next < relations_.size(); ++next) {
    // Keys connecting the prefix (already joined) to `next`.
    rel::JoinKeys keys;
    std::vector<ColumnEquality> still_pending;
    for (const ColumnEquality& eq : pending) {
      const auto& [a, b] = eq;
      const bool a_in_prefix = a.relation_index < next;
      const bool b_in_prefix = b.relation_index < next;
      if (a_in_prefix && b.relation_index == next) {
        keys.emplace_back(flat(a), b.column_index);
      } else if (b_in_prefix && a.relation_index == next) {
        keys.emplace_back(flat(b), a.column_index);
      } else {
        still_pending.push_back(eq);
      }
    }
    pending = std::move(still_pending);
    ASSIGN_OR_RETURN(
        joined,
        rel::HashJoin(joined, inputs[next], keys,
                      rel::JoinOptions::Named("join")));
    joined_width += inputs[next].num_attributes();
    merged[next] = true;
  }
  (void)joined_width;

  // Residual equalities (inside a single relation, or diagonal pairs the
  // pipeline could not use as keys) become a filter.
  if (!pending.empty()) {
    std::vector<std::pair<size_t, size_t>> filters;
    filters.reserve(pending.size());
    for (const ColumnEquality& eq : pending) {
      filters.emplace_back(flat(eq.first), flat(eq.second));
    }
    joined = rel::Select(joined, [&filters](const rel::Tuple& row) {
      for (const auto& [x, y] : filters) {
        if (!row[x].Equals(row[y])) return false;
      }
      return true;
    });
  }
  joined.set_name("result");
  return joined;
}

}  // namespace jim::query
