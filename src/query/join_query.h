#ifndef JIM_QUERY_JOIN_QUERY_H_
#define JIM_QUERY_JOIN_QUERY_H_

#include <string>
#include <utility>
#include <vector>

#include "relational/catalog.h"
#include "relational/relation.h"
#include "util/status.h"

namespace jim::query {

/// A column of one of the query's relations.
struct QualifiedColumn {
  /// Index into JoinQuery::relations().
  size_t relation_index = 0;
  /// Column index within that relation.
  size_t column_index = 0;

  friend bool operator==(const QualifiedColumn& a, const QualifiedColumn& b) {
    return a.relation_index == b.relation_index &&
           a.column_index == b.column_index;
  }
  friend bool operator<(const QualifiedColumn& a, const QualifiedColumn& b) {
    return std::pair(a.relation_index, a.column_index) <
           std::pair(b.relation_index, b.column_index);
  }
};

/// An equality condition between two columns.
using ColumnEquality = std::pair<QualifiedColumn, QualifiedColumn>;

/// A multi-relation n-ary equi-join query:
///
///   SELECT * FROM R1, R2, ... WHERE Ri.a = Rj.b AND ...
///
/// This is what JIM hands back when inference ran over a universal table
/// built from several relations — equivalently, a simple GAV schema mapping
/// (paper §1: "our join queries can be eventually seen as simple GAV
/// mappings").
class JoinQuery {
 public:
  JoinQuery() = default;
  explicit JoinQuery(std::vector<std::string> relations)
      : relations_(std::move(relations)) {}

  const std::vector<std::string>& relations() const { return relations_; }
  const std::vector<ColumnEquality>& equalities() const { return equalities_; }

  void AddRelation(std::string name) { relations_.push_back(std::move(name)); }
  void AddEquality(QualifiedColumn a, QualifiedColumn b) {
    equalities_.emplace_back(a, b);
  }

  /// SQL rendering against `catalog` (for column names):
  ///   SELECT * FROM Flights, Hotels WHERE Flights.To = Hotels.City
  /// Relations appearing more than once get aliases R_0, R_1, ....
  util::StatusOr<std::string> ToSql(const rel::Catalog& catalog) const;

  /// Evaluates the query: joins the relations left to right, using hash
  /// joins on the equalities that connect the next relation to the part
  /// already joined, and filters any remaining equalities at the end.
  /// The output schema qualifies every attribute with its relation (alias).
  util::StatusOr<rel::Relation> Evaluate(const rel::Catalog& catalog) const;

 private:
  /// Alias for relation occurrence `i` ("Flights", or "Flights_2" when the
  /// same relation appears multiple times).
  std::string AliasFor(size_t relation_index) const;

  std::vector<std::string> relations_;
  std::vector<ColumnEquality> equalities_;
};

}  // namespace jim::query

#endif  // JIM_QUERY_JOIN_QUERY_H_
