#ifndef JIM_SERVE_SESSION_MANAGER_H_
#define JIM_SERVE_SESSION_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/engine.h"
#include "core/join_predicate.h"
#include "core/strategies.h"
#include "exec/thread_pool.h"
#include "serve/checkpoint.h"
#include "storage/env.h"
#include "util/status.h"

namespace jim::serve {

/// How the manager spends its parallelism budget. The right answer depends
/// on load, so it is a knob, not a policy:
///   kManySessions — every session's lookahead scores serially
///     (LookaheadStrategy::set_thread_pool(nullptr)); throughput comes from
///     running many sessions' requests concurrently on the server's
///     connection handlers. The fit for high session counts.
///   kFewSessions — each request's lookahead fans out over a thread pool
///     (exec::SharedPool() unless ServeOptions.lookahead_pool overrides),
///     minimizing per-request latency when only a handful of sessions are
///     live.
/// Mode never changes *what* is computed — transcripts are bitwise
/// identical across modes and thread counts (the parallel lookahead is
/// deterministic) — only how fast.
enum class ServingMode { kManySessions, kFewSessions };

util::StatusOr<ServingMode> ParseServingMode(std::string_view text);
std::string_view ServingModeName(ServingMode mode);

struct ServeOptions {
  storage::Env* env = nullptr;  ///< nullptr → storage::DefaultEnv()
  /// Directory for session checkpoints; empty disables checkpointing (and
  /// recovery). Created on demand.
  std::string checkpoint_dir;
  /// Admission control: cap on concurrently live sessions. `create` beyond
  /// it is a typed kResourceExhausted rejection.
  size_t max_sessions = 64;
  /// Default per-session accepted-label cap (a `create` may lower-or-raise
  /// it per session); labels past the cap are kResourceExhausted.
  uint64_t default_max_steps = 4096;
  ServingMode mode = ServingMode::kManySessions;
  /// kFewSessions lookahead pool override (not owned; must outlive the
  /// manager). nullptr → exec::SharedPool().
  exec::ThreadPool* lookahead_pool = nullptr;
  /// Reopen instances named by recovered checkpoints in trusted mode
  /// (storage::MappedTupleStore header/table/dict-page checks only) — the
  /// O(sections) warm-restart path for files this daemon already validated
  /// in a previous life.
  bool trusted_reopen = false;
  /// Instance used when `create` does not name one ("" = none; `create`
  /// must then always pass an instance).
  std::string default_instance;
  storage::RetryPolicy retry;
};

/// Owns the live sessions of a serving daemon: per-session engine clones
/// over shared read-only stores, strategy state, admission control, and the
/// checkpoint/recovery path. Thread-safe: the registry is guarded by one
/// mutex, each session by its own, so requests for different sessions
/// proceed in parallel (the whole point of kManySessions mode).
///
/// Determinism contract: a session is fully determined by (instance,
/// strategy, seed, label transcript). `suggest` computes the strategy's
/// pick at most once per step (repeats return the cached pick, so polling
/// clients never advance a strategy's RNG), and recovery replays the
/// checkpointed transcript — re-driving PickClass exactly where a suggest
/// preceded the label — so a restarted daemon's remaining responses are
/// byte-identical to an uninterrupted run's.
class SessionManager {
 public:
  explicit SessionManager(ServeOptions options);
  ~SessionManager() = default;

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Registers an in-memory store under `name` so `create` requests (and
  /// recovered checkpoints) can reference it without a file. The CLI
  /// registers its --load-instance store under the path it came from;
  /// tests register synthetic stores directly.
  void RegisterInstance(const std::string& name,
                        std::shared_ptr<const core::TupleStore> store);

  /// Rebuilds every checkpointed session from `checkpoint_dir` (no-op when
  /// checkpointing is off). Call once, before serving. Fails loudly —
  /// kInvalidArgument for a corrupt checkpoint, kInternal for a replay
  /// divergence — rather than silently dropping a user's session.
  util::Status RecoverSessions();

  struct CreateResult {
    std::string session_id;
    size_t num_tuples = 0;
    size_t num_classes = 0;
    bool done = false;  ///< a one-class instance can be born done
  };
  util::StatusOr<CreateResult> Create(const std::string& instance,
                                      const std::string& strategy,
                                      const std::string& goal, uint64_t seed,
                                      uint64_t max_steps);

  struct SuggestResult {
    bool done = false;
    size_t step = 0;  ///< accepted labels so far
    // Valid when !done:
    size_t class_id = 0;
    size_t tuple_index = 0;  ///< representative member of the class
    size_t class_size = 0;
    std::vector<std::string> values;  ///< decoded representative tuple
  };
  util::StatusOr<SuggestResult> Suggest(const std::string& session_id);

  struct LabelResult {
    size_t step = 0;  ///< accepted labels after this one
    size_t pruned_classes = 0;
    size_t pruned_tuples = 0;
    bool wasted = false;  ///< consistent but taught nothing
    bool done = false;
  };
  util::StatusOr<LabelResult> Label(const std::string& session_id,
                                    size_t class_id, bool positive);

  struct StatusResult {
    size_t steps = 0;
    bool done = false;
    size_t num_tuples = 0;
    size_t num_classes = 0;
    size_t informative_classes = 0;
    size_t informative_tuples = 0;
    std::string strategy;
    std::string instance;
  };
  util::StatusOr<StatusResult> Status(const std::string& session_id);

  struct ResultReply {
    bool done = false;
    std::string predicate;  ///< θ_P so far (canonical once done)
    bool has_goal = false;
    bool identified_goal = false;  ///< instance-equivalent to the goal
  };
  util::StatusOr<ResultReply> Result(const std::string& session_id);

  /// Removes the session and its checkpoint file.
  util::Status Close(const std::string& session_id);

  struct Stats {
    size_t live = 0;
    uint64_t created = 0;
    uint64_t recovered = 0;
    uint64_t evicted = 0;
    uint64_t rejected = 0;
  };
  Stats GetStats() const;

  const ServeOptions& options() const { return options_; }

 private:
  struct Instance {
    std::shared_ptr<const core::TupleStore> store;
    /// Built once per instance; sessions start as COW clones of it.
    std::shared_ptr<const core::InferenceEngine> prototype;
  };

  struct Session {
    std::mutex mutex;
    core::InferenceEngine engine;
    std::unique_ptr<core::Strategy> strategy;
    std::optional<core::JoinPredicate> goal;
    /// Mirrors the durable state: config + accepted transcript.
    SessionCheckpoint checkpoint;
    /// The cached current-step pick (engine state already reflects every
    /// accepted label, so the pick is pending until the next label).
    bool has_pending_pick = false;
    size_t pending_pick = 0;

    Session(const core::InferenceEngine& prototype,
            std::unique_ptr<core::Strategy> strategy_in)
        : engine(prototype), strategy(std::move(strategy_in)) {}
  };

  util::Status EnsureCheckpointDir();
  /// Looks `name` up, opening (and caching) the JIMC file on miss.
  /// `trusted` selects the trusted-reopen validation level for that open.
  util::StatusOr<Instance*> GetOrOpenInstance(const std::string& name,
                                              bool trusted);
  util::StatusOr<std::shared_ptr<Session>> FindSession(
      const std::string& session_id);
  /// Applies the serving mode to a freshly made strategy.
  void ConfigureStrategy(core::Strategy& strategy) const;
  /// Builds a session from its checkpoint: clone, replay every step
  /// (re-driving PickClass where one was recorded), verify convergence.
  util::StatusOr<std::shared_ptr<Session>> ReplayCheckpoint(
      const SessionCheckpoint& checkpoint, const Instance& instance) const;
  /// Persists the session's checkpoint (no-op when checkpointing is off).
  /// Caller holds the session's mutex.
  util::Status PersistSession(Session& session);
  void UpdateLiveGauge() const;

  ServeOptions options_;
  storage::Env* env_;

  mutable std::mutex mutex_;
  std::map<std::string, Instance> instances_;
  std::map<std::string, std::shared_ptr<Session>> sessions_;
  uint64_t next_session_ = 1;
  /// Atomics, not mutex_-guarded: Label's step-cap rejection bumps
  /// rejected_ while holding only its session's mutex, and the
  /// manager→session lock order must stay one-way.
  std::atomic<uint64_t> created_{0};
  std::atomic<uint64_t> recovered_{0};
  std::atomic<uint64_t> evicted_{0};
  std::atomic<uint64_t> rejected_{0};
};

}  // namespace jim::serve

#endif  // JIM_SERVE_SESSION_MANAGER_H_
