#ifndef JIM_SERVE_CLIENT_H_
#define JIM_SERVE_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "serve/protocol.h"
#include "serve/transport.h"
#include "util/json_reader.h"
#include "util/status.h"

namespace jim::serve {

/// Blocking client driver over one daemon connection — what the e2e tests,
/// the serving bench, and `jim_cli call` drive sessions with. Not
/// thread-safe; open one client per driving thread.
class Client {
 public:
  static util::StatusOr<Client> ConnectTcp(uint16_t port);
  explicit Client(std::unique_ptr<Connection> connection)
      : connection_(std::move(connection)) {}

  Client(Client&&) = default;
  Client& operator=(Client&&) = default;

  /// Sends one request line, returns the raw response line (transcript
  /// captures diff these bytes directly).
  util::StatusOr<std::string> CallRaw(const std::string& request_line);

  /// CallRaw + parse. An {"ok":false,...} response comes back as the typed
  /// error it encodes, so callers see daemon-side RESOURCE_EXHAUSTED etc.
  /// as if the manager were in-process.
  util::StatusOr<util::JsonValue> Call(const std::string& request_line);

  /// Convenience verbs. Create returns the minted session id.
  util::StatusOr<std::string> Create(const Request& create_request);
  util::StatusOr<util::JsonValue> Suggest(const std::string& session);
  util::StatusOr<util::JsonValue> Label(const std::string& session,
                                        uint64_t class_id, bool answer);
  util::StatusOr<util::JsonValue> Status(const std::string& session);
  util::StatusOr<util::JsonValue> Result(const std::string& session);
  util::Status Close(const std::string& session);

 private:
  std::unique_ptr<Connection> connection_;
};

/// Request-line builders (also used directly by tests that want to hold
/// raw lines).
std::string SuggestLine(const std::string& session);
std::string LabelLine(const std::string& session, uint64_t class_id,
                      bool answer);
std::string StatusLine(const std::string& session);
std::string ResultLine(const std::string& session);
std::string CloseLine(const std::string& session);

}  // namespace jim::serve

#endif  // JIM_SERVE_CLIENT_H_
