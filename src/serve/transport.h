#ifndef JIM_SERVE_TRANSPORT_H_
#define JIM_SERVE_TRANSPORT_H_

#include <cstdint>
#include <istream>
#include <memory>
#include <ostream>
#include <string>

#include "util/status.h"

namespace jim::serve {

/// One bidirectional newline-delimited byte stream between the daemon and a
/// client. ReadLine blocks; ShutdownNow unblocks it from another thread
/// (the server's teardown path), after which reads and writes fail.
class Connection {
 public:
  virtual ~Connection() = default;

  /// Next line, without its terminator. kNotFound("connection closed") on a
  /// clean peer close or shutdown; other codes for transport errors.
  virtual util::StatusOr<std::string> ReadLine() = 0;
  /// Writes `line` plus '\n' and flushes.
  virtual util::Status WriteLine(std::string_view line) = 0;
  /// Thread-safe: unblocks a concurrent ReadLine and fails the connection.
  virtual void ShutdownNow() = 0;
};

/// The server's listening seam: hands out connections until shut down.
/// Implementations: localhost TCP and stdin/stdout; an HTTP front can slot
/// in later without the server or SessionManager noticing.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Blocks for the next client. kOutOfRange("transport shut down") once
  /// ShutdownNow was called (or the transport is exhausted, for stdio).
  virtual util::StatusOr<std::unique_ptr<Connection>> Accept() = 0;
  /// Thread-safe: unblocks a concurrent Accept and stops the transport.
  virtual void ShutdownNow() = 0;
  /// Human-readable endpoint, e.g. "127.0.0.1:41234" or "stdio".
  virtual const std::string& address() const = 0;
};

/// Listens on 127.0.0.1:`port` (0 = kernel-assigned ephemeral port; the
/// actual one is in address()).
util::StatusOr<std::unique_ptr<Transport>> ListenTcp(uint16_t port);

/// The port of a "host:port" address string.
util::StatusOr<uint16_t> PortOfAddress(const std::string& address);

/// A transport serving exactly one connection over the given streams
/// (default std::cin/std::cout — the `jim_cli serve --stdio` mode). The
/// second Accept reports the transport exhausted, which is what lets the
/// server's accept loop terminate after the one session of a piped run.
util::StatusOr<std::unique_ptr<Transport>> StdioTransport();
util::StatusOr<std::unique_ptr<Transport>> StreamTransport(std::istream& in,
                                                           std::ostream& out);

/// Client side: connects to 127.0.0.1:`port`.
util::StatusOr<std::unique_ptr<Connection>> ConnectTcp(uint16_t port);

}  // namespace jim::serve

#endif  // JIM_SERVE_TRANSPORT_H_
