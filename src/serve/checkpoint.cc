#include "serve/checkpoint.h"

#include "storage/format.h"
#include "util/string_util.h"

namespace jim::serve {

std::string EncodeCheckpoint(const SessionCheckpoint& checkpoint) {
  std::string out;
  storage::AppendU32(out, kCheckpointMagic);
  storage::AppendU32(out, kCheckpointVersion);
  storage::AppendLengthPrefixed(out, checkpoint.session_id);
  storage::AppendLengthPrefixed(out, checkpoint.instance);
  storage::AppendLengthPrefixed(out, checkpoint.strategy);
  storage::AppendLengthPrefixed(out, checkpoint.goal);
  storage::AppendU64(out, checkpoint.seed);
  storage::AppendU64(out, checkpoint.max_steps);
  storage::AppendU32(out, static_cast<uint32_t>(checkpoint.steps.size()));
  for (const CheckpointStep& step : checkpoint.steps) {
    storage::AppendU32(out, step.suggested_class);
    storage::AppendU32(out, step.class_id);
    storage::AppendU32(out, step.tuple_index);
    storage::AppendU8(out, step.answer);
  }
  storage::AppendU64(out, storage::Fnv1a64(out.data(), out.size()));
  return out;
}

util::StatusOr<SessionCheckpoint> DecodeCheckpoint(std::string_view bytes,
                                                   const std::string& context) {
  const auto* data = reinterpret_cast<const uint8_t*>(bytes.data());
  if (bytes.size() < sizeof(uint64_t)) {
    return util::InvalidArgumentError(
        util::StrFormat("%s: checkpoint too short (%zu bytes)",
                        context.c_str(), bytes.size()));
  }
  size_t body_size = bytes.size() - sizeof(uint64_t);
  storage::ByteReader trailer(data + body_size, sizeof(uint64_t), context);
  ASSIGN_OR_RETURN(uint64_t stored_checksum, trailer.ReadU64());
  uint64_t actual_checksum = storage::Fnv1a64(data, body_size);
  if (stored_checksum != actual_checksum) {
    return util::InvalidArgumentError(
        util::StrFormat("%s: checkpoint checksum mismatch", context.c_str()));
  }

  storage::ByteReader reader(data, body_size, context);
  ASSIGN_OR_RETURN(uint32_t magic, reader.ReadU32());
  if (magic != kCheckpointMagic) {
    return util::InvalidArgumentError(
        util::StrFormat("%s: not a JIMS checkpoint (bad magic)",
                        context.c_str()));
  }
  ASSIGN_OR_RETURN(uint32_t version, reader.ReadU32());
  if (version != kCheckpointVersion) {
    return util::InvalidArgumentError(
        util::StrFormat("%s: unsupported checkpoint version %u",
                        context.c_str(), version));
  }
  SessionCheckpoint checkpoint;
  ASSIGN_OR_RETURN(checkpoint.session_id, reader.ReadLengthPrefixed());
  ASSIGN_OR_RETURN(checkpoint.instance, reader.ReadLengthPrefixed());
  ASSIGN_OR_RETURN(checkpoint.strategy, reader.ReadLengthPrefixed());
  ASSIGN_OR_RETURN(checkpoint.goal, reader.ReadLengthPrefixed());
  ASSIGN_OR_RETURN(checkpoint.seed, reader.ReadU64());
  ASSIGN_OR_RETURN(checkpoint.max_steps, reader.ReadU64());
  ASSIGN_OR_RETURN(uint32_t num_steps, reader.ReadU32());
  // 13 bytes per step; bound before reserving so a corrupt count cannot
  // drive a huge allocation (the checksum above already makes this
  // unreachable for bit rot, but not for a hand-built file).
  if (static_cast<uint64_t>(num_steps) * 13 > reader.remaining()) {
    return util::InvalidArgumentError(
        util::StrFormat("%s: step count %u exceeds checkpoint size",
                        context.c_str(), num_steps));
  }
  checkpoint.steps.reserve(num_steps);
  for (uint32_t i = 0; i < num_steps; ++i) {
    CheckpointStep step;
    ASSIGN_OR_RETURN(step.suggested_class, reader.ReadU32());
    ASSIGN_OR_RETURN(step.class_id, reader.ReadU32());
    ASSIGN_OR_RETURN(step.tuple_index, reader.ReadU32());
    ASSIGN_OR_RETURN(step.answer, reader.ReadU8());
    checkpoint.steps.push_back(step);
  }
  if (reader.remaining() != 0) {
    return util::InvalidArgumentError(util::StrFormat(
        "%s: %zu trailing bytes after checkpoint steps", context.c_str(),
        reader.remaining()));
  }
  return checkpoint;
}

std::string CheckpointFileName(const std::string& session_id) {
  return "session_" + session_id + ".jims";
}

util::Status WriteCheckpoint(storage::Env& env, const std::string& dir,
                             const SessionCheckpoint& checkpoint,
                             const storage::RetryPolicy& retry) {
  std::string path = dir + "/" + CheckpointFileName(checkpoint.session_id);
  std::string bytes = EncodeCheckpoint(checkpoint);
  return storage::RetryWithBackoff(env, retry, [&] {
    return storage::WriteFileAtomically(env, path, bytes);
  });
}

util::StatusOr<SessionCheckpoint> ReadCheckpoint(storage::Env& env,
                                                 const std::string& path) {
  ASSIGN_OR_RETURN(std::string bytes, env.ReadFileToString(path));
  return DecodeCheckpoint(bytes, path);
}

}  // namespace jim::serve
