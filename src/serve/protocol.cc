#include "serve/protocol.h"

#include "util/json_reader.h"
#include "util/json_writer.h"
#include "util/string_util.h"

namespace jim::serve {
namespace {

/// Reads an optional string member into `out`; present-but-wrong-kind is a
/// typed error (silent fallbacks hide client bugs).
util::Status ReadString(const util::JsonValue& object, std::string_view key,
                        std::string& out) {
  const util::JsonValue* member = object.Find(key);
  if (member == nullptr) return util::OkStatus();
  if (!member->is_string()) {
    return util::InvalidArgumentError(
        util::StrFormat("request member '%s' must be a string",
                        std::string(key).c_str()));
  }
  out = member->AsString();
  return util::OkStatus();
}

util::Status ReadUint(const util::JsonValue& object, std::string_view key,
                      uint64_t& out, bool& present) {
  const util::JsonValue* member = object.Find(key);
  present = member != nullptr;
  if (member == nullptr) return util::OkStatus();
  if (!member->is_int() || member->AsInt64() < 0) {
    return util::InvalidArgumentError(
        util::StrFormat("request member '%s' must be a non-negative integer",
                        std::string(key).c_str()));
  }
  out = static_cast<uint64_t>(member->AsInt64());
  return util::OkStatus();
}

}  // namespace

util::StatusOr<Request> ParseRequest(std::string_view line) {
  ASSIGN_OR_RETURN(util::JsonValue document, util::ParseJson(line));
  if (!document.is_object()) {
    return util::InvalidArgumentError("request must be a JSON object");
  }
  Request request;
  RETURN_IF_ERROR(ReadString(document, "verb", request.verb));
  if (request.verb.empty()) {
    return util::InvalidArgumentError("request is missing the 'verb' member");
  }
  RETURN_IF_ERROR(ReadString(document, "session", request.session));
  RETURN_IF_ERROR(ReadString(document, "instance", request.instance));
  RETURN_IF_ERROR(ReadString(document, "strategy", request.strategy));
  RETURN_IF_ERROR(ReadString(document, "goal", request.goal));
  bool present = false;
  RETURN_IF_ERROR(ReadUint(document, "seed", request.seed, present));
  RETURN_IF_ERROR(ReadUint(document, "max_steps", request.max_steps, present));
  RETURN_IF_ERROR(
      ReadUint(document, "class", request.class_id, request.has_class_id));
  const util::JsonValue* answer = document.Find("answer");
  if (answer != nullptr) {
    if (!answer->is_bool()) {
      return util::InvalidArgumentError(
          "request member 'answer' must be a boolean");
    }
    request.answer = answer->AsBool();
    request.has_answer = true;
  }
  return request;
}

std::string RequestToLine(const Request& request) {
  util::JsonWriter json;
  json.BeginObject();
  json.KeyValue("verb", request.verb);
  if (!request.session.empty()) json.KeyValue("session", request.session);
  if (!request.instance.empty()) json.KeyValue("instance", request.instance);
  if (request.verb == "create") {
    json.KeyValue("strategy", request.strategy);
    if (!request.goal.empty()) json.KeyValue("goal", request.goal);
    json.KeyValue("seed", request.seed);
    if (request.max_steps != 0) json.KeyValue("max_steps", request.max_steps);
  }
  if (request.has_class_id) json.KeyValue("class", request.class_id);
  if (request.has_answer) json.KeyValue("answer", request.answer);
  json.EndObject();
  return json.str();
}

std::string ErrorLine(const util::Status& status) {
  util::JsonWriter json;
  json.BeginObject();
  json.KeyValue("ok", false);
  json.KeyValue("error", util::StatusCodeToString(status.code()));
  json.KeyValue("message", status.message());
  json.EndObject();
  return json.str();
}

util::Status StatusFromErrorName(std::string_view name, std::string message) {
  for (int code = 1; code <= static_cast<int>(util::StatusCode::kUnavailable);
       ++code) {
    auto status_code = static_cast<util::StatusCode>(code);
    if (util::StatusCodeToString(status_code) == name) {
      return util::Status(status_code, std::move(message));
    }
  }
  return util::InternalError(std::move(message));
}

}  // namespace jim::serve
