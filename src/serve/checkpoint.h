#ifndef JIM_SERVE_CHECKPOINT_H_
#define JIM_SERVE_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "storage/env.h"
#include "util/status.h"

namespace jim::serve {

/// Durable record of one live session: its immutable configuration plus the
/// accepted-label transcript so far. A restarted daemon rebuilds the exact
/// in-memory session — engine state *and* strategy RNG state — by replaying
/// the transcript against a fresh engine clone: for every step that was
/// preceded by a `suggest`, the strategy's PickClass is re-driven exactly
/// once (and must reproduce `suggested_class`, else the checkpoint is
/// rejected as diverged), so the remaining transcript after recovery is
/// byte-identical to an uninterrupted run.
///
/// On-disk format (`session_<id>.jims`, little-endian, storage/format.h
/// primitives): magic "JIMS", version, length-prefixed session id /
/// instance / strategy / goal, seed, max_steps, step count, steps, then a
/// trailing FNV-1a 64 over everything before it. Files are written with the
/// storage tier's atomic-persist recipe, so a crash mid-checkpoint leaves
/// either the previous transcript or the new one — never a torn file.
inline constexpr uint32_t kCheckpointMagic = 0x534D494Au;  // "JIMS"
inline constexpr uint32_t kCheckpointVersion = 1;

/// `suggested_class` sentinel for a label that was not preceded by a
/// suggest on the same step (mode-1 style direct labeling).
inline constexpr uint32_t kNoSuggestion = 0xFFFFFFFFu;

struct CheckpointStep {
  uint32_t suggested_class = kNoSuggestion;
  uint32_t class_id = 0;
  uint32_t tuple_index = 0;  ///< representative tuple shown to the user
  uint8_t answer = 0;        ///< 1 = positive, 0 = negative
};

struct SessionCheckpoint {
  std::string session_id;
  std::string instance;  ///< instance name/path as passed to `create`
  std::string strategy;
  std::string goal;  ///< optional reference goal ("" = none)
  uint64_t seed = 1;
  uint64_t max_steps = 0;
  std::vector<CheckpointStep> steps;
};

std::string EncodeCheckpoint(const SessionCheckpoint& checkpoint);

/// Decodes and verifies (magic, version, trailing checksum, exact length).
/// kInvalidArgument with `context` named on any mismatch.
util::StatusOr<SessionCheckpoint> DecodeCheckpoint(std::string_view bytes,
                                                   const std::string& context);

/// "session_<id>.jims". Session ids are [A-Za-z0-9_-]+ by construction
/// (SessionManager mints "s<counter>"), so the name is filesystem-safe.
std::string CheckpointFileName(const std::string& session_id);

/// Atomically persists `checkpoint` under `dir`, retrying transient I/O
/// errors per `retry`.
util::Status WriteCheckpoint(storage::Env& env, const std::string& dir,
                             const SessionCheckpoint& checkpoint,
                             const storage::RetryPolicy& retry);

/// Reads and decodes one checkpoint file.
util::StatusOr<SessionCheckpoint> ReadCheckpoint(storage::Env& env,
                                                 const std::string& path);

}  // namespace jim::serve

#endif  // JIM_SERVE_CHECKPOINT_H_
