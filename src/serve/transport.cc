#include "serve/transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <iostream>

#include "util/string_util.h"

// This file is the posix backend of the Transport seam — the one place in
// src/serve/ allowed to touch sockets directly (see the raw-io rule in
// tools/lint_determinism.py and its allowlist). Everything above it speaks
// Connection/Transport.

namespace jim::serve {
namespace {

util::Status ErrnoStatus(const char* what, int err) {
  std::string message =
      util::StrFormat("%s: %s (errno %d)", what, std::strerror(err), err);
  switch (err) {
    case EINTR:
    case EAGAIN:
    case EMFILE:
    case ENFILE:
      return util::UnavailableError(std::move(message));
    case ECONNREFUSED:
    case ECONNRESET:
    case EPIPE:
      return util::NotFoundError(std::move(message));
    default:
      return util::InternalError(std::move(message));
  }
}

class TcpConnection final : public Connection {
 public:
  explicit TcpConnection(int fd) : fd_(fd) {}

  ~TcpConnection() override { ::close(fd_); }

  util::StatusOr<std::string> ReadLine() override {
    while (true) {
      size_t newline = buffer_.find('\n');
      if (newline != std::string::npos) {
        std::string line = buffer_.substr(0, newline);
        buffer_.erase(0, newline + 1);
        if (!line.empty() && line.back() == '\r') line.pop_back();
        return line;
      }
      char chunk[4096];
      ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n > 0) {
        buffer_.append(chunk, static_cast<size_t>(n));
        continue;
      }
      if (n == 0 || shutdown_.load(std::memory_order_acquire)) {
        // A partial trailing line without its '\n' is not a request.
        return util::NotFoundError("connection closed");
      }
      if (errno == EINTR) continue;
      return ErrnoStatus("recv", errno);
    }
  }

  util::Status WriteLine(std::string_view line) override {
    std::string framed(line);
    framed.push_back('\n');
    size_t sent = 0;
    while (sent < framed.size()) {
      // MSG_NOSIGNAL: a peer that went away surfaces as EPIPE, not SIGPIPE.
      ssize_t n = ::send(fd_, framed.data() + sent, framed.size() - sent,
                         MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (shutdown_.load(std::memory_order_acquire)) {
          return util::NotFoundError("connection closed");
        }
        return ErrnoStatus("send", errno);
      }
      sent += static_cast<size_t>(n);
    }
    return util::OkStatus();
  }

  void ShutdownNow() override {
    shutdown_.store(true, std::memory_order_release);
    // Unblocks a concurrent recv/send; the fd itself stays open until the
    // destructor so there is no close/use race with the reader thread.
    ::shutdown(fd_, SHUT_RDWR);
  }

 private:
  int fd_;
  std::string buffer_;
  std::atomic<bool> shutdown_{false};
};

class TcpTransport final : public Transport {
 public:
  TcpTransport(int listen_fd, std::string address)
      : listen_fd_(listen_fd), address_(std::move(address)) {}

  ~TcpTransport() override { ::close(listen_fd_); }

  util::StatusOr<std::unique_ptr<Connection>> Accept() override {
    while (true) {
      int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd >= 0) {
        if (shutdown_.load(std::memory_order_acquire)) {
          ::close(fd);
          return util::OutOfRangeError("transport shut down");
        }
        return std::unique_ptr<Connection>(new TcpConnection(fd));
      }
      if (shutdown_.load(std::memory_order_acquire)) {
        return util::OutOfRangeError("transport shut down");
      }
      if (errno == EINTR) continue;
      return ErrnoStatus("accept", errno);
    }
  }

  void ShutdownNow() override {
    shutdown_.store(true, std::memory_order_release);
    // On Linux, shutting a listening socket down unblocks accept(2) with an
    // error; the flag above turns that into the clean kOutOfRange verdict.
    ::shutdown(listen_fd_, SHUT_RDWR);
  }

  const std::string& address() const override { return address_; }

 private:
  int listen_fd_;
  std::string address_;
  std::atomic<bool> shutdown_{false};
};

/// One connection over caller-provided streams. ShutdownNow cannot unblock
/// a blocking std::getline portably; it only fails subsequent operations.
/// The server never needs more: in stdio mode shutdown always arrives on
/// the connection's own request loop (shutdown verb or EOF).
class StreamConnection final : public Connection {
 public:
  StreamConnection(std::istream& in, std::ostream& out) : in_(in), out_(out) {}

  util::StatusOr<std::string> ReadLine() override {
    if (shutdown_.load(std::memory_order_acquire)) {
      return util::NotFoundError("connection closed");
    }
    std::string line;
    if (!std::getline(in_, line)) {
      return util::NotFoundError("connection closed");
    }
    if (!line.empty() && line.back() == '\r') line.pop_back();
    return line;
  }

  util::Status WriteLine(std::string_view line) override {
    if (shutdown_.load(std::memory_order_acquire)) {
      return util::NotFoundError("connection closed");
    }
    out_ << line << '\n';
    out_.flush();
    if (!out_.good()) {
      return util::InternalError("stream write failed");
    }
    return util::OkStatus();
  }

  void ShutdownNow() override {
    shutdown_.store(true, std::memory_order_release);
  }

 private:
  std::istream& in_;
  std::ostream& out_;
  std::atomic<bool> shutdown_{false};
};

class OneShotStreamTransport final : public Transport {
 public:
  OneShotStreamTransport(std::istream& in, std::ostream& out)
      : in_(in), out_(out), address_("stdio") {}

  util::StatusOr<std::unique_ptr<Connection>> Accept() override {
    bool expected = false;
    if (shutdown_.load(std::memory_order_acquire) ||
        !accepted_.compare_exchange_strong(expected, true)) {
      return util::OutOfRangeError("transport shut down");
    }
    return std::unique_ptr<Connection>(new StreamConnection(in_, out_));
  }

  void ShutdownNow() override {
    shutdown_.store(true, std::memory_order_release);
  }

  const std::string& address() const override { return address_; }

 private:
  std::istream& in_;
  std::ostream& out_;
  std::string address_;
  std::atomic<bool> accepted_{false};
  std::atomic<bool> shutdown_{false};
};

}  // namespace

util::StatusOr<std::unique_ptr<Transport>> ListenTcp(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return ErrnoStatus("socket", errno);
  int enable = 1;
  if (::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable)) <
      0) {
    int err = errno;
    ::close(fd);
    return ErrnoStatus("setsockopt(SO_REUSEADDR)", err);
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    int err = errno;
    ::close(fd);
    return ErrnoStatus("bind", err);
  }
  if (::listen(fd, 128) < 0) {
    int err = errno;
    ::close(fd);
    return ErrnoStatus("listen", err);
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len) < 0) {
    int err = errno;
    ::close(fd);
    return ErrnoStatus("getsockname", err);
  }
  std::string address =
      util::StrFormat("127.0.0.1:%u", ntohs(addr.sin_port));
  return std::unique_ptr<Transport>(new TcpTransport(fd, std::move(address)));
}

util::StatusOr<uint16_t> PortOfAddress(const std::string& address) {
  size_t colon = address.rfind(':');
  if (colon == std::string::npos) {
    return util::InvalidArgumentError(
        util::StrFormat("address '%s' has no port", address.c_str()));
  }
  ASSIGN_OR_RETURN(int64_t port, util::ParseInt64(address.substr(colon + 1)));
  if (port < 0 || port > 65535) {
    return util::InvalidArgumentError(
        util::StrFormat("address '%s' has an invalid port", address.c_str()));
  }
  return static_cast<uint16_t>(port);
}

util::StatusOr<std::unique_ptr<Transport>> StdioTransport() {
  return StreamTransport(std::cin, std::cout);
}

util::StatusOr<std::unique_ptr<Transport>> StreamTransport(std::istream& in,
                                                           std::ostream& out) {
  return std::unique_ptr<Transport>(new OneShotStreamTransport(in, out));
}

util::StatusOr<std::unique_ptr<Connection>> ConnectTcp(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return ErrnoStatus("socket", errno);
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  while (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
         0) {
    if (errno == EINTR) continue;
    int err = errno;
    ::close(fd);
    return ErrnoStatus("connect", err);
  }
  return std::unique_ptr<Connection>(new TcpConnection(fd));
}

}  // namespace jim::serve
