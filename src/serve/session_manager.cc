#include "serve/session_manager.h"

#include <algorithm>
#include <utility>

#include "exec/parallel.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "storage/mapped_store.h"
#include "util/string_util.h"

namespace jim::serve {

namespace {

/// "s<counter>" ids; returns the numeric part, or 0 for foreign ids (a
/// hand-named checkpoint file still recovers, it just never collides with
/// minted ids because the counter only moves up).
uint64_t SessionIdNumber(const std::string& session_id) {
  if (session_id.size() < 2 || session_id[0] != 's') return 0;
  auto parsed = util::ParseInt64(session_id.substr(1));
  if (!parsed.ok() || *parsed < 0) return 0;
  return static_cast<uint64_t>(*parsed);
}

}  // namespace

util::StatusOr<ServingMode> ParseServingMode(std::string_view text) {
  if (text == "many" || text == "many-sessions") {
    return ServingMode::kManySessions;
  }
  if (text == "few" || text == "few-sessions") {
    return ServingMode::kFewSessions;
  }
  return util::InvalidArgumentError(
      util::StrFormat("unknown serving mode '%s' (want 'many' or 'few')",
                      std::string(text).c_str()));
}

std::string_view ServingModeName(ServingMode mode) {
  return mode == ServingMode::kManySessions ? "many" : "few";
}

SessionManager::SessionManager(ServeOptions options)
    : options_(std::move(options)),
      env_(options_.env != nullptr ? options_.env : storage::DefaultEnv()) {}

void SessionManager::RegisterInstance(
    const std::string& name, std::shared_ptr<const core::TupleStore> store) {
  Instance instance;
  instance.prototype = std::make_shared<core::InferenceEngine>(store);
  instance.store = std::move(store);
  std::lock_guard<std::mutex> lock(mutex_);
  instances_[name] = std::move(instance);
}

util::Status SessionManager::EnsureCheckpointDir() {
  return env_->CreateDirectories(options_.checkpoint_dir);
}

util::StatusOr<SessionManager::Instance*> SessionManager::GetOrOpenInstance(
    const std::string& name, bool trusted) {
  auto it = instances_.find(name);
  if (it != instances_.end()) return &it->second;
  storage::OpenOptions open_options;
  open_options.env = env_;
  open_options.trusted = trusted;
  ASSIGN_OR_RETURN(std::shared_ptr<const core::TupleStore> store,
                   storage::OpenStore(name, open_options));
  Instance instance;
  instance.prototype = std::make_shared<core::InferenceEngine>(store);
  instance.store = std::move(store);
  auto inserted = instances_.emplace(name, std::move(instance));
  return &inserted.first->second;
}

util::StatusOr<std::shared_ptr<SessionManager::Session>>
SessionManager::FindSession(const std::string& session_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) {
    return util::NotFoundError(
        util::StrFormat("no session '%s'", session_id.c_str()));
  }
  return it->second;
}

void SessionManager::ConfigureStrategy(core::Strategy& strategy) const {
  auto* lookahead = dynamic_cast<core::LookaheadStrategy*>(&strategy);
  if (lookahead == nullptr) return;
  if (options_.mode == ServingMode::kManySessions) {
    lookahead->set_thread_pool(nullptr);
  } else if (options_.lookahead_pool != nullptr) {
    lookahead->set_thread_pool(options_.lookahead_pool);
  }
  // kFewSessions with no override keeps the strategy's default
  // (exec::SharedPool()).
}

void SessionManager::UpdateLiveGauge() const {
  JIM_GAUGE_SET(obs::kGaugeServeSessionsLive,
                static_cast<int64_t>(sessions_.size()));
}

util::StatusOr<SessionManager::CreateResult> SessionManager::Create(
    const std::string& instance, const std::string& strategy,
    const std::string& goal, uint64_t seed, uint64_t max_steps) {
  JIM_SPAN(obs::kHistServeCreateMicros);
  const std::string& instance_name =
      instance.empty() ? options_.default_instance : instance;
  if (instance_name.empty()) {
    return util::InvalidArgumentError(
        "create: no 'instance' given and the daemon has no default");
  }
  ASSIGN_OR_RETURN(std::unique_ptr<core::Strategy> strategy_impl,
                   core::MakeStrategy(strategy, seed));

  std::shared_ptr<Session> session;
  std::string session_id;
  CreateResult result;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (sessions_.size() >= options_.max_sessions) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      JIM_COUNT(obs::kCounterServeSessionsRejected);
      return util::ResourceExhaustedError(util::StrFormat(
          "session limit reached (%zu live, max %zu)", sessions_.size(),
          options_.max_sessions));
    }
    ASSIGN_OR_RETURN(Instance * inst,
                     GetOrOpenInstance(instance_name, /*trusted=*/false));
    session = std::make_shared<Session>(*inst->prototype,
                                        std::move(strategy_impl));
    ConfigureStrategy(*session->strategy);
    if (!goal.empty()) {
      ASSIGN_OR_RETURN(core::JoinPredicate parsed_goal,
                       core::JoinPredicate::Parse(
                           session->engine.store().schema(), goal));
      session->goal = std::move(parsed_goal);
    }
    session_id = util::StrFormat("s%llu",
                                 static_cast<unsigned long long>(
                                     next_session_++));
    session->checkpoint.session_id = session_id;
    session->checkpoint.instance = instance_name;
    session->checkpoint.strategy = strategy;
    session->checkpoint.goal = goal;
    session->checkpoint.seed = seed;
    session->checkpoint.max_steps =
        max_steps != 0 ? max_steps : options_.default_max_steps;
    sessions_[session_id] = session;
    UpdateLiveGauge();
  }

  // Persist the empty transcript so a restart recovers even a session that
  // has not been labeled yet. On failure the session is rolled back — a
  // create either exists durably or not at all.
  {
    std::lock_guard<std::mutex> session_lock(session->mutex);
    util::Status persisted = PersistSession(*session);
    if (!persisted.ok()) {
      std::lock_guard<std::mutex> lock(mutex_);
      sessions_.erase(session_id);
      UpdateLiveGauge();
      return persisted;
    }
    result.session_id = session_id;
    result.num_tuples = session->engine.num_tuples();
    result.num_classes = session->engine.num_classes();
    result.done = session->engine.IsDone();
  }
  created_.fetch_add(1, std::memory_order_relaxed);
  JIM_COUNT(obs::kCounterServeSessionsCreated);
  return result;
}

util::Status SessionManager::PersistSession(Session& session) {
  if (options_.checkpoint_dir.empty()) return util::OkStatus();
  JIM_SPAN(obs::kHistServeCheckpointMicros);
  RETURN_IF_ERROR(EnsureCheckpointDir());
  return WriteCheckpoint(*env_, options_.checkpoint_dir, session.checkpoint,
                         options_.retry);
}

util::StatusOr<SessionManager::SuggestResult> SessionManager::Suggest(
    const std::string& session_id) {
  JIM_SPAN(obs::kHistServeSuggestMicros);
  ASSIGN_OR_RETURN(std::shared_ptr<Session> session, FindSession(session_id));
  std::lock_guard<std::mutex> lock(session->mutex);
  SuggestResult result;
  result.step = session->checkpoint.steps.size();
  if (session->engine.IsDone()) {
    result.done = true;
    return result;
  }
  if (!session->has_pending_pick) {
    // At most one PickClass per step: repeated suggests return the cached
    // pick, so polling never advances a randomized strategy's RNG (and the
    // checkpointed transcript stays replayable).
    session->pending_pick = session->strategy->PickClass(session->engine);
    session->has_pending_pick = true;
  }
  result.class_id = session->pending_pick;
  const core::TupleClass& tuple_class =
      session->engine.tuple_class(result.class_id);
  result.tuple_index = tuple_class.tuple_indices[0];
  result.class_size = tuple_class.size();
  const core::TupleStore& store = session->engine.store();
  result.values.reserve(store.num_attributes());
  for (size_t a = 0; a < store.num_attributes(); ++a) {
    result.values.push_back(
        store.DecodeValue(result.tuple_index, a).ToString());
  }
  return result;
}

util::StatusOr<SessionManager::LabelResult> SessionManager::Label(
    const std::string& session_id, size_t class_id, bool positive) {
  JIM_SPAN(obs::kHistServeLabelMicros);
  ASSIGN_OR_RETURN(std::shared_ptr<Session> session, FindSession(session_id));
  std::lock_guard<std::mutex> lock(session->mutex);
  if (session->engine.IsDone()) {
    return util::FailedPreconditionError(
        util::StrFormat("session '%s' is done", session_id.c_str()));
  }
  if (session->checkpoint.steps.size() >= session->checkpoint.max_steps) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    JIM_COUNT(obs::kCounterServeSessionsRejected);
    return util::ResourceExhaustedError(util::StrFormat(
        "session '%s' reached its step cap (%llu)", session_id.c_str(),
        static_cast<unsigned long long>(session->checkpoint.max_steps)));
  }
  if (class_id >= session->engine.num_classes()) {
    return util::InvalidArgumentError(util::StrFormat(
        "class %zu out of range (%zu classes)", class_id,
        session->engine.num_classes()));
  }

  // Label a clone, persist, then commit: a checkpoint-write failure leaves
  // the in-memory session exactly at its durable transcript (no rollback
  // path through the engine is ever needed), and a contradiction rejection
  // discards the clone without touching the session.
  core::InferenceEngine trial = session->engine;
  core::InferenceEngine::Stats before = trial.GetStats();
  RETURN_IF_ERROR(trial.SubmitClassLabel(
      class_id, positive ? core::Label::kPositive : core::Label::kNegative));
  core::InferenceEngine::Stats after = trial.GetStats();

  CheckpointStep step;
  step.suggested_class = session->has_pending_pick
                             ? static_cast<uint32_t>(session->pending_pick)
                             : kNoSuggestion;
  step.class_id = static_cast<uint32_t>(class_id);
  step.tuple_index = static_cast<uint32_t>(
      session->engine.tuple_class(class_id).tuple_indices[0]);
  step.answer = positive ? 1 : 0;
  session->checkpoint.steps.push_back(step);
  util::Status persisted = PersistSession(*session);
  if (!persisted.ok()) {
    session->checkpoint.steps.pop_back();
    return persisted;
  }
  session->engine = std::move(trial);
  session->has_pending_pick = false;

  LabelResult result;
  result.step = session->checkpoint.steps.size();
  result.pruned_classes =
      before.informative_classes - after.informative_classes;
  result.pruned_tuples = before.informative_tuples - after.informative_tuples;
  result.wasted = after.wasted_interactions > before.wasted_interactions;
  result.done = session->engine.IsDone();
  return result;
}

util::StatusOr<SessionManager::StatusResult> SessionManager::Status(
    const std::string& session_id) {
  ASSIGN_OR_RETURN(std::shared_ptr<Session> session, FindSession(session_id));
  std::lock_guard<std::mutex> lock(session->mutex);
  core::InferenceEngine::Stats stats = session->engine.GetStats();
  StatusResult result;
  result.steps = session->checkpoint.steps.size();
  result.done = session->engine.IsDone();
  result.num_tuples = stats.num_tuples;
  result.num_classes = stats.num_classes;
  result.informative_classes = stats.informative_classes;
  result.informative_tuples = stats.informative_tuples;
  result.strategy = session->checkpoint.strategy;
  result.instance = session->checkpoint.instance;
  return result;
}

util::StatusOr<SessionManager::ResultReply> SessionManager::Result(
    const std::string& session_id) {
  ASSIGN_OR_RETURN(std::shared_ptr<Session> session, FindSession(session_id));
  std::lock_guard<std::mutex> lock(session->mutex);
  ResultReply reply;
  reply.done = session->engine.IsDone();
  core::JoinPredicate predicate = session->engine.Result();
  reply.predicate = predicate.ToString();
  if (session->goal.has_value()) {
    reply.has_goal = true;
    reply.identified_goal =
        reply.done && core::InstanceEquivalent(session->engine.store(),
                                               predicate, *session->goal);
  }
  return reply;
}

util::Status SessionManager::Close(const std::string& session_id) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = sessions_.find(session_id);
    if (it == sessions_.end()) {
      return util::NotFoundError(
          util::StrFormat("no session '%s'", session_id.c_str()));
    }
    sessions_.erase(it);
    UpdateLiveGauge();
  }
  evicted_.fetch_add(1, std::memory_order_relaxed);
  JIM_COUNT(obs::kCounterServeSessionsEvicted);
  if (!options_.checkpoint_dir.empty()) {
    std::string path =
        options_.checkpoint_dir + "/" + CheckpointFileName(session_id);
    util::Status removed = env_->RemoveFile(path);
    if (!removed.ok() && removed.code() != util::StatusCode::kNotFound) {
      return removed;
    }
  }
  return util::OkStatus();
}

SessionManager::Stats SessionManager::GetStats() const {
  Stats stats;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stats.live = sessions_.size();
  }
  stats.created = created_.load(std::memory_order_relaxed);
  stats.recovered = recovered_.load(std::memory_order_relaxed);
  stats.evicted = evicted_.load(std::memory_order_relaxed);
  stats.rejected = rejected_.load(std::memory_order_relaxed);
  return stats;
}

util::StatusOr<std::shared_ptr<SessionManager::Session>>
SessionManager::ReplayCheckpoint(const SessionCheckpoint& checkpoint,
                                 const Instance& instance) const {
  ASSIGN_OR_RETURN(
      std::unique_ptr<core::Strategy> strategy,
      core::MakeStrategy(checkpoint.strategy, checkpoint.seed));
  auto session =
      std::make_shared<Session>(*instance.prototype, std::move(strategy));
  ConfigureStrategy(*session->strategy);
  if (!checkpoint.goal.empty()) {
    ASSIGN_OR_RETURN(core::JoinPredicate goal,
                     core::JoinPredicate::Parse(
                         session->engine.store().schema(), checkpoint.goal));
    session->goal = std::move(goal);
  }
  session->checkpoint = checkpoint;
  for (size_t i = 0; i < checkpoint.steps.size(); ++i) {
    const CheckpointStep& step = checkpoint.steps[i];
    if (session->engine.IsDone()) {
      return util::InternalError(util::StrFormat(
          "checkpoint replay diverged for session '%s': step %zu recorded "
          "after the session was done",
          checkpoint.session_id.c_str(), i));
    }
    if (step.suggested_class != kNoSuggestion) {
      // Re-drive the strategy exactly where the live daemon drove it, so
      // RNG-bearing strategies land in the same state the crash left them.
      size_t pick = session->strategy->PickClass(session->engine);
      if (pick != step.suggested_class) {
        return util::InternalError(util::StrFormat(
            "checkpoint replay diverged for session '%s': step %zu suggested "
            "class %zu, checkpoint recorded %u",
            checkpoint.session_id.c_str(), i, pick, step.suggested_class));
      }
    }
    if (step.class_id >= session->engine.num_classes()) {
      return util::InternalError(util::StrFormat(
          "checkpoint replay diverged for session '%s': step %zu labels "
          "class %u of %zu",
          checkpoint.session_id.c_str(), i, step.class_id,
          session->engine.num_classes()));
    }
    util::Status labeled = session->engine.SubmitClassLabel(
        step.class_id,
        step.answer != 0 ? core::Label::kPositive : core::Label::kNegative);
    if (!labeled.ok()) {
      return util::InternalError(util::StrFormat(
          "checkpoint replay diverged for session '%s': step %zu rejected: "
          "%s",
          checkpoint.session_id.c_str(), i, labeled.ToString().c_str()));
    }
  }
  return session;
}

util::Status SessionManager::RecoverSessions() {
  if (options_.checkpoint_dir.empty()) return util::OkStatus();
  JIM_SPAN(obs::kHistServeRecoverMicros);
  RETURN_IF_ERROR(EnsureCheckpointDir());
  ASSIGN_OR_RETURN(std::vector<std::string> entries,
                   env_->ListDirectory(options_.checkpoint_dir));
  // ListDirectory order is filesystem-dependent; sort so recovery work and
  // any failure it reports are deterministic.
  std::sort(entries.begin(), entries.end());
  std::vector<SessionCheckpoint> checkpoints;
  for (const std::string& entry : entries) {
    std::string path = options_.checkpoint_dir + "/" + entry;
    if (util::EndsWith(entry, ".tmp")) {
      // Stale atomic-write temp from a crash mid-checkpoint; the final file
      // (old or new) is authoritative.
      (void)env_->RemoveFile(path);
      continue;
    }
    if (!util::StartsWith(entry, "session_") ||
        !util::EndsWith(entry, ".jims")) {
      continue;
    }
    ASSIGN_OR_RETURN(SessionCheckpoint checkpoint,
                     ReadCheckpoint(*env_, path));
    checkpoints.push_back(std::move(checkpoint));
  }
  if (checkpoints.empty()) return util::OkStatus();

  // Open every referenced instance once, up front (serial: instance opens
  // share the manager maps), then fan the per-session replays out over a
  // dedicated pool — never exec::SharedPool(), which kFewSessions
  // strategies score on from inside the replay bodies.
  std::vector<const Instance*> instance_of(checkpoints.size(), nullptr);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (size_t i = 0; i < checkpoints.size(); ++i) {
      ASSIGN_OR_RETURN(Instance * instance,
                       GetOrOpenInstance(checkpoints[i].instance,
                                         options_.trusted_reopen));
      instance_of[i] = instance;
    }
  }
  std::vector<std::shared_ptr<Session>> replayed(checkpoints.size());
  std::vector<util::Status> statuses(checkpoints.size());
  exec::ThreadPool replay_pool(
      std::max<size_t>(1, std::min(checkpoints.size(),
                                   exec::DefaultThreads())));
  replay_pool.ParallelFor(checkpoints.size(), [&](size_t i, size_t) {
    auto session = ReplayCheckpoint(checkpoints[i], *instance_of[i]);
    if (session.ok()) {
      replayed[i] = std::move(session).value();
    } else {
      statuses[i] = session.status();
    }
  });
  for (const util::Status& status : statuses) {
    RETURN_IF_ERROR(status);
  }

  std::lock_guard<std::mutex> lock(mutex_);
  for (size_t i = 0; i < checkpoints.size(); ++i) {
    const std::string& session_id = checkpoints[i].session_id;
    if (sessions_.count(session_id) != 0) {
      return util::InternalError(util::StrFormat(
          "duplicate checkpointed session id '%s'", session_id.c_str()));
    }
    sessions_[session_id] = std::move(replayed[i]);
    next_session_ = std::max(next_session_, SessionIdNumber(session_id) + 1);
  }
  recovered_.fetch_add(checkpoints.size(), std::memory_order_relaxed);
  JIM_COUNT_N(obs::kCounterServeSessionsRecovered, checkpoints.size());
  UpdateLiveGauge();
  return util::OkStatus();
}

}  // namespace jim::serve
