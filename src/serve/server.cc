#include "serve/server.h"

#include <functional>
#include <utility>

#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "util/json_writer.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace jim::serve {

namespace {

std::string OkLine(const std::function<void(util::JsonWriter&)>& fill) {
  util::JsonWriter json;
  json.BeginObject();
  json.KeyValue("ok", true);
  fill(json);
  json.EndObject();
  return json.str();
}

}  // namespace

Server::Server(SessionManager* manager, std::unique_ptr<Transport> transport,
               ServerOptions options)
    : manager_(manager),
      transport_(std::move(transport)),
      options_(options),
      handler_pool_(options_.max_connections + 1) {}

Server::~Server() { Shutdown(); }

void Server::Start() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (started_) return;
    started_ = true;
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
}

void Server::AcceptLoop() {
  while (true) {
    util::StatusOr<std::unique_ptr<Connection>> accepted =
        transport_->Accept();
    if (!accepted.ok()) {
      if (accepted.status().code() == util::StatusCode::kUnavailable) {
        continue;  // transient (EMFILE etc.); the listener is still up
      }
      // kOutOfRange is the clean shutdown/exhaustion verdict; anything else
      // is worth a log line but ends the loop the same way.
      if (accepted.status().code() != util::StatusCode::kOutOfRange) {
        JIM_LOG(kWarning) << "serve: accept failed: "
                      << accepted.status().ToString();
      }
      return;
    }
    Connection* connection = accepted.value().release();
    uint64_t id;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      id = next_connection_++;
      connections_[id] = connection;
      if (stopping_) connection->ShutdownNow();
    }
    handler_pool_.Submit([this, id, connection] {
      HandleConnection(id, std::unique_ptr<Connection>(connection));
    });
  }
}

void Server::HandleConnection(uint64_t connection_id,
                              std::unique_ptr<Connection> connection) {
  bool shutdown_requested = false;
  while (!shutdown_requested) {
    util::StatusOr<std::string> line = connection->ReadLine();
    if (!line.ok()) break;
    if (line.value().empty()) continue;  // blank lines between requests
    std::string response = HandleLine(line.value(), &shutdown_requested);
    if (!connection->WriteLine(response).ok()) break;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    connections_.erase(connection_id);
  }
  connection.reset();
  // RequestShutdown only after the connection is deregistered and the
  // response flushed: the shutdown verb's client gets its "ok" line.
  if (shutdown_requested) RequestShutdown();
}

std::string Server::HandleLine(const std::string& line,
                               bool* shutdown_requested) {
  JIM_COUNT(obs::kCounterServeRequests);
  util::StatusOr<Request> parsed = ParseRequest(line);
  if (!parsed.ok()) {
    JIM_COUNT(obs::kCounterServeRequestErrors);
    return ErrorLine(parsed.status());
  }
  const Request& request = parsed.value();
  const std::string& verb = request.verb;

  auto fail = [](util::Status status) { return status; };
  util::Status error = util::OkStatus();
  std::string response;

  if (verb == "ping") {
    response = OkLine([](util::JsonWriter& json) {
      json.KeyValue("verb", "ping");
    });
  } else if (verb == "shutdown") {
    *shutdown_requested = true;
    response = OkLine([](util::JsonWriter& json) {
      json.KeyValue("verb", "shutdown");
    });
  } else if (verb == "stats") {
    SessionManager::Stats stats = manager_->GetStats();
    response = OkLine([&](util::JsonWriter& json) {
      json.KeyValue("live", stats.live);
      json.KeyValue("created", static_cast<int64_t>(stats.created));
      json.KeyValue("recovered", static_cast<int64_t>(stats.recovered));
      json.KeyValue("evicted", static_cast<int64_t>(stats.evicted));
      json.KeyValue("rejected", static_cast<int64_t>(stats.rejected));
      json.KeyValue("mode", ServingModeName(manager_->options().mode));
    });
  } else if (verb == "create") {
    auto created = manager_->Create(request.instance, request.strategy,
                                    request.goal, request.seed,
                                    request.max_steps);
    if (!created.ok()) {
      error = fail(created.status());
    } else {
      response = OkLine([&](util::JsonWriter& json) {
        json.KeyValue("session", created->session_id);
        json.KeyValue("num_tuples", created->num_tuples);
        json.KeyValue("num_classes", created->num_classes);
        json.KeyValue("done", created->done);
      });
    }
  } else if (verb == "suggest" || verb == "label" || verb == "status" ||
             verb == "result" || verb == "close") {
    if (request.session.empty()) {
      error = util::InvalidArgumentError(
          "request is missing the 'session' member");
    } else if (verb == "suggest") {
      auto suggested = manager_->Suggest(request.session);
      if (!suggested.ok()) {
        error = fail(suggested.status());
      } else {
        response = OkLine([&](util::JsonWriter& json) {
          json.KeyValue("done", suggested->done);
          json.KeyValue("step", suggested->step);
          if (!suggested->done) {
            json.KeyValue("class", suggested->class_id);
            json.KeyValue("tuple", suggested->tuple_index);
            json.KeyValue("size", suggested->class_size);
            json.Key("values");
            json.BeginArray();
            for (const std::string& value : suggested->values) {
              json.Value(value);
            }
            json.EndArray();
          }
        });
      }
    } else if (verb == "label") {
      if (!request.has_class_id || !request.has_answer) {
        error = util::InvalidArgumentError(
            "label needs 'class' and 'answer' members");
      } else {
        auto labeled = manager_->Label(request.session, request.class_id,
                                       request.answer);
        if (!labeled.ok()) {
          error = fail(labeled.status());
        } else {
          response = OkLine([&](util::JsonWriter& json) {
            json.KeyValue("step", labeled->step);
            json.KeyValue("pruned_classes", labeled->pruned_classes);
            json.KeyValue("pruned_tuples", labeled->pruned_tuples);
            json.KeyValue("wasted", labeled->wasted);
            json.KeyValue("done", labeled->done);
          });
        }
      }
    } else if (verb == "status") {
      auto status = manager_->Status(request.session);
      if (!status.ok()) {
        error = fail(status.status());
      } else {
        response = OkLine([&](util::JsonWriter& json) {
          json.KeyValue("steps", status->steps);
          json.KeyValue("done", status->done);
          json.KeyValue("num_tuples", status->num_tuples);
          json.KeyValue("num_classes", status->num_classes);
          json.KeyValue("informative_classes", status->informative_classes);
          json.KeyValue("informative_tuples", status->informative_tuples);
          json.KeyValue("strategy", status->strategy);
          json.KeyValue("instance", status->instance);
        });
      }
    } else if (verb == "result") {
      auto result = manager_->Result(request.session);
      if (!result.ok()) {
        error = fail(result.status());
      } else {
        response = OkLine([&](util::JsonWriter& json) {
          json.KeyValue("done", result->done);
          json.KeyValue("predicate", result->predicate);
          json.KeyValue("has_goal", result->has_goal);
          if (result->has_goal) {
            json.KeyValue("identified_goal", result->identified_goal);
          }
        });
      }
    } else {  // close
      util::Status closed = manager_->Close(request.session);
      if (!closed.ok()) {
        error = fail(closed);
      } else {
        response = OkLine([&](util::JsonWriter& json) {
          json.KeyValue("session", request.session);
          json.KeyValue("closed", true);
        });
      }
    }
  } else {
    error = util::InvalidArgumentError(
        util::StrFormat("unknown verb '%s'", verb.c_str()));
  }

  if (!error.ok()) {
    JIM_COUNT(obs::kCounterServeRequestErrors);
    return ErrorLine(error);
  }
  return response;
}

void Server::RequestShutdown() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (stopping_) return;
  stopping_ = true;
  transport_->ShutdownNow();
  for (auto& [id, connection] : connections_) connection->ShutdownNow();
}

void Server::Wait() {
  std::lock_guard<std::mutex> lock(wait_mutex_);
  if (accept_thread_.joinable()) accept_thread_.join();
  // All Submits come from the accept thread, so after the join nothing new
  // can enter the pool and Drain observes the final set of handlers.
  handler_pool_.Drain();
}

void Server::Shutdown() {
  RequestShutdown();
  Wait();
}

}  // namespace jim::serve
