#ifndef JIM_SERVE_SERVER_H_
#define JIM_SERVE_SERVER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "exec/thread_pool.h"
#include "serve/protocol.h"
#include "serve/session_manager.h"
#include "serve/transport.h"
#include "util/status.h"

namespace jim::serve {

struct ServerOptions {
  /// Connections served concurrently; further accepted connections queue on
  /// the handler pool until a slot frees (backpressure, not rejection).
  size_t max_connections = 32;
};

/// The daemon's request loop: accepts connections off a Transport, runs one
/// handler per connection on an exec::ThreadPool, and maps protocol verbs
/// onto a SessionManager. Responses to session verbs deliberately carry no
/// session id — two runs that drive the same session configurations produce
/// byte-identical suggest/label/status/result lines even when the daemons
/// minted different ids, which is what the recovery tests diff.
///
/// Lifecycle: Start() spawns the accept thread; Shutdown() (or a client's
/// `shutdown` verb) stops the transport, unblocks every connection, and
/// drains the handlers; Wait() blocks until that teardown completes. All
/// three are safe to call from any thread, once.
class Server {
 public:
  /// `manager` and `transport` must outlive the server. The transport is
  /// owned from here on.
  Server(SessionManager* manager, std::unique_ptr<Transport> transport,
         ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  const std::string& address() const { return transport_->address(); }

  /// Spawns the accept loop and returns.
  void Start();

  /// Initiates teardown: no new connections, live ones unblocked. Returns
  /// without waiting (a handler thread may call this — the `shutdown`
  /// verb's path — without deadlocking on itself).
  void RequestShutdown();

  /// Blocks until the accept loop has exited and every handler finished.
  void Wait();

  /// RequestShutdown + Wait, for external callers.
  void Shutdown();

  /// Handles one already-parsed request line (exposed for tests; the
  /// connection handlers funnel through this). Always returns a response
  /// line. Sets `*shutdown_requested` when the verb was `shutdown`.
  std::string HandleLine(const std::string& line, bool* shutdown_requested);

 private:
  void AcceptLoop();
  void HandleConnection(uint64_t connection_id,
                        std::unique_ptr<Connection> connection);

  SessionManager* manager_;
  std::unique_ptr<Transport> transport_;
  ServerOptions options_;
  exec::ThreadPool handler_pool_;

  std::mutex mutex_;
  /// Live connections by id, so RequestShutdown can unblock their reads.
  /// Values are borrowed: the handler owns its connection and deregisters
  /// before destroying it.
  std::map<uint64_t, Connection*> connections_;
  uint64_t next_connection_ = 1;
  bool stopping_ = false;
  bool started_ = false;
  std::thread accept_thread_;
  /// Serializes Wait/Shutdown callers around the join + drain.
  std::mutex wait_mutex_;
};

}  // namespace jim::serve

#endif  // JIM_SERVE_SERVER_H_
