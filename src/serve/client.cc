#include "serve/client.h"

#include "util/json_writer.h"

namespace jim::serve {

namespace {

std::string SessionVerbLine(std::string_view verb,
                            const std::string& session) {
  util::JsonWriter json;
  json.BeginObject();
  json.KeyValue("verb", verb);
  json.KeyValue("session", session);
  json.EndObject();
  return json.str();
}

}  // namespace

std::string SuggestLine(const std::string& session) {
  return SessionVerbLine("suggest", session);
}

std::string LabelLine(const std::string& session, uint64_t class_id,
                      bool answer) {
  util::JsonWriter json;
  json.BeginObject();
  json.KeyValue("verb", "label");
  json.KeyValue("session", session);
  json.KeyValue("class", class_id);
  json.KeyValue("answer", answer);
  json.EndObject();
  return json.str();
}

std::string StatusLine(const std::string& session) {
  return SessionVerbLine("status", session);
}

std::string ResultLine(const std::string& session) {
  return SessionVerbLine("result", session);
}

std::string CloseLine(const std::string& session) {
  return SessionVerbLine("close", session);
}

util::StatusOr<Client> Client::ConnectTcp(uint16_t port) {
  ASSIGN_OR_RETURN(std::unique_ptr<Connection> connection,
                   serve::ConnectTcp(port));
  return Client(std::move(connection));
}

util::StatusOr<std::string> Client::CallRaw(const std::string& request_line) {
  RETURN_IF_ERROR(connection_->WriteLine(request_line));
  return connection_->ReadLine();
}

util::StatusOr<util::JsonValue> Client::Call(const std::string& request_line) {
  ASSIGN_OR_RETURN(std::string response_line, CallRaw(request_line));
  ASSIGN_OR_RETURN(util::JsonValue response, util::ParseJson(response_line));
  if (!response.is_object()) {
    return util::InternalError("response is not a JSON object");
  }
  if (!response.GetBool("ok", false)) {
    return StatusFromErrorName(response.GetString("error", "INTERNAL"),
                               response.GetString("message", response_line));
  }
  return response;
}

util::StatusOr<std::string> Client::Create(const Request& create_request) {
  Request request = create_request;
  request.verb = "create";
  ASSIGN_OR_RETURN(util::JsonValue response,
                   Call(RequestToLine(request)));
  std::string session = response.GetString("session", "");
  if (session.empty()) {
    return util::InternalError("create response carries no session id");
  }
  return session;
}

util::StatusOr<util::JsonValue> Client::Suggest(const std::string& session) {
  return Call(SuggestLine(session));
}

util::StatusOr<util::JsonValue> Client::Label(const std::string& session,
                                              uint64_t class_id, bool answer) {
  return Call(LabelLine(session, class_id, answer));
}

util::StatusOr<util::JsonValue> Client::Status(const std::string& session) {
  return Call(StatusLine(session));
}

util::StatusOr<util::JsonValue> Client::Result(const std::string& session) {
  return Call(ResultLine(session));
}

util::Status Client::Close(const std::string& session) {
  util::StatusOr<util::JsonValue> response = Call(CloseLine(session));
  return response.ok() ? util::OkStatus() : response.status();
}

}  // namespace jim::serve
