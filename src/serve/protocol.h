#ifndef JIM_SERVE_PROTOCOL_H_
#define JIM_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

namespace jim::serve {

/// One request of the newline-delimited-JSON serving protocol. Every
/// request is a single-line JSON object with a `verb` member; the other
/// members a verb reads are documented in src/serve/README.md:
///
///   {"verb":"create","instance":"travel.jimc","strategy":"lookahead-entropy",
///    "goal":"To=City","seed":7,"max_steps":64}
///   {"verb":"suggest","session":"s1"}
///   {"verb":"label","session":"s1","class":12,"answer":true}
///   {"verb":"status","session":"s1"}   ... likewise result / close
///   {"verb":"ping"} {"verb":"stats"} {"verb":"shutdown"}
///
/// Responses are single-line JSON objects with an `ok` member; errors carry
/// the stable StatusCode name plus the message:
///   {"ok":false,"error":"RESOURCE_EXHAUSTED","message":"..."}
struct Request {
  std::string verb;
  std::string session;
  std::string instance;  ///< empty = the daemon's default instance
  std::string strategy = "lookahead-entropy";
  std::string goal;      ///< optional reference goal (enables goal checks)
  uint64_t seed = 1;
  uint64_t max_steps = 0;  ///< 0 = the daemon's default per-session cap
  uint64_t class_id = 0;
  bool has_class_id = false;
  bool answer = false;
  bool has_answer = false;
};

/// Parses one request line. kInvalidArgument on malformed JSON, a missing /
/// non-string `verb`, or a wrongly-typed member.
util::StatusOr<Request> ParseRequest(std::string_view line);

/// Serializes `request` back to a protocol line (used by the client driver;
/// only members that deviate from their defaults are emitted).
std::string RequestToLine(const Request& request);

/// The error-response line for `status`:
///   {"ok":false,"error":"<CODE>","message":"<message>"}
std::string ErrorLine(const util::Status& status);

/// Maps an error-response object's `error` name back to a typed Status
/// (inverse of ErrorLine; unknown names map to kInternal).
util::Status StatusFromErrorName(std::string_view name, std::string message);

}  // namespace jim::serve

#endif  // JIM_SERVE_PROTOCOL_H_
