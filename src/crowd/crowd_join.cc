#include "crowd/crowd_join.h"

#include <cmath>

#include "core/engine.h"
#include "core/oracle.h"
#include "util/logging.h"
#include "util/rng.h"

namespace jim::crowd {

namespace {

/// One majority-voted answer; updates the accounting in `result`.
core::Label AskCrowd(const rel::Tuple& tuple, const core::JoinPredicate& goal,
                     const CrowdOptions& options, util::Rng& rng,
                     CrowdRunResult* result) {
  const bool truth = goal.Selects(tuple);
  size_t wrong_votes = 0;
  for (size_t w = 0; w < options.workers_per_question; ++w) {
    if (rng.Bernoulli(options.worker_error_rate)) ++wrong_votes;
  }
  ++result->questions;
  result->worker_answers += options.workers_per_question;
  result->total_cost += static_cast<double>(options.workers_per_question) *
                        options.price_per_answer;
  const bool majority_wrong = wrong_votes * 2 > options.workers_per_question;
  if (majority_wrong) ++result->majority_errors;
  const bool answer = majority_wrong ? !truth : truth;
  return answer ? core::Label::kPositive : core::Label::kNegative;
}

}  // namespace

double MajorityErrorRate(size_t workers, double error_rate) {
  // P[#wrong > workers/2], #wrong ~ Binomial(workers, error_rate).
  double total = 0;
  for (size_t k = workers / 2 + 1; k <= workers; ++k) {
    // C(workers, k) computed iteratively in doubles (workers is small).
    double binom = 1;
    for (size_t i = 0; i < k; ++i) {
      binom *= static_cast<double>(workers - i) / static_cast<double>(i + 1);
    }
    total += binom * std::pow(error_rate, static_cast<double>(k)) *
             std::pow(1 - error_rate, static_cast<double>(workers - k));
  }
  return total;
}

CrowdRunResult RunCrowdJim(std::shared_ptr<const core::TupleStore> store,
                           const core::JoinPredicate& goal,
                           core::Strategy& strategy,
                           const CrowdOptions& options) {
  JIM_CHECK(options.workers_per_question % 2 == 1)
      << "majority voting needs an odd worker count";
  core::InferenceEngine engine(store);
  util::Rng rng(options.seed);
  CrowdRunResult result;

  while (!engine.IsDone()) {
    const size_t class_id = strategy.PickClass(engine);
    const size_t tuple_index = engine.tuple_class(class_id).tuple_indices[0];
    const core::Label answer = AskCrowd(store->DecodeTuple(tuple_index), goal,
                                        options, rng, &result);
    // An informative class accepts either answer, so this cannot fail.
    JIM_CHECK_OK(engine.SubmitClassLabel(class_id, answer));
  }
  result.correct = core::InstanceEquivalent(*store, engine.Result(), goal);
  return result;
}

CrowdRunResult RunCrowdJim(std::shared_ptr<const rel::Relation> relation,
                           const core::JoinPredicate& goal,
                           core::Strategy& strategy,
                           const CrowdOptions& options) {
  return RunCrowdJim(core::MakeRelationStore(std::move(relation)), goal,
                     strategy, options);
}

CrowdRunResult RunLabelEverything(
    std::shared_ptr<const rel::Relation> relation,
    const core::JoinPredicate& goal, const CrowdOptions& options) {
  JIM_CHECK(options.workers_per_question % 2 == 1)
      << "majority voting needs an odd worker count";
  util::Rng rng(options.seed);
  CrowdRunResult result;
  bool all_correct = true;
  for (size_t t = 0; t < relation->num_rows(); ++t) {
    const core::Label answer =
        AskCrowd(relation->row(t), goal, options, rng, &result);
    const bool truth = goal.Selects(relation->row(t));
    if ((answer == core::Label::kPositive) != truth) all_correct = false;
  }
  result.correct = all_correct;
  return result;
}

}  // namespace jim::crowd
