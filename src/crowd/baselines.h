#ifndef JIM_CROWD_BASELINES_H_
#define JIM_CROWD_BASELINES_H_

#include "core/join_predicate.h"
#include "crowd/crowd_join.h"
#include "relational/relation.h"

namespace jim::crowd {

/// The transitivity-exploiting crowd join of Wang et al. [5] ("Leveraging
/// transitive relations for crowdsourced joins", SIGMOD 2013), rebuilt as
/// the paper's comparison point. It targets entity-resolution-style joins:
/// the goal is an *equivalence* on items, so answers propagate —
///   A≈B ∧ B≈C ⇒ A≈C        (positive transitivity)
///   A≈B ∧ B≉C ⇒ A≉C        (anti-transitivity)
/// and implied pair questions are never paid for.
///
/// Contrast with JIM (paper §1): this baseline only handles binary
/// same-entity joins; JIM handles arbitrary n-ary join *predicates* and
/// additionally uses labels to choose the next question.
///
/// `items` are the records to be matched (e.g. the 81 Set cards);
/// `pair_goal` is the ground-truth matching predicate over the pair schema
/// (left item ++ right item) and must be an equivalence — e.g. "same color".
/// Pairs are asked in a random order (as in [5], which orders by machine
/// match probability; with no machine scores we randomize).
CrowdRunResult RunTransitiveCrowdJoin(const rel::Relation& items,
                                      const core::JoinPredicate& pair_goal,
                                      const CrowdOptions& options);

/// The same task without transitivity: ask all n·(n-1)/2 pairs. The naive
/// cost the transitive baseline and JIM both beat.
CrowdRunResult RunAllPairsCrowdJoin(const rel::Relation& items,
                                    const core::JoinPredicate& pair_goal,
                                    const CrowdOptions& options);

}  // namespace jim::crowd

#endif  // JIM_CROWD_BASELINES_H_
