#ifndef JIM_CROWD_CROWD_JOIN_H_
#define JIM_CROWD_CROWD_JOIN_H_

#include <memory>

#include "core/join_predicate.h"
#include "core/strategies.h"
#include "core/tuple_store.h"
#include "relational/relation.h"
#include "util/status.h"

namespace jim::crowd {

/// Crowdsourcing parameters. The paper motivates JIM with crowdsourced
/// joins: "minimizing the number of interactions entails lower financial
/// costs" — these options model that cost.
struct CrowdOptions {
  /// Workers asked per membership question (majority vote; must be odd).
  size_t workers_per_question = 3;
  /// Probability an individual worker answers wrong (i.i.d.).
  double worker_error_rate = 0.1;
  /// Price paid per single worker answer, in dollars.
  double price_per_answer = 0.05;
  uint64_t seed = 5;
};

/// Outcome of a crowd-powered join task.
struct CrowdRunResult {
  /// Distinct membership questions issued to the crowd.
  size_t questions = 0;
  /// Individual worker answers collected (= questions × workers).
  size_t worker_answers = 0;
  /// Total dollars spent (= worker_answers × price_per_answer).
  double total_cost = 0;
  /// Majority votes that disagreed with the ground truth.
  size_t majority_errors = 0;
  /// Whether the final output matches the ground truth exactly
  /// (instance-equivalent predicate, or exact pair clustering for the
  /// baselines).
  bool correct = false;
};

/// Probability that a majority of `workers` i.i.d. voters each erring with
/// probability `error_rate` is wrong (the effective per-question error).
double MajorityErrorRate(size_t workers, double error_rate);

/// JIM with a crowd of workers: the strategy picks membership questions,
/// each is answered by majority vote over `workers_per_question` noisy
/// workers. Questions JIM prunes are never paid for — this is the paper's
/// cost argument.
CrowdRunResult RunCrowdJim(std::shared_ptr<const core::TupleStore> store,
                           const core::JoinPredicate& goal,
                           core::Strategy& strategy,
                           const CrowdOptions& options);
CrowdRunResult RunCrowdJim(std::shared_ptr<const rel::Relation> relation,
                           const core::JoinPredicate& goal,
                           core::Strategy& strategy,
                           const CrowdOptions& options);

/// Baseline: ask the crowd about *every* tuple of the instance (no
/// inference); the result is the set of tuples voted positive. This is what
/// a naive crowdsourced join pays.
CrowdRunResult RunLabelEverything(
    std::shared_ptr<const rel::Relation> relation,
    const core::JoinPredicate& goal, const CrowdOptions& options);

}  // namespace jim::crowd

#endif  // JIM_CROWD_CROWD_JOIN_H_
