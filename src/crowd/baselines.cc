#include "crowd/baselines.h"

#include <optional>
#include <vector>

#include "lattice/union_find.h"
#include "util/logging.h"
#include "util/rng.h"

namespace jim::crowd {

namespace {

/// The pair tuple (left item ++ right item) for goal evaluation.
rel::Tuple PairTuple(const rel::Relation& items, size_t a, size_t b) {
  rel::Tuple pair = items.row(a);
  const rel::Tuple& right = items.row(b);
  pair.insert(pair.end(), right.begin(), right.end());
  return pair;
}

/// Asks the crowd whether items a and b match; accounting into `result`.
bool AskPair(const rel::Relation& items, size_t a, size_t b,
             const core::JoinPredicate& pair_goal,
             const CrowdOptions& options, util::Rng& rng,
             CrowdRunResult* result) {
  const bool truth = pair_goal.Selects(PairTuple(items, a, b));
  size_t wrong_votes = 0;
  for (size_t w = 0; w < options.workers_per_question; ++w) {
    if (rng.Bernoulli(options.worker_error_rate)) ++wrong_votes;
  }
  ++result->questions;
  result->worker_answers += options.workers_per_question;
  result->total_cost += static_cast<double>(options.workers_per_question) *
                        options.price_per_answer;
  const bool majority_wrong = wrong_votes * 2 > options.workers_per_question;
  if (majority_wrong) ++result->majority_errors;
  return majority_wrong ? !truth : truth;
}

/// Checks the inferred clustering against the ground-truth matching.
bool ClusteringMatchesGoal(const rel::Relation& items,
                           const core::JoinPredicate& pair_goal,
                           lat::UnionFind& clusters) {
  for (size_t a = 0; a < items.num_rows(); ++a) {
    for (size_t b = a + 1; b < items.num_rows(); ++b) {
      const bool truth = pair_goal.Selects(PairTuple(items, a, b));
      if (truth != clusters.Connected(a, b)) return false;
    }
  }
  return true;
}

}  // namespace

CrowdRunResult RunTransitiveCrowdJoin(const rel::Relation& items,
                                      const core::JoinPredicate& pair_goal,
                                      const CrowdOptions& options) {
  JIM_CHECK(options.workers_per_question % 2 == 1);
  const size_t n = items.num_rows();
  util::Rng rng(options.seed);
  CrowdRunResult result;

  // Random question order over unordered pairs, as in [5] minus the machine
  // pre-scoring.
  std::vector<std::pair<size_t, size_t>> pairs;
  pairs.reserve(n * (n - 1) / 2);
  for (size_t a = 0; a < n; ++a) {
    for (size_t b = a + 1; b < n; ++b) pairs.emplace_back(a, b);
  }
  rng.Shuffle(pairs);

  lat::UnionFind clusters(n);
  // cannot_link[cluster_root] = roots known distinct from it. Kept sparse:
  // re-rooted lazily after unions.
  std::vector<std::vector<size_t>> cannot_link(n);

  auto known_unmatched = [&](size_t a, size_t b) {
    const size_t ra = clusters.Find(a);
    const size_t rb = clusters.Find(b);
    for (size_t other : cannot_link[ra]) {
      if (clusters.Find(other) == rb) return true;
    }
    return false;
  };

  for (const auto& [a, b] : pairs) {
    if (clusters.Connected(a, b)) continue;   // implied positive: free
    if (known_unmatched(a, b)) continue;      // implied negative: free
    const bool matched = AskPair(items, a, b, pair_goal, options, rng, &result);
    if (matched) {
      const size_t ra = clusters.Find(a);
      const size_t rb = clusters.Find(b);
      clusters.Union(a, b);
      const size_t merged = clusters.Find(a);
      // Merge the cannot-link lists onto the new root.
      if (merged != ra) {
        cannot_link[merged].insert(cannot_link[merged].end(),
                                   cannot_link[ra].begin(),
                                   cannot_link[ra].end());
      }
      if (merged != rb) {
        cannot_link[merged].insert(cannot_link[merged].end(),
                                   cannot_link[rb].begin(),
                                   cannot_link[rb].end());
      }
    } else {
      const size_t ra = clusters.Find(a);
      const size_t rb = clusters.Find(b);
      cannot_link[ra].push_back(rb);
      cannot_link[rb].push_back(ra);
    }
  }

  result.correct = ClusteringMatchesGoal(items, pair_goal, clusters);
  return result;
}

CrowdRunResult RunAllPairsCrowdJoin(const rel::Relation& items,
                                    const core::JoinPredicate& pair_goal,
                                    const CrowdOptions& options) {
  JIM_CHECK(options.workers_per_question % 2 == 1);
  const size_t n = items.num_rows();
  util::Rng rng(options.seed);
  CrowdRunResult result;
  bool all_correct = true;
  for (size_t a = 0; a < n; ++a) {
    for (size_t b = a + 1; b < n; ++b) {
      const bool truth = pair_goal.Selects(PairTuple(items, a, b));
      const bool answer =
          AskPair(items, a, b, pair_goal, options, rng, &result);
      if (answer != truth) all_correct = false;
    }
  }
  result.correct = all_correct;
  return result;
}

}  // namespace jim::crowd
