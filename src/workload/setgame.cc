#include "workload/setgame.h"

#include <algorithm>

#include "relational/join.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace jim::workload {

namespace {

const char* kNumbers[] = {"one", "two", "three"};
const char* kSymbols[] = {"diamond", "squiggle", "oval"};
const char* kShadings[] = {"solid", "striped", "open"};
const char* kColors[] = {"red", "green", "purple"};
const char* kFeatures[] = {"Number", "Symbol", "Shading", "Color"};

}  // namespace

rel::Relation AllSetCards() {
  rel::Relation cards{
      "Cards",
      rel::Schema::FromNames({"Number", "Symbol", "Shading", "Color"})};
  using rel::Value;
  for (const char* number : kNumbers) {
    for (const char* symbol : kSymbols) {
      for (const char* shading : kShadings) {
        for (const char* color : kColors) {
          JIM_CHECK_OK(cards.AddRow({Value(number), Value(symbol),
                                     Value(shading), Value(color)}));
        }
      }
    }
  }
  JIM_CHECK_EQ(cards.num_rows(), size_t{81});
  return cards;
}

std::shared_ptr<const rel::Relation> SetPairInstance(size_t sample_size,
                                                     util::Rng& rng) {
  const rel::Relation cards = AllSetCards();
  const rel::JoinOptions options{.left_qualifier = "Left",
                                 .right_qualifier = "Right",
                                 .result_name = "CardPairs"};
  util::StatusOr<rel::Relation> pairs =
      (sample_size == 0 || sample_size >= 81 * 81)
          ? rel::CrossProduct(cards, cards, options)
          : rel::SampledCrossProduct(cards, cards, sample_size, rng, options);
  JIM_CHECK(pairs.ok());
  return std::make_shared<const rel::Relation>(*std::move(pairs));
}

std::shared_ptr<const core::TupleStore> SetPairStore(size_t sample_size,
                                                     util::Rng& rng) {
  return core::MakeRelationStore(SetPairInstance(sample_size, rng));
}

core::JoinPredicate SameColorAndShadingGoal(const rel::Schema& pair_schema) {
  auto parsed = core::JoinPredicate::Parse(
      pair_schema, "Left.Color=Right.Color && Left.Shading=Right.Shading");
  JIM_CHECK(parsed.ok());
  return *std::move(parsed);
}

std::vector<SetGoal> AllFeatureMatchGoals(const rel::Schema& pair_schema) {
  std::vector<SetGoal> goals;
  for (unsigned mask = 1; mask < 16; ++mask) {
    std::vector<std::string> conjuncts;
    std::vector<std::string> feature_names;
    for (unsigned f = 0; f < 4; ++f) {
      if ((mask >> f) & 1) {
        conjuncts.push_back(util::StrFormat("Left.%s=Right.%s", kFeatures[f],
                                            kFeatures[f]));
        feature_names.push_back(kFeatures[f]);
      }
    }
    auto parsed =
        core::JoinPredicate::Parse(pair_schema, util::Join(conjuncts, " && "));
    JIM_CHECK(parsed.ok());
    goals.push_back(
        SetGoal{"same " + util::Join(feature_names, "+"), *std::move(parsed)});
  }
  std::stable_sort(goals.begin(), goals.end(),
                   [](const SetGoal& a, const SetGoal& b) {
                     return a.predicate.NumConstraints() <
                            b.predicate.NumConstraints();
                   });
  return goals;
}

}  // namespace jim::workload
