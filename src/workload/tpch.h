#ifndef JIM_WORKLOAD_TPCH_H_
#define JIM_WORKLOAD_TPCH_H_

#include <string>
#include <vector>

#include "relational/catalog.h"
#include "util/rng.h"

namespace jim::workload {

/// Scale knobs for the miniature TPC-H generator. Defaults give a catalog
/// small enough that cross products stay interactive but large enough that
/// key/foreign-key joins are non-trivial to infer.
struct TpchSpec {
  size_t num_regions = 5;
  size_t num_nations = 25;
  size_t num_suppliers = 20;
  size_t num_customers = 50;
  size_t num_parts = 40;
  size_t num_partsupp_per_part = 2;
  size_t num_orders = 100;
  size_t num_lineitems_per_order = 3;
};

/// Builds a miniature TPC-H database (the benchmark the paper's companion
/// evaluation [3] uses). Eight relations with realistic key/foreign-key
/// structure and TPC-H-style column names:
///
///   region  (r_regionkey, r_name)
///   nation  (n_nationkey, n_name, n_regionkey)
///   supplier(s_suppkey, s_name, s_nationkey, s_acctbal)
///   customer(c_custkey, c_name, c_nationkey, c_acctbal)
///   part    (p_partkey, p_name, p_retailprice)
///   partsupp(ps_partkey, ps_suppkey, ps_supplycost)
///   orders  (o_orderkey, o_custkey, o_totalprice)
///   lineitem(l_orderkey, l_partkey, l_suppkey, l_quantity)
///
/// All keys are dense INT64s; foreign keys reference existing keys, so the
/// natural equi-joins (customer ⋈ orders on custkey etc.) are exactly the
/// goal queries bench S3 plants.
rel::Catalog MakeTpchCatalog(const TpchSpec& spec, util::Rng& rng);

/// A named TPC-H join-inference scenario: the relations to denormalize and
/// the goal join predicate over the universal table, written against
/// qualified attribute names (parseable by JoinPredicate::Parse).
struct TpchScenario {
  std::string name;
  std::vector<std::string> relations;
  std::string goal;
  /// Number of equality constraints in the goal (difficulty proxy).
  size_t goal_constraints;
};

/// The scenario suite used by bench S3, in increasing goal complexity:
/// 1-constraint FK joins up to the 4-constraint chain
/// customer–orders–lineitem–part.
std::vector<TpchScenario> TpchScenarios();

}  // namespace jim::workload

#endif  // JIM_WORKLOAD_TPCH_H_
