#ifndef JIM_WORKLOAD_SETGAME_H_
#define JIM_WORKLOAD_SETGAME_H_

#include <memory>
#include <string>
#include <vector>

#include "core/join_predicate.h"
#include "core/tuple_store.h"
#include "relational/relation.h"
#include "util/rng.h"

namespace jim::workload {

/// The last part of the demonstration: "Joining sets of pictures" — the 81
/// cards of the game Set¹, which "vary in four features: number (one, two,
/// or three), symbol (diamond, squiggle, oval), shading (solid, striped, or
/// open), and color (red, green, or purple)". JIM infers joins between
/// tagged pictures by treating each card's tags as a tuple of four
/// attributes and each *pair* of cards as one candidate tuple.
///
/// ¹ http://www.setgame.com/set (paper footnote 1)

/// The full deck: 81 rows over (Number, Symbol, Shading, Color), all STRING.
rel::Relation AllSetCards();

/// The pair instance Left × Right: 81 × 81 = 6561 candidate tuples over
/// 8 attributes (Left.Number, ..., Right.Color). When `sample_size` > 0 and
/// smaller than 6561, a uniform sample is drawn instead.
std::shared_ptr<const rel::Relation> SetPairInstance(size_t sample_size,
                                                     util::Rng& rng);

/// The pair instance behind the TupleStore seam (encoded once) — what the
/// setgame benches and examples hand to the engine.
std::shared_ptr<const core::TupleStore> SetPairStore(size_t sample_size,
                                                     util::Rng& rng);

/// The demo's example goal on the pair instance: "select the pairs of
/// pictures having the same color and the same shading".
core::JoinPredicate SameColorAndShadingGoal(const rel::Schema& pair_schema);

/// All 15 non-trivial feature-match goals (every non-empty subset of the
/// four features, e.g. "same number", "same symbol and color", ...),
/// in increasing constraint count. Names like "same Color+Shading".
struct SetGoal {
  std::string name;
  core::JoinPredicate predicate;
};
std::vector<SetGoal> AllFeatureMatchGoals(const rel::Schema& pair_schema);

}  // namespace jim::workload

#endif  // JIM_WORKLOAD_SETGAME_H_
