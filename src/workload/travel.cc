#include "workload/travel.h"

#include <utility>

#include "relational/join.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace jim::workload {

namespace {

rel::Relation MakeFlights() {
  rel::Relation flights{
      "Flights", rel::Schema::FromNames({"From", "To", "Airline"})};
  using rel::Value;
  // The four distinct flights appearing in Figure 1, in order.
  const char* rows[][3] = {
      {"Paris", "Lille", "AF"},
      {"Lille", "NYC", "AA"},
      {"NYC", "Paris", "AA"},
      {"Paris", "NYC", "AF"},
  };
  for (const auto& row : rows) {
    JIM_CHECK_OK(
        flights.AddRow({Value(row[0]), Value(row[1]), Value(row[2])}));
  }
  return flights;
}

rel::Relation MakeHotels() {
  rel::Relation hotels{"Hotels", rel::Schema::FromNames({"City", "Discount"})};
  using rel::Value;
  const char* rows[][2] = {
      {"NYC", "AA"},
      {"Paris", "None"},
      {"Lille", "AF"},
  };
  for (const auto& row : rows) {
    JIM_CHECK_OK(hotels.AddRow({Value(row[0]), Value(row[1])}));
  }
  return hotels;
}

}  // namespace

rel::Relation Figure1Instance() {
  // Figure 1 lists Flights × Hotels in row-major order (flight-major), so
  // build it exactly that way.
  auto product = rel::CrossProduct(
      MakeFlights(), MakeHotels(),
      rel::JoinOptions{.left_qualifier = "", .right_qualifier = "",
                       .result_name = "FlightHotel"});
  JIM_CHECK(product.ok());
  JIM_CHECK_EQ(product->num_rows(), size_t{12});
  return *std::move(product);
}

std::shared_ptr<const rel::Relation> Figure1InstancePtr() {
  return std::make_shared<const rel::Relation>(Figure1Instance());
}

std::shared_ptr<const core::TupleStore> Figure1StorePtr() {
  return core::MakeRelationStore(Figure1InstancePtr());
}

rel::Catalog TravelCatalog() {
  rel::Catalog catalog;
  JIM_CHECK_OK(catalog.Add(MakeFlights()));
  JIM_CHECK_OK(catalog.Add(MakeHotels()));
  return catalog;
}

namespace {

/// Shared generator behind LargeTravelInstance and LargeTravelCatalog; the
/// RNG consumption order is fixed (all flights, then all hotels), so both
/// entry points describe the same scenario for one seed.
std::pair<rel::Relation, rel::Relation> MakeLargeTravelRelations(
    size_t num_flights, size_t num_hotels, size_t num_cities,
    size_t num_airlines, util::Rng& rng) {
  using rel::Value;
  auto city = [&](size_t i) { return util::StrFormat("City%zu", i); };
  auto airline = [&](size_t i) { return util::StrFormat("Airline%zu", i); };

  rel::Relation flights{"Flights",
                        rel::Schema::FromNames({"From", "To", "Airline"})};
  for (size_t i = 0; i < num_flights; ++i) {
    const size_t from =
        static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(num_cities) - 1));
    size_t to =
        static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(num_cities) - 1));
    if (to == from) to = (to + 1) % num_cities;
    const size_t carrier = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(num_airlines) - 1));
    JIM_CHECK_OK(flights.AddRow(
        {Value(city(from)), Value(city(to)), Value(airline(carrier))}));
  }

  rel::Relation hotels{"Hotels", rel::Schema::FromNames({"City", "Discount"})};
  for (size_t i = 0; i < num_hotels; ++i) {
    const size_t where = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(num_cities) - 1));
    // A third of hotels have no discount, mirroring Figure 1's "None".
    const bool discounted = rng.UniformDouble() > 1.0 / 3.0;
    const std::string discount =
        discounted ? airline(static_cast<size_t>(rng.UniformInt(
                         0, static_cast<int64_t>(num_airlines) - 1)))
                   : "None";
    JIM_CHECK_OK(hotels.AddRow({Value(city(where)), Value(discount)}));
  }

  return {std::move(flights), std::move(hotels)};
}

}  // namespace

rel::Relation LargeTravelInstance(size_t num_flights, size_t num_hotels,
                                  size_t num_cities, size_t num_airlines,
                                  util::Rng& rng) {
  auto [flights, hotels] = MakeLargeTravelRelations(
      num_flights, num_hotels, num_cities, num_airlines, rng);
  auto product = rel::CrossProduct(
      flights, hotels, rel::JoinOptions::Named("FlightHotel"));
  JIM_CHECK(product.ok());
  return *std::move(product);
}

rel::Catalog LargeTravelCatalog(size_t num_flights, size_t num_hotels,
                                size_t num_cities, size_t num_airlines,
                                util::Rng& rng) {
  auto [flights, hotels] = MakeLargeTravelRelations(
      num_flights, num_hotels, num_cities, num_airlines, rng);
  rel::Catalog catalog;
  JIM_CHECK_OK(catalog.Add(std::move(flights)));
  JIM_CHECK_OK(catalog.Add(std::move(hotels)));
  return catalog;
}

}  // namespace jim::workload
