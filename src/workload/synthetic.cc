#include "workload/synthetic.h"

#include <algorithm>
#include <string>
#include <vector>

#include "util/logging.h"
#include "util/string_util.h"

namespace jim::workload {

lat::Partition RandomPartitionWithRank(size_t n, size_t rank,
                                       util::Rng& rng) {
  JIM_CHECK_LT(rank, n == 0 ? 1 : n);
  std::vector<int> labels(n);
  for (size_t i = 0; i < n; ++i) labels[i] = static_cast<int>(i);
  for (size_t merge = 0; merge < rank; ++merge) {
    // Pick two distinct current blocks and merge them.
    std::vector<int> block_ids;
    for (size_t i = 0; i < n; ++i) {
      if (std::find(block_ids.begin(), block_ids.end(), labels[i]) ==
          block_ids.end()) {
        block_ids.push_back(labels[i]);
      }
    }
    const size_t a = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(block_ids.size()) - 1));
    size_t b = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(block_ids.size()) - 2));
    if (b >= a) ++b;
    for (size_t i = 0; i < n; ++i) {
      if (labels[i] == block_ids[b]) labels[i] = block_ids[a];
    }
  }
  return lat::Partition::FromLabels(labels);
}

SyntheticWorkload MakeSyntheticWorkload(const SyntheticSpec& spec,
                                        util::Rng& rng) {
  const lat::Partition goal =
      RandomPartitionWithRank(spec.num_attributes, spec.goal_constraints, rng);
  return MakeSyntheticWorkload(spec, goal, rng);
}

SyntheticWorkload MakeSyntheticWorkload(const SyntheticSpec& spec,
                                        const lat::Partition& goal_partition,
                                        util::Rng& rng) {
  JIM_CHECK_EQ(goal_partition.num_elements(), spec.num_attributes);
  JIM_CHECK_GT(spec.domain_size, size_t{0});

  std::vector<std::string> names;
  names.reserve(spec.num_attributes);
  for (size_t i = 0; i < spec.num_attributes; ++i) {
    names.push_back(util::StrFormat("A%zu", i));
  }
  rel::Schema schema;
  for (const std::string& name : names) {
    schema.AddAttribute(
        rel::Attribute{name, rel::ValueType::kInt64, ""});
  }

  rel::Relation instance{"synthetic", schema};
  instance.Reserve(spec.num_tuples);
  const auto goal_blocks = goal_partition.Blocks();
  const int64_t domain_max = static_cast<int64_t>(spec.domain_size) - 1;

  for (size_t t = 0; t < spec.num_tuples; ++t) {
    rel::Tuple row(spec.num_attributes);
    if (rng.Bernoulli(spec.goal_satisfaction_rate)) {
      // Satisfies the goal: one value per goal block.
      for (const auto& block : goal_blocks) {
        const rel::Value value(rng.UniformInt(0, domain_max));
        for (size_t attribute : block) row[attribute] = value;
      }
    } else {
      // Independent values; may satisfy the goal (or more) by chance.
      for (size_t a = 0; a < spec.num_attributes; ++a) {
        row[a] = rel::Value(rng.UniformInt(0, domain_max));
      }
    }
    instance.AddRowUnchecked(std::move(row));
  }

  auto shared_instance =
      std::make_shared<const rel::Relation>(std::move(instance));
  SyntheticWorkload workload{shared_instance,
                             core::MakeRelationStore(shared_instance),
                             core::JoinPredicate(schema, goal_partition)};
  return workload;
}

}  // namespace jim::workload
