#ifndef JIM_WORKLOAD_SYNTHETIC_H_
#define JIM_WORKLOAD_SYNTHETIC_H_

#include <memory>

#include "core/join_predicate.h"
#include "core/tuple_store.h"
#include "lattice/partition.h"
#include "relational/relation.h"
#include "util/rng.h"

namespace jim::workload {

/// Knobs for the synthetic-instance generator, mirroring the dimensions the
/// paper's evaluation sweeps: instance size, schema width, goal complexity,
/// and how "joinable" the data is.
struct SyntheticSpec {
  /// Schema width n (attributes of the denormalized table).
  size_t num_attributes = 6;
  /// Instance size N (tuples).
  size_t num_tuples = 200;
  /// Values per attribute domain; smaller domains create more accidental
  /// equalities between attributes, i.e. harder, more "complex" instances.
  size_t domain_size = 8;
  /// Number of equality constraints in the planted goal query
  /// (lattice rank of its partition); 0 plants the empty predicate.
  size_t goal_constraints = 2;
  /// Fraction of tuples generated to satisfy the goal (the rest draw all
  /// attributes independently and satisfy it only by chance).
  double goal_satisfaction_rate = 0.25;
};

/// A uniformly random partition of n elements conditioned on the given
/// lattice rank (n - #blocks): built by `rank` random merges.
lat::Partition RandomPartitionWithRank(size_t n, size_t rank, util::Rng& rng);

/// One generated workload: the instance plus the goal query planted in it.
/// `store` is the same instance behind the TupleStore seam (dictionary-
/// encoded once at generation time) — what benches hand to the engine so
/// class construction runs on codes.
struct SyntheticWorkload {
  std::shared_ptr<const rel::Relation> instance;
  std::shared_ptr<const core::TupleStore> store;
  core::JoinPredicate goal;
};

/// Generates an instance per `spec` with a random planted goal. Attribute
/// names are A0..A{n-1}; values are INT64 in [0, domain_size).
SyntheticWorkload MakeSyntheticWorkload(const SyntheticSpec& spec,
                                        util::Rng& rng);

/// Same, but plants the provided goal partition instead of a random one.
SyntheticWorkload MakeSyntheticWorkload(const SyntheticSpec& spec,
                                        const lat::Partition& goal_partition,
                                        util::Rng& rng);

}  // namespace jim::workload

#endif  // JIM_WORKLOAD_SYNTHETIC_H_
