#ifndef JIM_WORKLOAD_TRAVEL_H_
#define JIM_WORKLOAD_TRAVEL_H_

#include <memory>

#include "core/tuple_store.h"
#include "relational/catalog.h"
#include "relational/relation.h"
#include "util/rng.h"

namespace jim::workload {

/// The motivating example of the paper, verbatim: the denormalized
/// flight&hotel table of Figure 1 — 12 tuples over
/// (From, To, Airline, City, Discount). Tuple (k) of the figure is row k-1.
rel::Relation Figure1Instance();

/// Figure 1 as a shared relation, ready for an InferenceEngine.
std::shared_ptr<const rel::Relation> Figure1InstancePtr();

/// Figure 1 behind the TupleStore seam (encoded once).
std::shared_ptr<const core::TupleStore> Figure1StorePtr();

/// The two goal queries discussed in the paper:
///   Q1:  To ≈ City
///   Q2:  To ≈ City ∧ Airline ≈ Discount
/// as predicate strings parseable by JoinPredicate::Parse.
inline constexpr const char* kQ1 = "To=City";
inline constexpr const char* kQ2 = "To=City && Airline=Discount";

/// The separate source relations behind Figure 1: Flights(From, To, Airline)
/// and Hotels(City, Discount) — 4 flights × 3 hotels whose cross product is
/// exactly the Figure 1 instance. Used by the schema-mapping example to show
/// JIM inferring a GAV mapping across relations.
rel::Catalog TravelCatalog();

/// A scaled-up travel scenario: `num_flights` flights over `num_cities`
/// cities and `num_airlines` airlines crossed with `num_hotels` hotels
/// (discounts name airlines, as in the paper). The instance is the full
/// cross product: num_flights × num_hotels rows.
rel::Relation LargeTravelInstance(size_t num_flights, size_t num_hotels,
                                  size_t num_cities, size_t num_airlines,
                                  util::Rng& rng);

/// The same scaled-up scenario as *separate* Flights/Hotels relations in a
/// catalog — the input of the factorized universal-table ingest path, whose
/// memory stays O(num_flights + num_hotels) while the candidate count is
/// the full num_flights × num_hotels product (bench_scalability's
/// above-the-cap sweep builds on this).
rel::Catalog LargeTravelCatalog(size_t num_flights, size_t num_hotels,
                                size_t num_cities, size_t num_airlines,
                                util::Rng& rng);

}  // namespace jim::workload

#endif  // JIM_WORKLOAD_TRAVEL_H_
