#include "workload/tpch.h"

#include <cmath>
#include <iterator>

#include "relational/relation.h"
#include "relational/schema.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace jim::workload {

namespace {

using rel::Attribute;
using rel::Relation;
using rel::Schema;
using rel::Value;
using rel::ValueType;

Schema MakeSchema(std::initializer_list<std::pair<const char*, ValueType>>
                      columns) {
  Schema schema;
  for (const auto& [name, type] : columns) {
    schema.AddAttribute(Attribute{name, type, ""});
  }
  return schema;
}

const char* kRegionNames[] = {"AFRICA", "AMERICA", "ASIA", "EUROPE",
                              "MIDDLE EAST", "OCEANIA", "ANTARCTICA"};

}  // namespace

rel::Catalog MakeTpchCatalog(const TpchSpec& spec, util::Rng& rng) {
  rel::Catalog catalog;

  // -- region ---------------------------------------------------------------
  Relation region{"region", MakeSchema({{"r_regionkey", ValueType::kInt64},
                                        {"r_name", ValueType::kString}})};
  for (size_t r = 0; r < spec.num_regions; ++r) {
    const std::string name =
        r < std::size(kRegionNames)
            ? kRegionNames[r]
            : util::StrFormat("REGION#%zu", r);
    JIM_CHECK_OK(
        region.AddRow({Value(static_cast<int64_t>(r)), Value(name)}));
  }

  // -- nation ---------------------------------------------------------------
  Relation nation{"nation", MakeSchema({{"n_nationkey", ValueType::kInt64},
                                        {"n_name", ValueType::kString},
                                        {"n_regionkey", ValueType::kInt64}})};
  for (size_t n = 0; n < spec.num_nations; ++n) {
    JIM_CHECK_OK(nation.AddRow(
        {Value(static_cast<int64_t>(n)),
         Value(util::StrFormat("NATION#%02zu", n)),
         Value(rng.UniformInt(0, static_cast<int64_t>(spec.num_regions) - 1))}));
  }

  // -- supplier -------------------------------------------------------------
  Relation supplier{"supplier",
                    MakeSchema({{"s_suppkey", ValueType::kInt64},
                                {"s_name", ValueType::kString},
                                {"s_nationkey", ValueType::kInt64},
                                {"s_acctbal", ValueType::kDouble}})};
  for (size_t s = 0; s < spec.num_suppliers; ++s) {
    JIM_CHECK_OK(supplier.AddRow(
        {Value(static_cast<int64_t>(s)),
         Value(util::StrFormat("Supplier#%03zu", s)),
         Value(rng.UniformInt(0, static_cast<int64_t>(spec.num_nations) - 1)),
         Value(std::round(rng.UniformDouble() * 999999.0) / 100.0)}));
  }

  // -- customer -------------------------------------------------------------
  Relation customer{"customer",
                    MakeSchema({{"c_custkey", ValueType::kInt64},
                                {"c_name", ValueType::kString},
                                {"c_nationkey", ValueType::kInt64},
                                {"c_acctbal", ValueType::kDouble}})};
  for (size_t c = 0; c < spec.num_customers; ++c) {
    JIM_CHECK_OK(customer.AddRow(
        {Value(static_cast<int64_t>(c)),
         Value(util::StrFormat("Customer#%06zu", c)),
         Value(rng.UniformInt(0, static_cast<int64_t>(spec.num_nations) - 1)),
         Value(std::round(rng.UniformDouble() * 999999.0) / 100.0)}));
  }

  // -- part -----------------------------------------------------------------
  Relation part{"part", MakeSchema({{"p_partkey", ValueType::kInt64},
                                    {"p_name", ValueType::kString},
                                    {"p_retailprice", ValueType::kDouble}})};
  for (size_t p = 0; p < spec.num_parts; ++p) {
    JIM_CHECK_OK(part.AddRow(
        {Value(static_cast<int64_t>(p)),
         Value(util::StrFormat("Part#%05zu", p)),
         Value(900.0 + static_cast<double>(p % 100))}));
  }

  // -- partsupp ---------------------------------------------------------
  Relation partsupp{"partsupp",
                    MakeSchema({{"ps_partkey", ValueType::kInt64},
                                {"ps_suppkey", ValueType::kInt64},
                                {"ps_supplycost", ValueType::kDouble}})};
  for (size_t p = 0; p < spec.num_parts; ++p) {
    for (size_t k = 0; k < spec.num_partsupp_per_part; ++k) {
      JIM_CHECK_OK(partsupp.AddRow(
          {Value(static_cast<int64_t>(p)),
           Value(rng.UniformInt(0, static_cast<int64_t>(spec.num_suppliers) - 1)),
           Value(std::round(rng.UniformDouble() * 100000.0) / 100.0)}));
    }
  }

  // -- orders -----------------------------------------------------------
  Relation orders{"orders", MakeSchema({{"o_orderkey", ValueType::kInt64},
                                        {"o_custkey", ValueType::kInt64},
                                        {"o_totalprice", ValueType::kDouble}})};
  for (size_t o = 0; o < spec.num_orders; ++o) {
    JIM_CHECK_OK(orders.AddRow(
        {Value(static_cast<int64_t>(o)),
         Value(rng.UniformInt(0, static_cast<int64_t>(spec.num_customers) - 1)),
         Value(std::round(rng.UniformDouble() * 10000000.0) / 100.0)}));
  }

  // -- lineitem ---------------------------------------------------------
  Relation lineitem{"lineitem",
                    MakeSchema({{"l_orderkey", ValueType::kInt64},
                                {"l_partkey", ValueType::kInt64},
                                {"l_suppkey", ValueType::kInt64},
                                {"l_quantity", ValueType::kInt64}})};
  for (size_t o = 0; o < spec.num_orders; ++o) {
    for (size_t l = 0; l < spec.num_lineitems_per_order; ++l) {
      JIM_CHECK_OK(lineitem.AddRow(
          {Value(static_cast<int64_t>(o)),
           Value(rng.UniformInt(0, static_cast<int64_t>(spec.num_parts) - 1)),
           Value(rng.UniformInt(0, static_cast<int64_t>(spec.num_suppliers) - 1)),
           Value(rng.UniformInt(1, 50))}));
    }
  }

  JIM_CHECK_OK(catalog.Add(std::move(region)));
  JIM_CHECK_OK(catalog.Add(std::move(nation)));
  JIM_CHECK_OK(catalog.Add(std::move(supplier)));
  JIM_CHECK_OK(catalog.Add(std::move(customer)));
  JIM_CHECK_OK(catalog.Add(std::move(part)));
  JIM_CHECK_OK(catalog.Add(std::move(partsupp)));
  JIM_CHECK_OK(catalog.Add(std::move(orders)));
  JIM_CHECK_OK(catalog.Add(std::move(lineitem)));
  return catalog;
}

std::vector<TpchScenario> TpchScenarios() {
  return {
      {"nation-region", {"nation", "region"},
       "nation.n_regionkey = region.r_regionkey", 1},
      {"customer-nation", {"customer", "nation"},
       "customer.c_nationkey = nation.n_nationkey", 1},
      {"customer-orders", {"customer", "orders"},
       "customer.c_custkey = orders.o_custkey", 1},
      {"orders-lineitem", {"orders", "lineitem"},
       "orders.o_orderkey = lineitem.l_orderkey", 1},
      {"partsupp-part-supplier",
       {"partsupp", "part", "supplier"},
       "partsupp.ps_partkey = part.p_partkey && "
       "partsupp.ps_suppkey = supplier.s_suppkey",
       2},
      {"customer-orders-lineitem",
       {"customer", "orders", "lineitem"},
       "customer.c_custkey = orders.o_custkey && "
       "orders.o_orderkey = lineitem.l_orderkey",
       2},
      {"supplier-customer-nation",
       {"supplier", "customer", "nation"},
       "supplier.s_nationkey = customer.c_nationkey && "
       "customer.c_nationkey = nation.n_nationkey",
       2},
      {"customer-orders-lineitem-part",
       {"customer", "orders", "lineitem", "part"},
       "customer.c_custkey = orders.o_custkey && "
       "orders.o_orderkey = lineitem.l_orderkey && "
       "lineitem.l_partkey = part.p_partkey",
       3},
  };
}

}  // namespace jim::workload
