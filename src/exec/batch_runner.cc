#include "exec/batch_runner.h"

#include <utility>

#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "util/logging.h"

namespace jim::exec {

namespace {

core::SessionResult RunOne(const SessionSpec& spec) {
  JIM_SPAN(obs::kHistExecSessionMicros);
  JIM_COUNT(obs::kCounterExecBatchSessions);
  JIM_CHECK(spec.prototype != nullptr);
  JIM_CHECK(spec.make_strategy != nullptr);
  core::InferenceEngine engine = *spec.prototype;  // cheap COW clone
  std::unique_ptr<core::Strategy> strategy = spec.make_strategy();
  std::unique_ptr<core::Oracle> oracle =
      spec.make_oracle ? spec.make_oracle()
                       : std::make_unique<core::ExactOracle>(spec.goal);
  return core::RunSessionOnEngine(engine, spec.goal, *strategy, *oracle,
                                  spec.options);
}

}  // namespace

std::vector<core::SessionResult> BatchSessionRunner::Run(
    const std::vector<SessionSpec>& specs) const {
  JIM_COUNT(obs::kCounterExecBatchRuns);
  std::vector<core::SessionResult> results(specs.size());
  if (pool_ == nullptr || pool_->threads() <= 1 || specs.size() <= 1) {
    for (size_t i = 0; i < specs.size(); ++i) results[i] = RunOne(specs[i]);
    return results;
  }
  pool_->ParallelFor(specs.size(), [&specs, &results](size_t i, size_t) {
    results[i] = RunOne(specs[i]);
  });
  return results;
}

}  // namespace jim::exec
