#ifndef JIM_EXEC_PARALLEL_H_
#define JIM_EXEC_PARALLEL_H_

#include <cstddef>

#include "exec/thread_pool.h"

namespace jim::exec {

/// std::thread::hardware_concurrency with a floor of 1 (the standard allows
/// it to report 0 when unknown).
size_t HardwareThreads();

/// The process-wide default parallelism, resolved in priority order:
///   1. the last SetDefaultThreads(n) call with n > 0 (e.g. a --threads
///      flag),
///   2. the JIM_THREADS environment variable (positive integers only;
///      anything else is ignored),
///   3. HardwareThreads().
/// Always ≥ 1. Thread-count choices never change results — every parallel
/// path in JIM is bitwise-deterministic — so this only trades latency.
size_t DefaultThreads();

/// Overrides DefaultThreads() for the rest of the process (n = 0 clears the
/// override). Call before the first SharedPool() use: the shared pool is
/// sized once, at creation.
void SetDefaultThreads(size_t n);

/// The lazily created process-wide pool, sized to DefaultThreads() at first
/// use. This is what LookaheadStrategy scores candidates on by default.
/// Never destroyed before exit; safe to use from any thread. Callers that
/// need a specific thread count (benches, parity tests) construct their own
/// ThreadPool instead.
ThreadPool& SharedPool();

}  // namespace jim::exec

#endif  // JIM_EXEC_PARALLEL_H_
