#ifndef JIM_EXEC_SCRATCH_POOL_H_
#define JIM_EXEC_SCRATCH_POOL_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "lattice/partition.h"

namespace jim::exec {

/// The per-thread working set of the engine's allocation-free simulation
/// kernels: one epoch-stamped PartitionScratch plus the meet output buffer
/// SimulateLabelBothWith writes through. Exactly what one chunk of a
/// parallel lookahead needs — and nothing is shared, so chunks never
/// contend.
struct EvalScratch {
  lat::PartitionScratch scratch;
  lat::Partition meet_tmp;
};

/// Hands each ParallelFor chunk its own EvalScratch, keyed by chunk id.
/// Slots are allocated once and reused across calls (the PartitionScratch
/// inside is epoch-stamped, so logical clearing is O(1) and a warmed slot
/// never allocates on the hot path). Growth preserves existing slots —
/// addresses are stable because slots live behind unique_ptr.
///
/// Not thread-safe for growth: call EnsureSlots from one thread before
/// fanning out; Slot() accesses to *distinct* ids are then safe
/// concurrently.
class ScratchPool {
 public:
  ScratchPool() = default;

  /// Grows the pool to at least `n` slots (never shrinks).
  void EnsureSlots(size_t n) {
    while (slots_.size() < n) {
      slots_.push_back(std::make_unique<EvalScratch>());
    }
  }

  size_t size() const { return slots_.size(); }

  EvalScratch& Slot(size_t i) { return *slots_[i]; }

 private:
  std::vector<std::unique_ptr<EvalScratch>> slots_;
};

}  // namespace jim::exec

#endif  // JIM_EXEC_SCRATCH_POOL_H_
