#include "exec/thread_pool.h"

#include <algorithm>
#include <exception>
#include <utility>

#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "util/logging.h"

namespace jim::exec {

namespace {
/// The pool whose ParallelFor chunk is running on this thread, if any. A
/// body that re-enters ParallelFor on the same pool would park every worker
/// behind the queued inner chunks — detect it instead of deadlocking.
thread_local const ThreadPool* tl_active_pool = nullptr;
}  // namespace

ThreadPool::ThreadPool(size_t threads) {
  const size_t workers = threads > 1 ? threads - 1 : 0;
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  JIM_COUNT(obs::kCounterExecPoolsCreated);
  JIM_COUNT_N(obs::kCounterExecWorkersSpawned, workers);
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  JIM_CHECK(!workers_.empty()) << "Submit on a 1-thread pool";
  {
    std::lock_guard<std::mutex> lock(mutex_);
    JIM_CHECK(!stopping_) << "Submit on a stopping pool";
    tasks_.push(std::move(task));
  }
  JIM_COUNT(obs::kCounterExecTasksSubmitted);
  wake_.notify_one();
}

void ThreadPool::Drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  drained_.wait(lock, [this] { return tasks_.empty() && active_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping_ and drained
      task = std::move(tasks_.front());
      tasks_.pop();
      ++active_;
    }
    task();  // tasks are wrapped by ParallelFor and never throw out
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_;
      if (tasks_.empty() && active_ == 0) drained_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(
    size_t n, const std::function<void(size_t index, size_t chunk)>& body) {
  if (n == 0) return;
  JIM_CHECK(tl_active_pool != this)
      << "nested ParallelFor on the same pool would deadlock; use a second "
         "pool for the inner level";
  const size_t chunks = std::min(threads(), n);
  JIM_COUNT(obs::kCounterExecParallelForCalls);
  JIM_COUNT_N(obs::kCounterExecParallelForChunks, chunks);
  JIM_OBSERVE(obs::kHistExecParallelForItems, n);

  // Per-call completion latch + first-failure slot (ordered by chunk id so
  // the rethrown exception is deterministic, not a scheduling artifact).
  struct Latch {
    std::mutex mutex;
    std::condition_variable done;
    size_t remaining;
    size_t failed_chunk;
    std::exception_ptr failure;
  } latch;
  latch.remaining = chunks;
  latch.failed_chunk = chunks;

  // Chunk j owns the contiguous index range [j*n/chunks, (j+1)*n/chunks).
  const auto run_chunk = [this, &latch, &body, n, chunks](size_t j) {
    std::exception_ptr failure;
    const ThreadPool* previous = tl_active_pool;
    tl_active_pool = this;
    try {
      const size_t begin = j * n / chunks;
      const size_t end = (j + 1) * n / chunks;
      for (size_t i = begin; i < end; ++i) body(i, j);
    } catch (...) {
      failure = std::current_exception();
    }
    tl_active_pool = previous;
    std::lock_guard<std::mutex> lock(latch.mutex);
    if (failure && j < latch.failed_chunk) {
      latch.failed_chunk = j;
      latch.failure = failure;
    }
    if (--latch.remaining == 0) latch.done.notify_one();
  };

  for (size_t j = 1; j < chunks; ++j) {
    Submit([&run_chunk, j] { run_chunk(j); });
  }
  run_chunk(0);

  std::unique_lock<std::mutex> lock(latch.mutex);
  latch.done.wait(lock, [&latch] { return latch.remaining == 0; });
  if (latch.failure) std::rethrow_exception(latch.failure);
}

}  // namespace jim::exec
