#ifndef JIM_EXEC_BATCH_RUNNER_H_
#define JIM_EXEC_BATCH_RUNNER_H_

#include <functional>
#include <memory>
#include <vector>

#include "core/engine.h"
#include "core/oracle.h"
#include "core/session.h"
#include "core/strategies.h"
#include "exec/thread_pool.h"

namespace jim::exec {

/// One independent inference session to run: which built engine to clone,
/// what the user wants, and how both sides of the interaction are
/// simulated. Factories (not instances) for the stateful parts, because
/// each session must own its strategy and oracle — they carry RNGs and
/// caches that cannot be shared across threads.
struct SessionSpec {
  SessionSpec(std::shared_ptr<const core::InferenceEngine> prototype_in,
              core::JoinPredicate goal_in)
      : prototype(std::move(prototype_in)), goal(std::move(goal_in)) {}

  /// The prototype engine, built once per instance and cloned per session
  /// (cheap: the class table is shared, the knowledge cache copy-on-write).
  /// Many specs typically point at one prototype.
  std::shared_ptr<const core::InferenceEngine> prototype;
  core::JoinPredicate goal;
  std::function<std::unique_ptr<core::Strategy>()> make_strategy;
  /// Optional; defaults to an ExactOracle for `goal`.
  std::function<std::unique_ptr<core::Oracle>()> make_oracle;
  core::SessionOptions options;
};

/// Runs independent inference sessions — the repetitions × strategies ×
/// modes grids every bench sweeps — concurrently on engine clones.
///
/// Determinism: results land in the output vector at their spec's index and
/// every session is self-contained (own engine clone, own strategy/oracle
/// with spec-chosen seeds), so the output is identical at any thread count
/// — only wall-clock changes. Sessions whose strategies score on the
/// process-wide lookahead pool compose fine with this runner's own pool
/// (two distinct pools never deadlock); do NOT pass SharedPool() as the
/// runner's pool in that configuration.
class BatchSessionRunner {
 public:
  /// `pool` is borrowed, not owned; nullptr runs the batch serially (the
  /// reference path the parity tests compare against).
  explicit BatchSessionRunner(ThreadPool* pool) : pool_(pool) {}

  /// Runs every spec to completion; result i belongs to spec i.
  std::vector<core::SessionResult> Run(
      const std::vector<SessionSpec>& specs) const;

 private:
  ThreadPool* pool_;
};

}  // namespace jim::exec

#endif  // JIM_EXEC_BATCH_RUNNER_H_
