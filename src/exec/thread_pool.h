#ifndef JIM_EXEC_THREAD_POOL_H_
#define JIM_EXEC_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace jim::exec {

/// A fixed-size pool of worker threads behind a condition-variable task
/// queue. `threads` is the *total* parallelism of a ParallelFor: the pool
/// spawns `threads - 1` workers and the calling thread always executes the
/// first chunk itself, so `ThreadPool(1)` owns no threads at all and runs
/// everything inline (the serial reference path the parity tests pin the
/// parallel results against).
///
/// The pool itself is thread-safe: any number of threads may Submit or run
/// ParallelFor concurrently (each ParallelFor tracks its own completion
/// state, so concurrent loops interleave safely on the shared queue).
/// Destruction drains nothing: it waits for queued tasks to finish, then
/// joins the workers.
class ThreadPool {
 public:
  explicit ThreadPool(size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total parallelism (workers + the calling thread), always ≥ 1.
  size_t threads() const { return workers_.size() + 1; }

  /// Enqueues a task for some worker. Fire-and-forget: completion is the
  /// caller's business (ParallelFor layers a completion latch on top).
  /// Requires threads() > 1 — a 1-thread pool has nobody to run it.
  void Submit(std::function<void()> task);

  /// Blocks until the queue is empty and every in-flight task has returned
  /// — the graceful-shutdown primitive for fire-and-forget Submit users
  /// (serve::Server drains its connection handlers with this). Callers must
  /// stop Submitting first; a task that keeps Submitting makes Drain wait
  /// for that work too.
  void Drain();

  /// Runs `body(i)` for every i in [0, n), blocking until all calls have
  /// returned. Work is split *statically* into min(threads(), n) contiguous
  /// chunks; chunk j additionally learns its id via `body(i, j)`-style
  /// overloads below, which lets callers pin per-chunk scratch state without
  /// locks. Chunk 0 runs on the calling thread.
  ///
  /// Determinism: the index → chunk assignment depends only on (n,
  /// threads()), never on scheduling, and callers that write results by
  /// index get bitwise-identical output at any thread count.
  ///
  /// Exceptions thrown by `body` are captured; the first one (in chunk
  /// order) is rethrown on the calling thread after every chunk has
  /// finished.
  void ParallelFor(size_t n,
                   const std::function<void(size_t index, size_t chunk)>& body);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable wake_;
  /// Signaled whenever the pool may have gone idle (see Drain).
  std::condition_variable drained_;
  std::queue<std::function<void()>> tasks_;
  /// Tasks currently executing on some worker.
  size_t active_ = 0;
  bool stopping_ = false;
};

}  // namespace jim::exec

#endif  // JIM_EXEC_THREAD_POOL_H_
