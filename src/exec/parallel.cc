#include "exec/parallel.h"

#include <atomic>
#include <cstdlib>
#include <thread>

#include "util/string_util.h"

namespace jim::exec {

namespace {

std::atomic<size_t> g_thread_override{0};

size_t EnvThreads() {
  const char* env = std::getenv("JIM_THREADS");
  if (env == nullptr) return 0;
  const auto parsed = util::ParseInt64(env);
  if (!parsed.ok() || *parsed <= 0) return 0;
  return static_cast<size_t>(*parsed);
}

}  // namespace

size_t HardwareThreads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<size_t>(n);
}

size_t DefaultThreads() {
  const size_t override = g_thread_override.load(std::memory_order_relaxed);
  if (override > 0) return override;
  const size_t env = EnvThreads();
  if (env > 0) return env;
  return HardwareThreads();
}

void SetDefaultThreads(size_t n) {
  g_thread_override.store(n, std::memory_order_relaxed);
}

ThreadPool& SharedPool() {
  // Sized once; function-local static gives thread-safe initialization, and
  // the destructor joins the workers at exit (keeps LeakSanitizer quiet).
  static ThreadPool pool(DefaultThreads());
  return pool;
}

}  // namespace jim::exec
