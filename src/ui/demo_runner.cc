#include "ui/demo_runner.h"

#include <optional>
#include <sstream>
#include <vector>

#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace jim::ui {

namespace {

using core::InferenceEngine;
using core::InteractionMode;
using core::Label;

/// Reads one non-empty input line; nullopt at EOF.
std::optional<std::string> ReadCommand(std::istream& in, std::ostream& out,
                                       const std::string& prompt) {
  std::string line;
  while (true) {
    out << prompt << std::flush;
    if (!std::getline(in, line)) return std::nullopt;
    const std::string_view stripped = util::StripWhitespace(line);
    if (!stripped.empty()) return std::string(stripped);
  }
}

struct ParsedAnswer {
  enum class Kind { kLabel, kShowTable, kShowProgress, kQuit } kind;
  Label label = Label::kPositive;
  /// 1-based row/option number for modes that need one; 0 = none given.
  size_t number = 0;
};

std::optional<ParsedAnswer> ParseAnswer(const std::string& command) {
  ParsedAnswer answer{ParsedAnswer::Kind::kLabel, Label::kPositive, 0};
  std::istringstream tokens(command);
  std::string first;
  tokens >> first;
  if (first == "q" || first == "quit") {
    answer.kind = ParsedAnswer::Kind::kQuit;
    return answer;
  }
  if (first == "t" || first == "table") {
    answer.kind = ParsedAnswer::Kind::kShowTable;
    return answer;
  }
  if (first == "p" || first == "progress") {
    answer.kind = ParsedAnswer::Kind::kShowProgress;
    return answer;
  }
  std::string label_token = first;
  if (first != "+" && first != "-") {
    // "<number> <label>" form.
    auto number = util::ParseInt64(first);
    if (!number.ok() || *number <= 0) return std::nullopt;
    answer.number = static_cast<size_t>(*number);
    if (!(tokens >> label_token)) return std::nullopt;
  }
  if (label_token == "+") {
    answer.label = Label::kPositive;
  } else if (label_token == "-") {
    answer.label = Label::kNegative;
  } else {
    return std::nullopt;
  }
  return answer;
}

/// Simulate-counter reading for per-step trace attribution; 0 with metrics
/// off (the trace is still structurally complete, just uncosted).
uint64_t SimulateCallsSoFar() {
  if (!obs::MetricsEnabled()) return 0;
  return obs::MetricsRegistry::Instance().CounterValue(
      obs::kCounterEngineSimulateLabelBoth);
}

}  // namespace

util::StatusOr<core::JoinPredicate> RunConsoleDemo(
    std::shared_ptr<const rel::Relation> relation, DemoOptions options,
    std::istream& in, std::ostream& out) {
  return RunConsoleDemo(core::MakeRelationStore(std::move(relation)),
                        std::move(options), in, out);
}

util::StatusOr<core::JoinPredicate> RunConsoleDemo(
    std::shared_ptr<const core::TupleStore> store, DemoOptions options,
    std::istream& in, std::ostream& out) {
  ASSIGN_OR_RETURN(auto strategy,
                   core::MakeStrategy(options.strategy, options.seed));
  InferenceEngine engine(std::move(store));
  util::Rng rng(options.seed);

  out << "JIM — Join Inference Machine\n"
      << "mode: " << core::InteractionModeToString(options.mode)
      << ", strategy: " << strategy->name() << "\n\n";
  const bool free_mode = options.mode == InteractionMode::kLabelAll ||
                         options.mode == InteractionMode::kGrayOut;
  // Mode 1 hides the gray-out; render uninformative rows like informative
  // ones by disabling color (the marker still shows in parentheses).
  RenderOptions render = options.render;
  if (options.mode == InteractionMode::kLabelAll) render.color = false;
  out << RenderInstance(engine, render);

  std::optional<util::Stopwatch> session_clock;
  size_t trace_steps = 0;
  if (options.tracer != nullptr) {
    obs::SessionTracer::SessionMeta meta;
    meta.strategy = std::string(strategy->name());
    meta.mode = std::string(core::InteractionModeToString(options.mode));
    meta.instance = engine.store().name();
    meta.num_tuples = engine.num_tuples();
    meta.num_classes = engine.num_classes();
    options.tracer->BeginSession(std::move(meta));
    session_clock.emplace();
  }

  while (!engine.IsDone()) {
    // Trace bookkeeping is tracer-gated so an untraced demo never reads the
    // clock or walks the class table beyond what the UI itself needs.
    std::optional<util::Stopwatch> step_clock;
    core::InferenceEngine::Stats stats_before;
    uint64_t simulate_before = 0;
    if (options.tracer != nullptr) {
      step_clock.emplace();
      stats_before = engine.GetStats();
      simulate_before = SimulateCallsSoFar();
    }

    // What is being asked this round?
    std::vector<size_t> proposed_classes;
    std::string prompt;
    switch (options.mode) {
      case InteractionMode::kLabelAll:
      case InteractionMode::kGrayOut:
        prompt = "label any tuple (\"<row> +\" / \"<row> -\", t, p, q)> ";
        break;
      case InteractionMode::kTopK: {
        proposed_classes = strategy->TopK(engine, options.top_k);
        out << "most informative tuples:\n";
        for (size_t i = 0; i < proposed_classes.size(); ++i) {
          const size_t tuple =
              engine.tuple_class(proposed_classes[i]).tuple_indices[0];
          out << "  [" << (i + 1) << "] "
              << RenderTuple(engine.store(), tuple) << "\n";
        }
        prompt = "label one (\"<option> +\" / \"<option> -\", t, p, q)> ";
        break;
      }
      case InteractionMode::kMostInformative: {
        proposed_classes = {strategy->PickClass(engine)};
        const size_t tuple =
            engine.tuple_class(proposed_classes[0]).tuple_indices[0];
        out << "include this tuple in the join result?\n  "
            << RenderTuple(engine.store(), tuple) << "\n";
        prompt = "(+ / - / t / p / q)> ";
        break;
      }
    }

    // Get the answer — from the auto-oracle or from the console.
    std::optional<ParsedAnswer> answer;
    if (options.auto_oracle != nullptr) {
      ParsedAnswer simulated{ParsedAnswer::Kind::kLabel, Label::kPositive, 0};
      size_t tuple_index;
      if (free_mode) {
        // The simulated user clicks a random informative tuple.
        const auto informative = engine.InformativeClasses();
        const size_t cls = informative[static_cast<size_t>(rng.UniformInt(
            0, static_cast<int64_t>(informative.size()) - 1))];
        tuple_index = engine.tuple_class(cls).tuple_indices[0];
        simulated.number = tuple_index + 1;
      } else {
        const size_t pick =
            proposed_classes.size() == 1
                ? 0
                : static_cast<size_t>(rng.UniformInt(
                      0, static_cast<int64_t>(proposed_classes.size()) - 1));
        simulated.number =
            options.mode == InteractionMode::kTopK ? pick + 1 : 0;
        tuple_index = engine.tuple_class(proposed_classes[pick])
                          .tuple_indices[0];
      }
      simulated.label =
          options.auto_oracle->LabelFor(engine.store().DecodeTuple(tuple_index));
      out << prompt << "[auto] "
          << (simulated.number > 0
                  ? util::StrFormat("%zu ", simulated.number)
                  : std::string())
          << core::LabelToString(simulated.label) << "\n";
      answer = simulated;
    } else {
      const auto command = ReadCommand(in, out, prompt);
      if (!command.has_value()) {
        return util::FailedPreconditionError(std::string(kInputEndedMessage));
      }
      answer = ParseAnswer(*command);
      if (!answer.has_value()) {
        out << "could not parse that — expected e.g. \"+\", \"3 -\", t, p, q\n";
        continue;
      }
    }

    switch (answer->kind) {
      case ParsedAnswer::Kind::kQuit:
        return util::FailedPreconditionError(std::string(kUserQuitMessage));
      case ParsedAnswer::Kind::kShowTable:
        out << RenderInstance(engine, render);
        continue;
      case ParsedAnswer::Kind::kShowProgress:
        out << RenderProgress(engine) << "\n";
        continue;
      case ParsedAnswer::Kind::kLabel:
        break;
    }

    // Resolve the answer to a tuple and submit.
    util::Status status;
    size_t submitted_class = 0;
    size_t submitted_tuple = 0;
    if (free_mode) {
      if (answer->number == 0 || answer->number > engine.num_tuples()) {
        out << "row number out of range\n";
        continue;
      }
      submitted_tuple = answer->number - 1;
      submitted_class = engine.class_of_tuple(submitted_tuple);
      status = engine.SubmitTupleLabel(submitted_tuple, answer->label);
    } else if (options.mode == InteractionMode::kTopK) {
      if (answer->number == 0 || answer->number > proposed_classes.size()) {
        out << "option number out of range\n";
        continue;
      }
      submitted_class = proposed_classes[answer->number - 1];
      submitted_tuple = engine.tuple_class(submitted_class).tuple_indices[0];
      status = engine.SubmitClassLabel(submitted_class, answer->label);
    } else {
      submitted_class = proposed_classes[0];
      submitted_tuple = engine.tuple_class(submitted_class).tuple_indices[0];
      status = engine.SubmitClassLabel(submitted_class, answer->label);
    }
    if (options.tracer != nullptr) {
      const auto stats_after = engine.GetStats();
      obs::TraceStep event;
      event.step = trace_steps++;
      event.class_id = submitted_class;
      event.tuple_index = submitted_tuple;
      event.positive = answer->label == Label::kPositive;
      event.accepted = status.ok();
      if (status.ok()) {
        event.pruned_classes = stats_before.informative_classes -
                               stats_after.informative_classes;
        event.pruned_tuples =
            stats_before.informative_tuples - stats_after.informative_tuples;
      }
      event.worklist_before = stats_before.informative_classes;
      event.worklist_after = stats_after.informative_classes;
      event.simulate_label_calls = SimulateCallsSoFar() - simulate_before;
      event.micros = step_clock->ElapsedMicros();
      options.tracer->RecordStep(event);
    }
    if (!status.ok()) {
      out << "rejected: " << status.message() << "\n";
      continue;
    }
    if (options.mode != InteractionMode::kLabelAll) {
      out << RenderProgress(engine) << "\n";
    }
  }

  if (options.tracer != nullptr) {
    const auto final_stats = engine.GetStats();
    options.tracer->EndSession(/*identified_goal=*/true, trace_steps,
                               final_stats.wasted_interactions,
                               session_clock->ElapsedSeconds());
  }

  const core::JoinPredicate result = engine.Result();
  out << "\ninferred join query: " << result.ToString() << "\n"
      << "SQL: SELECT * FROM " << engine.store().name() << " WHERE "
      << result.ToSqlWhere() << ";\n"
      << RenderProgress(engine) << "\n";
  return result;
}

}  // namespace jim::ui
