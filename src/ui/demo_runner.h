#ifndef JIM_UI_DEMO_RUNNER_H_
#define JIM_UI_DEMO_RUNNER_H_

#include <iostream>
#include <memory>
#include <string>
#include <string_view>

#include "core/jim.h"
#include "ui/console_ui.h"
#include "util/status.h"

namespace jim::obs {
class SessionTracer;
}  // namespace jim::obs

namespace jim::ui {

/// Options for an interactive console demo session.
struct DemoOptions {
  core::InteractionMode mode = core::InteractionMode::kMostInformative;
  std::string strategy = "lookahead-entropy";
  size_t top_k = 5;
  RenderOptions render;
  /// When set, a simulated user answers from this goal instead of stdin —
  /// lets the demo run unattended (`--auto` in the examples) and lets tests
  /// drive the full UI loop.
  std::unique_ptr<core::Oracle> auto_oracle;
  uint64_t seed = 11;
  /// Optional structured tracer (obs/trace.h): records one typed event per
  /// submitted label, mirroring core::SessionOptions::tracer for the
  /// console loop. Purely observational; not owned; null = don't trace.
  obs::SessionTracer* tracer = nullptr;
};

/// Error messages RunConsoleDemo returns for the two premature-end cases.
/// Exported so callers can distinguish "stdin ran dry" (safe to fall back to
/// a simulated user) from a deliberate quit — both are FAILED_PRECONDITION.
inline constexpr std::string_view kInputEndedMessage =
    "input ended before the join query was identified";
inline constexpr std::string_view kUserQuitMessage =
    "user quit before completion";

/// Drives one inference session over `relation` through the console:
/// renders the instance, asks membership questions (reading "+", "-",
/// "t"=show table, "p"=progress, "q"=quit from `in`), propagates labels,
/// and prints the inferred join query at the end.
///
/// Implements all four interaction types of the demo (Figure 3):
///   mode 1/2: the user picks "<row> +"/"<row> -" herself (mode 2 grays out
///             uninformative rows in the rendered table);
///   mode 3:   JIM proposes the top-k informative tuples, the user answers
///             "<option> +"/"<option> -";
///   mode 4:   JIM proposes the single most informative tuple, the user
///             answers "+"/"-".
///
/// Returns the inferred predicate, or an error if input ends prematurely /
/// the strategy name is unknown.
util::StatusOr<core::JoinPredicate> RunConsoleDemo(
    std::shared_ptr<const core::TupleStore> store, DemoOptions options,
    std::istream& in, std::ostream& out);

/// Convenience: wraps `relation` into a RelationTupleStore first.
util::StatusOr<core::JoinPredicate> RunConsoleDemo(
    std::shared_ptr<const rel::Relation> relation, DemoOptions options,
    std::istream& in, std::ostream& out);

}  // namespace jim::ui

#endif  // JIM_UI_DEMO_RUNNER_H_
