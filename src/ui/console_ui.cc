#include "ui/console_ui.h"

#include <algorithm>
#include <sstream>

#include "util/string_util.h"
#include "util/table_printer.h"

namespace jim::ui {

namespace {

constexpr const char* kGray = "\x1b[90m";
constexpr const char* kGreen = "\x1b[32m";
constexpr const char* kRed = "\x1b[31m";
constexpr const char* kReset = "\x1b[0m";

}  // namespace

std::string RenderInstance(const core::InferenceEngine& engine,
                           const RenderOptions& options) {
  const core::TupleStore& store = engine.store();
  std::vector<std::string> header = {"#", "label"};
  for (const std::string& name : store.schema().Names()) {
    header.push_back(name);
  }
  util::TablePrinter printer(header);

  const size_t limit = std::min(options.max_rows, store.num_tuples());
  for (size_t t = 0; t < limit; ++t) {
    const core::TupleStatus status = engine.tuple_status(t);
    std::string marker;
    const char* color = nullptr;
    switch (status) {
      case core::TupleStatus::kInformative:
        marker = "?";
        break;
      case core::TupleStatus::kLabeledPositive:
        marker = "+";
        color = kGreen;
        break;
      case core::TupleStatus::kLabeledNegative:
        marker = "-";
        color = kRed;
        break;
      case core::TupleStatus::kForcedPositive:
        marker = "(+)";
        color = kGray;
        break;
      case core::TupleStatus::kForcedNegative:
        marker = "(-)";
        color = kGray;
        break;
    }
    std::vector<std::string> row;
    row.push_back(std::to_string(t + 1));
    row.push_back(marker);
    for (const rel::Value& value : store.DecodeTuple(t)) {
      row.push_back(value.ToString());
    }
    if (options.color && color != nullptr) {
      for (std::string& cell : row) {
        cell = std::string(color) + cell + kReset;
      }
    }
    printer.AddRow(std::move(row));
  }
  std::string out = printer.ToString();
  if (limit < store.num_tuples()) {
    out += util::StrFormat("... (%zu more tuples)\n",
                           store.num_tuples() - limit);
  }
  return out;
}

std::string RenderTuple(const rel::Relation& relation, size_t tuple_index) {
  std::vector<std::string> parts;
  const auto names = relation.schema().Names();
  for (size_t a = 0; a < relation.num_attributes(); ++a) {
    parts.push_back(names[a] + "=" + relation.row(tuple_index)[a].ToString());
  }
  return util::Join(parts, ", ");
}

std::string RenderTuple(const core::TupleStore& store, size_t tuple_index) {
  std::vector<std::string> parts;
  const auto names = store.schema().Names();
  const rel::Tuple tuple = store.DecodeTuple(tuple_index);
  for (size_t a = 0; a < tuple.size(); ++a) {
    parts.push_back(names[a] + "=" + tuple[a].ToString());
  }
  return util::Join(parts, ", ");
}

std::string RenderProgress(const core::InferenceEngine& engine) {
  const auto stats = engine.GetStats();
  const double total = std::max<size_t>(1, stats.num_tuples);
  auto percent = [&](size_t part) {
    return util::StrFormat("%.1f%%", 100.0 * static_cast<double>(part) / total);
  };
  std::ostringstream out;
  out << "progress: " << stats.explicitly_labeled_tuples << " of "
      << stats.num_tuples << " tuples labeled ("
      << percent(stats.explicitly_labeled_tuples) << "), "
      << stats.forced_positive_tuples + stats.forced_negative_tuples
      << " grayed out as uninformative ("
      << percent(stats.forced_positive_tuples + stats.forced_negative_tuples)
      << "), " << stats.informative_tuples << " still informative ("
      << percent(stats.informative_tuples) << "); interactions so far: "
      << stats.interactions;
  if (stats.wasted_interactions > 0) {
    out << " (" << stats.wasted_interactions << " wasted)";
  }
  return out.str();
}

std::string RenderSavingsChart(
    const std::vector<std::pair<std::string, size_t>>& interactions) {
  if (interactions.empty()) return "";
  std::vector<std::pair<std::string, double>> bars;
  size_t best_index = 0;
  size_t worst_index = 0;
  for (size_t i = 0; i < interactions.size(); ++i) {
    bars.emplace_back(interactions[i].first,
                      static_cast<double>(interactions[i].second));
    if (interactions[i].second < interactions[best_index].second) {
      best_index = i;
    }
    if (interactions[i].second > interactions[worst_index].second) {
      worst_index = i;
    }
  }
  std::string out = util::BarChart(bars);
  const size_t best = interactions[best_index].second;
  const size_t worst = interactions[worst_index].second;
  if (worst > best && worst > 0) {
    out += util::StrFormat(
        "  '%s' (%zu interactions) saves %.0f%% of the labeling effort of "
        "'%s' (%zu)\n",
        interactions[best_index].first.c_str(), best,
        100.0 * (1.0 - static_cast<double>(best) / static_cast<double>(worst)),
        interactions[worst_index].first.c_str(), worst);
  }
  return out;
}

}  // namespace jim::ui
