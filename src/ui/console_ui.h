#ifndef JIM_UI_CONSOLE_UI_H_
#define JIM_UI_CONSOLE_UI_H_

#include <string>
#include <utility>
#include <vector>

#include "core/engine.h"
#include "core/session.h"

namespace jim::ui {

/// Rendering options for the console front end.
struct RenderOptions {
  /// Emit ANSI color codes (gray for uninformative rows, green/red labels).
  bool color = true;
  /// Cap rows rendered in instance tables.
  size_t max_rows = 60;
};

/// Renders the instance as the demo shows it (Figure 3): one row per tuple
/// with a status marker — '+'/'−' for explicit labels, grayed rows for
/// tuples pruned as uninformative, '?' for still-informative ones.
std::string RenderInstance(const core::InferenceEngine& engine,
                           const RenderOptions& options = {});

/// One tuple as "From=Paris, To=Lille, ..." for question prompts.
std::string RenderTuple(const rel::Relation& relation, size_t tuple_index);

/// Same, decoding the tuple from a TupleStore on demand.
std::string RenderTuple(const core::TupleStore& store, size_t tuple_index);

/// The progress box the demo keeps on screen: "labeled k of N tuples (x%),
/// grayed out m (y%), remaining ...".
std::string RenderProgress(const core::InferenceEngine& engine);

/// Figure-4-style bar chart: interaction counts per interaction mode or per
/// strategy, with the relative savings of the best entry.
std::string RenderSavingsChart(
    const std::vector<std::pair<std::string, size_t>>& interactions);

}  // namespace jim::ui

#endif  // JIM_UI_CONSOLE_UI_H_
