#ifndef JIM_CORE_SPECULATION_H_
#define JIM_CORE_SPECULATION_H_

#include <cstdint>
#include <vector>

#include "core/engine.h"
#include "core/inference_state.h"
#include "lattice/partition.h"

namespace jim::core {

/// A trail-backed speculative labeling session over a built engine: apply
/// hypothetical labels, explore, and undo in O(changed) instead of copying
/// engine or worklist state per tree node. This is the substrate of the
/// minimax (optimal-strategy) search, which previously rebuilt its live
/// candidate set by classifying *every* engine class at *every* node and
/// copied a full InferenceState per answer branch.
///
/// Design:
///   - the inference state is a private copy of the engine's, mutated by
///     ApplyLabel; each Apply parks the pre-label state in a pooled frame
///     (vector assignment into warmed capacity — no steady-state allocation)
///     and Undo swaps it back in O(1) (InferenceState::Swap);
///   - the live candidate set (classes informative under the speculative
///     state) is a doubly-linked list threaded through two flat arrays with a
///     sentinel, dancing-links style: removal unlinks a node but leaves its
///     own pointers intact, and restoring the frame's removals in exact
///     reverse order re-links every node with two stores — so Undo costs
///     O(#classes removed by that Apply), nothing else;
///   - propagation after an Apply is a single walk of the (already shrunken)
///     live list using the allocation-free InferenceState::ClassifyWith; no
///     per-class knowledge is cached, so there is nothing else to undo.
///
/// The live list preserves ascending class-id order across any Apply/Undo
/// sequence (removals keep order; reverse-order restore is exact), so
/// searches iterating it visit candidates in the same order the engine's
/// worklist would — minimax values and tie-breaks are unaffected.
///
/// Not thread-safe; one session per search.
class SpeculativeSession {
 public:
  /// Starts at the engine's current state: the live list is exactly the
  /// engine's informative worklist. The engine must outlive the session and
  /// must not be labeled while the session is in use (the session holds no
  /// lock; it snapshots the state and worklist at construction).
  explicit SpeculativeSession(const InferenceEngine& engine);

  const InferenceState& state() const { return state_; }
  /// Number of speculative labels currently applied (trail depth).
  size_t depth() const { return depth_; }
  size_t num_live() const { return num_live_; }

  /// Live-list iteration: FirstLive() .. NextLive(c) until LiveEnd(), in
  /// ascending class-id order. The list may be mutated (Apply) and restored
  /// (Undo) *between* NextLive calls — dancing-links restore makes that safe
  /// as long as every Apply in between has been undone.
  size_t FirstLive() const { return next_[sentinel_]; }
  size_t NextLive(size_t class_id) const { return next_[class_id]; }
  size_t LiveEnd() const { return sentinel_; }
  bool IsLive(size_t class_id) const {
    return next_[prev_[class_id]] == class_id;
  }
  /// Materialized ascending live ids (tests / non-hot paths).
  std::vector<size_t> LiveClasses() const;

  /// Applies a speculative label to a live class and propagates: the class
  /// itself and every live class the new state classifies as uninformative
  /// leave the live list; the removals are recorded on the trail. The label
  /// must be consistent (a live class accepts either answer by definition).
  void Apply(size_t class_id, Label label);

  /// Reverts the most recent Apply: restores the removed classes in exact
  /// reverse removal order and swaps the pre-label state back. O(removed).
  void Undo();

  /// Both answers' impacts for a live class under the *current* speculative
  /// state, counting pruned live classes/tuples exactly like
  /// InferenceEngine::SimulateLabelBoth does against its worklist. At depth
  /// 0 this is bitwise-identical to engine.SimulateLabelBoth(class_id) —
  /// the parity tests pin the two together; deeper, it is what a lookahead
  /// embedded in a speculative search would score with.
  InferenceEngine::LabelImpactPair SimulateBoth(size_t class_id);

  /// Audit: the live list is a consistent ascending cycle through the
  /// sentinel, agrees with num_live(), and matches a from-scratch
  /// classification of the engine's informative classes under state().
  void CheckInvariants() const;

 private:
  void Unlink(size_t class_id) {
    next_[prev_[class_id]] = next_[class_id];
    prev_[next_[class_id]] = prev_[class_id];
    --num_live_;
  }
  void Relink(size_t class_id) {
    const uint32_t c = static_cast<uint32_t>(class_id);
    next_[prev_[class_id]] = c;
    prev_[next_[class_id]] = c;
    ++num_live_;
  }

  struct Frame {
    InferenceState saved;
    std::vector<uint32_t> removed;  ///< in removal order
  };

  const InferenceEngine& engine_;
  InferenceState state_;
  size_t sentinel_;
  std::vector<uint32_t> next_;
  std::vector<uint32_t> prev_;
  size_t num_live_ = 0;
  std::vector<Frame> frames_;  ///< pooled; frames_[0..depth_) are active
  size_t depth_ = 0;
  // Scratch for the allocation-free classify/meet kernels.
  lat::PartitionScratch scratch_;
  lat::Partition meet_tmp_;
  lat::Partition k_labeled_;
  lat::Partition k_other_;
};

}  // namespace jim::core

#endif  // JIM_CORE_SPECULATION_H_
