#include "core/strategies.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <limits>
#include <unordered_map>

#include "core/speculation.h"
#include "exec/parallel.h"
#include "util/logging.h"

namespace jim::core {

size_t Strategy::PickClass(const InferenceEngine& engine) {
  const std::vector<size_t>& candidates = engine.InformativeClasses();
  JIM_CHECK(!candidates.empty()) << "PickClass on a finished engine";
  const std::vector<double> scores = Score(engine, candidates);
  JIM_CHECK_EQ(scores.size(), candidates.size());
  size_t best = 0;
  for (size_t i = 1; i < candidates.size(); ++i) {
    if (scores[i] > scores[best]) best = i;
  }
  return candidates[best];
}

std::vector<size_t> Strategy::TopK(const InferenceEngine& engine, size_t k) {
  const std::vector<size_t>& candidates = engine.InformativeClasses();
  const std::vector<double> scores = Score(engine, candidates);
  JIM_CHECK_EQ(scores.size(), candidates.size());
  std::vector<size_t> order(candidates.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&scores](size_t a, size_t b) {
    return scores[a] > scores[b];
  });
  std::vector<size_t> top;
  top.reserve(std::min(k, order.size()));
  for (size_t i = 0; i < order.size() && i < k; ++i) {
    top.push_back(candidates[order[i]]);
  }
  return top;
}

// ---------------------------------------------------------------- Random --

RandomStrategy::RandomStrategy(uint64_t seed) : rng_(seed) {}

std::vector<double> RandomStrategy::Score(
    const InferenceEngine& engine, const std::vector<size_t>& candidates) {
  // Random scores, weighted so that larger classes are proportionally more
  // likely to take the maximum — this approximates a uniform pick over
  // informative tuples when used through TopK.
  std::vector<double> scores(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    const double u = rng_.UniformDouble();
    const double weight =
        static_cast<double>(engine.tuple_class(candidates[i]).size());
    // max of `weight` i.i.d. uniforms has CDF u^weight; u^(1/weight) samples
    // it, making argmax distributed proportionally to class sizes.
    scores[i] = std::pow(u, 1.0 / weight);
  }
  return scores;
}

size_t RandomStrategy::PickClass(const InferenceEngine& engine) {
  // Exact tuple-uniform choice: pick a random informative tuple and return
  // its class.
  const std::vector<size_t>& candidates = engine.InformativeClasses();
  JIM_CHECK(!candidates.empty());
  size_t total = 0;
  for (size_t c : candidates) total += engine.tuple_class(c).size();
  int64_t pick = rng_.UniformInt(0, static_cast<int64_t>(total) - 1);
  for (size_t c : candidates) {
    pick -= static_cast<int64_t>(engine.tuple_class(c).size());
    if (pick < 0) return c;
  }
  return candidates.back();
}

// ----------------------------------------------------------------- Local --

LocalStrategy::LocalStrategy(Direction direction) : direction_(direction) {}

std::string_view LocalStrategy::name() const {
  return direction_ == Direction::kBottomUp ? "local-bottom-up"
                                            : "local-top-down";
}

std::vector<double> LocalStrategy::Score(
    const InferenceEngine& engine, const std::vector<size_t>& candidates) {
  std::vector<double> scores(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    // Candidates are informative, so the engine's knowledge cache is fresh —
    // no meet needed to read the rank of K = θ_P ∧ Part(t).
    const double rank =
        static_cast<double>(engine.ClassKnowledge(candidates[i]).Rank());
    scores[i] = direction_ == Direction::kBottomUp ? -rank : rank;
  }
  return scores;
}

// ------------------------------------------------------------- Lookahead --

LookaheadStrategy::LookaheadStrategy(Objective objective, double alpha,
                                     size_t max_candidates)
    : objective_(objective), alpha_(alpha), max_candidates_(max_candidates) {
  switch (objective_) {
    case Objective::kMinMax:
      name_ = "lookahead-minmax";
      break;
    case Objective::kExpected:
      name_ = "lookahead-expected";
      break;
    case Objective::kEntropy:
      name_ = "lookahead-entropy";
      break;
  }
}

std::string_view LookaheadStrategy::name() const { return name_; }

double LookaheadStrategy::Aggregate(size_t n_plus, size_t n_minus) const {
  const double a = static_cast<double>(n_plus);
  const double b = static_cast<double>(n_minus);
  switch (objective_) {
    case Objective::kMinMax:
      return std::min(a, b);
    case Objective::kExpected:
      return (a + b) / 2.0;
    case Objective::kEntropy: {
      const double total = a + b;
      const double p = a / total;
      double entropy;
      if (std::abs(alpha_ - 1.0) < 1e-9) {
        // Shannon (limit of the Tsallis family as α → 1), in nats.
        entropy = 0.0;
        if (p > 0) entropy -= p * std::log(p);
        if (p < 1) entropy -= (1 - p) * std::log(1 - p);
      } else {
        // Tsallis entropy H_α(p) = (1 - p^α - (1-p)^α) / (α - 1).
        entropy =
            (1.0 - std::pow(p, alpha_) - std::pow(1 - p, alpha_)) /
            (alpha_ - 1.0);
      }
      return total * entropy;
    }
  }
  return 0;
}

std::vector<double> LookaheadStrategy::Score(
    const InferenceEngine& engine, const std::vector<size_t>& candidates) {
  std::vector<double> scores(candidates.size(),
                             -std::numeric_limits<double>::infinity());
  // Deterministic candidate cap: score an evenly spaced subsample when the
  // pool is too large; unsampled candidates keep -inf and are never picked.
  const size_t n = candidates.size();
  const size_t cap =
      max_candidates_ == 0 ? n : std::min(n, max_candidates_);
  exec::ThreadPool* pool = use_shared_pool_ ? &exec::SharedPool() : pool_;
  if (pool != nullptr && pool->threads() > 1 && cap > 1) {
    // Sampled candidate j → slot j*n/cap, strictly increasing in j, so every
    // chunk writes disjoint score slots and the result vector is identical
    // to the serial path bit for bit. Each chunk owns one EvalScratch; both
    // the per-candidate simulation and Aggregate are pure, so scheduling
    // cannot leak into the scores.
    scratch_pool_.EnsureSlots(std::min(pool->threads(), cap));
    pool->ParallelFor(cap, [&](size_t j, size_t chunk) {
      exec::EvalScratch& slot = scratch_pool_.Slot(chunk);
      const size_t i = j * n / cap;
      const auto both = engine.SimulateLabelBothWith(candidates[i],
                                                     slot.meet_tmp,
                                                     slot.scratch);
      scores[i] =
          Aggregate(both.positive.pruned_tuples, both.negative.pruned_tuples);
    });
  } else {
    for (size_t j = 0; j < cap; ++j) {
      const size_t i = j * n / cap;
      const auto both = engine.SimulateLabelBoth(candidates[i]);
      scores[i] =
          Aggregate(both.positive.pruned_tuples, both.negative.pruned_tuples);
    }
  }
  return scores;
}

bool LookaheadStrategy::CutoffUsable() const {
  if (objective_ != Objective::kEntropy) return true;
  // The Shannon branch fires for α ≈ 1 > 0; plain Tsallis needs α > 0 for
  // monotonicity (α ≤ 0 puts negative exponents on the counts).
  return alpha_ > 0;
}

namespace {

/// Strategy-objective adapter for the engine's bounded simulation: the upper
/// bound at (pos_cap, neg_cap) is the objective itself (monotone — see
/// LookaheadStrategy::CutoffUsable), widened for the entropy family by a
/// multiplicative ulp-scale slack so floating-point rounding of log/pow can
/// never make the "bound" dip below an achievable score.
class MonotoneBound final : public InferenceEngine::AggregateBoundFn {
 public:
  MonotoneBound(const LookaheadStrategy& strategy, bool slack)
      : strategy_(strategy), slack_(slack) {}
  double UpperBound(size_t pos_cap, size_t neg_cap) const override {
    const double value = strategy_.ObjectiveValue(pos_cap, neg_cap);
    if (!slack_) return value;  // min/mean: exact in double up to 2^53
    return value * (1.0 + 1e-9) + 1e-9;
  }

 private:
  const LookaheadStrategy& strategy_;
  const bool slack_;
};

}  // namespace

size_t LookaheadStrategy::PickClass(const InferenceEngine& engine) {
  last_skips_.clear();
  last_evaluated_ = 0;
  if (!cutoff_enabled_ || !CutoffUsable()) {
    return Strategy::PickClass(engine);
  }
  const std::vector<size_t>& candidates = engine.InformativeClasses();
  JIM_CHECK(!candidates.empty()) << "PickClass on a finished engine";
  const size_t n = candidates.size();
  const size_t cap = max_candidates_ == 0 ? n : std::min(n, max_candidates_);

  InferenceEngine::LookaheadBoundsCache bounds;
  engine.PrepareLookaheadBounds(bounds);
  const MonotoneBound objective(*this, objective_ == Objective::kEntropy);

  constexpr double kNegInf = -std::numeric_limits<double>::infinity();
  std::vector<double> scores(n, kNegInf);
  std::vector<double> skip_bound(n, kNegInf);
  std::vector<uint8_t> evaluated(n, 0);
  exec::ThreadPool* pool = use_shared_pool_ ? &exec::SharedPool() : pool_;
  if (pool != nullptr && pool->threads() > 1 && cap > 1) {
    // Same disjoint-slot sampling as Score. The running best is a relaxed
    // atomic maximum: a chunk reading a stale (smaller) best merely skips
    // less. Every skipped candidate's true score stays strictly below the
    // final maximum, so the argmax below is the exhaustive one — the scores
    // it compares are bitwise Score()'s wherever they were computed, and
    // every candidate achieving the maximum is always computed.
    scratch_pool_.EnsureSlots(std::min(pool->threads(), cap));
    std::atomic<double> best{kNegInf};
    pool->ParallelFor(cap, [&](size_t j, size_t chunk) {
      exec::EvalScratch& slot = scratch_pool_.Slot(chunk);
      const size_t i = j * n / cap;
      const double threshold = best.load(std::memory_order_relaxed);
      InferenceEngine::LabelImpactPair both;
      double bound = kNegInf;
      if (engine.SimulateLabelBothBounded(candidates[i], slot.meet_tmp,
                                          slot.scratch, bounds, objective,
                                          threshold, &both, &bound)) {
        const double score = Aggregate(both.positive.pruned_tuples,
                                       both.negative.pruned_tuples);
        scores[i] = score;
        evaluated[i] = 1;
        double current = best.load(std::memory_order_relaxed);
        while (current < score &&
               !best.compare_exchange_weak(current, score,
                                           std::memory_order_relaxed)) {
        }
      } else {
        skip_bound[i] = bound;
      }
    });
  } else {
    // Serial: the best is a monotone running maximum, so later candidates
    // face the tightest threshold seen so far.
    scratch_pool_.EnsureSlots(1);
    exec::EvalScratch& slot = scratch_pool_.Slot(0);
    double best = kNegInf;
    for (size_t j = 0; j < cap; ++j) {
      const size_t i = j * n / cap;
      InferenceEngine::LabelImpactPair both;
      double bound = kNegInf;
      if (engine.SimulateLabelBothBounded(candidates[i], slot.meet_tmp,
                                          slot.scratch, bounds, objective,
                                          best, &both, &bound)) {
        scores[i] = Aggregate(both.positive.pruned_tuples,
                              both.negative.pruned_tuples);
        evaluated[i] = 1;
        best = std::max(best, scores[i]);
      } else {
        skip_bound[i] = bound;
      }
    }
  }

  size_t best_i = 0;
  for (size_t i = 1; i < n; ++i) {
    if (scores[i] > scores[best_i]) best_i = i;
  }
  for (size_t j = 0; j < cap; ++j) {
    const size_t i = j * n / cap;
    if (evaluated[i]) {
      ++last_evaluated_;
    } else {
      last_skips_.push_back(CutoffSkip{candidates[i], skip_bound[i]});
    }
  }
  return candidates[best_i];
}

// --------------------------------------------------------------- Optimal --

namespace {

/// Memoized minimax over inference states, explored on one
/// SpeculativeSession: labels are applied and undone on the trail, so a tree
/// node costs O(classes pruned by its label) bookkeeping instead of the old
/// full-engine rescan (classify *every* class) plus an InferenceState copy
/// per answer branch. A state is summarized by its compact StateKey
/// (canonical label vectors + precomputed hash — no string rendering on the
/// memo path); the candidate iteration order is the session's ascending live
/// list, exactly the worklist order the rescan produced, so memoized values
/// and tie-breaks are unchanged.
class MinimaxSolver {
 public:
  MinimaxSolver(const InferenceEngine& engine, size_t node_budget)
      : session_(engine), node_budget_(node_budget) {}

  /// Worst-case questions needed from the session's current state.
  size_t Solve() {
    InferenceState::StateKey key = session_.state().MakeStateKey();
    auto it = memo_.find(key);
    if (it != memo_.end()) return it->second;
    JIM_CHECK_LT(nodes_++, node_budget_)
        << "optimal strategy exceeded its node budget";

    // Iterating the live list directly is safe across the recursive
    // Apply/Undo below: every Apply is undone before the next NextLive read,
    // and the dancing-links restore is exact.
    size_t best = session_.num_live() == 0 ? 0 : SIZE_MAX;
    for (size_t c = session_.FirstLive(); c != session_.LiveEnd();
         c = session_.NextLive(c)) {
      const size_t cost = 1 + WorstAnswer(c);
      best = std::min(best, cost);
      if (best == 1) break;  // cannot do better than one question
    }
    memo_.emplace(std::move(key), best);
    return best;
  }

  /// max over the two answers of Solve(current state + answer).
  size_t WorstAnswer(size_t class_id) {
    size_t worst = 0;
    for (Label label : {Label::kPositive, Label::kNegative}) {
      session_.Apply(class_id, label);
      worst = std::max(worst, Solve());
      session_.Undo();
    }
    return worst;
  }

 private:
  SpeculativeSession session_;
  size_t node_budget_;
  size_t nodes_ = 0;
  std::unordered_map<InferenceState::StateKey, size_t,
                     InferenceState::StateKeyHash>
      memo_;
};

}  // namespace

OptimalStrategy::OptimalStrategy(size_t node_budget)
    : node_budget_(node_budget) {}

std::vector<double> OptimalStrategy::Score(
    const InferenceEngine& engine, const std::vector<size_t>& candidates) {
  MinimaxSolver solver(engine, node_budget_);
  std::vector<double> scores(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    scores[i] = -static_cast<double>(solver.WorstAnswer(candidates[i]));
  }
  return scores;
}

size_t OptimalWorstCaseQuestions(const InferenceEngine& engine,
                                 size_t node_budget) {
  MinimaxSolver solver(engine, node_budget);
  return solver.Solve();
}

// --------------------------------------------------------------- Factory --

util::StatusOr<std::unique_ptr<Strategy>> MakeStrategy(std::string_view name,
                                                       uint64_t seed,
                                                       double alpha) {
  std::unique_ptr<Strategy> strategy;
  if (name == "random") {
    strategy = std::make_unique<RandomStrategy>(seed);
  } else if (name == "local-bottom-up") {
    strategy = std::make_unique<LocalStrategy>(LocalStrategy::Direction::kBottomUp);
  } else if (name == "local-top-down") {
    strategy = std::make_unique<LocalStrategy>(LocalStrategy::Direction::kTopDown);
  } else if (name == "lookahead-minmax") {
    strategy = std::make_unique<LookaheadStrategy>(
        LookaheadStrategy::Objective::kMinMax);
  } else if (name == "lookahead-expected") {
    strategy = std::make_unique<LookaheadStrategy>(
        LookaheadStrategy::Objective::kExpected);
  } else if (name == "lookahead-entropy") {
    strategy = std::make_unique<LookaheadStrategy>(
        LookaheadStrategy::Objective::kEntropy, alpha);
  } else if (name == "optimal") {
    strategy = std::make_unique<OptimalStrategy>();
  } else {
    return util::InvalidArgumentError("unknown strategy '" +
                                      std::string(name) + "'");
  }
  return strategy;
}

std::vector<std::string> KnownStrategyNames() {
  return {"random",           "local-bottom-up",    "local-top-down",
          "lookahead-minmax", "lookahead-expected", "lookahead-entropy",
          "optimal"};
}

}  // namespace jim::core
