#ifndef JIM_CORE_STRATEGIES_H_
#define JIM_CORE_STRATEGIES_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/engine.h"
#include "exec/scratch_pool.h"
#include "exec/thread_pool.h"
#include "util/rng.h"
#include "util/status.h"

namespace jim::core {

/// A strategy Υ: given the engine's current knowledge, decides which
/// informative tuple (class) the user is asked to label next. The paper
/// distinguishes *local* strategies (cheap, fixed lattice orders), *lookahead*
/// strategies (score candidates by the quantity of information their label
/// would bring, via a generalized entropy), the *random* baseline, and the
/// exponential-time *optimal* strategy.
class Strategy {
 public:
  virtual ~Strategy() = default;

  virtual std::string_view name() const = 0;

  /// Scores for each candidate class (parallel to `candidates`); higher is
  /// better. Scores are comparable within one call only.
  virtual std::vector<double> Score(const InferenceEngine& engine,
                                    const std::vector<size_t>& candidates) = 0;

  /// The class to ask about next: by default the argmax of Score over all
  /// informative classes, ties broken toward the smallest class id (which
  /// makes local strategies fully deterministic). Requires !engine.IsDone().
  virtual size_t PickClass(const InferenceEngine& engine);

  /// The `k` best classes, best first (used by interaction mode 3,
  /// "proposing top-k informative tuples").
  std::vector<size_t> TopK(const InferenceEngine& engine, size_t k);
};

/// Uniform choice among informative *tuples* (so classes are weighted by
/// their member counts, matching a user clicking a random non-grayed row).
class RandomStrategy : public Strategy {
 public:
  explicit RandomStrategy(uint64_t seed);
  std::string_view name() const override { return "random"; }
  std::vector<double> Score(const InferenceEngine& engine,
                            const std::vector<size_t>& candidates) override;
  size_t PickClass(const InferenceEngine& engine) override;

 private:
  util::Rng rng_;
};

/// Local strategy: fixed order by the lattice rank of the knowledge
/// K = θ_P ∧ Part(t). Bottom-up asks about the *least* constrained candidate
/// first (rank ascending); top-down the most constrained (rank descending).
/// O(1) per candidate — the cheap end of the paper's spectrum.
class LocalStrategy : public Strategy {
 public:
  enum class Direction { kBottomUp, kTopDown };
  explicit LocalStrategy(Direction direction);
  std::string_view name() const override;
  std::vector<double> Score(const InferenceEngine& engine,
                            const std::vector<size_t>& candidates) override;

 private:
  Direction direction_;
};

/// Lookahead strategy: simulates both answers for each candidate and scores
/// by how much of the instance gets pruned. `Objective` selects the
/// aggregation of the two pruning counts (n⁺, n⁻):
///   kMinMax    — min(n⁺, n⁻): maximize guaranteed progress;
///   kExpected  — (n⁺ + n⁻) / 2: maximize average progress;
///   kEntropy   — (n⁺+n⁻) · H_α(n⁺/(n⁺+n⁻)): the generalized-entropy
///                objective the paper alludes to (Tsallis family; α = 1 is
///                Shannon entropy).
/// O(#classes) simulations per candidate; `max_candidates` bounds the number
/// of candidates scored per step (a deterministic sample keeps huge
/// instances interactive), 0 = unlimited.
///
/// Scoring is embarrassingly parallel — every candidate's SimulateLabelBoth
/// is independent once each thread owns an exec::EvalScratch — and it runs
/// on a thread pool (exec::SharedPool() by default). The parallel path is
/// bitwise-deterministic at any thread count: each candidate's score lands
/// in its slot of a pre-sized vector, and PickClass's serial argmax (ties
/// toward the smallest index) is unchanged.
class LookaheadStrategy : public Strategy {
 public:
  enum class Objective { kMinMax, kExpected, kEntropy };

  LookaheadStrategy(Objective objective, double alpha = 1.0,
                    size_t max_candidates = 256);
  std::string_view name() const override;
  std::vector<double> Score(const InferenceEngine& engine,
                            const std::vector<size_t>& candidates) override;

  /// Cutoff-pruned argmax (see DESIGN below): candidates whose aggregate
  /// upper bound provably cannot beat the best score found so far are
  /// skipped without (or part-way through) their SimulateLabelBoth scan.
  /// The skip test is strict (bound < best), every Aggregate objective here
  /// is monotone in each pruning count, and computed scores are bitwise
  /// those of Score — so the returned class is always identical to
  /// Strategy::PickClass over an exhaustive Score, at any thread count
  /// (serially the best is a monotone running maximum; in parallel it is a
  /// relaxed atomic maximum, and a stale read only costs a missed skip).
  /// Falls back to the exhaustive path when cutoff is disabled or the
  /// objective is non-monotone (Tsallis α ≤ 0).
  size_t PickClass(const InferenceEngine& engine) override;

  /// Scores candidates on `pool` instead of the process-wide default;
  /// nullptr forces the serial reference path. The pool is not owned and
  /// must outlive the strategy's last Score call.
  void set_thread_pool(exec::ThreadPool* pool) {
    pool_ = pool;
    use_shared_pool_ = false;
  }

  /// Cutoff pruning is on by default; benches and parity tests switch it off
  /// to get the exhaustive reference path.
  void set_cutoff_enabled(bool enabled) { cutoff_enabled_ = enabled; }
  bool cutoff_enabled() const { return cutoff_enabled_; }

  /// The aggregate objective itself, exposed so tests can recompute a
  /// skipped candidate's true score and check it against the bound it was
  /// skipped under (bound soundness).
  double ObjectiveValue(size_t n_plus, size_t n_minus) const {
    return Aggregate(n_plus, n_minus);
  }
  Objective objective() const { return objective_; }
  double alpha() const { return alpha_; }

  /// Instrumentation from the most recent PickClass call (empty after Score
  /// or when the cutoff was bypassed): which sampled candidates were skipped
  /// and under what bound, in candidate order, plus how many were fully
  /// evaluated. Skip *counts* may vary with thread count (the parallel best
  /// evolves nondeterministically); the returned pick never does.
  struct CutoffSkip {
    size_t class_id = 0;
    double bound = 0;
  };
  const std::vector<CutoffSkip>& last_skips() const { return last_skips_; }
  size_t last_evaluated() const { return last_evaluated_; }

 private:
  double Aggregate(size_t n_plus, size_t n_minus) const;
  /// True when Aggregate is monotone nondecreasing in each count, which is
  /// what makes Aggregate(caps) a sound upper bound: min and mean trivially;
  /// total · H_α at fixed total is maximized... (∂/∂n⁺ of the Shannon form is
  /// ln(total/n⁺) ≥ 0, Tsallis α > 0 likewise). Tsallis α ≤ 0 is not, so the
  /// cutoff turns itself off there.
  bool CutoffUsable() const;

  Objective objective_;
  double alpha_;
  size_t max_candidates_;
  std::string name_;
  exec::ThreadPool* pool_ = nullptr;  ///< not owned (see set_thread_pool)
  bool use_shared_pool_ = true;
  bool cutoff_enabled_ = true;
  std::vector<CutoffSkip> last_skips_;
  size_t last_evaluated_ = 0;
  /// One EvalScratch per ParallelFor chunk, reused across Score calls.
  exec::ScratchPool scratch_pool_;
};

/// Exact minimax strategy: explores the full game tree of (question, answer)
/// pairs and asks the question minimizing the worst-case number of remaining
/// interactions. Exponential time and memory (memoized on canonical states);
/// the paper: "it requires exponential time, which unfortunately renders it
/// unusable in practice". Guarded by a node budget: exceeding it aborts via
/// JIM_CHECK, so use only on tiny instances (bench S4).
class OptimalStrategy : public Strategy {
 public:
  explicit OptimalStrategy(size_t node_budget = 2'000'000);
  std::string_view name() const override { return "optimal"; }
  std::vector<double> Score(const InferenceEngine& engine,
                            const std::vector<size_t>& candidates) override;

 private:
  size_t node_budget_;
};

/// Worst-case number of questions an optimal questioner needs from the
/// engine's current state (the minimax value of the inference game).
/// `node_budget` bounds the memoized search.
size_t OptimalWorstCaseQuestions(const InferenceEngine& engine,
                                 size_t node_budget = 2'000'000);

/// Factory. Known names: "random", "local-bottom-up", "local-top-down",
/// "lookahead-minmax", "lookahead-expected", "lookahead-entropy", "optimal".
/// `seed` feeds randomized strategies; `alpha` the entropy family.
util::StatusOr<std::unique_ptr<Strategy>> MakeStrategy(std::string_view name,
                                                       uint64_t seed = 1,
                                                       double alpha = 1.0);

/// All strategy names accepted by MakeStrategy, in presentation order.
std::vector<std::string> KnownStrategyNames();

}  // namespace jim::core

#endif  // JIM_CORE_STRATEGIES_H_
