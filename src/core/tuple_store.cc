#include "core/tuple_store.h"

#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "exec/parallel.h"
#include "exec/thread_pool.h"
#include "util/logging.h"

namespace jim::core {

void TupleStore::TupleCodes(size_t t, uint32_t* out) const {
  const size_t n = num_attributes();
  for (size_t a = 0; a < n; ++a) out[a] = code(t, a);
}

rel::Tuple TupleStore::DecodeTuple(size_t t) const {
  const size_t n = num_attributes();
  rel::Tuple tuple;
  tuple.reserve(n);
  for (size_t a = 0; a < n; ++a) tuple.push_back(DecodeValue(t, a));
  return tuple;
}

RelationTupleStore::RelationTupleStore(
    std::shared_ptr<const rel::Relation> relation)
    : RelationTupleStore(relation,
                         relation != nullptr &&
                                 relation->num_rows() >=
                                     rel::kParallelIngestMinRows
                             ? &exec::SharedPool()
                             : nullptr) {}

RelationTupleStore::RelationTupleStore(
    std::shared_ptr<const rel::Relation> relation, exec::ThreadPool* pool)
    : relation_(std::move(relation)) {
  JIM_CHECK(relation_ != nullptr);
  stride_ = relation_->num_attributes();
  const size_t rows = relation_->num_rows();
  if (pool == nullptr || pool->threads() <= 1 ||
      rows < rel::kParallelIngestMinRows) {
    codes_.reserve(rows * stride_);
    for (size_t t = 0; t < rows; ++t) {
      const rel::Tuple& row = relation_->row(t);
      for (size_t a = 0; a < stride_; ++a) {
        codes_.push_back(row[a].is_null() ? rel::kNullCode
                                          : dictionary_.GetOrAdd(row[a]));
      }
    }
    return;
  }
  // Parallel ingest over row chunks: chunk-local dictionaries first, then a
  // serial first-occurrence merge, then a parallel code rewrite. Chunk
  // boundaries fall on rows and both ParallelFors chunk identically (the
  // assignment depends only on (rows, threads)), so the shared dictionary's
  // code order — cell-major first occurrence, one fresh code per NaN
  // occurrence — is bitwise-identical to the serial path above.
  codes_.assign(rows * stride_, 0);
  std::vector<rel::Dictionary> chunk_dictionaries(pool->threads());
  pool->ParallelFor(rows, [&](size_t t, size_t chunk) {
    const rel::Tuple& row = relation_->row(t);
    uint32_t* cell = codes_.data() + t * stride_;
    for (size_t a = 0; a < stride_; ++a) {
      cell[a] = row[a].is_null()
                    ? rel::kNullCode
                    : chunk_dictionaries[chunk].GetOrAdd(row[a]);
    }
  });
  const std::vector<std::vector<uint32_t>> remaps =
      rel::MergeChunkDictionaries(chunk_dictionaries, dictionary_);
  pool->ParallelFor(rows, [&](size_t t, size_t chunk) {
    uint32_t* cell = codes_.data() + t * stride_;
    for (size_t a = 0; a < stride_; ++a) {
      if (cell[a] != rel::kNullCode) cell[a] = remaps[chunk][cell[a]];
    }
  });
}

void RelationTupleStore::TupleCodes(size_t t, uint32_t* out) const {
  const uint32_t* row = codes_.data() + t * stride_;
  for (size_t a = 0; a < stride_; ++a) out[a] = row[a];
}

size_t RelationTupleStore::ApproxBytes() const {
  return codes_.capacity() * sizeof(uint32_t) + dictionary_.ApproxBytes();
}

void CheckStoreInvariants(const TupleStore& store) {
  const size_t num_tuples = store.num_tuples();
  const size_t n = store.num_attributes();
  JIM_CHECK_EQ(store.schema().num_attributes(), n);
  // code ↔ value agreement, built up cell by cell (lookup-only maps; the
  // audit's verdict is order-independent).
  std::unordered_map<uint32_t, rel::Value> value_of_code;
  std::unordered_map<rel::Value, uint32_t, rel::ValueHash> code_of_value;
  std::unordered_set<uint32_t> nan_codes;
  std::vector<uint32_t> row(n);
  for (size_t t = 0; t < num_tuples; ++t) {
    store.TupleCodes(t, row.data());
    for (size_t a = 0; a < n; ++a) {
      const uint32_t code = store.code(t, a);
      JIM_CHECK_EQ(row[a], code)
          << "TupleCodes disagrees with code() at cell (" << t << ", " << a
          << ")";
      const rel::Value value = store.DecodeValue(t, a);
      // kNullCode discipline: the sentinel exactly marks NULL cells.
      JIM_CHECK_EQ(value.is_null(), code == rel::kNullCode)
          << "NULL/kNullCode mismatch at cell (" << t << ", " << a << ")";
      if (value.is_null()) continue;
      if (value.type() == rel::ValueType::kDouble &&
          std::isnan(value.AsDouble())) {
        // NaN ≠ NaN: every NaN cell must carry its own code, and that code
        // can never also serve a comparable value.
        JIM_CHECK(nan_codes.insert(code).second)
            << "NaN cells share code " << code << " at (" << t << ", " << a
            << ")";
        JIM_CHECK(value_of_code.find(code) == value_of_code.end())
            << "code " << code << " serves both NaN and a comparable value";
        continue;
      }
      JIM_CHECK(nan_codes.find(code) == nan_codes.end())
          << "code " << code << " serves both NaN and a comparable value";
      const auto [code_it, fresh_code] = value_of_code.emplace(code, value);
      JIM_CHECK(fresh_code || code_it->second.Equals(value))
          << "code " << code << " decodes to unequal values at cell (" << t
          << ", " << a << ")";
      const auto [value_it, fresh_value] = code_of_value.emplace(value, code);
      JIM_CHECK(fresh_value || value_it->second == code)
          << "value '" << value.ToString() << "' carries two codes at cell ("
          << t << ", " << a << ")";
    }
  }
}

std::shared_ptr<const TupleStore> MakeRelationStore(
    std::shared_ptr<const rel::Relation> relation) {
  return std::make_shared<const RelationTupleStore>(std::move(relation));
}

std::shared_ptr<const TupleStore> MakeRelationStore(
    std::shared_ptr<const rel::Relation> relation, exec::ThreadPool* pool) {
  return std::make_shared<const RelationTupleStore>(std::move(relation),
                                                    pool);
}

}  // namespace jim::core
