#include "core/tuple_store.h"

#include "util/logging.h"

namespace jim::core {

void TupleStore::TupleCodes(size_t t, uint32_t* out) const {
  const size_t n = num_attributes();
  for (size_t a = 0; a < n; ++a) out[a] = code(t, a);
}

rel::Tuple TupleStore::DecodeTuple(size_t t) const {
  const size_t n = num_attributes();
  rel::Tuple tuple;
  tuple.reserve(n);
  for (size_t a = 0; a < n; ++a) tuple.push_back(DecodeValue(t, a));
  return tuple;
}

RelationTupleStore::RelationTupleStore(
    std::shared_ptr<const rel::Relation> relation)
    : relation_(std::move(relation)) {
  JIM_CHECK(relation_ != nullptr);
  stride_ = relation_->num_attributes();
  codes_.reserve(relation_->num_rows() * stride_);
  for (size_t t = 0; t < relation_->num_rows(); ++t) {
    const rel::Tuple& row = relation_->row(t);
    for (size_t a = 0; a < stride_; ++a) {
      codes_.push_back(row[a].is_null() ? rel::kNullCode
                                        : dictionary_.GetOrAdd(row[a]));
    }
  }
}

void RelationTupleStore::TupleCodes(size_t t, uint32_t* out) const {
  const uint32_t* row = codes_.data() + t * stride_;
  for (size_t a = 0; a < stride_; ++a) out[a] = row[a];
}

size_t RelationTupleStore::ApproxBytes() const {
  return codes_.capacity() * sizeof(uint32_t) + dictionary_.ApproxBytes();
}

std::shared_ptr<const TupleStore> MakeRelationStore(
    std::shared_ptr<const rel::Relation> relation) {
  return std::make_shared<const RelationTupleStore>(std::move(relation));
}

}  // namespace jim::core
