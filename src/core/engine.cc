#include "core/engine.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <unordered_map>

#include "exec/parallel.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "util/hash.h"
#include "util/logging.h"

namespace jim::core {

std::string_view ClassStatusToString(ClassStatus status) {
  switch (status) {
    case ClassStatus::kInformative:
      return "informative";
    case ClassStatus::kForcedPositive:
      return "forced-positive";
    case ClassStatus::kForcedNegative:
      return "forced-negative";
    case ClassStatus::kLabeledPositive:
      return "labeled-positive";
    case ClassStatus::kLabeledNegative:
      return "labeled-negative";
  }
  return "?";
}

std::string_view TupleStatusToString(TupleStatus status) {
  switch (status) {
    case TupleStatus::kInformative:
      return "informative";
    case TupleStatus::kForcedPositive:
      return "forced-positive";
    case TupleStatus::kForcedNegative:
      return "forced-negative";
    case TupleStatus::kLabeledPositive:
      return "labeled-positive";
    case TupleStatus::kLabeledNegative:
      return "labeled-negative";
  }
  return "?";
}

InferenceEngine::InferenceEngine(std::shared_ptr<const TupleStore> store,
                                 exec::ThreadPool* pool)
    : store_(std::move(store)), state_(store_->num_attributes()) {
  JIM_CHECK(store_ != nullptr);
  {
    JIM_SPAN(obs::kHistEngineBuildMicros);
    BuildClasses(pool);
    // Some tuples may be uninformative from the start (e.g. all-values-equal
    // tuples are selected by every predicate).
    Propagate();
    RebuildPairCover();
    InitializeWatches();
  }
  JIM_COUNT(obs::kCounterEngineBuilds);
  JIM_COUNT_N(obs::kCounterEngineClassesBuilt, classes_->size());
  JIM_AUDIT(CheckInvariants());
}

InferenceEngine::InferenceEngine(std::shared_ptr<const TupleStore> store)
    : InferenceEngine(std::move(store), &exec::SharedPool()) {}

InferenceEngine::InferenceEngine(std::shared_ptr<const rel::Relation> relation)
    : InferenceEngine(MakeRelationStore(std::move(relation))) {}

namespace {

/// Canonical RGS labels of one tuple's code vector, written into `labels`:
/// the integer-kernel equivalent of TuplePartition — attributes grouped by
/// equal codes in first-occurrence order, every NULL (kNullCode) its own
/// singleton. Quadratic in the (small) attribute count, linear-time in
/// practice thanks to the early `assigned` skips; no sorting, no hashing of
/// Values. Returns an FNV-1a hash of the labels for the grouping map.
uint64_t CodesToRgs(const uint32_t* codes, size_t n, uint16_t* labels) {
  constexpr uint16_t kUnset = 0xFFFF;
  for (size_t i = 0; i < n; ++i) labels[i] = kUnset;
  uint16_t next = 0;
  for (size_t i = 0; i < n; ++i) {
    if (labels[i] != kUnset) continue;
    labels[i] = next;
    const uint32_t code = codes[i];
    if (code != rel::kNullCode) {
      for (size_t j = i + 1; j < n; ++j) {
        if (labels[j] == kUnset && codes[j] == code) labels[j] = next;
      }
    }
    ++next;
  }
  return util::Fnv1a64(labels, labels + n,
                       util::kFnv1a64OffsetBasis ^
                           (uint64_t{n} * 0x9e3779b97f4a7c15ull));
}

/// View key into the flat per-tuple RGS buffer, with its precomputed hash.
struct RgsKey {
  const uint16_t* labels;
  uint32_t n;
  uint64_t hash;
};
struct RgsKeyHash {
  size_t operator()(const RgsKey& key) const {
    return static_cast<size_t>(key.hash);
  }
};
struct RgsKeyEq {
  bool operator()(const RgsKey& a, const RgsKey& b) const {
    return a.hash == b.hash && a.n == b.n &&
           (a.n == 0 ||
            std::memcmp(a.labels, b.labels, a.n * sizeof(uint16_t)) == 0);
  }
};

}  // namespace

void InferenceEngine::BuildClasses(exec::ThreadPool* pool) {
  const size_t num_tuples = store_->num_tuples();
  const size_t n = store_->num_attributes();
  JIM_CHECK_LT(n, size_t{0xFFFF}) << "attribute count exceeds the RGS width";

  // Phase 1 (parallel, deterministic): per-tuple canonical RGS labels and
  // hashes, written by tuple index into flat buffers — pure integer work
  // over the store's codes, no allocation past the per-chunk code buffer.
  std::vector<uint16_t> rgs(num_tuples * n);
  std::vector<uint64_t> hashes(num_tuples);
  const size_t chunks =
      pool == nullptr ? 1 : std::max<size_t>(1, pool->threads());
  std::vector<std::vector<uint32_t>> code_buffers(
      chunks, std::vector<uint32_t>(n));
  const auto extract = [&](size_t t, size_t chunk) {
    uint32_t* codes = code_buffers[chunk].data();
    store_->TupleCodes(t, codes);
    hashes[t] = CodesToRgs(codes, n, rgs.data() + t * n);
  };
  if (pool != nullptr && pool->threads() > 1 && num_tuples > 1) {
    pool->ParallelFor(num_tuples, extract);
  } else {
    for (size_t t = 0; t < num_tuples; ++t) extract(t, 0);
  }

  // Phase 2 (serial merge): group equal label vectors; class ids are
  // assigned in first-occurrence tuple order, so the table is
  // bitwise-identical at any thread count.
  std::unordered_map<RgsKey, size_t, RgsKeyHash, RgsKeyEq> class_ids;
  auto classes = std::make_shared<std::vector<TupleClass>>();
  auto class_of_tuple = std::make_shared<std::vector<size_t>>();
  class_of_tuple->resize(num_tuples);
  std::vector<int> labels(n);
  for (size_t t = 0; t < num_tuples; ++t) {
    const uint16_t* tuple_rgs = rgs.data() + t * n;
    const RgsKey key{tuple_rgs, static_cast<uint32_t>(n), hashes[t]};
    auto [it, inserted] = class_ids.emplace(key, classes->size());
    if (inserted) {
      for (size_t a = 0; a < n; ++a) labels[a] = tuple_rgs[a];
      classes->push_back(
          TupleClass{lat::Partition::FromLabels(labels), {}});
    }
    (*classes)[it->second].tuple_indices.push_back(t);
    (*class_of_tuple)[t] = it->second;
  }

  session_ = std::make_shared<SessionArrays>();
  session_->class_status.assign(classes->size(), ClassStatus::kInformative);
  session_->explicit_label.assign(num_tuples, 0);
  // Initially θ_P = ⊤, so K_c = ⊤ ∧ Part(c) = Part(c); every class starts on
  // the worklist.
  knowledge_ = std::make_shared<std::vector<lat::Partition>>();
  knowledge_->reserve(classes->size());
  session_->informative.reserve(classes->size());
  session_->worklist_pos.reserve(classes->size());
  for (size_t c = 0; c < classes->size(); ++c) {
    knowledge_->push_back((*classes)[c].partition);
    session_->informative.push_back(c);
    session_->worklist_pos.push_back(static_cast<uint32_t>(c));
  }
  session_->watch_pair.assign(classes->size(), kNoWatch);
  session_->pair_watchers.resize(n * n);
  classes_ = std::move(classes);
  class_of_tuple_ = std::move(class_of_tuple);
}

void InferenceEngine::InitializeWatches() {
  SessionArrays& session = *session_;
  for (size_t c : session.informative) {
    const lat::Partition& k = (*knowledge_)[c];
    size_t wi = 0;
    size_t wj = 0;
    if (!k.FirstCoBlockPair(scratch_, &wi, &wj)) {
      AttachWatch(session, c, kBottomWatch);
    } else {
      const uint32_t uncovered = UncoveredPairSlot(k);
      AttachWatch(session, c,
                  uncovered != kNoWatch
                      ? uncovered
                      : static_cast<uint32_t>(wi * k.num_elements() + wj));
    }
  }
}

uint32_t InferenceEngine::UncoveredPairSlot(const lat::Partition& k) const {
  const size_t n = k.num_elements();
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (k.SameBlock(i, j) && pair_cover_[i * n + j] == 0) {
        return static_cast<uint32_t>(i * n + j);
      }
    }
  }
  return kNoWatch;
}

void InferenceEngine::AttachWatch(SessionArrays& session, size_t class_id,
                                  uint32_t slot) {
  session.watch_pair[class_id] = slot;
  if (slot == kBottomWatch) {
    session.bottom_watchers.push_back(static_cast<uint32_t>(class_id));
  } else {
    session.pair_watchers[slot].push_back(static_cast<uint32_t>(class_id));
  }
}

void InferenceEngine::RebuildPairCover() {
  state_.negatives().FillPairCover(store_->num_attributes(), pair_cover_);
}

std::vector<lat::Partition>& InferenceEngine::MutableKnowledge() {
  // use_count is exact here: a count of 1 can only race with *this* engine
  // being cloned concurrently, which is already outside the copy contract.
  if (knowledge_.use_count() != 1) {
    knowledge_ = std::make_shared<std::vector<lat::Partition>>(*knowledge_);
  } else {
    // Pair with the release-decrement of a sibling clone that just detached
    // (copied the vector and dropped the count to 1): without this fence the
    // in-place mutation below would be unordered against that copy's reads.
    std::atomic_thread_fence(std::memory_order_acquire);
  }
  return *knowledge_;
}

InferenceEngine::SessionArrays& InferenceEngine::MutableSession() {
  // Same copy-on-write protocol as MutableKnowledge.
  if (session_.use_count() != 1) {
    session_ = std::make_shared<SessionArrays>(*session_);
  } else {
    std::atomic_thread_fence(std::memory_order_acquire);
  }
  return *session_;
}

size_t InferenceEngine::Propagate() {
  const lat::Partition& theta = state_.theta_p();
  std::vector<size_t>& informative = session_->informative;
  size_t out = 0;
  size_t pruned = 0;
  for (size_t c : informative) {
    const lat::Partition& k = (*knowledge_)[c];
    if (k == theta) {
      session_->class_status[c] = ClassStatus::kForcedPositive;
      session_->worklist_pos[c] = kNoPos;
      ++pruned;
    } else if (state_.negatives().DominatedBy(k, scratch_)) {
      session_->class_status[c] = ClassStatus::kForcedNegative;
      session_->worklist_pos[c] = kNoPos;
      ++pruned;
    } else {
      session_->worklist_pos[c] = static_cast<uint32_t>(out);
      informative[out++] = c;
    }
  }
  informative.resize(out);
  JIM_COUNT(obs::kCounterEnginePropagateRuns);
  JIM_COUNT_N(obs::kCounterEnginePrunedClasses, pruned);
  JIM_OBSERVE(obs::kHistEngineWorklistSize, out);
  return pruned;
}

size_t InferenceEngine::PropagateAfterPositive() {
  const lat::Partition& theta = state_.theta_p();
  const size_t n = store_->num_attributes();
  // ApplyLabel restricted the antichain to the new θ_P — refresh the pair
  // cover before using it for exemptions below.
  RebuildPairCover();
  // The in-place cache refresh below is the one mutation of K_c anywhere in
  // the engine — detach from clone sharers first.
  std::vector<lat::Partition>& knowledge = MutableKnowledge();
  SessionArrays& session = *session_;
  std::vector<size_t>& informative = session.informative;
  size_t out = 0;
  size_t pruned = 0;
  size_t exempt = 0;
  for (size_t c : informative) {
    lat::Partition& k = knowledge[c];
    // The new θ_P refines the old, so meeting the *cached* knowledge with it
    // is the full refresh: K ∧ θ' = (θ ∧ Part(c)) ∧ θ' = θ' ∧ Part(c).
    k.MeetInto(theta, k, scratch_);
    if (k == theta) {
      session.class_status[c] = ClassStatus::kForcedPositive;
      session.worklist_pos[c] = kNoPos;
      session.watch_pair[c] = kNoWatch;
      ++pruned;
      continue;
    }
    // Watch exemption: the class's watched pair is a co-block pair of the
    // *old* K. If it survived the refresh (still co-block in the new K) and
    // no antichain member merges it, then no member can dominate the new K —
    // domination would require covering every co-block pair, this one
    // included. The kBottomWatch sentinel never exempts: a singleton K is
    // dominated by any nonempty antichain and must take the full scan.
    const uint32_t wp = session.watch_pair[c];
    const bool watch_alive =
        wp == kBottomWatch
            ? k.IsSingletons()
            : wp != kNoWatch && k.SameBlock(wp / n, wp % n);
    bool dominated;
    if (watch_alive && wp != kBottomWatch && pair_cover_[wp] == 0) {
      dominated = false;
      ++exempt;
    } else {
      dominated = state_.negatives().DominatedBy(k, scratch_);
    }
    if (dominated) {
      session.class_status[c] = ClassStatus::kForcedNegative;
      session.worklist_pos[c] = kNoPos;
      session.watch_pair[c] = kNoWatch;
      ++pruned;
      continue;
    }
    if (!watch_alive) {
      // The refresh merged/split blocks out from under the watch — re-arm on
      // a pair of the new K (uncovered preferred: it stays exempt next time).
      size_t wi = 0;
      size_t wj = 0;
      if (!k.FirstCoBlockPair(scratch_, &wi, &wj)) {
        AttachWatch(session, c, kBottomWatch);
      } else {
        const uint32_t uncovered = UncoveredPairSlot(k);
        AttachWatch(session, c,
                    uncovered != kNoWatch
                        ? uncovered
                        : static_cast<uint32_t>(wi * n + wj));
      }
    }
    session.worklist_pos[c] = static_cast<uint32_t>(out);
    informative[out++] = c;
  }
  informative.resize(out);
  JIM_COUNT_N(obs::kCounterEngineWatchExemptions, exempt);
  JIM_COUNT(obs::kCounterEnginePropagateRuns);
  JIM_COUNT_N(obs::kCounterEnginePrunedClasses, pruned);
  JIM_OBSERVE(obs::kHistEngineWorklistSize, out);
  return pruned;
}

size_t InferenceEngine::PropagateAfterNegative(
    const lat::Partition& forbidden) {
  const size_t n = store_->num_attributes();
  // ApplyLabel already inserted the forbidden zone, so the rebuilt cover is a
  // superset of pairs(F) — any uncovered pair found below is provably not in
  // F and safe to re-watch without re-waking this drain.
  RebuildPairCover();
  SessionArrays& session = *session_;
  size_t pruned = 0;
  size_t woken = 0;
  // θ_P is unchanged, so the only new reason to leave the pool is the fresh
  // forbidden zone F: a still-informative class is pruned iff K_c ≤ F. If
  // K_c ≤ F then *every* co-block pair of K_c — its watched pair included —
  // is co-block in F, so draining the watchers of F's pairs (plus the bottom
  // list: a singleton K refines everything) wakes a superset of the prunable
  // classes. Woken classes get the exact witness test; everyone else is
  // untouched.
  for (uint32_t c32 : session.bottom_watchers) {
    const size_t c = c32;
    if (session.watch_pair[c] != kBottomWatch) continue;  // stale entry
    ++woken;
    session.class_status[c] = ClassStatus::kForcedNegative;
    session.worklist_pos[c] = kNoPos;
    session.watch_pair[c] = kNoWatch;
    ++pruned;
  }
  session.bottom_watchers.clear();
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (!forbidden.SameBlock(i, j)) continue;
      const uint32_t slot = static_cast<uint32_t>(i * n + j);
      std::vector<uint32_t>& watchers = session.pair_watchers[slot];
      if (watchers.empty()) continue;
      for (uint32_t c32 : watchers) {
        const size_t c = c32;
        if (session.watch_pair[c] != slot) continue;  // stale entry
        ++woken;
        const lat::Partition& k = (*knowledge_)[c];
        size_t wi = 0;
        size_t wj = 0;
        if (!k.FindNonRefinementWitness(forbidden, scratch_, &wi, &wj)) {
          session.class_status[c] = ClassStatus::kForcedNegative;
          session.worklist_pos[c] = kNoPos;
          session.watch_pair[c] = kNoWatch;
          ++pruned;
          continue;
        }
        // Survivor: re-arm on a pair provably outside F so this drain cannot
        // revisit it — the witness is co-block in K but not in F by
        // construction, and any uncovered pair is outside every member.
        const uint32_t uncovered = UncoveredPairSlot(k);
        AttachWatch(session, c,
                    uncovered != kNoWatch
                        ? uncovered
                        : static_cast<uint32_t>(wi * n + wj));
      }
      watchers.clear();
    }
  }
  if (pruned > 0) {
    std::vector<size_t>& informative = session.informative;
    size_t out = 0;
    for (size_t c : informative) {
      if (session.class_status[c] != ClassStatus::kInformative) continue;
      session.worklist_pos[c] = static_cast<uint32_t>(out);
      informative[out++] = c;
    }
    informative.resize(out);
  }
  JIM_COUNT_N(obs::kCounterEngineWatchWakes, woken);
  JIM_COUNT(obs::kCounterEnginePropagateRuns);
  JIM_COUNT_N(obs::kCounterEnginePrunedClasses, pruned);
  JIM_OBSERVE(obs::kHistEngineWorklistSize, session.informative.size());
  return pruned;
}

void InferenceEngine::RemoveFromWorklist(size_t class_id) {
  SessionArrays& session = *session_;
  std::vector<size_t>& informative = session.informative;
  const uint32_t pos = session.worklist_pos[class_id];
  JIM_CHECK(pos != kNoPos && pos < informative.size() &&
            informative[pos] == class_id)
      << "worklist position index out of sync for class " << class_id;
  informative.erase(informative.begin() + pos);
  for (size_t i = pos; i < informative.size(); ++i) {
    session.worklist_pos[informative[i]] = static_cast<uint32_t>(i);
  }
  session.worklist_pos[class_id] = kNoPos;
  session.watch_pair[class_id] = kNoWatch;
}

size_t InferenceEngine::NumInformativeTuples() const {
  size_t count = 0;
  for (size_t c : session_->informative) count += (*classes_)[c].size();
  return count;
}

bool InferenceEngine::IsDone() const { return session_->informative.empty(); }

JoinPredicate InferenceEngine::Result() const {
  return JoinPredicate(store_->schema(), state_.theta_p());
}

util::DynamicBitset InferenceEngine::CertainResultTuples() const {
  util::DynamicBitset certain(store_->num_tuples());
  for (size_t c = 0; c < classes_->size(); ++c) {
    if (IsPositive(session_->class_status[c])) {
      for (size_t t : (*classes_)[c].tuple_indices) certain.Set(t);
    }
  }
  return certain;
}

util::DynamicBitset InferenceEngine::CertainNonResultTuples() const {
  util::DynamicBitset certain(store_->num_tuples());
  for (size_t c = 0; c < classes_->size(); ++c) {
    if (session_->class_status[c] == ClassStatus::kForcedNegative ||
        session_->class_status[c] == ClassStatus::kLabeledNegative) {
      for (size_t t : (*classes_)[c].tuple_indices) certain.Set(t);
    }
  }
  return certain;
}

util::Status InferenceEngine::LabelImpl(size_t class_id, size_t tuple_index,
                                        Label label) {
  // Every mutation below goes through the session arrays — detach once here
  // (a rejected contradictory label costs an unnecessary copy, which is
  // fine: rejections are rare and the state must stay unchanged anyway).
  SessionArrays& session = MutableSession();
  const ClassStatus before = session.class_status[class_id];
  // Relabeling an explicitly labeled class is rejected as contradictory or
  // accepted as a (wasted) repetition.
  if (before == ClassStatus::kLabeledPositive ||
      before == ClassStatus::kLabeledNegative) {
    const bool agrees = (before == ClassStatus::kLabeledPositive) ==
                        (label == Label::kPositive);
    if (!agrees) {
      JIM_COUNT(obs::kCounterEngineLabelsRejected);
      return util::FailedPreconditionError(
          "tuple was already labeled with the opposite label");
    }
    ++wasted_interactions_;
    history_.push_back(LabeledExample{tuple_index, label});
    session.explicit_label[tuple_index] = label == Label::kPositive ? 1 : 2;
    JIM_COUNT(obs::kCounterEngineLabelsAccepted);
    JIM_COUNT(obs::kCounterEngineLabelsWasted);
    return util::OkStatus();
  }

  const bool was_informative = before == ClassStatus::kInformative;
  {
    util::Status applied =
        state_.ApplyLabel((*classes_)[class_id].partition, label);
    if (!applied.ok()) {
      JIM_COUNT(obs::kCounterEngineLabelsRejected);
      return applied;
    }
  }
  JIM_COUNT(obs::kCounterEngineLabelsAccepted);
  // One JIM_COUNT site per name: the macro caches its counter in a
  // function-local static, so the name must be a per-site constant.
  if (label == Label::kPositive) {
    JIM_COUNT(obs::kCounterEngineLabelsPositive);
  } else {
    JIM_COUNT(obs::kCounterEngineLabelsNegative);
  }

  session.class_status[class_id] = label == Label::kPositive
                                       ? ClassStatus::kLabeledPositive
                                       : ClassStatus::kLabeledNegative;
  history_.push_back(LabeledExample{tuple_index, label});
  session.explicit_label[tuple_index] = label == Label::kPositive ? 1 : 2;
  if (!was_informative) {
    // Consistent label on a grayed-out tuple: accepted, teaches nothing.
    ++wasted_interactions_;
    JIM_COUNT(obs::kCounterEngineLabelsWasted);
    return util::OkStatus();
  }
  // The labeled class leaves the pool as kLabeled*; pull it off the worklist
  // before propagation so reclassification cannot overwrite that status.
  RemoveFromWorklist(class_id);
  if (label == Label::kPositive) {
    PropagateAfterPositive();
  } else {
    // θ_P is unchanged by a negative label, so the labeled class's cached
    // knowledge is still exactly the antichain member ApplyLabel inserted
    // (and nothing on this path mutates knowledge_).
    PropagateAfterNegative((*knowledge_)[class_id]);
  }
  return util::OkStatus();
}

TupleStatus InferenceEngine::tuple_status(size_t tuple_index) const {
  JIM_CHECK_LT(tuple_index, store_->num_tuples());
  if (session_->explicit_label[tuple_index] == 1) {
    return TupleStatus::kLabeledPositive;
  }
  if (session_->explicit_label[tuple_index] == 2) {
    return TupleStatus::kLabeledNegative;
  }
  switch (session_->class_status[(*class_of_tuple_)[tuple_index]]) {
    case ClassStatus::kInformative:
      return TupleStatus::kInformative;
    case ClassStatus::kForcedPositive:
    case ClassStatus::kLabeledPositive:
      return TupleStatus::kForcedPositive;
    case ClassStatus::kForcedNegative:
    case ClassStatus::kLabeledNegative:
      return TupleStatus::kForcedNegative;
  }
  return TupleStatus::kInformative;
}

util::Status InferenceEngine::SubmitTupleLabel(size_t tuple_index,
                                               Label label) {
  if (tuple_index >= store_->num_tuples()) {
    return util::OutOfRangeError("tuple index out of range");
  }
  const util::Status status =
      LabelImpl((*class_of_tuple_)[tuple_index], tuple_index, label);
  // Audited on rejection too: a refused label must leave the engine intact.
  JIM_AUDIT(CheckInvariants());
  return status;
}

util::Status InferenceEngine::SubmitClassLabel(size_t class_id, Label label) {
  if (class_id >= classes_->size()) {
    return util::OutOfRangeError("class id out of range");
  }
  const util::Status status =
      LabelImpl(class_id, (*classes_)[class_id].tuple_indices.front(), label);
  JIM_AUDIT(CheckInvariants());
  return status;
}

InferenceEngine::LabelImpact InferenceEngine::SimulateLabel(
    size_t class_id, Label label) const {
  // The naive reference implementation (full state copy + rescan); the hot
  // paths use SimulateLabelBoth, and the parity tests pin the two together.
  JIM_CHECK_LT(class_id, classes_->size());
  JIM_CHECK(session_->class_status[class_id] == ClassStatus::kInformative);
  InferenceState hypothetical = state_;
  // An informative class accepts either label by definition.
  JIM_CHECK_OK(hypothetical.ApplyLabel((*classes_)[class_id].partition, label));

  LabelImpact impact;
  impact.pruned_classes = 1;
  impact.pruned_tuples = (*classes_)[class_id].size();
  for (size_t c = 0; c < classes_->size(); ++c) {
    if (c == class_id ||
        session_->class_status[c] != ClassStatus::kInformative) {
      continue;
    }
    if (hypothetical.Classify((*classes_)[c].partition) !=
        TupleClassification::kInformative) {
      ++impact.pruned_classes;
      impact.pruned_tuples += (*classes_)[c].size();
    }
  }
  return impact;
}

InferenceEngine::LabelImpactPair InferenceEngine::SimulateLabelBoth(
    size_t class_id) const {
  return SimulateLabelBothWith(class_id, meet_tmp_, scratch_);
}

InferenceEngine::LabelImpactPair InferenceEngine::SimulateLabelBothWith(
    size_t class_id, lat::Partition& meet_tmp,
    lat::PartitionScratch& scratch) const {
  JIM_COUNT(obs::kCounterEngineSimulateLabelBoth);
  JIM_CHECK_LT(class_id, classes_->size());
  JIM_CHECK(session_->class_status[class_id] == ClassStatus::kInformative);
  const lat::Partition& k_labeled = (*knowledge_)[class_id];

  LabelImpactPair impact;
  impact.positive.pruned_classes = impact.negative.pruned_classes = 1;
  impact.positive.pruned_tuples = impact.negative.pruned_tuples =
      (*classes_)[class_id].size();
  for (size_t c : session_->informative) {
    if (c == class_id) continue;
    const lat::Partition& k = (*knowledge_)[c];
    const size_t members = (*classes_)[c].size();
    // Negative answer: the forbidden zone grows by exactly k_labeled, so the
    // class is pruned iff its knowledge falls inside it.
    if (k.RefinesWith(k_labeled, scratch)) {
      ++impact.negative.pruned_classes;
      impact.negative.pruned_tuples += members;
    }
    // Positive answer: the hypothetical θ_P is k_labeled, and the class's
    // hypothetical knowledge is k_labeled ∧ k (meeting cached knowledge is
    // enough — both already lie below the current θ_P).
    if (k_labeled.RefinesWith(k, scratch)) {
      // k_labeled ∧ k == k_labeled: forced positive.
      ++impact.positive.pruned_classes;
      impact.positive.pruned_tuples += members;
    } else {
      k_labeled.MeetInto(k, meet_tmp, scratch);
      // Testing against the *current* antichain is exact: restricting it to
      // the new θ_P never changes domination of partitions below that θ_P.
      if (state_.negatives().DominatedBy(meet_tmp, scratch)) {
        ++impact.positive.pruned_classes;
        impact.positive.pruned_tuples += members;
      }
    }
  }
  return impact;
}

void InferenceEngine::PrepareLookaheadBounds(
    LookaheadBoundsCache& cache) const {
  const size_t n = store_->num_attributes();
  const std::vector<size_t>& informative = session_->informative;
  // Histogram of worklist tuple mass by rank(K_c), then prefix/suffix in
  // place. rank = n − #blocks ∈ [0, n).
  cache.tuples_rank_le.assign(n, 0);
  cache.tuples_rank_ge.assign(n, 0);
  for (size_t c : informative) {
    cache.tuples_rank_le[(*knowledge_)[c].Rank()] += (*classes_)[c].size();
  }
  size_t run = 0;
  for (size_t r = n; r-- > 0;) {
    run += cache.tuples_rank_le[r];
    cache.tuples_rank_ge[r] = run;
  }
  cache.total_tuples = run;
  for (size_t r = 1; r < n; ++r) {
    cache.tuples_rank_le[r] += cache.tuples_rank_le[r - 1];
  }
  cache.suffix_tuples.assign(informative.size() + 1, 0);
  size_t suffix = 0;
  for (size_t i = informative.size(); i-- > 0;) {
    suffix += (*classes_)[informative[i]].size();
    cache.suffix_tuples[i] = suffix;
  }
  cache.antichain_empty = state_.negatives().members().empty();
}

bool InferenceEngine::SimulateLabelBothBounded(
    size_t class_id, lat::Partition& meet_tmp, lat::PartitionScratch& scratch,
    const LookaheadBoundsCache& bounds, const AggregateBoundFn& objective,
    double threshold, LabelImpactPair* impact, double* skip_bound) const {
  JIM_CHECK_LT(class_id, classes_->size());
  JIM_CHECK(session_->class_status[class_id] == ClassStatus::kInformative);
  const size_t pos_cap = LookaheadPosCap(bounds, class_id);
  const size_t neg_cap = LookaheadNegCap(bounds, class_id);
  {
    // O(1) precheck: can the candidate beat the threshold at all?
    const double bound = objective.UpperBound(pos_cap, neg_cap);
    if (bound < threshold) {
      *skip_bound = bound;
      JIM_COUNT(obs::kCounterEngineCutoffSkips);
      return false;
    }
  }
  const lat::Partition& k_labeled = (*knowledge_)[class_id];
  const std::vector<size_t>& informative = session_->informative;

  LabelImpactPair result;
  result.positive.pruned_classes = result.negative.pruned_classes = 1;
  result.positive.pruned_tuples = result.negative.pruned_tuples =
      (*classes_)[class_id].size();
  for (size_t i = 0; i < informative.size(); ++i) {
    if ((i & 63u) == 63u) {
      // In-scan abort: counts so far plus the remaining worklist tuple mass
      // (still capped) bound anything this candidate can reach. The suffix
      // may re-count the candidate's own class — harmless, bounds only widen.
      const size_t rem = bounds.suffix_tuples[i];
      const double bound = objective.UpperBound(
          std::min(result.positive.pruned_tuples + rem, pos_cap),
          std::min(result.negative.pruned_tuples + rem, neg_cap));
      if (bound < threshold) {
        *skip_bound = bound;
        JIM_COUNT(obs::kCounterEngineCutoffSkips);
        return false;
      }
    }
    const size_t c = informative[i];
    if (c == class_id) continue;
    const lat::Partition& k = (*knowledge_)[c];
    const size_t members = (*classes_)[c].size();
    // Identical arithmetic to SimulateLabelBothWith — a fully evaluated
    // candidate's impact pair is bitwise the same.
    if (k.RefinesWith(k_labeled, scratch)) {
      ++result.negative.pruned_classes;
      result.negative.pruned_tuples += members;
    }
    if (k_labeled.RefinesWith(k, scratch)) {
      ++result.positive.pruned_classes;
      result.positive.pruned_tuples += members;
    } else {
      k_labeled.MeetInto(k, meet_tmp, scratch);
      if (state_.negatives().DominatedBy(meet_tmp, scratch)) {
        ++result.positive.pruned_classes;
        result.positive.pruned_tuples += members;
      }
    }
  }
  // Counted only on full evaluation, so skip fraction =
  // cutoff_skips / (cutoff_skips + simulate_label_both) stays exact.
  JIM_COUNT(obs::kCounterEngineSimulateLabelBoth);
  *impact = result;
  return true;
}

void InferenceEngine::CheckInvariants() const {
  state_.CheckInvariants();

  // COW holders attached and sized for this instance.
  JIM_CHECK(store_ != nullptr && classes_ != nullptr &&
            class_of_tuple_ != nullptr && session_ != nullptr &&
            knowledge_ != nullptr);
  const size_t num_tuples = store_->num_tuples();
  const size_t num_classes = classes_->size();
  JIM_CHECK_EQ(class_of_tuple_->size(), num_tuples);
  JIM_CHECK_EQ(session_->class_status.size(), num_classes);
  JIM_CHECK_EQ(session_->explicit_label.size(), num_tuples);
  JIM_CHECK_EQ(knowledge_->size(), num_classes);

  // Classes partition the tuple set, in agreement with class_of_tuple_.
  size_t members_total = 0;
  for (size_t c = 0; c < num_classes; ++c) {
    const TupleClass& tuple_class = (*classes_)[c];
    tuple_class.partition.CheckInvariants();
    JIM_CHECK_EQ(tuple_class.partition.num_elements(),
                 store_->num_attributes());
    JIM_CHECK(!tuple_class.tuple_indices.empty()) << "empty class " << c;
    members_total += tuple_class.size();
    for (size_t t : tuple_class.tuple_indices) {
      JIM_CHECK_LT(t, num_tuples);
      JIM_CHECK_EQ((*class_of_tuple_)[t], c)
          << "tuple " << t << " listed in class " << c
          << " but mapped elsewhere";
    }
  }
  JIM_CHECK_EQ(members_total, num_tuples)
      << "classes do not partition the tuple set";

  // Worklist = ascending ids of exactly the kInformative classes.
  const std::vector<size_t>& informative = session_->informative;
  for (size_t i = 0; i < informative.size(); ++i) {
    JIM_CHECK_LT(informative[i], num_classes);
    if (i > 0) {
      JIM_CHECK_LT(informative[i - 1], informative[i])
          << "worklist not strictly ascending at position " << i;
    }
  }
  size_t informative_count = 0;
  for (size_t c = 0; c < num_classes; ++c) {
    const bool on_worklist = std::binary_search(
        informative.begin(), informative.end(), c);
    const bool is_informative =
        session_->class_status[c] == ClassStatus::kInformative;
    JIM_CHECK_EQ(on_worklist, is_informative)
        << "worklist/status disagreement on class " << c << " ("
        << ClassStatusToString(session_->class_status[c]) << ")";
    if (is_informative) ++informative_count;
  }
  JIM_CHECK_EQ(informative_count, informative.size());

  // Position index mirrors the worklist exactly; off-pool classes carry the
  // sentinels.
  const size_t n = store_->num_attributes();
  JIM_CHECK_EQ(session_->worklist_pos.size(), num_classes);
  JIM_CHECK_EQ(session_->watch_pair.size(), num_classes);
  JIM_CHECK_EQ(session_->pair_watchers.size(), n * n);
  for (size_t i = 0; i < informative.size(); ++i) {
    JIM_CHECK_EQ(session_->worklist_pos[informative[i]],
                 static_cast<uint32_t>(i))
        << "worklist_pos out of sync at position " << i;
  }
  for (size_t c = 0; c < num_classes; ++c) {
    const uint32_t wp = session_->watch_pair[c];
    if (session_->class_status[c] != ClassStatus::kInformative) {
      JIM_CHECK_EQ(session_->worklist_pos[c], kNoPos)
          << "off-pool class " << c << " still has a worklist position";
      JIM_CHECK_EQ(wp, kNoWatch)
          << "off-pool class " << c << " still holds a watch";
      continue;
    }
    const lat::Partition& k = (*knowledge_)[c];
    const uint32_t c32 = static_cast<uint32_t>(c);
    if (wp == kBottomWatch) {
      JIM_CHECK(k.IsSingletons())
          << "class " << c << " on the bottom list with non-singleton K";
      JIM_CHECK(std::find(session_->bottom_watchers.begin(),
                          session_->bottom_watchers.end(),
                          c32) != session_->bottom_watchers.end())
          << "class " << c << " bottom watch not registered";
    } else {
      JIM_CHECK(wp != kNoWatch) << "informative class " << c << " unwatched";
      const size_t wi = wp / n;
      const size_t wj = wp % n;
      JIM_CHECK(wi < wj && wj < n) << "malformed watch slot " << wp;
      JIM_CHECK(k.SameBlock(wi, wj))
          << "class " << c << " watches (" << wi << "," << wj
          << ") which is not co-block in its knowledge";
      const std::vector<uint32_t>& watchers = session_->pair_watchers[wp];
      JIM_CHECK(std::find(watchers.begin(), watchers.end(), c32) !=
                watchers.end())
          << "class " << c << " watch not registered on slot " << wp;
    }
  }
  // The pair cover is exactly the current antichain's co-block pairs.
  {
    std::vector<uint8_t> expected;
    state_.negatives().FillPairCover(n, expected);
    JIM_CHECK(expected == pair_cover_) << "pair cover stale";
  }

  // Per-class: cached knowledge fresh for informative classes, and every
  // non-explicit status reproducible from a from-scratch classification.
  for (size_t c = 0; c < num_classes; ++c) {
    const lat::Partition& part = (*classes_)[c].partition;
    switch (session_->class_status[c]) {
      case ClassStatus::kInformative:
        JIM_CHECK((*knowledge_)[c] == state_.theta_p().Meet(part))
            << "stale knowledge cache K_" << c;
        JIM_CHECK(state_.Classify(part) == TupleClassification::kInformative)
            << "class " << c << " marked informative but classifies otherwise";
        break;
      case ClassStatus::kForcedPositive:
        JIM_CHECK(state_.Classify(part) ==
                  TupleClassification::kForcedPositive)
            << "class " << c << " wrongly forced positive";
        break;
      case ClassStatus::kForcedNegative:
        JIM_CHECK(state_.Classify(part) ==
                  TupleClassification::kForcedNegative)
            << "class " << c << " wrongly forced negative";
        break;
      case ClassStatus::kLabeledPositive:
        // An accepted positive label implies every consistent predicate now
        // selects the class (the label made it so).
        JIM_CHECK(state_.Classify(part) ==
                  TupleClassification::kForcedPositive)
            << "class " << c << " labeled positive but not forced by θ_P";
        break;
      case ClassStatus::kLabeledNegative:
        JIM_CHECK(state_.Classify(part) ==
                  TupleClassification::kForcedNegative)
            << "class " << c << " labeled negative but not in a forbidden zone";
        break;
    }
  }

  // Explicit tuple labels agree with their class's status.
  for (size_t t = 0; t < num_tuples; ++t) {
    const uint8_t label = session_->explicit_label[t];
    if (label == 0) continue;
    const ClassStatus status = session_->class_status[(*class_of_tuple_)[t]];
    if (label == 1) {
      JIM_CHECK(status == ClassStatus::kLabeledPositive)
          << "tuple " << t << " labeled positive in class with status "
          << ClassStatusToString(status);
    } else {
      JIM_CHECK_EQ(label, uint8_t{2});
      JIM_CHECK(status == ClassStatus::kLabeledNegative)
          << "tuple " << t << " labeled negative in class with status "
          << ClassStatusToString(status);
    }
  }
}

InferenceEngine::Stats InferenceEngine::GetStats() const {
  Stats stats;
  stats.num_tuples = store_->num_tuples();
  stats.num_classes = classes_->size();
  stats.interactions = history_.size();
  stats.wasted_interactions = wasted_interactions_;
  for (size_t c = 0; c < classes_->size(); ++c) {
    const size_t members = (*classes_)[c].size();
    switch (session_->class_status[c]) {
      case ClassStatus::kInformative:
        ++stats.informative_classes;
        stats.informative_tuples += members;
        break;
      case ClassStatus::kForcedPositive:
        stats.forced_positive_tuples += members;
        break;
      case ClassStatus::kForcedNegative:
        stats.forced_negative_tuples += members;
        break;
      case ClassStatus::kLabeledPositive:
      case ClassStatus::kLabeledNegative:
        stats.explicitly_labeled_tuples += members;
        break;
    }
  }
  return stats;
}

}  // namespace jim::core
