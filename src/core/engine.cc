#include "core/engine.h"

#include <unordered_map>

#include "util/logging.h"

namespace jim::core {

std::string_view ClassStatusToString(ClassStatus status) {
  switch (status) {
    case ClassStatus::kInformative:
      return "informative";
    case ClassStatus::kForcedPositive:
      return "forced-positive";
    case ClassStatus::kForcedNegative:
      return "forced-negative";
    case ClassStatus::kLabeledPositive:
      return "labeled-positive";
    case ClassStatus::kLabeledNegative:
      return "labeled-negative";
  }
  return "?";
}

std::string_view TupleStatusToString(TupleStatus status) {
  switch (status) {
    case TupleStatus::kInformative:
      return "informative";
    case TupleStatus::kForcedPositive:
      return "forced-positive";
    case TupleStatus::kForcedNegative:
      return "forced-negative";
    case TupleStatus::kLabeledPositive:
      return "labeled-positive";
    case TupleStatus::kLabeledNegative:
      return "labeled-negative";
  }
  return "?";
}

InferenceEngine::InferenceEngine(std::shared_ptr<const rel::Relation> relation)
    : relation_(std::move(relation)),
      state_(relation_->num_attributes()) {
  JIM_CHECK(relation_ != nullptr);
  explicit_label_.assign(relation_->num_rows(), 0);
  BuildClasses();
  // Some tuples may be uninformative from the start (e.g. all-values-equal
  // tuples are selected by every predicate).
  Propagate();
}

void InferenceEngine::BuildClasses() {
  std::unordered_map<lat::Partition, size_t, lat::PartitionHash> class_ids;
  class_of_tuple_.resize(relation_->num_rows());
  for (size_t t = 0; t < relation_->num_rows(); ++t) {
    lat::Partition part = TuplePartition(relation_->row(t));
    auto [it, inserted] = class_ids.emplace(part, classes_.size());
    if (inserted) {
      classes_.push_back(TupleClass{std::move(part), {}});
    }
    classes_[it->second].tuple_indices.push_back(t);
    class_of_tuple_[t] = it->second;
  }
  class_status_.assign(classes_.size(), ClassStatus::kInformative);
}

size_t InferenceEngine::Propagate() {
  size_t pruned = 0;
  for (size_t c = 0; c < classes_.size(); ++c) {
    if (class_status_[c] != ClassStatus::kInformative) continue;
    // Uninformativeness is monotone (θ_P only shrinks, forbidden zones only
    // grow), so classes already forced or labeled never need revisiting.
    switch (state_.Classify(classes_[c].partition)) {
      case TupleClassification::kForcedPositive:
        class_status_[c] = ClassStatus::kForcedPositive;
        ++pruned;
        break;
      case TupleClassification::kForcedNegative:
        class_status_[c] = ClassStatus::kForcedNegative;
        ++pruned;
        break;
      case TupleClassification::kInformative:
        break;
    }
  }
  return pruned;
}

std::vector<size_t> InferenceEngine::InformativeClasses() const {
  std::vector<size_t> ids;
  for (size_t c = 0; c < classes_.size(); ++c) {
    if (class_status_[c] == ClassStatus::kInformative) ids.push_back(c);
  }
  return ids;
}

size_t InferenceEngine::NumInformativeTuples() const {
  size_t count = 0;
  for (size_t c = 0; c < classes_.size(); ++c) {
    if (class_status_[c] == ClassStatus::kInformative) {
      count += classes_[c].size();
    }
  }
  return count;
}

bool InferenceEngine::IsDone() const {
  for (ClassStatus status : class_status_) {
    if (status == ClassStatus::kInformative) return false;
  }
  return true;
}

JoinPredicate InferenceEngine::Result() const {
  return JoinPredicate(relation_->schema(), state_.theta_p());
}

util::DynamicBitset InferenceEngine::CertainResultTuples() const {
  util::DynamicBitset certain(relation_->num_rows());
  for (size_t c = 0; c < classes_.size(); ++c) {
    if (IsPositive(class_status_[c])) {
      for (size_t t : classes_[c].tuple_indices) certain.Set(t);
    }
  }
  return certain;
}

util::DynamicBitset InferenceEngine::CertainNonResultTuples() const {
  util::DynamicBitset certain(relation_->num_rows());
  for (size_t c = 0; c < classes_.size(); ++c) {
    if (class_status_[c] == ClassStatus::kForcedNegative ||
        class_status_[c] == ClassStatus::kLabeledNegative) {
      for (size_t t : classes_[c].tuple_indices) certain.Set(t);
    }
  }
  return certain;
}

util::Status InferenceEngine::LabelImpl(size_t class_id, size_t tuple_index,
                                        Label label) {
  const ClassStatus before = class_status_[class_id];
  // Relabeling an explicitly labeled class is rejected as contradictory or
  // accepted as a (wasted) repetition.
  if (before == ClassStatus::kLabeledPositive ||
      before == ClassStatus::kLabeledNegative) {
    const bool agrees = (before == ClassStatus::kLabeledPositive) ==
                        (label == Label::kPositive);
    if (!agrees) {
      return util::FailedPreconditionError(
          "tuple was already labeled with the opposite label");
    }
    ++wasted_interactions_;
    history_.push_back(LabeledExample{tuple_index, label});
    explicit_label_[tuple_index] = label == Label::kPositive ? 1 : 2;
    return util::OkStatus();
  }

  const bool was_informative = before == ClassStatus::kInformative;
  RETURN_IF_ERROR(state_.ApplyLabel(classes_[class_id].partition, label));

  class_status_[class_id] = label == Label::kPositive
                                ? ClassStatus::kLabeledPositive
                                : ClassStatus::kLabeledNegative;
  history_.push_back(LabeledExample{tuple_index, label});
  explicit_label_[tuple_index] = label == Label::kPositive ? 1 : 2;
  if (!was_informative) {
    // Consistent label on a grayed-out tuple: accepted, teaches nothing.
    ++wasted_interactions_;
    return util::OkStatus();
  }
  Propagate();
  return util::OkStatus();
}

TupleStatus InferenceEngine::tuple_status(size_t tuple_index) const {
  JIM_CHECK_LT(tuple_index, relation_->num_rows());
  if (explicit_label_[tuple_index] == 1) return TupleStatus::kLabeledPositive;
  if (explicit_label_[tuple_index] == 2) return TupleStatus::kLabeledNegative;
  switch (class_status_[class_of_tuple_[tuple_index]]) {
    case ClassStatus::kInformative:
      return TupleStatus::kInformative;
    case ClassStatus::kForcedPositive:
    case ClassStatus::kLabeledPositive:
      return TupleStatus::kForcedPositive;
    case ClassStatus::kForcedNegative:
    case ClassStatus::kLabeledNegative:
      return TupleStatus::kForcedNegative;
  }
  return TupleStatus::kInformative;
}

util::Status InferenceEngine::SubmitTupleLabel(size_t tuple_index,
                                               Label label) {
  if (tuple_index >= relation_->num_rows()) {
    return util::OutOfRangeError("tuple index out of range");
  }
  return LabelImpl(class_of_tuple_[tuple_index], tuple_index, label);
}

util::Status InferenceEngine::SubmitClassLabel(size_t class_id, Label label) {
  if (class_id >= classes_.size()) {
    return util::OutOfRangeError("class id out of range");
  }
  return LabelImpl(class_id, classes_[class_id].tuple_indices.front(), label);
}

InferenceEngine::LabelImpact InferenceEngine::SimulateLabel(
    size_t class_id, Label label) const {
  JIM_CHECK_LT(class_id, classes_.size());
  JIM_CHECK(class_status_[class_id] == ClassStatus::kInformative);
  InferenceState hypothetical = state_;
  // An informative class accepts either label by definition.
  JIM_CHECK_OK(hypothetical.ApplyLabel(classes_[class_id].partition, label));

  LabelImpact impact;
  impact.pruned_classes = 1;
  impact.pruned_tuples = classes_[class_id].size();
  for (size_t c = 0; c < classes_.size(); ++c) {
    if (c == class_id || class_status_[c] != ClassStatus::kInformative) {
      continue;
    }
    if (hypothetical.Classify(classes_[c].partition) !=
        TupleClassification::kInformative) {
      ++impact.pruned_classes;
      impact.pruned_tuples += classes_[c].size();
    }
  }
  return impact;
}

InferenceEngine::Stats InferenceEngine::GetStats() const {
  Stats stats;
  stats.num_tuples = relation_->num_rows();
  stats.num_classes = classes_.size();
  stats.interactions = history_.size();
  stats.wasted_interactions = wasted_interactions_;
  for (size_t c = 0; c < classes_.size(); ++c) {
    const size_t members = classes_[c].size();
    switch (class_status_[c]) {
      case ClassStatus::kInformative:
        ++stats.informative_classes;
        stats.informative_tuples += members;
        break;
      case ClassStatus::kForcedPositive:
        stats.forced_positive_tuples += members;
        break;
      case ClassStatus::kForcedNegative:
        stats.forced_negative_tuples += members;
        break;
      case ClassStatus::kLabeledPositive:
      case ClassStatus::kLabeledNegative:
        stats.explicitly_labeled_tuples += members;
        break;
    }
  }
  return stats;
}

}  // namespace jim::core
