#include "core/engine.h"

#include <algorithm>
#include <atomic>
#include <unordered_map>

#include "util/logging.h"

namespace jim::core {

std::string_view ClassStatusToString(ClassStatus status) {
  switch (status) {
    case ClassStatus::kInformative:
      return "informative";
    case ClassStatus::kForcedPositive:
      return "forced-positive";
    case ClassStatus::kForcedNegative:
      return "forced-negative";
    case ClassStatus::kLabeledPositive:
      return "labeled-positive";
    case ClassStatus::kLabeledNegative:
      return "labeled-negative";
  }
  return "?";
}

std::string_view TupleStatusToString(TupleStatus status) {
  switch (status) {
    case TupleStatus::kInformative:
      return "informative";
    case TupleStatus::kForcedPositive:
      return "forced-positive";
    case TupleStatus::kForcedNegative:
      return "forced-negative";
    case TupleStatus::kLabeledPositive:
      return "labeled-positive";
    case TupleStatus::kLabeledNegative:
      return "labeled-negative";
  }
  return "?";
}

InferenceEngine::InferenceEngine(std::shared_ptr<const rel::Relation> relation)
    : relation_(std::move(relation)),
      state_(relation_->num_attributes()) {
  JIM_CHECK(relation_ != nullptr);
  explicit_label_.assign(relation_->num_rows(), 0);
  BuildClasses();
  // Some tuples may be uninformative from the start (e.g. all-values-equal
  // tuples are selected by every predicate).
  Propagate();
}

void InferenceEngine::BuildClasses() {
  std::unordered_map<lat::Partition, size_t, lat::PartitionHash> class_ids;
  auto classes = std::make_shared<std::vector<TupleClass>>();
  auto class_of_tuple = std::make_shared<std::vector<size_t>>();
  class_of_tuple->resize(relation_->num_rows());
  for (size_t t = 0; t < relation_->num_rows(); ++t) {
    lat::Partition part = TuplePartition(relation_->row(t));
    auto [it, inserted] = class_ids.emplace(part, classes->size());
    if (inserted) {
      classes->push_back(TupleClass{std::move(part), {}});
    }
    (*classes)[it->second].tuple_indices.push_back(t);
    (*class_of_tuple)[t] = it->second;
  }
  class_status_.assign(classes->size(), ClassStatus::kInformative);
  // Initially θ_P = ⊤, so K_c = ⊤ ∧ Part(c) = Part(c); every class starts on
  // the worklist.
  knowledge_ = std::make_shared<std::vector<lat::Partition>>();
  knowledge_->reserve(classes->size());
  informative_.reserve(classes->size());
  for (size_t c = 0; c < classes->size(); ++c) {
    knowledge_->push_back((*classes)[c].partition);
    informative_.push_back(c);
  }
  classes_ = std::move(classes);
  class_of_tuple_ = std::move(class_of_tuple);
}

std::vector<lat::Partition>& InferenceEngine::MutableKnowledge() {
  // use_count is exact here: a count of 1 can only race with *this* engine
  // being cloned concurrently, which is already outside the copy contract.
  if (knowledge_.use_count() != 1) {
    knowledge_ = std::make_shared<std::vector<lat::Partition>>(*knowledge_);
  } else {
    // Pair with the release-decrement of a sibling clone that just detached
    // (copied the vector and dropped the count to 1): without this fence the
    // in-place mutation below would be unordered against that copy's reads.
    std::atomic_thread_fence(std::memory_order_acquire);
  }
  return *knowledge_;
}

size_t InferenceEngine::Propagate() {
  const lat::Partition& theta = state_.theta_p();
  size_t out = 0;
  size_t pruned = 0;
  for (size_t c : informative_) {
    const lat::Partition& k = (*knowledge_)[c];
    if (k == theta) {
      class_status_[c] = ClassStatus::kForcedPositive;
      ++pruned;
    } else if (state_.negatives().DominatedBy(k, scratch_)) {
      class_status_[c] = ClassStatus::kForcedNegative;
      ++pruned;
    } else {
      informative_[out++] = c;
    }
  }
  informative_.resize(out);
  return pruned;
}

size_t InferenceEngine::PropagateAfterPositive() {
  const lat::Partition& theta = state_.theta_p();
  // The in-place cache refresh below is the one mutation of K_c anywhere in
  // the engine — detach from clone sharers first.
  std::vector<lat::Partition>& knowledge = MutableKnowledge();
  size_t out = 0;
  size_t pruned = 0;
  for (size_t c : informative_) {
    lat::Partition& k = knowledge[c];
    // The new θ_P refines the old, so meeting the *cached* knowledge with it
    // is the full refresh: K ∧ θ' = (θ ∧ Part(c)) ∧ θ' = θ' ∧ Part(c).
    k.MeetInto(theta, k, scratch_);
    if (k == theta) {
      class_status_[c] = ClassStatus::kForcedPositive;
      ++pruned;
    } else if (state_.negatives().DominatedBy(k, scratch_)) {
      class_status_[c] = ClassStatus::kForcedNegative;
      ++pruned;
    } else {
      informative_[out++] = c;
    }
  }
  informative_.resize(out);
  return pruned;
}

size_t InferenceEngine::PropagateAfterNegative(
    const lat::Partition& forbidden) {
  size_t out = 0;
  size_t pruned = 0;
  for (size_t c : informative_) {
    // θ_P is unchanged, so the only new reason to leave the pool is the
    // fresh forbidden zone: K_c was not dominated before, hence the class is
    // pruned iff K_c ≤ forbidden.
    if ((*knowledge_)[c].RefinesWith(forbidden, scratch_)) {
      class_status_[c] = ClassStatus::kForcedNegative;
      ++pruned;
    } else {
      informative_[out++] = c;
    }
  }
  informative_.resize(out);
  return pruned;
}

void InferenceEngine::RemoveFromWorklist(size_t class_id) {
  auto it = std::find(informative_.begin(), informative_.end(), class_id);
  JIM_CHECK(it != informative_.end());
  informative_.erase(it);
}

size_t InferenceEngine::NumInformativeTuples() const {
  size_t count = 0;
  for (size_t c : informative_) count += (*classes_)[c].size();
  return count;
}

bool InferenceEngine::IsDone() const { return informative_.empty(); }

JoinPredicate InferenceEngine::Result() const {
  return JoinPredicate(relation_->schema(), state_.theta_p());
}

util::DynamicBitset InferenceEngine::CertainResultTuples() const {
  util::DynamicBitset certain(relation_->num_rows());
  for (size_t c = 0; c < classes_->size(); ++c) {
    if (IsPositive(class_status_[c])) {
      for (size_t t : (*classes_)[c].tuple_indices) certain.Set(t);
    }
  }
  return certain;
}

util::DynamicBitset InferenceEngine::CertainNonResultTuples() const {
  util::DynamicBitset certain(relation_->num_rows());
  for (size_t c = 0; c < classes_->size(); ++c) {
    if (class_status_[c] == ClassStatus::kForcedNegative ||
        class_status_[c] == ClassStatus::kLabeledNegative) {
      for (size_t t : (*classes_)[c].tuple_indices) certain.Set(t);
    }
  }
  return certain;
}

util::Status InferenceEngine::LabelImpl(size_t class_id, size_t tuple_index,
                                        Label label) {
  const ClassStatus before = class_status_[class_id];
  // Relabeling an explicitly labeled class is rejected as contradictory or
  // accepted as a (wasted) repetition.
  if (before == ClassStatus::kLabeledPositive ||
      before == ClassStatus::kLabeledNegative) {
    const bool agrees = (before == ClassStatus::kLabeledPositive) ==
                        (label == Label::kPositive);
    if (!agrees) {
      return util::FailedPreconditionError(
          "tuple was already labeled with the opposite label");
    }
    ++wasted_interactions_;
    history_.push_back(LabeledExample{tuple_index, label});
    explicit_label_[tuple_index] = label == Label::kPositive ? 1 : 2;
    return util::OkStatus();
  }

  const bool was_informative = before == ClassStatus::kInformative;
  RETURN_IF_ERROR(state_.ApplyLabel((*classes_)[class_id].partition, label));

  class_status_[class_id] = label == Label::kPositive
                                ? ClassStatus::kLabeledPositive
                                : ClassStatus::kLabeledNegative;
  history_.push_back(LabeledExample{tuple_index, label});
  explicit_label_[tuple_index] = label == Label::kPositive ? 1 : 2;
  if (!was_informative) {
    // Consistent label on a grayed-out tuple: accepted, teaches nothing.
    ++wasted_interactions_;
    return util::OkStatus();
  }
  // The labeled class leaves the pool as kLabeled*; pull it off the worklist
  // before propagation so reclassification cannot overwrite that status.
  RemoveFromWorklist(class_id);
  if (label == Label::kPositive) {
    PropagateAfterPositive();
  } else {
    // θ_P is unchanged by a negative label, so the labeled class's cached
    // knowledge is still exactly the antichain member ApplyLabel inserted
    // (and nothing on this path mutates knowledge_).
    PropagateAfterNegative((*knowledge_)[class_id]);
  }
  return util::OkStatus();
}

TupleStatus InferenceEngine::tuple_status(size_t tuple_index) const {
  JIM_CHECK_LT(tuple_index, relation_->num_rows());
  if (explicit_label_[tuple_index] == 1) return TupleStatus::kLabeledPositive;
  if (explicit_label_[tuple_index] == 2) return TupleStatus::kLabeledNegative;
  switch (class_status_[(*class_of_tuple_)[tuple_index]]) {
    case ClassStatus::kInformative:
      return TupleStatus::kInformative;
    case ClassStatus::kForcedPositive:
    case ClassStatus::kLabeledPositive:
      return TupleStatus::kForcedPositive;
    case ClassStatus::kForcedNegative:
    case ClassStatus::kLabeledNegative:
      return TupleStatus::kForcedNegative;
  }
  return TupleStatus::kInformative;
}

util::Status InferenceEngine::SubmitTupleLabel(size_t tuple_index,
                                               Label label) {
  if (tuple_index >= relation_->num_rows()) {
    return util::OutOfRangeError("tuple index out of range");
  }
  return LabelImpl((*class_of_tuple_)[tuple_index], tuple_index, label);
}

util::Status InferenceEngine::SubmitClassLabel(size_t class_id, Label label) {
  if (class_id >= classes_->size()) {
    return util::OutOfRangeError("class id out of range");
  }
  return LabelImpl(class_id, (*classes_)[class_id].tuple_indices.front(), label);
}

InferenceEngine::LabelImpact InferenceEngine::SimulateLabel(
    size_t class_id, Label label) const {
  // The naive reference implementation (full state copy + rescan); the hot
  // paths use SimulateLabelBoth, and the parity tests pin the two together.
  JIM_CHECK_LT(class_id, classes_->size());
  JIM_CHECK(class_status_[class_id] == ClassStatus::kInformative);
  InferenceState hypothetical = state_;
  // An informative class accepts either label by definition.
  JIM_CHECK_OK(hypothetical.ApplyLabel((*classes_)[class_id].partition, label));

  LabelImpact impact;
  impact.pruned_classes = 1;
  impact.pruned_tuples = (*classes_)[class_id].size();
  for (size_t c = 0; c < classes_->size(); ++c) {
    if (c == class_id || class_status_[c] != ClassStatus::kInformative) {
      continue;
    }
    if (hypothetical.Classify((*classes_)[c].partition) !=
        TupleClassification::kInformative) {
      ++impact.pruned_classes;
      impact.pruned_tuples += (*classes_)[c].size();
    }
  }
  return impact;
}

InferenceEngine::LabelImpactPair InferenceEngine::SimulateLabelBoth(
    size_t class_id) const {
  return SimulateLabelBothWith(class_id, meet_tmp_, scratch_);
}

InferenceEngine::LabelImpactPair InferenceEngine::SimulateLabelBothWith(
    size_t class_id, lat::Partition& meet_tmp,
    lat::PartitionScratch& scratch) const {
  JIM_CHECK_LT(class_id, classes_->size());
  JIM_CHECK(class_status_[class_id] == ClassStatus::kInformative);
  const lat::Partition& k_labeled = (*knowledge_)[class_id];

  LabelImpactPair impact;
  impact.positive.pruned_classes = impact.negative.pruned_classes = 1;
  impact.positive.pruned_tuples = impact.negative.pruned_tuples =
      (*classes_)[class_id].size();
  for (size_t c : informative_) {
    if (c == class_id) continue;
    const lat::Partition& k = (*knowledge_)[c];
    const size_t members = (*classes_)[c].size();
    // Negative answer: the forbidden zone grows by exactly k_labeled, so the
    // class is pruned iff its knowledge falls inside it.
    if (k.RefinesWith(k_labeled, scratch)) {
      ++impact.negative.pruned_classes;
      impact.negative.pruned_tuples += members;
    }
    // Positive answer: the hypothetical θ_P is k_labeled, and the class's
    // hypothetical knowledge is k_labeled ∧ k (meeting cached knowledge is
    // enough — both already lie below the current θ_P).
    if (k_labeled.RefinesWith(k, scratch)) {
      // k_labeled ∧ k == k_labeled: forced positive.
      ++impact.positive.pruned_classes;
      impact.positive.pruned_tuples += members;
    } else {
      k_labeled.MeetInto(k, meet_tmp, scratch);
      // Testing against the *current* antichain is exact: restricting it to
      // the new θ_P never changes domination of partitions below that θ_P.
      if (state_.negatives().DominatedBy(meet_tmp, scratch)) {
        ++impact.positive.pruned_classes;
        impact.positive.pruned_tuples += members;
      }
    }
  }
  return impact;
}

InferenceEngine::Stats InferenceEngine::GetStats() const {
  Stats stats;
  stats.num_tuples = relation_->num_rows();
  stats.num_classes = classes_->size();
  stats.interactions = history_.size();
  stats.wasted_interactions = wasted_interactions_;
  for (size_t c = 0; c < classes_->size(); ++c) {
    const size_t members = (*classes_)[c].size();
    switch (class_status_[c]) {
      case ClassStatus::kInformative:
        ++stats.informative_classes;
        stats.informative_tuples += members;
        break;
      case ClassStatus::kForcedPositive:
        stats.forced_positive_tuples += members;
        break;
      case ClassStatus::kForcedNegative:
        stats.forced_negative_tuples += members;
        break;
      case ClassStatus::kLabeledPositive:
      case ClassStatus::kLabeledNegative:
        stats.explicitly_labeled_tuples += members;
        break;
    }
  }
  return stats;
}

}  // namespace jim::core
