#include "core/selection_inference.h"

#include <algorithm>
#include <unordered_map>

#include "util/logging.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace jim::core {

// --------------------------------------------------- SelectionJoinQuery --

SelectionJoinQuery::SelectionJoinQuery(rel::Schema schema)
    : schema_(std::move(schema)),
      partition_(lat::Partition::Singletons(schema_.num_attributes())) {}

SelectionJoinQuery::SelectionJoinQuery(rel::Schema schema,
                                       lat::Partition partition,
                                       std::map<size_t, rel::Value> constants)
    : schema_(std::move(schema)),
      partition_(std::move(partition)),
      constants_(std::move(constants)) {
  JIM_CHECK_EQ(schema_.num_attributes(), partition_.num_elements());
  for (const auto& [attribute, value] : constants_) {
    JIM_CHECK_LT(attribute, schema_.num_attributes());
    JIM_CHECK(!value.is_null()) << "NULL cannot be a selection constant";
  }
}

util::StatusOr<SelectionJoinQuery> SelectionJoinQuery::Parse(
    const rel::Schema& schema, std::string_view text) {
  std::vector<std::pair<size_t, size_t>> pairs;
  std::map<size_t, rel::Value> constants;

  for (const std::string& raw : util::Split(std::string(text), '&')) {
    const std::string_view conjunct = util::StripWhitespace(raw);
    if (conjunct.empty()) continue;
    const auto sides = util::Split(std::string(conjunct), '=');
    if (sides.size() != 2) {
      return util::InvalidArgumentError("expected one '=' in conjunct '" +
                                        std::string(conjunct) + "'");
    }
    const std::string_view left = util::StripWhitespace(sides[0]);
    const std::string_view right = util::StripWhitespace(sides[1]);
    ASSIGN_OR_RETURN(size_t left_index, schema.IndexOf(left));

    // Constant forms: 'string', integer, or decimal literal.
    if (!right.empty() && right.front() == '\'' && right.back() == '\'' &&
        right.size() >= 2) {
      constants.emplace(
          left_index,
          rel::Value(std::string(right.substr(1, right.size() - 2))));
      continue;
    }
    if (auto as_int = util::ParseInt64(right); as_int.ok()) {
      constants.emplace(left_index, rel::Value(*as_int));
      continue;
    }
    if (auto as_double = util::ParseDouble(right); as_double.ok()) {
      constants.emplace(left_index, rel::Value(*as_double));
      continue;
    }
    ASSIGN_OR_RETURN(size_t right_index, schema.IndexOf(right));
    pairs.emplace_back(left_index, right_index);
  }
  ASSIGN_OR_RETURN(
      lat::Partition partition,
      lat::Partition::FromPairs(schema.num_attributes(), pairs));
  return SelectionJoinQuery(schema, std::move(partition),
                            std::move(constants));
}

bool SelectionJoinQuery::Selects(const rel::Tuple& tuple) const {
  for (const auto& [i, j] : partition_.GeneratorPairs()) {
    if (!tuple[i].Equals(tuple[j])) return false;
  }
  for (const auto& [attribute, value] : constants_) {
    if (!tuple[attribute].Equals(value)) return false;
  }
  return true;
}

std::string SelectionJoinQuery::ToString() const {
  std::vector<std::string> parts;
  for (const auto& [i, j] : partition_.GeneratorPairs()) {
    parts.push_back(schema_.attribute(i).QualifiedName() + "\xE2\x89\x88" +
                    schema_.attribute(j).QualifiedName());
  }
  for (const auto& [attribute, value] : constants_) {
    parts.push_back(schema_.attribute(attribute).QualifiedName() + "=" +
                    value.ToSqlLiteral());
  }
  if (parts.empty()) return "(no constraint)";
  return util::Join(parts, " \xE2\x88\xA7 ");
}

// ---------------------------------------------- SelectionInferenceState --

SelectionInferenceState::SelectionInferenceState(size_t num_attributes)
    : num_attributes_(num_attributes),
      theta_p_(lat::Partition::Top(num_attributes)) {}

bool SelectionInferenceState::ConstantsSubsume(
    const std::map<size_t, rel::Value>& small,
    const std::map<size_t, rel::Value>& big) {
  // small ⊆ big with matching values.
  for (const auto& [attribute, value] : small) {
    auto it = big.find(attribute);
    if (it == big.end() || !it->second.Equals(value)) return false;
  }
  return true;
}

SelectionInferenceState::Knowledge SelectionInferenceState::KnowledgeFor(
    const rel::Tuple& tuple) const {
  Knowledge knowledge{theta_p_.Meet(TuplePartition(tuple)), {}};
  if (!constants_p_.has_value()) {
    // No positive yet: the live constants are exactly the tuple's non-null
    // values.
    for (size_t a = 0; a < tuple.size(); ++a) {
      if (!tuple[a].is_null()) knowledge.constants.emplace(a, tuple[a]);
    }
  } else {
    for (const auto& [attribute, value] : *constants_p_) {
      if (tuple[attribute].Equals(value)) {
        knowledge.constants.emplace(attribute, value);
      }
    }
  }
  return knowledge;
}

bool SelectionInferenceState::IsConsistent(
    const lat::Partition& theta,
    const std::map<size_t, rel::Value>& constants) const {
  if (!theta.Refines(theta_p_)) return false;
  if (constants_p_.has_value() &&
      !ConstantsSubsume(constants, *constants_p_)) {
    return false;
  }
  for (const Forbidden& zone : forbidden_) {
    if (theta.Refines(zone.partition) &&
        ConstantsSubsume(constants, zone.constants)) {
      return false;
    }
  }
  return true;
}

TupleClassification SelectionInferenceState::Classify(
    const rel::Tuple& tuple) const {
  JIM_CHECK_EQ(tuple.size(), num_attributes_);
  // Forced positive ⇔ the maximal consistent hypothesis selects the tuple
  // (all weaker hypotheses then select it too). Without a positive example
  // the formal maximum is unrealizable and nothing is forced positive.
  if (constants_p_.has_value()) {
    const lat::Partition part = TuplePartition(tuple);
    bool max_selects = theta_p_.Refines(part);
    if (max_selects) {
      for (const auto& [attribute, value] : *constants_p_) {
        if (!tuple[attribute].Equals(value)) {
          max_selects = false;
          break;
        }
      }
    }
    if (max_selects) return TupleClassification::kForcedPositive;
  }
  const Knowledge knowledge = KnowledgeFor(tuple);
  for (const Forbidden& zone : forbidden_) {
    if (knowledge.partition.Refines(zone.partition) &&
        ConstantsSubsume(knowledge.constants, zone.constants)) {
      return TupleClassification::kForcedNegative;
    }
  }
  return TupleClassification::kInformative;
}

util::Status SelectionInferenceState::ApplyLabel(const rel::Tuple& tuple,
                                                 Label label) {
  const TupleClassification classification = Classify(tuple);
  if (label == Label::kPositive) {
    if (classification == TupleClassification::kForcedNegative) {
      return util::FailedPreconditionError(
          "positive label contradicts earlier labels");
    }
    if (classification == TupleClassification::kForcedPositive) {
      return util::OkStatus();
    }
    const Knowledge knowledge = KnowledgeFor(tuple);
    theta_p_ = knowledge.partition;
    constants_p_ = knowledge.constants;
    // Restrict forbidden zones below the new maximum and drop dominated
    // ones.
    std::vector<Forbidden> restricted;
    for (Forbidden& zone : forbidden_) {
      Forbidden next{zone.partition.Meet(theta_p_), {}};
      for (const auto& [attribute, value] : zone.constants) {
        auto it = constants_p_->find(attribute);
        if (it != constants_p_->end() && it->second.Equals(value)) {
          next.constants.emplace(attribute, value);
        }
      }
      bool dominated = false;
      for (const Forbidden& other : restricted) {
        if (next.partition.Refines(other.partition) &&
            ConstantsSubsume(next.constants, other.constants)) {
          dominated = true;
          break;
        }
      }
      if (!dominated) restricted.push_back(std::move(next));
    }
    forbidden_ = std::move(restricted);
    return util::OkStatus();
  }
  // Negative.
  if (classification == TupleClassification::kForcedPositive) {
    return util::FailedPreconditionError(
        "negative label contradicts earlier labels");
  }
  if (classification == TupleClassification::kForcedNegative) {
    return util::OkStatus();
  }
  Forbidden zone{KnowledgeFor(tuple).partition, {}};
  zone.constants = KnowledgeFor(tuple).constants;
  // Drop members the new zone dominates.
  forbidden_.erase(
      std::remove_if(forbidden_.begin(), forbidden_.end(),
                     [&zone](const Forbidden& other) {
                       return other.partition.Refines(zone.partition) &&
                              ConstantsSubsume(other.constants,
                                               zone.constants);
                     }),
      forbidden_.end());
  forbidden_.push_back(std::move(zone));
  return util::OkStatus();
}

util::StatusOr<SelectionJoinQuery> SelectionInferenceState::Result(
    const rel::Schema& schema) const {
  if (!constants_p_.has_value()) {
    return util::FailedPreconditionError(
        "no positive example yet: the maximal hypothesis is degenerate");
  }
  return SelectionJoinQuery(schema, theta_p_, *constants_p_);
}

// ------------------------------------------------------------- Session --

SelectionSessionResult RunSelectionSession(
    const std::shared_ptr<const rel::Relation>& relation,
    const SelectionJoinQuery& goal, uint64_t seed) {
  SelectionInferenceState state(relation->num_attributes());
  util::Rng rng(seed);
  SelectionSessionResult result;

  // Distinct rows only (identical rows are one question).
  std::vector<size_t> distinct;
  {
    std::unordered_map<std::string, size_t> seen;
    for (size_t t = 0; t < relation->num_rows(); ++t) {
      std::string key;
      for (const rel::Value& value : relation->row(t)) {
        key += static_cast<char>('0' + static_cast<int>(value.type()));
        key += value.ToString();
        key.push_back('\x1f');
      }
      if (seen.emplace(std::move(key), t).second) distinct.push_back(t);
    }
  }

  std::vector<bool> settled(distinct.size(), false);
  while (true) {
    // Reclassify; collect informative rows.
    std::vector<size_t> informative;
    for (size_t i = 0; i < distinct.size(); ++i) {
      if (settled[i]) continue;
      if (state.Classify(relation->row(distinct[i])) ==
          TupleClassification::kInformative) {
        informative.push_back(i);
      } else {
        settled[i] = true;
      }
    }
    if (informative.empty()) break;

    // Greedy lookahead over a bounded candidate sample: maximize the
    // guaranteed (worst-answer) number of rows leaving the pool.
    const size_t cap = std::min<size_t>(informative.size(), 32);
    size_t best_index = informative[0];
    size_t best_score = 0;
    for (size_t j = 0; j < cap; ++j) {
      const size_t i = informative[j * informative.size() / cap];
      size_t worst = SIZE_MAX;
      for (Label answer : {Label::kPositive, Label::kNegative}) {
        SelectionInferenceState copy = state;
        if (!copy.ApplyLabel(relation->row(distinct[i]), answer).ok()) {
          continue;
        }
        size_t pruned = 0;
        for (size_t other : informative) {
          if (copy.Classify(relation->row(distinct[other])) !=
              TupleClassification::kInformative) {
            ++pruned;
          }
        }
        worst = std::min(worst, pruned);
      }
      if (worst != SIZE_MAX && worst > best_score) {
        best_score = worst;
        best_index = i;
      }
    }
    (void)rng;

    const rel::Tuple& asked = relation->row(distinct[best_index]);
    const Label answer =
        goal.Selects(asked) ? Label::kPositive : Label::kNegative;
    JIM_CHECK_OK(state.ApplyLabel(asked, answer));
    settled[best_index] = true;
    ++result.interactions;
  }

  auto final_query = state.Result(relation->schema());
  if (final_query.ok()) {
    result.result = *std::move(final_query);
    result.identified_goal = true;
    for (const rel::Tuple& row : relation->rows()) {
      if (result.result->Selects(row) != goal.Selects(row)) {
        result.identified_goal = false;
        break;
      }
    }
  } else {
    // No positive example exists in the instance: the empty result set is
    // identified iff the goal also selects nothing.
    result.identified_goal = true;
    for (const rel::Tuple& row : relation->rows()) {
      if (goal.Selects(row)) {
        result.identified_goal = false;
        break;
      }
    }
  }
  return result;
}

}  // namespace jim::core
