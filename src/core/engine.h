#ifndef JIM_CORE_ENGINE_H_
#define JIM_CORE_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "core/example.h"
#include "core/inference_state.h"
#include "core/join_predicate.h"
#include "core/tuple_store.h"
#include "exec/thread_pool.h"
#include "lattice/partition.h"
#include "relational/relation.h"
#include "util/bitset.h"
#include "util/status.h"

namespace jim::core {

/// An equivalence class of tuples: all tuples of the instance sharing the
/// same value partition Part(t). Tuples in one class are interchangeable for
/// inference — labeling any member forces the labels of all the others — so
/// the engine reasons over classes and the paper's "label propagation"
/// (graying out uninformative tuples) falls out for free.
struct TupleClass {
  lat::Partition partition;
  std::vector<size_t> tuple_indices;

  size_t size() const { return tuple_indices.size(); }
};

/// Lifecycle of a class during a session.
enum class ClassStatus {
  /// Labeling a member tuple would narrow the hypothesis space.
  kInformative,
  /// All consistent predicates select these tuples (uninformative, grayed).
  kForcedPositive,
  /// No consistent predicate selects these tuples (uninformative, grayed).
  kForcedNegative,
  /// The user explicitly labeled a member positive / negative.
  kLabeledPositive,
  kLabeledNegative,
};

std::string_view ClassStatusToString(ClassStatus status);

/// Per-tuple view of the class lifecycle. A tuple shows as *labeled* only if
/// the user labeled that very tuple; class-mates of a labeled tuple show as
/// *forced* (they are exactly the tuples the demo grays out).
enum class TupleStatus {
  kInformative,
  kForcedPositive,
  kForcedNegative,
  kLabeledPositive,
  kLabeledNegative,
};

std::string_view TupleStatusToString(TupleStatus status);

/// True for the two statuses that still carry a question mark.
inline bool IsInformative(ClassStatus status) {
  return status == ClassStatus::kInformative;
}
/// True for statuses whose tuples belong to the final join result.
inline bool IsPositive(ClassStatus status) {
  return status == ClassStatus::kForcedPositive ||
         status == ClassStatus::kLabeledPositive;
}

/// The Join Inference Machine: drives the interactive scenario of the paper
/// (Figure 2). Holds the instance, the inference state, and per-class
/// bookkeeping; each accepted label triggers propagation that reclassifies
/// (and effectively grays out) tuples that became uninformative.
///
/// The engine consumes the instance through the TupleStore seam: class
/// construction (Part(t) for every tuple) runs on integer codes — a
/// sort-free per-tuple grouping, ParallelFor'd over the exec pool with
/// deterministic first-occurrence class ids — and never touches a Value.
///
/// The engine is strategy-agnostic: strategies (src/core/strategies.h) pick
/// which informative class to ask about next; interaction modes 1-4 of the
/// demonstration are built on top in src/core/session.h.
class InferenceEngine {
 public:
  /// Builds the engine over `store`. `pool` runs the per-tuple Part(t)
  /// extraction (nullptr = serial); class ids are assigned in
  /// first-occurrence tuple order by a serial merge, so the result is
  /// bitwise-identical at any thread count.
  InferenceEngine(std::shared_ptr<const TupleStore> store,
                  exec::ThreadPool* pool);

  /// Same, on the process-wide shared pool (exec::SharedPool).
  explicit InferenceEngine(std::shared_ptr<const TupleStore> store);

  /// Convenience: wraps `relation` into a RelationTupleStore (encoding every
  /// cell through one shared dictionary) and builds over that.
  explicit InferenceEngine(std::shared_ptr<const rel::Relation> relation);

  /// Copies are cheap clones: the class table and tuple → class map are
  /// shared outright (immutable), and both the per-class knowledge cache and
  /// the session arrays (statuses, worklist, explicit labels) are
  /// copy-on-write — a clone defers those costs until its first label. This
  /// is what lets BatchSessionRunner fan independent sessions out over
  /// clones of one built engine. Clones may be labeled from different
  /// threads concurrently (a mutating clone detaches before it writes); only
  /// cloning an engine *while another thread mutates that same engine* is a
  /// race, so clone before fanning out.
  InferenceEngine(const InferenceEngine&) = default;
  InferenceEngine& operator=(const InferenceEngine&) = default;

  /// The instance, through the storage seam.
  const TupleStore& store() const { return *store_; }
  const std::shared_ptr<const TupleStore>& store_ptr() const {
    return store_;
  }
  const InferenceState& state() const { return state_; }

  size_t num_tuples() const { return store_->num_tuples(); }
  size_t num_classes() const { return classes_->size(); }
  const TupleClass& tuple_class(size_t class_id) const {
    return (*classes_)[class_id];
  }
  ClassStatus class_status(size_t class_id) const {
    return session_->class_status[class_id];
  }
  size_t class_of_tuple(size_t tuple_index) const {
    return (*class_of_tuple_)[tuple_index];
  }

  /// Status of an individual tuple (see TupleStatus). This is what the demo
  /// UI renders: explicit labels as +/−, forced tuples grayed out.
  TupleStatus tuple_status(size_t tuple_index) const;

  /// Ids of classes that are still worth asking about, ascending. Returns a
  /// reference to the engine's live worklist: any Submit*Label call compacts
  /// it (and, on a clone, detaches the copy-on-write session arrays),
  /// invalidating the reference — copy first if you need the list across a
  /// labeling.
  const std::vector<size_t>& InformativeClasses() const {
    return session_->informative;
  }

  /// Cached knowledge partition K_c = θ_P ∧ Part(c) of an *informative*
  /// class (the cache goes stale — harmlessly — once a class leaves the
  /// pool). Maintained incrementally: a positive label shrinks θ_P, and
  /// since the new θ_P refines the old one, K_c' = K_c ∧ θ_P' over the
  /// already-shrunk cache; negative labels leave θ_P (and the cache) alone.
  const lat::Partition& ClassKnowledge(size_t class_id) const {
    return (*knowledge_)[class_id];
  }

  /// Total member count over informative classes.
  size_t NumInformativeTuples() const;

  /// True when every class is labeled or forced: all consistent predicates
  /// are instance-equivalent and Result() is the canonical answer.
  bool IsDone() const;

  /// Tuples already *certain* to belong to the final join result (labeled
  /// positive or forced positive), regardless of how inference ends — the
  /// "certain answers" the demo can show at any point. Monotone: the set
  /// only grows as labels arrive.
  util::DynamicBitset CertainResultTuples() const;

  /// Tuples certain to be excluded from the final join result.
  util::DynamicBitset CertainNonResultTuples() const;

  /// The inferred predicate so far: θ_P, the maximal consistent predicate.
  /// After IsDone() this identifies the goal up to instance-equivalence.
  JoinPredicate Result() const;

  /// Labels the tuple (mode-1 entry point: any tuple, informative or not).
  /// Returns kFailedPrecondition and leaves the engine unchanged when the
  /// label contradicts earlier labels. A consistent label on an
  /// uninformative tuple is accepted, counted as a wasted interaction, and
  /// does not change the state.
  util::Status SubmitTupleLabel(size_t tuple_index, Label label);

  /// Labels (the representative tuple of) a class.
  util::Status SubmitClassLabel(size_t class_id, Label label);

  /// What would happen if `class_id` got `label`: number of classes/tuples
  /// leaving the informative pool (the labeled class included). Pure.
  struct LabelImpact {
    size_t pruned_classes = 0;
    size_t pruned_tuples = 0;
  };
  LabelImpact SimulateLabel(size_t class_id, Label label) const;

  /// Both answers' impacts in one pass over the cached knowledge partitions
  /// — no InferenceState copy, no antichain restriction, no allocation:
  ///   negative answer: the new forbidden zone is K_c, so a still-informative
  ///     class d is pruned iff K_d ≤ K_c;
  ///   positive answer: the new θ_P is K_c, so d is forced positive iff
  ///     K_c ≤ K_d, and otherwise forced negative iff K_c ∧ K_d falls in an
  ///     existing forbidden zone (restricting the antichain cannot change
  ///     that test for partitions below the new θ_P).
  /// Exactly equal to {SimulateLabel(c, +), SimulateLabel(c, −)}; this is
  /// what turns lookahead scoring from O(candidates × classes × alloc-heavy
  /// meets) into cache-reusing scans. Requires the class to be informative.
  struct LabelImpactPair {
    LabelImpact positive;
    LabelImpact negative;
  };
  LabelImpactPair SimulateLabelBoth(size_t class_id) const;

  /// SimulateLabelBoth with a caller-provided kernel working set instead of
  /// the engine's internal one. Identical result — but since the engine is
  /// not touched at all (not even its mutable scratch), any number of
  /// threads may score candidates of one engine concurrently, each thread
  /// owning its own (meet_tmp, scratch) pair. This is the entry point of the
  /// parallel lookahead (exec::ScratchPool hands out the pairs).
  LabelImpactPair SimulateLabelBothWith(size_t class_id,
                                        lat::Partition& meet_tmp,
                                        lat::PartitionScratch& scratch) const;

  /// Upper-bound oracle for cutoff-pruned lookahead: given caps on the two
  /// pruning counts (n⁺ ≤ pos_cap, n⁻ ≤ neg_cap), returns a value ≥ the
  /// aggregate score of any feasible (n⁺, n⁻). Implemented by the strategy
  /// over its (monotone) objective; the engine only ever *compares* bounds,
  /// so a looser implementation costs skips, never correctness.
  class AggregateBoundFn {
   public:
    virtual ~AggregateBoundFn() = default;
    virtual double UpperBound(size_t pos_cap, size_t neg_cap) const = 0;
  };

  /// Per-decision cached state for the candidate upper bounds, built once by
  /// PrepareLookaheadBounds and shared (read-only) by every concurrent
  /// SimulateLabelBothBounded call of that decision:
  ///   - rank-histogram prefix/suffix tuple sums over the worklist, keyed by
  ///     rank(K_c) — K_d ≤ K_c forces rank(K_d) ≤ rank(K_c), so the prefix
  ///     sum at rank(K_c) caps the negative-answer pruning, and (antichain
  ///     empty) the suffix sum caps the positive-answer pruning;
  ///   - tuple suffix sums by worklist position, for the in-scan abort:
  ///     after position i, at most suffix[i] more tuples can ever be added
  ///     to either count.
  struct LookaheadBoundsCache {
    std::vector<size_t> tuples_rank_le;  ///< by rank r: Σ tuples, rank(K)≤r
    std::vector<size_t> tuples_rank_ge;  ///< by rank r: Σ tuples, rank(K)≥r
    std::vector<size_t> suffix_tuples;   ///< by worklist position, size+1
    size_t total_tuples = 0;             ///< Σ tuples over the worklist
    bool antichain_empty = true;
  };
  /// Fills `cache` for the current worklist. O(worklist). Invalidated by any
  /// accepted label (like InformativeClasses()).
  void PrepareLookaheadBounds(LookaheadBoundsCache& cache) const;

  /// Cheap per-candidate caps from the cache (see LookaheadBoundsCache).
  size_t LookaheadNegCap(const LookaheadBoundsCache& cache,
                         size_t class_id) const {
    return cache.tuples_rank_le[(*knowledge_)[class_id].Rank()];
  }
  size_t LookaheadPosCap(const LookaheadBoundsCache& cache,
                         size_t class_id) const {
    return cache.antichain_empty
               ? cache.tuples_rank_ge[(*knowledge_)[class_id].Rank()]
               : cache.total_tuples;
  }

  /// Cutoff-pruned SimulateLabelBothWith: evaluates the candidate only if
  /// its upper bound can still beat `threshold`. Returns true with *impact
  /// filled when the candidate was fully evaluated (bitwise-identical to
  /// SimulateLabelBothWith); returns false with *skip_bound set to the bound
  /// it was skipped under — either the O(1) precheck bound or an in-scan
  /// abort bound (current counts + remaining-tuples cap) — when the
  /// candidate provably cannot reach `threshold`. The skip test is strict
  /// (bound < threshold), so a candidate tying the best score is always
  /// evaluated and argmax tie-breaking is unaffected. Thread-safe under the
  /// same contract as SimulateLabelBothWith.
  bool SimulateLabelBothBounded(size_t class_id, lat::Partition& meet_tmp,
                                lat::PartitionScratch& scratch,
                                const LookaheadBoundsCache& bounds,
                                const AggregateBoundFn& objective,
                                double threshold, LabelImpactPair* impact,
                                double* skip_bound) const;

  /// Progress counters for the demo UI and session traces.
  struct Stats {
    size_t num_tuples = 0;
    size_t num_classes = 0;
    size_t interactions = 0;       ///< accepted labels (user effort)
    size_t wasted_interactions = 0;///< accepted labels that taught nothing
    size_t informative_tuples = 0;
    size_t informative_classes = 0;
    size_t forced_positive_tuples = 0;
    size_t forced_negative_tuples = 0;
    size_t explicitly_labeled_tuples = 0;
  };
  Stats GetStats() const;

  /// Explicit labels in submission order.
  const LabeledExamples& history() const { return history_; }

  /// Invariant audit (see util/check.h), re-deriving the engine's contracts
  /// from scratch and JIM_CHECK-failing on any disagreement:
  ///   - the inference state is internally consistent (θ_P / antichain);
  ///   - classes partition the tuple set and agree with class_of_tuple;
  ///   - the worklist is exactly the ascending list of kInformative classes;
  ///   - for every informative class, the cached knowledge K_c equals a
  ///     from-scratch θ_P ∧ Part(c) recompute, and the incremental status of
  ///     every class matches a fresh InferenceState::Classify;
  ///   - explicit per-tuple labels agree with their class statuses;
  ///   - the worklist position index matches the worklist, every informative
  ///     class is validly watched (a co-block pair of its K_c, or the bottom
  ///     list exactly when K_c is all singletons) and registered on the
  ///     matching watcher list, and the pair cover equals a from-scratch
  ///     recompute over the antichain;
  ///   - the copy-on-write holders are attached and correctly sized.
  /// O(classes · (n² + antichain)); tests call it directly, and every
  /// construction/labeling runs it under JIM_AUDIT (the parity suites and
  /// the ci.sh audit stage enable that mode).
  void CheckInvariants() const;

 private:
  /// Watch-slot sentinels (values of SessionArrays::watch_pair). Real slots
  /// encode an attribute pair (i, j), i < j, as i * n + j.
  static constexpr uint32_t kNoWatch = 0xFFFFFFFFu;
  /// Classes whose knowledge is all-singletons watch "bottom": a singleton
  /// partition refines every forbidden zone, so any negative label prunes
  /// them — they live on one shared list instead of a pair slot.
  static constexpr uint32_t kBottomWatch = 0xFFFFFFFEu;
  /// Worklist-position sentinel for classes not on the worklist.
  static constexpr uint32_t kNoPos = 0xFFFFFFFFu;

  /// The flat per-class/per-tuple session arrays, grouped under one
  /// copy-on-write holder so a clone shares them until its first Submit
  /// (EngineCopy is then three shared_ptr bumps, not three vector copies).
  struct SessionArrays {
    std::vector<ClassStatus> class_status;
    /// Ids of informative classes, ascending — the dense worklist the
    /// Propagate variants scan and compact.
    std::vector<size_t> informative;
    /// Position of each class in `informative` (kNoPos once it left the
    /// pool): O(1) locate for RemoveFromWorklist, maintained for free by the
    /// compaction loops.
    std::vector<uint32_t> worklist_pos;
    /// 0 = not explicitly labeled; 1 = labeled positive; 2 = labeled
    /// negative (per tuple).
    std::vector<uint8_t> explicit_label;
    /// Watch structure for negative-label propagation: every informative
    /// class is registered on exactly one certificate that must break before
    /// the class can leave the pool on a negative label — a co-block pair of
    /// its (fresh) K_c, or the shared bottom list when K_c is all
    /// singletons. `watch_pair[c]` is that slot (or kNoWatch off-pool);
    /// `pair_watchers[slot]` / `bottom_watchers` hold the per-slot class
    /// lists, with lazy deletion (an entry is live only while watch_pair
    /// still points at the slot).
    std::vector<uint32_t> watch_pair;
    std::vector<std::vector<uint32_t>> pair_watchers;
    std::vector<uint32_t> bottom_watchers;
  };

  void BuildClasses(exec::ThreadPool* pool);
  /// Shared implementation of the two Submit entry points; `tuple_index` is
  /// the tuple recorded in the history (the one actually shown to the user).
  util::Status LabelImpl(size_t class_id, size_t tuple_index, Label label);

  /// Reclassification after a state change, over the dense worklist of
  /// still-informative classes only (uninformativeness is monotone, so
  /// settled classes are never revisited). Each variant compacts the
  /// worklist in place and returns the number of classes that left the
  /// pool. Callers must hold the session arrays uniquely (constructor, or
  /// LabelImpl after MutableSession).
  ///
  /// Full variant (construction): classifies each worklist class from its
  /// cached knowledge.
  size_t Propagate();
  /// After a positive label: θ_P shrank to the labeled class's knowledge, so
  /// each cache entry is refreshed in place (K_c ← K_c ∧ θ_P) and the class
  /// re-tested — forced positive iff K_c == θ_P (one fingerprint compare in
  /// the common case), else forced negative iff K_c is in a forbidden zone.
  size_t PropagateAfterPositive();
  /// After a negative label: θ_P and the cache are untouched; the only new
  /// way out of the pool is the fresh forbidden zone. Instead of rescanning
  /// the worklist, this drains exactly the watch lists of `forbidden`'s
  /// co-block pairs (plus the bottom list): a class whose watched pair is
  /// split in `forbidden` provably cannot refine it, so only the woken
  /// classes take the full K_c ≤ `forbidden` test; woken survivors
  /// re-register on a non-refinement witness pair.
  size_t PropagateAfterNegative(const lat::Partition& forbidden);
  /// Drops `class_id` from the worklist (on explicit labeling) via its
  /// position index — no scan.
  void RemoveFromWorklist(size_t class_id);

  /// Registers every informative class on its watch certificate (a co-block
  /// pair of K_c, or the bottom list). Construction-time only; labeling
  /// keeps watches current incrementally.
  void InitializeWatches();
  /// First co-block pair of `k` outside pair_cover_, encoded as a slot;
  /// kNoWatch when every co-block pair is covered (or `k` is singletons).
  /// Preferring uncovered pairs maximizes the positive-propagation
  /// exemptions AND (the cover contains every pair of the newest forbidden
  /// zone) guarantees a negative-drain re-watch never lands on a slot still
  /// being drained.
  uint32_t UncoveredPairSlot(const lat::Partition& k) const;
  /// Points `class_id`'s watch at `slot` (a pair slot or kBottomWatch) and
  /// appends it to the matching watcher list.
  void AttachWatch(SessionArrays& session, size_t class_id, uint32_t slot);
  /// Recomputes pair_cover_ from the current antichain. O(|A| · n²).
  void RebuildPairCover();

  /// Detaches knowledge_ from any sharers (copy-on-first-mutate) and returns
  /// the sole-owner vector. Everything that writes K_c goes through here.
  std::vector<lat::Partition>& MutableKnowledge();
  /// Same for the session arrays; every Submit path detaches once up front.
  SessionArrays& MutableSession();

  std::shared_ptr<const TupleStore> store_;
  InferenceState state_;
  /// The class table and the tuple → class map are immutable once
  /// BuildClasses returns, so every clone of an engine shares them outright.
  std::shared_ptr<const std::vector<TupleClass>> classes_;
  std::shared_ptr<const std::vector<size_t>> class_of_tuple_;
  /// Per-session flat arrays, copy-on-write across clones (see
  /// SessionArrays).
  std::shared_ptr<SessionArrays> session_;
  /// K_c per class; fresh for informative classes (see ClassKnowledge).
  /// Copy-on-write: clones share the vector until their first knowledge
  /// mutation (a positive label), which makes engine copies cheap enough to
  /// fan batches of sessions out over clones (exec::BatchSessionRunner).
  /// Negative-only histories never pay for a copy at all.
  std::shared_ptr<std::vector<lat::Partition>> knowledge_;
  /// Pair cover of the current antichain (see Antichain::FillPairCover),
  /// sized n·n: pair_cover_[i*n+j] == 1 iff (i, j) is co-block in some
  /// forbidden-zone member. Derived purely from state_, so it is a plain
  /// value member (copied with the engine, not COW) rebuilt after every
  /// accepted label.
  std::vector<uint8_t> pair_cover_;
  /// Scratch state for the allocation-free kernels; mutable because pure
  /// queries (SimulateLabelBoth) reuse it. Copying an engine copies only
  /// warmed capacity, never live data.
  mutable lat::PartitionScratch scratch_;
  mutable lat::Partition meet_tmp_;
  LabeledExamples history_;
  size_t wasted_interactions_ = 0;
};

}  // namespace jim::core

#endif  // JIM_CORE_ENGINE_H_
