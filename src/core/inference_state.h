#ifndef JIM_CORE_INFERENCE_STATE_H_
#define JIM_CORE_INFERENCE_STATE_H_

#include <cstdint>
#include <string>

#include "core/example.h"
#include "lattice/antichain.h"
#include "lattice/partition.h"
#include "util/status.h"

namespace jim::core {

/// How the current knowledge classifies a tuple (via its value partition).
enum class TupleClassification {
  /// Every consistent predicate selects the tuple — its label is determined;
  /// asking the user would be wasted effort ("uninformative", grayed out).
  kForcedPositive,
  /// No consistent predicate selects the tuple — also uninformative.
  kForcedNegative,
  /// Consistent predicates disagree on the tuple: labeling it narrows the
  /// hypothesis space. These are the only tuples worth asking about.
  kInformative,
};

std::string_view TupleClassificationToString(TupleClassification c);

/// The complete knowledge accumulated from the user's labels, in canonical
/// form (see DESIGN.md §1):
///
///   θ_P  — the meet of Part(t) over all positive examples: the most
///          constrained predicate consistent with the positives. Every
///          consistent predicate refines θ_P; with an honest user θ_P itself
///          is always consistent and is what JIM returns on termination.
///   𝒩   — an antichain of maximal *forbidden* partitions: one M = θ_P ∧
///          Part(s) per (non-redundant) negative example s. A predicate θ is
///          inconsistent iff θ ≤ M for some member.
///
/// The state is deliberately independent of the instance: it summarizes
/// labels in O(poly(#attributes)) space regardless of how many tuples were
/// labeled. The engine layers tuple bookkeeping on top.
class InferenceState {
 public:
  /// Initial state over `num_attributes` attributes: θ_P = ⊤ (no positives
  /// yet), no negatives. Every partition is consistent.
  explicit InferenceState(size_t num_attributes);

  size_t num_attributes() const { return num_attributes_; }
  const lat::Partition& theta_p() const { return theta_p_; }
  const lat::Antichain& negatives() const { return negatives_; }
  bool has_positive_example() const { return has_positive_example_; }

  /// True iff `candidate` is consistent with every label so far.
  bool IsConsistent(const lat::Partition& candidate) const;

  /// Classifies a tuple by its value partition Part(t).
  TupleClassification Classify(const lat::Partition& tuple_partition) const;

  /// The knowledge gained from labeling the tuple: K = θ_P ∧ Part(t).
  lat::Partition Knowledge(const lat::Partition& tuple_partition) const;

  /// Incorporates a label. Errors (kFailedPrecondition) if the label
  /// contradicts the current knowledge — i.e. labels a forced-positive tuple
  /// negative or vice versa; the state is unchanged in that case. Labeling
  /// consistently with a forced classification is accepted as a no-op
  /// (interaction mode 1 lets users waste effort that way).
  util::Status ApplyLabel(const lat::Partition& tuple_partition, Label label);

  /// Exact number of consistent predicates, by enumerating refinements of
  /// θ_P. Exponential; JIM_CHECK-fails if the refinement count exceeds
  /// `limit`. For tests, the optimal strategy, and exact-entropy scoring.
  uint64_t CountConsistent(uint64_t limit = 1 << 22) const;

  /// Canonical memoization key: θ_P plus the sorted antichain.
  std::string CanonicalKey() const;

 private:
  size_t num_attributes_;
  lat::Partition theta_p_;
  lat::Antichain negatives_;
  bool has_positive_example_ = false;
};

}  // namespace jim::core

#endif  // JIM_CORE_INFERENCE_STATE_H_
