#ifndef JIM_CORE_INFERENCE_STATE_H_
#define JIM_CORE_INFERENCE_STATE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/example.h"
#include "lattice/antichain.h"
#include "lattice/partition.h"
#include "util/status.h"

namespace jim::core {

/// How the current knowledge classifies a tuple (via its value partition).
enum class TupleClassification {
  /// Every consistent predicate selects the tuple — its label is determined;
  /// asking the user would be wasted effort ("uninformative", grayed out).
  kForcedPositive,
  /// No consistent predicate selects the tuple — also uninformative.
  kForcedNegative,
  /// Consistent predicates disagree on the tuple: labeling it narrows the
  /// hypothesis space. These are the only tuples worth asking about.
  kInformative,
};

std::string_view TupleClassificationToString(TupleClassification c);

/// The complete knowledge accumulated from the user's labels, in canonical
/// form (see DESIGN.md §1):
///
///   θ_P  — the meet of Part(t) over all positive examples: the most
///          constrained predicate consistent with the positives. Every
///          consistent predicate refines θ_P; with an honest user θ_P itself
///          is always consistent and is what JIM returns on termination.
///   𝒩   — an antichain of maximal *forbidden* partitions: one M = θ_P ∧
///          Part(s) per (non-redundant) negative example s. A predicate θ is
///          inconsistent iff θ ≤ M for some member.
///
/// The state is deliberately independent of the instance: it summarizes
/// labels in O(poly(#attributes)) space regardless of how many tuples were
/// labeled. The engine layers tuple bookkeeping on top.
class InferenceState {
 public:
  /// Initial state over `num_attributes` attributes: θ_P = ⊤ (no positives
  /// yet), no negatives. Every partition is consistent.
  explicit InferenceState(size_t num_attributes);

  size_t num_attributes() const { return num_attributes_; }
  const lat::Partition& theta_p() const { return theta_p_; }
  const lat::Antichain& negatives() const { return negatives_; }
  bool has_positive_example() const { return has_positive_example_; }

  /// True iff `candidate` is consistent with every label so far.
  bool IsConsistent(const lat::Partition& candidate) const;

  /// Classifies a tuple by its value partition Part(t).
  TupleClassification Classify(const lat::Partition& tuple_partition) const;

  /// Allocation-free classification: the forced-positive test uses
  /// MeetEqualsLeft (no meet materialized at all), and only if that fails is
  /// the knowledge meet computed — into `meet_tmp` via scratch kernels.
  /// Identical result to Classify.
  TupleClassification ClassifyWith(const lat::Partition& tuple_partition,
                                   lat::Partition& meet_tmp,
                                   lat::PartitionScratch& scratch) const;

  /// The knowledge gained from labeling the tuple: K = θ_P ∧ Part(t).
  lat::Partition Knowledge(const lat::Partition& tuple_partition) const;

  /// Incorporates a label. Errors (kFailedPrecondition) if the label
  /// contradicts the current knowledge — i.e. labels a forced-positive tuple
  /// negative or vice versa; the state is unchanged in that case. Labeling
  /// consistently with a forced classification is accepted as a no-op
  /// (interaction mode 1 lets users waste effort that way).
  util::Status ApplyLabel(const lat::Partition& tuple_partition, Label label);

  /// Exact number of consistent predicates, by enumerating refinements of
  /// θ_P. Exponential; JIM_CHECK-fails if the refinement count exceeds
  /// `limit`. For tests, the optimal strategy, and exact-entropy scoring.
  uint64_t CountConsistent(uint64_t limit = 1 << 22) const;

  /// Canonical memoization key: θ_P plus the sorted antichain.
  std::string CanonicalKey() const;

  /// Compact memoization key: the canonical label vectors (θ_P, then the
  /// antichain members in RGS order, -1 separated) with a precomputed 64-bit
  /// hash. Equality is exact (the hash is only a fast path), so two states
  /// share a StateKey iff they share a CanonicalKey — without building a
  /// single string. This is what MinimaxSolver memoizes on.
  struct StateKey {
    std::vector<int> encoded;
    uint64_t hash = 0;

    friend bool operator==(const StateKey& a, const StateKey& b) {
      return a.hash == b.hash && a.encoded == b.encoded;
    }
  };
  struct StateKeyHash {
    size_t operator()(const StateKey& key) const {
      return static_cast<size_t>(key.hash);
    }
  };
  StateKey MakeStateKey() const;

  /// O(1) state exchange (vector-swap of θ_P and the antichain): what the
  /// speculative-search trail (core/speculation.h) uses to undo a label —
  /// the pre-label state parks in a pooled frame and swaps back on Undo, so
  /// an apply/undo pair never reallocates in steady state.
  void Swap(InferenceState& other) noexcept;

  /// Invariant audit (see util/check.h): θ_P and the antichain are each
  /// internally canonical, of the right arity, every forbidden member lies
  /// strictly below θ_P (ApplyLabel always inserts θ_P ∧ Part(s), and
  /// RestrictTo clips the antichain whenever θ_P shrinks), θ_P itself stays
  /// consistent, and with no positive example yet θ_P is still ⊤.
  /// JIM_CHECK-fails on any violation.
  void CheckInvariants() const;

 private:
  size_t num_attributes_;
  lat::Partition theta_p_;
  lat::Antichain negatives_;
  bool has_positive_example_ = false;
};

}  // namespace jim::core

#endif  // JIM_CORE_INFERENCE_STATE_H_
