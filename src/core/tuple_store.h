#ifndef JIM_CORE_TUPLE_STORE_H_
#define JIM_CORE_TUPLE_STORE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "relational/dictionary.h"
#include "relational/relation.h"
#include "relational/schema.h"

namespace jim::exec {
class ThreadPool;
}  // namespace jim::exec

namespace jim::core {

/// The narrow seam between storage and inference: everything the engine
/// needs from an instance of candidate tuples, and nothing more.
///
/// Tuples are exposed as *codes*, not values: `code(t, a)` returns a dense
/// integer such that, within one store,
///
///   code(t, a) == code(t', a')  ⇔  the two cells hold strictly equal Values
///                                  (rel::Value::Equals),
///   code(t, a) == rel::kNullCode ⇔ the cell is NULL (never equal to
///                                  anything, itself included).
///
/// Codes are comparable ACROSS attributes — the property Part(t) extraction
/// needs — because every implementation funnels its per-column dictionaries
/// through one shared dictionary. The engine's class construction is thereby
/// a pure integer kernel; `Values` only materialize on demand (question
/// prompts, oracles, rendering) via DecodeValue/DecodeTuple.
///
/// Implementations: RelationTupleStore (a materialized denormalized
/// relation, encoded once at wrap time) and the factorized store behind
/// query::UniversalTable (mixed-radix row ids over the source relations'
/// encoded columns — no materialized rows at all). Future backends
/// (mmap'd columnar files, sharded stores) plug in here.
class TupleStore {
 public:
  virtual ~TupleStore() = default;

  virtual const std::string& name() const = 0;
  virtual const rel::Schema& schema() const = 0;
  virtual size_t num_tuples() const = 0;
  size_t num_attributes() const { return schema().num_attributes(); }

  /// Shared-dictionary code of attribute `a` of tuple `t` (see class
  /// comment; rel::kNullCode for NULL).
  virtual uint32_t code(size_t t, size_t a) const = 0;

  /// Bulk variant: writes all num_attributes() codes of tuple `t` into
  /// `out`. One virtual call per tuple on the ingest hot loop; overridden by
  /// implementations that can amortize the per-tuple address computation.
  virtual void TupleCodes(size_t t, uint32_t* out) const;

  /// The cell's Value (decoded on demand — display, oracles, provenance).
  virtual rel::Value DecodeValue(size_t t, size_t a) const = 0;

  /// The full tuple, decoded.
  rel::Tuple DecodeTuple(size_t t) const;

  /// Approximate resident bytes of the store's own structures (codes,
  /// dictionaries, row ids) — the number the scalability bench tracks to
  /// show factorized memory does not scale with the candidate count.
  virtual size_t ApproxBytes() const = 0;
};

/// TupleStore over a materialized denormalized relation: the degenerate
/// single-source case (synthetic workloads, CSV loads, Figure 1). All
/// columns are encoded through one shared dictionary at construction, so
/// cross-attribute code equality holds by construction.
class RelationTupleStore final : public TupleStore {
 public:
  /// Large relations (≥ rel::kParallelIngestMinRows) encode on the
  /// process-wide exec::SharedPool; the result is bitwise-identical to
  /// serial encoding at any thread count, so this only moves latency. Use
  /// the two-argument overload to control the pool explicitly (nullptr =
  /// serial, the reference path parity tests pin against).
  explicit RelationTupleStore(std::shared_ptr<const rel::Relation> relation);

  /// Parallel ingest: `pool` chunks the rows, each chunk encodes into a
  /// private dictionary, and a serial in-order merge (see
  /// rel::MergeChunkDictionaries) renumbers — codes and dictionary order are
  /// bitwise-identical to the serial constructor at any thread count.
  /// nullptr / 1-thread pools and small relations take the serial path.
  RelationTupleStore(std::shared_ptr<const rel::Relation> relation,
                     exec::ThreadPool* pool);

  const std::string& name() const override { return relation_->name(); }
  const rel::Schema& schema() const override { return relation_->schema(); }
  size_t num_tuples() const override { return relation_->num_rows(); }
  uint32_t code(size_t t, size_t a) const override {
    return codes_[t * stride_ + a];
  }
  void TupleCodes(size_t t, uint32_t* out) const override;
  rel::Value DecodeValue(size_t t, size_t a) const override {
    return relation_->row(t)[a];
  }
  size_t ApproxBytes() const override;

  const std::shared_ptr<const rel::Relation>& relation() const {
    return relation_;
  }
  /// Distinct non-NULL values across all columns (bench/diagnostics).
  size_t num_distinct_values() const { return dictionary_.size(); }

 private:
  std::shared_ptr<const rel::Relation> relation_;
  rel::Dictionary dictionary_;
  /// Row-major N × n code matrix (kNullCode for NULLs).
  std::vector<uint32_t> codes_;
  size_t stride_ = 0;
};

/// Invariant audit of the TupleStore *contract* on any backend (see
/// util/check.h): decodes every cell once and JIM_CHECK-fails unless
///   - code == rel::kNullCode exactly for NULL cells;
///   - TupleCodes agrees with per-cell code() tuple by tuple;
///   - code equality is strict Value equality across all cells: equal codes
///     decode to Equals values, each non-NaN value maps to exactly one code,
///     and NaN cells (never equal, themselves included) all carry distinct
///     codes.
/// O(N·n) decodes + hashing — test/audit-mode cost, not a hot path. The
/// parity and storage suites run it over every backend (relation-backed,
/// factorized, mapped, sharded).
void CheckStoreInvariants(const TupleStore& store);

/// Wraps `relation` into a RelationTupleStore (large relations encode on
/// the shared pool — see the single-argument constructor).
std::shared_ptr<const TupleStore> MakeRelationStore(
    std::shared_ptr<const rel::Relation> relation);

/// Same, encoding on `pool` explicitly (nullptr = serial).
std::shared_ptr<const TupleStore> MakeRelationStore(
    std::shared_ptr<const rel::Relation> relation, exec::ThreadPool* pool);

}  // namespace jim::core

#endif  // JIM_CORE_TUPLE_STORE_H_
