#ifndef JIM_CORE_ORACLE_H_
#define JIM_CORE_ORACLE_H_

#include <memory>
#include <string_view>

#include "core/example.h"
#include "core/join_predicate.h"
#include "relational/relation.h"
#include "util/rng.h"

namespace jim::core {

/// The labeling user. The paper's own experiments use "a program that labels
/// tuples w.r.t. a goal join query" — that program is ExactOracle below; the
/// console UI substitutes a human; the crowd substrate wraps NoisyOracle
/// workers behind majority voting.
class Oracle {
 public:
  virtual ~Oracle() = default;

  virtual std::string_view name() const = 0;

  /// The label this user gives to `tuple`.
  virtual Label LabelFor(const rel::Tuple& tuple) = 0;
};

/// Labels exactly according to a goal predicate (a perfectly reliable user
/// who knows what she wants).
class ExactOracle : public Oracle {
 public:
  explicit ExactOracle(JoinPredicate goal) : goal_(std::move(goal)) {}

  std::string_view name() const override { return "exact"; }
  Label LabelFor(const rel::Tuple& tuple) override {
    return goal_.Selects(tuple) ? Label::kPositive : Label::kNegative;
  }

  const JoinPredicate& goal() const { return goal_; }

 private:
  JoinPredicate goal_;
};

/// Labels according to the goal but flips each answer independently with
/// probability `error_rate` — a model of an unreliable crowd worker.
class NoisyOracle : public Oracle {
 public:
  NoisyOracle(JoinPredicate goal, double error_rate, uint64_t seed)
      : goal_(std::move(goal)), error_rate_(error_rate), rng_(seed) {}

  std::string_view name() const override { return "noisy"; }
  Label LabelFor(const rel::Tuple& tuple) override {
    const Label truth =
        goal_.Selects(tuple) ? Label::kPositive : Label::kNegative;
    return rng_.Bernoulli(error_rate_) ? Negate(truth) : truth;
  }

  double error_rate() const { return error_rate_; }

 private:
  JoinPredicate goal_;
  double error_rate_;
  util::Rng rng_;
};

}  // namespace jim::core

#endif  // JIM_CORE_ORACLE_H_
