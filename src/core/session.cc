#include "core/session.h"

#include <algorithm>

#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/json_writer.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace jim::core {

std::string_view InteractionModeToString(InteractionMode mode) {
  switch (mode) {
    case InteractionMode::kLabelAll:
      return "1-label-all";
    case InteractionMode::kGrayOut:
      return "2-gray-out";
    case InteractionMode::kTopK:
      return "3-top-k";
    case InteractionMode::kMostInformative:
      return "4-most-informative";
  }
  return "?";
}

util::StatusOr<InteractionMode> ParseInteractionMode(std::string_view text) {
  const auto number = util::ParseInt64(text);
  if (!number.ok() || *number < 1 || *number > 4) {
    return util::InvalidArgumentError("must be a number 1..4 (got '" +
                                      std::string(text) + "')");
  }
  return static_cast<InteractionMode>(*number);
}

namespace {

/// Picks the class to ask about under the session's interaction mode.
/// Returns nullopt when the user has nothing left to label (mode 1 only:
/// every tuple already explicitly labeled).
std::optional<size_t> ChooseClass(const InferenceEngine& engine,
                                  Strategy& strategy,
                                  const SessionOptions& options,
                                  util::Rng& user_rng,
                                  std::vector<bool>& tuple_labeled) {
  switch (options.mode) {
    case InteractionMode::kLabelAll: {
      // The user sees no gray-out: she picks any not-yet-labeled tuple,
      // uniformly at random, possibly wasting the interaction.
      std::vector<size_t> unlabeled;
      for (size_t t = 0; t < engine.num_tuples(); ++t) {
        if (!tuple_labeled[t]) unlabeled.push_back(t);
      }
      if (unlabeled.empty()) return std::nullopt;
      const size_t tuple = user_rng.PickOne(unlabeled);
      tuple_labeled[tuple] = true;
      return engine.class_of_tuple(tuple);
    }
    case InteractionMode::kGrayOut: {
      // Uniform over informative (non-grayed) tuples.
      const std::vector<size_t> informative = engine.InformativeClasses();
      JIM_CHECK(!informative.empty());
      size_t total = 0;
      for (size_t c : informative) total += engine.tuple_class(c).size();
      int64_t pick = user_rng.UniformInt(0, static_cast<int64_t>(total) - 1);
      for (size_t c : informative) {
        pick -= static_cast<int64_t>(engine.tuple_class(c).size());
        if (pick < 0) return c;
      }
      return informative.back();
    }
    case InteractionMode::kTopK: {
      const std::vector<size_t> top =
          strategy.TopK(engine, std::max<size_t>(1, options.top_k));
      JIM_CHECK(!top.empty());
      return top[static_cast<size_t>(
          user_rng.UniformInt(0, static_cast<int64_t>(top.size()) - 1))];
    }
    case InteractionMode::kMostInformative:
      return strategy.PickClass(engine);
  }
  return std::nullopt;
}

/// Running total of SimulateLabelBoth evaluations, read from the global
/// metrics counter. 0 whenever metrics are off — per-step simulate counts
/// in traces are best-effort observability, never behavior.
uint64_t SimulateCallsSoFar() {
  if (!obs::MetricsEnabled()) return 0;
  static obs::Counter& counter = obs::MetricsRegistry::Instance().GetCounter(
      obs::kCounterEngineSimulateLabelBoth);
  return counter.Value();
}

void RecordTraceStep(obs::SessionTracer& tracer, size_t index,
                     const SessionStep& step, bool accepted,
                     size_t worklist_before, size_t worklist_after,
                     uint64_t simulate_calls) {
  obs::TraceStep event;
  event.step = index;
  event.class_id = step.class_id;
  event.tuple_index = step.tuple_index;
  event.positive = step.label == Label::kPositive;
  event.accepted = accepted;
  event.pruned_classes = step.pruned_classes;
  event.pruned_tuples = step.pruned_tuples;
  event.worklist_before = worklist_before;
  event.worklist_after = worklist_after;
  event.simulate_label_calls = simulate_calls;
  event.micros = step.micros;
  tracer.RecordStep(event);
}

}  // namespace

SessionResult RunSession(std::shared_ptr<const TupleStore> store,
                         const JoinPredicate& goal, Strategy& strategy,
                         Oracle& oracle, const SessionOptions& options) {
  InferenceEngine engine(std::move(store));
  return RunSessionOnEngine(engine, goal, strategy, oracle, options);
}

SessionResult RunSession(std::shared_ptr<const rel::Relation> relation,
                         const JoinPredicate& goal, Strategy& strategy,
                         Oracle& oracle, const SessionOptions& options) {
  return RunSession(MakeRelationStore(std::move(relation)), goal, strategy,
                    oracle, options);
}

SessionResult RunSessionOnEngine(InferenceEngine& engine,
                                 const JoinPredicate& goal, Strategy& strategy,
                                 Oracle& oracle,
                                 const SessionOptions& options) {
  const TupleStore& store = engine.store();
  util::Rng user_rng(options.user_seed);
  std::vector<bool> tuple_labeled(engine.num_tuples(), false);

  SessionResult result;
  util::Stopwatch session_clock;

  if (options.tracer != nullptr) {
    obs::SessionTracer::SessionMeta meta;
    meta.strategy = std::string(strategy.name());
    meta.mode = std::string(InteractionModeToString(options.mode));
    meta.instance = store.name();
    meta.num_tuples = engine.num_tuples();
    meta.num_classes = engine.num_classes();
    options.tracer->BeginSession(std::move(meta));
  }

  while (!engine.IsDone()) {
    JIM_CHECK_LT(result.steps.size(), options.max_steps)
        << "session exceeded max_steps — engine failed to make progress";
    util::Stopwatch step_clock;
    const uint64_t simulate_before =
        options.tracer != nullptr ? SimulateCallsSoFar() : 0;
    const std::optional<size_t> choice =
        ChooseClass(engine, strategy, options, user_rng, tuple_labeled);
    if (!choice.has_value()) {
      // Mode 1 user labeled everything; the engine necessarily IsDone now
      // (every class is explicitly labeled) — but guard against surprises.
      JIM_CHECK(engine.IsDone());
      break;
    }
    const size_t class_id = *choice;
    const size_t tuple_index = engine.tuple_class(class_id).tuple_indices[0];
    const uint64_t simulate_spent =
        options.tracer != nullptr ? SimulateCallsSoFar() - simulate_before : 0;

    const auto stats_before = engine.GetStats();
    // Decode-on-demand: the only Value materialization in a session is the
    // tuple actually shown to the (simulated) user.
    const Label label = oracle.LabelFor(store.DecodeTuple(tuple_index));

    SessionStep step;
    step.class_id = class_id;
    step.tuple_index = tuple_index;
    step.label = label;

    const util::Status status = engine.SubmitClassLabel(class_id, label);
    if (!status.ok()) {
      // Only a noisy oracle can contradict itself. Skip the submission (the
      // real system would re-ask); count the wasted interaction.
      ++result.wasted_interactions;
      step.micros = step_clock.ElapsedMicros();
      result.steps.push_back(step);
      if (options.tracer != nullptr) {
        RecordTraceStep(*options.tracer, result.steps.size() - 1, step,
                        /*accepted=*/false, stats_before.informative_classes,
                        stats_before.informative_classes, simulate_spent);
      }
      continue;
    }
    const auto stats_after = engine.GetStats();
    step.pruned_classes = (stats_before.informative_classes -
                           stats_after.informative_classes);
    step.pruned_tuples =
        (stats_before.informative_tuples - stats_after.informative_tuples);
    step.micros = step_clock.ElapsedMicros();
    result.steps.push_back(step);
    if (options.tracer != nullptr) {
      RecordTraceStep(*options.tracer, result.steps.size() - 1, step,
                      /*accepted=*/true, stats_before.informative_classes,
                      stats_after.informative_classes, simulate_spent);
    }
  }

  result.interactions = result.steps.size();
  result.total_seconds = session_clock.ElapsedSeconds();
  result.result = engine.Result();
  result.identified_goal = InstanceEquivalent(store, *result.result, goal);
  result.final_stats = engine.GetStats();
  result.wasted_interactions += result.final_stats.wasted_interactions;
  if (options.tracer != nullptr) {
    options.tracer->EndSession(result.identified_goal, result.interactions,
                               result.wasted_interactions,
                               result.total_seconds);
  }
  return result;
}

SessionResult RunSession(std::shared_ptr<const TupleStore> store,
                         const JoinPredicate& goal, Strategy& strategy) {
  ExactOracle oracle(goal);
  return RunSession(std::move(store), goal, strategy, oracle,
                    SessionOptions{});
}

SessionResult RunSession(std::shared_ptr<const rel::Relation> relation,
                         const JoinPredicate& goal, Strategy& strategy) {
  return RunSession(MakeRelationStore(std::move(relation)), goal, strategy);
}

std::string SessionResultToJson(const SessionResult& result) {
  util::JsonWriter json;
  json.BeginObject()
      .KeyValue("interactions", result.interactions)
      .KeyValue("wasted_interactions", result.wasted_interactions)
      .KeyValue("identified_goal", result.identified_goal)
      .KeyValue("total_seconds", result.total_seconds);
  json.Key("result").Value(
      result.result.has_value() ? result.result->ToString() : "");
  json.Key("steps").BeginArray();
  for (const SessionStep& step : result.steps) {
    json.BeginObject()
        .KeyValue("tuple", step.tuple_index)
        .KeyValue("class", step.class_id)
        .KeyValue("label", LabelToString(step.label))
        .KeyValue("pruned_tuples", step.pruned_tuples)
        .KeyValue("pruned_classes", step.pruned_classes)
        .KeyValue("micros", step.micros)
        .EndObject();
  }
  json.EndArray().EndObject();
  return json.str();
}

}  // namespace jim::core
